// Ablations of the hybrid partitioner's design choices (DESIGN.md §5):
//  1. the ComputeNumberPartitions dynamic program vs a naive equal split,
//  2. the text-similarity threshold delta,
//  3. the balance constraint sigma.
// Reported metric: estimated total Definition-1 load and balance of the
// resulting plan on the same workload sample.
#include "bench_util.h"
#include "partition/hybrid.h"

using namespace ps2;
using namespace ps2::bench;

int main() {
  InitBench("ablation_hybrid");
  std::printf("Hybrid partitioner ablations (STS-US-Q3, mu=60k, "
              "8 workers)\n");
  Env env = MakeEnv("US", QueryKind::kQ3, 60000, 40000);
  const WorkloadSample& sample = env.stream.sample;
  HybridPartitioner hybrid;

  {
    PrintHeader("Ablation: ComputeNumberPartitions DP vs equal split",
                {"variant", "est.total load", "est.balance"});
    for (const bool use_dp : {true, false}) {
      PartitionConfig cfg;
      cfg.num_workers = 8;
      cfg.use_number_partitions_dp = use_dp;
      const PartitionPlan plan = hybrid.Build(sample, *env.vocab, cfg);
      const auto report =
          EstimatePlanLoad(plan, sample, *env.vocab, cfg.cost);
      PrintCell(use_dp ? "DP (paper)" : "equal split");
      PrintCell(report.total_load, "%.0f");
      PrintCell(report.balance, "%.2f");
      EndRow();
    }
  }
  {
    PrintHeader("Ablation: similarity threshold delta",
                {"delta", "est.total load", "text cells", "est.balance"});
    for (const double delta : {0.1, 0.25, 0.4, 0.6, 0.9}) {
      PartitionConfig cfg;
      cfg.num_workers = 8;
      cfg.delta = delta;
      const PartitionPlan plan = hybrid.Build(sample, *env.vocab, cfg);
      const auto report =
          EstimatePlanLoad(plan, sample, *env.vocab, cfg.cost);
      PrintCell(delta, "%.2f");
      PrintCell(report.total_load, "%.0f");
      PrintCell(static_cast<double>(plan.NumTextCells()), "%.0f");
      PrintCell(report.balance, "%.2f");
      EndRow();
    }
  }
  {
    PrintHeader("Ablation: balance constraint sigma",
                {"sigma", "est.total load", "est.balance"});
    for (const double sigma : {1.1, 1.5, 2.0, 4.0}) {
      PartitionConfig cfg;
      cfg.num_workers = 8;
      cfg.sigma = sigma;
      const PartitionPlan plan = hybrid.Build(sample, *env.vocab, cfg);
      const auto report =
          EstimatePlanLoad(plan, sample, *env.vocab, cfg.cost);
      PrintCell(sigma, "%.1f");
      PrintCell(report.total_load, "%.0f");
      PrintCell(report.balance, "%.2f");
      EndRow();
    }
  }
  return 0;
}
