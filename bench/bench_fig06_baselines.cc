// Reproduces Figure 6: throughput of the three text-partitioning baselines
// (frequency, hypergraph, metric) and the three space-partitioning
// baselines (grid, kd-tree, R-tree) on Q1 and Q2 query sets over both
// datasets. Paper setting: 4 dispatchers / 8 workers, mu = 5M for Q1 and
// 10M for Q2; scaled here to 50k / 100k live queries (see EXPERIMENTS.md).
//
// Expected shape (paper): space > text on Q1 (frequent keywords duplicate
// objects under text partitioning); text > space on Q2 (rare keywords +
// larger ranges duplicate queries under space partitioning); metric best
// among text, kd-tree best among space.
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

namespace {

void RunGroup(const char* title, const std::vector<std::string>& algos,
              QueryKind kind, size_t mu, size_t objects) {
  PrintHeader(title, {"dataset", "algorithm", "throughput(tuples/s)",
                      "est.balance", "obj.fanout"});
  for (const std::string dataset : {"US", "UK"}) {
    Env env = MakeEnv(dataset, kind, mu, objects);
    for (const auto& algo : algos) {
      auto cluster = MakeCluster(env, algo, /*workers=*/8);
      const SimReport report = RunCapacity(*cluster, env);
      const auto loads = cluster->WorkerLoads(CostModel{});
      const auto& stats = cluster->dispatcher().stats();
      PrintCell(env.query_set);
      PrintCell(algo);
      PrintCell(report.throughput_estimate_tps, "%.0f");
      PrintCell(BalanceFactor(loads), "%.2f");
      PrintCell(stats.ObjectFanout(), "%.2f");
      EndRow();
    }
  }
}

}  // namespace

int main() {
  InitBench("fig06_baselines");
  std::printf("Figure 6 reproduction: baseline workload distribution "
              "algorithms (8 workers)\n");
  RunGroup("Fig 6(a)-like: text partitioning, Q1 (mu=50k)",
           {"frequency", "hypergraph", "metric"}, QueryKind::kQ1, 50000,
           60000);
  RunGroup("Fig 6(b)-like: text partitioning, Q2 (mu=100k)",
           {"frequency", "hypergraph", "metric"}, QueryKind::kQ2, 100000,
           60000);
  RunGroup("Fig 6(c)-like: space partitioning, Q1 (mu=50k)",
           {"grid", "kdtree", "rtree"}, QueryKind::kQ1, 50000, 60000);
  RunGroup("Fig 6(d)-like: space partitioning, Q2 (mu=100k)",
           {"grid", "kdtree", "rtree"}, QueryKind::kQ2, 100000, 60000);
  return 0;
}
