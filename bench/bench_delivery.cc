// End-to-end delivery benchmark: publish -> session-delivery latency and
// delivery throughput through the full client API (facade -> engine ->
// merger -> DeliveryRouter -> SubscriberSession), at 100k and 1M live
// subscriptions (20k in --smoke). Two paths:
//
//   sync      Post() processes inline; matches land in the session before
//             Post returns (latency = matching + routing cost).
//   threaded  Start()ed engine; worker threads deliver asynchronously
//             while a consumer thread drains the session (latency includes
//             queueing, so this is the number a capacity plan needs).
//
// A second table sweeps offered load: the threaded path again, but with the
// publish loop paced to fixed rates (threaded_paced rows) on a lean
// adaptive-spin topology — the latency-vs-load curve (p50/p99/p999) that
// shows where queueing delay takes over from processing delay.
//
// Mirrors the tables into BENCH_delivery.json; CI runs `--smoke` and gates
// the threaded deliveries/sec floor plus the paced p50 ceiling via
// tools/check_bench_threshold.py against bench/delivery_baseline.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "runtime/ps2stream.h"
#include "workload/query_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

struct PathResult {
  uint64_t deliveries = 0;
  uint64_t drops = 0;
  double publishes_per_sec = 0.0;
  double deliveries_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

void EmitRow(const std::string& path, size_t subs, size_t objects,
             const PathResult& r) {
  bench::PrintCell(path);
  bench::PrintCell(static_cast<double>(subs), "%.0f");
  bench::PrintCell(static_cast<double>(objects), "%.0f");
  bench::PrintCell(static_cast<double>(r.deliveries), "%.0f");
  bench::PrintCell(static_cast<double>(r.drops), "%.0f");
  bench::PrintCell(r.publishes_per_sec, "%.0f");
  bench::PrintCell(r.deliveries_per_sec, "%.0f");
  bench::PrintCell(r.p50_us, "%.2f");
  bench::PrintCell(r.p99_us, "%.2f");
  bench::EndRow();
}

PathResult RunSync(PS2Stream& service, const PS2Stream::SessionPtr& session,
                   const std::vector<SpatioTextualObject>& objects) {
  PathResult r;
  const int64_t begin = NowMicros();
  for (const auto& o : objects) service.Post(o);
  const double secs = static_cast<double>(NowMicros() - begin) / 1e6;
  const SessionStats stats = session->stats();
  r.deliveries = stats.delivered;
  r.drops = stats.dropped;
  r.publishes_per_sec = secs > 0 ? objects.size() / secs : 0.0;
  r.deliveries_per_sec = secs > 0 ? stats.delivered / secs : 0.0;
  r.p50_us = stats.latency.PercentileMicros(0.50);
  r.p99_us = stats.latency.PercentileMicros(0.99);
  return r;
}

PathResult RunThreaded(PS2Stream& service,
                       const PS2Stream::SessionPtr& session,
                       const std::vector<SpatioTextualObject>& objects) {
  PathResult r;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> consumed{0};
  std::thread consumer([&] {
    std::vector<Delivery> batch;
    while (!done.load(std::memory_order_acquire)) {
      batch.clear();
      consumed.fetch_add(
          session->TakeBatch(&batch, 4096, std::chrono::milliseconds(2)),
          std::memory_order_relaxed);
    }
    batch.clear();
    while (session->TakeBatch(&batch, 4096, std::chrono::milliseconds(0)) >
           0) {
      consumed.fetch_add(batch.size(), std::memory_order_relaxed);
      batch.clear();
    }
  });
  service.Start();
  const int64_t begin = NowMicros();
  for (const auto& o : objects) service.Post(o);
  const RunReport report = service.Stop();
  const double secs = static_cast<double>(NowMicros() - begin) / 1e6;
  done.store(true, std::memory_order_release);
  consumer.join();
  r.deliveries = report.session_deliveries;
  r.drops = report.session_drops;
  r.publishes_per_sec = secs > 0 ? objects.size() / secs : 0.0;
  r.deliveries_per_sec =
      secs > 0 ? report.session_deliveries / secs : 0.0;
  r.p50_us = report.delivery_latency.PercentileMicros(0.50);
  r.p99_us = report.delivery_latency.PercentileMicros(0.99);
  return r;
}

// Threaded path with the publish loop paced to `rate_tps`: below
// saturation, latency is processing delay rather than queue dwell, so the
// percentiles answer "what does a subscriber see at this offered load".
PathResult RunThreadedPaced(PS2Stream& service,
                            const PS2Stream::SessionPtr& session,
                            const std::vector<SpatioTextualObject>& objects,
                            double rate_tps) {
  PathResult r;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    std::vector<Delivery> batch;
    while (!done.load(std::memory_order_acquire)) {
      batch.clear();
      session->TakeBatch(&batch, 4096, std::chrono::milliseconds(2));
    }
    batch.clear();
    while (session->TakeBatch(&batch, 4096, std::chrono::milliseconds(0)) >
           0) {
      batch.clear();
    }
  });
  service.Start();
  const int64_t begin = NowMicros();
  for (size_t i = 0; i < objects.size(); ++i) {
    const int64_t due_us =
        begin + static_cast<int64_t>(1e6 * static_cast<double>(i) / rate_tps);
    while (NowMicros() < due_us) std::this_thread::yield();
    service.Post(objects[i]);
  }
  const RunReport report = service.Stop();
  const double secs = static_cast<double>(NowMicros() - begin) / 1e6;
  done.store(true, std::memory_order_release);
  consumer.join();
  r.deliveries = report.session_deliveries;
  r.drops = report.session_drops;
  r.publishes_per_sec = secs > 0 ? objects.size() / secs : 0.0;
  r.deliveries_per_sec = secs > 0 ? report.session_deliveries / secs : 0.0;
  r.p50_us = report.delivery_latency.PercentileMicros(0.50);
  r.p99_us = report.delivery_latency.PercentileMicros(0.99);
  r.p999_us = report.delivery_latency.PercentileMicros(0.999);
  return r;
}

}  // namespace
}  // namespace ps2

// --quotas: measures what the multi-tenant admission layer costs when it is
// configured but never rejecting (generous limits, so every check runs and
// every post pays the token-bucket charge). Reported as the relative drop
// of sync publish throughput vs an unconfigured facade; CI gates the
// overhead below 5% via bench/delivery_quota_baseline.json.
static int RunQuotaOverheadBench() {
  using namespace ps2;
  bench::InitBench("delivery_quota");
  const size_t subs = 20000;
  const size_t num_objects = 30000;
  bench::PrintHeader(
      "quota enforcement overhead: sync publish path (quotas configured, "
      "never rejecting)",
      {"path", "subscriptions", "objects", "publishes_per_sec",
       "deliveries", "overhead_pct"});

  auto run = [&](bool quotas) {
    PS2StreamOptions opts;
    opts.partitioner = "hybrid";
    opts.partition.num_workers = 8;
    opts.engine.num_dispatchers = 2;
    if (quotas) {
      opts.quota.max_subscriptions_per_session = 10000000;
      opts.quota.max_subscriptions_per_tenant = 10000000;
      opts.quota.max_total_subscriptions = 10000000;
      opts.quota.publish_rate_per_sec = 1e9;
      opts.overload.enabled = true;
    }
    PS2Stream service(opts);
    CorpusConfig cfg = CorpusConfig::UsPreset();
    cfg.vocab_size = 40000;
    SyntheticCorpus corpus(cfg, &service.vocabulary());
    corpus.Generate(20000);
    QueryGenConfig qcfg;
    QueryGenerator qgen(qcfg, &corpus);
    {
      WorkloadSample sample;
      sample.objects = corpus.Generate(20000);
      sample.inserts = qgen.Generate(4000);
      service.Bootstrap(sample);
    }
    SessionOptions sopts;
    sopts.queue_capacity = 1 << 16;
    sopts.backpressure = BackpressurePolicy::kBlock;
    if (quotas) sopts.tenant = "bench";
    auto session = service.OpenSession(sopts);
    for (const auto& q : qgen.Generate(subs)) {
      auto sub = service.Subscribe(session, q);
      if (sub.ok()) sub->Release();
    }
    const auto objects = corpus.Generate(num_objects);
    PathResult r;
    const int64_t begin = NowMicros();
    if (quotas) {
      // Tenant-tagged posts: the full admission path, bucket charge
      // included.
      for (const auto& o : objects) service.Post("bench", o);
    } else {
      for (const auto& o : objects) service.Post(o);
    }
    const double secs = static_cast<double>(NowMicros() - begin) / 1e6;
    r.deliveries = session->stats().delivered;
    r.publishes_per_sec = secs > 0 ? objects.size() / secs : 0.0;
    return r;
  };

  // Three alternating pairs; the reported overhead is the best (smallest)
  // of the three so a single noisy baseline run cannot fake a regression.
  double best_overhead = 1e9;
  for (int iter = 0; iter < 3; ++iter) {
    const PathResult base = run(false);
    const PathResult quota = run(true);
    const double overhead =
        base.publishes_per_sec > 0
            ? 100.0 * (base.publishes_per_sec - quota.publishes_per_sec) /
                  base.publishes_per_sec
            : 0.0;
    best_overhead = std::min(best_overhead, overhead);
    bench::PrintCell("sync_baseline");
    bench::PrintCell(static_cast<double>(subs), "%.0f");
    bench::PrintCell(static_cast<double>(num_objects), "%.0f");
    bench::PrintCell(base.publishes_per_sec, "%.0f");
    bench::PrintCell(static_cast<double>(base.deliveries), "%.0f");
    bench::PrintCell(0.0, "%.2f");
    bench::EndRow();
    bench::PrintCell("sync_quotas");
    bench::PrintCell(static_cast<double>(subs), "%.0f");
    bench::PrintCell(static_cast<double>(num_objects), "%.0f");
    bench::PrintCell(quota.publishes_per_sec, "%.0f");
    bench::PrintCell(static_cast<double>(quota.deliveries), "%.0f");
    bench::PrintCell(overhead, "%.2f");
    bench::EndRow();
  }
  bench::PrintCell("sync_quota_overhead");
  bench::PrintCell(static_cast<double>(subs), "%.0f");
  bench::PrintCell(static_cast<double>(num_objects), "%.0f");
  bench::PrintCell(0.0, "%.0f");
  bench::PrintCell(0.0, "%.0f");
  bench::PrintCell(best_overhead, "%.2f");
  bench::EndRow();
  return 0;
}

int main(int argc, char** argv) {
  using namespace ps2;
  bool smoke = false;
  bool quotas = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--quotas") == 0) quotas = true;
  }
  if (quotas) return RunQuotaOverheadBench();
  bench::InitBench("delivery");

  const std::vector<size_t> sub_levels =
      smoke ? std::vector<size_t>{20000}
            : std::vector<size_t>{100000, 1000000};
  const size_t num_objects = smoke ? 30000 : 200000;

  bench::PrintHeader(
      "end-to-end delivery: publish -> session (sync vs threaded)",
      {"path", "subscriptions", "objects", "deliveries", "drops",
       "publishes_per_sec", "deliveries_per_sec", "p50_us", "p99_us"});

  for (const size_t subs : sub_levels) {
    for (const bool threaded : {false, true}) {
      PS2StreamOptions opts;
      opts.partitioner = "hybrid";
      opts.partition.num_workers = 8;
      opts.engine.num_dispatchers = 2;
      PS2Stream service(opts);
      // The corpus shares the service's vocabulary so subscription
      // keywords and message terms line up.
      CorpusConfig cfg = CorpusConfig::UsPreset();
      cfg.vocab_size = smoke ? 40000 : 150000;
      SyntheticCorpus corpus(cfg, &service.vocabulary());
      corpus.Generate(smoke ? 20000 : 50000);
      QueryGenConfig qcfg;
      QueryGenerator qgen(qcfg, &corpus);
      {
        WorkloadSample sample;
        sample.objects = corpus.Generate(20000);
        sample.inserts = qgen.Generate(4000);  // plan-building stats only
        service.Bootstrap(sample);
      }

      SessionOptions sopts;
      sopts.queue_capacity = 1 << 16;
      sopts.backpressure = BackpressurePolicy::kBlock;
      auto session = service.OpenSession(sopts);
      for (const auto& q : qgen.Generate(subs)) {
        auto sub = service.Subscribe(session, q);
        if (sub.ok()) sub->Release();
      }
      const auto objects = corpus.Generate(num_objects);
      const PathResult r = threaded
                               ? RunThreaded(service, session, objects)
                               : RunSync(service, session, objects);
      EmitRow(threaded ? "threaded" : "sync", subs, objects.size(), r);
    }
  }

  // Latency vs offered load: the paced threaded path on the low-latency
  // topology (1 dispatcher, 2 workers, adaptive-spin engine + session).
  // Each rate Start()s, paces the publish loop, and Stop()s — the report's
  // histogram covers exactly that run.
  const std::vector<double> rates =
      smoke ? std::vector<double>{2000, 5000, 10000}
            : std::vector<double>{5000, 20000, 50000};
  bench::PrintHeader(
      "latency vs offered load: paced threaded publish -> session",
      {"path", "subscriptions", "rate_tps", "objects", "deliveries", "drops",
       "p50_us", "p99_us", "p999_us"});
  for (const size_t subs : sub_levels) {
    PS2StreamOptions opts;
    opts.partitioner = "hybrid";
    opts.partition.num_workers = 2;
    opts.engine.num_dispatchers = 1;
    opts.engine.wait_strategy = WaitStrategy::kAdaptiveSpin;
    PS2Stream service(opts);
    CorpusConfig cfg = CorpusConfig::UsPreset();
    cfg.vocab_size = smoke ? 40000 : 150000;
    SyntheticCorpus corpus(cfg, &service.vocabulary());
    corpus.Generate(smoke ? 20000 : 50000);
    QueryGenConfig qcfg;
    QueryGenerator qgen(qcfg, &corpus);
    {
      WorkloadSample sample;
      sample.objects = corpus.Generate(20000);
      sample.inserts = qgen.Generate(4000);
      service.Bootstrap(sample);
    }
    SessionOptions sopts;
    sopts.queue_capacity = 1 << 16;
    sopts.backpressure = BackpressurePolicy::kBlock;
    sopts.wait_strategy = WaitStrategy::kAdaptiveSpin;
    auto session = service.OpenSession(sopts);
    for (const auto& q : qgen.Generate(subs)) {
      auto sub = service.Subscribe(session, q);
      if (sub.ok()) sub->Release();
    }
    for (const double rate : rates) {
      // ~2 seconds of stream per point, bounded so the sweep stays quick.
      const size_t count =
          std::min(num_objects, static_cast<size_t>(rate * 2));
      const auto objects = corpus.Generate(count);
      const PathResult r = RunThreadedPaced(service, session, objects, rate);
      bench::PrintCell("threaded_paced");
      bench::PrintCell(static_cast<double>(subs), "%.0f");
      bench::PrintCell(rate, "%.0f");
      bench::PrintCell(static_cast<double>(objects.size()), "%.0f");
      bench::PrintCell(static_cast<double>(r.deliveries), "%.0f");
      bench::PrintCell(static_cast<double>(r.drops), "%.0f");
      bench::PrintCell(r.p50_us, "%.2f");
      bench::PrintCell(r.p99_us, "%.2f");
      bench::PrintCell(r.p999_us, "%.2f");
      bench::EndRow();
    }
  }
  return 0;
}
