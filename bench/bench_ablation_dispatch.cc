// Ablation (Section IV-C): routing cost of the kdt-tree (O(log) tree walk)
// versus the gridt index (O(1) cell lookup) on the dispatcher. The paper
// replaces the tree with the grid because fast streams overload the
// dispatcher; this bench quantifies that choice.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dispatch/kdt_tree.h"

namespace ps2 {
namespace {

struct Fixture {
  bench::Env env;
  PartitionPlan plan;
  std::unique_ptr<KdtTree> tree;
  std::vector<SpatioTextualObject> objects;

  Fixture() {
    env = bench::MakeEnv("US", QueryKind::kQ3, 30000, 20000);
    PartitionConfig cfg;
    cfg.num_workers = 8;
    plan = MakePartitioner("hybrid")->Build(env.stream.sample, *env.vocab,
                                            cfg);
    tree = std::make_unique<KdtTree>(plan);
    objects = env.corpus->Generate(5000);
  }
};

Fixture& F() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_RouteObjectGridt(benchmark::State& state) {
  auto& f = F();
  std::vector<WorkerId> out;
  size_t i = 0;
  for (auto _ : state) {
    f.plan.RouteObject(f.objects[i++ % f.objects.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteObjectGridt);

void BM_RouteObjectKdtTree(benchmark::State& state) {
  auto& f = F();
  std::vector<WorkerId> out;
  size_t i = 0;
  for (auto _ : state) {
    f.tree->RouteObject(f.objects[i++ % f.objects.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("leaves=" + std::to_string(f.tree->NumLeaves()) +
                 " depth=" + std::to_string(f.tree->Depth()));
}
BENCHMARK(BM_RouteObjectKdtTree);

void BM_RouteQueryGridt(benchmark::State& state) {
  auto& f = F();
  std::vector<PartitionPlan::QueryRoute> out;
  size_t i = 0;
  const auto& qs = f.env.stream.sample.inserts;
  for (auto _ : state) {
    f.plan.RouteQuery(qs[i++ % qs.size()], *f.env.vocab, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RouteQueryGridt);

void BM_RouteQueryKdtTree(benchmark::State& state) {
  auto& f = F();
  std::vector<PartitionPlan::QueryRoute> out;
  size_t i = 0;
  const auto& qs = f.env.stream.sample.inserts;
  for (auto _ : state) {
    f.tree->RouteQuery(qs[i++ % qs.size()], *f.env.vocab, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RouteQueryKdtTree);

}  // namespace
}  // namespace ps2

BENCHMARK_MAIN();
