// Micro-benchmarks of the GI2 worker index: the per-operation costs that
// calibrate the Definition-1 cost constants c1..c4 (see core/cost_model.h)
// and the lazy-vs-eager deletion ablation called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "index/gi2.h"
#include "workload/query_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

struct Fixture {
  Vocabulary vocab;
  std::unique_ptr<SyntheticCorpus> corpus;
  std::unique_ptr<QueryGenerator> qgen;
  GridSpec grid;

  Fixture() {
    CorpusConfig cfg = CorpusConfig::UsPreset();
    cfg.vocab_size = 8000;
    corpus = std::make_unique<SyntheticCorpus>(cfg, &vocab);
    corpus->Generate(20000);
    QueryGenConfig qcfg;
    qgen = std::make_unique<QueryGenerator>(qcfg, corpus.get());
    grid = GridSpec(cfg.extent, 6);
  }
};

Fixture& F() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_Gi2Insert(benchmark::State& state) {
  auto& f = F();
  const auto queries = f.qgen->Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    Gi2Index idx(f.grid, &f.vocab);
    state.ResumeTiming();
    for (const auto& q : queries) idx.Insert(q);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_Gi2Insert)->Arg(1000)->Arg(10000);

void BM_Gi2Match(benchmark::State& state) {
  auto& f = F();
  Gi2Index idx(f.grid, &f.vocab);
  for (const auto& q : f.qgen->Generate(static_cast<size_t>(state.range(0)))) {
    idx.Insert(q);
  }
  const auto objects = f.corpus->Generate(2000);
  std::vector<MatchResult> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    idx.Match(objects[i++ % objects.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Gi2Match)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Gi2DeleteLazyVsEager(benchmark::State& state) {
  auto& f = F();
  const bool lazy = state.range(0) == 1;
  const auto queries = f.qgen->Generate(5000);
  for (auto _ : state) {
    state.PauseTiming();
    Gi2Index::Options opts;
    opts.lazy_deletion = lazy;
    Gi2Index idx(f.grid, &f.vocab, opts);
    for (const auto& q : queries) idx.Insert(q);
    state.ResumeTiming();
    for (const auto& q : queries) idx.Delete(q.id);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
  state.SetLabel(lazy ? "lazy" : "eager");
}
BENCHMARK(BM_Gi2DeleteLazyVsEager)->Arg(1)->Arg(0);

void BM_Gi2MatchWithTombstones(benchmark::State& state) {
  // Matching cost while a fraction of postings are tombstoned: the price
  // lazy deletion pays at read time.
  auto& f = F();
  Gi2Index idx(f.grid, &f.vocab);
  const auto queries = f.qgen->Generate(20000);
  for (const auto& q : queries) idx.Insert(q);
  const double dead_frac = state.range(0) / 100.0;
  for (size_t i = 0; i < queries.size() * dead_frac; ++i) {
    idx.Delete(queries[i].id);
  }
  const auto objects = f.corpus->Generate(2000);
  std::vector<MatchResult> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    idx.Match(objects[i++ % objects.size()], &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Gi2MatchWithTombstones)->Arg(0)->Arg(20)->Arg(50);

}  // namespace
}  // namespace ps2

BENCHMARK_MAIN();
