// Durability benchmark: WAL append throughput, checkpoint size/time, WAL
// replay rate and time-to-first-match after a restart, at 100k and 1M
// subscriptions (override: bench_recovery <subs> [<subs> ...]). Mirrors its
// tables to BENCH_recovery.json like the figure benches.
//
// The "restart" here is a full crash restart: the service is killed without
// a clean stop, then a fresh PS2Stream Restore()s the directory — loading
// the latest checkpoint, replaying the WAL tail (the subscriptions that
// arrived after the checkpoint), rebuilding the GI2 worker indexes and
// serving its first Publish.
#include <filesystem>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "persist/durability.h"
#include "runtime/ps2stream.h"

using namespace ps2;
using namespace ps2::bench;

namespace {

size_t DirBytes(const std::string& dir, const char* prefix) {
  size_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) {
      total += static_cast<size_t>(entry.file_size());
    }
  }
  return total;
}

void RunOne(size_t num_subs) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ps2_bench_recovery").string();
  std::filesystem::remove_all(dir);

  Env env = MakeEnv("US", QueryKind::kQ3, /*mu=*/5000,
                    /*num_objects=*/20000);
  // The measured subscription load: num_subs standing queries plus a 10%
  // WAL tail subscribed after the checkpoint.
  std::vector<STSQuery> subs = env.qgen->Generate(num_subs);
  const size_t tail = num_subs / 10;
  std::vector<STSQuery> tail_subs = env.qgen->Generate(tail);

  PS2StreamOptions opts;
  opts.partition.num_workers = 8;
  opts.durability.enabled = true;
  opts.durability.dir = dir;
  // Group-commit pipeline mode: appends are acknowledged by the flusher in
  // batches. kFlush would fsync-pace a single-threaded subscribe loop to
  // disk latency, which measures the disk, not the log.
  opts.durability.wal_sync = Wal::SyncMode::kAsync;

  PS2Stream service(opts);
  service.Bootstrap(env.stream.sample);

  Stopwatch sw;
  for (const auto& q : subs) {
    auto sub = service.Subscribe(nullptr, q);
    if (sub.ok()) sub->Release();
  }
  service.durable();  // keep the optimizer honest
  const double subscribe_s = sw.ElapsedSeconds();

  sw.Restart();
  const bool ckpt_ok = service.Checkpoint();
  const double checkpoint_s = sw.ElapsedSeconds();
  const size_t checkpoint_bytes = DirBytes(dir, "checkpoint-");

  sw.Restart();
  for (const auto& q : tail_subs) {
    auto sub = service.Subscribe(nullptr, q);
    if (sub.ok()) sub->Release();
  }
  const double tail_s = sw.ElapsedSeconds();
  service.Kill();  // crash: no clean stop, no final checkpoint
  const size_t wal_bytes = DirBytes(dir, "wal-");

  sw.Restart();
  PS2Stream restarted;
  const bool restored = restarted.Restore(dir);
  const double restore_s = sw.ElapsedSeconds();

  // Time to first match after restart: one object in a known subscription's
  // region, published synchronously.
  const STSQuery& probe = subs.front();
  SpatioTextualObject o;
  o.id = 1;
  o.loc = Point{(probe.region.min_x + probe.region.max_x) / 2,
                (probe.region.min_y + probe.region.max_y) / 2};
  o.terms = probe.expr.clauses().front();
  std::sort(o.terms.begin(), o.terms.end());
  // Deliveries flow through a session in the session-only API: route the
  // probe query to one and count what arrives.
  auto session = restarted.OpenSession();
  restarted.delivery().Route(probe.id, session);
  sw.Restart();
  size_t first_matches = 0;
  if (restarted.Post(o).ok()) {
    Delivery d;
    while (session->Poll(&d)) ++first_matches;
  }
  const double first_match_s = sw.ElapsedSeconds();

  const uint64_t replayed =
      restored ? restarted.recovered()->wal.records : 0;
  PrintCell(static_cast<double>(num_subs), "%.0f");
  PrintCell(ckpt_ok && restored ? "ok" : "FAILED");
  PrintCell(subscribe_s > 0 ? (num_subs / subscribe_s) : 0.0, "%.0f");
  PrintCell(checkpoint_s * 1e3, "%.1f");
  PrintCell(checkpoint_bytes / 1048576.0, "%.2f");
  PrintCell(tail_s > 0 ? (tail / tail_s) : 0.0, "%.0f");
  PrintCell(wal_bytes / 1048576.0, "%.2f");
  PrintCell(restore_s, "%.3f");
  PrintCell(restore_s > 0 ? (replayed / restore_s) : 0.0, "%.0f");
  PrintCell(static_cast<double>(restarted.num_subscriptions()), "%.0f");
  PrintCell(first_match_s * 1e6, "%.1f");
  PrintCell(static_cast<double>(first_matches), "%.0f");
  EndRow();

  std::filesystem::remove_all(dir);
}

// Failover: kill one shard of a live 4-shard fabric mid-stream and measure
// the supervisor's full recovery arc — the first Post to the dead shard
// pays retry-exhaustion detection + restart (registry resync or WAL
// recovery) + replay + the match's delivery; the next Post shows the
// return to steady state.
void RunFailover(size_t num_subs, bool durable) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ps2_bench_failover").string();
  std::filesystem::remove_all(dir);

  Env env = MakeEnv("US", QueryKind::kQ3, /*mu=*/5000,
                    /*num_objects=*/20000, /*seed=*/2);
  std::vector<STSQuery> subs = env.qgen->Generate(num_subs);

  PS2StreamOptions opts;
  opts.partition.num_workers = 8;
  opts.sharding.num_shards = 4;
  if (durable) {
    opts.durability.enabled = true;
    opts.durability.dir = dir;
    opts.durability.wal_sync = Wal::SyncMode::kAsync;
  }
  PS2Stream service(opts);
  service.Bootstrap(env.stream.sample);
  for (const auto& q : subs) {
    auto sub = service.Subscribe(nullptr, q);
    if (sub.ok()) sub->Release();
  }

  const STSQuery& probe = subs.front();
  auto session = service.OpenSession();
  service.delivery().Route(probe.id, session);
  auto probe_obj = [&](ObjectId id) {
    // One term per CNF clause satisfies the whole expression.
    std::vector<TermId> terms;
    for (const auto& clause : probe.expr.clauses()) {
      terms.push_back(clause.front());
    }
    return SpatioTextualObject::FromTerms(
        id,
        Point{(probe.region.min_x + probe.region.max_x) / 2,
              (probe.region.min_y + probe.region.max_y) / 2},
        terms);
  };

  // Warm and sanity-check: the probe object must match before the drill.
  size_t warm = 0;
  if (service.Post(probe_obj(1000000001)).ok()) {
    Delivery d;
    while (session->Poll(&d)) ++warm;
  }

  ShardedEngine& fabric = *service.fabric();
  const CellId cell =
      fabric.shard_cluster(0).router().plan().grid.CellOf(probe_obj(0).loc);
  const ShardId owner = fabric.shard_map()->OwnerOf(cell);
  fabric.KillShard(owner);

  Stopwatch sw;
  size_t matches = 0;
  const bool post_ok = service.Post(probe_obj(1000000002)).ok();
  {
    Delivery d;
    while (session->Poll(&d)) ++matches;
  }
  const double failover_s = sw.ElapsedSeconds();

  sw.Restart();
  size_t after = 0;
  if (service.Post(probe_obj(1000000003)).ok()) {
    Delivery d;
    while (session->Poll(&d)) ++after;
  }
  const double steady_s = sw.ElapsedSeconds();

  PrintCell(durable ? "wal-recovery" : "registry-resync");
  PrintCell(4.0, "%.0f");
  PrintCell(static_cast<double>(num_subs), "%.0f");
  PrintCell(post_ok && warm > 0 && matches > 0 && after > 0 ? "ok"
                                                            : "FAILED");
  PrintCell(failover_s * 1e3, "%.2f");
  PrintCell(steady_s * 1e6, "%.1f");
  PrintCell(static_cast<double>(matches), "%.0f");
  PrintCell(static_cast<double>(fabric.shard_restart_count(owner)), "%.0f");
  EndRow();

  std::filesystem::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("recovery");
  std::vector<size_t> sizes;
  for (int i = 1; i < argc; ++i) {
    sizes.push_back(static_cast<size_t>(std::atoll(argv[i])));
  }
  if (sizes.empty()) sizes = {100000, 1000000};

  PrintHeader("durability: checkpoint + WAL replay + restart",
              {"subscriptions", "status", "wal append/s", "ckpt ms",
               "ckpt MB", "tail append/s", "wal MB", "restore s",
               "replay rec/s", "recovered subs", "first match us",
               "matches"});
  for (const size_t n : sizes) RunOne(n);

  PrintHeader("failover: shard kill -> supervisor restart -> first match",
              {"restart mode", "shards", "subscriptions", "status",
               "failover ms", "steady us", "matches", "restarts"});
  RunFailover(sizes.front(), /*durable=*/false);
  RunFailover(sizes.front(), /*durable=*/true);
  return 0;
}
