// Reproduces Figure 9: average dispatcher memory of hybrid vs metric vs
// kd-tree. Expected shape (paper): all small (< ~1 GB at paper scale);
// kd-tree smallest (pure per-cell worker ids, H2 only); hybrid highest on
// Q2 (more text-routed cells carrying per-cell term maps).
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

namespace {

void RunSet(const char* title, QueryKind kind, size_t mu, size_t objects) {
  PrintHeader(title, {"dataset", "algorithm", "dispatcher memory",
                      "plan(H1)", "H2 entries"});
  for (const std::string dataset : {"US", "UK"}) {
    Env env = MakeEnv(dataset, kind, mu, objects);
    for (const std::string algo : {"metric", "kdtree", "hybrid"}) {
      auto cluster = MakeCluster(env, algo, 8);
      // Route the measured stream so H2 reflects steady-state churn.
      const SimReport report = RunCapacity(*cluster, env);
      (void)report;
      PrintCell(env.query_set);
      PrintCell(algo);
      PrintCell(Mb(cluster->DispatcherMemoryBytes()));
      PrintCell(Mb(cluster->router().plan().MemoryBytes()));
      PrintCell(static_cast<double>(cluster->router().NumH2Entries()),
                "%.0f");
      EndRow();
    }
  }
}

}  // namespace

int main() {
  InitBench("fig09_memory_dispatcher");
  std::printf("Figure 9 reproduction: dispatcher memory (8 workers)\n");
  RunSet("Fig 9(a)-like: Q1 (mu=50k)", QueryKind::kQ1, 50000, 40000);
  RunSet("Fig 9(b)-like: Q2 (mu=100k)", QueryKind::kQ2, 100000, 40000);
  RunSet("Fig 9(c)-like: Q3 (mu=100k)", QueryKind::kQ3, 100000, 40000);
  return 0;
}
