// Micro-benchmarks of partition plan construction: what a (re)partitioning
// costs the control plane — relevant to the global adjustment cadence
// (Section V-B runs it "once per day").
#include <benchmark/benchmark.h>

#include "partition/plan.h"
#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

struct Fixture {
  Vocabulary vocab;
  std::unique_ptr<SyntheticCorpus> corpus;
  WorkloadSample sample;

  Fixture() {
    corpus = std::make_unique<SyntheticCorpus>(CorpusConfig::UsPreset(),
                                               &vocab);
    corpus->Generate(5000);
    QueryGenConfig qcfg;
    QueryGenerator qgen(qcfg, corpus.get());
    StreamConfig scfg;
    scfg.num_objects = 20000;
    scfg.mu = 20000;
    GeneratedStream g = GenerateStream(*corpus, qgen, scfg);
    sample = std::move(g.sample);
  }
};

Fixture& F() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_BuildPlan(benchmark::State& state, const char* name) {
  auto& f = F();
  auto partitioner = MakePartitioner(name);
  PartitionConfig cfg;
  cfg.num_workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PartitionPlan plan = partitioner->Build(f.sample, f.vocab, cfg);
    benchmark::DoNotOptimize(plan);
  }
}

void BM_Frequency(benchmark::State& s) { BM_BuildPlan(s, "frequency"); }
void BM_Hypergraph(benchmark::State& s) { BM_BuildPlan(s, "hypergraph"); }
void BM_Metric(benchmark::State& s) { BM_BuildPlan(s, "metric"); }
void BM_Grid(benchmark::State& s) { BM_BuildPlan(s, "grid"); }
void BM_KdTree(benchmark::State& s) { BM_BuildPlan(s, "kdtree"); }
void BM_RTree(benchmark::State& s) { BM_BuildPlan(s, "rtree"); }
void BM_Hybrid(benchmark::State& s) { BM_BuildPlan(s, "hybrid"); }

BENCHMARK(BM_Frequency)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hypergraph)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Metric)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Grid)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KdTree)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RTree)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hybrid)->Arg(8)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ps2

BENCHMARK_MAIN();
