// Reproduces Figure 11: throughput as the number of workers grows
// (8..24), UK dataset, Q1/Q2/Q3. Expected shape (paper): hybrid scales
// near-linearly and leads; metric flattest on UK-Q1 (frequent keywords),
// kd-tree flattest on UK-Q2 (large ranges).
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

namespace {

void RunSet(const char* title, QueryKind kind, size_t mu, size_t objects) {
  PrintHeader(title,
              {"#workers", "metric", "kdtree", "hybrid"});
  Env env = MakeEnv("UK", kind, mu, objects);
  for (const int workers : {8, 16, 24}) {
    PrintCell(static_cast<double>(workers), "%.0f");
    for (const std::string algo : {"metric", "kdtree", "hybrid"}) {
      auto cluster = MakeCluster(env, algo, workers);
      const SimReport report = RunCapacity(*cluster, env);
      PrintCell(report.throughput_estimate_tps, "%.0f");
    }
    EndRow();
  }
}

}  // namespace

int main() {
  InitBench("fig11_scalability");
  std::printf("Figure 11 reproduction: scalability with #workers "
              "(UK dataset)\n");
  RunSet("Fig 11(a)-like: STS-UK-Q1 (mu=20k)", QueryKind::kQ1, 20000,
         12000);
  RunSet("Fig 11(b)-like: STS-UK-Q2 (mu=30k)", QueryKind::kQ2, 30000,
         12000);
  RunSet("Fig 11(c)-like: STS-UK-Q3 (mu=30k)", QueryKind::kQ3, 30000,
         12000);
  return 0;
}
