// Worker hot-path benchmark: single-object vs batched matching against one
// GI2 index at 100k and 1M live subscriptions. Reports objects/sec and
// p50/p99 per-object *service time* for both paths and mirrors the table
// into BENCH_hotpath.json; CI runs `--smoke` and gates on the batched
// throughput via tools/check_bench_threshold.py against the committed
// bench/hotpath_baseline.json.
//
// Latency semantics: single rows time each Match() call, so p50/p99 are true
// per-object times. Batched rows divide each MatchBatch duration by the
// batch size — the *amortized* per-object service cost, which is the number
// a capacity plan needs. An object's completion latency inside a batch is
// the whole batch duration (~batch_size * the amortized cost); end-to-end
// queueing latency is what the engine benches (fig08/fig15) measure.
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "index/gi2.h"
#include "runtime/metrics.h"
#include "workload/query_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

struct PathResult {
  double objs_per_sec = 0.0;
  uint64_t matches = 0;
  LatencyHistogram latency;
};

PathResult RunSingle(Gi2Index& idx,
                     const std::vector<SpatioTextualObject>& objects) {
  PathResult r;
  std::vector<MatchResult> out;
  const int64_t begin = NowMicros();
  for (const auto& o : objects) {
    const int64_t t0 = NowMicros();
    out.clear();
    idx.Match(o, &out);
    r.latency.Record(static_cast<double>(NowMicros() - t0));
    r.matches += out.size();
  }
  const double secs = static_cast<double>(NowMicros() - begin) / 1e6;
  r.objs_per_sec = secs > 0 ? objects.size() / secs : 0.0;
  return r;
}

PathResult RunBatched(Gi2Index& idx,
                      const std::vector<SpatioTextualObject>& objects,
                      size_t batch_size) {
  PathResult r;
  std::vector<const SpatioTextualObject*> ptrs;
  std::vector<MatchResult> out;
  const int64_t begin = NowMicros();
  for (size_t i = 0; i < objects.size(); i += batch_size) {
    const size_t n = std::min(batch_size, objects.size() - i);
    ptrs.clear();
    for (size_t k = 0; k < n; ++k) ptrs.push_back(&objects[i + k]);
    const int64_t t0 = NowMicros();
    out.clear();
    idx.MatchBatch(ptrs.data(), n, &out);
    const double per_object =
        static_cast<double>(NowMicros() - t0) / static_cast<double>(n);
    for (size_t k = 0; k < n; ++k) r.latency.Record(per_object);
    r.matches += out.size();
  }
  const double secs = static_cast<double>(NowMicros() - begin) / 1e6;
  r.objs_per_sec = secs > 0 ? objects.size() / secs : 0.0;
  return r;
}

void EmitRow(const std::string& path, size_t subs, size_t objects,
             const PathResult& r) {
  bench::PrintCell(path);
  bench::PrintCell(static_cast<double>(subs), "%.0f");
  bench::PrintCell(static_cast<double>(objects), "%.0f");
  bench::PrintCell(static_cast<double>(r.matches), "%.0f");
  bench::PrintCell(r.objs_per_sec, "%.0f");
  bench::PrintCell(r.latency.PercentileMicros(0.50), "%.2f");
  bench::PrintCell(r.latency.PercentileMicros(0.99), "%.2f");
  bench::EndRow();
}

}  // namespace
}  // namespace ps2

int main(int argc, char** argv) {
  using namespace ps2;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::InitBench("hotpath");

  const std::vector<size_t> sub_levels =
      smoke ? std::vector<size_t>{20000}
            : std::vector<size_t>{100000, 1000000};
  const size_t num_objects = smoke ? 30000 : 200000;
  const size_t batch_size = 64;

  Vocabulary vocab;
  CorpusConfig cfg = CorpusConfig::UsPreset();
  cfg.vocab_size = smoke ? 40000 : 150000;
  SyntheticCorpus corpus(cfg, &vocab);
  corpus.Generate(smoke ? 20000 : 50000);
  QueryGenConfig qcfg;
  QueryGenerator qgen(qcfg, &corpus);
  const GridSpec grid(cfg.extent, 6);

  bench::PrintHeader("worker hot path: single vs batched matching",
                     {"path", "subscriptions", "objects", "matches",
                      "objs_per_sec", "p50_svc_us", "p99_svc_us"});
  for (const size_t subs : sub_levels) {
    Gi2Index idx(grid, &vocab);
    for (const auto& q : qgen.Generate(subs)) idx.Insert(q);
    const auto objects = corpus.Generate(num_objects);
    // One untimed warm-up pass over a prefix so both measured paths start
    // from the same cache and buffer state.
    {
      std::vector<MatchResult> warm;
      const size_t prefix = std::min<size_t>(objects.size(), 2000);
      for (size_t i = 0; i < prefix; ++i) {
        warm.clear();
        idx.Match(objects[i], &warm);
      }
    }
    const PathResult single = RunSingle(idx, objects);
    EmitRow("single", subs, objects.size(), single);
    const PathResult batched = RunBatched(idx, objects, batch_size);
    EmitRow("batched", subs, objects.size(), batched);
  }
  return 0;
}
