// Reproduces Figure 12 (#Q = 1M -> 20k, STS-US-Q1): for DP / GR / SI / RA,
// (a) the running time of selecting cells for migration on the same
// overloaded worker, (b) average migration cost (bytes) and time, and
// (c) the fraction of tuples with latency <100ms / 100ms-1s / >1s while
// migrations run. Expected shape (paper): DP slowest selection by orders
// of magnitude; DP and GR cheapest migrations; GR best latency profile.
#include "adjust/local_adjust.h"
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

namespace {

// Builds a cluster whose plan was fitted to a *different* workload (stale
// sample), so the live stream overloads some workers — the natural trigger
// for dynamic load adjustment that the paper gets from 60 days of drifting
// tweets.
std::unique_ptr<Cluster> MakeSkewedCluster(const Env& live,
                                           uint64_t stale_seed,
                                           int workers) {
  Env stale = MakeEnv(live.dataset, QueryKind::kQ1, 20000, 20000, stale_seed);
  PartitionConfig cfg;
  cfg.num_workers = workers;
  const PartitionPlan plan = MakePartitioner("kdtree")->Build(
      stale.stream.sample, *live.vocab, cfg);
  auto cluster = std::make_unique<Cluster>(plan, live.vocab.get());
  for (const auto& t : live.stream.setup) cluster->Process(t);
  cluster->ResetLoadWindow();
  return cluster;
}

}  // namespace

int main() {
  InitBench("fig12_migration");
  std::printf("Figure 12 reproduction: migration algorithms "
              "(#Q=20k, STS-US-Q1, 8 workers)\n");
  Env env = MakeEnv("US", QueryKind::kQ1, 20000, 40000);

  // --- (a) time of selecting cells on the same worker ----------------------
  {
    auto cluster = MakeSkewedCluster(env, /*stale_seed=*/77, 8);
    // Accumulate load so Definition-3 cell loads are populated.
    SimOptions warm;
    warm.measure_service = true;
    warm.enable_adjust = false;
    RunSimulation(*cluster, env.stream.stream, warm);
    const auto loads = cluster->WorkerLoads(CostModel{});
    const WorkerId wo = static_cast<WorkerId>(
        std::max_element(loads.begin(), loads.end()) - loads.begin());
    auto cells = LocalLoadAdjuster::CollectCells(*cluster, wo);
    double total = 0.0;
    for (const auto& c : cells) total += c.load;
    const double tau = total * 0.4;
    Rng rng(3);
    PrintHeader("Fig 12(a)-like: cell-selection time",
                {"algorithm", "selection time(ms)", "#cells", "sel.size(KB)"});
    for (const std::string algo : {"DP", "GR", "SI", "RA"}) {
      const auto sel = SelectCells(algo, cells, tau, rng);
      PrintCell(algo);
      PrintCell(sel.selection_ms, "%.3f");
      PrintCell(static_cast<double>(sel.cells.size()), "%.0f");
      PrintCell(sel.total_size / 1024.0, "%.1f");
      EndRow();
    }
  }

  // --- (d) live migrations on the threaded engine ---------------------------
  // The measured counterpart of (b): the same skewed cluster runs on real
  // dispatcher/worker threads while the controller thread installs
  // migrations live (snapshot swap + drain + remove). Latency buckets here
  // are wall-clock dwell times, including the migration stalls.
  PrintHeader("Fig 12(d)-like: live migration on the threaded engine",
              {"algorithm", "#adjustments", "queries moved", "moved(KB)",
               "throughput(t/s)", "epochs", "<100ms"});
  for (const std::string algo : {"DP", "GR", "SI", "RA"}) {
    auto cluster = MakeSkewedCluster(env, 77, 8);
    EngineOptions opts;
    opts.num_dispatchers = 2;
    opts.input_rate_tps = 60000.0;
    opts.controller.enabled = true;
    opts.controller.interval_ms = 5;
    opts.controller.min_tuples = 4000;
    opts.controller.config.adjust.selector = algo;
    opts.controller.config.adjust.sigma = 1.3;
    ThreadedEngine engine(*cluster, opts);
    const RunReport report = engine.Run(env.stream.stream);
    PrintCell(algo);
    PrintCell(static_cast<double>(report.adjustments), "%.0f");
    PrintCell(static_cast<double>(report.queries_migrated), "%.0f");
    PrintCell(report.bytes_migrated / 1024.0, "%.1f");
    PrintCell(report.throughput_tps, "%.0f");
    PrintCell(static_cast<double>(report.routing_epochs), "%.0f");
    PrintCell(report.latency.FractionBelow(100e3), "%.3f");
    EndRow();
  }

  // --- (b)+(c) migration cost/time and latency buckets ----------------------
  PrintHeader("Fig 12(b,c)-like: migration cost/time and latency buckets",
              {"algorithm", "avg cost(KB)", "avg mig.time(s)", "<100ms",
               "100ms-1s", ">1s"});
  for (const std::string algo : {"DP", "GR", "SI", "RA"}) {
    auto cluster = MakeSkewedCluster(env, 77, 8);
    SimOptions opts;
    opts.measure_service = true;
    opts.enable_adjust = true;
    opts.adjust_check_interval = 8000;
    opts.adjust.selector = algo;
    opts.adjust.bandwidth_bytes_per_sec = 5e6;  // modest network
    const SimReport report =
        RunSimulation(*cluster, env.stream.stream, opts);
    PrintCell(algo);
    PrintCell(report.avg_migration_bytes / 1024.0, "%.1f");
    PrintCell(report.avg_migration_seconds, "%.3f");
    PrintCell(report.frac_below_100ms, "%.3f");
    PrintCell(report.frac_100_to_1000ms, "%.3f");
    PrintCell(report.frac_above_1000ms, "%.3f");
    EndRow();
  }
  return 0;
}
