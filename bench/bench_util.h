#ifndef PS2_BENCH_BENCH_UTIL_H_
#define PS2_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "partition/plan.h"
#include "runtime/engine.h"
#include "runtime/sim_engine.h"
#include "runtime/threaded_engine.h"
#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace bench {

// One prepared experiment environment: a corpus (US or UK), a query
// generator (Q1/Q2/Q3), and a generated stream with mu live queries in
// steady state. All figure benches build these through the same helper so
// every algorithm sees identical input.
//
// Paper-to-bench scaling: the paper's query counts (5M/10M/20M) and tweet
// volumes are scaled by ~1/100 so a full figure reproduces in seconds; the
// *shapes* (who wins and why) depend on ratios — query range vs space,
// keyword frequency vs corpus — which are preserved. EXPERIMENTS.md lists
// the mapping next to each figure.
struct Env {
  std::unique_ptr<Vocabulary> vocab;
  std::unique_ptr<SyntheticCorpus> corpus;
  std::unique_ptr<QueryGenerator> qgen;
  GeneratedStream stream;
  std::string dataset;
  std::string query_set;
};

inline Env MakeEnv(const std::string& dataset, QueryKind kind, size_t mu,
                   size_t num_objects, uint64_t seed = 1) {
  Env env;
  env.dataset = dataset;
  env.vocab = std::make_unique<Vocabulary>();
  CorpusConfig ccfg = dataset == "US" ? CorpusConfig::UsPreset()
                                      : CorpusConfig::UkPreset();
  ccfg.seed += seed;
  // Benchmark-scale vocabularies. The ratio of distinct terms to live
  // queries controls how often an object's terms coincide with live rare
  // routing keys; tweets draw from millions of distinct terms, so at our
  // scaled-down query counts the vocabulary must stay much larger than the
  // live query count or Q2's rare keywords stop being rare in H2.
  ccfg.vocab_size = dataset == "US" ? 150000 : 80000;
  ccfg.topic_terms_per_city = 1500;
  env.corpus = std::make_unique<SyntheticCorpus>(ccfg, env.vocab.get());
  // Prime the vocabulary frequency profile before queries sample keywords.
  env.corpus->Generate(std::max<size_t>(20000, num_objects / 5));
  QueryGenConfig qcfg;
  qcfg.kind = kind;
  qcfg.seed = 99 + seed;
  // The paper draws side lengths in absolute km (Q1: 1..50km, Q2:
  // 1..100km). Relative to each extent that is very different: the US box
  // is ~4500km wide, the UK box ~700km, so UK queries cover a far larger
  // *fraction* of the space — which is exactly why space partitioning
  // degrades more on UK-Q2 (Figures 6/11).
  if (dataset == "US") {
    qcfg.q1_side_min_frac = 0.0003;
    qcfg.q1_side_max_frac = 0.012;
    qcfg.q2_side_min_frac = 0.0003;
    qcfg.q2_side_max_frac = 0.024;
  } else {
    qcfg.q1_side_min_frac = 0.0015;
    qcfg.q1_side_max_frac = 0.065;
    qcfg.q2_side_min_frac = 0.0015;
    qcfg.q2_side_max_frac = 0.13;
  }
  env.qgen = std::make_unique<QueryGenerator>(qcfg, env.corpus.get());
  env.query_set =
      std::string("STS-") + dataset + "-Q" +
      (kind == QueryKind::kQ1 ? "1" : kind == QueryKind::kQ2 ? "2" : "3");
  StreamConfig scfg;
  scfg.num_objects = num_objects;
  scfg.mu = mu;
  scfg.seed = 5 + seed;
  env.stream = GenerateStream(*env.corpus, *env.qgen, scfg);
  return env;
}

// Builds the plan with the named partitioner from the stream's sample and
// stands up a cluster with the setup queries pre-inserted.
inline std::unique_ptr<Cluster> MakeCluster(const Env& env,
                                            const std::string& partitioner,
                                            int workers,
                                            const PartitionConfig* base_cfg =
                                                nullptr) {
  PartitionConfig cfg = base_cfg != nullptr ? *base_cfg : PartitionConfig{};
  cfg.num_workers = workers;
  auto p = MakePartitioner(partitioner);
  const PartitionPlan plan =
      p->Build(env.stream.sample, *env.vocab, cfg);
  auto cluster = std::make_unique<Cluster>(plan, env.vocab.get());
  for (const auto& t : env.stream.setup) {
    cluster->Process(t);
  }
  cluster->ResetLoadWindow();
  return cluster;
}

// Runs the measured stream through the capacity simulator (measured
// per-delivery service times + virtual queueing; see SimOptions) and
// returns the report. `rate` is the virtual arrival rate.
inline SimReport RunCapacity(Cluster& cluster, const Env& env,
                             double rate = 50000.0,
                             bool enable_adjust = false) {
  SimOptions opts;
  opts.arrival_rate_tps = rate;
  opts.measure_service = true;
  opts.enable_adjust = enable_adjust;
  return RunSimulation(cluster, env.stream.stream, opts);
}

// ---- table printing + machine-readable JSON mirror -------------------------
//
// Every PrintHeader/PrintCell/EndRow call is mirrored into an in-memory
// table set; a bench that calls InitBench("figNN_x") at the top of main()
// gets a BENCH_figNN_x.json dump (written at exit, into $PS2_BENCH_JSON_DIR
// or the working directory) so CI and plotting scripts never have to parse
// the human-oriented tables.

namespace detail {

struct JsonCell {
  std::string text;
  bool numeric = false;
  double value = 0.0;
};

struct JsonTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<JsonCell>> rows;
  std::vector<JsonCell> current;
};

struct JsonState {
  std::string name;
  bool enabled = false;
  std::vector<JsonTable> tables;
};

inline JsonState& State() {
  static JsonState state;
  return state;
}

inline void JsonEscape(const std::string& in, std::string* out) {
  for (const char c : in) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) *out += c;
    }
  }
}

inline void DumpJson() {
  JsonState& s = State();
  if (!s.enabled) return;
  std::string dir = ".";
  if (const char* env = std::getenv("PS2_BENCH_JSON_DIR")) dir = env;
  const std::string path = dir + "/BENCH_" + s.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::string out = "{\n  \"bench\": \"";
  JsonEscape(s.name, &out);
  out += "\",\n  \"tables\": [\n";
  for (size_t t = 0; t < s.tables.size(); ++t) {
    const JsonTable& table = s.tables[t];
    out += "    {\"title\": \"";
    JsonEscape(table.title, &out);
    out += "\",\n     \"columns\": [";
    for (size_t c = 0; c < table.columns.size(); ++c) {
      if (c > 0) out += ", ";
      out += "\"";
      JsonEscape(table.columns[c], &out);
      out += "\"";
    }
    out += "],\n     \"rows\": [\n";
    for (size_t r = 0; r < table.rows.size(); ++r) {
      out += "       [";
      for (size_t c = 0; c < table.rows[r].size(); ++c) {
        if (c > 0) out += ", ";
        const JsonCell& cell = table.rows[r][c];
        if (cell.numeric) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.17g", cell.value);
          out += buf;
        } else {
          out += "\"";
          JsonEscape(cell.text, &out);
          out += "\"";
        }
      }
      out += r + 1 < table.rows.size() ? "],\n" : "]\n";
    }
    out += t + 1 < s.tables.size() ? "     ]},\n" : "     ]}\n";
  }
  out += "  ]\n}\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

inline void RecordCell(JsonCell cell) {
  JsonState& s = State();
  if (s.tables.empty()) return;
  s.tables.back().current.push_back(std::move(cell));
}

}  // namespace detail

// Names the bench and arms the BENCH_<name>.json dump at process exit.
inline void InitBench(const std::string& name) {
  detail::JsonState& s = detail::State();
  s.name = name;
  if (!s.enabled) {
    s.enabled = true;
    std::atexit(detail::DumpJson);
  }
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : columns) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%-22s", "------");
  std::printf("\n");
  detail::State().tables.push_back(detail::JsonTable{title, columns, {}, {}});
}

inline void PrintCell(const std::string& v) {
  std::printf("%-22s", v.c_str());
  detail::RecordCell(detail::JsonCell{v, false, 0.0});
}
inline void PrintCell(double v, const char* fmt = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  std::printf("%-22s", buf);
  detail::RecordCell(detail::JsonCell{buf, true, v});
}
inline void EndRow() {
  std::printf("\n");
  detail::JsonState& s = detail::State();
  if (!s.tables.empty()) {
    s.tables.back().rows.push_back(std::move(s.tables.back().current));
    s.tables.back().current.clear();
  }
}

inline std::string Mb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1048576.0);
  return buf;
}

}  // namespace bench
}  // namespace ps2

#endif  // PS2_BENCH_BENCH_UTIL_H_
