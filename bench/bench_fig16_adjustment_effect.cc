// Reproduces Figure 16: the effect of dynamic load adjustments on
// throughput under a drifting workload. As in the paper, the query set is
// Q3 and every interval the styles of 10% of the mosaic regions flip
// between Q1-like and Q2-like; we compare the system running GR-based
// local adjustments against the same system with adjustments disabled.
// Expected shape (paper): adjustment wins by ~26%.
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

namespace {

// Builds a multi-phase drifting stream: `phases` phases of `per_phase`
// objects, flipping 10% of Q3 region styles between phases.
std::vector<StreamTuple> DriftingStream(Env& env, int phases,
                                        size_t per_phase,
                                        std::vector<StreamTuple>* setup,
                                        WorkloadSample* sample) {
  StreamConfig scfg;
  scfg.mu = 60000;
  scfg.seed = 5;
  StreamState state = InitStreamState(*env.qgen, scfg, setup, sample);
  std::vector<StreamTuple> stream;
  Rng drift_rng(17);
  for (int p = 0; p < phases; ++p) {
    if (p > 0) {
      // The paper's drifting workload: query styles flip in 10% of the
      // regions AND the message hotspots move (attention shifts between
      // cities), so the plan fitted to phase 0 becomes stale.
      env.qgen->FlipRandomRegions(0.10);
      for (int i = 0; i < 3; ++i) {
        env.corpus->ScaleCityWeight(
            static_cast<int>(drift_rng.NextBelow(env.corpus->num_cities())),
            6.0);
      }
    }
    AppendStreamPhase(*env.corpus, *env.qgen, scfg, state, per_phase,
                      &stream, p == 0 ? sample : nullptr);
  }
  return stream;
}

}  // namespace

int main() {
  InitBench("fig16_adjustment_effect");
  std::printf("Figure 16 reproduction: dynamic load adjustment under drift "
              "(STS-US-Q3, mu=60k, 8 workers)\n");
  PrintHeader("Fig 16-like",
              {"mode", "sust.throughput(t/s)", "#migrations",
               "final balance", "<100ms frac", "mean lat(ms)"});
  for (const bool adjust : {false, true}) {
    // Fresh generators per mode so both see the identical drift sequence.
    Env env = MakeEnv("US", QueryKind::kQ3, 1, 1);  // generators only
    std::vector<StreamTuple> setup;
    WorkloadSample sample;
    const auto stream = DriftingStream(env, /*phases=*/5,
                                       /*per_phase=*/12000, &setup, &sample);
    PartitionConfig cfg;
    cfg.num_workers = 8;
    // The initial plan is the kd-tree baseline: its space-routed cells are
    // the migration unit of Section V, so the experiment isolates the
    // adjustment mechanism exactly as the paper deploys it. (A hybrid plan
    // at this scale chooses text routing for most of the US-Q3 space;
    // migrating *shares* of text cells merges their query sets onto the
    // receiving worker, which confounds the comparison.)
    const PartitionPlan plan =
        MakePartitioner("kdtree")->Build(sample, *env.vocab, cfg);
    Cluster cluster(plan, env.vocab.get());
    for (const auto& t : setup) cluster.Process(t);
    cluster.ResetLoadWindow();
    SimOptions opts;
    opts.measure_service = true;
    opts.arrival_rate_tps = 40000.0;  // ~85% of the adjusted capacity
    opts.enable_adjust = adjust;
    opts.adjust_check_interval = 4000;
    opts.adjust.selector = "GR";
    opts.adjust.sigma = 1.4;
    const SimReport report = RunSimulation(cluster, stream, opts);
    PrintCell(adjust ? "Adjust" : "NoAdjust");
    PrintCell(report.throughput_windowed_tps, "%.0f");
    PrintCell(static_cast<double>(report.migrations.size()), "%.0f");
    PrintCell(BalanceFactor(cluster.WorkerLoads(CostModel{})), "%.2f");
    PrintCell(report.frac_below_100ms, "%.3f");
    PrintCell(report.latency.MeanMicros() / 1e3, "%.1f");
    EndRow();
  }

  // The same drift experiment on the threaded engine: the controller thread
  // observes live per-worker tallies and installs migrations through the
  // snapshot swap while dispatchers keep routing. Throughput here is
  // measured wall-clock, not the simulator's capacity estimate.
  PrintHeader("Fig 16-like (threaded engine, live controller)",
              {"mode", "throughput(t/s)", "#adjustments", "queries moved",
               "mean lat(ms)", "epochs"});
  for (const bool adjust : {false, true}) {
    Env env = MakeEnv("US", QueryKind::kQ3, 1, 1);  // generators only
    std::vector<StreamTuple> setup;
    WorkloadSample sample;
    const auto stream = DriftingStream(env, /*phases=*/5,
                                       /*per_phase=*/12000, &setup, &sample);
    PartitionConfig cfg;
    cfg.num_workers = 8;
    const PartitionPlan plan =
        MakePartitioner("kdtree")->Build(sample, *env.vocab, cfg);
    Cluster cluster(plan, env.vocab.get());
    for (const auto& t : setup) cluster.Process(t);
    cluster.ResetLoadWindow();
    EngineOptions opts;
    opts.num_dispatchers = 2;
    opts.input_rate_tps = 40000.0;
    opts.controller.enabled = adjust;
    opts.controller.interval_ms = 10;
    opts.controller.min_tuples = 4000;
    opts.controller.config.adjust.selector = "GR";
    opts.controller.config.adjust.sigma = 1.4;
    ThreadedEngine engine(cluster, opts);
    const RunReport report = engine.Run(stream);
    PrintCell(adjust ? "Adjust" : "NoAdjust");
    PrintCell(report.throughput_tps, "%.0f");
    PrintCell(static_cast<double>(report.adjustments), "%.0f");
    PrintCell(static_cast<double>(report.queries_migrated), "%.0f");
    PrintCell(report.latency.MeanMicros() / 1e3, "%.1f");
    PrintCell(static_cast<double>(report.routing_epochs), "%.0f");
    EndRow();
  }
  return 0;
}
