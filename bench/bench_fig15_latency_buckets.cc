// Reproduces Figure 15: the fraction of tuples delayed <100ms, 100ms-1s
// and >1s while GR / SI / RA migrations run, at two query scales.
// Expected shape (paper): GR leaves the most tuples unaffected; RA delays
// ~20% more tuples than GR; heavier query sets widen every tail.
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

int main() {
  InitBench("fig15_latency_buckets");
  std::printf("Figure 15 reproduction: latency buckets during migrations "
              "(STS-US-Q1, 8 workers)\n");
  for (const size_t mu : {50000u, 100000u}) {
    Env env = MakeEnv("US", QueryKind::kQ1, mu, 30000);
    char title[96];
    std::snprintf(title, sizeof(title), "Fig 15-like: #Queries=%zu", mu);
    PrintHeader(title, {"algorithm", "<100ms", "100ms-1s", ">1s"});
    for (const std::string algo : {"GR", "SI", "RA"}) {
      Env stale = MakeEnv("US", QueryKind::kQ1, 20000, 20000, 88);
      PartitionConfig cfg;
      cfg.num_workers = 8;
      const PartitionPlan plan = MakePartitioner("kdtree")->Build(
          stale.stream.sample, *env.vocab, cfg);
      Cluster cluster(plan, env.vocab.get());
      for (const auto& t : env.stream.setup) cluster.Process(t);
      cluster.ResetLoadWindow();
      SimOptions opts;
      opts.measure_service = true;
      opts.enable_adjust = true;
      opts.adjust_check_interval = 6000;
      opts.adjust.selector = algo;
      opts.adjust.bandwidth_bytes_per_sec = 5e6;
      const SimReport report =
          RunSimulation(cluster, env.stream.stream, opts);
      PrintCell(algo);
      PrintCell(report.frac_below_100ms, "%.3f");
      PrintCell(report.frac_100_to_1000ms, "%.3f");
      PrintCell(report.frac_above_1000ms, "%.3f");
      EndRow();
    }
  }
  return 0;
}
