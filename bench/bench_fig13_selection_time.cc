// Reproduces Figure 13: average cell-selection time of GR / SI / RA as the
// number of live queries grows (paper: 5M and 10M; scaled 50k and 100k;
// the paper notes DP runs out of memory at these scales — we report its
// projected table size instead of running it). Expected shape: selection
// time is driven by the number of cells, not the number of queries, so GR,
// SI and RA barely change between the two scales.
#include "adjust/local_adjust.h"
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

int main() {
  InitBench("fig13_selection_time");
  std::printf("Figure 13 reproduction: selection time vs #queries "
              "(STS-US-Q1, 8 workers)\n");
  for (const size_t mu : {50000u, 100000u}) {
    Env env = MakeEnv("US", QueryKind::kQ1, mu, 30000);
    PartitionConfig cfg;
    cfg.num_workers = 8;
    // Stale plan (different seed) so the load skews.
    Env stale = MakeEnv("US", QueryKind::kQ1, 20000, 20000, 88);
    const PartitionPlan plan = MakePartitioner("kdtree")->Build(
        stale.stream.sample, *env.vocab, cfg);
    Cluster cluster(plan, env.vocab.get());
    for (const auto& t : env.stream.setup) cluster.Process(t);
    cluster.ResetLoadWindow();
    SimOptions warm;
    warm.measure_service = true;
    warm.enable_adjust = false;
    RunSimulation(cluster, env.stream.stream, warm);

    const auto loads = cluster.WorkerLoads(CostModel{});
    const WorkerId wo = static_cast<WorkerId>(
        std::max_element(loads.begin(), loads.end()) - loads.begin());
    auto cells = LocalLoadAdjuster::CollectCells(cluster, wo);
    double total = 0.0, bytes = 0.0;
    for (const auto& c : cells) {
      total += c.load;
      bytes += c.size;
    }
    const double tau = total * 0.4;
    Rng rng(4);
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Fig 13-like: #Queries=%zu (overloaded worker: %zu cells)",
                  mu, cells.size());
    PrintHeader(title, {"algorithm", "selection time(ms)", "sel.#cells"});
    for (const std::string algo : {"GR", "SI", "RA"}) {
      // Average over repeated runs for stable sub-ms timings.
      double ms = 0.0;
      size_t n = 0;
      for (int rep = 0; rep < 20; ++rep) {
        const auto sel = SelectCells(algo, cells, tau, rng);
        ms += sel.selection_ms;
        n = sel.cells.size();
      }
      PrintCell(algo);
      PrintCell(ms / 20.0, "%.4f");
      PrintCell(static_cast<double>(n), "%.0f");
      EndRow();
    }
    std::printf("(DP omitted as in the paper: its table would need ~%.1f MB "
                "for this worker)\n",
                cells.size() * (bytes / 256.0) * 8.0 / 1048576.0);
  }
  return 0;
}
