// Reproduces Figure 8: per-tuple latency of hybrid vs metric vs kd-tree at
// a moderate (sub-saturation) input rate. Expected shape (paper): hybrid
// lowest; metric collapses on UK-Q1 (frequent keywords -> overloaded text
// workers, paper: 407ms outlier); kd-tree noticeably worse on Q2 (large
// ranges duplicate queries).
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

namespace {

void RunSet(const char* title, QueryKind kind, size_t mu, size_t objects) {
  PrintHeader(title, {"dataset", "algorithm", "mean latency(ms)",
                      "p95 latency(ms)", "p99 latency(ms)"});
  for (const std::string dataset : {"US", "UK"}) {
    Env env = MakeEnv(dataset, kind, mu, objects);
    // Calibrate "moderate input": 50% of the *hybrid* capacity, applied to
    // all algorithms identically (the paper likewise uses one moderate
    // rate per workload). Slower algorithms then queue -- that is the
    // effect Figure 8 shows.
    double rate;
    {
      auto probe = MakeCluster(env, "hybrid", 8);
      rate = 0.5 * RunCapacity(*probe, env).throughput_estimate_tps;
    }
    for (const std::string algo : {"metric", "kdtree", "hybrid"}) {
      auto cluster = MakeCluster(env, algo, 8);
      const SimReport report = RunCapacity(*cluster, env, rate);
      PrintCell(env.query_set);
      PrintCell(algo);
      PrintCell(report.latency.MeanMicros() / 1e3, "%.2f");
      PrintCell(report.latency.PercentileMicros(0.95) / 1e3, "%.2f");
      PrintCell(report.latency.PercentileMicros(0.99) / 1e3, "%.2f");
      EndRow();
    }
  }
}

}  // namespace

int main() {
  InitBench("fig08_latency");
  std::printf("Figure 8 reproduction: latency at moderate input rate "
              "(8 workers)\n");
  RunSet("Fig 8(a)-like: Q1 (mu=50k)", QueryKind::kQ1, 50000, 60000);
  RunSet("Fig 8(b)-like: Q2 (mu=100k)", QueryKind::kQ2, 100000, 60000);
  RunSet("Fig 8(c)-like: Q3 (mu=100k)", QueryKind::kQ3, 100000, 60000);
  return 0;
}
