// Reproduces Figure 7: throughput of hybrid partitioning vs the best text
// baseline (metric) and best space baseline (kd-tree) on Q1 / Q2 / Q3.
// Expected shape (paper): hybrid best or tied everywhere; clear win on the
// mixed-regime Q3 (paper: ~30%); metric weak on Q1, kd-tree weak on Q2.
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

namespace {

void RunSet(const char* title, QueryKind kind, size_t mu, size_t objects) {
  PrintHeader(title, {"dataset", "algorithm", "throughput(tuples/s)",
                      "est.balance"});
  for (const std::string dataset : {"US", "UK"}) {
    Env env = MakeEnv(dataset, kind, mu, objects);
    for (const std::string algo : {"metric", "kdtree", "hybrid"}) {
      auto cluster = MakeCluster(env, algo, 8);
      const SimReport report = RunCapacity(*cluster, env);
      PrintCell(env.query_set);
      PrintCell(algo);
      PrintCell(report.throughput_estimate_tps, "%.0f");
      PrintCell(BalanceFactor(cluster->WorkerLoads(CostModel{})), "%.2f");
      EndRow();
    }
  }
}

}  // namespace

int main() {
  InitBench("fig07_throughput");
  std::printf("Figure 7 reproduction: hybrid vs metric vs kd-tree "
              "(8 workers)\n");
  RunSet("Fig 7(a)-like: Q1 (mu=50k)", QueryKind::kQ1, 50000, 60000);
  RunSet("Fig 7(b)-like: Q2 (mu=100k)", QueryKind::kQ2, 100000, 60000);
  RunSet("Fig 7(c)-like: Q3 (mu=100k)", QueryKind::kQ3, 100000, 60000);
  return 0;
}
