// Reproduces Figure 14: average migration cost (shipped bytes) and
// migration time of GR / SI / RA at two query scales (paper: 5M and 10M,
// scaled 50k / 100k). Expected shape (paper): GR incurs 30-40% less cost
// than SI and RA and the least time; both grow with the query count.
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

int main() {
  InitBench("fig14_migration_cost");
  std::printf("Figure 14 reproduction: migration cost and time "
              "(STS-US-Q1, 8 workers)\n");
  for (const size_t mu : {50000u, 100000u}) {
    Env env = MakeEnv("US", QueryKind::kQ1, mu, 30000);
    char title[96];
    std::snprintf(title, sizeof(title), "Fig 14-like: #Queries=%zu", mu);
    PrintHeader(title, {"algorithm", "avg cost(KB)", "avg mig.time(s)",
                        "#migrations"});
    for (const std::string algo : {"GR", "SI", "RA"}) {
      Env stale = MakeEnv("US", QueryKind::kQ1, 20000, 20000, 88);
      PartitionConfig cfg;
      cfg.num_workers = 8;
      const PartitionPlan plan = MakePartitioner("kdtree")->Build(
          stale.stream.sample, *env.vocab, cfg);
      Cluster cluster(plan, env.vocab.get());
      for (const auto& t : env.stream.setup) cluster.Process(t);
      cluster.ResetLoadWindow();
      SimOptions opts;
      opts.measure_service = true;
      opts.enable_adjust = true;
      opts.adjust_check_interval = 6000;
      opts.adjust.selector = algo;
      opts.adjust.bandwidth_bytes_per_sec = 5e6;
      const SimReport report =
          RunSimulation(cluster, env.stream.stream, opts);
      PrintCell(algo);
      PrintCell(report.avg_migration_bytes / 1024.0, "%.1f");
      PrintCell(report.avg_migration_seconds, "%.3f");
      PrintCell(static_cast<double>(report.num_migrations), "%.0f");
      EndRow();
    }
  }
  return 0;
}
