// Reproduces Figure 10: average worker memory of hybrid vs metric vs
// kd-tree. Expected shape (paper): hybrid lowest in most cases — by
// choosing the per-region strategy it stores fewer duplicated copies of
// each query; none of the methods is memory-heavy.
#include "bench_util.h"

using namespace ps2;
using namespace ps2::bench;

namespace {

void RunSet(const char* title, QueryKind kind, size_t mu, size_t objects) {
  PrintHeader(title, {"dataset", "algorithm", "avg worker mem",
                      "max worker mem", "stored queries(sum)"});
  for (const std::string dataset : {"US", "UK"}) {
    Env env = MakeEnv(dataset, kind, mu, objects);
    for (const std::string algo : {"metric", "kdtree", "hybrid"}) {
      auto cluster = MakeCluster(env, algo, 8);
      const SimReport report = RunCapacity(*cluster, env);
      (void)report;
      size_t total = 0, mx = 0, queries = 0;
      for (int w = 0; w < cluster->num_workers(); ++w) {
        const size_t b = cluster->WorkerMemoryBytes(w);
        total += b;
        mx = std::max(mx, b);
        queries += cluster->worker(w).NumActiveQueries();
      }
      PrintCell(env.query_set);
      PrintCell(algo);
      PrintCell(Mb(total / cluster->num_workers()));
      PrintCell(Mb(mx));
      PrintCell(static_cast<double>(queries), "%.0f");
      EndRow();
    }
  }
}

}  // namespace

int main() {
  InitBench("fig10_memory_worker");
  std::printf("Figure 10 reproduction: worker memory (8 workers)\n");
  RunSet("Fig 10(a)-like: Q1 (mu=50k)", QueryKind::kQ1, 50000, 40000);
  RunSet("Fig 10(b)-like: Q2 (mu=100k)", QueryKind::kQ2, 100000, 40000);
  RunSet("Fig 10(c)-like: Q3 (mu=100k)", QueryKind::kQ3, 100000, 40000);
  return 0;
}
