// Per-subscription-class benchmark: matching throughput and delivery
// latency for boolean, similarity-threshold and continuous top-k
// subscriptions through the full sync facade (Post -> GI2 -> scoring ->
// DeliveryRouter -> TopKCoordinator -> SubscriberSession).
//
// Each row subscribes N queries of ONE class (the same generated query set
// re-typed, so the spatial/textual selectivity is held constant across
// classes), publishes a timestamped object stream (top-k rows give half the
// objects a TTL so the expiry wheel and promotion path are exercised) and
// reports objects/sec, deliveries/sec and delivery latency percentiles.
//
// Mirrors the table into BENCH_subscribe.json; CI runs `--smoke` and gates
// the per-class objs_per_sec floors via tools/check_bench_threshold.py
// against bench/subscribe_baseline.json.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "runtime/ps2stream.h"
#include "workload/query_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

std::vector<TermId> AllTerms(const BoolExpr& expr) {
  std::vector<TermId> terms;
  for (const auto& clause : expr.clauses()) {
    terms.insert(terms.end(), clause.begin(), clause.end());
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

// Re-types a generated boolean query as the requested class, keeping its
// region and (flattened) term set so selectivity stays comparable.
STSQuery Retype(const STSQuery& q, SubscriptionClass cls) {
  if (cls == SubscriptionClass::kBoolean) return q;
  STSQuery out = q;
  out.cls = cls;
  out.expr = BoolExpr::Or(AllTerms(q.expr));
  if (cls == SubscriptionClass::kSimilarity) {
    out.tau = 0.3;
  } else {
    out.k = 5;
  }
  return out;
}

}  // namespace
}  // namespace ps2

int main(int argc, char** argv) {
  using namespace ps2;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::InitBench("subscribe");

  const size_t subs = smoke ? 10000 : 100000;
  const size_t num_objects = smoke ? 20000 : 100000;

  bench::PrintHeader(
      "subscription classes: sync publish -> session, per-class",
      {"path", "subscriptions", "objects", "deliveries", "topk_buffered",
       "objs_per_sec", "deliveries_per_sec", "p50_us", "p99_us"});

  const SubscriptionClass classes[] = {SubscriptionClass::kBoolean,
                                       SubscriptionClass::kSimilarity,
                                       SubscriptionClass::kTopK};
  const char* names[] = {"boolean", "similarity", "top_k"};
  for (int ci = 0; ci < 3; ++ci) {
    const SubscriptionClass cls = classes[ci];
    PS2StreamOptions opts;
    opts.partitioner = "hybrid";
    opts.partition.num_workers = 8;
    PS2Stream service(opts);
    CorpusConfig cfg = CorpusConfig::UsPreset();
    cfg.vocab_size = smoke ? 40000 : 150000;
    SyntheticCorpus corpus(cfg, &service.vocabulary());
    corpus.Generate(smoke ? 20000 : 50000);
    QueryGenConfig qcfg;
    QueryGenerator qgen(qcfg, &corpus);
    {
      WorkloadSample sample;
      sample.objects = corpus.Generate(20000);
      sample.inserts = qgen.Generate(4000);  // plan-building stats only
      service.Bootstrap(sample);
    }

    SessionOptions sopts;
    sopts.queue_capacity = 1 << 16;
    sopts.backpressure = BackpressurePolicy::kBlock;
    auto session = service.OpenSession(sopts);
    for (const auto& q : qgen.Generate(subs)) {
      auto sub = service.Subscribe(session, Retype(q, cls));
      if (sub.ok()) sub->Release();
    }

    std::vector<SpatioTextualObject> objects = corpus.Generate(num_objects);
    int64_t ts = 0;
    for (auto& o : objects) {
      // 1ms event-time spacing; on top-k rows every other object expires
      // after 50ms so held results churn through the expiry wheel.
      o.timestamp_us = (ts += 1000);
      if (cls == SubscriptionClass::kTopK && (o.id & 1) != 0) {
        o.ttl_us = 50'000;
      }
    }

    const int64_t begin = NowMicros();
    for (const auto& o : objects) service.Post(o);
    const double secs = static_cast<double>(NowMicros() - begin) / 1e6;
    const SessionStats stats = session->stats();

    bench::PrintCell(names[ci]);
    bench::PrintCell(static_cast<double>(subs), "%.0f");
    bench::PrintCell(static_cast<double>(objects.size()), "%.0f");
    bench::PrintCell(static_cast<double>(stats.delivered), "%.0f");
    bench::PrintCell(static_cast<double>(service.delivery().topk_buffered()),
                     "%.0f");
    bench::PrintCell(secs > 0 ? objects.size() / secs : 0.0, "%.0f");
    bench::PrintCell(secs > 0 ? stats.delivered / secs : 0.0, "%.0f");
    bench::PrintCell(stats.latency.PercentileMicros(0.50), "%.2f");
    bench::PrintCell(stats.latency.PercentileMicros(0.99), "%.2f");
    bench::EndRow();
  }
  return 0;
}
