// Shard-fabric scaling curve: end-to-end session delivery throughput and
// publish -> deliver latency through the PS2Stream facade at 1, 2 and 4
// engine shards (same per-shard topology, so each added shard adds a full
// dispatcher+worker fleet). The single-shard row runs the classic
// non-fabric engine — the fabric's loopback/serde overhead is visible as
// the gap between it and the 1-shard baseline, and the scaling win as the
// 2- and 4-shard speedups (expect >1.5x at 4 shards on a multi-core
// runner; a 1-core container serializes the fleets and shows ~1x).
//
// Mirrors the table into BENCH_shard.json; CI runs `--smoke` and gates
// absolute deliveries/sec floors via tools/check_bench_threshold.py
// against bench/shard_baseline.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "runtime/ps2stream.h"
#include "workload/query_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

struct ShardResult {
  uint64_t deliveries = 0;
  uint64_t drops = 0;
  double publishes_per_sec = 0.0;
  double deliveries_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t dedup_kills = 0;
};

ShardResult RunStarted(PS2Stream& service,
                       const PS2Stream::SessionPtr& session,
                       const std::vector<SpatioTextualObject>& objects) {
  ShardResult r;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    std::vector<Delivery> batch;
    while (!done.load(std::memory_order_acquire)) {
      batch.clear();
      session->TakeBatch(&batch, 4096, std::chrono::milliseconds(2));
    }
    batch.clear();
    while (session->TakeBatch(&batch, 4096, std::chrono::milliseconds(0)) >
           0) {
      batch.clear();
    }
  });
  service.Start();
  const int64_t begin = NowMicros();
  for (const auto& o : objects) service.Post(o);
  const RunReport report = service.Stop();
  const double secs = static_cast<double>(NowMicros() - begin) / 1e6;
  done.store(true, std::memory_order_release);
  consumer.join();
  r.deliveries = report.session_deliveries;
  r.drops = report.session_drops;
  r.publishes_per_sec = secs > 0 ? objects.size() / secs : 0.0;
  r.deliveries_per_sec = secs > 0 ? report.session_deliveries / secs : 0.0;
  r.p50_us = report.delivery_latency.PercentileMicros(0.50);
  r.p99_us = report.delivery_latency.PercentileMicros(0.99);
  r.dedup_kills = report.dedup_kills;
  if (report.shards > 1) {
    std::printf("%s\n",
                FleetSummary(service.fabric()->shard_reports(), report)
                    .c_str());
  }
  return r;
}

}  // namespace
}  // namespace ps2

int main(int argc, char** argv) {
  using namespace ps2;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::InitBench("shard");

  const size_t subs = smoke ? 10000 : 50000;
  const size_t num_objects = smoke ? 20000 : 100000;

  bench::PrintHeader(
      "shard fabric scaling: started delivery path at 1/2/4 shards",
      {"path", "shards", "subscriptions", "objects", "deliveries", "drops",
       "dedup_kills", "publishes_per_sec", "deliveries_per_sec", "p50_us",
       "p99_us", "speedup"});

  double base_dps = 0.0;
  for (const int shards : {1, 2, 4}) {
    PS2StreamOptions opts;
    opts.partitioner = "hybrid";
    // Fixed per-shard topology: every added shard brings its own
    // dispatcher + 2 workers, which is the whole point of the fabric.
    opts.partition.num_workers = 2;
    opts.engine.num_dispatchers = 1;
    opts.sharding.num_shards = shards;
    PS2Stream service(opts);
    CorpusConfig cfg = CorpusConfig::UsPreset();
    cfg.vocab_size = smoke ? 40000 : 150000;
    SyntheticCorpus corpus(cfg, &service.vocabulary());
    corpus.Generate(smoke ? 20000 : 50000);
    QueryGenConfig qcfg;
    QueryGenerator qgen(qcfg, &corpus);
    {
      WorkloadSample sample;
      sample.objects = corpus.Generate(20000);
      sample.inserts = qgen.Generate(4000);  // plan-building stats only
      service.Bootstrap(sample);
    }

    SessionOptions sopts;
    sopts.queue_capacity = 1 << 16;
    sopts.backpressure = BackpressurePolicy::kBlock;
    auto session = service.OpenSession(sopts);
    for (const auto& q : qgen.Generate(subs)) {
      auto sub = service.Subscribe(session, q);
      if (sub.ok()) sub->Release();
    }
    const auto objects = corpus.Generate(num_objects);
    const ShardResult r = RunStarted(service, session, objects);
    const double speedup =
        base_dps > 0 ? r.deliveries_per_sec / base_dps : 1.0;
    if (shards == 1) base_dps = r.deliveries_per_sec;

    bench::PrintCell("sharded");
    bench::PrintCell(static_cast<double>(shards), "%.0f");
    bench::PrintCell(static_cast<double>(subs), "%.0f");
    bench::PrintCell(static_cast<double>(objects.size()), "%.0f");
    bench::PrintCell(static_cast<double>(r.deliveries), "%.0f");
    bench::PrintCell(static_cast<double>(r.drops), "%.0f");
    bench::PrintCell(static_cast<double>(r.dedup_kills), "%.0f");
    bench::PrintCell(r.publishes_per_sec, "%.0f");
    bench::PrintCell(r.deliveries_per_sec, "%.0f");
    bench::PrintCell(r.p50_us, "%.2f");
    bench::PrintCell(r.p99_us, "%.2f");
    bench::PrintCell(speedup, "%.2f");
    bench::EndRow();
  }
  return 0;
}
