#include "partition/hybrid.h"

#include <gtest/gtest.h>

#include "partition/space_kdtree.h"
#include "partition/text_metric.h"
#include "test_util.h"

namespace ps2 {
namespace {

PartitionConfig Config(int workers = 8) {
  PartitionConfig cfg;
  cfg.num_workers = workers;
  cfg.grid_k = 4;
  return cfg;
}

TEST(HybridTest, EmptySampleSingleWorkerPlan) {
  HybridPartitioner hybrid;
  Vocabulary vocab;
  WorkloadSample empty;
  const PartitionPlan plan = hybrid.Build(empty, vocab, Config(4));
  for (const auto& c : plan.cells) {
    EXPECT_FALSE(c.IsText());
    EXPECT_EQ(c.worker, 0);
  }
}

TEST(HybridTest, SingleWorkerShortCircuits) {
  auto w = testutil::MakeWorkload(7);
  HybridPartitioner hybrid;
  const PartitionPlan plan = hybrid.Build(w.sample, w.vocab, Config(1));
  for (const auto& c : plan.cells) EXPECT_EQ(c.worker, 0);
}

TEST(HybridTest, ProducesMultipleWorkersAndReportsInfo) {
  auto w = testutil::MakeWorkload(13, 2500, 600);
  HybridPartitioner hybrid;
  const PartitionPlan plan = hybrid.Build(w.sample, w.vocab, Config(8));
  std::set<WorkerId> used;
  for (const auto& c : plan.cells) {
    if (c.IsText()) {
      for (const WorkerId worker : c.text->workers()) used.insert(worker);
    } else {
      used.insert(c.worker);
    }
  }
  EXPECT_GE(used.size(), 4u);
  const auto& info = hybrid.last_build_info();
  EXPECT_GE(info.final_leaves, 8u);
  EXPECT_GT(info.estimated_total_load, 0.0);
}

// When object and query texts are dissimilar (queries use rare terms only),
// hybrid should deploy text partitioning somewhere; when they are identical
// and queries are tiny, it should prefer space partitioning everywhere.
TEST(HybridTest, ChoosesTextPartitioningForDissimilarWorkload) {
  Vocabulary vocab;
  std::vector<TermId> obj_terms, qry_terms;
  for (int i = 0; i < 20; ++i) {
    obj_terms.push_back(vocab.Intern("obj" + std::to_string(i)));
    qry_terms.push_back(vocab.Intern("qry" + std::to_string(i)));
  }
  Rng rng(5);
  WorkloadSample sample;
  for (int i = 0; i < 1500; ++i) {
    // Objects carry one query term occasionally so queries have matches but
    // distributions stay dissimilar.
    std::vector<TermId> ts{obj_terms[rng.NextBelow(20)],
                           obj_terms[rng.NextBelow(20)]};
    if (rng.NextBernoulli(0.15)) ts.push_back(qry_terms[rng.NextBelow(20)]);
    sample.objects.push_back(SpatioTextualObject::FromTerms(
        i + 1, Point{rng.NextUniform(0, 100), rng.NextUniform(0, 100)}, ts));
    for (const TermId t : sample.objects.back().terms) vocab.AddCount(t);
  }
  for (int i = 0; i < 400; ++i) {
    STSQuery q;
    q.id = i + 1;
    q.expr = BoolExpr::And({qry_terms[rng.NextBelow(20)]});
    // Large, clustered regions: space partitioning would duplicate heavily.
    const Point c{rng.NextUniform(30, 70), rng.NextUniform(30, 70)};
    q.region = Rect::Centered(c, 50, 50);
    sample.inserts.push_back(q);
  }
  HybridPartitioner hybrid;
  const PartitionPlan plan = hybrid.Build(sample, vocab, Config(8));
  EXPECT_GT(plan.NumTextCells(), 0u);
}

TEST(HybridTest, ChoosesSpacePartitioningForSimilarLocalWorkload) {
  Vocabulary vocab;
  std::vector<TermId> terms;
  for (int i = 0; i < 30; ++i) {
    terms.push_back(vocab.Intern("t" + std::to_string(i)));
  }
  Rng rng(6);
  WorkloadSample sample;
  for (int i = 0; i < 1500; ++i) {
    std::vector<TermId> ts{terms[rng.NextBelow(30)], terms[rng.NextBelow(30)]};
    sample.objects.push_back(SpatioTextualObject::FromTerms(
        i + 1, Point{rng.NextUniform(0, 100), rng.NextUniform(0, 100)}, ts));
    for (const TermId t : sample.objects.back().terms) vocab.AddCount(t);
  }
  for (int i = 0; i < 500; ++i) {
    STSQuery q;
    q.id = i + 1;
    // Same term distribution as objects, small well-spread regions.
    q.expr = BoolExpr::And({terms[rng.NextBelow(30)]});
    const Point c{rng.NextUniform(0, 100), rng.NextUniform(0, 100)};
    q.region = Rect::Centered(c, 3, 3);
    sample.inserts.push_back(q);
  }
  HybridPartitioner hybrid;
  const PartitionPlan plan = hybrid.Build(sample, vocab, Config(8));
  // Mostly (or entirely) space-routed.
  EXPECT_LT(plan.NumTextCells(), plan.grid.NumCells() / 4);
}

// The headline claim at small scale: on a mixed-regime workload, hybrid's
// estimated total load should not exceed either pure strategy's.
TEST(HybridTest, TotalLoadAtMostPureStrategies) {
  auto w = testutil::MakeWorkload(29, 3000, 800);
  const PartitionConfig cfg = Config(8);
  HybridPartitioner hybrid;
  MetricTextPartitioner metric;
  KdTreeSpacePartitioner kdtree;
  const double h =
      EstimatePlanLoad(hybrid.Build(w.sample, w.vocab, cfg), w.sample,
                       w.vocab, cfg.cost)
          .total_load;
  const double t =
      EstimatePlanLoad(metric.Build(w.sample, w.vocab, cfg), w.sample,
                       w.vocab, cfg.cost)
          .total_load;
  const double s =
      EstimatePlanLoad(kdtree.Build(w.sample, w.vocab, cfg), w.sample,
                       w.vocab, cfg.cost)
          .total_load;
  // Allow 10% slack: hybrid optimizes on its own internal estimates.
  EXPECT_LE(h, 1.10 * std::min(t, s));
}

TEST(HybridTest, RespectsBalanceConstraintWhenAchievable) {
  auto w = testutil::MakeWorkload(31, 2500, 500);
  PartitionConfig cfg = Config(4);
  cfg.sigma = 2.0;
  HybridPartitioner hybrid;
  const PartitionPlan plan = hybrid.Build(w.sample, w.vocab, cfg);
  const auto report = EstimatePlanLoad(plan, w.sample, w.vocab, cfg.cost);
  // The internal balance loop targets sigma on its leaf estimates; the
  // realized balance can be somewhat worse, but must stay in the ballpark.
  EXPECT_LT(report.balance, cfg.sigma * 2.5);
}

}  // namespace
}  // namespace ps2
