#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "api/delivery.h"
#include "api/status.h"
#include "core/object.h"
#include "core/query.h"
#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "subscribe/expiry_wheel.h"
#include "subscribe/spec.h"
#include "subscribe/topk.h"
#include "text/similarity.h"
#include "text/vocabulary.h"

namespace ps2 {
namespace {

// ---------------------------------------------------------------------------
// Spec compilation & validation
// ---------------------------------------------------------------------------

TEST(SubscriptionSpecTest, CompilesEachClass) {
  Vocabulary vocab;
  const Rect region(0, 0, 10, 10);

  STSQuery b;
  ASSERT_TRUE(
      CompileSpec(SubscriptionSpec::Boolean("a AND (b OR c)", region), vocab,
                  &b)
          .ok());
  EXPECT_EQ(b.cls, SubscriptionClass::kBoolean);
  EXPECT_FALSE(b.scored());

  STSQuery s;
  ASSERT_TRUE(
      CompileSpec(SubscriptionSpec::Similarity({"pizza", "vegan"}, 0.5, region),
                  vocab, &s)
          .ok());
  EXPECT_EQ(s.cls, SubscriptionClass::kSimilarity);
  EXPECT_TRUE(s.scored());
  EXPECT_DOUBLE_EQ(s.tau, 0.5);
  EXPECT_EQ(s.ScoredTerms().size(), 2u);

  STSQuery t;
  ASSERT_TRUE(CompileSpec(SubscriptionSpec::TopK({"taxi"}, 3, region), vocab,
                          &t)
                  .ok());
  EXPECT_EQ(t.cls, SubscriptionClass::kTopK);
  EXPECT_EQ(t.k, 3u);
  EXPECT_EQ(t.ScoredTerms().size(), 1u);
}

TEST(SubscriptionSpecTest, ScoredTermsAreSortedAndDeduplicated) {
  Vocabulary vocab;
  STSQuery q;
  ASSERT_TRUE(CompileSpec(SubscriptionSpec::Similarity({"b", "a", "b", "c"},
                                                       0.2, Rect(0, 0, 1, 1)),
                          vocab, &q)
                  .ok());
  const std::vector<TermId>& terms = q.ScoredTerms();
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_TRUE(std::is_sorted(terms.begin(), terms.end()));
}

TEST(SubscriptionSpecTest, RejectsMalformedSpecsWithFieldPosition) {
  Vocabulary vocab;
  STSQuery out;
  const Rect region(0, 0, 1, 1);

  for (const double tau : {-1.0, 0.0, 1.0001}) {
    const Status st =
        CompileSpec(SubscriptionSpec::Similarity({"a"}, tau, region), vocab,
                    &out);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "tau=" << tau;
    EXPECT_NE(st.message().find("spec.tau"), std::string::npos);
  }

  const Status k0 =
      CompileSpec(SubscriptionSpec::TopK({"a"}, 0, region), vocab, &out);
  EXPECT_EQ(k0.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(k0.message().find("spec.k"), std::string::npos);

  const Status no_terms =
      CompileSpec(SubscriptionSpec::TopK({}, 2, region), vocab, &out);
  EXPECT_EQ(no_terms.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_terms.message().find("spec.terms"), std::string::npos);

  const Status hole = CompileSpec(
      SubscriptionSpec::Similarity({"a", "b", ""}, 0.5, region), vocab, &out);
  EXPECT_EQ(hole.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(hole.message().find("spec.terms[2]"), std::string::npos);

  const Status parse = CompileSpec(
      SubscriptionSpec::Boolean("a AND AND", region), vocab, &out);
  EXPECT_EQ(parse.code(), StatusCode::kInvalidArgument);
}

TEST(SubscriptionSpecTest, ValidateQuerySpecChecksScoredInvariants) {
  Vocabulary vocab;
  const TermId a = vocab.Intern("a");

  STSQuery ok;
  ok.cls = SubscriptionClass::kSimilarity;
  ok.expr = BoolExpr::Or({a});
  ok.tau = 0.7;
  EXPECT_TRUE(ValidateQuerySpec(ok).ok());

  STSQuery bad_tau = ok;
  bad_tau.tau = 0.0;
  EXPECT_EQ(ValidateQuerySpec(bad_tau).code(), StatusCode::kInvalidArgument);

  STSQuery bad_k;
  bad_k.cls = SubscriptionClass::kTopK;
  bad_k.expr = BoolExpr::Or({a});
  bad_k.k = 0;
  EXPECT_EQ(ValidateQuerySpec(bad_k).code(), StatusCode::kInvalidArgument);

  // Boolean queries pass unconditionally.
  STSQuery boolean;
  boolean.cls = SubscriptionClass::kBoolean;
  EXPECT_TRUE(ValidateQuerySpec(boolean).ok());
}

TEST(SubscriptionSpecTest, ClassNames) {
  EXPECT_STREQ(SubscriptionClassName(SubscriptionClass::kBoolean), "boolean");
  EXPECT_STREQ(SubscriptionClassName(SubscriptionClass::kSimilarity),
               "similarity");
  EXPECT_STREQ(SubscriptionClassName(SubscriptionClass::kTopK), "top-k");
}

// ---------------------------------------------------------------------------
// Binary cosine kernel
// ---------------------------------------------------------------------------

TEST(BinaryCosineTest, KnownValues) {
  const std::vector<TermId> a{1, 2, 3, 4};
  const std::vector<TermId> b{3, 4, 5};
  // |A ∩ B| = 2, sqrt(4 * 3) = sqrt(12).
  EXPECT_DOUBLE_EQ(BinaryCosineSimilarity(a, b), 2.0 / std::sqrt(12.0));
  EXPECT_DOUBLE_EQ(BinaryCosineSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(BinaryCosineSimilarity(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(BinaryCosineSimilarity({}, b), 0.0);
  EXPECT_DOUBLE_EQ(BinaryCosineSimilarity({1, 2}, {3, 4}), 0.0);
}

// ---------------------------------------------------------------------------
// Expiry wheel
// ---------------------------------------------------------------------------

TEST(ExpiryWheelTest, PopsDueBucketsInStampOrder) {
  ExpiryWheel wheel;
  wheel.Schedule(300, 7);
  wheel.Schedule(100, 1);
  wheel.Schedule(100, 1);  // coalesced duplicate
  wheel.Schedule(200, 2);
  EXPECT_EQ(wheel.size(), 3u);

  std::vector<QueryId> due;
  wheel.PopDue(50, &due);
  EXPECT_TRUE(due.empty());

  wheel.PopDue(200, &due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], 1u);
  EXPECT_EQ(due[1], 2u);
  EXPECT_EQ(wheel.size(), 1u);

  due.clear();
  wheel.PopDue(1000, &due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 7u);
  EXPECT_TRUE(wheel.empty());
}

// Regression: coalescing must survive interleaving. The original
// implementation only compared against bucket.back(), so re-scheduling the
// same (stamp, query) with another query in between grew the bucket and
// inflated every later PopDue due-list.
TEST(ExpiryWheelTest, CoalescesInterleavedDuplicates) {
  ExpiryWheel wheel;
  wheel.Schedule(100, 1);
  wheel.Schedule(100, 2);
  wheel.Schedule(100, 1);  // interleaved duplicate of (100, 1)
  wheel.Schedule(100, 2);  // interleaved duplicate of (100, 2)
  wheel.Schedule(100, 1);

  std::vector<QueryId> due;
  wheel.PopDue(100, &due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], 1u);
  EXPECT_EQ(due[1], 2u);
  EXPECT_TRUE(wheel.empty());

  // Distinct stamps still keep distinct buckets: the same query may be due
  // at two different times.
  wheel.Schedule(200, 9);
  wheel.Schedule(300, 9);
  due.clear();
  wheel.PopDue(300, &due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], 9u);
  EXPECT_EQ(due[1], 9u);
}

// ---------------------------------------------------------------------------
// Top-k coordinator (unit)
// ---------------------------------------------------------------------------

Delivery Cand(QueryId q, ObjectId o, double score, int64_t expire_us) {
  Delivery d;
  d.query_id = q;
  d.object_id = o;
  d.score = score;
  d.expire_us = expire_us;
  return d;
}

TEST(TopKCoordinatorTest, AdmitsEvictsAndBuffers) {
  TopKCoordinator topk;
  EXPECT_FALSE(topk.active());
  topk.Register(1, 2);
  EXPECT_TRUE(topk.active());
  EXPECT_TRUE(topk.Owns(1));
  EXPECT_FALSE(topk.Owns(2));

  EXPECT_TRUE(topk.Offer(Cand(1, 10, 0.5, 0)));
  EXPECT_TRUE(topk.Offer(Cand(1, 11, 0.9, 0)));
  // Worse than the heap's worst: buffered, not delivered.
  EXPECT_FALSE(topk.Offer(Cand(1, 12, 0.1, 0)));
  EXPECT_EQ(topk.buffered(), 1u);
  // Better than the worst: admitted, evictee (10, 0.5) goes to the buffer.
  EXPECT_TRUE(topk.Offer(Cand(1, 13, 0.7, 0)));
  EXPECT_EQ(topk.buffered(), 2u);

  const std::vector<TopKEntry> held = topk.Snapshot(1);
  ASSERT_EQ(held.size(), 2u);
  EXPECT_EQ(held[0].object_id, 11u);
  EXPECT_EQ(held[1].object_id, 13u);
  EXPECT_TRUE(held[0].held);
  EXPECT_TRUE(held[0].delivered);

  // Unknown queries never match.
  EXPECT_FALSE(topk.Offer(Cand(99, 1, 1.0, 0)));
}

TEST(TopKCoordinatorTest, TieBreaksByObjectIdDesc) {
  TopKCoordinator topk;
  topk.Register(1, 1);
  EXPECT_TRUE(topk.Offer(Cand(1, 10, 0.5, 0)));
  // Same score, higher id: wins the tie.
  EXPECT_TRUE(topk.Offer(Cand(1, 20, 0.5, 0)));
  // Same score, lower id: loses the tie.
  EXPECT_FALSE(topk.Offer(Cand(1, 15, 0.5, 0)));
  const auto held = topk.Snapshot(1);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].object_id, 20u);
}

TEST(TopKCoordinatorTest, ExpiryPromotesBestBufferedOnce) {
  TopKCoordinator topk;
  topk.Register(1, 1);
  EXPECT_TRUE(topk.Offer(Cand(1, 10, 0.9, /*expire_us=*/100)));
  EXPECT_FALSE(topk.Offer(Cand(1, 11, 0.4, 0)));  // buffered
  EXPECT_FALSE(topk.Offer(Cand(1, 12, 0.6, 0)));  // buffered, better

  std::vector<Delivery> promoted;
  topk.AdvanceWatermark(99, &promoted);
  EXPECT_TRUE(promoted.empty());

  topk.AdvanceWatermark(100, &promoted);
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0].object_id, 12u);
  EXPECT_DOUBLE_EQ(promoted[0].score, 0.6);

  const auto held = topk.Snapshot(1);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].object_id, 12u);

  // Stale watermarks no-op.
  promoted.clear();
  topk.AdvanceWatermark(50, &promoted);
  EXPECT_TRUE(promoted.empty());
  EXPECT_EQ(topk.watermark(), 100);
}

TEST(TopKCoordinatorTest, ReAdmissionOfDeliveredCandidateIsSilent) {
  TopKCoordinator topk;
  topk.Register(1, 1);
  EXPECT_TRUE(topk.Offer(Cand(1, 10, 0.5, 0)));   // delivered
  EXPECT_TRUE(topk.Offer(Cand(1, 11, 0.9, 100))); // evicts 10, delivered
  // 10 is buffered and was already delivered: when 11 expires, 10 re-enters
  // the held set but is NOT re-delivered.
  std::vector<Delivery> promoted;
  topk.AdvanceWatermark(200, &promoted);
  EXPECT_TRUE(promoted.empty());
  const auto held = topk.Snapshot(1);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].object_id, 10u);
  EXPECT_TRUE(held[0].delivered);
}

TEST(TopKCoordinatorTest, ExpiredOnArrivalIsDropped) {
  TopKCoordinator topk;
  topk.Register(1, 2);
  std::vector<Delivery> promoted;
  topk.AdvanceWatermark(500, &promoted);
  EXPECT_FALSE(topk.Offer(Cand(1, 10, 0.9, /*expire_us=*/400)));
  EXPECT_TRUE(topk.Snapshot(1).empty());
  EXPECT_EQ(topk.buffered(), 0u);
}

TEST(TopKCoordinatorTest, CheckpointRoundTripsHeapAndBuffer) {
  TopKCoordinator topk;
  topk.Register(1, 2);
  topk.Register(2, 1);
  EXPECT_TRUE(topk.Offer(Cand(1, 10, 0.9, 300)));
  EXPECT_TRUE(topk.Offer(Cand(1, 11, 0.5, 0)));
  EXPECT_FALSE(topk.Offer(Cand(1, 12, 0.2, 0)));  // buffered
  EXPECT_TRUE(topk.Offer(Cand(2, 20, 0.8, 0)));
  std::vector<Delivery> promoted;
  topk.AdvanceWatermark(100, &promoted);

  const TopKCheckpoint cp = topk.Checkpoint();
  EXPECT_EQ(cp.watermark_us, 100);

  TopKCoordinator restored;
  restored.Register(1, 2);
  restored.Register(2, 1);
  restored.Restore(cp);
  EXPECT_EQ(restored.watermark(), 100);
  EXPECT_EQ(restored.buffered(), topk.buffered());
  for (const QueryId id : {1u, 2u}) {
    const auto a = topk.Snapshot(id);
    const auto b = restored.Snapshot(id);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].object_id, b[i].object_id);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
      EXPECT_EQ(a[i].expire_us, b[i].expire_us);
      EXPECT_EQ(a[i].delivered, b[i].delivered);
    }
  }

  // Restore drops entries of unregistered queries instead of resurrecting
  // them.
  TopKCoordinator partial;
  partial.Register(2, 1);
  partial.Restore(cp);
  EXPECT_TRUE(partial.Snapshot(1).empty());
  EXPECT_EQ(partial.Snapshot(2).size(), 1u);

  // The expiry of the restored held entry still fires.
  std::vector<Delivery> promo2;
  restored.AdvanceWatermark(300, &promo2);
  const auto held1 = restored.Snapshot(1);
  ASSERT_EQ(held1.size(), 2u);
  EXPECT_EQ(held1[0].object_id, 11u);
  EXPECT_EQ(held1[1].object_id, 12u);
}

// ---------------------------------------------------------------------------
// End-to-end through the synchronous facade
// ---------------------------------------------------------------------------

SpatioTextualObject Obj(ObjectId id, Point loc, std::vector<TermId> terms,
                        int64_t timestamp_us, int64_t ttl_us = 0) {
  SpatioTextualObject o = SpatioTextualObject::FromTerms(id, loc, terms);
  o.timestamp_us = timestamp_us;
  o.ttl_us = ttl_us;
  return o;
}

std::vector<Delivery> Drain(SubscriberSession& session) {
  std::vector<Delivery> out;
  Delivery d;
  while (session.Poll(&d)) out.push_back(d);
  return out;
}

TEST(SubscriptionClassesTest, SimilarityThresholdFiltersByScore) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  auto session = ps2.OpenSession();
  const TermId a = ps2.vocabulary().Intern("a");
  const TermId b = ps2.vocabulary().Intern("b");
  const TermId c = ps2.vocabulary().Intern("c");

  auto sub = ps2.Subscribe(
      session, SubscriptionSpec::Similarity({"a", "b"}, 0.6, Rect(0, 0, 9, 9)));
  ASSERT_TRUE(sub.ok());

  // {a, b}: cosine 1.0 — match. {a, c}: 1/2 = 0.5 < 0.6 — no match.
  // {a}: 1/sqrt(2) ~= 0.707 — match. Outside the region — no match.
  ASSERT_TRUE(ps2.Post(Obj(1, {1, 1}, {a, b}, 10)).ok());
  ASSERT_TRUE(ps2.Post(Obj(2, {1, 1}, {a, c}, 20)).ok());
  ASSERT_TRUE(ps2.Post(Obj(3, {1, 1}, {a}, 30)).ok());
  ASSERT_TRUE(ps2.Post(Obj(4, {20, 20}, {a, b}, 40)).ok());

  const std::vector<Delivery> got = Drain(*session);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].object_id, 1u);
  EXPECT_DOUBLE_EQ(got[0].score, 1.0);
  EXPECT_EQ(got[1].object_id, 3u);
  EXPECT_DOUBLE_EQ(got[1].score, 1.0 / std::sqrt(2.0));
}

TEST(SubscriptionClassesTest, TopKDeliversAdmissionsAndPromotions) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  auto session = ps2.OpenSession();
  const TermId a = ps2.vocabulary().Intern("a");
  const TermId b = ps2.vocabulary().Intern("b");

  auto sub = ps2.Subscribe(
      session, SubscriptionSpec::TopK({"a", "b"}, 1, Rect(0, 0, 9, 9)));
  ASSERT_TRUE(sub.ok());
  const QueryId qid = sub->id();

  // Score 1.0, expires at 100 + 50.
  ASSERT_TRUE(ps2.Post(Obj(1, {1, 1}, {a, b}, 100, 50)).ok());
  // Score ~0.707: candidate but buffered (k = 1). Never expires.
  ASSERT_TRUE(ps2.Post(Obj(2, {2, 2}, {a}, 110)).ok());
  std::vector<Delivery> got = Drain(*session);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].object_id, 1u);

  auto held = ps2.topk().Snapshot(qid);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].object_id, 1u);

  // Quiet stream: the watermark advance alone expires object 1 and promotes
  // (and delivers) object 2.
  ps2.AdvanceEventTime(150);
  got = Drain(*session);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].object_id, 2u);
  held = ps2.topk().Snapshot(qid);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].object_id, 2u);

  // Facade snapshot agrees with the brute-force reference over the same
  // schedule.
  ReferenceMatcher ref;
  STSQuery q = ps2.subscriptions().at(qid);
  ref.Insert(q);
  ref.Post(Obj(1, {1, 1}, {a, b}, 100, 50));
  ref.Post(Obj(2, {2, 2}, {a}, 110));
  ref.AdvanceTime(150);
  const auto ref_held = ref.TopKSnapshot(qid);
  ASSERT_EQ(ref_held.size(), held.size());
  EXPECT_EQ(ref_held[0].object_id, held[0].object_id);
  EXPECT_DOUBLE_EQ(ref_held[0].score, held[0].score);
}

TEST(SubscriptionClassesTest, MovingSubscriberSeesNewRegionOnly) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  auto session = ps2.OpenSession();
  const TermId a = ps2.vocabulary().Intern("a");

  auto sub = ps2.Subscribe(
      session, SubscriptionSpec::Similarity({"a"}, 0.5, Rect(0, 0, 4, 4)));
  ASSERT_TRUE(sub.ok());
  const QueryId qid = sub->id();

  ASSERT_TRUE(ps2.Post(Obj(1, {1, 1}, {a}, 10)).ok());
  ASSERT_TRUE(ps2.UpdateSubscription(qid, Rect(10, 10, 14, 14)).ok());
  // Old region no longer matches; new region does. Class, terms, tau and the
  // session route all survive the move.
  ASSERT_TRUE(ps2.Post(Obj(2, {1, 1}, {a}, 20)).ok());
  ASSERT_TRUE(ps2.Post(Obj(3, {11, 11}, {a}, 30)).ok());

  const std::vector<Delivery> got = Drain(*session);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].object_id, 1u);
  EXPECT_EQ(got[1].object_id, 3u);

  const STSQuery& q = ps2.subscriptions().at(qid);
  EXPECT_EQ(q.cls, SubscriptionClass::kSimilarity);
  EXPECT_DOUBLE_EQ(q.tau, 0.5);
  EXPECT_EQ(q.region.min_x, 10.0);

  EXPECT_EQ(ps2.UpdateSubscription(9999, Rect(0, 0, 1, 1)).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ps2
