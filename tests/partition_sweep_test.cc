// Parameterized sweeps over worker counts and grid granularities: routing
// completeness must hold for every (partitioner, m, k) combination — the
// broad-coverage counterpart to the focused property tests.
#include <gtest/gtest.h>

#include "partition/plan.h"
#include "runtime/engine.h"
#include "test_util.h"

namespace ps2 {
namespace {

using SweepParam = std::tuple<std::string, int, int>;  // name, workers, k

class PartitionSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PartitionSweepTest, RoutingCompletenessAcrossConfigs) {
  const auto [name, workers, grid_k] = GetParam();
  auto w = testutil::MakeWorkload(1000 + workers * 10 + grid_k, 500, 150);
  PartitionConfig cfg;
  cfg.num_workers = workers;
  cfg.grid_k = grid_k;
  const PartitionPlan plan =
      MakePartitioner(name)->Build(w.sample, w.vocab, cfg);
  Cluster cluster(plan, &w.vocab);
  ReferenceMatcher ref;
  for (const auto& q : w.sample.inserts) {
    cluster.Process(StreamTuple::OfInsert(q));
    ref.Insert(q);
  }
  for (const auto& o : w.extra_objects) {
    std::vector<MatchResult> got;
    cluster.Process(StreamTuple::OfObject(o), &got);
    ASSERT_EQ(testutil::Sorted(got), testutil::Sorted(ref.Match(o)))
        << name << " m=" << workers << " k=" << grid_k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PartitionSweepTest,
    ::testing::Combine(::testing::Values("frequency", "metric", "grid",
                                         "kdtree", "rtree", "hybrid"),
                       ::testing::Values(2, 5, 12),
                       ::testing::Values(2, 5)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::get<0>(info.param) + "_m" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

// Plan estimate sanity across the same matrix: total load must grow when
// workers shrink duplication opportunities away (m=1 lower bound) and the
// balance must be >= 1.
class PlanEstimateSweepTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(PlanEstimateSweepTest, MoreWorkersNeverBeatSingleWorkerTotal) {
  auto w = testutil::MakeWorkload(2024, 1000, 300);
  PartitionConfig cfg;
  cfg.grid_k = 4;
  cfg.num_workers = 1;
  const double single =
      EstimatePlanLoad(
          MakePartitioner(GetParam())->Build(w.sample, w.vocab, cfg),
          w.sample, w.vocab, cfg.cost)
          .total_load;
  for (int m : {2, 4, 8}) {
    cfg.num_workers = m;
    const auto report = EstimatePlanLoad(
        MakePartitioner(GetParam())->Build(w.sample, w.vocab, cfg), w.sample,
        w.vocab, cfg.cost);
    EXPECT_GE(report.balance, 1.0);
    // Linear terms can only grow with duplication; the c1 product term
    // shrinks by splitting, so no strict global ordering exists — but the
    // plan must never "lose" work: every object and insert is routed at
    // least once.
    uint64_t objects = 0, inserts = 0;
    for (const auto& t : report.tallies) {
      objects += t.objects;
      inserts += t.inserts;
    }
    EXPECT_GE(objects + inserts, 1u);
    EXPECT_GE(objects, w.sample.objects.size() / 2);  // most objects routed
    EXPECT_GE(inserts, w.sample.inserts.size());      // every insert routed
  }
  EXPECT_GT(single, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, PlanEstimateSweepTest,
                         ::testing::Values("frequency", "hypergraph",
                                           "metric", "grid", "kdtree",
                                           "rtree", "hybrid"));

}  // namespace
}  // namespace ps2
