#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace ps2 {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<uint32_t, uint32_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);
  map[7] = 70;
  map[9] = 90;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 70u);
  EXPECT_FALSE(map.Erase(8));
  EXPECT_TRUE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_EQ(map.size(), 1u);
  // Re-inserting an erased key reuses its tombstone.
  map[7] = 71;
  EXPECT_EQ(*map.Find(7), 71u);
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs) {
  FlatMap<uint64_t, uint32_t> map;
  EXPECT_EQ(map[42], 0u);
  map[42] = 5;
  EXPECT_EQ(map[42], 5u);
}

TEST(FlatMapTest, GrowsThroughRehash) {
  FlatMap<uint32_t, uint32_t> map;
  for (uint32_t i = 0; i < 1000; ++i) map[i] = i * 3;
  EXPECT_EQ(map.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_NE(map.Find(i), nullptr) << i;
    EXPECT_EQ(*map.Find(i), i * 3);
  }
}

TEST(FlatMapTest, ChurnDoesNotGrowUnbounded) {
  // Erase leaves tombstones; rehash must reclaim them or a steady
  // insert/erase cycle would expand the table forever.
  FlatMap<uint32_t, uint32_t> map;
  for (uint32_t round = 0; round < 200; ++round) {
    for (uint32_t i = 0; i < 64; ++i) map[round * 64 + i] = i;
    for (uint32_t i = 0; i < 64; ++i) map.Erase(round * 64 + i);
  }
  EXPECT_EQ(map.size(), 0u);
  EXPECT_LE(map.capacity(), 1024u);
}

TEST(FlatMapTest, ForEachVisitsExactlyLiveEntries) {
  FlatMap<uint32_t, uint32_t> map;
  for (uint32_t i = 0; i < 50; ++i) map[i] = i;
  for (uint32_t i = 0; i < 50; i += 2) map.Erase(i);
  std::vector<uint32_t> seen;
  map.ForEach([&](uint32_t k, uint32_t& v) {
    EXPECT_EQ(k, v);
    seen.push_back(k);
  });
  EXPECT_EQ(seen.size(), 25u);
  for (const uint32_t k : seen) EXPECT_EQ(k % 2, 1u);
}

TEST(FlatMapTest, RandomizedAgainstUnorderedMap) {
  FlatMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(1234);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = rng.NextBelow(512);
    const double dice = rng.NextDouble();
    if (dice < 0.5) {
      const uint64_t value = rng.NextBelow(1 << 20);
      map[key] = value;
      ref[key] = value;
    } else if (dice < 0.75) {
      EXPECT_EQ(map.Erase(key), ref.erase(key) > 0) << "step " << step;
    } else {
      const uint64_t* found = map.Find(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(found, nullptr) << "step " << step;
      } else {
        ASSERT_NE(found, nullptr) << "step " << step;
        EXPECT_EQ(*found, it->second) << "step " << step;
      }
    }
    ASSERT_EQ(map.size(), ref.size()) << "step " << step;
  }
  size_t visited = 0;
  map.ForEach([&](uint64_t k, uint64_t& v) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

}  // namespace
}  // namespace ps2
