#ifndef PS2_TESTS_TEST_UTIL_H_
#define PS2_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/workload_stats.h"
#include "index/reference_matcher.h"
#include "text/vocabulary.h"

namespace ps2 {
namespace testutil {

// A small self-contained workload with clustered locations and skewed term
// frequencies — enough structure for every partitioner to produce a
// non-trivial plan, small enough for brute-force verification.
struct TestWorkload {
  Vocabulary vocab;
  std::vector<TermId> terms;
  WorkloadSample sample;
  std::vector<SpatioTextualObject> extra_objects;  // not in the sample
};

inline TestWorkload MakeWorkload(uint64_t seed, size_t num_objects = 1500,
                                 size_t num_queries = 400,
                                 size_t num_terms = 60) {
  TestWorkload w;
  Rng rng(seed);
  for (size_t i = 0; i < num_terms; ++i) {
    const TermId t = w.vocab.Intern("t" + std::to_string(i));
    w.terms.push_back(t);
  }
  ZipfSampler zipf(num_terms, 1.0);
  // Two "cities" with distinct topic halves, plus uniform background, so
  // text and space structure both exist.
  const Point cities[2] = {{20, 20}, {80, 70}};
  auto sample_loc = [&](Rng& r) {
    const double dice = r.NextDouble();
    if (dice < 0.4) {
      return Point{r.NextGaussian(cities[0].x, 6), r.NextGaussian(cities[0].y, 6)};
    }
    if (dice < 0.8) {
      return Point{r.NextGaussian(cities[1].x, 6), r.NextGaussian(cities[1].y, 6)};
    }
    return Point{r.NextUniform(0, 100), r.NextUniform(0, 100)};
  };
  auto sample_term = [&](Point loc, Rng& r) -> TermId {
    size_t rank = zipf.Sample(r);
    // City topics: near city 0, shift toward the first half of the
    // vocabulary; near city 1, the second half.
    if (Distance(loc, cities[1]) < 20 && r.NextBernoulli(0.5)) {
      rank = num_terms / 2 + rank % (num_terms / 2);
    }
    return w.terms[std::min(rank, num_terms - 1)];
  };
  auto make_object = [&](ObjectId id) {
    const Point loc = sample_loc(rng);
    std::vector<TermId> ts;
    const int k = 1 + rng.NextBelow(5);
    for (int i = 0; i < k; ++i) ts.push_back(sample_term(loc, rng));
    auto o = SpatioTextualObject::FromTerms(id, loc, ts);
    for (const TermId t : o.terms) w.vocab.AddCount(t);
    return o;
  };
  for (size_t i = 0; i < num_objects; ++i) {
    w.sample.objects.push_back(make_object(i + 1));
  }
  for (size_t i = 0; i < num_objects / 2; ++i) {
    w.extra_objects.push_back(make_object(num_objects + i + 1));
  }
  for (size_t i = 0; i < num_queries; ++i) {
    const Point c = sample_loc(rng);
    std::vector<TermId> ts;
    const int k = 1 + rng.NextBelow(3);
    for (int j = 0; j < k; ++j) ts.push_back(sample_term(c, rng));
    std::sort(ts.begin(), ts.end());
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
    STSQuery q;
    q.id = i + 1;
    q.expr = rng.NextBernoulli(0.3) ? BoolExpr::Or(ts) : BoolExpr::And(ts);
    q.region = Rect::Centered(c, rng.NextUniform(2, 25),
                              rng.NextUniform(2, 25));
    w.sample.inserts.push_back(std::move(q));
  }
  return w;
}

inline std::vector<MatchResult> Sorted(std::vector<MatchResult> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace testutil
}  // namespace ps2

#endif  // PS2_TESTS_TEST_UTIL_H_
