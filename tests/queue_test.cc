#include "runtime/queue.h"

#include "common/stopwatch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ps2 {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) q.Push(i);
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, CloseReleasesConsumers) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, DrainsBeforeEndOfStream) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, PushAfterCloseFails) {
  BoundedQueue<int> q(4);
  q.Close();
  EXPECT_FALSE(q.Push(1));
}

TEST(BoundedQueueTest, PopBatchRespectsLimit) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) q.Push(i);
  auto batch = q.PopBatch(4);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0], 0);
  batch = q.PopBatch(100);
  EXPECT_EQ(batch.size(), 6u);
}

TEST(BoundedQueueTest, BackpressureBlocksProducer) {
  BoundedQueue<int> q(2);
  q.Push(1);
  q.Push(2);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(3);  // blocks until a consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueueTest, CloseReleasesBlockedProducer) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> returned{false};
  std::atomic<bool> result{true};
  std::thread producer([&] {
    result = q.Push(2);  // blocks: queue is full
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(result.load());  // Push on a closed queue reports failure
}

TEST(BoundedQueueTest, PopBatchDrainsAfterClose) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) q.Push(i);
  q.Close();
  auto b1 = q.PopBatch(4);
  ASSERT_EQ(b1.size(), 4u);
  EXPECT_EQ(b1.front(), 0);
  auto b2 = q.PopBatch(4);
  ASSERT_EQ(b2.size(), 2u);
  EXPECT_EQ(b2.back(), 5);
  EXPECT_TRUE(q.PopBatch(4).empty());  // closed and drained
}

TEST(BoundedQueueTest, CloseReleasesBlockedBatchConsumer) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] {
    auto batch = q.PopBatch(8);  // blocks: queue is empty
    EXPECT_TRUE(batch.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersDeliverAll) {
  BoundedQueue<int> q(64);
  constexpr int kProducers = 4, kPerProducer = 2000, kConsumers = 3;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(p * kPerProducer + i);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++count;
      }
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), static_cast<long>(n) * (n - 1) / 2);
}

TEST(StopwatchTest, MonotoneAndPositive) {
  Stopwatch sw;
  const int64_t a = sw.ElapsedNanos();
  const int64_t b = sw.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

TEST(StopwatchTest, NowMicrosMonotone) {
  const int64_t a = NowMicros();
  const int64_t b = NowMicros();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace ps2
