#include "runtime/threaded_engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "adjust/load_controller.h"
#include "dispatch/routing_snapshot.h"
#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "runtime/sim_engine.h"
#include "test_util.h"

namespace ps2 {
namespace {

// A deliberately pathological plan: every cell space-routed to worker 0.
// The only way such a cluster balances is through live migrations.
PartitionPlan SkewedPlan(const Rect& bounds, int grid_k, int num_workers) {
  PartitionPlan plan;
  plan.grid = GridSpec(bounds, grid_k);
  plan.num_workers = num_workers;
  plan.cells.resize(plan.grid.NumCells());  // CellRoute{} -> worker 0
  return plan;
}

// The threaded engine must produce the exact deduped match set of the
// synchronous cluster on the same input — not just the same count.
TEST(ThreadedEngineEquivalenceTest, ExactMatchSetVsSynchronousCluster) {
  auto w = testutil::MakeWorkload(907, 1200, 350);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner("hybrid")->Build(w.sample, w.vocab, cfg);

  std::vector<StreamTuple> input;
  for (const auto& q : w.sample.inserts) {
    input.push_back(StreamTuple::OfInsert(q));
  }
  for (const auto& o : w.extra_objects) {
    input.push_back(StreamTuple::OfObject(o));
  }

  Cluster sync_cluster(plan, &w.vocab);
  std::vector<MatchResult> sync_matches;
  for (const auto& t : input) sync_cluster.Process(t, &sync_matches);

  Cluster threaded_cluster(plan, &w.vocab);
  EngineOptions opts;
  opts.num_dispatchers = 3;
  opts.collect_matches = true;
  ThreadedEngine engine(threaded_cluster, opts);
  const RunReport report = engine.Run(input);

  EXPECT_EQ(report.matches_delivered, sync_matches.size());
  EXPECT_EQ(testutil::Sorted(engine.TakeMatches()),
            testutil::Sorted(sync_matches));
  // Per-thread dispatcher stats aggregate to the stream totals.
  EXPECT_EQ(report.dispatch.inserts_routed, w.sample.inserts.size());
  EXPECT_EQ(report.dispatch.objects_routed + report.dispatch.objects_discarded,
            w.extra_objects.size());
}

// ThreadedEngine and SimEngine run the same stream behind the common
// Engine interface.
TEST(EngineInterfaceTest, PolymorphicRun) {
  auto w = testutil::MakeWorkload(909, 500, 120);
  PartitionConfig cfg;
  cfg.num_workers = 2;
  cfg.grid_k = 3;
  const PartitionPlan plan =
      MakePartitioner("grid")->Build(w.sample, w.vocab, cfg);
  std::vector<StreamTuple> input;
  for (const auto& q : w.sample.inserts) {
    input.push_back(StreamTuple::OfInsert(q));
  }
  for (const auto& o : w.extra_objects) {
    input.push_back(StreamTuple::OfObject(o));
  }

  Cluster threaded_cluster(plan, &w.vocab);
  Cluster sim_cluster(plan, &w.vocab);
  SimOptions sim_opts;
  sim_opts.enable_adjust = false;
  std::vector<std::unique_ptr<Engine>> engines;
  engines.push_back(std::make_unique<ThreadedEngine>(threaded_cluster));
  engines.push_back(std::make_unique<SimEngine>(sim_cluster, sim_opts));

  uint64_t matches[2] = {0, 0};
  for (size_t i = 0; i < engines.size(); ++i) {
    const RunReport report = engines[i]->Run(input);
    EXPECT_EQ(report.tuples_processed, input.size()) << engines[i]->name();
    EXPECT_GT(report.matches_delivered, 0u) << engines[i]->name();
    matches[i] = report.matches_delivered;
  }
  EXPECT_EQ(matches[0], matches[1]);
  EXPECT_EQ(engines[0]->name(), "threaded");
  EXPECT_EQ(engines[1]->name(), "sim");
}

// The acceptance test of the online controller: a cluster whose plan pins
// everything to worker 0 must rebalance through live migrations mid-run,
// and the delivered match set must still be exactly the reference set — no
// delivery lost to a routing swap, no duplicate surviving the merger.
TEST(ThreadedEngineLiveMigrationTest, RebalancesWithoutLosingDeliveries) {
  auto w = testutil::MakeWorkload(911, 2000, 400);
  const PartitionPlan plan = SkewedPlan(w.sample.Bounds(), 4, 4);

  ReferenceMatcher ref;
  std::vector<StreamTuple> input;
  std::vector<MatchResult> expected;
  for (const auto& q : w.sample.inserts) {
    input.push_back(StreamTuple::OfInsert(q));
    ref.Insert(q);
  }
  for (const auto& o : w.sample.objects) {
    input.push_back(StreamTuple::OfObject(o));
  }
  for (const auto& o : w.extra_objects) {
    input.push_back(StreamTuple::OfObject(o));
  }
  for (const auto& t : input) {
    if (t.kind == TupleKind::kObject) {
      for (const auto& m : ref.Match(t.object)) expected.push_back(m);
    }
  }

  Cluster cluster(plan, &w.vocab);
  EngineOptions opts;
  opts.num_dispatchers = 2;
  opts.collect_matches = true;
  // Pace the stream so the run spans many controller intervals.
  opts.input_rate_tps = 25000.0;
  opts.controller.enabled = true;
  opts.controller.interval_ms = 2;
  opts.controller.min_tuples = 100;
  opts.controller.config.adjust.sigma = 1.2;
  opts.controller.config.adjust.selector = "GR";
  ThreadedEngine engine(cluster, opts);
  const RunReport report = engine.Run(input);

  ASSERT_GE(report.adjustments, 1u);
  EXPECT_GT(report.queries_migrated, 0u);
  EXPECT_GT(report.routing_epochs, 1u);
  ASSERT_NE(engine.controller(), nullptr);
  EXPECT_GE(engine.controller()->totals().triggered, 1u);

  // Queries actually left the overloaded worker.
  size_t off_worker0 = 0;
  for (WorkerId w_id = 1; w_id < 4; ++w_id) {
    off_worker0 += cluster.worker(w_id).NumActiveQueries();
  }
  EXPECT_GT(off_worker0, 0u);

  // No lost or duplicated deliveries versus the synchronous reference.
  EXPECT_EQ(testutil::Sorted(engine.TakeMatches()),
            testutil::Sorted(expected));
}

// The async facade: subscriptions and publications submitted while the
// engine runs, with the report produced on Stop().
TEST(PS2StreamAsyncTest, StartSubscribePublishStop) {
  auto w = testutil::MakeWorkload(913, 600, 150);
  PS2StreamOptions opts;
  opts.partition.num_workers = 2;
  opts.partition.grid_k = 3;
  opts.engine.num_dispatchers = 2;
  PS2Stream ps2(opts);
  ps2.Bootstrap(w.sample);
  ps2.Start();
  ASSERT_TRUE(ps2.started());

  ReferenceMatcher ref;
  for (const auto& q : w.sample.inserts) {
    auto sub = ps2.Subscribe(nullptr, q);
    ASSERT_TRUE(sub.ok());
    sub->Release();
    ref.Insert(q);
  }
  size_t expected = 0;
  for (const auto& o : w.extra_objects) {
    EXPECT_TRUE(ps2.Post(o).ok());  // async: matches arrive via sessions
    expected += ref.Match(o).size();
  }
  const RunReport report = ps2.Stop();
  EXPECT_FALSE(ps2.started());
  EXPECT_EQ(report.matches_delivered, expected);
  EXPECT_EQ(report.inserts, w.sample.inserts.size());
  EXPECT_EQ(report.objects, w.extra_objects.size());
}

// Epoch semantics of the snapshot-published routing table: an installed
// mutation is visible to new readers, while a pinned old epoch keeps
// routing exactly as before the swap.
TEST(SnapshotRouterTest, PinnedEpochSurvivesMutation) {
  auto w = testutil::MakeWorkload(915, 300, 80);
  PartitionConfig cfg;
  cfg.num_workers = 2;
  cfg.grid_k = 3;
  const PartitionPlan plan =
      MakePartitioner("grid")->Build(w.sample, w.vocab, cfg);
  GridtIndex master(plan, &w.vocab);
  SnapshotRouter router(&master);

  const SpatioTextualObject& probe = w.extra_objects.front();
  const CellId cell = plan.grid.CellOf(probe.loc);
  const WorkerId original = plan.cells[cell].worker;
  const WorkerId moved = original == 0 ? 1 : 0;

  auto before = router.Current();
  const bool published = router.Mutate([&](GridtIndex& m) {
    m.ReassignCell(cell, moved);
    return true;
  });
  ASSERT_TRUE(published);
  auto after = router.Current();
  EXPECT_GT(after->version, before->version);

  std::vector<WorkerId> via_old, via_new;
  before->RouteObject(probe, &via_old);
  after->RouteObject(probe, &via_new);
  ASSERT_EQ(via_old.size(), 1u);
  ASSERT_EQ(via_new.size(), 1u);
  EXPECT_EQ(via_old[0], original);
  EXPECT_EQ(via_new[0], moved);
}

// Query updates republish the text cells they touch: an object only routes
// to workers holding a live query keyed by one of its terms.
TEST(SnapshotRouterTest, QueryUpdatesRepublishH2) {
  Vocabulary vocab;
  const TermId rare = vocab.Intern("rare");
  const TermId common = vocab.Intern("common");
  for (int i = 0; i < 50; ++i) vocab.AddCount(common);
  vocab.AddCount(rare);

  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 10, 10), 1);
  plan.num_workers = 2;
  plan.cells.resize(plan.grid.NumCells());
  auto term_router = std::make_shared<const TermRouter>(
      std::unordered_map<TermId, WorkerId>{{rare, 0}, {common, 1}},
      std::vector<WorkerId>{0, 1});
  for (auto& c : plan.cells) c.text = term_router;

  GridtIndex master(plan, &vocab);
  SnapshotRouter router(&master);
  const uint64_t v0 = router.version();

  SpatioTextualObject o =
      SpatioTextualObject::FromTerms(1, Point{2, 2}, {rare});
  std::vector<WorkerId> out;
  router.Current()->RouteObject(o, &out);
  EXPECT_TRUE(out.empty());  // no live query -> discard at the dispatcher

  STSQuery q;
  q.id = 42;
  q.expr = BoolExpr::And({rare});
  q.region = Rect(0, 0, 10, 10);
  router.RouteInsert(q);
  EXPECT_GT(router.version(), v0);
  router.Current()->RouteObject(o, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);  // rare routes to worker 0

  router.RouteDelete(q);
  router.Current()->RouteObject(o, &out);
  EXPECT_TRUE(out.empty());
}

// The LoadController seam drives the same adjuster the simulator uses.
TEST(LoadControllerTest, SyncCheckRebalancesAndRecordsTotals) {
  auto w = testutil::MakeWorkload(917, 1000, 250);
  const PartitionPlan plan = SkewedPlan(w.sample.Bounds(), 3, 2);
  Cluster cluster(plan, &w.vocab);
  for (const auto& q : w.sample.inserts) {
    cluster.Process(StreamTuple::OfInsert(q));
  }
  for (const auto& o : w.sample.objects) {
    cluster.Process(StreamTuple::OfObject(o));
  }

  LoadControllerConfig cfg;
  cfg.adjust.sigma = 1.1;
  cfg.evaluate_global = true;
  cfg.global_check_every = 1;
  cfg.partition.num_workers = 2;
  cfg.partition.grid_k = 3;
  LoadController controller(cfg);
  const AdjustReport report = controller.Check(cluster, w.sample);

  EXPECT_TRUE(report.triggered);
  EXPECT_EQ(report.overloaded, 0);
  EXPECT_EQ(controller.totals().checks, 1u);
  EXPECT_EQ(controller.totals().triggered, 1u);
  EXPECT_GE(controller.totals().adjustments, 1u);
  EXPECT_GT(controller.totals().queries_moved, 0u);
  EXPECT_GT(cluster.worker(1).NumActiveQueries(), 0u);
  EXPECT_EQ(controller.global_evaluations(), 1u);
  ASSERT_NE(controller.last_global_decision(), nullptr);
  EXPECT_GT(controller.last_global_decision()->current_load, 0.0);
}

}  // namespace
}  // namespace ps2
