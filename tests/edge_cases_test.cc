// Failure-injection and boundary-condition tests across the pipeline:
// degenerate geometry, empty text, id collisions, single-worker clusters,
// queries far outside the sampled extent — the inputs a production stream
// will eventually contain.
#include <gtest/gtest.h>

#include "partition/plan.h"
#include "runtime/engine.h"
#include "test_util.h"

namespace ps2 {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  EdgeCaseTest() : grid_(Rect(0, 0, 100, 100), 4) {
    a_ = vocab_.Intern("a");
    b_ = vocab_.Intern("b");
    PartitionPlan plan;
    plan.grid = grid_;
    plan.num_workers = 2;
    plan.cells.resize(grid_.NumCells());
    for (CellId c = 0; c < grid_.NumCells(); ++c) {
      plan.cells[c].worker = static_cast<WorkerId>(c % 2);
    }
    cluster_ = std::make_unique<Cluster>(plan, &vocab_);
  }

  STSQuery Query(QueryId id, std::vector<TermId> terms, Rect region) {
    STSQuery q;
    q.id = id;
    q.expr = BoolExpr::And(std::move(terms));
    q.region = region;
    return q;
  }

  GridSpec grid_;
  Vocabulary vocab_;
  TermId a_, b_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(EdgeCaseTest, ZeroAreaQueryRegionStillMatchesItsPoint) {
  // A degenerate (point) region is legal: it matches objects exactly there.
  cluster_->Process(
      StreamTuple::OfInsert(Query(1, {a_}, Rect(50, 50, 50, 50))));
  std::vector<MatchResult> out;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        1, Point{50, 50}, {a_})),
                    &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(EdgeCaseTest, QueryRegionOutsideGridClampsButStaysCorrect) {
  // Region entirely outside the sampled extent: routing clamps to border
  // cells; an object outside the extent clamps to the same cells, so the
  // pair still rendezvous.
  cluster_->Process(
      StreamTuple::OfInsert(Query(1, {a_}, Rect(500, 500, 600, 600))));
  std::vector<MatchResult> out;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        1, Point{550, 550}, {a_})),
                    &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(EdgeCaseTest, ObjectWithNoTermsNeverMatches) {
  cluster_->Process(
      StreamTuple::OfInsert(Query(1, {a_}, Rect(0, 0, 100, 100))));
  std::vector<MatchResult> out;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        1, Point{50, 50}, {})),
                    &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(EdgeCaseTest, EmptyExpressionQueryIsInert) {
  STSQuery q;
  q.id = 1;
  q.region = Rect(0, 0, 100, 100);
  cluster_->Process(StreamTuple::OfInsert(q));
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    EXPECT_EQ(cluster_->worker(w).NumActiveQueries(), 0u);
  }
}

TEST_F(EdgeCaseTest, DuplicateQueryIdReinsertIsIdempotentForMatching) {
  cluster_->Process(
      StreamTuple::OfInsert(Query(7, {a_}, Rect(0, 0, 100, 100))));
  cluster_->Process(
      StreamTuple::OfInsert(Query(7, {a_}, Rect(0, 0, 100, 100))));
  std::vector<MatchResult> out;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        1, Point{10, 10}, {a_})),
                    &out);
  EXPECT_EQ(out.size(), 1u);  // one logical subscription, one delivery
}

TEST_F(EdgeCaseTest, DeleteBeforeInsertIsTolerated) {
  cluster_->Process(
      StreamTuple::OfDelete(Query(9, {a_}, Rect(0, 0, 10, 10))));
  cluster_->Process(
      StreamTuple::OfInsert(Query(9, {a_}, Rect(0, 0, 10, 10))));
  std::vector<MatchResult> out;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        1, Point{5, 5}, {a_})),
                    &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(EdgeCaseTest, ObjectOnExactCellBoundaryMatchesBoundaryQueries) {
  // Point exactly on an internal cell boundary: belongs to exactly one
  // cell, and a query covering both neighbour cells must still match.
  const Rect cell0 = grid_.CellRect(grid_.ToId(3, 3));
  const Point boundary{cell0.max_x, cell0.max_y};
  cluster_->Process(StreamTuple::OfInsert(
      Query(1, {a_},
            Rect(cell0.min_x - 1, cell0.min_y - 1, cell0.max_x + 1,
                 cell0.max_y + 1))));
  std::vector<MatchResult> out;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        1, boundary, {a_})),
                    &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(SingleWorkerClusterTest, EverythingOnWorkerZero) {
  auto w = testutil::MakeWorkload(901, 300, 100);
  PartitionConfig cfg;
  cfg.num_workers = 1;
  cfg.grid_k = 3;
  for (const char* name : {"metric", "kdtree", "hybrid"}) {
    const PartitionPlan plan =
        MakePartitioner(name)->Build(w.sample, w.vocab, cfg);
    Cluster cluster(plan, &w.vocab);
    ReferenceMatcher ref;
    for (const auto& q : w.sample.inserts) {
      cluster.Process(StreamTuple::OfInsert(q));
      ref.Insert(q);
    }
    for (const auto& o : w.extra_objects) {
      std::vector<MatchResult> got;
      cluster.Process(StreamTuple::OfObject(o), &got);
      ASSERT_EQ(testutil::Sorted(got), testutil::Sorted(ref.Match(o)))
          << name;
    }
  }
}

TEST(DegenerateWorkloadTest, AllObjectsAtOnePoint) {
  // Zero spatial spread: GridSpec guards against zero-extent bounds and
  // every partitioner must still produce a working plan.
  Vocabulary vocab;
  const TermId t = vocab.Intern("x");
  vocab.AddCount(t, 10);
  WorkloadSample sample;
  for (int i = 0; i < 100; ++i) {
    sample.objects.push_back(
        SpatioTextualObject::FromTerms(i + 1, Point{1, 1}, {t}));
  }
  STSQuery q;
  q.id = 1;
  q.expr = BoolExpr::And({t});
  q.region = Rect(1, 1, 1, 1);
  sample.inserts.push_back(q);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 3;
  for (const char* name :
       {"frequency", "hypergraph", "metric", "grid", "kdtree", "rtree",
        "hybrid"}) {
    const PartitionPlan plan =
        MakePartitioner(name)->Build(sample, vocab, cfg);
    Cluster cluster(plan, &vocab);
    cluster.Process(StreamTuple::OfInsert(q));
    std::vector<MatchResult> out;
    cluster.Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        1000, Point{1, 1}, {t})),
                    &out);
    EXPECT_EQ(out.size(), 1u) << name;
  }
}

TEST(MigrationEdgeTest, MigrateEmptyCellIsNoop) {
  Vocabulary vocab;
  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 10, 10), 3);
  plan.num_workers = 2;
  plan.cells.assign(plan.grid.NumCells(), CellRoute{0, nullptr});
  Cluster cluster(plan, &vocab);
  const auto stats = cluster.MigrateCell(5, 0, 1);
  EXPECT_EQ(stats.queries_moved, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(MigrationEdgeTest, MigrateToSelfIsNoop) {
  Vocabulary vocab;
  const TermId t = vocab.Intern("x");
  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 10, 10), 3);
  plan.num_workers = 2;
  plan.cells.assign(plan.grid.NumCells(), CellRoute{0, nullptr});
  Cluster cluster(plan, &vocab);
  STSQuery q;
  q.id = 1;
  q.expr = BoolExpr::And({t});
  q.region = Rect(0, 0, 1, 1);
  cluster.Process(StreamTuple::OfInsert(q));
  const auto stats =
      cluster.MigrateCell(plan.grid.CellOf(Point{0.5, 0.5}), 0, 0);
  EXPECT_EQ(stats.queries_moved, 0u);
  EXPECT_EQ(cluster.worker(0).NumActiveQueries(), 1u);
}

}  // namespace
}  // namespace ps2
