#include "spatial/grid.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ps2 {
namespace {

TEST(GridTest, Dimensions) {
  GridSpec g(Rect(0, 0, 10, 10), 3);
  EXPECT_EQ(g.side(), 8u);
  EXPECT_EQ(g.NumCells(), 64u);
}

TEST(GridTest, CellOfCorners) {
  GridSpec g(Rect(0, 0, 8, 8), 3);
  EXPECT_EQ(g.CellOf(Point{0.5, 0.5}), g.ToId(0, 0));
  EXPECT_EQ(g.CellOf(Point{7.5, 7.5}), g.ToId(7, 7));
  EXPECT_EQ(g.CellOf(Point{0.5, 7.5}), g.ToId(0, 7));
}

TEST(GridTest, CellOfClampsOutside) {
  GridSpec g(Rect(0, 0, 8, 8), 3);
  EXPECT_EQ(g.CellOf(Point{-5, -5}), g.ToId(0, 0));
  EXPECT_EQ(g.CellOf(Point{100, 100}), g.ToId(7, 7));
}

TEST(GridTest, IdCoordinateRoundTrip) {
  GridSpec g(Rect(0, 0, 1, 1), 4);
  for (uint32_t cy = 0; cy < g.side(); ++cy) {
    for (uint32_t cx = 0; cx < g.side(); ++cx) {
      const CellId id = g.ToId(cx, cy);
      EXPECT_EQ(g.CellX(id), cx);
      EXPECT_EQ(g.CellY(id), cy);
    }
  }
}

TEST(GridTest, CellRectTilesBounds) {
  GridSpec g(Rect(0, 0, 8, 4), 2);
  double area = 0.0;
  for (CellId c = 0; c < g.NumCells(); ++c) area += g.CellRect(c).Area();
  EXPECT_NEAR(area, 32.0, 1e-9);
  // A point in a cell's rect maps back to that cell.
  for (CellId c = 0; c < g.NumCells(); ++c) {
    EXPECT_EQ(g.CellOf(g.CellRect(c).Center()), c);
  }
}

TEST(GridTest, CellsOverlappingFullBounds) {
  GridSpec g(Rect(0, 0, 8, 8), 2);
  const auto cells = g.CellsOverlapping(Rect(0, 0, 8, 8));
  EXPECT_EQ(cells.size(), g.NumCells());
}

TEST(GridTest, CellsOverlappingSingleCellInterior) {
  GridSpec g(Rect(0, 0, 8, 8), 3);  // cell size 1x1
  const auto cells = g.CellsOverlapping(Rect(2.25, 3.25, 2.75, 3.75));
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], g.ToId(2, 3));
}

TEST(GridTest, CellsOverlappingEmptyRect) {
  GridSpec g(Rect(0, 0, 8, 8), 3);
  EXPECT_TRUE(g.CellsOverlapping(Rect()).empty());
}

TEST(GridTest, CellsOverlappingOutsideClampsToBorder) {
  GridSpec g(Rect(0, 0, 8, 8), 3);
  const auto cells = g.CellsOverlapping(Rect(20, 20, 21, 21));
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], g.ToId(7, 7));
}

// Property: for random rects and random points inside them, the point's
// cell is among the overlapping cells.
class GridPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GridPropertyTest, PointCellWithinOverlapSet) {
  GridSpec g(Rect(-10, -5, 30, 25), GetParam());
  Rng rng(1234 + GetParam());
  for (int i = 0; i < 300; ++i) {
    const double x0 = rng.NextUniform(-10, 28);
    const double y0 = rng.NextUniform(-5, 23);
    const Rect r(x0, y0, x0 + rng.NextUniform(0.01, 10),
                 y0 + rng.NextUniform(0.01, 10));
    const auto cells = g.CellsOverlapping(r);
    ASSERT_FALSE(cells.empty());
    for (int j = 0; j < 10; ++j) {
      const Point p{rng.NextUniform(r.min_x, r.max_x),
                    rng.NextUniform(r.min_y, r.max_y)};
      const CellId pc = g.CellOf(p);
      EXPECT_NE(std::find(cells.begin(), cells.end(), pc), cells.end())
          << "point cell " << pc << " missing from overlap of "
          << r.ToString();
    }
  }
}

// Property: every overlapping cell's rect really intersects the query rect.
TEST_P(GridPropertyTest, OverlapCellsIntersect) {
  GridSpec g(Rect(0, 0, 100, 60), GetParam());
  Rng rng(77 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.NextUniform(0, 95);
    const double y0 = rng.NextUniform(0, 55);
    const Rect r(x0, y0, x0 + rng.NextUniform(0.1, 20),
                 y0 + rng.NextUniform(0.1, 20));
    for (const CellId c : g.CellsOverlapping(r)) {
      EXPECT_TRUE(g.CellRect(c).Intersects(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, GridPropertyTest,
                         ::testing::Values(1, 2, 4, 6));

}  // namespace
}  // namespace ps2
