#include "runtime/engine.h"

#include <gtest/gtest.h>

#include "partition/plan.h"
#include "test_util.h"

namespace ps2 {
namespace {

// Builds a 2-worker cluster with a simple left/right space plan.
class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() {
    a_ = vocab_.Intern("a");
    b_ = vocab_.Intern("b");
    vocab_.AddCount(a_, 3);
    vocab_.AddCount(b_, 2);
    grid_ = GridSpec(Rect(0, 0, 16, 16), 3);
    PartitionPlan plan;
    plan.grid = grid_;
    plan.num_workers = 2;
    plan.cells.resize(grid_.NumCells());
    for (uint32_t cy = 0; cy < grid_.side(); ++cy) {
      for (uint32_t cx = 0; cx < grid_.side(); ++cx) {
        plan.cells[grid_.ToId(cx, cy)].worker = cx < grid_.side() / 2 ? 0 : 1;
      }
    }
    cluster_ = std::make_unique<Cluster>(plan, &vocab_);
  }

  STSQuery Query(QueryId id, std::vector<TermId> terms, Rect region) {
    STSQuery q;
    q.id = id;
    q.expr = BoolExpr::And(std::move(terms));
    q.region = region;
    return q;
  }

  Vocabulary vocab_;
  GridSpec grid_;
  TermId a_, b_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ClusterTest, EndToEndMatch) {
  cluster_->Process(StreamTuple::OfInsert(Query(1, {a_}, Rect(0, 0, 4, 4))));
  std::vector<MatchResult> delivered;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        10, Point{2, 2}, {a_})),
                    &delivered);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].query_id, 1u);
}

TEST_F(ClusterTest, QuerySpanningWorkersDeduplicatedByMerger) {
  // Region spans both halves; object near the seam matches once.
  cluster_->Process(StreamTuple::OfInsert(Query(1, {a_}, Rect(6, 6, 10, 10))));
  std::vector<MatchResult> delivered;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        11, Point{7, 7}, {a_})),
                    &delivered);
  EXPECT_EQ(delivered.size(), 1u);
}

TEST_F(ClusterTest, TalliesTrackDeliveries) {
  cluster_->Process(StreamTuple::OfInsert(Query(1, {a_}, Rect(0, 0, 4, 4))));
  cluster_->Process(StreamTuple::OfObject(
      SpatioTextualObject::FromTerms(12, Point{2, 2}, {a_})));
  EXPECT_EQ(cluster_->tallies()[0].inserts, 1u);
  EXPECT_EQ(cluster_->tallies()[0].objects, 1u);
  EXPECT_EQ(cluster_->tallies()[1].inserts, 0u);
  cluster_->ResetLoadWindow();
  EXPECT_EQ(cluster_->tallies()[0].objects, 0u);
}

TEST_F(ClusterTest, MigrateCellMovesMatching) {
  cluster_->Process(StreamTuple::OfInsert(Query(1, {a_}, Rect(0, 0, 2, 2))));
  const CellId cell = grid_.CellOf(Point{1, 1});
  const auto stats = cluster_->MigrateCell(cell, 0, 1);
  EXPECT_EQ(stats.queries_moved, 1u);
  EXPECT_GT(stats.bytes, 0u);
  // Matching still works, now on worker 1.
  std::vector<MatchResult> delivered;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        13, Point{1, 1}, {a_})),
                    &delivered);
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_EQ(cluster_->worker(0).NumActiveQueries(), 0u);
  EXPECT_EQ(cluster_->worker(1).NumActiveQueries(), 1u);
  // And deletion routes to the new location.
  cluster_->Process(StreamTuple::OfDelete(Query(1, {a_}, Rect(0, 0, 2, 2))));
  EXPECT_EQ(cluster_->worker(1).NumActiveQueries(), 0u);
}

TEST_F(ClusterTest, TextSplitCellPreservesMatching) {
  cluster_->Process(StreamTuple::OfInsert(Query(1, {a_}, Rect(0, 0, 2, 2))));
  cluster_->Process(StreamTuple::OfInsert(Query(2, {b_}, Rect(0, 0, 2, 2))));
  const CellId cell = grid_.CellOf(Point{1, 1});
  const auto stats =
      cluster_->TextSplitCell(cell, /*keep=*/0, /*to=*/1, {{a_, 0}, {b_, 1}});
  EXPECT_EQ(stats.queries_moved, 1u);  // query 2 moved to worker 1
  std::vector<MatchResult> delivered;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        14, Point{1, 1}, {a_, b_})),
                    &delivered);
  EXPECT_EQ(testutil::Sorted(delivered),
            testutil::Sorted({MatchResult{1, 14}, MatchResult{2, 14}}));
}

TEST_F(ClusterTest, MergeCellCollapsesTextSplit) {
  cluster_->Process(StreamTuple::OfInsert(Query(1, {a_}, Rect(0, 0, 2, 2))));
  cluster_->Process(StreamTuple::OfInsert(Query(2, {b_}, Rect(0, 0, 2, 2))));
  const CellId cell = grid_.CellOf(Point{1, 1});
  cluster_->TextSplitCell(cell, 0, 1, {{a_, 0}, {b_, 1}});
  const auto stats = cluster_->MergeCellTo(cell, 1);
  EXPECT_GE(stats.queries_moved, 1u);
  std::vector<MatchResult> delivered;
  cluster_->Process(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
                        15, Point{1, 1}, {a_, b_})),
                    &delivered);
  EXPECT_EQ(delivered.size(), 2u);
  EXPECT_EQ(cluster_->worker(0).NumActiveQueries(), 0u);
}

// Full-pipeline integration: random workload, every partitioner, with
// migrations interleaved; results must always match the reference.
class ClusterIntegrationTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(ClusterIntegrationTest, CorrectUnderMigrations) {
  auto w = testutil::MakeWorkload(211, 600, 200);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner(GetParam())->Build(w.sample, w.vocab, cfg);
  Cluster cluster(plan, &w.vocab);
  ReferenceMatcher ref;
  for (const auto& q : w.sample.inserts) {
    cluster.Process(StreamTuple::OfInsert(q));
    ref.Insert(q);
  }
  Rng rng(3);
  size_t checked = 0;
  for (size_t i = 0; i < w.extra_objects.size(); ++i) {
    // Interleave random cell migrations between objects.
    if (i % 25 == 0) {
      const WorkerId from = rng.NextBelow(4);
      const WorkerId to = rng.NextBelow(4);
      const auto stats = cluster.worker(from).AllCellStats();
      if (!stats.empty() && from != to) {
        cluster.MigrateCell(stats[rng.NextBelow(stats.size())].cell, from,
                            to);
      }
    }
    std::vector<MatchResult> got;
    cluster.Process(StreamTuple::OfObject(w.extra_objects[i]), &got);
    ASSERT_EQ(testutil::Sorted(got),
              testutil::Sorted(ref.Match(w.extra_objects[i])))
        << GetParam() << " object " << i;
    checked += got.size();
  }
  EXPECT_GT(checked, 10u);
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, ClusterIntegrationTest,
                         ::testing::Values("metric", "kdtree", "hybrid"));

}  // namespace
}  // namespace ps2
