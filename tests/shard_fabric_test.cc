#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "adjust/shard_balancer.h"
#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "test_util.h"

namespace ps2 {
namespace {

PS2StreamOptions FabricOptions(int num_shards) {
  PS2StreamOptions options;
  options.sharding.num_shards = num_shards;
  // Keep per-shard fleets small: tests run N full engines in one process.
  options.partition.num_workers = 2;
  options.engine.num_dispatchers = 1;
  options.engine.queue_capacity = 1024;
  return options;
}

void SubscribeRaw(PS2Stream& ps2, const std::shared_ptr<SubscriberSession>& s,
                  const STSQuery& q) {
  auto sub = ps2.Subscribe(s, q);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  sub->Release();
}

std::vector<MatchResult> DrainSession(
    const std::shared_ptr<SubscriberSession>& session) {
  std::vector<MatchResult> out;
  Delivery d;
  while (session->Poll(&d)) {
    out.push_back(MatchResult{d.query_id, d.object_id});
  }
  return out;
}

std::vector<MatchResult> ReferenceSet(
    const testutil::TestWorkload& w,
    const std::vector<SpatioTextualObject>& objects) {
  ReferenceMatcher ref;
  for (const STSQuery& q : w.sample.inserts) ref.Insert(q);
  std::vector<MatchResult> out;
  for (const SpatioTextualObject& o : objects) {
    for (const MatchResult& m : ref.Match(o)) out.push_back(m);
  }
  return testutil::Sorted(std::move(out));
}

// The headline equivalence: a 4-shard fabric delivers byte-identical match
// sets to a single-shard facade and to the brute-force reference, in
// synchronous mode.
TEST(ShardFabricTest, SyncDeliverySetMatchesSingleShardAndReference) {
  const testutil::TestWorkload w = testutil::MakeWorkload(71);
  const std::vector<MatchResult> expected =
      ReferenceSet(w, w.extra_objects);
  ASSERT_FALSE(expected.empty());

  std::vector<MatchResult> sets[2];
  const int shard_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    PS2Stream ps2(FabricOptions(shard_counts[i]));
    ps2.Bootstrap(w.sample);
    if (shard_counts[i] > 1) {
      ASSERT_NE(ps2.fabric(), nullptr);
      EXPECT_EQ(ps2.fabric()->num_shards(), shard_counts[i]);
    } else {
      EXPECT_EQ(ps2.fabric(), nullptr);
    }
    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);
    for (const STSQuery& q : w.sample.inserts) {
      SubscribeRaw(ps2, session, q);
    }
    for (const SpatioTextualObject& o : w.extra_objects) {
      ASSERT_TRUE(ps2.Post(o).ok());
    }
    sets[i] = testutil::Sorted(DrainSession(session));
  }
  EXPECT_EQ(sets[0], expected);
  EXPECT_EQ(sets[1], expected);
  EXPECT_EQ(sets[0], sets[1]);
}

// Started mode: every shard runs a real ThreadedEngine; matches flow from
// worker threads over the transport into the front router. Stop() drains
// everything, so the delivered set is exact.
TEST(ShardFabricTest, StartedDeliverySetMatchesReference) {
  const testutil::TestWorkload w = testutil::MakeWorkload(72, 800, 250);
  const std::vector<MatchResult> expected =
      ReferenceSet(w, w.extra_objects);
  ASSERT_FALSE(expected.empty());

  PS2Stream ps2(FabricOptions(3));
  ps2.Bootstrap(w.sample);
  SessionOptions so;
  so.queue_capacity = 1 << 16;
  auto session = ps2.OpenSession(so);
  for (const STSQuery& q : w.sample.inserts) SubscribeRaw(ps2, session, q);

  ps2.Start();
  ASSERT_TRUE(ps2.started());
  for (const SpatioTextualObject& o : w.extra_objects) {
    ASSERT_TRUE(ps2.Post(o).ok());
  }
  const RunReport report = ps2.Stop();
  EXPECT_EQ(report.shards, 3);
  EXPECT_EQ(testutil::Sorted(DrainSession(session)), expected);
  EXPECT_GT(report.session_deliveries, 0u);
  EXPECT_EQ(ps2.fabric()->decode_errors(), 0u);
}

// Live cross-shard migration mid-stream (copy -> publish -> drain ->
// remove) must neither lose nor duplicate a delivery, in either mode.
TEST(ShardFabricTest, LiveMigrationPreservesDeliverySet) {
  const testutil::TestWorkload w = testutil::MakeWorkload(73, 800, 250);
  const std::vector<MatchResult> expected =
      ReferenceSet(w, w.extra_objects);

  for (const bool started : {false, true}) {
    PS2Stream ps2(FabricOptions(4));
    ps2.Bootstrap(w.sample);
    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);
    for (const STSQuery& q : w.sample.inserts) SubscribeRaw(ps2, session, q);
    if (started) ps2.Start();

    ShardedEngine& fabric = *ps2.fabric();
    const GridSpec& grid =
        fabric.shard_cluster(0).router().plan().grid;
    const uint64_t version_before = fabric.shard_map()->version;
    size_t migrations = 0;
    for (size_t i = 0; i < w.extra_objects.size(); ++i) {
      ASSERT_TRUE(ps2.Post(w.extra_objects[i]).ok());
      // Every ~60 posts, migrate the cell the object just landed in to the
      // next shard — the hottest possible moment for that cell.
      if (i % 60 == 59) {
        const CellId cell = grid.CellOf(w.extra_objects[i].loc);
        const ShardId from = fabric.shard_map()->OwnerOf(cell);
        const ShardId to = (from + 1) % fabric.num_shards();
        fabric.MigrateCell(cell, from, to);
        EXPECT_EQ(fabric.shard_map()->OwnerOf(cell), to);
        ++migrations;
      }
    }
    ASSERT_GT(migrations, 0u);
    EXPECT_EQ(fabric.cells_migrated(), migrations);
    EXPECT_GT(fabric.shard_map()->version, version_before);
    if (started) ps2.Stop();
    EXPECT_EQ(testutil::Sorted(DrainSession(session)), expected)
        << (started ? "started" : "sync");
  }
}

// Kill mid-run, restore the whole fleet from the fabric root, keep serving:
// per-shard WAL + checkpoints + SHARDMAP reassemble identically.
TEST(ShardFabricTest, KillAndRestoreReassemblesFleet) {
  const testutil::TestWorkload w = testutil::MakeWorkload(74, 800, 250);
  const std::string dir =
      ::testing::TempDir() + "/ps2_shard_fabric_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);

  PS2StreamOptions options = FabricOptions(4);
  options.durability.enabled = true;
  options.durability.dir = dir;

  const size_t half = w.extra_objects.size() / 2;
  std::vector<MatchResult> first_half, second_half;
  {
    PS2Stream ps2(options);
    ps2.Bootstrap(w.sample);
    ASSERT_TRUE(ps2.durable());
    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);
    for (const STSQuery& q : w.sample.inserts) SubscribeRaw(ps2, session, q);
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(ps2.Post(w.extra_objects[i]).ok());
    }
    first_half = testutil::Sorted(DrainSession(session));
    // Migrate one busy cell so the restored SHARDMAP is non-uniform.
    ShardedEngine& fabric = *ps2.fabric();
    const GridSpec& grid = fabric.shard_cluster(0).router().plan().grid;
    const CellId cell = grid.CellOf(w.extra_objects[0].loc);
    const ShardId from = fabric.shard_map()->OwnerOf(cell);
    fabric.MigrateCell(cell, from, (from + 1) % 4);
    ps2.Kill();
  }

  // Durable layout: one SHARDMAP next to four shard directories.
  ASSERT_TRUE(std::filesystem::exists(dir + "/SHARDMAP"));
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(std::filesystem::exists(dir + "/shard-" + std::to_string(s) +
                                        "/CURRENT"))
        << "shard " << s;
  }

  {
    PS2Stream ps2(FabricOptions(1));  // shard count comes from SHARDMAP
    ASSERT_TRUE(ps2.Restore(dir));
    ASSERT_NE(ps2.fabric(), nullptr);
    EXPECT_EQ(ps2.fabric()->num_shards(), 4);
    EXPECT_EQ(ps2.subscriptions().size(), w.sample.inserts.size());
    EXPECT_TRUE(ps2.durable());

    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);
    for (const auto& [id, q] : ps2.subscriptions()) {
      ps2.delivery().Route(id, session);
    }
    for (size_t i = half; i < w.extra_objects.size(); ++i) {
      ASSERT_TRUE(ps2.Post(w.extra_objects[i]).ok());
    }
    second_half = testutil::Sorted(DrainSession(session));
  }

  std::vector<MatchResult> all = first_half;
  all.insert(all.end(), second_half.begin(), second_half.end());
  EXPECT_EQ(testutil::Sorted(std::move(all)),
            ReferenceSet(w, w.extra_objects));
  std::filesystem::remove_all(dir);
}

// The balancer ships a hot cell away when one shard holds clearly more
// object traffic than the coolest one.
TEST(ShardFabricTest, RebalanceMovesHotCellOffHotShard) {
  const testutil::TestWorkload w = testutil::MakeWorkload(75, 600, 150);
  PS2Stream ps2(FabricOptions(4));
  ps2.Bootstrap(w.sample);
  ShardedEngine& fabric = *ps2.fabric();
  const GridSpec& grid = fabric.shard_cluster(0).router().plan().grid;

  // Two cells with the same (striped) owner: pounding both makes that
  // shard hot while a single-cell move still helps.
  const CellId hot_a = 0;
  const CellId hot_b = 4;
  ASSERT_EQ(fabric.shard_map()->OwnerOf(hot_a),
            fabric.shard_map()->OwnerOf(hot_b));
  const ShardId hot_owner = fabric.shard_map()->OwnerOf(hot_a);
  SpatioTextualObject oa = SpatioTextualObject::FromTerms(
      1000000, grid.CellRect(hot_a).Center(), {w.terms[0]});
  SpatioTextualObject ob = SpatioTextualObject::FromTerms(
      2000000, grid.CellRect(hot_b).Center(), {w.terms[0]});
  for (int i = 0; i < 200; ++i) {
    oa.id = 1000000 + static_cast<ObjectId>(i);
    ob.id = 2000000 + static_cast<ObjectId>(i);
    ASSERT_TRUE(ps2.Post(oa).ok());
    if (i < 100) ASSERT_TRUE(ps2.Post(ob).ok());
  }
  const size_t migrated = fabric.MaybeRebalance();
  EXPECT_GE(migrated, 1u);
  // The hottest cell moved off the hot shard.
  EXPECT_NE(fabric.shard_map()->OwnerOf(hot_a), hot_owner);
  // And the fabric still matches correctly afterwards.
  STSQuery probe;
  probe.id = 900000;
  probe.expr = BoolExpr::And({w.terms[0]});
  probe.region = grid.CellRect(hot_a);
  SessionOptions so;
  auto session = ps2.OpenSession(so);
  SubscribeRaw(ps2, session, probe);
  oa.id = 3000000;
  ASSERT_TRUE(ps2.Post(oa).ok());
  const std::vector<MatchResult> got = DrainSession(session);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].query_id, probe.id);
  EXPECT_EQ(got[0].object_id, oa.id);
}

TEST(ShardBalancerTest, PlansNoMoveWhenBalancedOrHopeless) {
  ShardBalancer balancer(1.5);
  const ShardMap map = ShardMap::Uniform(8, 2);
  // Balanced: equal traffic per shard.
  EXPECT_TRUE(balancer.Plan(map, {10, 10, 10, 10, 10, 10, 10, 10}).empty());
  // Hopeless: one dominant cell — moving it just swaps the hot shard.
  EXPECT_TRUE(balancer.Plan(map, {100, 0, 0, 0, 0, 0, 0, 0}).empty());
  // Single shard: nothing to balance against.
  EXPECT_TRUE(ShardBalancer(1.5)
                  .Plan(ShardMap::Uniform(8, 1), {5, 5, 5, 5, 4, 4, 4, 4})
                  .empty());
}

TEST(ShardBalancerTest, ShipsHottestCellToCoolestShard) {
  ShardBalancer balancer(1.5);
  const ShardMap map = ShardMap::Uniform(8, 2);
  // Shard 0 owns cells {0,2,4,6} with loads {60,40,0,0}; shard 1 owns
  // {1,3,5,7} with loads {10,0,0,0}. Factor 100/10 = 10 > 1.5.
  const std::vector<ShardMove> moves =
      balancer.Plan(map, {60, 10, 40, 0, 0, 0, 0, 0});
  ASSERT_FALSE(moves.empty());
  EXPECT_EQ(moves[0].cell, 0u);
  EXPECT_EQ(moves[0].from, 0);
  EXPECT_EQ(moves[0].to, 1);
}

// --- RunReport fleet merging -------------------------------------------------

TEST(ShardReportMergeTest, MergeShardFoldsCountersAndWallTime) {
  RunReport a;
  a.tuples_processed = 100;
  a.objects = 80;
  a.matches_delivered = 40;
  a.duplicates_suppressed = 3;
  a.matches_emitted = 43;
  a.wall_seconds = 2.0;
  a.per_worker_tuples = {60, 40};
  a.worker_memory_bytes = {1000, 2000};
  a.worker_ring_highwater = {7, 9};
  a.dedup_kills = 2;

  RunReport b;
  b.tuples_processed = 300;
  b.objects = 250;
  b.matches_delivered = 100;
  b.duplicates_suppressed = 5;
  b.matches_emitted = 105;
  b.wall_seconds = 4.0;
  b.per_worker_tuples = {150, 150};
  b.worker_memory_bytes = {3000};
  b.worker_ring_highwater = {21};
  b.dedup_kills = 1;

  a.MergeShard(b);
  EXPECT_EQ(a.tuples_processed, 400u);
  EXPECT_EQ(a.objects, 330u);
  EXPECT_EQ(a.matches_delivered, 140u);
  EXPECT_EQ(a.duplicates_suppressed, 8u);
  EXPECT_EQ(a.matches_emitted, 148u);
  EXPECT_EQ(a.dedup_kills, 3u);
  // Shards ran concurrently: wall time is the slowest shard's, and the
  // fleet throughput is merged tuples over that wall time (not a sum of
  // per-shard rates).
  EXPECT_DOUBLE_EQ(a.wall_seconds, 4.0);
  EXPECT_DOUBLE_EQ(a.throughput_tps, 100.0);
  EXPECT_EQ(a.shards, 2);
  ASSERT_EQ(a.per_worker_tuples.size(), 4u);
  EXPECT_EQ(a.per_worker_tuples[2], 150u);
  EXPECT_EQ(a.worker_memory_bytes.size(), 3u);
  EXPECT_EQ(a.worker_ring_highwater.size(), 3u);

  // Summary flags the fleet; a single-engine report stays unprefixed.
  EXPECT_NE(a.Summary().find("shards=2"), std::string::npos);
  EXPECT_EQ(b.Summary().find("shards="), std::string::npos);
}

TEST(ShardReportMergeTest, FleetSummaryListsEveryShardAndTheTotal) {
  RunReport s0, s1;
  s0.tuples_processed = 10;
  s1.tuples_processed = 20;
  RunReport fleet = s0;
  fleet.MergeShard(s1);
  const std::string text = FleetSummary({s0, s1}, fleet);
  EXPECT_NE(text.find("shard 0:"), std::string::npos);
  EXPECT_NE(text.find("shard 1:"), std::string::npos);
  EXPECT_NE(text.find("fleet:"), std::string::npos);
  EXPECT_NE(text.find("shards=2"), std::string::npos);
}

}  // namespace
}  // namespace ps2
