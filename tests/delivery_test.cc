// Delivery correctness: the session-delivered match set must equal the
// synchronous cluster's deduped match set — across execution modes, under
// live migration, and with subscription churn — and a blocked kBlock
// session must never wedge Stop().
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "api/delivery_router.h"
#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "runtime/sim_engine.h"
#include "runtime/threaded_engine.h"
#include "test_util.h"

namespace ps2 {
namespace {

using std::chrono::milliseconds;

std::vector<MatchResult> ToMatches(const std::vector<Delivery>& ds) {
  std::vector<MatchResult> out;
  out.reserve(ds.size());
  for (const Delivery& d : ds) {
    MatchResult m;
    m.query_id = d.query_id;
    m.object_id = d.object_id;
    out.push_back(m);
  }
  return out;
}

// Drains everything currently pending (assumes producers are done).
std::vector<Delivery> DrainAll(SubscriberSession& session) {
  std::vector<Delivery> out;
  while (session.TakeBatch(&out, 1 << 20, milliseconds(0)) > 0) {
  }
  return out;
}

// The same subscribe/post sequence against a synchronous facade and a
// started one must deliver the *identical* deduped match set to their
// sessions — one delivery contract across both execution modes.
TEST(DeliverySemanticsTest, SyncAndStartedModesDeliverTheSameSet) {
  auto w = testutil::MakeWorkload(1201, 900, 250);

  auto run = [&](bool start_engine) {
    PS2StreamOptions opts;
    opts.partition.num_workers = 4;
    opts.engine.num_dispatchers = 2;
    PS2Stream ps2(opts);
    ps2.Bootstrap(w.sample);
    SessionOptions sopts;
    sopts.queue_capacity = 1 << 20;  // never overflows: exact-set comparison
    auto session = ps2.OpenSession(sopts);
    std::vector<Subscription> subs;
    for (const auto& q : w.sample.inserts) {
      auto sub = ps2.Subscribe(session, q);
      EXPECT_TRUE(sub.ok()) << sub.status().ToString();
      subs.push_back(std::move(*sub));
    }
    if (start_engine) ps2.Start();
    for (const auto& o : w.extra_objects) {
      EXPECT_TRUE(ps2.Post(o).ok());
    }
    RunReport report;
    if (start_engine) report = ps2.Stop();
    std::vector<Delivery> got = DrainAll(*session);
    if (start_engine) {
      EXPECT_EQ(report.session_deliveries, got.size());
      EXPECT_EQ(report.session_drops, 0u);
      EXPECT_EQ(report.delivery_latency.count(), got.size());
    }
    // Handles must not unsubscribe against a stopped facade mid-teardown;
    // release them (the facade owns the remaining lifetime).
    for (auto& s : subs) s.Release();
    return testutil::Sorted(ToMatches(got));
  };

  const auto sync_set = run(false);
  const auto started_set = run(true);
  ASSERT_FALSE(sync_set.empty());
  EXPECT_EQ(sync_set, started_set);
}

// A deliberately pathological plan (everything on worker 0) forces the
// online controller to migrate cells mid-run; sessions must still receive
// exactly the reference match set — no delivery lost to a routing swap, no
// duplicate surviving the merger.
TEST(DeliveryLiveMigrationTest, SessionSetSurvivesLiveMigration) {
  auto w = testutil::MakeWorkload(1203, 1600, 400);
  PartitionPlan plan;
  plan.grid = GridSpec(w.sample.Bounds(), 4);
  plan.num_workers = 4;
  plan.cells.resize(plan.grid.NumCells());  // CellRoute{} -> worker 0

  ReferenceMatcher ref;
  std::vector<StreamTuple> input;
  for (const auto& q : w.sample.inserts) {
    input.push_back(StreamTuple::OfInsert(q));
    ref.Insert(q);
  }
  for (const auto& o : w.sample.objects) {
    input.push_back(StreamTuple::OfObject(o));
  }
  for (const auto& o : w.extra_objects) {
    input.push_back(StreamTuple::OfObject(o));
  }
  std::vector<MatchResult> expected;
  for (const auto& o : w.sample.objects) {
    const auto ms = ref.Match(o);
    expected.insert(expected.end(), ms.begin(), ms.end());
  }
  for (const auto& o : w.extra_objects) {
    const auto ms = ref.Match(o);
    expected.insert(expected.end(), ms.begin(), ms.end());
  }

  DeliveryRouter router;
  SessionOptions sopts;
  sopts.queue_capacity = 4096;
  sopts.backpressure = BackpressurePolicy::kBlock;
  auto session = std::make_shared<SubscriberSession>(sopts);
  router.RegisterSession(session);
  for (const auto& q : w.sample.inserts) router.Route(q.id, session);

  Cluster cluster(plan, &w.vocab);
  EngineOptions opts;
  opts.num_dispatchers = 2;
  opts.delivery = &router;
  opts.controller.enabled = true;
  opts.controller.interval_ms = 2;
  opts.controller.min_tuples = 400;
  opts.controller.config.adjust.sigma = 1.3;
  ThreadedEngine engine(cluster, opts);

  // Consume concurrently (the bounded kBlock queue backpressures workers,
  // so a run this size cannot complete without a live consumer).
  std::vector<Delivery> got;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    std::vector<Delivery> batch;
    while (!done.load(std::memory_order_acquire)) {
      batch.clear();
      session->TakeBatch(&batch, 1024, milliseconds(5));
      got.insert(got.end(), batch.begin(), batch.end());
    }
    batch.clear();
    while (session->TakeBatch(&batch, 1024, milliseconds(0)) > 0) {
      got.insert(got.end(), batch.begin(), batch.end());
      batch.clear();
    }
  });
  const RunReport report = engine.Run(input);
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(report.session_drops, 0u);  // filled by facade normally; 0 here
  EXPECT_EQ(testutil::Sorted(ToMatches(got)), testutil::Sorted(expected));
  EXPECT_EQ(report.matches_delivered, expected.size());
  EXPECT_EQ(session->stats().delivered, expected.size());
  EXPECT_EQ(session->stats().dropped, 0u);
}

// Merger audit: with EngineOptions::merger_audit the workers replay every
// match verdict through the retired merger and count disagreements with the
// router's dedup window. Under live migration — where cell moves re-emit
// matches from two workers and the window is what keeps them unique — the
// two filters must agree verdict-for-verdict, and the audited run must
// still deliver exactly the reference set the merger-free run delivers.
TEST(DeliveryLiveMigrationTest, MergerAuditAgreesWithDedupWindow) {
  auto w = testutil::MakeWorkload(1213, 1600, 400);
  PartitionPlan plan;
  plan.grid = GridSpec(w.sample.Bounds(), 4);
  plan.num_workers = 4;
  plan.cells.resize(plan.grid.NumCells());  // CellRoute{} -> worker 0

  ReferenceMatcher ref;
  std::vector<StreamTuple> input;
  for (const auto& q : w.sample.inserts) {
    input.push_back(StreamTuple::OfInsert(q));
    ref.Insert(q);
  }
  for (const auto& o : w.sample.objects) {
    input.push_back(StreamTuple::OfObject(o));
  }
  for (const auto& o : w.extra_objects) {
    input.push_back(StreamTuple::OfObject(o));
  }
  std::vector<MatchResult> expected;
  for (const auto& t : input) {
    if (t.kind != TupleKind::kObject) continue;
    const auto ms = ref.Match(t.object);
    expected.insert(expected.end(), ms.begin(), ms.end());
  }

  auto run = [&](bool audit) {
    DeliveryRouter router;
    SessionOptions sopts;
    sopts.queue_capacity = 1 << 20;  // never overflows: exact-set comparison
    auto session = std::make_shared<SubscriberSession>(sopts);
    router.RegisterSession(session);
    for (const auto& q : w.sample.inserts) router.Route(q.id, session);

    Cluster cluster(plan, &w.vocab);
    EngineOptions opts;
    opts.num_dispatchers = 2;
    opts.delivery = &router;
    opts.merger_audit = audit;
    opts.controller.enabled = true;
    opts.controller.interval_ms = 2;
    opts.controller.min_tuples = 400;
    opts.controller.config.adjust.sigma = 1.3;
    ThreadedEngine engine(cluster, opts);
    const RunReport report = engine.Run(input);

    EXPECT_EQ(report.audit_mismatches, 0u) << (audit ? "audit" : "merger-free");
    EXPECT_EQ(report.matches_delivered, expected.size());
    return testutil::Sorted(ToMatches(DrainAll(*session)));
  };

  const auto merger_free = run(false);
  const auto audited = run(true);
  ASSERT_FALSE(merger_free.empty());
  EXPECT_EQ(merger_free, testutil::Sorted(expected));
  EXPECT_EQ(audited, merger_free);
}

// Subscription churn while the engine runs and a consumer drains: the
// stable subscriptions (live for the whole run) must receive exactly the
// reference set; churned ones must deliver nothing after their cancel
// returns. TSan (CI) runs this for the data-race half of the claim.
TEST(DeliveryChurnTest, StableSubscriptionsUnaffectedByChurn) {
  auto w = testutil::MakeWorkload(1207, 1000, 300);
  PS2StreamOptions opts;
  opts.partition.num_workers = 4;
  opts.engine.num_dispatchers = 2;
  PS2Stream ps2(opts);
  ps2.Bootstrap(w.sample);

  SessionOptions sopts;
  sopts.queue_capacity = 1 << 20;
  auto stable_session = ps2.OpenSession(sopts);
  auto churn_session = ps2.OpenSession(sopts);

  // Half the queries are stable, half churn mid-stream.
  std::vector<Subscription> stable;
  std::vector<STSQuery> churn_pool;
  for (size_t i = 0; i < w.sample.inserts.size(); ++i) {
    if (i % 2 == 0) {
      auto sub = ps2.Subscribe(stable_session, w.sample.inserts[i]);
      ASSERT_TRUE(sub.ok());
      stable.push_back(std::move(*sub));
    } else {
      churn_pool.push_back(w.sample.inserts[i]);
    }
  }

  ps2.Start();
  std::atomic<bool> done{false};
  std::vector<Delivery> got;
  std::thread consumer([&] {
    std::vector<Delivery> batch;
    while (!done.load(std::memory_order_acquire)) {
      batch.clear();
      stable_session->TakeBatch(&batch, 1024, milliseconds(2));
      got.insert(got.end(), batch.begin(), batch.end());
      batch.clear();
      churn_session->TakeBatch(&batch, 1024, milliseconds(0));
    }
  });

  // Control plane (this thread, the engine's single producer): posts
  // interleaved with churn subscribe/cancel.
  std::vector<Subscription> churned;
  size_t next_churn = 0;
  for (size_t i = 0; i < w.extra_objects.size(); ++i) {
    ASSERT_TRUE(ps2.Post(w.extra_objects[i]).ok());
    if (i % 7 == 0 && next_churn < churn_pool.size()) {
      auto sub = ps2.Subscribe(churn_session, churn_pool[next_churn++]);
      ASSERT_TRUE(sub.ok());
      churned.push_back(std::move(*sub));
    }
    if (i % 11 == 0 && !churned.empty()) {
      churned.pop_back();  // ~Subscription -> Cancel mid-stream
    }
  }
  const RunReport report = ps2.Stop();
  done.store(true, std::memory_order_release);
  consumer.join();
  for (auto& d : DrainAll(*stable_session)) got.push_back(d);

  // Reference: stable queries against every posted object.
  ReferenceMatcher ref;
  for (const auto& s : stable) {
    // The facade still holds the query; fetch it by id.
    ref.Insert(ps2.subscriptions().at(s.id()));
  }
  std::vector<MatchResult> expected;
  for (const auto& o : w.extra_objects) {
    const auto ms = ref.Match(o);
    expected.insert(expected.end(), ms.begin(), ms.end());
  }

  EXPECT_EQ(testutil::Sorted(ToMatches(got)), testutil::Sorted(expected));
  EXPECT_EQ(report.session_drops, 0u);
  for (auto& s : stable) s.Release();
}

// A kBlock session whose consumer stopped pulling parks worker threads on
// its full queue; Stop() must still drain and join (deliveries degrade to
// drops while draining), and the drops must be visible in the report.
TEST(DeliveryStopDrainTest, BlockedConsumerCannotWedgeStop) {
  auto w = testutil::MakeWorkload(1209, 600, 150);
  PS2StreamOptions opts;
  opts.partition.num_workers = 2;
  opts.engine.num_dispatchers = 1;
  PS2Stream ps2(opts);
  ps2.Bootstrap(w.sample);

  SessionOptions sopts;
  sopts.queue_capacity = 2;  // fills almost immediately
  sopts.backpressure = BackpressurePolicy::kBlock;
  auto session = ps2.OpenSession(sopts);
  std::vector<Subscription> subs;
  for (const auto& q : w.sample.inserts) {
    auto sub = ps2.Subscribe(session, q);
    ASSERT_TRUE(sub.ok());
    subs.push_back(std::move(*sub));
  }
  ps2.Start();
  for (const auto& o : w.extra_objects) {
    ASSERT_TRUE(ps2.Post(o).ok());
  }
  // Nobody consumes. Stop() must return regardless.
  const RunReport report = ps2.Stop();
  EXPECT_EQ(report.session_deliveries,
            session->stats().delivered);
  // The workload produces far more matches than 2 queue slots.
  EXPECT_GT(report.session_drops, 0u);
  EXPECT_LE(session->pending(), sopts.queue_capacity);
  for (auto& s : subs) s.Release();
}

// The virtual-time twin: RunSimulation with a delivery router wired in
// reports simulated publish->deliver latency and delivers the merger's
// exact fresh-match count to the session.
TEST(DeliverySimEngineTest, SimDeliversWithVirtualTimestamps) {
  auto w = testutil::MakeWorkload(1211, 700, 200);
  PartitionConfig cfg;
  cfg.num_workers = 3;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner("hybrid")->Build(w.sample, w.vocab, cfg);

  DeliveryRouter router;
  SessionOptions sopts;
  sopts.queue_capacity = 1 << 20;
  auto session = std::make_shared<SubscriberSession>(sopts);
  router.RegisterSession(session);

  std::vector<StreamTuple> input;
  for (const auto& q : w.sample.inserts) {
    input.push_back(StreamTuple::OfInsert(q));
    router.Route(q.id, session);
  }
  for (const auto& o : w.extra_objects) {
    input.push_back(StreamTuple::OfObject(o));
  }

  Cluster cluster(plan, &w.vocab);
  SimOptions sim;
  sim.enable_adjust = false;
  sim.delivery = &router;
  const SimReport report = RunSimulation(cluster, input, sim);

  const SessionStats stats = session->stats();
  ASSERT_GT(report.matches_delivered, 0u);
  EXPECT_EQ(stats.delivered, report.matches_delivered);
  EXPECT_EQ(stats.latency.count(), report.matches_delivered);
  // Virtual stamps: deliver >= publish for every delivery (service time is
  // positive), and the histogram saw only non-negative latencies.
  Delivery d;
  ASSERT_TRUE(session->Poll(&d));
  EXPECT_GE(d.deliver_us, d.publish_us);
}

}  // namespace
}  // namespace ps2
