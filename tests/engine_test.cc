#include "runtime/engine.h"

#include <gtest/gtest.h>

#include "index/reference_matcher.h"
#include "partition/plan.h"
#include "test_util.h"

namespace ps2 {
namespace {

// The threaded engine must deliver exactly the reference match set (the
// merger dedups; ordering differs, counts must agree) and report sane
// metrics.
class ThreadedEngineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ThreadedEngineTest, DeliversReferenceMatches) {
  auto w = testutil::MakeWorkload(601, 1000, 300);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner(GetParam())->Build(w.sample, w.vocab, cfg);
  Cluster cluster(plan, &w.vocab);

  // Reference result: distinct (query, object) matches over the stream.
  ReferenceMatcher ref;
  size_t expected = 0;
  std::vector<StreamTuple> input;
  for (const auto& q : w.sample.inserts) {
    input.push_back(StreamTuple::OfInsert(q));
    ref.Insert(q);
  }
  for (const auto& o : w.extra_objects) {
    input.push_back(StreamTuple::OfObject(o));
    expected += ref.Match(o).size();
  }

  EngineOptions opts;
  opts.num_dispatchers = 2;
  const RunReport report = RunThreaded(cluster, input, opts);
  EXPECT_EQ(report.matches_delivered, expected) << GetParam();
  EXPECT_EQ(report.tuples_processed, input.size());
  EXPECT_GT(report.throughput_tps, 0.0);
  EXPECT_EQ(report.inserts, w.sample.inserts.size());
  EXPECT_EQ(report.objects, w.extra_objects.size());
  EXPECT_GT(report.latency.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Partitioners, ThreadedEngineTest,
                         ::testing::Values("metric", "kdtree", "hybrid"));

TEST(ThreadedEngineTest, ThrottledRunHasBoundedRate) {
  auto w = testutil::MakeWorkload(603, 300, 100);
  PartitionConfig cfg;
  cfg.num_workers = 2;
  cfg.grid_k = 3;
  const PartitionPlan plan =
      MakePartitioner("grid")->Build(w.sample, w.vocab, cfg);
  Cluster cluster(plan, &w.vocab);
  std::vector<StreamTuple> input;
  for (const auto& o : w.sample.objects) {
    input.push_back(StreamTuple::OfObject(o));
    if (input.size() >= 2000) break;
  }
  EngineOptions opts;
  opts.num_dispatchers = 1;
  opts.input_rate_tps = 20000.0;
  const RunReport report = RunThreaded(cluster, input, opts);
  // Pacing bounds throughput near the requested rate (within 50%).
  EXPECT_LT(report.throughput_tps, 30000.0);
}

TEST(ThreadedEngineTest, WorkerMemoryReported) {
  auto w = testutil::MakeWorkload(605, 400, 200);
  PartitionConfig cfg;
  cfg.num_workers = 3;
  cfg.grid_k = 3;
  const PartitionPlan plan =
      MakePartitioner("metric")->Build(w.sample, w.vocab, cfg);
  Cluster cluster(plan, &w.vocab);
  std::vector<StreamTuple> input;
  for (const auto& q : w.sample.inserts) {
    input.push_back(StreamTuple::OfInsert(q));
  }
  const RunReport report = RunThreaded(cluster, input, EngineOptions{});
  ASSERT_EQ(report.worker_memory_bytes.size(), 3u);
  size_t total = 0;
  for (const size_t b : report.worker_memory_bytes) total += b;
  EXPECT_GT(total, 0u);
  EXPECT_GT(report.dispatcher_memory_bytes, 0u);
}

TEST(LatencyHistogramTest, BasicStats) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 100.0);  // 100us..10ms
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.MeanMicros(), 5050.0, 1.0);
  EXPECT_GT(h.PercentileMicros(0.9), h.PercentileMicros(0.5));
  EXPECT_NEAR(h.FractionBelow(1e9), 1.0, 1e-9);
  EXPECT_NEAR(h.FractionBelow(0.5), 0.0, 1e-9);
}

TEST(LatencyHistogramTest, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.Record(100);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.MeanMicros(), 550.0);
  EXPECT_DOUBLE_EQ(a.MaxMicros(), 1000.0);
}

TEST(LatencyHistogramTest, FractionBelowMonotone) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    h.Record(rng.NextUniform(1, 1e6));
  }
  double prev = 0.0;
  for (double us = 10; us < 1e6; us *= 3) {
    const double f = h.FractionBelow(us);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

}  // namespace
}  // namespace ps2
