#include "adjust/local_adjust.h"

#include <gtest/gtest.h>

#include "index/reference_matcher.h"
#include "test_util.h"

namespace ps2 {
namespace {

// Builds a deliberately imbalanced cluster: all cells assigned to worker 0,
// workers 1..3 idle. Queries and objects clustered in one corner.
struct Imbalanced {
  Vocabulary vocab;
  std::unique_ptr<Cluster> cluster;
  WorkloadSample window;
  ReferenceMatcher ref;
};

Imbalanced MakeImbalanced(uint64_t seed, int workers = 4) {
  Imbalanced s;
  auto w = testutil::MakeWorkload(seed, 1200, 300);
  s.vocab = w.vocab;
  PartitionPlan plan;
  plan.grid = GridSpec(w.sample.Bounds(), 4);
  plan.num_workers = workers;
  plan.cells.assign(plan.grid.NumCells(), CellRoute{0, nullptr});
  s.cluster = std::make_unique<Cluster>(plan, &s.vocab);
  for (const auto& q : w.sample.inserts) {
    s.cluster->Process(StreamTuple::OfInsert(q));
    s.ref.Insert(q);
  }
  for (const auto& o : w.sample.objects) {
    s.cluster->Process(StreamTuple::OfObject(o));
  }
  s.window = w.sample;
  return s;
}

TEST(LocalAdjustTest, NoTriggerWhenBalanced) {
  auto w = testutil::MakeWorkload(301, 500, 150);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner("grid")->Build(w.sample, w.vocab, cfg);
  Cluster cluster(plan, &w.vocab);
  for (const auto& q : w.sample.inserts) {
    cluster.Process(StreamTuple::OfInsert(q));
  }
  for (const auto& o : w.sample.objects) {
    cluster.Process(StreamTuple::OfObject(o));
  }
  LocalAdjustConfig cfg2;
  cfg2.sigma = 1e9;  // effectively never violated
  LocalLoadAdjuster adjuster(cfg2);
  const auto report = adjuster.MaybeAdjust(cluster, w.sample);
  EXPECT_FALSE(report.triggered);
  EXPECT_EQ(report.bytes_migrated, 0u);
}

class LocalAdjustSelectorTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(LocalAdjustSelectorTest, ImprovesBalanceAndPreservesMatching) {
  Imbalanced s = MakeImbalanced(401);
  LocalAdjustConfig cfg;
  cfg.sigma = 1.5;
  cfg.selector = GetParam();
  LocalLoadAdjuster adjuster(cfg);
  const auto report = adjuster.MaybeAdjust(*s.cluster, s.window);
  EXPECT_TRUE(report.triggered);
  EXPECT_EQ(report.overloaded, 0);
  EXPECT_GT(report.queries_moved + report.phase1_splits +
                report.phase1_merges,
            0u);
  // Work actually moved off the hot worker.
  EXPECT_LT(s.cluster->worker(0).NumActiveQueries(), s.ref.size());
  // Matching correctness preserved after migration. Fresh object ids so the
  // merger's (query, object) dedup window cannot confuse these probes with
  // the load-generation objects published earlier.
  auto w2 = testutil::MakeWorkload(402, 200, 0);
  ObjectId probe_id = 10'000'000;
  for (auto o : w2.sample.objects) {
    o.id = probe_id++;
    std::vector<MatchResult> got;
    s.cluster->Process(StreamTuple::OfObject(o), &got);
    ASSERT_EQ(testutil::Sorted(got), testutil::Sorted(s.ref.Match(o)))
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Selectors, LocalAdjustSelectorTest,
                         ::testing::Values("DP", "GR", "SI", "RA"));

TEST(LocalAdjustTest, RepeatedAdjustmentsConverge) {
  Imbalanced s = MakeImbalanced(403);
  LocalAdjustConfig cfg;
  cfg.sigma = 2.0;
  LocalLoadAdjuster adjuster(cfg);
  // Replay object load between adjustments so Definition-3 cell loads
  // reflect the new placement.
  double last_moved = 1e18;
  for (int round = 0; round < 6; ++round) {
    const auto report = adjuster.MaybeAdjust(*s.cluster, s.window);
    if (!report.triggered) break;
    s.cluster->ResetLoadWindow();
    for (const auto& o : s.window.objects) {
      s.cluster->Process(StreamTuple::OfObject(o));
    }
    last_moved = static_cast<double>(report.queries_moved);
  }
  // Eventually the hottest worker holds well under the full query set.
  size_t mx = 0, total = 0;
  for (int w = 0; w < s.cluster->num_workers(); ++w) {
    mx = std::max(mx, s.cluster->worker(w).NumActiveQueries());
    total += s.cluster->worker(w).NumActiveQueries();
  }
  EXPECT_LT(mx, total);  // no longer everything on one worker
}

TEST(LocalAdjustTest, CollectCellsMatchesGi2Stats) {
  Imbalanced s = MakeImbalanced(405);
  const auto cells = LocalLoadAdjuster::CollectCells(*s.cluster, 0);
  EXPECT_FALSE(cells.empty());
  for (const auto& c : cells) {
    EXPECT_GE(c.load, 0.0);
    EXPECT_GE(c.size, 0.0);
  }
}

TEST(LocalAdjustTest, MigrationReportConsistent) {
  Imbalanced s = MakeImbalanced(407);
  LocalAdjustConfig cfg;
  cfg.selector = "GR";
  LocalLoadAdjuster adjuster(cfg);
  const auto report = adjuster.MaybeAdjust(*s.cluster, s.window);
  ASSERT_TRUE(report.triggered);
  EXPECT_GE(report.migration_seconds, 0.0);
  if (report.bytes_migrated > 0) {
    EXPECT_GT(report.migration_seconds, 0.0);
  }
}

}  // namespace
}  // namespace ps2
