#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace ps2 {
namespace {

TEST(TokenizerTest, BasicSplitAndLowercase) {
  Tokenizer t;
  const auto terms = t.Tokenize("Kobe has RETIRED!");
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], "kobe");
  EXPECT_EQ(terms[1], "has");
  EXPECT_EQ(terms[2], "retired");
}

TEST(TokenizerTest, PunctuationAndDigits) {
  Tokenizer t;
  const auto terms = t.Tokenize("route66, exit-12; @user #tag");
  EXPECT_EQ(terms, (std::vector<std::string>{"route66", "exit", "12", "user",
                                             "tag"}));
}

TEST(TokenizerTest, MinLengthFilter) {
  Tokenizer t(/*min_term_length=*/3);
  const auto terms = t.Tokenize("I am in the NYC");
  EXPECT_EQ(terms, (std::vector<std::string>{"the", "nyc"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  ,.;!  ").empty());
}

TEST(TokenizerTest, TrailingTerm) {
  Tokenizer t;
  const auto terms = t.Tokenize("ends with word");
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms.back(), "word");
}

TEST(TokenizerTest, UnicodeBytesTreatedAsSeparators) {
  Tokenizer t;
  // Multi-byte UTF-8 is not alnum under the C locale; terms around it
  // survive.
  const auto terms = t.Tokenize("pizza\xC3\xA9 good");
  EXPECT_EQ(terms, (std::vector<std::string>{"pizza", "good"}));
}

}  // namespace
}  // namespace ps2
