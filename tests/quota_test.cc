#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "api/quota.h"
#include "api/status.h"
#include "api/subscriber_session.h"
#include "api/subscription.h"
#include "runtime/overload.h"
#include "runtime/ps2stream.h"
#include "test_util.h"

namespace ps2 {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// TokenBucket (deterministic clock)
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, SpendsBurstThenRefillsAtRate) {
  TokenBucket bucket(/*rate_per_sec=*/2.0, /*burst=*/3.0);
  // The burst is available immediately.
  EXPECT_TRUE(bucket.TryAcquire(1000));
  EXPECT_TRUE(bucket.TryAcquire(1000));
  EXPECT_TRUE(bucket.TryAcquire(1000));
  EXPECT_FALSE(bucket.TryAcquire(1000));
  // 2 tokens/s: after 400ms only 0.8 tokens have accrued.
  EXPECT_FALSE(bucket.TryAcquire(1000 + 400000));
  // After a further 200ms the fractional credit crosses 1.0.
  EXPECT_TRUE(bucket.TryAcquire(1000 + 600000));
  EXPECT_FALSE(bucket.TryAcquire(1000 + 600000));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(/*rate_per_sec=*/100.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.TryAcquire(1));
  EXPECT_TRUE(bucket.TryAcquire(1));
  // An hour of idle time still only banks `burst` tokens.
  const int64_t later = 1 + 3600LL * 1000000LL;
  EXPECT_TRUE(bucket.TryAcquire(later));
  EXPECT_TRUE(bucket.TryAcquire(later));
  EXPECT_FALSE(bucket.TryAcquire(later));
}

TEST(TokenBucketTest, ClockGoingBackwardsDoesNotMintTokens) {
  TokenBucket bucket(/*rate_per_sec=*/1.0, /*burst=*/1.0);
  EXPECT_TRUE(bucket.TryAcquire(5000000));
  // A stale timestamp must not be treated as negative elapsed time.
  EXPECT_FALSE(bucket.TryAcquire(4000000));
  EXPECT_FALSE(bucket.TryAcquire(5000001));
}

// ---------------------------------------------------------------------------
// QuotaManager (unit)
// ---------------------------------------------------------------------------

TEST(QuotaManagerTest, BurstDefaultsToRateWhenZero) {
  QuotaConfig config;
  config.publish_rate_per_sec = 5.0;
  QuotaManager quota(config);
  EXPECT_EQ(quota.config().publish_burst, 5.0);
}

TEST(QuotaManagerTest, RefundReleasesEveryDimension) {
  QuotaConfig config;
  config.max_subscriptions_per_session = 1;
  config.max_subscriptions_per_tenant = 1;
  config.max_total_subscriptions = 1;
  QuotaManager quota(config);

  ASSERT_TRUE(quota.ChargeSubscribe(7, "acme", 42).ok());
  EXPECT_EQ(quota.total_live(), 1u);
  // Every dimension is now exhausted, whichever is checked first.
  EXPECT_EQ(quota.ChargeSubscribe(8, "acme", 42).code(),
            StatusCode::kResourceExhausted);
  quota.Refund(7);
  EXPECT_EQ(quota.total_live(), 0u);
  EXPECT_TRUE(quota.ChargeSubscribe(8, "acme", 42).ok());
  // Unknown ids (double-cancel) are a no-op, not an underflow.
  quota.Refund(999);
  quota.Refund(8);
  EXPECT_EQ(quota.total_live(), 0u);
}

TEST(QuotaManagerTest, ChargeRestoredBypassesAdmission) {
  QuotaConfig config;
  config.max_total_subscriptions = 1;
  QuotaManager quota(config);
  // Recovery re-charges durable subscriptions even past the ceiling: a
  // subscription that survived a crash is never rejected on Restore.
  quota.ChargeRestored(1, "");
  quota.ChargeRestored(2, "");
  quota.ChargeRestored(3, "");
  EXPECT_EQ(quota.total_live(), 3u);
  // New admissions see the (over-)charged total.
  EXPECT_EQ(quota.ChargeSubscribe(4, "", 0).code(),
            StatusCode::kResourceExhausted);
  quota.Refund(1);
  quota.Refund(2);
  quota.Refund(3);
  EXPECT_TRUE(quota.ChargeSubscribe(4, "", 0).ok());
}

// ---------------------------------------------------------------------------
// Facade enforcement
// ---------------------------------------------------------------------------

TEST(PS2StreamQuotaTest, PerSessionLimitNamesFieldPositionally) {
  PS2StreamOptions options;
  options.quota.max_subscriptions_per_session = 2;
  PS2Stream ps2(options);
  ps2.Bootstrap(WorkloadSample{});

  PS2Stream::SessionPtr session = ps2.OpenSession();
  auto a = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  auto b = ps2.Subscribe(session, "flood", Rect(0, 0, 1, 1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto c = ps2.Subscribe(session, "smoke", Rect(0, 0, 1, 1));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(c.status().message().find("quota.max_subscriptions_per_session"),
            std::string::npos)
      << c.status().message();
  EXPECT_NE(c.status().message().find("2 of 2"), std::string::npos);

  // Sessionless subscriptions are exempt from the per-session ceiling.
  auto loose = ps2.Subscribe(nullptr, "smoke", Rect(0, 0, 1, 1));
  EXPECT_TRUE(loose.ok());

  // A second session gets its own budget.
  PS2Stream::SessionPtr other = ps2.OpenSession();
  EXPECT_TRUE(ps2.Subscribe(other, "smoke", Rect(0, 0, 1, 1)).ok());
  EXPECT_EQ(ps2.quota().rejections(), 1u);
}

TEST(PS2StreamQuotaTest, PerTenantLimitSharedAcrossSessions) {
  PS2StreamOptions options;
  options.quota.max_subscriptions_per_tenant = 2;
  PS2Stream ps2(options);
  ps2.Bootstrap(WorkloadSample{});

  SessionOptions acme;
  acme.tenant = "acme";
  PS2Stream::SessionPtr one = ps2.OpenSession(acme);
  PS2Stream::SessionPtr two = ps2.OpenSession(acme);

  auto a = ps2.Subscribe(one, "fire", Rect(0, 0, 1, 1));
  auto b = ps2.Subscribe(two, "flood", Rect(0, 0, 1, 1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The tenant budget is shared: session identity does not matter.
  auto third = ps2.Subscribe(one, "smoke", Rect(0, 0, 1, 1));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.status().message().find("quota.max_subscriptions_per_tenant"),
            std::string::npos)
      << third.status().message();
  EXPECT_NE(third.status().message().find("\"acme\""), std::string::npos);

  // Another tenant (and the default tenant) are unaffected.
  SessionOptions beta;
  beta.tenant = "beta";
  PS2Stream::SessionPtr other = ps2.OpenSession(beta);
  EXPECT_TRUE(ps2.Subscribe(other, "smoke", Rect(0, 0, 1, 1)).ok());
  PS2Stream::SessionPtr untagged = ps2.OpenSession();
  EXPECT_TRUE(ps2.Subscribe(untagged, "smoke", Rect(0, 0, 1, 1)).ok());
}

TEST(PS2StreamQuotaTest, TotalLimitCountsEverySubscription) {
  PS2StreamOptions options;
  options.quota.max_total_subscriptions = 2;
  PS2Stream ps2(options);
  ps2.Bootstrap(WorkloadSample{});

  PS2Stream::SessionPtr session = ps2.OpenSession();
  auto a = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  auto b = ps2.Subscribe(nullptr, "flood", Rect(0, 0, 1, 1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = ps2.Subscribe(session, "smoke", Rect(0, 0, 1, 1));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(c.status().message().find("quota.max_total_subscriptions"),
            std::string::npos)
      << c.status().message();
}

TEST(PS2StreamQuotaTest, QuotaReleasedOnCancelAndHandleDestruction) {
  PS2StreamOptions options;
  options.quota.max_subscriptions_per_session = 1;
  PS2Stream ps2(options);
  ps2.Bootstrap(WorkloadSample{});
  PS2Stream::SessionPtr session = ps2.OpenSession();

  // Explicit Cancel frees the slot.
  auto a = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(ps2.Subscribe(session, "flood", Rect(0, 0, 1, 1)).ok());
  ASSERT_TRUE(ps2.Cancel(a.value().id()).ok());
  a.value().Release();

  // RAII destruction frees the slot too.
  {
    auto b = ps2.Subscribe(session, "flood", Rect(0, 0, 1, 1));
    ASSERT_TRUE(b.ok());
    EXPECT_FALSE(ps2.Subscribe(session, "smoke", Rect(0, 0, 1, 1)).ok());
  }
  auto c = ps2.Subscribe(session, "smoke", Rect(0, 0, 1, 1));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(ps2.quota().total_live(), 1u);
}

// The quota boundary sits in the facade's control plane, so enforcement
// must be byte-identical across execution modes: sync, threaded, and the
// shard fabric at 2 and 4 shards.
TEST(PS2StreamQuotaTest, EnforcementIdenticalAcrossModes) {
  struct Mode {
    const char* name;
    int num_shards;
    bool threaded;
  };
  const Mode kModes[] = {
      {"sync", 1, false},
      {"threaded", 1, true},
      {"fabric-2", 2, false},
      {"fabric-4", 4, false},
  };
  const testutil::TestWorkload workload =
      testutil::MakeWorkload(/*seed=*/17, /*num_objects=*/300,
                             /*num_queries=*/60, /*num_terms=*/30);

  std::vector<std::string> rejections;
  for (const Mode& mode : kModes) {
    SCOPED_TRACE(mode.name);
    PS2StreamOptions options;
    options.quota.max_subscriptions_per_session = 2;
    options.sharding.num_shards = mode.num_shards;
    PS2Stream ps2(options);
    ps2.Bootstrap(workload.sample);
    if (mode.threaded) ps2.Start();

    PS2Stream::SessionPtr session = ps2.OpenSession();
    auto a = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
    auto b = ps2.Subscribe(session, "flood", Rect(0, 0, 1, 1));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    auto c = ps2.Subscribe(session, "smoke", Rect(0, 0, 1, 1));
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
    rejections.push_back(c.status().message());

    // Cancelling one subscription re-opens the budget in every mode.
    ASSERT_TRUE(ps2.Cancel(a.value().id()).ok());
    a.value().Release();
    EXPECT_TRUE(ps2.Subscribe(session, "smoke", Rect(0, 0, 1, 1)).ok());
    if (mode.threaded) ps2.Stop();
  }
  // Identical enforcement ⇒ identical rejection text.
  for (size_t i = 1; i < rejections.size(); ++i) {
    EXPECT_EQ(rejections[i], rejections[0]);
  }
}

TEST(PS2StreamQuotaTest, PublishRateLimitIsPerTenant) {
  PS2StreamOptions options;
  // 1 token/s refill: the burst is all a tenant gets within a test run.
  options.quota.publish_rate_per_sec = 1.0;
  options.quota.publish_burst = 2.0;
  PS2Stream ps2(options);
  ps2.Bootstrap(WorkloadSample{});

  EXPECT_TRUE(ps2.Post("greedy", Point{0.5, 0.5}, "fire nearby").ok());
  EXPECT_TRUE(ps2.Post("greedy", Point{0.5, 0.5}, "fire nearby").ok());
  Status third = ps2.Post("greedy", Point{0.5, 0.5}, "fire nearby");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.message().find("quota.publish_rate_per_sec"),
            std::string::npos)
      << third.message();
  EXPECT_NE(third.message().find("\"greedy\""), std::string::npos);

  // Other tenants — including the default tenant — have their own buckets.
  EXPECT_TRUE(ps2.Post("polite", Point{0.5, 0.5}, "flood warning").ok());
  EXPECT_TRUE(ps2.Post(Point{0.5, 0.5}, "flood warning").ok());
  EXPECT_EQ(ps2.quota().rate_limited(), 1u);
}

TEST(PS2StreamQuotaTest, RejectedPublishIsNeverDelivered) {
  PS2StreamOptions options;
  options.quota.publish_rate_per_sec = 1.0;
  options.quota.publish_burst = 1.0;
  PS2Stream ps2(options);
  ps2.Bootstrap(WorkloadSample{});

  PS2Stream::SessionPtr session = ps2.OpenSession();
  auto sub = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());

  ASSERT_TRUE(ps2.Post("t", Point{0.5, 0.5}, "fire nearby").ok());
  EXPECT_EQ(ps2.Post("t", Point{0.5, 0.5}, "fire again").code(),
            StatusCode::kResourceExhausted);

  Delivery d;
  ASSERT_TRUE(session->Take(&d, milliseconds(100)).ok());
  EXPECT_EQ(session->Take(&d, milliseconds(1)).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(session->stats().delivered, 1u);
}

TEST(PS2StreamQuotaTest, CountersSurfaceInReportAndSnapshot) {
  PS2StreamOptions options;
  options.quota.max_subscriptions_per_session = 1;
  options.quota.publish_rate_per_sec = 1.0;
  options.quota.publish_burst = 1.0;
  PS2Stream ps2(options);
  ps2.Bootstrap(WorkloadSample{});

  PS2Stream::SessionPtr session = ps2.OpenSession();
  auto a = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(ps2.Subscribe(session, "flood", Rect(0, 0, 1, 1)).ok());
  ASSERT_TRUE(ps2.Post("t", Point{0.1, 0.1}, "quiet corner").ok());
  EXPECT_FALSE(ps2.Post("t", Point{0.1, 0.1}, "quiet corner").ok());

  RunReport live = ps2.MetricsSnapshot();
  EXPECT_EQ(live.quota_rejections, 1u);
  EXPECT_EQ(live.rate_limited, 1u);
  EXPECT_EQ(live.live_subscriptions, 1u);

  ps2.Start();
  RunReport report = ps2.Stop();
  EXPECT_EQ(report.quota_rejections, 1u);
  EXPECT_EQ(report.rate_limited, 1u);
  EXPECT_EQ(report.live_subscriptions, 1u);
}

// ---------------------------------------------------------------------------
// Overload shedding
// ---------------------------------------------------------------------------

TEST(PS2StreamOverloadTest, ShedsSubscribesAndRecoversWithHysteresis) {
  PS2StreamOptions options;
  options.overload.enabled = true;
  options.overload.check_interval = 1;  // sample every post
  options.overload.high_watermark = 0.70;
  options.overload.low_watermark = 0.30;
  PS2Stream ps2(options);
  ps2.Bootstrap(WorkloadSample{});

  SessionOptions slow;
  slow.queue_capacity = 4;
  slow.backpressure = BackpressurePolicy::kDropNewest;
  PS2Stream::SessionPtr session = ps2.OpenSession(slow);
  auto sub = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());

  // Fill the (only) session queue to 3/4 = 0.75 ≥ high watermark. The
  // sample runs on the post after the enqueue, so a fourth post trips it.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "fire nearby").ok());
  }
  EXPECT_TRUE(ps2.overloaded());

  // Degraded mode sheds new subscribes with a typed error; existing
  // subscriptions and publishes keep flowing.
  auto shed = ps2.Subscribe(session, "flood", Rect(0, 0, 1, 1));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("overload"), std::string::npos)
      << shed.status().message();
  EXPECT_TRUE(ps2.Post(Point{0.5, 0.5}, "fire still burning").ok());

  // Hysteresis: draining to 1/4 = 0.25 ≤ low watermark exits degraded mode
  // on the next sample; a mid-band fill (0.5) would not.
  Delivery d;
  while (session->pending() > 1) {
    ASSERT_TRUE(session->Take(&d, milliseconds(100)).ok());
  }
  ASSERT_TRUE(ps2.Post(Point{0.9, 0.9}, "quiet corner").ok());
  EXPECT_FALSE(ps2.overloaded());
  EXPECT_TRUE(ps2.Subscribe(session, "flood", Rect(0, 0, 1, 1)).ok());

  RunReport report = ps2.MetricsSnapshot();
  EXPECT_EQ(report.overload_trips, 1u);
  EXPECT_EQ(report.overload_sheds, 1u);
}

TEST(PS2StreamOverloadTest, SheddingDegradesBlockingSessionsToDropOldest) {
  PS2StreamOptions options;
  options.overload.enabled = true;
  options.overload.check_interval = 1;
  options.overload.high_watermark = 0.70;
  options.overload.low_watermark = 0.30;
  PS2Stream ps2(options);
  ps2.Bootstrap(WorkloadSample{});

  SessionOptions blocking;
  blocking.queue_capacity = 4;
  blocking.backpressure = BackpressurePolicy::kBlock;
  PS2Stream::SessionPtr session = ps2.OpenSession(blocking);
  auto sub = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());

  // Fill the queue and trip the shed. Without SetShedding the fifth
  // matching post would park this (sync-mode: the test's) thread forever;
  // degraded kBlock evicts the oldest instead.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "fire msg").ok());
  }
  ASSERT_TRUE(ps2.overloaded());
  ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "fire overflow").ok());

  EXPECT_EQ(session->pending(), 4u);
  EXPECT_EQ(session->stats().dropped, 1u);
}

}  // namespace
}  // namespace ps2
