#include "adjust/global_adjust.h"

#include <gtest/gtest.h>

#include "partition/text_util.h"
#include "test_util.h"

namespace ps2 {
namespace {

class DualRouterTest : public ::testing::Test {
 protected:
  DualRouterTest() : grid_(Rect(0, 0, 16, 16), 3) {
    a_ = vocab_.Intern("a");
    b_ = vocab_.Intern("b");
    vocab_.AddCount(a_, 3);
    vocab_.AddCount(b_, 2);
  }

  std::unique_ptr<GridtIndex> SpaceIndex(WorkerId left, WorkerId right) {
    PartitionPlan plan;
    plan.grid = grid_;
    plan.num_workers = 4;
    plan.cells.resize(grid_.NumCells());
    for (uint32_t cy = 0; cy < grid_.side(); ++cy) {
      for (uint32_t cx = 0; cx < grid_.side(); ++cx) {
        plan.cells[grid_.ToId(cx, cy)].worker =
            cx < grid_.side() / 2 ? left : right;
      }
    }
    return std::make_unique<GridtIndex>(std::move(plan), &vocab_);
  }

  STSQuery Query(QueryId id, TermId t, Rect r) {
    STSQuery q;
    q.id = id;
    q.expr = BoolExpr::And({t});
    q.region = r;
    return q;
  }

  GridSpec grid_;
  Vocabulary vocab_;
  TermId a_, b_;
};

TEST_F(DualRouterTest, SingleStrategyPassThrough) {
  DualStrategyRouter router(SpaceIndex(0, 1));
  EXPECT_FALSE(router.InTransition());
  const auto routes = router.RouteInsert(Query(1, a_, Rect(0, 0, 2, 2)));
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].worker, 0);
  std::vector<WorkerId> out;
  router.RouteObject(SpatioTextualObject::FromTerms(1, Point{1, 1}, {a_}),
                     &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{0}));
}

TEST_F(DualRouterTest, TransitionRoutesOldDeletesThroughOldPlan) {
  DualStrategyRouter router(SpaceIndex(0, 1));
  const STSQuery old_q = Query(1, a_, Rect(0, 0, 2, 2));
  router.RouteInsert(old_q);  // lands on worker 0 under the old plan
  router.InstallNewPlan(SpaceIndex(2, 3));
  EXPECT_TRUE(router.InTransition());
  EXPECT_EQ(router.OldQueryCount(), 1u);
  // New query lands per the new plan.
  const auto new_routes = router.RouteInsert(Query(2, a_, Rect(0, 0, 2, 2)));
  ASSERT_EQ(new_routes.size(), 1u);
  EXPECT_EQ(new_routes[0].worker, 2);
  // Objects route through both strategies.
  std::vector<WorkerId> out;
  router.RouteObject(SpatioTextualObject::FromTerms(1, Point{1, 1}, {a_}),
                     &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{0, 2}));
  // Deleting the old query routes through the old plan (worker 0).
  const auto del_routes = router.RouteDelete(old_q);
  ASSERT_EQ(del_routes.size(), 1u);
  EXPECT_EQ(del_routes[0].worker, 0);
  EXPECT_EQ(router.OldQueryCount(), 0u);
  EXPECT_TRUE(router.ReadyToRetire(0));
}

TEST_F(DualRouterTest, RetireReturnsStragglers) {
  DualStrategyRouter router(SpaceIndex(0, 1));
  router.RouteInsert(Query(1, a_, Rect(0, 0, 2, 2)));
  router.RouteInsert(Query(2, b_, Rect(10, 10, 12, 12)));
  router.InstallNewPlan(SpaceIndex(2, 3));
  router.RouteDelete(Query(1, a_, Rect(0, 0, 2, 2)));
  EXPECT_EQ(router.OldQueryCount(), 1u);
  const auto stragglers = router.TakeOldQueriesAndRetire();
  ASSERT_EQ(stragglers.size(), 1u);
  EXPECT_EQ(stragglers[0].id, 2u);
  EXPECT_FALSE(router.InTransition());
  // After retirement the straggler counts as a new-generation query: its
  // deletion routes through the primary.
  const auto del = router.RouteDelete(stragglers[0]);
  ASSERT_EQ(del.size(), 1u);
  EXPECT_EQ(del[0].worker, 3);  // right half under the new plan
}

TEST_F(DualRouterTest, MemoryIncludesBothIndexesDuringTransition) {
  DualStrategyRouter router(SpaceIndex(0, 1));
  router.RouteInsert(Query(1, a_, Rect(0, 0, 2, 2)));
  const size_t single = router.MemoryBytes();
  router.InstallNewPlan(SpaceIndex(2, 3));
  EXPECT_GT(router.MemoryBytes(), single);
}

TEST(EvaluateRepartitionTest, DetectsImprovableDistribution) {
  auto w = testutil::MakeWorkload(501, 2000, 500);
  PartitionConfig cfg;
  cfg.num_workers = 8;
  cfg.grid_k = 4;
  // Terrible current plan: everything on one worker... actually a uniform
  // round-robin by cell id, which scatters contiguous regions and inflates
  // query duplication.
  PartitionPlan bad;
  bad.grid = GridSpec(w.sample.Bounds(), cfg.grid_k);
  bad.num_workers = cfg.num_workers;
  bad.cells.resize(bad.grid.NumCells());
  for (CellId c = 0; c < bad.grid.NumCells(); ++c) {
    bad.cells[c].worker = c % cfg.num_workers;
  }
  const auto decision =
      EvaluateRepartition(bad, w.sample, w.vocab, cfg, 0.05);
  EXPECT_GT(decision.current_load, 0.0);
  EXPECT_GT(decision.candidate_load, 0.0);
  EXPECT_TRUE(decision.repartition);
  EXPECT_LT(decision.candidate_load, decision.current_load);
}

TEST(EvaluateRepartitionTest, KeepsGoodPlan) {
  auto w = testutil::MakeWorkload(503, 1500, 400);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  const PartitionPlan good =
      MakePartitioner("hybrid")->Build(w.sample, w.vocab, cfg);
  const auto decision =
      EvaluateRepartition(good, w.sample, w.vocab, cfg, 0.10);
  EXPECT_FALSE(decision.repartition);
}

}  // namespace
}  // namespace ps2
