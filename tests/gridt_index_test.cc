#include "dispatch/gridt_index.h"

#include <gtest/gtest.h>

#include "partition/text_util.h"
#include "test_util.h"

namespace ps2 {
namespace {

class GridtIndexTest : public ::testing::Test {
 protected:
  GridtIndexTest() : grid_(Rect(0, 0, 16, 16), 3) {
    a_ = vocab_.Intern("a");
    b_ = vocab_.Intern("b");
    vocab_.AddCount(a_, 5);
    vocab_.AddCount(b_, 3);
  }

  // All cells space-routed: left half -> 0, right half -> 1.
  PartitionPlan SpacePlan() {
    PartitionPlan plan;
    plan.grid = grid_;
    plan.num_workers = 2;
    plan.cells.resize(grid_.NumCells());
    for (uint32_t cy = 0; cy < grid_.side(); ++cy) {
      for (uint32_t cx = 0; cx < grid_.side(); ++cx) {
        plan.cells[grid_.ToId(cx, cy)].worker = cx < grid_.side() / 2 ? 0 : 1;
      }
    }
    return plan;
  }

  STSQuery Query(QueryId id, std::vector<TermId> terms, Rect region) {
    STSQuery q;
    q.id = id;
    q.expr = BoolExpr::And(std::move(terms));
    q.region = region;
    return q;
  }

  SpatioTextualObject Object(ObjectId id, Point loc,
                             std::vector<TermId> terms) {
    return SpatioTextualObject::FromTerms(id, loc, std::move(terms));
  }

  GridSpec grid_;
  Vocabulary vocab_;
  TermId a_, b_;
};

TEST_F(GridtIndexTest, SpaceCellsForwardObjectsUnconditionally) {
  // Figure 4: space-routed cells send objects "without checking the
  // textual content" — even when no query is registered.
  GridtIndex index(SpacePlan(), &vocab_);
  std::vector<WorkerId> out;
  index.RouteObject(Object(1, Point{2, 2}, {a_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{0}));
  index.RouteObject(Object(2, Point{14, 2}, {b_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{1}));
  // H1 routing agrees.
  index.RouteObjectH1(Object(1, Point{2, 2}, {a_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{0}));
}

TEST_F(GridtIndexTest, TextCellObjectDiscardWithoutLiveKeys) {
  PartitionPlan plan = MakeWholeSpaceTextPlan(grid_, 2, {{a_, 0}, {b_, 1}});
  GridtIndex index(std::move(plan), &vocab_);
  std::vector<WorkerId> out;
  // No live queries: every object is discarded at the dispatcher.
  index.RouteObject(Object(1, Point{2, 2}, {a_}), &out);
  EXPECT_TRUE(out.empty());
  // After registering a query keyed on a, objects carrying a get through.
  index.RouteInsert(Query(1, {a_}, Rect(0, 0, 4, 4)));
  index.RouteObject(Object(2, Point{2, 2}, {a_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{0}));
  // Object with only non-key terms is still discarded.
  index.RouteObject(Object(3, Point{2, 2}, {b_}), &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(GridtIndexTest, H2RefcountsSurviveOneOfTwoDeletes) {
  PartitionPlan plan = MakeWholeSpaceTextPlan(grid_, 2, {{a_, 0}, {b_, 1}});
  GridtIndex index(std::move(plan), &vocab_);
  const STSQuery q1 = Query(1, {a_}, Rect(0, 0, 4, 4));
  const STSQuery q2 = Query(2, {a_}, Rect(0, 0, 4, 4));
  index.RouteInsert(q1);
  index.RouteInsert(q2);
  index.RouteDelete(q1);
  std::vector<WorkerId> out;
  index.RouteObject(Object(1, Point{2, 2}, {a_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{0}));  // q2 still live
  index.RouteDelete(q2);
  index.RouteObject(Object(2, Point{2, 2}, {a_}), &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(GridtIndexTest, TextPlanRoutesQueriesByRoutingTerms) {
  PartitionPlan plan =
      MakeWholeSpaceTextPlan(grid_, 2, {{a_, 0}, {b_, 1}});
  GridtIndex index(std::move(plan), &vocab_);
  // AND query routes by least frequent keyword only (b).
  const auto routes = index.RouteInsert(Query(1, {a_, b_}, Rect(0, 0, 4, 4)));
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].worker, 1);
  // Object with only term a: does not carry the routing key -> discarded
  // (it cannot match "a AND b" anyway since it lacks b).
  std::vector<WorkerId> out;
  index.RouteObject(Object(1, Point{2, 2}, {a_}), &out);
  EXPECT_TRUE(out.empty());
  // Object with both terms reaches worker 1 via key b.
  index.RouteObject(Object(2, Point{2, 2}, {a_, b_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{1}));
}

TEST_F(GridtIndexTest, ReassignCellRedirectsObjects) {
  GridtIndex index(SpacePlan(), &vocab_);
  index.RouteInsert(Query(1, {a_}, Rect(0, 0, 2, 2)));
  const CellId cell = grid_.CellOf(Point{1, 1});
  index.ReassignCell(cell, 1);
  std::vector<WorkerId> out;
  index.RouteObject(Object(1, Point{1, 1}, {a_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{1}));
  // Deletions after the move route to the new worker too.
  const auto del = index.RouteDelete(Query(1, {a_}, Rect(0, 0, 2, 2)));
  bool hits_new = false;
  for (const auto& r : del) hits_new |= r.worker == 1;
  EXPECT_TRUE(hits_new);
}

TEST_F(GridtIndexTest, SetCellTextRouteSplitsTraffic) {
  GridtIndex index(SpacePlan(), &vocab_);
  index.RouteInsert(Query(1, {a_}, Rect(0, 0, 2, 2)));
  index.RouteInsert(Query(2, {b_}, Rect(0, 0, 2, 2)));
  const CellId cell = grid_.CellOf(Point{1, 1});
  index.SetCellTextRoute(cell, {{a_, 0}, {b_, 1}}, {0, 1});
  // H2 is rebuilt by the migration layer (Cluster::TextSplitCell); mimic it.
  index.AddH2(cell, a_, 0);
  index.AddH2(cell, b_, 1);
  std::vector<WorkerId> out;
  index.RouteObject(Object(1, Point{1, 1}, {a_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{0}));
  index.RouteObject(Object(2, Point{1, 1}, {b_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{1}));
  index.RouteObject(Object(3, Point{1, 1}, {a_, b_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{0, 1}));
}

TEST_F(GridtIndexTest, RemapCellWorkerOnTextCell) {
  PartitionPlan plan =
      MakeWholeSpaceTextPlan(grid_, 3, {{a_, 0}, {b_, 1}});
  GridtIndex index(std::move(plan), &vocab_);
  index.RouteInsert(Query(1, {a_}, Rect(0, 0, 2, 2)));
  const CellId cell = grid_.CellOf(Point{1, 1});
  index.RemapCellWorker(cell, /*from=*/0, /*to=*/2);
  std::vector<WorkerId> out;
  index.RouteObject(Object(1, Point{1, 1}, {a_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{2}));
  // Other cells keep the original routing (router clone is cell-local).
  index.RouteInsert(Query(2, {a_}, Rect(10, 10, 12, 12)));
  index.RouteObject(Object(2, Point{11, 11}, {a_}), &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{0}));
}

TEST_F(GridtIndexTest, H2WorkersIntrospection) {
  PartitionPlan plan = MakeWholeSpaceTextPlan(grid_, 2, {{a_, 0}, {b_, 1}});
  GridtIndex index(std::move(plan), &vocab_);
  index.RouteInsert(Query(1, {a_}, Rect(0, 0, 2, 2)));
  const CellId cell = grid_.CellOf(Point{1, 1});
  EXPECT_EQ(index.H2Workers(cell, a_), (std::vector<WorkerId>{0}));
  EXPECT_TRUE(index.H2Workers(cell, b_).empty());
}

TEST_F(GridtIndexTest, MemoryGrowsWithH2) {
  std::unordered_map<TermId, WorkerId> map{{a_, 0}, {b_, 1}};
  GridtIndex index(MakeWholeSpaceTextPlan(grid_, 2, std::move(map)),
                   &vocab_);
  const size_t before = index.MemoryBytes();
  for (int i = 0; i < 200; ++i) {
    const TermId t = vocab_.Intern("w" + std::to_string(i));
    index.RouteInsert(Query(100 + i, {t}, Rect(0, 0, 15, 15)));
  }
  EXPECT_GT(index.MemoryBytes(), before);
  EXPECT_GT(index.NumH2Entries(), 200u);
}

}  // namespace
}  // namespace ps2
