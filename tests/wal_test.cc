#include "persist/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/bytes.h"

namespace ps2 {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs gtest cases in parallel.
    path_ = ::testing::TempDir() + "/ps2_wal_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  STSQuery MakeQuery(QueryId id, Vocabulary& vocab) {
    STSQuery q;
    q.id = id;
    q.expr = BoolExpr::Cnf({{vocab.Intern("alpha"), vocab.Intern("beta")},
                            {vocab.Intern("gamma")}});
    q.region = Rect(1, 2, 3, 4);
    return q;
  }

  std::vector<WalRecordView> Replay(Vocabulary& vocab, WalReplayStats* stats,
                                    uint64_t after_lsn = 0,
                                    bool truncate = true) {
    std::vector<WalRecordView> records;
    EXPECT_TRUE(ReplayWal(
        path_, after_lsn, vocab,
        [&](WalRecordView& r) { records.push_back(r); }, stats, truncate));
    return records;
  }

  void AppendRawBytes(const std::string& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }

  size_t FileSize() {
    return static_cast<size_t>(std::filesystem::file_size(path_));
  }

  std::string path_;
};

TEST_F(WalTest, RoundTripAllRecordTypes) {
  Vocabulary vocab;
  const STSQuery q = MakeQuery(7, vocab);

  Wal wal(Wal::Options{Wal::SyncMode::kFlush});
  ASSERT_TRUE(wal.Open(path_, 1, 1));
  EXPECT_EQ(wal.AppendSubscribe(q, vocab), 1u);
  EXPECT_EQ(wal.AppendUnsubscribe(7), 2u);
  CellRoute space;
  space.worker = 3;
  EXPECT_EQ(wal.AppendCellRoute(11, space, vocab), 3u);
  CellRoute text;
  text.worker = 0;
  text.text = std::make_shared<const TermRouter>(
      std::unordered_map<TermId, WorkerId>{{vocab.Intern("alpha"), 0},
                                           {vocab.Intern("beta"), 2}},
      std::vector<WorkerId>{0, 2});
  EXPECT_EQ(wal.AppendCellRoute(12, text, vocab), 4u);
  wal.Close();

  Vocabulary vocab2;
  WalReplayStats stats;
  auto records = Replay(vocab2, &stats);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(stats.records, 4u);
  EXPECT_EQ(stats.subscribes, 1u);
  EXPECT_EQ(stats.unsubscribes, 1u);
  EXPECT_EQ(stats.cell_routes, 2u);
  EXPECT_EQ(stats.last_lsn, 4u);
  EXPECT_FALSE(stats.truncated);

  EXPECT_EQ(records[0].type, Wal::RecordType::kSubscribe);
  EXPECT_EQ(records[0].query.id, 7u);
  EXPECT_EQ(records[0].query.region, q.region);
  ASSERT_EQ(records[0].query.expr.clauses().size(), 2u);
  // Terms survive by *string*, not id: the replay vocabulary interned them
  // fresh.
  EXPECT_EQ(vocab2.TermString(records[0].query.expr.clauses()[0][0]),
            "alpha");

  EXPECT_EQ(records[1].type, Wal::RecordType::kUnsubscribe);
  EXPECT_EQ(records[1].query_id, 7u);

  EXPECT_EQ(records[2].type, Wal::RecordType::kCellRoute);
  EXPECT_EQ(records[2].cell, 11u);
  EXPECT_FALSE(records[2].route.IsText());
  EXPECT_EQ(records[2].route.worker, 3);

  EXPECT_EQ(records[3].cell, 12u);
  ASSERT_TRUE(records[3].route.IsText());
  EXPECT_EQ(records[3].route.text->workers(),
            (std::vector<WorkerId>{0, 2}));
  EXPECT_EQ(records[3].route.text->Route(vocab2.Lookup("beta")), 2);
}

TEST_F(WalTest, AfterLsnFiltersReplay) {
  Vocabulary vocab;
  Wal wal(Wal::Options{Wal::SyncMode::kFlush});
  ASSERT_TRUE(wal.Open(path_, 1, 1));
  for (QueryId id = 1; id <= 5; ++id) {
    wal.AppendSubscribe(MakeQuery(id, vocab), vocab);
  }
  wal.Close();
  Vocabulary vocab2;
  WalReplayStats stats;
  auto records = Replay(vocab2, &stats, /*after_lsn=*/3);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].query.id, 4u);
  EXPECT_EQ(records[1].query.id, 5u);
  EXPECT_EQ(stats.records, 5u);  // stats count everything scanned
}

TEST_F(WalTest, TornTrailingRecordIsTruncated) {
  Vocabulary vocab;
  Wal wal(Wal::Options{Wal::SyncMode::kFlush});
  ASSERT_TRUE(wal.Open(path_, 1, 1));
  wal.AppendSubscribe(MakeQuery(1, vocab), vocab);
  wal.AppendSubscribe(MakeQuery(2, vocab), vocab);
  wal.Close();
  const size_t good_size = FileSize();

  // Simulate a torn write: a frame header promising more bytes than exist.
  ByteWriter torn;
  torn.Pod<uint32_t>(500);       // length
  torn.Pod<uint32_t>(0xABCDEF);  // bogus crc
  torn.Bytes("partial", 7);
  AppendRawBytes(torn.buffer());
  ASSERT_GT(FileSize(), good_size);

  Vocabulary vocab2;
  WalReplayStats stats;
  auto records = Replay(vocab2, &stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.truncated_bytes, 15u);
  EXPECT_EQ(FileSize(), good_size);  // physically truncated

  // The truncated segment accepts appends again (recovery resumes logging).
  Wal wal2(Wal::Options{Wal::SyncMode::kFlush});
  ASSERT_TRUE(wal2.Open(path_, 1, stats.last_lsn + 1));
  EXPECT_EQ(wal2.AppendUnsubscribe(1), 3u);
  wal2.Close();
  Vocabulary vocab3;
  WalReplayStats stats2;
  auto records2 = Replay(vocab3, &stats2);
  ASSERT_EQ(records2.size(), 3u);
  EXPECT_FALSE(stats2.truncated);
  EXPECT_EQ(records2[2].type, Wal::RecordType::kUnsubscribe);
}

TEST_F(WalTest, BitFlippedRecordStopsReplayAtLastGoodRecord) {
  Vocabulary vocab;
  Wal wal(Wal::Options{Wal::SyncMode::kFlush});
  ASSERT_TRUE(wal.Open(path_, 1, 1));
  wal.AppendSubscribe(MakeQuery(1, vocab), vocab);
  const size_t first_end =
      static_cast<size_t>(std::filesystem::file_size(path_));
  wal.AppendSubscribe(MakeQuery(2, vocab), vocab);
  wal.Close();

  // Flip one byte inside the second record's payload: its CRC must reject
  // it and replay keeps only the first record.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(first_end) + 12, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, static_cast<long>(first_end) + 12, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }

  Vocabulary vocab2;
  WalReplayStats stats;
  auto records = Replay(vocab2, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].query.id, 1u);
  EXPECT_TRUE(stats.truncated);
}

TEST_F(WalTest, GarbageHeaderFailsReplay) {
  AppendRawBytes("JUNKJUNKJUNKJUNKJUNK");
  Vocabulary vocab;
  WalReplayStats stats;
  EXPECT_FALSE(ReplayWal(path_, 0, vocab, [](WalRecordView&) {}, &stats));
}

// Group commit: concurrent appenders (the facade thread and the controller
// thread in production) must all come back durable with distinct LSNs.
TEST_F(WalTest, ConcurrentAppendersGroupCommit) {
  Wal wal(Wal::Options{Wal::SyncMode::kFlush});
  ASSERT_TRUE(wal.Open(path_, 1, 1));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_GT(wal.AppendUnsubscribe(t * kPerThread + i), 0u);
      }
    });
  }
  for (auto& t : threads) t.join();
  wal.Close();

  Vocabulary vocab;
  WalReplayStats stats;
  uint64_t prev_lsn = 0;
  auto records = Replay(vocab, &stats);
  ASSERT_EQ(records.size(), size_t{kThreads} * kPerThread);
  for (const auto& r : records) {
    EXPECT_GT(r.lsn, prev_lsn);  // strictly monotonic in file order
    prev_lsn = r.lsn;
  }
  EXPECT_FALSE(stats.truncated);
}

}  // namespace
}  // namespace ps2
