// Randomized kill-point durability for the subscription-class subsystem:
// UpdateSubscription mutations and continuous top-k heap state must survive
// a hard kill. Updates are journaled to the WAL (and replayed in order — the
// last write wins), heaps ride checkpoints (candidates are ephemeral: they
// are not journaled, so heap equality is asserted against the reference at
// the checkpoint cut, filtered through any later unsubscribes).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "test_util.h"

namespace ps2 {
namespace {

struct Action {
  enum Kind { kSubscribe, kUnsubscribe, kUpdate, kPublish } kind;
  STSQuery query;              // kSubscribe / kUpdate
  QueryId query_id = 0;        // kUnsubscribe
  SpatioTextualObject object;  // kPublish
};

std::vector<TermId> AllTerms(const BoolExpr& expr) {
  std::vector<TermId> terms;
  for (const auto& clause : expr.clauses()) {
    terms.insert(terms.end(), clause.begin(), clause.end());
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

void MixClasses(testutil::TestWorkload* w, uint64_t seed) {
  Rng rng(seed);
  for (STSQuery& q : w->sample.inserts) {
    const double dice = rng.NextDouble();
    if (dice < 1.0 / 3) continue;
    const std::vector<TermId> terms = AllTerms(q.expr);
    q.expr = BoolExpr::Or(terms);
    if (dice < 2.0 / 3) {
      q.cls = SubscriptionClass::kSimilarity;
      q.tau = 0.05 + 0.5 * rng.NextDouble();
    } else {
      q.cls = SubscriptionClass::kTopK;
      q.k = 1 + rng.NextBelow(4);
    }
  }
  int64_t ts = 0;
  for (SpatioTextualObject& o : w->extra_objects) {
    ts += 1000;
    o.timestamp_us = ts;
    if (rng.NextBernoulli(0.5)) {
      o.ttl_us = 500 + static_cast<int64_t>(rng.NextBelow(8)) * 700;
    }
  }
}

std::vector<Action> MakeActions(const testutil::TestWorkload& w,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Action> actions;
  std::vector<QueryId> subscribed;
  std::unordered_map<QueryId, STSQuery> live;
  size_t qi = 0, oi = 0;
  while (qi < w.sample.inserts.size() || oi < w.extra_objects.size()) {
    const double dice = rng.NextDouble();
    if (dice < 0.40 && qi < w.sample.inserts.size()) {
      Action a;
      a.kind = Action::kSubscribe;
      a.query = w.sample.inserts[qi++];
      subscribed.push_back(a.query.id);
      live[a.query.id] = a.query;
      actions.push_back(std::move(a));
    } else if (dice < 0.48 && !subscribed.empty()) {
      Action a;
      a.kind = Action::kUnsubscribe;
      const size_t pick = rng.NextBelow(subscribed.size());
      a.query_id = subscribed[pick];
      subscribed.erase(subscribed.begin() + pick);
      live.erase(a.query_id);
      actions.push_back(std::move(a));
    } else if (dice < 0.58 && !subscribed.empty()) {
      Action a;
      a.kind = Action::kUpdate;
      const QueryId id = subscribed[rng.NextBelow(subscribed.size())];
      a.query = live[id];
      a.query.region = Rect::Centered(
          Point{rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
          rng.NextUniform(2, 25), rng.NextUniform(2, 25));
      live[id] = a.query;
      actions.push_back(std::move(a));
    } else if (oi < w.extra_objects.size()) {
      Action a;
      a.kind = Action::kPublish;
      a.object = w.extra_objects[oi++];
      actions.push_back(std::move(a));
    }
  }
  return actions;
}

// Applies one action to the service (no session: candidates still reach the
// top-k coordinator; deliveries are merely counted) and to the reference.
void Apply(PS2Stream& ps2, ReferenceMatcher& ref, const Action& a) {
  switch (a.kind) {
    case Action::kSubscribe: {
      auto sub = ps2.Subscribe(nullptr, a.query);
      ASSERT_TRUE(sub.ok()) << sub.status().ToString();
      sub->Release();
      ref.Insert(a.query);
      break;
    }
    case Action::kUnsubscribe:
      ASSERT_TRUE(ps2.Cancel(a.query_id).ok());
      ref.Delete(a.query_id);
      break;
    case Action::kUpdate:
      ASSERT_TRUE(ps2.UpdateSubscription(a.query.id, a.query.region).ok());
      ref.Update(a.query);
      break;
    case Action::kPublish:
      ASSERT_TRUE(ps2.Post(a.object).ok());
      ref.Post(a.object);
      break;
  }
}

void ExpectQueryEq(const STSQuery& got, const STSQuery& want,
                   const std::string& label) {
  EXPECT_EQ(got.cls, want.cls) << label;
  EXPECT_DOUBLE_EQ(got.tau, want.tau) << label;
  EXPECT_EQ(got.k, want.k) << label;
  EXPECT_EQ(got.region.min_x, want.region.min_x) << label;
  EXPECT_EQ(got.region.max_x, want.region.max_x) << label;
  EXPECT_EQ(got.region.min_y, want.region.min_y) << label;
  EXPECT_EQ(got.region.max_y, want.region.max_y) << label;
  EXPECT_EQ(got.expr.clauses(), want.expr.clauses()) << label;
}

TEST(SubscribeDurabilityTest, RandomKillPointsRecoverSpecsUpdatesAndHeaps) {
  for (const uint64_t seed : {201u, 202u, 203u}) {
    testutil::TestWorkload w = testutil::MakeWorkload(seed, 400, 160);
    MixClasses(&w, seed * 7 + 5);
    const std::vector<Action> actions = MakeActions(w, seed * 100 + 13);
    Rng rng(seed * 31 + 9);
    // The cut: everything before it is checkpointed (heaps included);
    // everything after is mutation-only WAL tail the replay must reapply.
    const size_t cut =
        actions.size() / 4 + rng.NextBelow(actions.size() / 2);
    const std::string dir =
        ::testing::TempDir() + "/ps2_sub_durability_" + std::to_string(seed);
    std::filesystem::remove_all(dir);

    ReferenceMatcher ref;
    std::unordered_map<QueryId, STSQuery> expected_live;
    STSQuery moved;  // the last post-cut update, for the behavioral probe
    {
      PS2StreamOptions opts;
      opts.partition.num_workers = 2;
      opts.durability.enabled = true;
      opts.durability.dir = dir;
      opts.durability.checkpoint_every = 0;  // only the explicit cut
      PS2Stream ps2(opts);
      ps2.Bootstrap(w.sample);
      ASSERT_TRUE(ps2.durable());
      for (size_t i = 0; i < cut; ++i) Apply(ps2, ref, actions[i]);
      ASSERT_TRUE(ps2.Checkpoint());
      // Post-checkpoint: mutations only (published objects are not
      // journaled, so heap state stays pinned at the cut). Every update
      // lands in the WAL tail.
      size_t tail_updates = 0;
      for (size_t i = cut; i < actions.size(); ++i) {
        if (actions[i].kind == Action::kPublish) continue;
        Apply(ps2, ref, actions[i]);
        if (actions[i].kind == Action::kUpdate) {
          ++tail_updates;
          moved = actions[i].query;
        }
      }
      if (tail_updates == 0) {
        // Force at least one journaled update so the replay path is always
        // exercised: move the lowest live id somewhere new.
        ASSERT_FALSE(ps2.subscriptions().empty());
        QueryId id = 0;
        for (const auto& [qid, q] : ps2.subscriptions()) {
          if (id == 0 || qid < id) id = qid;
        }
        moved = ps2.subscriptions().at(id);
        moved.region = Rect(40, 40, 55, 55);
        ASSERT_TRUE(ps2.UpdateSubscription(id, moved.region).ok());
        ref.Update(moved);
      }
      expected_live = ps2.subscriptions();
      ps2.Kill();
    }

    PS2Stream ps2(PS2StreamOptions{});
    ASSERT_TRUE(ps2.Restore(dir)) << "seed " << seed;
    ASSERT_NE(ps2.recovered(), nullptr);
    EXPECT_GT(ps2.recovered()->wal.updates, 0u) << "seed " << seed;

    // Subscriptions: same live set, and every spec field — class, tau, k,
    // terms and the post-update region — survived. Updates replayed in
    // order means the LAST region wins, which the map compare verifies.
    ASSERT_EQ(ps2.num_subscriptions(), expected_live.size());
    for (const auto& [id, want] : expected_live) {
      const auto it = ps2.subscriptions().find(id);
      ASSERT_NE(it, ps2.subscriptions().end()) << "lost query " << id;
      ExpectQueryEq(it->second, want,
                    "seed " + std::to_string(seed) + ", query " +
                        std::to_string(id));
    }

    // Heaps: equal to the reference (same candidates, scores, expiries and
    // delivered flags), for every top-k query still live.
    EXPECT_EQ(ps2.topk().watermark(), ref.watermark());
    for (const auto& [id, q] : expected_live) {
      if (q.cls != SubscriptionClass::kTopK) continue;
      const std::vector<TopKEntry> got = ps2.topk().Snapshot(id);
      const std::vector<TopKEntry> want = ref.TopKSnapshot(id);
      ASSERT_EQ(got.size(), want.size()) << "seed " << seed << " q" << id;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].object_id, want[i].object_id)
            << "seed " << seed << " q" << id << " rank " << i;
        EXPECT_DOUBLE_EQ(got[i].score, want[i].score);
        EXPECT_EQ(got[i].expire_us, want[i].expire_us);
        EXPECT_EQ(got[i].delivered, want[i].delivered);
      }
    }

    // Behavioral probe: the replayed update is live in the index, not just
    // in the registry — an object at the moved query's new region with its
    // exact term set must match (cosine 1 for the scored classes, full
    // conjunction for boolean).
    auto session = ps2.OpenSession();
    ps2.delivery().Route(moved.id, session);
    SpatioTextualObject probe = SpatioTextualObject::FromTerms(
        9'000'000, moved.region.Center(), AllTerms(moved.expr));
    probe.timestamp_us = ps2.topk().watermark() + 1'000'000;
    ASSERT_TRUE(ps2.Post(probe).ok());
    bool hit = false;
    Delivery d;
    while (session->Poll(&d)) {
      if (d.query_id == moved.id && d.object_id == probe.id) hit = true;
    }
    EXPECT_TRUE(hit) << "seed " << seed
                     << ": moved query did not match at its new region";
    std::filesystem::remove_all(dir);
  }
}

// Update replay is ordered: a burst of region moves on one query after the
// last checkpoint must recover to the final region, not any intermediate
// one (WAL replay applies kUpdate records as upserts in log order).
TEST(SubscribeDurabilityTest, PostCheckpointUpdateBurstReplaysInOrder) {
  const std::string dir = ::testing::TempDir() + "/ps2_sub_update_burst";
  std::filesystem::remove_all(dir);
  QueryId id = 0;
  {
    PS2StreamOptions opts;
    opts.durability.enabled = true;
    opts.durability.dir = dir;
    opts.durability.checkpoint_every = 0;
    PS2Stream ps2(opts);
    ps2.Bootstrap(WorkloadSample{});
    auto sub = ps2.Subscribe(
        nullptr, SubscriptionSpec::TopK({"burst"}, 2, Rect(0, 0, 1, 1)));
    ASSERT_TRUE(sub.ok());
    id = sub->id();
    sub->Release();
    ASSERT_TRUE(ps2.Checkpoint());
    for (int i = 1; i <= 5; ++i) {
      const double base = 10.0 * i;
      ASSERT_TRUE(
          ps2.UpdateSubscription(id, Rect(base, base, base + 5, base + 5))
              .ok());
    }
    ps2.Kill();
  }
  PS2Stream ps2(PS2StreamOptions{});
  ASSERT_TRUE(ps2.Restore(dir));
  EXPECT_EQ(ps2.recovered()->wal.updates, 5u);
  const STSQuery& q = ps2.subscriptions().at(id);
  EXPECT_EQ(q.region.min_x, 50.0);
  EXPECT_EQ(q.region.max_x, 55.0);
  EXPECT_EQ(q.cls, SubscriptionClass::kTopK);
  EXPECT_EQ(q.k, 2u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ps2
