#include "dispatch/merger.h"

#include <gtest/gtest.h>

namespace ps2 {
namespace {

TEST(MergerTest, FirstDeliverySecondSuppressed) {
  Merger m;
  EXPECT_TRUE(m.Accept(MatchResult{1, 10}));
  EXPECT_FALSE(m.Accept(MatchResult{1, 10}));
  EXPECT_EQ(m.delivered(), 1u);
  EXPECT_EQ(m.duplicates(), 1u);
}

TEST(MergerTest, DistinctPairsAllDelivered) {
  Merger m;
  EXPECT_TRUE(m.Accept(MatchResult{1, 10}));
  EXPECT_TRUE(m.Accept(MatchResult{1, 11}));
  EXPECT_TRUE(m.Accept(MatchResult{2, 10}));
  EXPECT_EQ(m.delivered(), 3u);
  EXPECT_EQ(m.duplicates(), 0u);
}

TEST(MergerTest, WindowEviction) {
  Merger m(/*window_capacity=*/4);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(m.Accept(MatchResult{1, i}));
  }
  // Still remembered.
  EXPECT_FALSE(m.Accept(MatchResult{1, 3}));
  // Push the first entry out of the window.
  EXPECT_TRUE(m.Accept(MatchResult{1, 100}));
  EXPECT_TRUE(m.Accept(MatchResult{1, 101}));
  // Pair (1, 0) was evicted: re-accepted (at-least-once semantics with a
  // bounded window).
  EXPECT_TRUE(m.Accept(MatchResult{1, 0}));
}

TEST(MergerTest, MemoryBounded) {
  Merger m(/*window_capacity=*/100);
  for (uint64_t i = 0; i < 10000; ++i) {
    m.Accept(MatchResult{i, i});
  }
  // Window capacity bounds the dedup state.
  EXPECT_LE(m.MemoryBytes(), 100 * (sizeof(uint64_t) * 2 + 16) + 1024);
}

TEST(MergerTest, HighFanoutDuplicates) {
  Merger m;
  // Simulate an object matched by the same query on 8 workers.
  int delivered = 0;
  for (int w = 0; w < 8; ++w) {
    if (m.Accept(MatchResult{42, 7})) ++delivered;
  }
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(m.duplicates(), 7u);
}

}  // namespace
}  // namespace ps2
