#include <gtest/gtest.h>

#include <set>

#include "partition/plan.h"
#include "runtime/engine.h"
#include "test_util.h"

namespace ps2 {
namespace {

// The central property suite, parameterized over every partitioner: any
// plan must (a) be structurally valid, (b) satisfy *routing completeness* —
// the distributed pipeline (dispatcher -> GI2 workers -> merger) delivers
// exactly the matches the single-node reference matcher finds — and (c)
// keep the estimated load distribution sane.
class PartitionerPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  PartitionConfig Config(int workers = 4) {
    PartitionConfig cfg;
    cfg.num_workers = workers;
    cfg.grid_k = 4;
    return cfg;
  }
};

TEST_P(PartitionerPropertyTest, PlanIsStructurallyValid) {
  auto w = testutil::MakeWorkload(11);
  auto partitioner = MakePartitioner(GetParam());
  const PartitionConfig cfg = Config();
  const PartitionPlan plan = partitioner->Build(w.sample, w.vocab, cfg);
  EXPECT_EQ(plan.num_workers, cfg.num_workers);
  ASSERT_EQ(plan.cells.size(), plan.grid.NumCells());
  for (const auto& cell : plan.cells) {
    if (cell.IsText()) {
      for (const WorkerId worker : cell.text->workers()) {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, cfg.num_workers);
      }
    } else {
      EXPECT_GE(cell.worker, 0);
      EXPECT_LT(cell.worker, cfg.num_workers);
    }
  }
}

TEST_P(PartitionerPropertyTest, RoutingCompleteness) {
  auto w = testutil::MakeWorkload(23, /*num_objects=*/800,
                                  /*num_queries=*/250);
  auto partitioner = MakePartitioner(GetParam());
  const PartitionPlan plan = partitioner->Build(w.sample, w.vocab, Config());

  Cluster cluster(plan, &w.vocab);
  ReferenceMatcher ref;
  for (const auto& q : w.sample.inserts) {
    cluster.Process(StreamTuple::OfInsert(q));
    ref.Insert(q);
  }
  // Both sample objects (seen during partitioning) and held-out ones.
  std::vector<const SpatioTextualObject*> objects;
  for (const auto& o : w.sample.objects) objects.push_back(&o);
  for (const auto& o : w.extra_objects) objects.push_back(&o);
  size_t total_matches = 0;
  for (const auto* o : objects) {
    std::vector<MatchResult> got;
    cluster.Process(StreamTuple::OfObject(*o), &got);
    const auto want = testutil::Sorted(ref.Match(*o));
    ASSERT_EQ(testutil::Sorted(got), want)
        << GetParam() << " object " << o->id;
    total_matches += want.size();
  }
  // The workload is constructed to produce matches; an empty ground truth
  // would make this test vacuous.
  EXPECT_GT(total_matches, 50u);
}

TEST_P(PartitionerPropertyTest, DeletionsPropagate) {
  auto w = testutil::MakeWorkload(37, 400, 150);
  auto partitioner = MakePartitioner(GetParam());
  const PartitionPlan plan = partitioner->Build(w.sample, w.vocab, Config());
  Cluster cluster(plan, &w.vocab);
  for (const auto& q : w.sample.inserts) {
    cluster.Process(StreamTuple::OfInsert(q));
  }
  // Delete every other query, then no object may match a deleted one.
  std::set<QueryId> deleted;
  for (size_t i = 0; i < w.sample.inserts.size(); i += 2) {
    cluster.Process(StreamTuple::OfDelete(w.sample.inserts[i]));
    deleted.insert(w.sample.inserts[i].id);
  }
  for (const auto& o : w.extra_objects) {
    std::vector<MatchResult> got;
    cluster.Process(StreamTuple::OfObject(o), &got);
    for (const auto& m : got) {
      EXPECT_FALSE(deleted.count(m.query_id))
          << GetParam() << ": deleted query still matches";
    }
  }
}

TEST_P(PartitionerPropertyTest, EstimatedLoadPositiveAndFinite) {
  auto w = testutil::MakeWorkload(53);
  auto partitioner = MakePartitioner(GetParam());
  for (int workers : {2, 4, 8}) {
    const PartitionPlan plan =
        partitioner->Build(w.sample, w.vocab, Config(workers));
    const auto report =
        EstimatePlanLoad(plan, w.sample, w.vocab, CostModel{});
    EXPECT_GT(report.total_load, 0.0) << GetParam();
    // Every worker used by at least one partitioner output; allow empty
    // workers but the busiest must carry work.
    EXPECT_GT(*std::max_element(report.loads.begin(), report.loads.end()),
              0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, PartitionerPropertyTest,
                         ::testing::Values("frequency", "hypergraph",
                                           "metric", "grid", "kdtree",
                                           "rtree", "hybrid"));

// Balance-oriented checks for the partitioners whose construction directly
// optimizes it.
TEST(PartitionerBalanceTest, GridAndFrequencyBalanceLpt) {
  auto w = testutil::MakeWorkload(71, 2000, 400);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  // LPT balances the *estimated per-item weights*; the realized
  // Definition-1 load is nonlinear (c1*|O|*|Q| per worker), so the realized
  // balance is looser but must stay bounded (a random assignment on this
  // workload exceeds 10x).
  for (const char* name : {"grid", "frequency"}) {
    const PartitionPlan plan =
        MakePartitioner(name)->Build(w.sample, w.vocab, cfg);
    const auto report = EstimatePlanLoad(plan, w.sample, w.vocab, cfg.cost);
    EXPECT_LT(report.balance, 6.0) << name;
  }
}

// Text partitioners must fan objects out; space partitioners must not.
TEST(PartitionerShapeTest, SpaceRoutesObjectsToOneWorker) {
  auto w = testutil::MakeWorkload(83);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  for (const char* name : {"grid", "kdtree", "rtree"}) {
    const PartitionPlan plan =
        MakePartitioner(name)->Build(w.sample, w.vocab, cfg);
    std::vector<WorkerId> out;
    for (const auto& o : w.extra_objects) {
      plan.RouteObject(o, &out);
      EXPECT_EQ(out.size(), 1u) << name;
    }
    EXPECT_EQ(plan.NumTextCells(), 0u) << name;
  }
}

TEST(PartitionerShapeTest, TextPlansUseAllCellsWithOneRouter) {
  auto w = testutil::MakeWorkload(97);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  for (const char* name : {"frequency", "hypergraph", "metric"}) {
    const PartitionPlan plan =
        MakePartitioner(name)->Build(w.sample, w.vocab, cfg);
    EXPECT_EQ(plan.NumTextCells(), plan.grid.NumCells()) << name;
  }
}

}  // namespace
}  // namespace ps2
