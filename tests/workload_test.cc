#include <gtest/gtest.h>

#include <set>

#include "workload/query_gen.h"
#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

TEST(CorpusTest, ObjectsInsideExtent) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UsPreset(), &vocab);
  for (const auto& o : corpus.Generate(2000)) {
    EXPECT_TRUE(corpus.extent().Contains(o.loc));
    EXPECT_FALSE(o.terms.empty());
  }
}

TEST(CorpusTest, TermFrequenciesArePowerLaw) {
  Vocabulary vocab;
  CorpusConfig cfg = CorpusConfig::UsPreset();
  cfg.vocab_size = 5000;
  SyntheticCorpus corpus(cfg, &vocab);
  corpus.Generate(20000);
  const auto by_freq = vocab.TermsByFrequency();
  // Top 1% of terms should carry a large share of total occurrences.
  uint64_t top = 0;
  for (size_t i = 0; i < by_freq.size() / 100; ++i) {
    top += vocab.Count(by_freq[i]);
  }
  EXPECT_GT(static_cast<double>(top) / vocab.TotalCount(), 0.15);
  // And the head must dominate the median term.
  EXPECT_GT(vocab.Count(by_freq[0]),
            50 * std::max<uint64_t>(1, vocab.Count(by_freq[2500])));
}

TEST(CorpusTest, LocationsAreClustered) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UsPreset(), &vocab);
  const auto objects = corpus.Generate(5000);
  // Compare object dispersion against a uniform baseline: clustered data
  // has most points near their city center. Count pairs of objects closer
  // than 2% of the diagonal among a sample — clustered data has far more.
  const Rect e = corpus.extent();
  const double diag = std::sqrt(e.width() * e.width() +
                                e.height() * e.height());
  size_t close_pairs = 0;
  for (size_t i = 0; i < 500; ++i) {
    for (size_t j = i + 1; j < 500; ++j) {
      if (Distance(objects[i].loc, objects[j].loc) < 0.02 * diag) {
        ++close_pairs;
      }
    }
  }
  // Uniform would give ~pi*(0.02)^2 ~ 0.2% of ~125k pairs ~ 200.
  EXPECT_GT(close_pairs, 1000u);
}

TEST(CorpusTest, RegionalTopicsDiffer) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UsPreset(), &vocab);
  corpus.Generate(1000);
  Rng rng(3);
  // Terms sampled near two different cities should differ substantially.
  const Point p1 = corpus.SampleLocation(rng);
  Point p2 = corpus.SampleLocation(rng);
  for (int i = 0; i < 100 && corpus.NearestCity(p2) == corpus.NearestCity(p1);
       ++i) {
    p2 = corpus.SampleLocation(rng);
  }
  std::set<TermId> t1, t2;
  for (int i = 0; i < 400; ++i) {
    t1.insert(corpus.SampleTermAt(p1, rng));
    t2.insert(corpus.SampleTermAt(p2, rng));
  }
  std::vector<TermId> common;
  std::set_intersection(t1.begin(), t1.end(), t2.begin(), t2.end(),
                        std::back_inserter(common));
  // Some overlap (global head terms) but far from identical.
  EXPECT_LT(common.size(), std::min(t1.size(), t2.size()) * 0.8);
}

TEST(CorpusTest, RareTermRespectsCutoff) {
  Vocabulary vocab;
  CorpusConfig cfg = CorpusConfig::UsPreset();
  cfg.vocab_size = 1000;
  SyntheticCorpus corpus(cfg, &vocab);
  corpus.Generate(20000);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const TermId t = corpus.SampleRareTerm(0.01, rng);
    EXPECT_FALSE(vocab.IsTopFraction(t, 0.005))
        << "rare sample landed deep in the head";
  }
}

TEST(QueryGenTest, Q1SidesWithinConfiguredRange) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UkPreset(), &vocab);
  corpus.Generate(2000);
  QueryGenConfig qcfg;
  qcfg.kind = QueryKind::kQ1;
  QueryGenerator gen(qcfg, &corpus);
  const Rect e = corpus.extent();
  for (const auto& q : gen.Generate(500)) {
    EXPECT_GE(q.region.width() / e.width(), qcfg.q1_side_min_frac * 0.99);
    EXPECT_LE(q.region.width() / e.width(), qcfg.q1_side_max_frac * 1.01);
    EXPECT_FALSE(q.expr.empty());
    EXPECT_LE(q.expr.DistinctTerms().size(), 3u);
  }
}

TEST(QueryGenTest, Q2HasRareKeyword) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UsPreset(), &vocab);
  corpus.Generate(30000);
  QueryGenConfig qcfg;
  qcfg.kind = QueryKind::kQ2;
  QueryGenerator gen(qcfg, &corpus);
  for (const auto& q : gen.Generate(300)) {
    bool has_rare = false;
    for (const TermId t : q.expr.DistinctTerms()) {
      if (!vocab.IsTopFraction(t, 0.01)) has_rare = true;
    }
    EXPECT_TRUE(has_rare);
  }
}

TEST(QueryGenTest, Q3MixesStylesByRegion) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UsPreset(), &vocab);
  corpus.Generate(2000);
  QueryGenConfig qcfg;
  qcfg.kind = QueryKind::kQ3;
  QueryGenerator gen(qcfg, &corpus);
  int q1_regions = 0;
  for (int r = 0; r < gen.NumRegions(); ++r) {
    q1_regions += gen.RegionIsQ1(r) ? 1 : 0;
  }
  EXPECT_GT(q1_regions, gen.NumRegions() / 4);
  EXPECT_LT(q1_regions, gen.NumRegions() * 3 / 4);
  // Flipping changes styles.
  const bool before = gen.RegionIsQ1(0);
  gen.FlipRegionStyle(0);
  EXPECT_NE(before, gen.RegionIsQ1(0));
}

TEST(QueryGenTest, FlipRandomRegionsFlipsRequestedFraction) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UsPreset(), &vocab);
  QueryGenConfig qcfg;
  qcfg.kind = QueryKind::kQ3;
  QueryGenerator gen(qcfg, &corpus);
  std::vector<bool> before;
  for (int r = 0; r < gen.NumRegions(); ++r) {
    before.push_back(gen.RegionIsQ1(r));
  }
  gen.FlipRandomRegions(0.10);
  int changed = 0;
  for (int r = 0; r < gen.NumRegions(); ++r) {
    changed += before[r] != gen.RegionIsQ1(r) ? 1 : 0;
  }
  EXPECT_GE(changed, 1);
  EXPECT_LE(changed, gen.NumRegions() / 5);
}

TEST(StreamGenTest, RatioAndComposition) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UkPreset(), &vocab);
  QueryGenConfig qcfg;
  QueryGenerator gen(qcfg, &corpus);
  StreamConfig scfg;
  scfg.num_objects = 20000;
  scfg.mu = 2000;
  const GeneratedStream g = GenerateStream(corpus, gen, scfg);
  EXPECT_EQ(g.setup.size(), scfg.mu);
  size_t objects = 0, inserts = 0, deletes = 0;
  for (const auto& t : g.stream) {
    switch (t.kind) {
      case TupleKind::kObject:
        ++objects;
        break;
      case TupleKind::kQueryInsert:
        ++inserts;
        break;
      case TupleKind::kQueryDelete:
        ++deletes;
        break;
    }
  }
  EXPECT_EQ(objects, scfg.num_objects);
  const double ratio =
      static_cast<double>(objects) / static_cast<double>(inserts + deletes);
  EXPECT_NEAR(ratio, scfg.object_update_ratio, 1.0);
  // Insert and delete rates comparable in steady state.
  EXPECT_GT(deletes, inserts / 4);
  // Sample populated for partitioning.
  EXPECT_GT(g.sample.objects.size(), scfg.num_objects / 10);
  EXPECT_GE(g.sample.inserts.size(), scfg.mu);
}

TEST(StreamGenTest, EventTimesMonotone) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UkPreset(), &vocab);
  QueryGenConfig qcfg;
  QueryGenerator gen(qcfg, &corpus);
  StreamConfig scfg;
  scfg.num_objects = 2000;
  scfg.mu = 200;
  const GeneratedStream g = GenerateStream(corpus, gen, scfg);
  for (size_t i = 1; i < g.stream.size(); ++i) {
    EXPECT_GE(g.stream[i].event_time_us, g.stream[i - 1].event_time_us);
  }
}

TEST(StreamGenTest, MultiPhaseAppendsContinuously) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UkPreset(), &vocab);
  QueryGenConfig qcfg;
  qcfg.kind = QueryKind::kQ3;
  QueryGenerator gen(qcfg, &corpus);
  StreamConfig scfg;
  scfg.mu = 500;
  std::vector<StreamTuple> setup;
  StreamState state = InitStreamState(gen, scfg, &setup, nullptr);
  std::vector<StreamTuple> stream;
  AppendStreamPhase(corpus, gen, scfg, state, 3000, &stream);
  const size_t after_phase1 = stream.size();
  gen.FlipRandomRegions(0.10);  // the Figure 16 drift
  AppendStreamPhase(corpus, gen, scfg, state, 3000, &stream);
  EXPECT_GT(stream.size(), after_phase1);
  // Unique query ids across phases (no id reuse).
  std::set<QueryId> ids;
  for (const auto& t : stream) {
    if (t.kind == TupleKind::kQueryInsert) {
      EXPECT_TRUE(ids.insert(t.query.id).second);
    }
  }
}

}  // namespace
}  // namespace ps2
