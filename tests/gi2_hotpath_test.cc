// Hot-path coverage for the arena/slot GI2 layout: batched-vs-single-vs-
// reference equivalence under churn and migration, epoch-dedup wraparound,
// tombstone slot recycling, and the steady-state zero-allocation guarantee
// of the batched match path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "index/gi2.h"
#include "index/reference_matcher.h"

// ---------------------------------------------------------------------------
// Allocation-counting hook: replaces the global allocator for this test
// binary with a malloc passthrough that counts while armed. Disabled under
// sanitizers (they interpose the allocator themselves).
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PS2_ALLOC_HOOK_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PS2_ALLOC_HOOK_DISABLED 1
#endif
#endif

static std::atomic<bool> g_count_allocs{false};
static std::atomic<uint64_t> g_alloc_count{0};

#ifndef PS2_ALLOC_HOOK_DISABLED
void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // PS2_ALLOC_HOOK_DISABLED

namespace ps2 {
namespace {

std::vector<MatchResult> Sorted(std::vector<MatchResult> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// Batched vs single vs reference equivalence under insert/delete/migrate
// ---------------------------------------------------------------------------

class Gi2BatchEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Gi2BatchEquivalenceTest, BatchSingleReferenceAgreeUnderChurn) {
  const GridSpec grid(Rect(0, 0, 100, 100), 4);
  Vocabulary vocab;
  std::vector<TermId> terms;
  for (int i = 0; i < 40; ++i) {
    const TermId t = vocab.Intern("w" + std::to_string(i));
    vocab.AddCount(t, 1 + i * 3);
    terms.push_back(t);
  }
  // batched (A) and single-object (B) indexes see the identical operation
  // stream; the brute-force matcher is the ground truth for both.
  Gi2Index batched(grid, &vocab);
  Gi2Index single(grid, &vocab);
  ReferenceMatcher ref;
  Rng rng(GetParam());
  QueryId next_id = 1;
  ObjectId next_obj = 1;
  std::vector<QueryId> live;
  std::vector<SpatioTextualObject> objs;
  std::vector<const SpatioTextualObject*> ptrs;
  std::vector<MatchResult> got_batched, got_single, want;
  for (int step = 0; step < 1200; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.22) {
      std::vector<TermId> qterms;
      const int k = 1 + static_cast<int>(rng.NextBelow(3));
      for (int i = 0; i < k; ++i) {
        qterms.push_back(terms[rng.NextBelow(terms.size())]);
      }
      const double x = rng.NextUniform(0, 90);
      const double y = rng.NextUniform(0, 90);
      STSQuery q;
      q.id = next_id++;
      q.expr = rng.NextBernoulli(0.4) ? BoolExpr::Or(qterms)
                                      : BoolExpr::And(qterms);
      q.region = Rect(x, y, x + rng.NextUniform(1, 25),
                      y + rng.NextUniform(1, 25));
      batched.Insert(q);
      single.Insert(q);
      ref.Insert(q);
      live.push_back(q.id);
    } else if (dice < 0.32 && !live.empty()) {
      const size_t i = rng.NextBelow(live.size());
      batched.Delete(live[i]);
      single.Delete(live[i]);
      ref.Delete(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (dice < 0.40) {
      // Migration round trip: extract a random cell and re-install the
      // moved queries, exercising ExtractCell / InsertIntoCells on the
      // slot layout mid-churn (a real migration does exactly this across
      // two workers).
      const CellId cell = static_cast<CellId>(rng.NextBelow(grid.NumCells()));
      const std::vector<CellId> cells{cell};
      for (const auto& q : batched.ExtractCell(cell)) {
        batched.InsertIntoCells(q, cells);
      }
      for (const auto& q : single.ExtractCell(cell)) {
        single.InsertIntoCells(q, cells);
      }
    } else {
      const size_t n = 1 + rng.NextBelow(48);
      objs.clear();
      for (size_t i = 0; i < n; ++i) {
        std::vector<TermId> oterms;
        const int k = 1 + static_cast<int>(rng.NextBelow(6));
        for (int j = 0; j < k; ++j) {
          oterms.push_back(terms[rng.NextBelow(terms.size())]);
        }
        objs.push_back(SpatioTextualObject::FromTerms(
            next_obj++, Point{rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
            std::move(oterms)));
      }
      ptrs.clear();
      for (const auto& o : objs) ptrs.push_back(&o);
      got_batched.clear();
      batched.MatchBatch(ptrs.data(), ptrs.size(), &got_batched);
      got_single.clear();
      want.clear();
      for (const auto& o : objs) {
        single.Match(o, &got_single);
        const auto w = ref.Match(o);
        want.insert(want.end(), w.begin(), w.end());
      }
      ASSERT_EQ(Sorted(got_batched), Sorted(want)) << "step " << step;
      ASSERT_EQ(Sorted(got_single), Sorted(want)) << "step " << step;
    }
  }
  EXPECT_EQ(batched.NumActiveQueries(), ref.size());
  EXPECT_EQ(single.NumActiveQueries(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gi2BatchEquivalenceTest,
                         ::testing::Values(11, 12, 13));

// ---------------------------------------------------------------------------
// Epoch dedup
// ---------------------------------------------------------------------------

TEST(Gi2EpochTest, WraparoundKeepsDedupExact) {
  const GridSpec grid(Rect(0, 0, 64, 64), 4);
  Vocabulary vocab;
  const TermId a = vocab.Intern("a");
  const TermId b = vocab.Intern("b");
  vocab.AddCount(a, 5);
  vocab.AddCount(b, 1);
  Gi2Index idx(grid, &vocab);
  // OR query indexed under both terms: an object carrying both exercises
  // the dedup mark on every match.
  STSQuery q;
  q.id = 1;
  q.expr = BoolExpr::Or({a, b});
  q.region = Rect(0, 0, 10, 10);
  idx.Insert(q);
  const SpatioTextualObject o =
      SpatioTextualObject::FromTerms(7, Point{5, 5}, {a, b});
  std::vector<MatchResult> out;
  idx.SetMatchEpochForTest(UINT32_MAX - 3);
  for (int i = 0; i < 10; ++i) {
    out.clear();
    idx.Match(o, &out);
    ASSERT_EQ(out.size(), 1u) << "iteration " << i << " (epoch "
                              << idx.MatchEpochForTest() << ")";
    EXPECT_EQ(out[0].query_id, 1u);
  }
  // The counter wrapped during the loop and must have skipped epoch 0.
  EXPECT_LT(idx.MatchEpochForTest(), UINT32_MAX - 3);
  EXPECT_NE(idx.MatchEpochForTest(), 0u);
}

TEST(Gi2EpochTest, ReinsertWhileTombstoneDrainsMatchesExactlyOnce) {
  // Re-inserting a lazily deleted id must not require scrubbing the old
  // postings first: they reference the old (tombstoned) slot and keep
  // draining, while the fresh insert binds the id to a new slot.
  const GridSpec grid(Rect(0, 0, 64, 64), 4);
  Vocabulary vocab;
  const TermId x = vocab.Intern("x");
  Gi2Index idx(grid, &vocab);
  STSQuery q;
  q.id = 1;
  q.expr = BoolExpr::And({x});
  q.region = Rect(1, 1, 2, 2);  // single cell
  idx.Insert(q);
  idx.Delete(1);
  EXPECT_EQ(idx.NumTombstones(), 1u);
  idx.Insert(q);
  EXPECT_EQ(idx.NumActiveQueries(), 1u);
  std::vector<MatchResult> out;
  idx.Match(SpatioTextualObject::FromTerms(9, Point{1.5, 1.5}, {x}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].query_id, 1u);
  // The traversal purged the stale posting of the old slot.
  EXPECT_EQ(idx.NumTombstones(), 0u);
}

// ---------------------------------------------------------------------------
// Steady-state allocation freedom of the batched path
// ---------------------------------------------------------------------------

TEST(Gi2AllocTest, SteadyStateBatchedMatchIsAllocationFree) {
#ifdef PS2_ALLOC_HOOK_DISABLED
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#else
  const GridSpec grid(Rect(0, 0, 100, 100), 5);
  Vocabulary vocab;
  std::vector<TermId> terms;
  for (int i = 0; i < 60; ++i) {
    const TermId t = vocab.Intern("t" + std::to_string(i));
    vocab.AddCount(t, 1 + i);
    terms.push_back(t);
  }
  Gi2Index idx(grid, &vocab);
  Rng rng(77);
  for (QueryId id = 1; id <= 3000; ++id) {
    std::vector<TermId> qterms;
    const int k = 1 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < k; ++i) {
      qterms.push_back(terms[rng.NextBelow(terms.size())]);
    }
    const double x = rng.NextUniform(0, 90);
    const double y = rng.NextUniform(0, 90);
    STSQuery q;
    q.id = id;
    q.expr = rng.NextBernoulli(0.3) ? BoolExpr::Or(qterms)
                                    : BoolExpr::And(qterms);
    q.region =
        Rect(x, y, x + rng.NextUniform(1, 15), y + rng.NextUniform(1, 15));
    idx.Insert(q);
  }
  std::vector<SpatioTextualObject> objs;
  for (ObjectId id = 1; id <= 256; ++id) {
    std::vector<TermId> oterms;
    const int k = 1 + static_cast<int>(rng.NextBelow(5));
    for (int i = 0; i < k; ++i) {
      oterms.push_back(terms[rng.NextBelow(terms.size())]);
    }
    objs.push_back(SpatioTextualObject::FromTerms(
        id, Point{rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
        std::move(oterms)));
  }
  std::vector<const SpatioTextualObject*> ptrs;
  for (const auto& o : objs) ptrs.push_back(&o);
  std::vector<MatchResult> out;
  // Two identical warm-up passes size every reused buffer (grouping keys,
  // result capacity); the measured pass is the steady state.
  for (int warm = 0; warm < 2; ++warm) {
    out.clear();
    idx.MatchBatch(ptrs.data(), ptrs.size(), &out);
  }
  const size_t expected = out.size();
  out.clear();
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  idx.MatchBatch(ptrs.data(), ptrs.size(), &out);
  g_count_allocs.store(false);
  EXPECT_EQ(out.size(), expected);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "steady-state batched matching must not touch the heap";
#endif  // PS2_ALLOC_HOOK_DISABLED
}

}  // namespace
}  // namespace ps2
