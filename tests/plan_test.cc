#include "partition/plan.h"

#include <gtest/gtest.h>

#include "partition/text_util.h"
#include "test_util.h"

namespace ps2 {
namespace {

TEST(TermRouterTest, ExplicitMapping) {
  TermRouter router({{1, 0}, {2, 1}, {3, 2}}, {0, 1, 2});
  EXPECT_EQ(router.Route(1), 0);
  EXPECT_EQ(router.Route(2), 1);
  EXPECT_EQ(router.Route(3), 2);
}

TEST(TermRouterTest, FallbackIsDeterministicAndInWorkerSet) {
  TermRouter router({{1, 0}}, {0, 1, 2});
  const WorkerId w = router.Route(999);
  EXPECT_EQ(w, router.Route(999));
  EXPECT_GE(w, 0);
  EXPECT_LE(w, 2);
}

TEST(TermRouterTest, EmptyWorkerListDerivedFromMap) {
  TermRouter router({{5, 3}}, {});
  EXPECT_EQ(router.Route(5), 3);
  EXPECT_EQ(router.Route(6), 3);  // only worker available
}

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : grid_(Rect(0, 0, 100, 100), 3) {}

  // Plan: left half space-routed to worker 0/1 by row parity; right half
  // text-routed over workers {2, 3}.
  PartitionPlan MakeMixedPlan() {
    PartitionPlan plan;
    plan.grid = grid_;
    plan.num_workers = 4;
    plan.cells.resize(grid_.NumCells());
    std::unordered_map<TermId, WorkerId> map;
    map[ta_] = 2;
    map[tb_] = 3;
    auto router = std::make_shared<const TermRouter>(
        std::move(map), std::vector<WorkerId>{2, 3});
    for (uint32_t cy = 0; cy < grid_.side(); ++cy) {
      for (uint32_t cx = 0; cx < grid_.side(); ++cx) {
        CellRoute& r = plan.cells[grid_.ToId(cx, cy)];
        if (cx < grid_.side() / 2) {
          r.worker = cy % 2;
        } else {
          r.text = router;
        }
      }
    }
    return plan;
  }

  GridSpec grid_;
  Vocabulary vocab_;
  TermId ta_ = vocab_.Intern("a");
  TermId tb_ = vocab_.Intern("b");
};

TEST_F(PlanTest, RouteObjectSpaceCell) {
  const PartitionPlan plan = MakeMixedPlan();
  const auto o = SpatioTextualObject::FromTerms(1, Point{10, 10}, {ta_, tb_});
  std::vector<WorkerId> out;
  plan.RouteObject(o, &out);
  ASSERT_EQ(out.size(), 1u);  // space cells route regardless of text
  EXPECT_LE(out[0], 1);
}

TEST_F(PlanTest, RouteObjectTextCellFansOutPerTerm) {
  const PartitionPlan plan = MakeMixedPlan();
  const auto o = SpatioTextualObject::FromTerms(1, Point{90, 10}, {ta_, tb_});
  std::vector<WorkerId> out;
  plan.RouteObject(o, &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{2, 3}));
  // Single-term object goes to a single worker.
  const auto o2 = SpatioTextualObject::FromTerms(2, Point{90, 10}, {ta_});
  plan.RouteObject(o2, &out);
  EXPECT_EQ(out, (std::vector<WorkerId>{2}));
}

TEST_F(PlanTest, RouteQuerySpansBothHalves) {
  const PartitionPlan plan = MakeMixedPlan();
  STSQuery q;
  q.id = 1;
  q.expr = BoolExpr::And({ta_});
  q.region = Rect(40, 40, 60, 60);  // straddles the halves
  std::vector<PartitionPlan::QueryRoute> routes;
  plan.RouteQuery(q, vocab_, &routes);
  // Reaches at least one space worker and worker 2 (term a).
  bool has_space = false, has_text = false;
  for (const auto& r : routes) {
    EXPECT_FALSE(r.cells.empty());
    if (r.worker <= 1) has_space = true;
    if (r.worker == 2) has_text = true;
    EXPECT_NE(r.worker, 3);  // term b is not in the query
  }
  EXPECT_TRUE(has_space);
  EXPECT_TRUE(has_text);
}

TEST_F(PlanTest, RouteQueryCellsOverlapRegion) {
  const PartitionPlan plan = MakeMixedPlan();
  STSQuery q;
  q.id = 1;
  q.expr = BoolExpr::And({ta_});
  q.region = Rect(10, 10, 30, 30);
  std::vector<PartitionPlan::QueryRoute> routes;
  plan.RouteQuery(q, vocab_, &routes);
  for (const auto& r : routes) {
    for (const CellId c : r.cells) {
      EXPECT_TRUE(plan.grid.CellRect(c).Intersects(q.region));
    }
  }
}

TEST_F(PlanTest, MemoryCountsSharedRouterOnce) {
  const PartitionPlan plan = MakeMixedPlan();
  PartitionPlan single;
  single.grid = grid_;
  single.num_workers = 4;
  single.cells.resize(grid_.NumCells());
  single.cells[0] = plan.cells[grid_.NumCells() - 1];  // one text cell
  // The mixed plan shares one router across many cells: its footprint must
  // be far below #cells * router size.
  EXPECT_LT(plan.MemoryBytes(),
            single.MemoryBytes() + grid_.NumCells() * sizeof(CellRoute) +
                1024);
}

TEST_F(PlanTest, NumTextCells) {
  const PartitionPlan plan = MakeMixedPlan();
  EXPECT_EQ(plan.NumTextCells(), grid_.NumCells() / 2);
}

TEST(PlanLoadTest, EstimateCountsDuplication) {
  // Whole-space text plan over 2 workers: an object with terms on both
  // workers is tallied twice.
  Vocabulary vocab;
  const TermId a = vocab.Intern("a");
  const TermId b = vocab.Intern("b");
  const GridSpec grid(Rect(0, 0, 10, 10), 2);
  PartitionPlan plan =
      MakeWholeSpaceTextPlan(grid, 2, {{a, 0}, {b, 1}});

  WorkloadSample sample;
  sample.objects.push_back(
      SpatioTextualObject::FromTerms(1, Point{5, 5}, {a, b}));
  sample.objects.push_back(
      SpatioTextualObject::FromTerms(2, Point{5, 5}, {a}));
  STSQuery q;
  q.id = 1;
  q.expr = BoolExpr::And({a});
  q.region = Rect(0, 0, 10, 10);
  sample.inserts.push_back(q);

  const auto report = EstimatePlanLoad(plan, sample, vocab, CostModel{});
  EXPECT_EQ(report.tallies[0].objects, 2u);  // both objects carry term a
  EXPECT_EQ(report.tallies[1].objects, 1u);  // only object 1 carries b
  EXPECT_EQ(report.tallies[0].inserts, 1u);
  EXPECT_EQ(report.tallies[1].inserts, 0u);
  EXPECT_GT(report.total_load, 0.0);
}

TEST(PartitionerRegistryTest, KnownNames) {
  for (const char* name : {"frequency", "hypergraph", "metric", "grid",
                           "kdtree", "rtree", "hybrid"}) {
    auto p = MakePartitioner(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->Name(), name);
  }
  EXPECT_EQ(MakePartitioner("nope"), nullptr);
}

}  // namespace
}  // namespace ps2
