#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "index/reference_matcher.h"
#include "persist/durability.h"
#include "runtime/ps2stream.h"
#include "test_util.h"

namespace ps2 {
namespace {

// One interleaved action of the crash stream.
struct Action {
  enum Kind { kSubscribe, kUnsubscribe, kPublish } kind;
  STSQuery query;              // kSubscribe
  QueryId query_id = 0;        // kUnsubscribe
  SpatioTextualObject object;  // kPublish
};

// Interleaves subscriptions, occasional unsubscriptions and publishes into
// one deterministic stream.
std::vector<Action> MakeActions(const testutil::TestWorkload& w,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Action> actions;
  std::vector<QueryId> subscribed;
  size_t qi = 0, oi = 0;
  while (qi < w.sample.inserts.size() || oi < w.extra_objects.size()) {
    const double dice = rng.NextDouble();
    if (dice < 0.45 && qi < w.sample.inserts.size()) {
      Action a;
      a.kind = Action::kSubscribe;
      a.query = w.sample.inserts[qi++];
      subscribed.push_back(a.query.id);
      actions.push_back(std::move(a));
    } else if (dice < 0.55 && !subscribed.empty()) {
      Action a;
      a.kind = Action::kUnsubscribe;
      const size_t pick = rng.NextBelow(subscribed.size());
      a.query_id = subscribed[pick];
      subscribed.erase(subscribed.begin() + pick);
      actions.push_back(std::move(a));
    } else if (oi < w.extra_objects.size()) {
      Action a;
      a.kind = Action::kPublish;
      a.object = w.extra_objects[oi++];
      actions.push_back(std::move(a));
    }
  }
  return actions;
}

// Subscribes without a session or RAII handle: the subscription stays live
// until cancelled, which is the lifecycle these durability tests model.
void SubscribeRaw(PS2Stream& ps2, const STSQuery& q) {
  auto sub = ps2.Subscribe(nullptr, q);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  sub->Release();
}

// Routes every live subscription of `ps2` to `session` (the documented
// post-Restore reattach flow — delivery routes are not persisted).
void RouteAll(PS2Stream& ps2,
              const std::shared_ptr<SubscriberSession>& session) {
  for (const auto& [id, q] : ps2.subscriptions()) {
    ps2.delivery().Route(id, session);
  }
}

// Posts `o` synchronously and returns the matches delivered to `session`
// (which must be drained, i.e. empty, on entry).
std::vector<MatchResult> PostAndDrain(
    PS2Stream& ps2, const std::shared_ptr<SubscriberSession>& session,
    const SpatioTextualObject& o) {
  EXPECT_TRUE(ps2.Post(o).ok());
  std::vector<MatchResult> out;
  Delivery d;
  while (session->Poll(&d)) {
    out.push_back(MatchResult{d.query_id, d.object_id});
  }
  return out;
}

// Highest-numbered WAL segment in the durable directory (where a torn tail
// would land).
std::string NewestWalSegment(const std::string& dir) {
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name > newest) newest = name;
  }
  return dir + "/" + newest;
}

// Compares cell routes of two plans (worker assignment, space/text kind and
// the text-split term map), i.e. "no installed migration was lost". These
// tests run in the raw-id world (queries carry externally assigned
// TermIds), where recovery preserves term ids verbatim.
void ExpectSamePlanRoutes(const PartitionPlan& expected,
                          const PartitionPlan& actual) {
  ASSERT_EQ(actual.cells.size(), expected.cells.size());
  for (size_t c = 0; c < expected.cells.size(); ++c) {
    ASSERT_EQ(actual.cells[c].IsText(), expected.cells[c].IsText()) << c;
    if (!expected.cells[c].IsText()) {
      EXPECT_EQ(actual.cells[c].worker, expected.cells[c].worker) << c;
      continue;
    }
    const auto& exp_map = expected.cells[c].text->term_map();
    const auto& act_map = actual.cells[c].text->term_map();
    ASSERT_EQ(act_map.size(), exp_map.size()) << c;
    for (const auto& [term, worker] : exp_map) {
      auto it = act_map.find(term);
      ASSERT_NE(it, act_map.end()) << c;
      EXPECT_EQ(it->second, worker) << c;
    }
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs gtest cases in parallel, and siblings
    // sharing one durable directory would stomp each other's files.
    dir_ = ::testing::TempDir() + "/ps2_crash_recovery_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// The acceptance test of the durability subsystem: run the *threaded*
// engine, hard-stop it at a randomized point (no clean Stop()), Recover(),
// and require that a replayed object stream delivers exactly what the
// synchronous reference engine delivers over the durably-acknowledged
// subscription set. Some kill points additionally tear the WAL tail; the
// torn record must be truncated, never crash recovery.
TEST_F(CrashRecoveryTest, KillThreadedEngineAtRandomPointsRecoversExactly) {
  auto w = testutil::MakeWorkload(1301, 900, 260);
  for (const uint64_t seed : {11u, 23u, 37u, 51u}) {
    std::filesystem::remove_all(dir_);
    const std::vector<Action> actions = MakeActions(w, seed);
    Rng rng(seed * 1000 + 7);
    const size_t kill_point = 1 + rng.NextBelow(actions.size() - 1);

    PS2StreamOptions opts;
    opts.partition.num_workers = 4;
    opts.partition.grid_k = 4;
    opts.engine.num_dispatchers = 2;
    opts.durability.enabled = true;
    opts.durability.dir = dir_;
    opts.durability.wal_sync = Wal::SyncMode::kFlush;
    // Odd seeds checkpoint mid-run, so the kill also exercises
    // checkpoint+tail recovery, not just pure WAL replay.
    opts.durability.checkpoint_every = seed % 2 == 1 ? 64 : 0;

    std::unordered_map<QueryId, STSQuery> expected_live;
    {
      PS2Stream ps2(opts);
      ps2.Bootstrap(w.sample);
      ASSERT_TRUE(ps2.durable());
      ps2.Start();
      ASSERT_TRUE(ps2.started());
      for (size_t i = 0; i < kill_point; ++i) {
        const Action& a = actions[i];
        switch (a.kind) {
          case Action::kSubscribe:
            SubscribeRaw(ps2, a.query);
            expected_live[a.query.id] = a.query;
            break;
          case Action::kUnsubscribe:
            EXPECT_TRUE(ps2.Cancel(a.query_id).ok());
            expected_live.erase(a.query_id);
            break;
          case Action::kPublish:
            EXPECT_TRUE(ps2.Post(a.object).ok());
            break;
        }
      }
      ps2.Kill();  // no Stop(), no final checkpoint, queues discarded
    }
    if (seed % 2 == 0) {
      // Simulate a torn write at the crash point.
      std::FILE* f = std::fopen(NewestWalSegment(dir_).c_str(), "ab");
      ASSERT_NE(f, nullptr);
      const uint32_t bogus_len = 4096;
      std::fwrite(&bogus_len, sizeof(bogus_len), 1, f);
      std::fwrite("torn", 4, 1, f);
      std::fclose(f);
    }

    PS2Stream recovered;
    ASSERT_TRUE(recovered.Restore(dir_)) << "seed " << seed;
    ASSERT_NE(recovered.recovered(), nullptr);
    if (seed % 2 == 0) {
      EXPECT_TRUE(recovered.recovered()->wal.truncated);
    }

    // Every durably-acknowledged subscription — no more, no fewer.
    ASSERT_EQ(recovered.num_subscriptions(), expected_live.size())
        << "seed " << seed << " kill_point " << kill_point;
    for (const auto& [id, q] : expected_live) {
      EXPECT_EQ(recovered.subscriptions().count(id), 1u) << id;
    }

    // Replayed object stream: the recovered engine must deliver exactly the
    // synchronous reference engine's match set.
    auto session = recovered.OpenSession({.queue_capacity = 1 << 16});
    RouteAll(recovered, session);
    ReferenceMatcher ref;
    for (const auto& [id, q] : expected_live) ref.Insert(q);
    for (const auto& o : w.extra_objects) {
      EXPECT_EQ(testutil::Sorted(PostAndDrain(recovered, session, o)),
                testutil::Sorted(ref.Match(o)))
          << "seed " << seed << " object " << o.id;
    }
  }
}

// Recovery must land on the post-migration plan: sync-mode auto-adjustment
// journals every installed cell-route rewrite, and Restore() reproduces the
// exact routes (including text splits) without a checkpoint having run
// since.
TEST_F(CrashRecoveryTest, SyncModeMigrationsSurviveCrash) {
  auto w = testutil::MakeWorkload(1303, 1200, 300);
  PS2StreamOptions opts;
  opts.partitioner = "";  // uniform fallback plan: adjustment must fix it
  opts.partition.num_workers = 3;
  opts.partition.grid_k = 3;
  opts.auto_adjust = true;
  opts.adjust_check_interval = 400;
  opts.adjust.sigma = 1.1;
  opts.durability.enabled = true;
  opts.durability.dir = dir_;

  PS2Stream ps2(opts);
  ps2.Bootstrap(w.sample);
  ASSERT_TRUE(ps2.durable());
  for (const auto& q : w.sample.inserts) SubscribeRaw(ps2, q);
  for (const auto& o : w.sample.objects) ASSERT_TRUE(ps2.Post(o).ok());
  for (const auto& o : w.extra_objects) ASSERT_TRUE(ps2.Post(o).ok());
  ASSERT_GE(ps2.adjustments().size(), 1u)
      << "workload did not trigger an adjustment; tune the test";
  const PartitionPlan plan_at_crash = ps2.cluster().router().plan();
  const size_t live_at_crash = ps2.num_subscriptions();
  // Cell-route records are fire-and-forget (never block on the disk); the
  // exact-plan comparison below needs them on disk, so flush before the
  // crash. Without the flush, recovery would land on some valid earlier
  // plan — correct, but not comparable.
  ps2.durability()->wal().Flush();
  ps2.Kill();

  PS2Stream recovered;
  ASSERT_TRUE(recovered.Restore(dir_));
  EXPECT_GT(recovered.recovered()->wal.cell_routes, 0u);
  EXPECT_EQ(recovered.num_subscriptions(), live_at_crash);
  ExpectSamePlanRoutes(plan_at_crash, recovered.cluster().router().plan());
}

// Live (threaded controller) migrations are journaled under the routing
// writer lock; after a kill, the recovered plan carries them and the match
// set over a replayed stream is still exact.
TEST_F(CrashRecoveryTest, LiveMigrationsSurviveCrash) {
  auto w = testutil::MakeWorkload(1305, 1600, 400);
  PS2StreamOptions opts;
  opts.partitioner = "";  // uniform fallback plan
  opts.partition.num_workers = 4;
  opts.partition.grid_k = 4;
  opts.auto_adjust = true;
  opts.adjust_check_interval = 200;
  opts.adjust.sigma = 1.15;
  opts.engine.num_dispatchers = 2;
  opts.engine.controller.interval_ms = 1;
  opts.engine.input_rate_tps = 60000.0;
  opts.durability.enabled = true;
  opts.durability.dir = dir_;

  PS2Stream ps2(opts);
  ps2.Bootstrap(w.sample);
  ps2.Start();
  for (const auto& q : w.sample.inserts) SubscribeRaw(ps2, q);
  // Keep publishing (re-used object streams are fine — load is what
  // matters) until the controller has installed at least one migration, so
  // the crash provably covers journaled live migrations.
  bool migrated = false;
  for (int round = 0; round < 100 && !migrated; ++round) {
    for (const auto& o : w.sample.objects) ASSERT_TRUE(ps2.Post(o).ok());
    for (const auto& o : w.extra_objects) ASSERT_TRUE(ps2.Post(o).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    migrated = ps2.engine()->migrations_installed() > 0;
  }
  ASSERT_TRUE(migrated) << "controller never migrated; tune the test";
  // The crash: hard-stop the engine (joins the controller — no further
  // migration can install), then flush the fire-and-forget cell-route
  // records so the exact-plan comparison below is deterministic. Without
  // the flush, recovery would land on some valid earlier plan — correct,
  // but not comparable.
  ps2.engine()->Abort();
  ps2.durability()->wal().Flush();
  ps2.Kill();
  const PartitionPlan plan_at_crash = ps2.cluster().router().plan();

  PS2Stream recovered;
  ASSERT_TRUE(recovered.Restore(dir_));
  EXPECT_EQ(recovered.num_subscriptions(), w.sample.inserts.size());
  EXPECT_GT(recovered.recovered()->wal.cell_routes, 0u);
  ExpectSamePlanRoutes(plan_at_crash, recovered.cluster().router().plan());

  auto session = recovered.OpenSession({.queue_capacity = 1 << 16});
  RouteAll(recovered, session);
  ReferenceMatcher ref;
  for (const auto& q : w.sample.inserts) ref.Insert(q);
  for (const auto& o : w.extra_objects) {
    EXPECT_EQ(testutil::Sorted(PostAndDrain(recovered, session, o)),
              testutil::Sorted(ref.Match(o)));
  }
}

// Restore -> keep serving -> crash again -> Restore: the WAL resumes at the
// truncated tail and the second recovery sees both generations of
// mutations.
TEST_F(CrashRecoveryTest, RestoredServiceKeepsLoggingAcrossSecondCrash) {
  auto w = testutil::MakeWorkload(1307, 500, 160);
  PS2StreamOptions opts;
  opts.partition.num_workers = 2;
  opts.partition.grid_k = 3;
  opts.durability.enabled = true;
  opts.durability.dir = dir_;

  const size_t half = w.sample.inserts.size() / 2;
  {
    PS2Stream ps2(opts);
    ps2.Bootstrap(w.sample);
    for (size_t i = 0; i < half; ++i) {
      SubscribeRaw(ps2, w.sample.inserts[i]);
    }
    ps2.Kill();
  }
  {
    PS2Stream ps2(opts);
    ASSERT_TRUE(ps2.Restore());  // dir from options
    ASSERT_TRUE(ps2.durable());
    EXPECT_EQ(ps2.num_subscriptions(), half);
    for (size_t i = half; i < w.sample.inserts.size(); ++i) {
      SubscribeRaw(ps2, w.sample.inserts[i]);
    }
    ps2.Kill();
  }
  PS2Stream recovered;
  ASSERT_TRUE(recovered.Restore(dir_));
  EXPECT_EQ(recovered.num_subscriptions(), w.sample.inserts.size());

  auto session = recovered.OpenSession({.queue_capacity = 1 << 16});
  RouteAll(recovered, session);
  ReferenceMatcher ref;
  for (const auto& q : w.sample.inserts) ref.Insert(q);
  for (const auto& o : w.extra_objects) {
    EXPECT_EQ(testutil::Sorted(PostAndDrain(recovered, session, o)),
              testutil::Sorted(ref.Match(o)));
  }
}

// A crash between WAL rotation and checkpoint commit leaves an orphan
// later segment. Restore() must resume logging on that *last* segment of
// the chain — resuming on the committed checkpoint's segment would give
// post-restore records higher LSNs in an earlier file, and the next
// recovery's LSN filter would silently drop everything that lived only in
// the orphan.
TEST_F(CrashRecoveryTest, OrphanSegmentSurvivesResumeAndSecondCrash) {
  auto w = testutil::MakeWorkload(1311, 500, 150);
  PS2StreamOptions opts;
  opts.partition.num_workers = 2;
  opts.partition.grid_k = 3;
  opts.durability.enabled = true;
  opts.durability.dir = dir_;

  const size_t third = w.sample.inserts.size() / 3;
  {
    PS2Stream a(opts);
    a.Bootstrap(w.sample);
    for (size_t i = 0; i < third; ++i) {
      SubscribeRaw(a, w.sample.inserts[i]);
    }
    a.Kill();
  }
  {
    // Forge the mid-checkpoint crash: rotate the WAL (BeginCheckpoint),
    // append one subscription into the orphan segment, never commit.
    RecoveredState probe;
    ASSERT_TRUE(RecoverState(dir_, &probe));
    DurabilityManager mgr(opts.durability);
    ASSERT_TRUE(mgr.Resume(1, probe.last_lsn + 1));
    ASSERT_EQ(mgr.BeginCheckpoint(), 2u);
    Vocabulary raw_ids;  // raw-id world: the facade vocab holds no strings
    mgr.wal().AppendSubscribe(w.sample.inserts[third], raw_ids);
  }
  {
    PS2Stream b(opts);
    ASSERT_TRUE(b.Restore());
    EXPECT_EQ(b.num_subscriptions(), third + 1);  // orphan record replayed
    for (size_t i = third + 1; i < w.sample.inserts.size(); ++i) {
      SubscribeRaw(b, w.sample.inserts[i]);
    }
    b.Kill();
  }
  PS2Stream c;
  ASSERT_TRUE(c.Restore(dir_));
  EXPECT_EQ(c.num_subscriptions(), w.sample.inserts.size());

  auto session = c.OpenSession({.queue_capacity = 1 << 16});
  RouteAll(c, session);
  ReferenceMatcher ref;
  for (const auto& q : w.sample.inserts) ref.Insert(q);
  for (const auto& o : w.extra_objects) {
    EXPECT_EQ(testutil::Sorted(PostAndDrain(c, session, o)),
              testutil::Sorted(ref.Match(o)));
  }
}

// A torn record cuts the recoverable timeline: a stale orphan segment
// *beyond* the torn one must not survive the resume, or a later rotation
// would append the new incarnation's records after the old ones and a
// future recovery would resurrect them.
TEST_F(CrashRecoveryTest, StaleSegmentBeyondTornTailIsDiscardedOnResume) {
  auto w = testutil::MakeWorkload(1315, 300, 120);
  PS2StreamOptions opts;
  opts.partition.num_workers = 2;
  opts.partition.grid_k = 3;
  opts.durability.enabled = true;
  opts.durability.dir = dir_;

  const size_t half = w.sample.inserts.size() / 2;
  {
    PS2Stream a(opts);
    a.Bootstrap(w.sample);
    for (size_t i = 0; i < half; ++i) {
      SubscribeRaw(a, w.sample.inserts[i]);
    }
    a.Kill();
  }
  {
    // Orphan: rotate without commit and log one record into wal-2.
    RecoveredState probe;
    ASSERT_TRUE(RecoverState(dir_, &probe));
    DurabilityManager mgr(opts.durability);
    ASSERT_TRUE(mgr.Resume(1, probe.last_lsn + 1));
    ASSERT_EQ(mgr.BeginCheckpoint(), 2u);
    Vocabulary raw_ids;
    mgr.wal().AppendSubscribe(w.sample.inserts[half], raw_ids);
  }
  // Bit rot tears wal-1's tail, so recovery's timeline now ends inside
  // wal-1 and the orphan wal-2 is beyond the cut.
  {
    std::FILE* f =
        std::fopen(DurabilityManager::WalPath(dir_, 1).c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite("torntorntorn", 1, 12, f);
    std::fclose(f);
  }
  {
    PS2Stream b(opts);
    ASSERT_TRUE(b.Restore());
    EXPECT_EQ(b.num_subscriptions(), half);  // timeline cut at the tear
    EXPECT_FALSE(std::filesystem::exists(
        DurabilityManager::WalPath(dir_, 2)));  // stale orphan removed
    SubscribeRaw(b, w.sample.inserts[half + 1]);
    b.Kill();
  }
  PS2Stream c;
  ASSERT_TRUE(c.Restore(dir_));
  // The new incarnation's record survived; nothing stale resurrected.
  EXPECT_EQ(c.num_subscriptions(), half + 1);
  EXPECT_EQ(c.subscriptions().count(w.sample.inserts[half].id), 0u);
  EXPECT_EQ(c.subscriptions().count(w.sample.inserts[half + 1].id), 1u);
}

// Ids of queries subscribed then unsubscribed after the last checkpoint
// must still advance the recovered id high-water — reissuing a dead id
// would cross-wire a client that still holds it.
TEST_F(CrashRecoveryTest, DeadReplayedSubscriptionsStillAdvanceQueryIds) {
  auto w = testutil::MakeWorkload(1317, 200, 60);
  PS2StreamOptions opts;
  opts.partition.num_workers = 2;
  opts.partition.grid_k = 3;
  opts.durability.enabled = true;
  opts.durability.dir = dir_;

  QueryId last_id = 0;
  {
    PS2Stream a(opts);
    a.Bootstrap(w.sample);
    auto sub = a.Subscribe(nullptr, "alpha AND beta", Rect(0, 0, 10, 10));
    ASSERT_TRUE(sub.ok());
    last_id = sub->Release();
    ASSERT_GT(last_id, 0u);
    ASSERT_TRUE(a.Cancel(last_id).ok());
    a.Kill();
  }
  PS2Stream b(opts);
  ASSERT_TRUE(b.Restore());
  EXPECT_EQ(b.num_subscriptions(), 0u);
  auto reissue = b.Subscribe(nullptr, "alpha", Rect(0, 0, 10, 10));
  ASSERT_TRUE(reissue.ok());
  EXPECT_GT(reissue->Release(), last_id);
}

// Bootstrapping into a directory that already holds durable state must not
// overwrite it: the previous incarnation's subscriber base stays
// recoverable, and the mis-configured service simply runs non-durable.
TEST_F(CrashRecoveryTest, BootstrapRefusesExistingDurableDirectory) {
  auto w = testutil::MakeWorkload(1313, 300, 100);
  PS2StreamOptions opts;
  opts.partition.num_workers = 2;
  opts.partition.grid_k = 3;
  opts.durability.enabled = true;
  opts.durability.dir = dir_;

  {
    PS2Stream a(opts);
    a.Bootstrap(w.sample);
    ASSERT_TRUE(a.durable());
    for (const auto& q : w.sample.inserts) SubscribeRaw(a, q);
    a.Kill();
  }
  {
    // Operator error: Bootstrap instead of Restore on the same directory.
    PS2Stream b(opts);
    b.Bootstrap(w.sample);
    EXPECT_FALSE(b.durable());  // refused — service runs, but non-durable
    SubscribeRaw(b, w.sample.inserts.front());
    b.Kill();
  }
  PS2Stream c;
  ASSERT_TRUE(c.Restore(dir_));  // the first incarnation is intact
  EXPECT_EQ(c.num_subscriptions(), w.sample.inserts.size());
}

// Explicit checkpoints bound WAL growth: after Checkpoint(), recovery reads
// the checkpointed state plus an empty tail, and Engine::Recover exposes
// the same state to embedders that bypass the facade.
TEST_F(CrashRecoveryTest, CheckpointThenEngineRecover) {
  auto w = testutil::MakeWorkload(1309, 400, 120);
  PS2StreamOptions opts;
  opts.partition.num_workers = 2;
  opts.partition.grid_k = 3;
  opts.durability.enabled = true;
  opts.durability.dir = dir_;
  opts.durability.include_snapshot = true;  // exercise the H2 section too

  PS2Stream ps2(opts);
  ps2.Bootstrap(w.sample);
  for (const auto& q : w.sample.inserts) SubscribeRaw(ps2, q);
  ASSERT_TRUE(ps2.Checkpoint());
  ps2.Kill();

  RecoveredState state;
  ASSERT_TRUE(Engine::Recover(dir_, &state));
  EXPECT_EQ(state.checkpoint_seq, 2u);
  EXPECT_EQ(state.wal.records, 0u);  // tail is empty after the checkpoint
  EXPECT_EQ(state.queries.size(), w.sample.inserts.size());
  EXPECT_TRUE(state.had_snapshot);
  EXPECT_EQ(state.plan.num_workers, 2);
}

}  // namespace
}  // namespace ps2
