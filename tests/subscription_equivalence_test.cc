// Randomized subscription-class equivalence: mixed boolean / similarity /
// top-k schedules — with moving subscribers (UpdateSubscription), TTL'd
// objects, cross-shard migrations and kill+restore thrown in — must deliver
// exactly the brute-force reference's match set at every shard count, and
// the continuous top-k heaps must converge to the reference's held sets in
// every execution mode. Synchronous modes keep runs deterministic, so the
// delivered trace is compared as exact set equality; the threaded engine
// races candidate arrival against the event-time watermark, so there only
// the watermark-pure state (heaps and the stateless-class trace) is
// compared.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "test_util.h"

namespace ps2 {
namespace {

struct Action {
  enum Kind { kSubscribe, kUnsubscribe, kUpdate, kPublish } kind;
  STSQuery query;              // kSubscribe / kUpdate (the post-move query)
  QueryId query_id = 0;        // kUnsubscribe
  SpatioTextualObject object;  // kPublish
};

// All terms mentioned anywhere in the expression, sorted and deduplicated —
// the term set a scored-class conversion of the query subscribes to.
std::vector<TermId> AllTerms(const BoolExpr& expr) {
  std::vector<TermId> terms;
  for (const auto& clause : expr.clauses()) {
    terms.insert(terms.end(), clause.begin(), clause.end());
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

// Rewrites ~2/3 of the workload's boolean queries into similarity and top-k
// subscriptions (term set = every term the expression mentioned, stored as
// the single OR clause CompileSpec would produce) and stamps the published
// objects with monotonic event time plus a TTL on about half of them, so
// expiry and promotion churn throughout the schedule.
void MixClasses(testutil::TestWorkload* w, uint64_t seed) {
  Rng rng(seed);
  for (STSQuery& q : w->sample.inserts) {
    const double dice = rng.NextDouble();
    if (dice < 1.0 / 3) continue;  // stays boolean
    const std::vector<TermId> terms = AllTerms(q.expr);
    q.expr = BoolExpr::Or(terms);
    if (dice < 2.0 / 3) {
      q.cls = SubscriptionClass::kSimilarity;
      // Low thresholds keep the match rate non-trivial (a random object
      // shares few terms with a random query).
      q.tau = 0.05 + 0.5 * rng.NextDouble();
    } else {
      q.cls = SubscriptionClass::kTopK;
      q.k = 1 + rng.NextBelow(4);
    }
  }
  int64_t ts = 0;
  for (SpatioTextualObject& o : w->extra_objects) {
    ts += 1000;
    o.timestamp_us = ts;
    if (rng.NextBernoulli(0.5)) {
      o.ttl_us = 500 + static_cast<int64_t>(rng.NextBelow(8)) * 700;
    }
  }
}

std::vector<Action> MakeActions(const testutil::TestWorkload& w,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Action> actions;
  std::vector<QueryId> subscribed;
  std::unordered_map<QueryId, STSQuery> live;
  size_t qi = 0, oi = 0;
  while (qi < w.sample.inserts.size() || oi < w.extra_objects.size()) {
    const double dice = rng.NextDouble();
    if (dice < 0.40 && qi < w.sample.inserts.size()) {
      Action a;
      a.kind = Action::kSubscribe;
      a.query = w.sample.inserts[qi++];
      subscribed.push_back(a.query.id);
      live[a.query.id] = a.query;
      actions.push_back(std::move(a));
    } else if (dice < 0.48 && !subscribed.empty()) {
      Action a;
      a.kind = Action::kUnsubscribe;
      const size_t pick = rng.NextBelow(subscribed.size());
      a.query_id = subscribed[pick];
      subscribed.erase(subscribed.begin() + pick);
      live.erase(a.query_id);
      actions.push_back(std::move(a));
    } else if (dice < 0.58 && !subscribed.empty()) {
      // Moving subscriber: same id, class and terms, new region.
      Action a;
      a.kind = Action::kUpdate;
      const QueryId id = subscribed[rng.NextBelow(subscribed.size())];
      a.query = live[id];
      a.query.region = Rect::Centered(
          Point{rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
          rng.NextUniform(2, 25), rng.NextUniform(2, 25));
      live[id] = a.query;
      actions.push_back(std::move(a));
    } else if (oi < w.extra_objects.size()) {
      Action a;
      a.kind = Action::kPublish;
      a.object = w.extra_objects[oi++];
      actions.push_back(std::move(a));
    }
  }
  return actions;
}

// Ground truth: the stateful reference applied in lockstep. Returns the
// delivered trace; *ref keeps the final state for heap comparison.
std::vector<MatchResult> ReferenceRun(const std::vector<Action>& actions,
                                      ReferenceMatcher* ref) {
  std::vector<MatchResult> out;
  for (const Action& a : actions) {
    switch (a.kind) {
      case Action::kSubscribe:
        ref->Insert(a.query);
        break;
      case Action::kUnsubscribe:
        ref->Delete(a.query_id);
        break;
      case Action::kUpdate:
        ref->Update(a.query);
        break;
      case Action::kPublish:
        for (const MatchResult& m : ref->Post(a.object)) out.push_back(m);
        break;
    }
  }
  return testutil::Sorted(std::move(out));
}

PS2StreamOptions Options(int num_shards) {
  PS2StreamOptions options;
  options.sharding.num_shards = num_shards;
  options.partition.num_workers = 2;
  return options;
}

void SubscribeRaw(PS2Stream& ps2, const std::shared_ptr<SubscriberSession>& s,
                  const STSQuery& q) {
  auto sub = ps2.Subscribe(s, q);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  sub->Release();
}

void Drain(const std::shared_ptr<SubscriberSession>& session,
           std::vector<MatchResult>* out) {
  Delivery d;
  while (session->Poll(&d)) {
    out->push_back(MatchResult{d.query_id, d.object_id});
  }
}

void RunSchedule(PS2Stream& ps2,
                 const std::shared_ptr<SubscriberSession>& session,
                 const std::vector<Action>& actions, size_t begin, size_t end,
                 size_t migrate_every, std::vector<MatchResult>* delivered) {
  size_t posts = 0;
  for (size_t i = begin; i < end; ++i) {
    const Action& a = actions[i];
    switch (a.kind) {
      case Action::kSubscribe:
        SubscribeRaw(ps2, session, a.query);
        break;
      case Action::kUnsubscribe:
        ASSERT_TRUE(ps2.Cancel(a.query_id).ok());
        break;
      case Action::kUpdate:
        ASSERT_TRUE(ps2.UpdateSubscription(a.query.id, a.query.region).ok());
        break;
      case Action::kPublish: {
        ASSERT_TRUE(ps2.Post(a.object).ok());
        ++posts;
        if (migrate_every > 0 && posts % migrate_every == 0) {
          ShardedEngine& fabric = *ps2.fabric();
          const CellId cell =
              fabric.shard_cluster(0).router().plan().grid.CellOf(
                  a.object.loc);
          const ShardId from = fabric.shard_map()->OwnerOf(cell);
          fabric.MigrateCell(cell, from, (from + 1) % fabric.num_shards());
        }
        break;
      }
    }
    Drain(session, delivered);
  }
  Drain(session, delivered);
}

// The ids of every top-k query still live at the end of the schedule.
std::vector<QueryId> LiveTopKIds(const std::vector<Action>& actions) {
  std::unordered_map<QueryId, SubscriptionClass> live;
  for (const Action& a : actions) {
    if (a.kind == Action::kSubscribe) live[a.query.id] = a.query.cls;
    if (a.kind == Action::kUnsubscribe) live.erase(a.query_id);
  }
  std::vector<QueryId> out;
  for (const auto& [id, cls] : live) {
    if (cls == SubscriptionClass::kTopK) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectHeapsEqual(PS2Stream& ps2, const ReferenceMatcher& ref,
                      const std::vector<QueryId>& topk_ids,
                      bool compare_delivered, const std::string& label) {
  for (const QueryId id : topk_ids) {
    const std::vector<TopKEntry> got = ps2.topk().Snapshot(id);
    const std::vector<TopKEntry> want = ref.TopKSnapshot(id);
    ASSERT_EQ(got.size(), want.size()) << label << ", query " << id;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].object_id, want[i].object_id)
          << label << ", query " << id << ", rank " << i;
      EXPECT_DOUBLE_EQ(got[i].score, want[i].score);
      EXPECT_EQ(got[i].expire_us, want[i].expire_us);
      if (compare_delivered) {
        EXPECT_EQ(got[i].delivered, want[i].delivered)
            << label << ", query " << id << ", rank " << i;
      }
    }
  }
}

TEST(SubscriptionEquivalenceTest, MixedClassSchedulesMatchAtEveryShardCount) {
  for (const uint64_t seed : {91u, 92u}) {
    testutil::TestWorkload w = testutil::MakeWorkload(seed, 600, 220);
    MixClasses(&w, seed * 13 + 1);
    const std::vector<Action> actions = MakeActions(w, seed * 1000 + 9);
    ReferenceMatcher ref;
    const std::vector<MatchResult> expected = ReferenceRun(actions, &ref);
    ASSERT_FALSE(expected.empty());
    const std::vector<QueryId> topk_ids = LiveTopKIds(actions);
    ASSERT_FALSE(topk_ids.empty()) << "schedule never exercised top-k";

    for (const int shards : {1, 2, 4}) {
      PS2Stream ps2(Options(shards));
      ps2.Bootstrap(w.sample);
      SessionOptions so;
      so.queue_capacity = 1 << 16;
      auto session = ps2.OpenSession(so);
      std::vector<MatchResult> delivered;
      RunSchedule(ps2, session, actions, 0, actions.size(),
                  /*migrate_every=*/shards > 1 ? 37 : 0, &delivered);
      const std::string label =
          "seed " + std::to_string(seed) + ", " + std::to_string(shards) +
          " shard(s)";
      EXPECT_EQ(testutil::Sorted(std::move(delivered)), expected) << label;
      EXPECT_EQ(ps2.topk().watermark(), ref.watermark()) << label;
      ExpectHeapsEqual(ps2, ref, topk_ids, /*compare_delivered=*/true, label);
      if (shards > 1) {
        EXPECT_GT(ps2.fabric()->cells_migrated(), 0u);
        EXPECT_EQ(ps2.fabric()->decode_errors(), 0u);
      }
    }
  }
}

// The started engine delivers candidates asynchronously, so a TTL'd
// candidate can reach the coordinator after the watermark already passed
// its expiry — the top-k delivered trace is timing-dependent there. The
// held heaps are not: they are a pure function of the candidate set and
// the watermark. Compare those, plus the (stateless, exact) boolean and
// similarity trace.
TEST(SubscriptionEquivalenceTest, ThreadedEngineConvergesToReferenceHeaps) {
  testutil::TestWorkload w = testutil::MakeWorkload(95, 600, 220);
  MixClasses(&w, 9513);
  const std::vector<Action> actions = MakeActions(w, 95009);
  ReferenceMatcher ref;
  const std::vector<MatchResult> expected = ReferenceRun(actions, &ref);
  const std::vector<QueryId> topk_ids = LiveTopKIds(actions);
  ASSERT_FALSE(topk_ids.empty());
  std::unordered_set<QueryId> ever_topk;
  for (const Action& a : actions) {
    if (a.kind == Action::kSubscribe &&
        a.query.cls == SubscriptionClass::kTopK) {
      ever_topk.insert(a.query.id);
    }
  }
  std::vector<MatchResult> expected_stateless;
  for (const MatchResult& m : expected) {
    if (ever_topk.count(m.query_id) == 0) expected_stateless.push_back(m);
  }

  PS2Stream ps2(Options(1));
  ps2.Bootstrap(w.sample);
  SessionOptions so;
  so.queue_capacity = 1 << 16;
  auto session = ps2.OpenSession(so);
  std::vector<MatchResult> delivered;
  // Mutations apply inline (engine stopped); each publish run streams
  // through the started engine and is drained by Stop(). The facade shares
  // one dedup window across the mode switches, so the delivered set is the
  // union of both modes' traffic. Object-vs-object races inside a batch are
  // harmless to the stateless classes (per-object matches) and to the final
  // heaps (a pure function of candidate set + watermark); mutation-vs-object
  // races are what the segmentation removes.
  size_t i = 0;
  while (i < actions.size()) {
    if (actions[i].kind == Action::kPublish) {
      ps2.Start();
      while (i < actions.size() && actions[i].kind == Action::kPublish) {
        ASSERT_TRUE(ps2.Post(actions[i].object).ok());
        ++i;
      }
      ps2.Stop();
    } else {
      RunSchedule(ps2, session, actions, i, i + 1, /*migrate_every=*/0,
                  &delivered);
      ++i;
    }
    Drain(session, &delivered);
  }
  Drain(session, &delivered);

  std::vector<MatchResult> delivered_stateless;
  for (const MatchResult& m : delivered) {
    if (ever_topk.count(m.query_id) == 0) delivered_stateless.push_back(m);
  }
  EXPECT_EQ(testutil::Sorted(std::move(delivered_stateless)),
            testutil::Sorted(std::move(expected_stateless)));
  EXPECT_EQ(ps2.topk().watermark(), ref.watermark());
  ExpectHeapsEqual(ps2, ref, topk_ids, /*compare_delivered=*/false,
                   "threaded");
}

// Durable fabric drill: run half the schedule, checkpoint (the top-k heaps
// ride the checkpoint; candidates are not WAL-journaled), kill the fleet,
// restore, run the rest. Trace and final heaps must still be exact — the
// restored heap state must splice seamlessly into the remaining schedule.
TEST(SubscriptionEquivalenceTest, KillAndRestoreMidScheduleStaysEquivalent) {
  testutil::TestWorkload w = testutil::MakeWorkload(97, 600, 220);
  MixClasses(&w, 9717);
  const std::vector<Action> actions = MakeActions(w, 97003);
  ReferenceMatcher ref;
  const std::vector<MatchResult> expected = ReferenceRun(actions, &ref);
  const std::vector<QueryId> topk_ids = LiveTopKIds(actions);
  ASSERT_FALSE(topk_ids.empty());
  const std::string dir =
      ::testing::TempDir() + "/ps2_sub_equiv_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);

  const size_t half = actions.size() / 2;
  std::vector<MatchResult> delivered;
  {
    PS2StreamOptions options = Options(2);
    options.durability.enabled = true;
    options.durability.dir = dir;
    PS2Stream ps2(options);
    ps2.Bootstrap(w.sample);
    ASSERT_TRUE(ps2.durable());
    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);
    RunSchedule(ps2, session, actions, 0, half, /*migrate_every=*/23,
                &delivered);
    ASSERT_TRUE(ps2.Checkpoint());
    ps2.Kill();
  }
  {
    PS2Stream ps2(Options(1));  // shard count comes from the SHARDMAP
    ASSERT_TRUE(ps2.Restore(dir));
    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);
    for (const auto& [id, q] : ps2.subscriptions()) {
      ps2.delivery().Route(id, session);
    }
    RunSchedule(ps2, session, actions, half, actions.size(),
                /*migrate_every=*/29, &delivered);
    EXPECT_EQ(testutil::Sorted(std::move(delivered)), expected);
    EXPECT_EQ(ps2.topk().watermark(), ref.watermark());
    ExpectHeapsEqual(ps2, ref, topk_ids, /*compare_delivered=*/true,
                     "restored");
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ps2
