#include "spatial/kdtree.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace ps2 {
namespace {

double Uniform(uint32_t, uint32_t) { return 1.0; }

TEST(CellBlockTest, Dimensions) {
  CellBlock b{2, 3, 5, 7};
  EXPECT_EQ(b.Width(), 4u);
  EXPECT_EQ(b.Height(), 5u);
  EXPECT_EQ(b.NumCells(), 20u);
  EXPECT_TRUE(b.CanSplit());
  EXPECT_TRUE(b.ContainsCell(2, 3));
  EXPECT_TRUE(b.ContainsCell(5, 7));
  EXPECT_FALSE(b.ContainsCell(6, 7));
}

TEST(CellBlockTest, SingleCellCannotSplit) {
  CellBlock b{4, 4, 4, 4};
  EXPECT_FALSE(b.CanSplit());
  EXPECT_EQ(b.NumCells(), 1u);
}

TEST(CellBlockTest, CellsEnumeration) {
  GridSpec g(Rect(0, 0, 8, 8), 3);
  CellBlock b{1, 2, 2, 3};
  const auto cells = b.Cells(g);
  EXPECT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], g.ToId(1, 2));
  EXPECT_EQ(cells.back(), g.ToId(2, 3));
}

TEST(SplitTest, AxisSplitPartitionsBlock) {
  CellBlock b{0, 0, 7, 7}, l, r;
  ASSERT_TRUE(SplitBlockAxis(b, 0, Uniform, &l, &r));
  EXPECT_EQ(l.cx0, 0u);
  EXPECT_EQ(r.cx1, 7u);
  EXPECT_EQ(l.cx1 + 1, r.cx0);
  EXPECT_EQ(l.cy0, b.cy0);
  EXPECT_EQ(l.NumCells() + r.NumCells(), b.NumCells());
}

TEST(SplitTest, UnsplittableAxis) {
  CellBlock b{3, 0, 3, 7}, l, r;  // width 1
  EXPECT_FALSE(SplitBlockAxis(b, 0, Uniform, &l, &r));
  EXPECT_TRUE(SplitBlockAxis(b, 1, Uniform, &l, &r));
}

TEST(SplitTest, WeightedMedianBalances) {
  // All weight on column 6: the x-split should isolate it tightly.
  const auto w = [](uint32_t cx, uint32_t) {
    return cx == 6 ? 100.0 : 1.0;
  };
  CellBlock b{0, 0, 7, 7}, l, r;
  ASSERT_TRUE(SplitBlockAxis(b, 0, w, &l, &r));
  // The cut should land next to the heavy column (left weight closest to
  // half of total).
  EXPECT_GE(r.cx0, 6u);
}

TEST(SplitTest, WeightedSplitHalvesUniformLoad) {
  CellBlock b{0, 0, 7, 7}, l, r;
  ASSERT_TRUE(SplitBlockWeighted(b, Uniform, &l, &r));
  EXPECT_EQ(l.NumCells(), r.NumCells());
}

TEST(KdDecomposeTest, LeafCountAndDisjointCover) {
  GridSpec g(Rect(0, 0, 16, 16), 4);
  Rng rng(9);
  std::vector<double> weights(g.NumCells());
  for (auto& w : weights) w = rng.NextUniform(0.0, 10.0);
  const auto weight = [&](uint32_t cx, uint32_t cy) {
    return weights[g.ToId(cx, cy)];
  };
  for (size_t n : {1u, 2u, 5u, 8u, 16u, 32u}) {
    const auto blocks = KdDecompose(g, n, weight);
    EXPECT_EQ(blocks.size(), n);
    // Disjoint and complete cover of all cells.
    std::set<CellId> seen;
    for (const auto& b : blocks) {
      for (const CellId c : b.Cells(g)) {
        EXPECT_TRUE(seen.insert(c).second) << "cell " << c << " duplicated";
      }
    }
    EXPECT_EQ(seen.size(), g.NumCells());
  }
}

TEST(KdDecomposeTest, CapsAtGridSize) {
  GridSpec g(Rect(0, 0, 4, 4), 1);  // 4 cells
  const auto blocks = KdDecompose(g, 10, Uniform);
  EXPECT_EQ(blocks.size(), 4u);
}

TEST(KdDecomposeTest, BalancesSkewedLoad) {
  GridSpec g(Rect(0, 0, 16, 16), 4);
  // Heavy corner: 90% of weight in the lower-left quadrant.
  const auto weight = [&](uint32_t cx, uint32_t cy) {
    return (cx < 8 && cy < 8) ? 9.0 : 0.13;
  };
  const auto blocks = KdDecompose(g, 8, weight);
  ASSERT_EQ(blocks.size(), 8u);
  // Load-aware splitting should keep per-block weights near the mean (a
  // geometric split would leave one block with ~90% of the weight).
  double total = 0.0, max_block = 0.0;
  for (const auto& b : blocks) {
    double w = 0.0;
    for (uint32_t cy = b.cy0; cy <= b.cy1; ++cy) {
      for (uint32_t cx = b.cx0; cx <= b.cx1; ++cx) w += weight(cx, cy);
    }
    total += w;
    max_block = std::max(max_block, w);
  }
  EXPECT_LE(max_block, 2.0 * total / 8.0);
}

TEST(KdDecomposeTest, ZeroWeightFallsBackToGeometric) {
  GridSpec g(Rect(0, 0, 8, 8), 3);
  const auto blocks =
      KdDecompose(g, 4, [](uint32_t, uint32_t) { return 0.0; });
  EXPECT_EQ(blocks.size(), 4u);
  std::set<CellId> seen;
  for (const auto& b : blocks) {
    for (const CellId c : b.Cells(g)) seen.insert(c);
  }
  EXPECT_EQ(seen.size(), g.NumCells());
}

}  // namespace
}  // namespace ps2
