#include "common/geo.h"

#include <gtest/gtest.h>

namespace ps2 {
namespace {

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.width(), 0.0);
}

TEST(RectTest, BasicGeometry) {
  Rect r(0, 0, 4, 2);
  EXPECT_FALSE(r.empty());
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 2.0);
  EXPECT_DOUBLE_EQ(r.Area(), 8.0);
  EXPECT_EQ(r.Center().x, 2.0);
  EXPECT_EQ(r.Center().y, 1.0);
}

TEST(RectTest, CenteredConstruction) {
  Rect r = Rect::Centered(Point{10, 20}, 4, 6);
  EXPECT_DOUBLE_EQ(r.min_x, 8.0);
  EXPECT_DOUBLE_EQ(r.max_x, 12.0);
  EXPECT_DOUBLE_EQ(r.min_y, 17.0);
  EXPECT_DOUBLE_EQ(r.max_y, 23.0);
}

TEST(RectTest, ContainsPointBoundariesInclusive) {
  Rect r(0, 0, 1, 1);
  EXPECT_TRUE(r.Contains(Point{0, 0}));
  EXPECT_TRUE(r.Contains(Point{1, 1}));
  EXPECT_TRUE(r.Contains(Point{0.5, 0.5}));
  EXPECT_FALSE(r.Contains(Point{1.0001, 0.5}));
  EXPECT_FALSE(r.Contains(Point{-0.0001, 0.5}));
}

TEST(RectTest, ContainsRect) {
  Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Rect(1, 1, 9, 9)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect(-1, 1, 9, 9)));
  EXPECT_FALSE(outer.Contains(Rect()));  // empty rect contained nowhere
}

TEST(RectTest, Intersects) {
  Rect a(0, 0, 2, 2);
  EXPECT_TRUE(a.Intersects(Rect(1, 1, 3, 3)));
  EXPECT_TRUE(a.Intersects(Rect(2, 2, 3, 3)));  // touching corner counts
  EXPECT_FALSE(a.Intersects(Rect(2.1, 0, 3, 1)));
  EXPECT_FALSE(a.Intersects(Rect()));
  EXPECT_FALSE(Rect().Intersects(a));
}

TEST(RectTest, IntersectionGeometry) {
  Rect a(0, 0, 2, 2);
  Rect b(1, 1, 3, 3);
  Rect i = a.Intersection(b);
  EXPECT_EQ(i, Rect(1, 1, 2, 2));
  EXPECT_TRUE(a.Intersection(Rect(5, 5, 6, 6)).empty());
}

TEST(RectTest, ExpandPoint) {
  Rect r;
  r.Expand(Point{1, 2});
  EXPECT_EQ(r, Rect(1, 2, 1, 2));
  r.Expand(Point{-1, 5});
  EXPECT_EQ(r, Rect(-1, 2, 1, 5));
}

TEST(RectTest, ExpandRect) {
  Rect r;
  r.Expand(Rect(0, 0, 1, 1));
  r.Expand(Rect(2, -1, 3, 0.5));
  EXPECT_EQ(r, Rect(0, -1, 3, 1));
  r.Expand(Rect());  // empty is a no-op
  EXPECT_EQ(r, Rect(0, -1, 3, 1));
}

TEST(GeoTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance(Point{0, 0}, Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance(Point{1, 1}, Point{1, 1}), 0.0);
}

// Property sweep: intersection is commutative and contained in both.
class RectPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RectPropertyTest, IntersectionContainedInBoth) {
  const int seed = GetParam();
  // Simple LCG-based rectangles.
  auto next = [state = static_cast<uint32_t>(seed * 2654435761u)]() mutable {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % 1000 / 100.0;
  };
  for (int i = 0; i < 50; ++i) {
    const double ax = next(), ay = next(), bx = next(), by = next();
    Rect a(ax, ay, ax + next(), ay + next());
    Rect b(bx, by, bx + next(), by + next());
    const Rect i1 = a.Intersection(b);
    const Rect i2 = b.Intersection(a);
    EXPECT_EQ(i1, i2);
    if (!i1.empty()) {
      EXPECT_TRUE(a.Contains(i1));
      EXPECT_TRUE(b.Contains(i1));
      EXPECT_TRUE(a.Intersects(b));
    } else {
      EXPECT_FALSE(a.Intersects(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace ps2
