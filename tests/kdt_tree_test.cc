#include "dispatch/kdt_tree.h"

#include <gtest/gtest.h>

#include "partition/plan.h"
#include "test_util.h"

namespace ps2 {
namespace {

// Equivalence property: for any plan produced by any partitioner, the
// kdt-tree router and the flat gridt plan route identically.
class KdtEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KdtEquivalenceTest, ObjectRoutingMatchesPlan) {
  auto w = testutil::MakeWorkload(101, 1000, 300);
  PartitionConfig cfg;
  cfg.num_workers = 6;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner(GetParam())->Build(w.sample, w.vocab, cfg);
  const KdtTree tree(plan);
  std::vector<WorkerId> via_plan, via_tree;
  for (const auto& o : w.extra_objects) {
    plan.RouteObject(o, &via_plan);
    tree.RouteObject(o, &via_tree);
    ASSERT_EQ(via_plan, via_tree) << GetParam();
  }
}

TEST_P(KdtEquivalenceTest, QueryRoutingMatchesPlan) {
  auto w = testutil::MakeWorkload(103, 800, 300);
  PartitionConfig cfg;
  cfg.num_workers = 6;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner(GetParam())->Build(w.sample, w.vocab, cfg);
  const KdtTree tree(plan);
  std::vector<PartitionPlan::QueryRoute> via_plan, via_tree;
  for (const auto& q : w.sample.inserts) {
    plan.RouteQuery(q, w.vocab, &via_plan);
    tree.RouteQuery(q, w.vocab, &via_tree);
    ASSERT_EQ(via_plan.size(), via_tree.size()) << GetParam();
    for (size_t i = 0; i < via_plan.size(); ++i) {
      EXPECT_EQ(via_plan[i].worker, via_tree[i].worker);
      EXPECT_EQ(via_plan[i].cells, via_tree[i].cells);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, KdtEquivalenceTest,
                         ::testing::Values("frequency", "metric", "grid",
                                           "kdtree", "rtree", "hybrid"));

TEST(KdtTreeTest, UniformPlanIsOneLeaf) {
  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 10, 10), 4);
  plan.num_workers = 1;
  plan.cells.assign(plan.grid.NumCells(), CellRoute{0, nullptr});
  const KdtTree tree(plan);
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_EQ(tree.Depth(), 1);
}

TEST(KdtTreeTest, CheckerboardNeedsManyLeaves) {
  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 8, 8), 3);
  plan.num_workers = 2;
  plan.cells.resize(plan.grid.NumCells());
  for (uint32_t cy = 0; cy < 8; ++cy) {
    for (uint32_t cx = 0; cx < 8; ++cx) {
      plan.cells[plan.grid.ToId(cx, cy)].worker = (cx + cy) % 2;
    }
  }
  const KdtTree tree(plan);
  EXPECT_EQ(tree.NumLeaves(), 64u);  // no uniform block larger than a cell
  EXPECT_GE(tree.Depth(), 6);
}

TEST(KdtTreeTest, HalfPlaneIsCompact) {
  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 8, 8), 3);
  plan.num_workers = 2;
  plan.cells.resize(plan.grid.NumCells());
  for (uint32_t cy = 0; cy < 8; ++cy) {
    for (uint32_t cx = 0; cx < 8; ++cx) {
      plan.cells[plan.grid.ToId(cx, cy)].worker = cx < 4 ? 0 : 1;
    }
  }
  const KdtTree tree(plan);
  EXPECT_EQ(tree.NumLeaves(), 2u);
}

}  // namespace
}  // namespace ps2
