#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace ps2 {
namespace {

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  const TermId a = v.Intern("kobe");
  const TermId b = v.Intern("kobe");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.TermString(a), "kobe");
}

TEST(VocabularyTest, LookupUnknown) {
  Vocabulary v;
  v.Intern("a");
  EXPECT_EQ(v.Lookup("b"), kInvalidTerm);
  EXPECT_NE(v.Lookup("a"), kInvalidTerm);
}

TEST(VocabularyTest, CountsAccumulate) {
  Vocabulary v;
  const TermId a = v.Intern("a");
  const TermId b = v.Intern("b");
  v.AddCount(a, 3);
  v.AddCount(b);
  EXPECT_EQ(v.Count(a), 3u);
  EXPECT_EQ(v.Count(b), 1u);
  EXPECT_EQ(v.TotalCount(), 4u);
  EXPECT_EQ(v.Count(999), 0u);  // unknown id
}

TEST(VocabularyTest, LeastFrequentPicksMinimum) {
  Vocabulary v;
  const TermId a = v.Intern("a");
  const TermId b = v.Intern("b");
  const TermId c = v.Intern("c");
  v.AddCount(a, 10);
  v.AddCount(b, 2);
  v.AddCount(c, 5);
  EXPECT_EQ(v.LeastFrequent({a, b, c}), b);
  EXPECT_EQ(v.LeastFrequent({a}), a);
}

TEST(VocabularyTest, LeastFrequentTieBreaksBySmallerId) {
  Vocabulary v;
  const TermId a = v.Intern("a");
  const TermId b = v.Intern("b");
  v.AddCount(a, 2);
  v.AddCount(b, 2);
  EXPECT_EQ(v.LeastFrequent({b, a}), std::min(a, b));
}

TEST(VocabularyTest, TermsByFrequencyDescending) {
  Vocabulary v;
  const TermId a = v.Intern("a");
  const TermId b = v.Intern("b");
  const TermId c = v.Intern("c");
  v.AddCount(a, 1);
  v.AddCount(b, 9);
  v.AddCount(c, 5);
  const auto order = v.TermsByFrequency();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], b);
  EXPECT_EQ(order[1], c);
  EXPECT_EQ(order[2], a);
}

TEST(VocabularyTest, IsTopFraction) {
  Vocabulary v;
  // 100 terms, counts 100..1.
  std::vector<TermId> ids;
  for (int i = 0; i < 100; ++i) {
    const TermId t = v.Intern("t" + std::to_string(i));
    v.AddCount(t, 100 - i);
    ids.push_back(t);
  }
  EXPECT_TRUE(v.IsTopFraction(ids[0], 0.01));    // rank 0 in top 1%
  EXPECT_FALSE(v.IsTopFraction(ids[1], 0.01));   // rank 1 not in top 1%
  EXPECT_TRUE(v.IsTopFraction(ids[9], 0.50));
  EXPECT_FALSE(v.IsTopFraction(ids[99], 0.50));
}

TEST(VocabularyTest, MemoryGrowsWithTerms) {
  Vocabulary v;
  const size_t empty = v.MemoryBytes();
  for (int i = 0; i < 100; ++i) v.Intern("term" + std::to_string(i));
  EXPECT_GT(v.MemoryBytes(), empty);
}

}  // namespace
}  // namespace ps2
