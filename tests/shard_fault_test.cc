// Fault-tolerance units and drills: the FaultInjectingTransport's schedule,
// the reliable link halves (retry/backoff/ack/epoch fencing), and the
// fabric's supervision behavior — restart on missed acks, quarantine after
// the restart budget, degraded-mode statuses, operator revive, and sticky
// WAL errors surfacing as kDataLoss at the facade.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "shard/fault_transport.h"
#include "shard/reliable.h"
#include "shard/wire.h"
#include "test_util.h"

namespace ps2 {
namespace {

// --- FaultInjectingTransport -------------------------------------------------

struct Recorder {
  std::vector<std::string> frames;
  Transport::Handler Handler() {
    return [this](ShardId, const std::string& f) { frames.push_back(f); };
  }
};

TEST(FaultTransportTest, CleanScheduleIsAPassThrough) {
  FaultInjectingTransport t(FaultScheduleConfig{});
  Recorder r;
  t.RegisterEndpoint(0, r.Handler());
  EXPECT_TRUE(t.Send(kFrontEndpoint, 0, "a"));
  EXPECT_TRUE(t.Send(kFrontEndpoint, 0, "b"));
  EXPECT_FALSE(t.Send(kFrontEndpoint, 9, "x")) << "unknown endpoint";
  ASSERT_EQ(r.frames.size(), 2u);
  EXPECT_EQ(r.frames[0], "a");
  EXPECT_EQ(r.frames[1], "b");
  const FaultCounters c = t.counters();
  EXPECT_EQ(c.sends, 3u);
  EXPECT_EQ(c.delivered, 2u);
  EXPECT_EQ(c.dropped + c.delayed + c.duplicated + c.refused, 0u);
}

TEST(FaultTransportTest, DropsVanishButSendStillReportsSuccess) {
  FaultScheduleConfig cfg;
  cfg.drop_rate = 1.0;
  FaultInjectingTransport t(cfg);
  Recorder r;
  t.RegisterEndpoint(0, r.Handler());
  // The caller cannot tell a drop from a delivery — only the missing ack.
  EXPECT_TRUE(t.Send(kFrontEndpoint, 0, "gone"));
  EXPECT_TRUE(r.frames.empty());
  EXPECT_EQ(t.counters().dropped, 1u);
}

TEST(FaultTransportTest, RefusalsFailTheSendVisibly) {
  FaultScheduleConfig cfg;
  cfg.refuse_rate = 1.0;
  FaultInjectingTransport t(cfg);
  Recorder r;
  t.RegisterEndpoint(0, r.Handler());
  EXPECT_FALSE(t.Send(kFrontEndpoint, 0, "no"));
  EXPECT_TRUE(r.frames.empty());
  EXPECT_EQ(t.counters().refused, 1u);
}

TEST(FaultTransportTest, DuplicatesDeliverTwice) {
  FaultScheduleConfig cfg;
  cfg.duplicate_rate = 1.0;
  FaultInjectingTransport t(cfg);
  Recorder r;
  t.RegisterEndpoint(0, r.Handler());
  EXPECT_TRUE(t.Send(kFrontEndpoint, 0, "twin"));
  ASSERT_EQ(r.frames.size(), 2u);
  EXPECT_EQ(r.frames[0], "twin");
  EXPECT_EQ(r.frames[1], "twin");
  EXPECT_EQ(t.counters().duplicated, 1u);
}

TEST(FaultTransportTest, DelayedFramesReleaseOnLaterSends) {
  FaultScheduleConfig cfg;
  cfg.delay_rate = 1.0;
  cfg.max_delay_sends = 1;  // released by the very next Send
  FaultInjectingTransport t(cfg);
  Recorder r;
  t.RegisterEndpoint(0, r.Handler());
  EXPECT_TRUE(t.Send(kFrontEndpoint, 0, "a"));
  EXPECT_TRUE(r.frames.empty()) << "held, not delivered";
  EXPECT_TRUE(t.Send(kFrontEndpoint, 0, "b"));  // releases "a", holds "b"
  ASSERT_EQ(r.frames.size(), 1u);
  EXPECT_EQ(r.frames[0], "a");
  t.FlushDelayed();
  ASSERT_EQ(r.frames.size(), 2u);
  EXPECT_EQ(r.frames[1], "b");
  const FaultCounters c = t.counters();
  EXPECT_EQ(c.delayed, 2u);
  EXPECT_EQ(c.delivered, 2u);
}

TEST(FaultTransportTest, DelaySweepReordersButLosesNothing) {
  FaultScheduleConfig cfg;
  cfg.seed = 7;
  cfg.delay_rate = 0.5;
  cfg.max_delay_sends = 3;
  FaultInjectingTransport t(cfg);
  Recorder r;
  t.RegisterEndpoint(0, r.Handler());
  std::vector<std::string> sent;
  for (int i = 0; i < 40; ++i) {
    sent.push_back("f" + std::to_string(i));
    EXPECT_TRUE(t.Send(kFrontEndpoint, 0, sent.back()));
  }
  t.FlushDelayed();
  EXPECT_GT(t.counters().delayed, 0u);
  EXPECT_NE(r.frames, sent) << "delays never actually reordered anything";
  std::vector<std::string> got = r.frames;
  std::sort(got.begin(), got.end());
  std::sort(sent.begin(), sent.end());
  EXPECT_EQ(got, sent) << "delay must reorder, never lose or duplicate";
}

TEST(FaultTransportTest, PartitionWindowsBlockBothDirections) {
  FaultScheduleConfig cfg;
  FaultPartitionSpec part;
  part.a = kFrontEndpoint;
  part.b = 0;
  part.from_send = 1;  // send indices [1, 3) are partitioned
  part.to_send = 3;
  part.refuse = false;  // silent drop flavor
  cfg.partitions.push_back(part);
  FaultInjectingTransport t(cfg);
  Recorder front, shard;
  t.RegisterEndpoint(kFrontEndpoint, front.Handler());
  t.RegisterEndpoint(0, shard.Handler());
  t.RegisterEndpoint(1, shard.Handler());

  EXPECT_TRUE(t.Send(kFrontEndpoint, 0, "before"));   // idx 0: through
  EXPECT_TRUE(t.Send(kFrontEndpoint, 0, "blocked"));  // idx 1: dropped
  EXPECT_TRUE(t.Send(0, kFrontEndpoint, "reverse"));  // idx 2: dropped too
  EXPECT_TRUE(t.Send(kFrontEndpoint, 1, "other"));    // wrong peer: never
  EXPECT_TRUE(t.Send(kFrontEndpoint, 0, "after"));    // idx 4: window over
  ASSERT_EQ(shard.frames.size(), 3u);
  EXPECT_EQ(shard.frames[0], "before");
  EXPECT_EQ(shard.frames[1], "other");
  EXPECT_EQ(shard.frames[2], "after");
  EXPECT_TRUE(front.frames.empty());
  EXPECT_EQ(t.counters().dropped, 2u);

  // The refusing flavor makes the failure visible to the sender.
  FaultScheduleConfig cfg2;
  part.from_send = 0;
  part.to_send = UINT64_MAX;
  part.refuse = true;
  cfg2.partitions.push_back(part);
  FaultInjectingTransport t2(cfg2);
  Recorder r2;
  t2.RegisterEndpoint(0, r2.Handler());
  EXPECT_FALSE(t2.Send(kFrontEndpoint, 0, "nope"));
  EXPECT_EQ(t2.counters().refused, 1u);
}

// --- ReliableSender ----------------------------------------------------------

std::string Inner(uint64_t token) {
  return EncodeDrainFrame(FrameKind::kDrain, token);
}

RetryPolicy NoJitter(int attempts, int64_t base, int64_t cap) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.base_backoff_us = base;
  p.max_backoff_us = cap;
  p.jitter = 0.0;
  return p;
}

TEST(ReliableSenderTest, FirstSendIsFreeRetriesDoubleUntilTheCap) {
  ReliableSender s(NoJitter(10, 100, 400), 1);
  s.Enqueue(EncodePingFrame());
  std::vector<ReliableSender::Outgoing> out;
  s.CollectDue(0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].is_retry);
  Frame f;
  ASSERT_TRUE(DecodeFrame(out[0].envelope, &f));
  EXPECT_TRUE(f.enveloped);
  EXPECT_EQ(f.kind, FrameKind::kPing);
  EXPECT_EQ(f.epoch, 1u);
  EXPECT_EQ(f.seq, 1u);

  out.clear();
  s.CollectDue(50, &out);
  EXPECT_TRUE(out.empty()) << "not due again before the backoff";
  EXPECT_EQ(s.next_due_us(), 100);  // zero jitter: exactly base
  s.CollectDue(100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].is_retry);
  EXPECT_EQ(s.retries(), 1u);
  EXPECT_EQ(s.next_due_us(), 300);  // 100 + doubled backoff
  out.clear();
  s.CollectDue(300, &out);
  EXPECT_EQ(s.next_due_us(), 700);  // 300 + capped 400
}

TEST(ReliableSenderTest, CumulativeAckDropsThePrefixAndRefreshesTheBudget) {
  ReliableSender s(NoJitter(2, 100, 100), 1);
  for (uint64_t i = 1; i <= 3; ++i) s.Enqueue(Inner(i));
  std::vector<ReliableSender::Outgoing> out;
  s.CollectDue(0, &out);
  ASSERT_EQ(out.size(), 3u);

  EXPECT_FALSE(s.Ack(9, 3)) << "acks from another epoch are stale";
  EXPECT_EQ(s.unacked(), 3u);
  EXPECT_TRUE(s.Ack(1, 2));
  EXPECT_EQ(s.unacked(), 1u);
  EXPECT_FALSE(s.Ack(1, 2)) << "no new progress";

  // Progress refreshed the survivor's attempt budget: the next send is a
  // fresh first attempt, not a retry.
  out.clear();
  s.CollectDue(1000, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].is_retry);
  Frame f;
  ASSERT_TRUE(DecodeFrame(out[0].envelope, &f));
  EXPECT_EQ(f.seq, 3u);
  EXPECT_EQ(f.drain_token, 3u);
}

TEST(ReliableSenderTest, ExhaustionTripsAfterMaxAttemptsAndAcksClearIt) {
  ReliableSender s(NoJitter(2, 100, 100), 1);
  s.Enqueue(Inner(1));
  std::vector<ReliableSender::Outgoing> out;
  s.CollectDue(0, &out);        // attempt 1
  s.CollectDue(100000, &out);   // attempt 2 (budget spent)
  EXPECT_FALSE(s.exhausted());
  out.clear();
  s.CollectDue(200000, &out);   // due again, but out of attempts
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(s.exhausted());
  EXPECT_EQ(s.next_due_us(), INT64_MAX) << "an exhausted frame never resends";

  EXPECT_TRUE(s.Ack(1, 1)) << "a very late ack still counts";
  EXPECT_FALSE(s.exhausted());
  EXPECT_EQ(s.unacked(), 0u);
}

TEST(ReliableSenderTest, ResetReplaysPendingBehindThePrologue) {
  ReliableSender s(NoJitter(10, 100, 400), 1);
  s.Enqueue(Inner(1));
  s.Enqueue(Inner(2));
  std::vector<ReliableSender::Outgoing> out;
  s.CollectDue(0, &out);

  std::vector<std::string> prologue;
  prologue.push_back(Inner(99));
  s.Reset(2, std::move(prologue));
  EXPECT_EQ(s.epoch(), 2u);
  EXPECT_EQ(s.unacked(), 3u);

  out.clear();
  s.CollectDue(0, &out);  // everything due immediately under the new epoch
  ASSERT_EQ(out.size(), 3u);
  const uint64_t want_tokens[] = {99, 1, 2};
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_FALSE(out[i].is_retry);
    Frame f;
    ASSERT_TRUE(DecodeFrame(out[i].envelope, &f));
    EXPECT_EQ(f.epoch, 2u);
    EXPECT_EQ(f.seq, i + 1) << "sequences restart from 1";
    EXPECT_EQ(f.drain_token, want_tokens[i])
        << "the state-sync prologue must apply before the replay";
  }
}

TEST(ReliableSenderTest, TakeInnersSalvagesPendingFrames) {
  ReliableSender s(NoJitter(1, 100, 100), 1);
  s.Enqueue(Inner(7));
  s.Enqueue(Inner(8));
  std::vector<ReliableSender::Outgoing> out;
  s.CollectDue(0, &out);
  s.CollectDue(100000, &out);  // exhausts (1 attempt max)
  EXPECT_TRUE(s.exhausted());
  const std::vector<std::string> inners = s.TakeInners();
  ASSERT_EQ(inners.size(), 2u);
  EXPECT_EQ(inners[0], Inner(7));
  EXPECT_EQ(inners[1], Inner(8));
  EXPECT_EQ(s.unacked(), 0u);
  EXPECT_FALSE(s.exhausted());
}

// --- ReliableReceiver --------------------------------------------------------

Frame Ctl(uint64_t epoch, uint64_t seq) {
  Frame f;
  EXPECT_TRUE(
      DecodeFrame(EncodeControlFrame(epoch, seq, Inner(seq)), &f));
  return f;
}

TEST(ReliableReceiverTest, OrderedReleaseBuffersAheadOfSequence) {
  ReliableReceiver r(ReliableReceiver::Order::kOrdered);
  auto r2 = r.Accept(Ctl(1, 2));
  EXPECT_FALSE(r2.stale);
  EXPECT_FALSE(r2.duplicate);
  EXPECT_TRUE(r2.apply.empty()) << "seq 2 must wait for seq 1";
  EXPECT_EQ(r2.ack_upto, 0u);

  auto r1 = r.Accept(Ctl(1, 1));
  ASSERT_EQ(r1.apply.size(), 2u) << "seq 1 releases the buffered seq 2";
  EXPECT_EQ(r1.apply[0].seq, 1u);
  EXPECT_EQ(r1.apply[1].seq, 2u);
  EXPECT_EQ(r1.ack_upto, 2u);

  auto dup = r.Accept(Ctl(1, 2));
  EXPECT_TRUE(dup.duplicate);
  EXPECT_TRUE(dup.apply.empty());
  EXPECT_EQ(dup.ack_upto, 2u) << "duplicates are re-acked, not re-applied";
}

TEST(ReliableReceiverTest, UnorderedReleaseAppliesImmediatelyAndDedups) {
  ReliableReceiver r(ReliableReceiver::Order::kUnordered);
  auto r3 = r.Accept(Ctl(1, 3));
  ASSERT_EQ(r3.apply.size(), 1u) << "match links never hold frames back";
  EXPECT_EQ(r3.ack_upto, 0u) << "cumulative ack still tracks the prefix";

  EXPECT_TRUE(r.Accept(Ctl(1, 3)).duplicate);

  auto r1 = r.Accept(Ctl(1, 1));
  ASSERT_EQ(r1.apply.size(), 1u);
  EXPECT_EQ(r1.ack_upto, 1u);
  auto r2 = r.Accept(Ctl(1, 2));
  ASSERT_EQ(r2.apply.size(), 1u);
  EXPECT_EQ(r2.ack_upto, 3u) << "the prefix absorbs the out-of-order seq 3";
}

TEST(ReliableReceiverTest, EpochFencingDropsStaleAndAdoptsNewer) {
  ReliableReceiver r(ReliableReceiver::Order::kOrdered);
  ASSERT_EQ(r.Accept(Ctl(2, 1)).apply.size(), 1u);
  EXPECT_EQ(r.epoch(), 2u);

  auto stale = r.Accept(Ctl(1, 5));
  EXPECT_TRUE(stale.stale) << "a dead incarnation's frame must not apply";
  EXPECT_TRUE(stale.apply.empty());

  // A newer epoch is the sender's restart: adopt it with a clean slate.
  auto fresh = r.Accept(Ctl(3, 1));
  EXPECT_FALSE(fresh.stale);
  ASSERT_EQ(fresh.apply.size(), 1u);
  EXPECT_EQ(fresh.ack_upto, 1u);
  EXPECT_EQ(r.epoch(), 3u);
}

// --- fabric drills -----------------------------------------------------------

// Retry policy tightened so a failure drill detects in ~a millisecond
// instead of the production ~65ms.
PS2StreamOptions FabricOptions(int num_shards) {
  PS2StreamOptions options;
  options.sharding.num_shards = num_shards;
  options.partition.num_workers = 2;
  options.sharding.retry.max_attempts = 4;
  options.sharding.retry.base_backoff_us = 50;
  options.sharding.retry.max_backoff_us = 200;
  return options;
}

void SubscribeAll(PS2Stream& ps2,
                  const std::shared_ptr<SubscriberSession>& session,
                  const testutil::TestWorkload& w, ReferenceMatcher* ref) {
  for (const STSQuery& q : w.sample.inserts) {
    auto sub = ps2.Subscribe(session, q);
    ASSERT_TRUE(sub.ok()) << sub.status().ToString();
    sub->Release();
    ref->Insert(q);
  }
}

void Drain(const std::shared_ptr<SubscriberSession>& session,
           std::vector<MatchResult>* out) {
  Delivery d;
  while (session->Poll(&d)) {
    out->push_back(MatchResult{d.query_id, d.object_id});
  }
}

ShardId OwnerOf(PS2Stream& ps2, ShardId plan_from,
                const SpatioTextualObject& o) {
  ShardedEngine& fabric = *ps2.fabric();
  const CellId cell =
      fabric.shard_cluster(plan_from).router().plan().grid.CellOf(o.loc);
  return fabric.shard_map()->OwnerOf(cell);
}

TEST(ShardFaultTest, KilledShardRestartsOnTheNextFrameAndStaysExact) {
  const testutil::TestWorkload w = testutil::MakeWorkload(91, 300, 120);
  PS2Stream ps2(FabricOptions(2));
  ps2.Bootstrap(w.sample);
  SessionOptions so;
  so.queue_capacity = 1 << 16;
  auto session = ps2.OpenSession(so);
  ReferenceMatcher ref;
  SubscribeAll(ps2, session, w, &ref);

  std::vector<MatchResult> expected, delivered;
  const size_t half = w.extra_objects.size() / 2;
  for (size_t i = 0; i < w.extra_objects.size(); ++i) {
    if (i == half) ps2.fabric()->KillShard(1);
    const SpatioTextualObject& o = w.extra_objects[i];
    const Status st = ps2.Post(o);
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (const MatchResult& m : ref.Match(o)) expected.push_back(m);
    Drain(session, &delivered);
  }
  Drain(session, &delivered);
  EXPECT_EQ(testutil::Sorted(std::move(delivered)),
            testutil::Sorted(std::move(expected)));
  EXPECT_GE(ps2.fabric()->shard_restart_count(1), 1u);
  EXPECT_FALSE(ps2.fabric()->degraded());
  EXPECT_GT(ps2.fabric()->fault_stats().shard_restarts, 0u);
}

TEST(ShardFaultTest, HealthProbeRestartsAnIdleKilledShard) {
  const testutil::TestWorkload w = testutil::MakeWorkload(92, 200, 80);
  PS2Stream ps2(FabricOptions(2));
  ps2.Bootstrap(w.sample);
  ASSERT_TRUE(ps2.Health().ok());

  // No traffic flows to the dead shard — only the probe can notice.
  ps2.fabric()->KillShard(0);
  const Status st = ps2.Health();
  EXPECT_TRUE(st.ok()) << st.ToString()
                       << " (probe should restart, then re-probe clean)";
  EXPECT_GE(ps2.fabric()->shard_restart_count(0), 1u);
  EXPECT_FALSE(ps2.fabric()->degraded());
}

TEST(ShardFaultTest, UnrestartableShardQuarantinesDegradesAndRevives) {
  const testutil::TestWorkload w = testutil::MakeWorkload(93, 300, 120);
  PS2Stream ps2(FabricOptions(2));
  ps2.Bootstrap(w.sample);
  SessionOptions so;
  so.queue_capacity = 1 << 16;
  auto session = ps2.OpenSession(so);
  ReferenceMatcher ref;
  SubscribeAll(ps2, session, w, &ref);

  ps2.fabric()->KillShard(0, /*allow_restart=*/false);

  // Degraded mode: shard-0 traffic bounces with kUnavailable, shard-1
  // traffic still delivers exactly.
  std::vector<MatchResult> expected, delivered;
  size_t bounced = 0, served = 0;
  const size_t half = w.extra_objects.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    const SpatioTextualObject& o = w.extra_objects[i];
    const Status st = ps2.Post(o);
    if (OwnerOf(ps2, /*plan_from=*/1, o) == 0) {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
      ++bounced;
    } else {
      ASSERT_TRUE(st.ok()) << st.ToString();
      for (const MatchResult& m : ref.Match(o)) expected.push_back(m);
      ++served;
    }
    Drain(session, &delivered);
  }
  ASSERT_GT(bounced, 0u);
  ASSERT_GT(served, 0u);
  EXPECT_TRUE(ps2.fabric()->degraded());
  EXPECT_TRUE(ps2.fabric()->shard_quarantined(0));
  EXPECT_GE(ps2.fabric()->fault_stats().shards_quarantined, 1u);
  EXPECT_EQ(ps2.Health().code(), StatusCode::kUnavailable);

  // A subscribe overlapping the quarantined shard's cells bounces too, and
  // must roll back completely (no partial placement may ever fire).
  STSQuery wide = w.sample.inserts[0];
  wide.id = 900000;
  wide.region = Rect(-1000, -1000, 1000, 1000);
  auto sub = ps2.Subscribe(session, wide);
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kUnavailable);

  Drain(session, &delivered);
  EXPECT_EQ(testutil::Sorted(delivered), testutil::Sorted(expected));

  // Operator revive: the shard comes back from a registry resync and the
  // whole fleet serves again — including queries originally placed on it.
  const Status revived = ps2.fabric()->ReviveShard(0);
  ASSERT_TRUE(revived.ok()) << revived.ToString();
  EXPECT_FALSE(ps2.fabric()->degraded());
  EXPECT_TRUE(ps2.Health().ok());
  for (size_t i = half; i < w.extra_objects.size(); ++i) {
    const SpatioTextualObject& o = w.extra_objects[i];
    const Status st = ps2.Post(o);
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (const MatchResult& m : ref.Match(o)) expected.push_back(m);
    Drain(session, &delivered);
  }
  Drain(session, &delivered);
  EXPECT_EQ(testutil::Sorted(std::move(delivered)),
            testutil::Sorted(std::move(expected)));
}

TEST(ShardFaultTest, TransientPartitionRetriesThroughAndCountsErrors) {
  const testutil::TestWorkload w = testutil::MakeWorkload(94, 200, 80);
  // Refuse every front<->shard-0 frame for the first 60 sends; the reliable
  // links must absorb the outage (restarting as needed) without quarantine.
  FaultScheduleConfig fc;
  FaultPartitionSpec part;
  part.a = kFrontEndpoint;
  part.b = 0;
  part.from_send = 0;
  part.to_send = 60;
  part.refuse = true;
  fc.partitions.push_back(part);
  FaultInjectingTransport fault(fc);

  PS2StreamOptions options = FabricOptions(2);
  options.sharding.max_restarts = 1000;  // outage outlives the retry budget
  options.sharding.transport = &fault;
  PS2Stream ps2(options);
  ps2.Bootstrap(w.sample);
  SessionOptions so;
  so.queue_capacity = 1 << 16;
  auto session = ps2.OpenSession(so);
  ReferenceMatcher ref;
  SubscribeAll(ps2, session, w, &ref);

  std::vector<MatchResult> expected, delivered;
  for (const SpatioTextualObject& o : w.extra_objects) {
    const Status st = ps2.Post(o);
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (const MatchResult& m : ref.Match(o)) expected.push_back(m);
    Drain(session, &delivered);
  }
  Drain(session, &delivered);
  EXPECT_EQ(testutil::Sorted(std::move(delivered)),
            testutil::Sorted(std::move(expected)));
  EXPECT_GT(fault.counters().refused, 0u);
  // S1 regression: a false Send() return is an error the fabric counts.
  EXPECT_GT(ps2.fabric()->fault_stats().transport_errors, 0u);
  EXPECT_FALSE(ps2.fabric()->degraded());
}

TEST(ShardFaultTest, StickyWalErrorSurfacesAsDataLossSingleEngine) {
  const testutil::TestWorkload w = testutil::MakeWorkload(95, 200, 60);
  const std::string dir =
      ::testing::TempDir() + "/ps2_dataloss_single_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  PS2StreamOptions options;
  options.durability.enabled = true;
  options.durability.dir = dir;
  PS2Stream ps2(options);
  ps2.Bootstrap(w.sample);
  ASSERT_TRUE(ps2.durable());
  SessionOptions so;
  auto session = ps2.OpenSession(so);
  ASSERT_TRUE(ps2.Health().ok());

  ps2.durability()->ForceIoError();
  EXPECT_EQ(ps2.Post(w.extra_objects[0]).code(), StatusCode::kDataLoss);
  auto sub = ps2.Subscribe(session, w.sample.inserts[0]);
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(ps2.Health().code(), StatusCode::kDataLoss);
  std::filesystem::remove_all(dir);
}

TEST(ShardFaultTest, StickyWalErrorSurfacesAsDataLossThroughTheFabric) {
  const testutil::TestWorkload w = testutil::MakeWorkload(96, 200, 60);
  const std::string dir =
      ::testing::TempDir() + "/ps2_dataloss_fabric_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  PS2StreamOptions options = FabricOptions(2);
  options.durability.enabled = true;
  options.durability.dir = dir;
  PS2Stream ps2(options);
  ps2.Bootstrap(w.sample);
  ASSERT_TRUE(ps2.durable());
  SessionOptions so;
  auto session = ps2.OpenSession(so);

  // One shard's WAL going bad poisons the whole fleet's durability promise.
  ASSERT_NE(ps2.fabric()->shard_durability(1), nullptr);
  ps2.fabric()->shard_durability(1)->ForceIoError();
  EXPECT_EQ(ps2.Post(w.extra_objects[0]).code(), StatusCode::kDataLoss);
  auto sub = ps2.Subscribe(session, w.sample.inserts[0]);
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(ps2.Health().code(), StatusCode::kDataLoss);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ps2
