#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "api/delivery_router.h"
#include "api/status.h"
#include "api/subscriber_session.h"
#include "api/subscription.h"
#include "runtime/ps2stream.h"
#include "test_util.h"

namespace ps2 {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status s = Status::InvalidArgument("bad expression");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad expression");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad expression");
}

TEST(StatusTest, StatusOrHoldsValueOrError) {
  StatusOr<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  // Constructing from an Ok status (a caller bug) degrades to kInternal
  // instead of a half-ok object.
  StatusOr<int> confused = Status::Ok();
  EXPECT_FALSE(confused.ok());
  EXPECT_EQ(confused.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// SubscriberSession: queueing and backpressure policies
// ---------------------------------------------------------------------------

Delivery MakeDelivery(QueryId q, ObjectId o) {
  Delivery d;
  d.query_id = q;
  d.object_id = o;
  d.publish_us = 1;
  return d;
}

TEST(SubscriberSessionTest, PollAndTake) {
  SubscriberSession session({/*queue_capacity=*/4,
                             BackpressurePolicy::kBlock});
  Delivery d;
  EXPECT_FALSE(session.Poll(&d));
  EXPECT_EQ(session.Take(&d, milliseconds(1)).code(),
            StatusCode::kDeadlineExceeded);

  EXPECT_TRUE(session.Enqueue(MakeDelivery(7, 100)));
  EXPECT_TRUE(session.Enqueue(MakeDelivery(8, 101)));
  EXPECT_EQ(session.pending(), 2u);
  ASSERT_TRUE(session.Poll(&d));
  EXPECT_EQ(d.query_id, 7u);
  EXPECT_GT(d.deliver_us, 0);  // stamped at enqueue
  ASSERT_TRUE(session.Take(&d, milliseconds(100)).ok());
  EXPECT_EQ(d.query_id, 8u);

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.delivered, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.latency.count(), 2u);

  session.Close();
  EXPECT_EQ(session.Take(&d, milliseconds(1)).code(),
            StatusCode::kUnavailable);
}

TEST(SubscriberSessionTest, DropOldestKeepsFreshest) {
  SubscriberSession session({/*queue_capacity=*/2,
                             BackpressurePolicy::kDropOldest});
  for (ObjectId o = 1; o <= 5; ++o) {
    EXPECT_TRUE(session.Enqueue(MakeDelivery(1, o)));
  }
  Delivery d;
  ASSERT_TRUE(session.Poll(&d));
  EXPECT_EQ(d.object_id, 4u);
  ASSERT_TRUE(session.Poll(&d));
  EXPECT_EQ(d.object_id, 5u);
  EXPECT_FALSE(session.Poll(&d));
  EXPECT_EQ(session.stats().delivered, 5u);
  EXPECT_EQ(session.stats().dropped, 3u);
}

TEST(SubscriberSessionTest, DropNewestKeepsBacklog) {
  SubscriberSession session({/*queue_capacity=*/2,
                             BackpressurePolicy::kDropNewest});
  EXPECT_TRUE(session.Enqueue(MakeDelivery(1, 1)));
  EXPECT_TRUE(session.Enqueue(MakeDelivery(1, 2)));
  EXPECT_FALSE(session.Enqueue(MakeDelivery(1, 3)));  // dropped
  Delivery d;
  ASSERT_TRUE(session.Poll(&d));
  EXPECT_EQ(d.object_id, 1u);
  ASSERT_TRUE(session.Poll(&d));
  EXPECT_EQ(d.object_id, 2u);
  EXPECT_EQ(session.stats().dropped, 1u);
}

TEST(SubscriberSessionTest, BlockWaitsForConsumerAndHonorsClose) {
  SubscriberSession session({/*queue_capacity=*/1,
                             BackpressurePolicy::kBlock});
  EXPECT_TRUE(session.Enqueue(MakeDelivery(1, 1)));
  std::atomic<bool> second_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(session.Enqueue(MakeDelivery(1, 2)));  // blocks: queue full
    second_done.store(true);
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(second_done.load());  // still blocked
  Delivery d;
  ASSERT_TRUE(session.Poll(&d));  // frees a slot
  producer.join();
  EXPECT_TRUE(second_done.load());
  ASSERT_TRUE(session.Poll(&d));
  EXPECT_EQ(d.object_id, 2u);

  // A producer blocked on a full queue must be released by Close(), with
  // the delivery counted as dropped.
  EXPECT_TRUE(session.Enqueue(MakeDelivery(1, 3)));
  std::thread blocked([&] {
    EXPECT_FALSE(session.Enqueue(MakeDelivery(1, 4)));
  });
  std::this_thread::sleep_for(milliseconds(20));
  session.Close();
  blocked.join();
  EXPECT_EQ(session.stats().dropped, 1u);
}

TEST(SubscriberSessionTest, DrainingDegradesBlockToDrop) {
  SubscriberSession session({/*queue_capacity=*/1,
                             BackpressurePolicy::kBlock});
  EXPECT_TRUE(session.Enqueue(MakeDelivery(1, 1)));
  session.SetDraining(true);
  // Would block forever without draining; must return (dropped) instead.
  EXPECT_FALSE(session.Enqueue(MakeDelivery(1, 2)));
  session.SetDraining(false);
  EXPECT_EQ(session.stats().dropped, 1u);
  // The queued delivery is still consumable.
  Delivery d;
  EXPECT_TRUE(session.Poll(&d));
}

TEST(SubscriberSessionTest, SinkFlushesBacklogThenReceivesLive) {
  struct Recorder : MatchSink {
    std::vector<ObjectId> seen;
    void OnMatch(const Delivery& d) override { seen.push_back(d.object_id); }
  } sink;
  SubscriberSession session({/*queue_capacity=*/8,
                             BackpressurePolicy::kBlock});
  session.Enqueue(MakeDelivery(1, 1));
  session.Enqueue(MakeDelivery(1, 2));
  ASSERT_TRUE(session.SetSink(&sink).ok());
  EXPECT_EQ(session.pending(), 0u);  // backlog flushed in order
  session.Enqueue(MakeDelivery(1, 3));
  ASSERT_EQ(sink.seen.size(), 3u);
  EXPECT_EQ(sink.seen[0], 1u);
  EXPECT_EQ(sink.seen[1], 2u);
  EXPECT_EQ(sink.seen[2], 3u);
  // Pull is rejected in push mode.
  Delivery d;
  EXPECT_EQ(session.Take(&d, milliseconds(1)).code(),
            StatusCode::kFailedPrecondition);
  // Removing the sink restores pull mode.
  ASSERT_TRUE(session.SetSink(nullptr).ok());
  session.Enqueue(MakeDelivery(1, 4));
  EXPECT_TRUE(session.Poll(&d));
  EXPECT_EQ(d.object_id, 4u);
}

// ---------------------------------------------------------------------------
// DeliveryRouter: snapshot-published QueryId -> session map
// ---------------------------------------------------------------------------

TEST(DeliveryRouterTest, RoutesUnroutesAndCountsUnrouted) {
  DeliveryRouter router;
  auto session = std::make_shared<SubscriberSession>();
  router.RegisterSession(session);
  router.Route(42, session);
  EXPECT_EQ(router.Lookup(42), session);
  EXPECT_EQ(router.Lookup(43), nullptr);

  MatchResult m;
  m.query_id = 42;
  m.object_id = 7;
  router.Deliver(m, /*publish_us=*/5);
  EXPECT_EQ(session->pending(), 1u);
  m.query_id = 43;
  router.Deliver(m, /*publish_us=*/5);
  EXPECT_EQ(router.unrouted(), 1u);

  router.Unroute(42);
  EXPECT_EQ(router.Lookup(42), nullptr);
  m.query_id = 42;
  router.Deliver(m, /*publish_us=*/5);
  EXPECT_EQ(router.unrouted(), 2u);
  EXPECT_EQ(session->pending(), 1u);

  const SessionStats stats = router.AggregateStats();
  EXPECT_EQ(stats.delivered, 1u);
}

TEST(DeliveryRouterTest, ConcurrentRouteAndDeliver) {
  // Writers republish shard snapshots while delivering threads look up
  // lock-free; TSan (CI) verifies the absence of data races, this test the
  // absence of lost routes.
  DeliveryRouter router;
  auto session = std::make_shared<SubscriberSession>(
      SessionOptions{/*queue_capacity=*/1 << 20,
                     BackpressurePolicy::kBlock});
  router.RegisterSession(session);
  constexpr QueryId kQueries = 512;
  std::thread writer([&] {
    for (QueryId q = 1; q <= kQueries; ++q) router.Route(q, session);
  });
  std::atomic<uint64_t> delivered{0};
  std::thread deliverer([&] {
    MatchResult m;
    m.object_id = 1;
    for (int round = 0; round < 64; ++round) {
      for (QueryId q = 1; q <= kQueries; ++q) {
        m.query_id = q;
        router.Deliver(m, 1);
        ++delivered;
      }
    }
  });
  writer.join();
  deliverer.join();
  // Every delivery either reached the session or was counted unrouted.
  EXPECT_EQ(session->stats().delivered + router.unrouted(),
            delivered.load());
  // After the writer finished, every id resolves.
  for (QueryId q = 1; q <= kQueries; ++q) {
    EXPECT_NE(router.Lookup(q), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Facade: Status-based Subscribe / Post and the RAII Subscription handle
// ---------------------------------------------------------------------------

TEST(PS2StreamApiTest, SubscribeReportsParseErrorsAsStatus) {
  PS2Stream ps2;
  // Before Bootstrap: precondition failure, not a crash.
  EXPECT_EQ(ps2.Subscribe(nullptr, "pizza", Rect(0, 0, 1, 1)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ps2.Post(Point{0, 0}, "hi").code(),
            StatusCode::kFailedPrecondition);

  ps2.Bootstrap(WorkloadSample{});
  const auto bad = ps2.Subscribe(nullptr, "AND AND", Rect(0, 0, 1, 1));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The parser's message (not a bare sentinel) reaches the caller.
  EXPECT_NE(bad.status().message().find("expected keyword"),
            std::string::npos);
  EXPECT_EQ(ps2.num_subscriptions(), 0u);

  const auto unbalanced = ps2.Subscribe(nullptr, "(a OR b", Rect(0, 0, 1, 1));
  ASSERT_FALSE(unbalanced.ok());
  EXPECT_NE(unbalanced.status().message().find("expected ')'"),
            std::string::npos);
}

TEST(PS2StreamApiTest, SubscriptionHandleUnsubscribesOnDestruction) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  auto session = ps2.OpenSession();
  {
    auto sub = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
    ASSERT_TRUE(sub.ok());
    EXPECT_TRUE(sub->active());
    EXPECT_EQ(ps2.num_subscriptions(), 1u);
    ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "fire nearby").ok());
    Delivery d;
    ASSERT_TRUE(session->Poll(&d));
    EXPECT_EQ(d.query_id, sub->id());
  }  // ~Subscription
  EXPECT_EQ(ps2.num_subscriptions(), 0u);
  ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "fire again").ok());
  Delivery d;
  EXPECT_FALSE(session->Poll(&d));
}

TEST(PS2StreamApiTest, SubscriptionMoveAndReleaseAndCancel) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  auto sub = ps2.Subscribe(nullptr, "smoke", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());
  const QueryId id = sub->id();

  Subscription moved = std::move(*sub);
  EXPECT_EQ(moved.id(), id);
  EXPECT_TRUE(moved.active());

  // Release detaches: destruction must not unsubscribe.
  EXPECT_EQ(moved.Release(), id);
  EXPECT_FALSE(moved.active());
  moved.Cancel();  // no-op
  EXPECT_EQ(ps2.num_subscriptions(), 1u);

  // Explicit cancel by id.
  EXPECT_TRUE(ps2.Cancel(id).ok());
  EXPECT_EQ(ps2.Cancel(id).code(), StatusCode::kNotFound);
  EXPECT_EQ(ps2.num_subscriptions(), 0u);
}

TEST(PS2StreamApiTest, SubscriptionOutlivingFacadeIsANoOp) {
  Subscription orphan;
  {
    PS2Stream ps2;
    ps2.Bootstrap(WorkloadSample{});
    auto sub = ps2.Subscribe(nullptr, "late", Rect(0, 0, 1, 1));
    ASSERT_TRUE(sub.ok());
    orphan = std::move(*sub);
    EXPECT_TRUE(orphan.active());
  }  // facade destroyed first
  EXPECT_FALSE(orphan.active());
  orphan.Cancel();  // must not touch the dead facade
}

TEST(PS2StreamApiTest, DuplicateQueryIdRejected) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  STSQuery q;
  q.id = 9;
  q.expr = BoolExpr::And({ps2.vocabulary().Intern("x")});
  q.region = Rect(0, 0, 1, 1);
  auto first = ps2.Subscribe(nullptr, q);
  ASSERT_TRUE(first.ok());
  auto second = ps2.Subscribe(nullptr, q);
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
  first->Release();  // keep q subscribed past this scope (exercises Release)
}

// Satellite: malformed subscription specs surface as kInvalidArgument with a
// field-positional message — they are rejected, never silently clamped into
// a "nearby" valid spec.
TEST(PS2StreamApiTest, MalformedSpecsRejectedWithPositionalMessages) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  const Rect region(0, 0, 1, 1);

  // tau outside (0, 1] — both ends.
  for (const double tau : {0.0, -0.25, 1.5}) {
    const auto bad =
        ps2.Subscribe(nullptr, SubscriptionSpec::Similarity({"a"}, tau, region));
    ASSERT_FALSE(bad.ok()) << "tau=" << tau;
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(bad.status().message().find("spec.tau"), std::string::npos)
        << bad.status().message();
    EXPECT_NE(bad.status().message().find("(0, 1]"), std::string::npos);
  }

  // k == 0.
  const auto zero_k =
      ps2.Subscribe(nullptr, SubscriptionSpec::TopK({"a"}, 0, region));
  ASSERT_FALSE(zero_k.ok());
  EXPECT_EQ(zero_k.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(zero_k.status().message().find("spec.k"), std::string::npos);

  // Empty term set, and an empty term at a known position.
  const auto no_terms =
      ps2.Subscribe(nullptr, SubscriptionSpec::Similarity({}, 0.5, region));
  ASSERT_FALSE(no_terms.ok());
  EXPECT_EQ(no_terms.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_terms.status().message().find("spec.terms"), std::string::npos);

  const auto empty_term = ps2.Subscribe(
      nullptr, SubscriptionSpec::TopK({"a", "", "b"}, 3, region));
  ASSERT_FALSE(empty_term.ok());
  EXPECT_EQ(empty_term.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty_term.status().message().find("spec.terms[1]"),
            std::string::npos)
      << empty_term.status().message();

  // Nothing leaked into the registry.
  EXPECT_EQ(ps2.num_subscriptions(), 0u);

  // The raw-STSQuery overload gets the same validation (no clamping there
  // either): a top-k query with k = 0 bounces.
  STSQuery q;
  q.id = 0;
  q.cls = SubscriptionClass::kTopK;
  q.expr = BoolExpr::Or({ps2.vocabulary().Intern("x")});
  q.k = 0;
  q.region = region;
  const auto raw = ps2.Subscribe(nullptr, q);
  ASSERT_FALSE(raw.ok());
  EXPECT_EQ(raw.status().code(), StatusCode::kInvalidArgument);
}

TEST(PS2StreamApiTest, UpdateSubscriptionValidatesTarget) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  EXPECT_EQ(ps2.UpdateSubscription(42, Rect(0, 0, 1, 1)).code(),
            StatusCode::kNotFound);
  auto sub = ps2.Subscribe(nullptr, "move", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(ps2.UpdateSubscription(sub->id(), Rect(2, 2, 3, 3)).ok());
  EXPECT_EQ(ps2.subscriptions().at(sub->id()).region.min_x, 2.0);
}

// Satellite bugfix: RunReport::session_drops (and session_deliveries) must
// equal the sum of every session's counters across the whole run — including
// sessions destroyed before Stop() and deliveries that arrive after Close().
// The router's registry holds sessions weakly, so pre-fix a session that
// died mid-run silently vanished from the aggregate.
TEST(PS2StreamApiTest, SessionDropAccountingSurvivesSessionDestruction) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  // Vocabulary interning is control-plane-only once the engine runs; seed
  // every term this test posts so Post never grows the vocab mid-run.
  for (const char* t : {"fire", "nearby", "flood", "warning"}) {
    ps2.vocabulary().Intern(t);
  }
  ps2.Start();

  SessionOptions tiny;
  tiny.queue_capacity = 1;
  tiny.backpressure = BackpressurePolicy::kDropNewest;

  // Session A: overflow its queue, then destroy it mid-run.
  SessionStats a_stats;
  {
    auto a = ps2.OpenSession(tiny);
    auto sub = ps2.Subscribe(a, "fire", Rect(0, 0, 1, 1));
    ASSERT_TRUE(sub.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "fire nearby").ok());
    }
    ps2.engine()->Quiesce();  // every post has reached the session
    a_stats = a->stats();
    EXPECT_EQ(a_stats.delivered, 1u);  // capacity 1, never drained
    EXPECT_EQ(a_stats.dropped, 4u);
    ASSERT_TRUE(ps2.Cancel(sub->Release()).ok());
  }  // ~SubscriberSession: A's counters fold into the retired accumulator

  // Session B: overflow, Close(), then keep publishing — deliveries after
  // Close() count as dropped — and destroy it too before Stop().
  SessionStats b_stats;
  {
    auto b = ps2.OpenSession(tiny);
    auto sub = ps2.Subscribe(b, "flood", Rect(0, 0, 1, 1));
    ASSERT_TRUE(sub.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "flood warning").ok());
    }
    ps2.engine()->Quiesce();
    b->Close();
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "flood warning").ok());
    }
    ps2.engine()->Quiesce();
    b_stats = b->stats();
    EXPECT_EQ(b_stats.delivered, 1u);
    EXPECT_EQ(b_stats.dropped, 4u);  // 2 overflow + 2 after Close
    ASSERT_TRUE(ps2.Cancel(sub->Release()).ok());
  }

  const RunReport report = ps2.Stop();
  EXPECT_EQ(report.session_deliveries, a_stats.delivered + b_stats.delivered);
  EXPECT_EQ(report.session_drops, a_stats.dropped + b_stats.dropped);
}

TEST(PS2StreamApiTest, KilledServiceReportsUnavailable) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  auto sub = ps2.Subscribe(nullptr, "alive", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());
  ps2.Kill();
  EXPECT_EQ(ps2.Subscribe(nullptr, "dead", Rect(0, 0, 1, 1)).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(ps2.Post(Point{0, 0}, "dead").code(), StatusCode::kUnavailable);
  sub->Cancel();  // safe no-op against a killed service
}

}  // namespace
}  // namespace ps2
