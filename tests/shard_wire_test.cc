#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "shard/shard_map.h"
#include "shard/wire.h"
#include "text/bool_expr.h"

namespace ps2 {
namespace {

STSQuery MakeQuery(QueryId id) {
  STSQuery q;
  q.id = id;
  q.region = Rect(10.5, -3.25, 42.0, 17.75);
  q.expr = BoolExpr::Cnf({{3, 7, 11}, {2}, {5, 19}});
  return q;
}

TEST(ShardWireTest, ObjectFrameRoundTrip) {
  SpatioTextualObject o =
      SpatioTextualObject::FromTerms(42, Point{12.5, -7.25}, {9, 3, 3, 17});
  o.timestamp_us = 123456789;
  const std::string frame = EncodeObjectFrame(o, 987654321);

  Frame f;
  ASSERT_TRUE(DecodeFrame(frame, &f));
  EXPECT_EQ(f.kind, FrameKind::kObject);
  EXPECT_EQ(f.object.id, o.id);
  EXPECT_EQ(f.object.loc, o.loc);
  EXPECT_EQ(f.object.terms, o.terms);  // sorted, deduped
  EXPECT_EQ(f.object.timestamp_us, o.timestamp_us);
  EXPECT_EQ(f.publish_us, 987654321);
}

TEST(ShardWireTest, QueryFrameRoundTrip) {
  const STSQuery q = MakeQuery(77);
  for (const FrameKind kind :
       {FrameKind::kQueryInsert, FrameKind::kQueryDelete}) {
    const std::string frame = EncodeQueryFrame(kind, q);
    Frame f;
    ASSERT_TRUE(DecodeFrame(frame, &f));
    EXPECT_EQ(f.kind, kind);
    EXPECT_EQ(f.query.id, q.id);
    EXPECT_EQ(f.query.region.min_x, q.region.min_x);
    EXPECT_EQ(f.query.region.max_y, q.region.max_y);
    EXPECT_EQ(f.query.expr.clauses(), q.expr.clauses());
  }
}

TEST(ShardWireTest, MatchBatchRoundTrip) {
  std::vector<WireMatch> matches;
  for (uint64_t i = 0; i < 17; ++i) {
    WireMatch m;
    m.query_id = 1000 + i;
    m.object_id = 2000 + 3 * i;
    m.publish_us = static_cast<int64_t>(5000 + i);
    matches.push_back(m);
  }
  const std::string frame =
      EncodeMatchBatchFrame(matches.data(), matches.size());
  Frame f;
  ASSERT_TRUE(DecodeFrame(frame, &f));
  EXPECT_EQ(f.kind, FrameKind::kMatchBatch);
  ASSERT_EQ(f.matches.size(), matches.size());
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(f.matches[i].query_id, matches[i].query_id);
    EXPECT_EQ(f.matches[i].object_id, matches[i].object_id);
    EXPECT_EQ(f.matches[i].publish_us, matches[i].publish_us);
  }

  const std::string empty = EncodeMatchBatchFrame(nullptr, 0);
  ASSERT_TRUE(DecodeFrame(empty, &f));
  EXPECT_TRUE(f.matches.empty());
}

TEST(ShardWireTest, DrainFrameRoundTrip) {
  for (const FrameKind kind : {FrameKind::kDrain, FrameKind::kDrainAck}) {
    const std::string frame = EncodeDrainFrame(kind, 0xDEADBEEFCAFEULL);
    Frame f;
    ASSERT_TRUE(DecodeFrame(frame, &f));
    EXPECT_EQ(f.kind, kind);
    EXPECT_EQ(f.drain_token, 0xDEADBEEFCAFEULL);
  }
}

// --- reliable-link framing ---------------------------------------------------

TEST(ShardWireTest, ControlEnvelopeRoundTrip) {
  const STSQuery q = MakeQuery(12);
  const std::string inner = EncodeQueryFrame(FrameKind::kQueryInsert, q);
  const std::string env = EncodeControlFrame(3, 41, inner);
  Frame f;
  ASSERT_TRUE(DecodeFrame(env, &f));
  // The caller sees the inner frame's kind with the envelope metadata
  // attached — kControl itself never surfaces.
  EXPECT_TRUE(f.enveloped);
  EXPECT_EQ(f.epoch, 3u);
  EXPECT_EQ(f.seq, 41u);
  EXPECT_EQ(f.kind, FrameKind::kQueryInsert);
  EXPECT_EQ(f.query.id, q.id);
  EXPECT_EQ(f.query.expr.clauses(), q.expr.clauses());

  // The bare inner frame decodes un-enveloped.
  ASSERT_TRUE(DecodeFrame(inner, &f));
  EXPECT_FALSE(f.enveloped);
}

TEST(ShardWireTest, AckAndPingRoundTrip) {
  Frame f;
  ASSERT_TRUE(DecodeFrame(EncodeAckFrame(7, 99), &f));
  EXPECT_EQ(f.kind, FrameKind::kAck);
  EXPECT_EQ(f.epoch, 7u);
  EXPECT_EQ(f.ack_upto, 99u);
  EXPECT_FALSE(f.enveloped);

  // Cumulative ack of "nothing yet" is legal (ack_upto 0 after a reset).
  ASSERT_TRUE(DecodeFrame(EncodeAckFrame(1, 0), &f));
  EXPECT_EQ(f.ack_upto, 0u);

  const std::string ping = EncodePingFrame();
  ASSERT_TRUE(DecodeFrame(ping, &f));
  EXPECT_EQ(f.kind, FrameKind::kPing);

  // Pings ride the control link enveloped like any other control frame.
  ASSERT_TRUE(DecodeFrame(EncodeControlFrame(2, 5, ping), &f));
  EXPECT_TRUE(f.enveloped);
  EXPECT_EQ(f.kind, FrameKind::kPing);
  EXPECT_EQ(f.epoch, 2u);
  EXPECT_EQ(f.seq, 5u);
}

TEST(ShardWireTest, EnvelopesNeverNestAndAcksNeverRideInside) {
  const std::string inner = EncodeDrainFrame(FrameKind::kDrain, 5);
  const std::string env = EncodeControlFrame(1, 1, inner);
  Frame f;
  EXPECT_FALSE(DecodeFrame(EncodeControlFrame(1, 2, env), &f))
      << "control-in-control must be rejected";
  EXPECT_FALSE(DecodeFrame(EncodeControlFrame(1, 2, EncodeAckFrame(1, 1)), &f))
      << "an ack is a link-level reply, not an envelope payload";
}

TEST(ShardWireTest, ZeroEpochOrSequenceIsRejected) {
  const std::string inner = EncodePingFrame();
  Frame f;
  // Epoch and seq both start at 1; a zero of either marks a torn frame.
  EXPECT_FALSE(DecodeFrame(EncodeControlFrame(0, 1, inner), &f));
  EXPECT_FALSE(DecodeFrame(EncodeControlFrame(1, 0, inner), &f));
  EXPECT_FALSE(DecodeFrame(EncodeAckFrame(0, 3), &f));
}

TEST(ShardWireTest, ControlInnerLengthMismatchIsRejected) {
  const std::string inner = EncodeDrainFrame(FrameKind::kDrain, 9);
  const std::string env = EncodeControlFrame(4, 4, inner);
  // A corrupt inner (still inside an intact envelope CRC? no — any byte
  // flip breaks the outer CRC first, so corrupt the declared inner length
  // by re-encoding with a lie instead: truncate the inner frame itself).
  Frame f;
  EXPECT_FALSE(
      DecodeFrame(EncodeControlFrame(4, 4, inner.substr(0, inner.size() - 1)),
                  &f))
      << "truncated inner frame must fail its own CRC";
  EXPECT_FALSE(DecodeFrame(EncodeControlFrame(4, 4, std::string()), &f))
      << "empty inner is not a frame";
  // And the whole-envelope corruption sweep below covers the outer seal.
  ASSERT_TRUE(DecodeFrame(env, &f));
}

TEST(ShardWireTest, EnvelopedFramesSurviveTheCorruptionSweep) {
  const std::string frames[] = {
      EncodeControlFrame(2, 17, EncodeQueryFrame(FrameKind::kQueryInsert,
                                                 MakeQuery(3))),
      EncodeControlFrame(1, 1, EncodePingFrame()),
      EncodeAckFrame(6, 12345),
  };
  Rng rng(0xFAB);
  for (const std::string& frame : frames) {
    Frame decoded;
    ASSERT_TRUE(DecodeFrame(frame, &decoded));
    for (size_t pos = 0; pos < frame.size(); ++pos) {
      std::string corrupt = frame;
      corrupt[pos] = static_cast<char>(
          corrupt[pos] ^ static_cast<char>(1 + rng.NextBelow(255)));
      Frame f;
      EXPECT_FALSE(DecodeFrame(corrupt, &f))
          << "corruption at byte " << pos << " of a " << frame.size()
          << "-byte frame was not rejected";
    }
    for (size_t n = 0; n < frame.size(); ++n) {
      Frame f;
      EXPECT_FALSE(DecodeFrame(frame.substr(0, n), &f)) << "prefix " << n;
    }
  }
}

// Every single-byte corruption of every frame kind must be rejected: the
// CRC seeds with the kind byte, the length field is cross-checked against
// the frame size, and CRC-32 catches any burst error within one byte.
TEST(ShardWireTest, EverySingleByteCorruptionIsRejected) {
  SpatioTextualObject o =
      SpatioTextualObject::FromTerms(7, Point{1, 2}, {4, 8, 15});
  std::vector<WireMatch> matches(3);
  for (size_t i = 0; i < matches.size(); ++i) {
    matches[i].query_id = i + 1;
    matches[i].object_id = 100 + i;
    matches[i].publish_us = 42;
  }
  const std::string frames[] = {
      EncodeObjectFrame(o, 999),
      EncodeQueryFrame(FrameKind::kQueryInsert, MakeQuery(5)),
      EncodeQueryFrame(FrameKind::kQueryDelete, MakeQuery(5)),
      EncodeMatchBatchFrame(matches.data(), matches.size()),
      EncodeDrainFrame(FrameKind::kDrain, 31337),
  };
  Rng rng(0xC0FFEE);
  for (const std::string& frame : frames) {
    Frame decoded;
    ASSERT_TRUE(DecodeFrame(frame, &decoded));
    for (size_t pos = 0; pos < frame.size(); ++pos) {
      std::string corrupt = frame;
      corrupt[pos] = static_cast<char>(
          corrupt[pos] ^ static_cast<char>(1 + rng.NextBelow(255)));
      Frame f;
      EXPECT_FALSE(DecodeFrame(corrupt, &f))
          << "corruption at byte " << pos << " of a "
          << frame.size() << "-byte frame was not rejected";
    }
  }
}

TEST(ShardWireTest, TruncatedAndOversizedFramesAreRejected) {
  const std::string frame = EncodeQueryFrame(FrameKind::kQueryInsert,
                                             MakeQuery(9));
  Frame f;
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_FALSE(DecodeFrame(frame.substr(0, n), &f)) << "prefix " << n;
  }
  EXPECT_FALSE(DecodeFrame(frame + "x", &f));
  EXPECT_FALSE(DecodeFrame(std::string(), &f));
}

TEST(ShardWireTest, UnknownKindIsRejected) {
  // Re-seal a valid payload under an unknown kind id with a correct CRC:
  // rejection must come from the kind check, not the checksum.
  const std::string drain = EncodeDrainFrame(FrameKind::kDrain, 1);
  std::string forged = drain;
  forged[0] = static_cast<char>(200);
  // Fix up the CRC for the forged kind (recompute the seal manually).
  const uint8_t kind = 200;
  uint32_t crc = Crc32(&kind, 1);
  crc = Crc32(forged.data() + 9, forged.size() - 9, crc);
  std::memcpy(&forged[5], &crc, sizeof(crc));
  Frame f;
  EXPECT_FALSE(DecodeFrame(forged, &f));
}

// --- ShardMap ----------------------------------------------------------------

TEST(ShardMapTest, UniformAssignmentStripes) {
  const ShardMap map = ShardMap::Uniform(16, 4);
  EXPECT_EQ(map.num_shards, 4);
  ASSERT_EQ(map.cell_shard.size(), 16u);
  for (CellId c = 0; c < 16; ++c) {
    EXPECT_EQ(map.OwnerOf(c), static_cast<ShardId>(c % 4));
  }
  // Out-of-range cells fall back to shard 0 (routing stays total).
  EXPECT_EQ(map.OwnerOf(999), 0);
}

TEST(ShardMapTest, CodecRoundTripAndCorruption) {
  ShardMap map = ShardMap::Uniform(64, 3);
  map.version = 17;
  map.cell_shard[5] = 2;
  const std::string bytes = EncodeShardMap(map);

  ShardMap out;
  ASSERT_TRUE(DecodeShardMap(bytes, &out));
  EXPECT_EQ(out.version, 17u);
  EXPECT_EQ(out.num_shards, 3);
  EXPECT_EQ(out.cell_shard, map.cell_shard);

  Rng rng(99);
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(
        corrupt[pos] ^ static_cast<char>(1 + rng.NextBelow(255)));
    EXPECT_FALSE(DecodeShardMap(corrupt, &out)) << "byte " << pos;
  }
  for (size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(DecodeShardMap(bytes.substr(0, n), &out));
  }
}

TEST(ShardMapTest, RejectsOutOfRangeOwner) {
  ShardMap map = ShardMap::Uniform(8, 2);
  map.cell_shard[3] = 7;  // owner >= num_shards
  ShardMap out;
  EXPECT_FALSE(DecodeShardMap(EncodeShardMap(map), &out));
}

TEST(ShardMapTest, FileRoundTripIsAtomic) {
  const std::string dir =
      ::testing::TempDir() + "/ps2_shardmap_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = ShardMapPath(dir);

  ShardMap map = ShardMap::Uniform(256, 4);
  ASSERT_TRUE(WriteShardMapFile(path, map));
  // No temp residue after the atomic rename.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  ShardMap out;
  ASSERT_TRUE(ReadShardMapFile(path, &out));
  EXPECT_EQ(out.cell_shard, map.cell_shard);

  // Overwrite with a newer assignment; readers see old-or-new, never torn.
  map.cell_shard[0] = 3;
  map.version = 2;
  ASSERT_TRUE(WriteShardMapFile(path, map));
  ASSERT_TRUE(ReadShardMapFile(path, &out));
  EXPECT_EQ(out.version, 2u);
  EXPECT_EQ(out.cell_shard[0], 3);

  EXPECT_FALSE(ReadShardMapFile(dir + "/missing", &out));
  std::filesystem::remove_all(dir);
}

TEST(ShardMapTest, PublisherVersionsMonotonically) {
  ShardMapPublisher pub(ShardMap::Uniform(16, 2));
  const auto v1 = pub.Current();
  EXPECT_EQ(v1->version, 1u);

  ShardMap next = *v1;
  next.cell_shard[4] = 1;
  pub.Publish(std::move(next));
  const auto v2 = pub.Current();
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->OwnerOf(4), 1);
  // The old snapshot is immutable and still readable by in-flight routers.
  EXPECT_EQ(v1->version, 1u);
}

}  // namespace
}  // namespace ps2
