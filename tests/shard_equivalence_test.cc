// Randomized multi-shard equivalence: for interleaved
// subscribe/publish/unsubscribe schedules — with cross-shard migrations and
// per-shard kill/restore thrown in — an N-shard fabric must deliver exactly
// the match set of the single-engine facade, which must equal the
// brute-force reference. Synchronous mode keeps every run deterministic, so
// the comparison is exact set equality, not statistics.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "shard/fault_transport.h"
#include "test_util.h"

namespace ps2 {
namespace {

struct Action {
  enum Kind { kSubscribe, kUnsubscribe, kPublish } kind;
  STSQuery query;              // kSubscribe
  QueryId query_id = 0;        // kUnsubscribe
  SpatioTextualObject object;  // kPublish
};

std::vector<Action> MakeActions(const testutil::TestWorkload& w,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Action> actions;
  std::vector<QueryId> subscribed;
  size_t qi = 0, oi = 0;
  while (qi < w.sample.inserts.size() || oi < w.extra_objects.size()) {
    const double dice = rng.NextDouble();
    if (dice < 0.45 && qi < w.sample.inserts.size()) {
      Action a;
      a.kind = Action::kSubscribe;
      a.query = w.sample.inserts[qi++];
      subscribed.push_back(a.query.id);
      actions.push_back(std::move(a));
    } else if (dice < 0.55 && !subscribed.empty()) {
      Action a;
      a.kind = Action::kUnsubscribe;
      const size_t pick = rng.NextBelow(subscribed.size());
      a.query_id = subscribed[pick];
      subscribed.erase(subscribed.begin() + pick);
      actions.push_back(std::move(a));
    } else if (oi < w.extra_objects.size()) {
      Action a;
      a.kind = Action::kPublish;
      a.object = w.extra_objects[oi++];
      actions.push_back(std::move(a));
    }
  }
  return actions;
}

// Ground truth: the reference matcher applied in lockstep with the schedule.
std::vector<MatchResult> ReferenceRun(const std::vector<Action>& actions) {
  ReferenceMatcher ref;
  std::vector<MatchResult> out;
  for (const Action& a : actions) {
    switch (a.kind) {
      case Action::kSubscribe:
        ref.Insert(a.query);
        break;
      case Action::kUnsubscribe:
        ref.Delete(a.query_id);
        break;
      case Action::kPublish:
        for (const MatchResult& m : ref.Match(a.object)) out.push_back(m);
        break;
    }
  }
  return testutil::Sorted(std::move(out));
}

PS2StreamOptions Options(int num_shards) {
  PS2StreamOptions options;
  options.sharding.num_shards = num_shards;
  options.partition.num_workers = 2;
  return options;
}

void SubscribeRaw(PS2Stream& ps2, const std::shared_ptr<SubscriberSession>& s,
                  const STSQuery& q) {
  auto sub = ps2.Subscribe(s, q);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  sub->Release();
}

void Drain(const std::shared_ptr<SubscriberSession>& session,
           std::vector<MatchResult>* out) {
  Delivery d;
  while (session->Poll(&d)) {
    out->push_back(MatchResult{d.query_id, d.object_id});
  }
}

// Applies actions[begin, end) to `ps2`, collecting deliveries. When
// `migrate_every` > 0 (multi-shard only), every that-many publishes the
// just-hit cell is migrated to the next shard — the most adversarial
// moment, since its queries and traffic are live.
void RunSchedule(PS2Stream& ps2,
                 const std::shared_ptr<SubscriberSession>& session,
                 const std::vector<Action>& actions, size_t begin, size_t end,
                 size_t migrate_every, std::vector<MatchResult>* delivered) {
  size_t posts = 0;
  for (size_t i = begin; i < end; ++i) {
    const Action& a = actions[i];
    switch (a.kind) {
      case Action::kSubscribe:
        SubscribeRaw(ps2, session, a.query);
        break;
      case Action::kUnsubscribe:
        ASSERT_TRUE(ps2.Cancel(a.query_id).ok());
        break;
      case Action::kPublish: {
        ASSERT_TRUE(ps2.Post(a.object).ok());
        ++posts;
        if (migrate_every > 0 && posts % migrate_every == 0) {
          ShardedEngine& fabric = *ps2.fabric();
          const CellId cell = fabric.shard_cluster(0).router().plan().grid.CellOf(
              a.object.loc);
          const ShardId from = fabric.shard_map()->OwnerOf(cell);
          fabric.MigrateCell(cell, from,
                             (from + 1) % fabric.num_shards());
        }
        break;
      }
    }
    Drain(session, delivered);
  }
  Drain(session, delivered);
}

TEST(ShardEquivalenceTest, RandomizedSchedulesMatchAtEveryShardCount) {
  for (const uint64_t seed : {31u, 32u, 33u}) {
    const testutil::TestWorkload w = testutil::MakeWorkload(seed, 700, 220);
    const std::vector<Action> actions = MakeActions(w, seed * 1000 + 7);
    const std::vector<MatchResult> expected = ReferenceRun(actions);
    ASSERT_FALSE(expected.empty());

    for (const int shards : {1, 2, 4}) {
      PS2Stream ps2(Options(shards));
      ps2.Bootstrap(w.sample);
      SessionOptions so;
      so.queue_capacity = 1 << 16;
      auto session = ps2.OpenSession(so);
      std::vector<MatchResult> delivered;
      RunSchedule(ps2, session, actions, 0, actions.size(),
                  /*migrate_every=*/shards > 1 ? 37 : 0, &delivered);
      EXPECT_EQ(testutil::Sorted(std::move(delivered)), expected)
          << "seed " << seed << ", " << shards << " shard(s)";
      if (shards > 1) {
        EXPECT_GT(ps2.fabric()->cells_migrated(), 0u)
            << "schedule never exercised migration";
        EXPECT_EQ(ps2.fabric()->decode_errors(), 0u);
      }
    }
  }
}

// No delivery may appear twice: migration copies queries across shards, and
// the ownership handoff must never let both copies fire for one object.
TEST(ShardEquivalenceTest, MigrationNeverDuplicatesADelivery) {
  const testutil::TestWorkload w = testutil::MakeWorkload(44, 600, 200);
  const std::vector<Action> actions = MakeActions(w, 4407);
  PS2Stream ps2(Options(4));
  ps2.Bootstrap(w.sample);
  SessionOptions so;
  so.queue_capacity = 1 << 16;
  auto session = ps2.OpenSession(so);
  std::vector<MatchResult> delivered;
  RunSchedule(ps2, session, actions, 0, actions.size(), /*migrate_every=*/11,
              &delivered);
  std::unordered_set<std::string> seen;
  for (const MatchResult& m : delivered) {
    const std::string key =
        std::to_string(m.query_id) + ":" + std::to_string(m.object_id);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate delivery q" << m.query_id << " o" << m.object_id;
  }
}

// The reliable links must hide an adversarial transport completely: with
// frames randomly dropped, held back (reordered), and duplicated, every
// shard count still delivers exactly the reference match set — retries
// recover the losses, the ordered control link undoes the reordering, and
// sequence dedup plus the front window kill the duplicates.
TEST(ShardEquivalenceTest, FaultInjectedSchedulesStayExact) {
  for (const uint64_t seed : {61u, 62u}) {
    const testutil::TestWorkload w = testutil::MakeWorkload(seed, 500, 160);
    const std::vector<Action> actions = MakeActions(w, seed * 100 + 3);
    const std::vector<MatchResult> expected = ReferenceRun(actions);
    ASSERT_FALSE(expected.empty());

    for (const int shards : {1, 2, 4}) {
      FaultScheduleConfig fc;
      fc.seed = seed * 10 + static_cast<uint64_t>(shards);
      fc.drop_rate = 0.05;
      fc.delay_rate = 0.10;
      fc.max_delay_sends = 4;
      fc.duplicate_rate = 0.05;
      // Outlives the stream: the fabric holds a borrowed pointer.
      FaultInjectingTransport fault(fc);
      PS2StreamOptions options = Options(shards);
      options.sharding.transport = &fault;
      PS2Stream ps2(options);
      ps2.Bootstrap(w.sample);
      SessionOptions so;
      so.queue_capacity = 1 << 16;
      auto session = ps2.OpenSession(so);
      std::vector<MatchResult> delivered;
      RunSchedule(ps2, session, actions, 0, actions.size(),
                  /*migrate_every=*/shards > 1 ? 41 : 0, &delivered);
      EXPECT_EQ(testutil::Sorted(std::move(delivered)), expected)
          << "seed " << seed << ", " << shards << " shard(s)";
      if (shards > 1) {
        const FaultCounters c = fault.counters();
        EXPECT_GT(c.dropped + c.delayed + c.duplicated, 0u)
            << "the schedule never actually injected a fault";
        const FabricFaultStats fs = ps2.fabric()->fault_stats();
        EXPECT_GT(fs.frame_retries, 0u)
            << "drops never forced a retransmission";
        EXPECT_EQ(ps2.fabric()->decode_errors(), 0u);
        EXPECT_FALSE(ps2.fabric()->degraded())
            << "transient faults must never quarantine a shard";
      }
    }
  }
}

// Killing a live shard mid-schedule (non-durable fleet): the supervisor
// detects the missed acks on the next frame, restarts the shard from a
// registry resync, and replays the unacked frames — the final match set is
// still byte-exact against the reference.
TEST(ShardEquivalenceTest, ShardKillMidScheduleStaysExact) {
  const testutil::TestWorkload w = testutil::MakeWorkload(71, 500, 160);
  const std::vector<Action> actions = MakeActions(w, 7103);
  const std::vector<MatchResult> expected = ReferenceRun(actions);
  ASSERT_FALSE(expected.empty());

  PS2Stream ps2(Options(4));
  ps2.Bootstrap(w.sample);
  SessionOptions so;
  so.queue_capacity = 1 << 16;
  auto session = ps2.OpenSession(so);
  std::vector<MatchResult> delivered;
  const size_t half = actions.size() / 2;
  RunSchedule(ps2, session, actions, 0, half, /*migrate_every=*/0,
              &delivered);
  ps2.fabric()->KillShard(1);
  RunSchedule(ps2, session, actions, half, actions.size(),
              /*migrate_every=*/0, &delivered);
  EXPECT_EQ(testutil::Sorted(std::move(delivered)), expected);
  EXPECT_GE(ps2.fabric()->shard_restart_count(1), 1u);
  EXPECT_FALSE(ps2.fabric()->degraded());
  EXPECT_GT(ps2.fabric()->fault_stats().shard_restarts, 0u);
}

// Same drill on a durable fleet: the restart recovers the shard from its
// own WAL+checkpoint directory instead of a registry resync, and the match
// set stays exact.
TEST(ShardEquivalenceTest, DurableShardKillMidScheduleStaysExact) {
  const testutil::TestWorkload w = testutil::MakeWorkload(72, 500, 160);
  const std::vector<Action> actions = MakeActions(w, 7207);
  const std::vector<MatchResult> expected = ReferenceRun(actions);
  ASSERT_FALSE(expected.empty());
  const std::string dir =
      ::testing::TempDir() + "/ps2_shard_kill_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);

  {
    PS2StreamOptions options = Options(4);
    options.durability.enabled = true;
    options.durability.dir = dir;
    PS2Stream ps2(options);
    ps2.Bootstrap(w.sample);
    ASSERT_TRUE(ps2.durable());
    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);
    std::vector<MatchResult> delivered;
    const size_t half = actions.size() / 2;
    RunSchedule(ps2, session, actions, 0, half, /*migrate_every=*/0,
                &delivered);
    ps2.fabric()->KillShard(2);
    RunSchedule(ps2, session, actions, half, actions.size(),
                /*migrate_every=*/0, &delivered);
    EXPECT_EQ(testutil::Sorted(std::move(delivered)), expected);
    EXPECT_GE(ps2.fabric()->shard_restart_count(2), 1u);
    EXPECT_FALSE(ps2.fabric()->degraded());
  }
  std::filesystem::remove_all(dir);
}

// The durable schedule: run half, kill the whole fleet, restore from the
// fabric root, run the rest. The union of deliveries must equal the
// reference over the full schedule (objects are not replayed, so nothing is
// delivered twice; subscriptions and the migrated SHARDMAP come back
// exactly).
TEST(ShardEquivalenceTest, KillAndRestoreMidScheduleStaysEquivalent) {
  const testutil::TestWorkload w = testutil::MakeWorkload(55, 600, 200);
  const std::vector<Action> actions = MakeActions(w, 5501);
  const std::vector<MatchResult> expected = ReferenceRun(actions);
  const std::string dir =
      ::testing::TempDir() + "/ps2_shard_equiv_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);

  const size_t half = actions.size() / 2;
  std::vector<MatchResult> delivered;
  {
    PS2StreamOptions options = Options(4);
    options.durability.enabled = true;
    options.durability.dir = dir;
    PS2Stream ps2(options);
    ps2.Bootstrap(w.sample);
    ASSERT_TRUE(ps2.durable());
    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);
    RunSchedule(ps2, session, actions, 0, half, /*migrate_every=*/23,
                &delivered);
    ps2.Kill();
  }
  {
    PS2Stream ps2(Options(1));  // shard count comes from the SHARDMAP
    ASSERT_TRUE(ps2.Restore(dir));
    ASSERT_EQ(ps2.fabric()->num_shards(), 4);
    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);
    for (const auto& [id, q] : ps2.subscriptions()) {
      ps2.delivery().Route(id, session);
    }
    RunSchedule(ps2, session, actions, half, actions.size(),
                /*migrate_every=*/29, &delivered);
  }
  EXPECT_EQ(testutil::Sorted(std::move(delivered)), expected);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ps2
