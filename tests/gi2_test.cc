#include "index/gi2.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "index/reference_matcher.h"

namespace ps2 {
namespace {

class Gi2Test : public ::testing::Test {
 protected:
  Gi2Test() : grid_(Rect(0, 0, 64, 64), 4) {}

  TermId T(const std::string& s) { return vocab_.Intern(s); }

  STSQuery MakeQuery(QueryId id, std::vector<TermId> terms, Rect region,
                     bool is_or = false) {
    STSQuery q;
    q.id = id;
    q.expr = is_or ? BoolExpr::Or(std::move(terms))
                   : BoolExpr::And(std::move(terms));
    q.region = region;
    return q;
  }

  SpatioTextualObject MakeObject(ObjectId id, Point loc,
                                 std::vector<TermId> terms) {
    return SpatioTextualObject::FromTerms(id, loc, std::move(terms));
  }

  std::vector<MatchResult> Match(Gi2Index& idx,
                                 const SpatioTextualObject& o) {
    std::vector<MatchResult> out;
    idx.Match(o, &out);
    std::sort(out.begin(), out.end());
    return out;
  }

  GridSpec grid_;
  Vocabulary vocab_;
};

TEST_F(Gi2Test, BasicInsertAndMatch) {
  Gi2Index idx(grid_, &vocab_);
  idx.Insert(MakeQuery(1, {T("pizza")}, Rect(0, 0, 10, 10)));
  const auto matches =
      Match(idx, MakeObject(100, Point{5, 5}, {T("pizza"), T("good")}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].query_id, 1u);
  EXPECT_EQ(matches[0].object_id, 100u);
}

TEST_F(Gi2Test, SpatialFiltering) {
  Gi2Index idx(grid_, &vocab_);
  idx.Insert(MakeQuery(1, {T("pizza")}, Rect(0, 0, 10, 10)));
  EXPECT_TRUE(Match(idx, MakeObject(1, Point{50, 50}, {T("pizza")})).empty());
}

TEST_F(Gi2Test, TextualFiltering) {
  Gi2Index idx(grid_, &vocab_);
  idx.Insert(MakeQuery(1, {T("pizza"), T("pasta")}, Rect(0, 0, 10, 10)));
  EXPECT_TRUE(Match(idx, MakeObject(1, Point{5, 5}, {T("pizza")})).empty());
  EXPECT_EQ(
      Match(idx, MakeObject(2, Point{5, 5}, {T("pizza"), T("pasta")})).size(),
      1u);
}

TEST_F(Gi2Test, OrQueryMatchedViaAnyDisjunct) {
  Gi2Index idx(grid_, &vocab_);
  vocab_.AddCount(T("a"), 5);
  vocab_.AddCount(T("b"), 1);
  idx.Insert(MakeQuery(1, {T("a"), T("b")}, Rect(0, 0, 10, 10), true));
  EXPECT_EQ(Match(idx, MakeObject(1, Point{1, 1}, {T("a")})).size(), 1u);
  EXPECT_EQ(Match(idx, MakeObject(2, Point{1, 1}, {T("b")})).size(), 1u);
  // Object containing both must match exactly once.
  EXPECT_EQ(Match(idx, MakeObject(3, Point{1, 1}, {T("a"), T("b")})).size(),
            1u);
}

TEST_F(Gi2Test, DeleteStopsMatching) {
  Gi2Index idx(grid_, &vocab_);
  idx.Insert(MakeQuery(1, {T("x")}, Rect(0, 0, 64, 64)));
  EXPECT_EQ(idx.NumActiveQueries(), 1u);
  idx.Delete(1);
  EXPECT_EQ(idx.NumActiveQueries(), 0u);
  EXPECT_TRUE(Match(idx, MakeObject(1, Point{5, 5}, {T("x")})).empty());
}

TEST_F(Gi2Test, LazyDeletionPurgesTombstonesDuringTraversal) {
  Gi2Index idx(grid_, &vocab_);
  // Query confined to one cell so all postings are traversed by one match.
  idx.Insert(MakeQuery(1, {T("x")}, Rect(1, 1, 2, 2)));
  idx.Delete(1);
  EXPECT_EQ(idx.NumTombstones(), 1u);
  // Matching an object in the same cell with the same term purges it.
  (void)Match(idx, MakeObject(1, Point{1.5, 1.5}, {T("x")}));
  EXPECT_EQ(idx.NumTombstones(), 0u);
}

TEST_F(Gi2Test, EagerDeletionLeavesNoTombstones) {
  Gi2Index::Options opts;
  opts.lazy_deletion = false;
  Gi2Index idx(grid_, &vocab_, opts);
  idx.Insert(MakeQuery(1, {T("x")}, Rect(0, 0, 30, 30)));
  idx.Delete(1);
  EXPECT_EQ(idx.NumTombstones(), 0u);
  EXPECT_TRUE(Match(idx, MakeObject(1, Point{5, 5}, {T("x")})).empty());
}

TEST_F(Gi2Test, DeleteUnknownIdIsNoop) {
  Gi2Index idx(grid_, &vocab_);
  idx.Delete(12345);
  EXPECT_EQ(idx.NumActiveQueries(), 0u);
}

TEST_F(Gi2Test, ReinsertAfterDeleteWorks) {
  Gi2Index idx(grid_, &vocab_);
  idx.Insert(MakeQuery(1, {T("x")}, Rect(0, 0, 10, 10)));
  idx.Delete(1);
  idx.Insert(MakeQuery(1, {T("x")}, Rect(0, 0, 10, 10)));
  EXPECT_EQ(Match(idx, MakeObject(1, Point{5, 5}, {T("x")})).size(), 1u);
}

TEST_F(Gi2Test, InsertIntoCellsRestrictsScope) {
  Gi2Index idx(grid_, &vocab_);
  const STSQuery q = MakeQuery(1, {T("x")}, Rect(0, 0, 64, 64));
  const CellId cell = grid_.CellOf(Point{5, 5});
  idx.InsertIntoCells(q, {cell});
  EXPECT_EQ(Match(idx, MakeObject(1, Point{5, 5}, {T("x")})).size(), 1u);
  // An object in a different (non-indexed) cell does not match even though
  // the query region covers it — that cell belongs to another worker.
  EXPECT_TRUE(Match(idx, MakeObject(2, Point{60, 60}, {T("x")})).empty());
}

TEST_F(Gi2Test, InsertIntoNonOverlappingCellProducesNoFalseMatches) {
  // The worker trusts the dispatcher's cell list (required for clamped
  // out-of-extent routing); the final region check still prevents false
  // matches for objects in that cell but outside the query region.
  Gi2Index idx(grid_, &vocab_);
  const STSQuery q = MakeQuery(1, {T("x")}, Rect(0, 0, 3, 3));
  const CellId far_cell = grid_.CellOf(Point{60, 60});
  idx.InsertIntoCells(q, {far_cell});
  EXPECT_TRUE(Match(idx, MakeObject(1, Point{60, 60}, {T("x")})).empty());
}

TEST_F(Gi2Test, EmptyExpressionNeverIndexed) {
  Gi2Index idx(grid_, &vocab_);
  STSQuery q;
  q.id = 1;
  q.region = Rect(0, 0, 10, 10);
  idx.Insert(q);
  EXPECT_EQ(idx.NumActiveQueries(), 0u);
}

TEST_F(Gi2Test, ExtractCellMovesQueries) {
  Gi2Index idx(grid_, &vocab_);
  idx.Insert(MakeQuery(1, {T("x")}, Rect(1, 1, 2, 2)));     // one cell
  idx.Insert(MakeQuery(2, {T("x")}, Rect(0, 0, 20, 20)));   // many cells
  const CellId cell = grid_.CellOf(Point{1.5, 1.5});
  auto moved = idx.ExtractCell(cell);
  ASSERT_EQ(moved.size(), 2u);
  // Query 1 lived only in that cell: gone entirely.
  EXPECT_TRUE(Match(idx, MakeObject(1, Point{1.5, 1.5}, {T("x")})).empty());
  // Query 2 still lives in other cells.
  EXPECT_EQ(Match(idx, MakeObject(2, Point{15, 15}, {T("x")})).size(), 1u);
  EXPECT_EQ(idx.NumActiveQueries(), 1u);
  // Re-inserting the extracted cell into another index restores matching.
  Gi2Index other(grid_, &vocab_);
  for (const auto& q : moved) other.InsertIntoCells(q, {cell});
  EXPECT_EQ(Match(other, MakeObject(3, Point{1.5, 1.5}, {T("x")})).size(),
            2u);
}

TEST_F(Gi2Test, CellStatsTrackQueriesAndObjects) {
  Gi2Index idx(grid_, &vocab_);
  idx.Insert(MakeQuery(1, {T("x")}, Rect(1, 1, 2, 2)));
  const CellId cell = grid_.CellOf(Point{1.5, 1.5});
  auto stats = idx.StatsFor(cell);
  EXPECT_EQ(stats.num_queries, 1u);
  EXPECT_GT(stats.query_bytes, 0u);
  EXPECT_EQ(stats.objects_seen, 0u);
  (void)Match(idx, MakeObject(1, Point{1.5, 1.5}, {T("y")}));
  stats = idx.StatsFor(cell);
  EXPECT_EQ(stats.objects_seen, 1u);
  idx.ResetObjectCounters();
  EXPECT_EQ(idx.StatsFor(cell).objects_seen, 0u);
}

TEST_F(Gi2Test, MemoryAccountingMonotone) {
  Gi2Index idx(grid_, &vocab_);
  const size_t before = idx.MemoryBytes();
  for (int i = 0; i < 50; ++i) {
    idx.Insert(MakeQuery(i + 1, {T("t" + std::to_string(i))},
                         Rect(i % 8, i % 8, i % 8 + 5.0, i % 8 + 5.0)));
  }
  EXPECT_GT(idx.MemoryBytes(), before);
}

// Randomized equivalence with the brute-force reference under churn.
class Gi2RandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Gi2RandomizedTest, MatchesReferenceUnderChurn) {
  const GridSpec grid(Rect(0, 0, 100, 100), 5);
  Vocabulary vocab;
  std::vector<TermId> terms;
  for (int i = 0; i < 40; ++i) {
    const TermId t = vocab.Intern("w" + std::to_string(i));
    vocab.AddCount(t, 1 + i * 3);
    terms.push_back(t);
  }
  Gi2Index idx(grid, &vocab);
  ReferenceMatcher ref;
  Rng rng(GetParam());
  QueryId next_id = 1;
  std::vector<QueryId> live;
  for (int step = 0; step < 2000; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.25) {
      // Insert a random query (1-3 terms, AND or OR).
      std::vector<TermId> qterms;
      const int k = 1 + rng.NextBelow(3);
      for (int i = 0; i < k; ++i) {
        qterms.push_back(terms[rng.NextBelow(terms.size())]);
      }
      const double x = rng.NextUniform(0, 90);
      const double y = rng.NextUniform(0, 90);
      STSQuery q;
      q.id = next_id++;
      q.expr = rng.NextBernoulli(0.4) ? BoolExpr::Or(qterms)
                                      : BoolExpr::And(qterms);
      q.region = Rect(x, y, x + rng.NextUniform(1, 20),
                      y + rng.NextUniform(1, 20));
      idx.Insert(q);
      ref.Insert(q);
      live.push_back(q.id);
    } else if (dice < 0.35 && !live.empty()) {
      const size_t i = rng.NextBelow(live.size());
      idx.Delete(live[i]);
      ref.Delete(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else {
      std::vector<TermId> oterms;
      const int k = 1 + rng.NextBelow(6);
      for (int i = 0; i < k; ++i) {
        oterms.push_back(terms[rng.NextBelow(terms.size())]);
      }
      const SpatioTextualObject o = SpatioTextualObject::FromTerms(
          step, Point{rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
          oterms);
      std::vector<MatchResult> got;
      idx.Match(o, &got);
      auto want = ref.Match(o);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gi2RandomizedTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ps2
