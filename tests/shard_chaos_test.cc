// Chaos soak: a randomized subscribe/publish/unsubscribe schedule with
// live-cell migrations, repeated shard kills, and an adversarial transport
// (drops, delays, duplicates) all running at once. Synchronous mode keeps
// the run deterministic for a given seed, so the invariants are exact:
// every delivery matches the brute-force reference, nothing arrives twice,
// no frame is ever mis-decoded, and the fleet ends healthy.
//
// CI runs this under ASan+UBSan. The seed is printed on every run; to
// reproduce a failure locally:
//
//   PS2_CHAOS_SEED=<printed seed> ./ps2_tests --gtest_filter='*Chaos*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "shard/fault_transport.h"
#include "test_util.h"

namespace ps2 {
namespace {

uint64_t ChaosSeed(uint64_t fallback) {
  const char* env = std::getenv("PS2_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

struct Action {
  enum Kind { kSubscribe, kUnsubscribe, kPublish } kind;
  STSQuery query;
  QueryId query_id = 0;
  SpatioTextualObject object;
};

std::vector<Action> MakeActions(const testutil::TestWorkload& w,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Action> actions;
  std::vector<QueryId> subscribed;
  size_t qi = 0, oi = 0;
  while (qi < w.sample.inserts.size() || oi < w.extra_objects.size()) {
    const double dice = rng.NextDouble();
    if (dice < 0.45 && qi < w.sample.inserts.size()) {
      Action a;
      a.kind = Action::kSubscribe;
      a.query = w.sample.inserts[qi++];
      subscribed.push_back(a.query.id);
      actions.push_back(std::move(a));
    } else if (dice < 0.55 && !subscribed.empty()) {
      Action a;
      a.kind = Action::kUnsubscribe;
      const size_t pick = rng.NextBelow(subscribed.size());
      a.query_id = subscribed[pick];
      subscribed.erase(subscribed.begin() + pick);
      actions.push_back(std::move(a));
    } else if (oi < w.extra_objects.size()) {
      Action a;
      a.kind = Action::kPublish;
      a.object = w.extra_objects[oi++];
      actions.push_back(std::move(a));
    }
  }
  return actions;
}

std::vector<MatchResult> ReferenceRun(const std::vector<Action>& actions) {
  ReferenceMatcher ref;
  std::vector<MatchResult> out;
  for (const Action& a : actions) {
    switch (a.kind) {
      case Action::kSubscribe:
        ref.Insert(a.query);
        break;
      case Action::kUnsubscribe:
        ref.Delete(a.query_id);
        break;
      case Action::kPublish:
        for (const MatchResult& m : ref.Match(a.object)) out.push_back(m);
        break;
    }
  }
  return testutil::Sorted(std::move(out));
}

TEST(ShardChaosTest, SoakSurvivesKillsFaultsAndMigrationsExactly) {
  for (const uint64_t base : {211u, 212u}) {
    const uint64_t seed = ChaosSeed(base);
    std::cout << "[ CHAOS  ] seed " << seed
              << " (override with PS2_CHAOS_SEED)" << std::endl;
    const testutil::TestWorkload w = testutil::MakeWorkload(seed, 400, 150);
    const std::vector<Action> actions = MakeActions(w, seed * 1000 + 13);
    const std::vector<MatchResult> expected = ReferenceRun(actions);
    ASSERT_FALSE(expected.empty());

    FaultScheduleConfig fc;
    fc.seed = seed;
    fc.drop_rate = 0.03;
    fc.delay_rate = 0.08;
    fc.max_delay_sends = 4;
    fc.duplicate_rate = 0.03;
    FaultInjectingTransport fault(fc);

    PS2StreamOptions options;
    options.sharding.num_shards = 4;
    options.partition.num_workers = 2;
    options.sharding.retry.max_attempts = 6;
    options.sharding.retry.base_backoff_us = 50;
    options.sharding.retry.max_backoff_us = 400;
    options.sharding.transport = &fault;
    PS2Stream ps2(options);
    ps2.Bootstrap(w.sample);
    SessionOptions so;
    so.queue_capacity = 1 << 16;
    auto session = ps2.OpenSession(so);

    Rng chaos(seed ^ 0xC4405ULL);
    std::vector<MatchResult> delivered;
    size_t posts = 0;
    for (const Action& a : actions) {
      switch (a.kind) {
        case Action::kSubscribe: {
          auto sub = ps2.Subscribe(session, a.query);
          ASSERT_TRUE(sub.ok()) << sub.status().ToString();
          sub->Release();
          break;
        }
        case Action::kUnsubscribe: {
          const Status st = ps2.Cancel(a.query_id);
          ASSERT_TRUE(st.ok()) << st.ToString();
          break;
        }
        case Action::kPublish: {
          const Status st = ps2.Post(a.object);
          ASSERT_TRUE(st.ok()) << st.ToString();
          ++posts;
          ShardedEngine& fabric = *ps2.fabric();
          if (posts % 31 == 0) {
            // Kill a random shard: the next frame to it must detect the
            // silence, restart it, and replay — never quarantine.
            fabric.KillShard(static_cast<ShardId>(
                chaos.NextBelow(static_cast<uint64_t>(fabric.num_shards()))));
          }
          if (posts % 17 == 0) {
            const CellId cell =
                fabric.shard_cluster(0).router().plan().grid.CellOf(
                    a.object.loc);
            const ShardId from = fabric.shard_map()->OwnerOf(cell);
            fabric.MigrateCell(cell, from,
                               (from + 1) % fabric.num_shards());
          }
          break;
        }
      }
      Delivery d;
      while (session->Poll(&d)) {
        delivered.push_back(MatchResult{d.query_id, d.object_id});
      }
    }
    // Settle: a final health sweep restarts any shard killed after its last
    // traffic, and the probe's acked round trip flushes the links.
    const Status health = ps2.Health();
    EXPECT_TRUE(health.ok()) << health.ToString();
    Delivery d;
    while (session->Poll(&d)) {
      delivered.push_back(MatchResult{d.query_id, d.object_id});
    }

    // Exactness under chaos: the reference match set, nothing more,
    // nothing less, nothing twice.
    std::unordered_set<std::string> seen;
    for (const MatchResult& m : delivered) {
      const std::string key =
          std::to_string(m.query_id) + ":" + std::to_string(m.object_id);
      EXPECT_TRUE(seen.insert(key).second)
          << "duplicate delivery q" << m.query_id << " o" << m.object_id
          << " (seed " << seed << ")";
    }
    EXPECT_EQ(testutil::Sorted(std::move(delivered)), expected)
        << "seed " << seed;

    ShardedEngine& fabric = *ps2.fabric();
    EXPECT_FALSE(fabric.degraded()) << "seed " << seed;
    EXPECT_EQ(fabric.decode_errors(), 0u) << "seed " << seed;
    const FabricFaultStats fs = fabric.fault_stats();
    EXPECT_GT(fs.shard_restarts, 0u) << "the soak never exercised a kill";
    EXPECT_GT(fs.frame_retries, 0u) << "the soak never exercised a retry";
    const FaultCounters fcnt = fault.counters();
    std::cout << "[ CHAOS  ] seed " << seed << ": sends=" << fcnt.sends
              << " dropped=" << fcnt.dropped << " delayed=" << fcnt.delayed
              << " duplicated=" << fcnt.duplicated
              << " restarts=" << fs.shard_restarts
              << " retries=" << fs.frame_retries
              << " dup_suppressed=" << fs.dup_suppressed << std::endl;
  }
}

}  // namespace
}  // namespace ps2
