#include "runtime/ps2stream.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

TEST(PS2StreamTest, QuickstartFlow) {
  PS2StreamOptions opts;
  opts.partition.num_workers = 4;
  PS2Stream ps2(opts);

  // Bootstrap from a tiny sample.
  auto w = testutil::MakeWorkload(801, 500, 100);
  WorkloadSample sample = w.sample;
  // Re-express the sample in the facade's own vocabulary via text terms;
  // simplest path: bootstrap with locations only (partitioning still
  // works; vocabulary fills as traffic arrives).
  ps2.Bootstrap(sample);
  ASSERT_TRUE(ps2.bootstrapped());

  auto session = ps2.OpenSession();
  auto sub = ps2.Subscribe(session, "pizza AND downtown", Rect(0, 0, 50, 50));
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(ps2.num_subscriptions(), 1u);

  ASSERT_TRUE(ps2.Post(Point{10, 10}, "best pizza in downtown!").ok());
  Delivery d;
  ASSERT_TRUE(session->Poll(&d));
  EXPECT_EQ(d.query_id, sub->id());
  EXPECT_FALSE(session->Poll(&d));

  // Outside the region: no match.
  ASSERT_TRUE(ps2.Post(Point{90, 90}, "pizza downtown").ok());
  EXPECT_FALSE(session->Poll(&d));
  // Missing a keyword: no match.
  ASSERT_TRUE(ps2.Post(Point{10, 10}, "pizza is great").ok());
  EXPECT_FALSE(session->Poll(&d));

  ASSERT_TRUE(ps2.Cancel(sub->Release()).ok());
  EXPECT_EQ(ps2.num_subscriptions(), 0u);
  ASSERT_TRUE(ps2.Post(Point{10, 10}, "pizza downtown").ok());
  EXPECT_FALSE(session->Poll(&d));
}

TEST(PS2StreamTest, InvalidExpressionRejected) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  const auto sub = ps2.Subscribe(nullptr, "AND AND", Rect(0, 0, 1, 1));
  EXPECT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ps2.num_subscriptions(), 0u);
}

TEST(PS2StreamTest, OrExpressionMatchesEitherKeyword) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  auto session = ps2.OpenSession();
  auto sub = ps2.Subscribe(session, "fire OR smoke", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());
  Delivery d;
  ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "I smell smoke").ok());
  EXPECT_TRUE(session->Poll(&d));
  ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "forest fire nearby").ok());
  EXPECT_TRUE(session->Poll(&d));
  ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "all clear").ok());
  EXPECT_FALSE(session->Poll(&d));
}

TEST(PS2StreamTest, BootstrapWithRealSampleUsesPartitioner) {
  Vocabulary scratch;
  SyntheticCorpus corpus(CorpusConfig::UkPreset(), &scratch);
  // Build a sample stream, then bootstrap a hybrid-partitioned service.
  PS2StreamOptions opts;
  opts.partitioner = "hybrid";
  opts.partition.num_workers = 4;
  PS2Stream ps2(opts);
  WorkloadSample sample;
  Rng rng(5);
  for (int i = 0; i < 800; ++i) {
    // Objects via the facade vocabulary.
    const Point loc = corpus.SampleLocation(rng);
    sample.objects.push_back(SpatioTextualObject::FromTerms(
        i + 1, loc,
        {ps2.vocabulary().Intern("w" + std::to_string(rng.NextBelow(50)))}));
  }
  for (int i = 0; i < 200; ++i) {
    STSQuery q;
    q.id = i + 1;
    q.expr = BoolExpr::And(
        {ps2.vocabulary().Intern("w" + std::to_string(rng.NextBelow(50)))});
    q.region = Rect::Centered(corpus.SampleLocation(rng), 1.0, 1.0);
    sample.inserts.push_back(q);
  }
  ps2.Bootstrap(sample);
  EXPECT_EQ(ps2.cluster().num_workers(), 4);
}

TEST(PS2StreamTest, AutoAdjustTriggersOnImbalance) {
  PS2StreamOptions opts;
  opts.partitioner = "unknown-so-uniform";  // uniform cell assignment
  opts.partition.num_workers = 4;
  opts.auto_adjust = true;
  opts.adjust_check_interval = 500;
  opts.adjust.sigma = 1.2;
  PS2Stream ps2(opts);
  // Bootstrap over a known extent.
  WorkloadSample seed;
  seed.objects.push_back(
      SpatioTextualObject::FromTerms(1, Point{0, 0}, {0}));
  seed.objects.push_back(
      SpatioTextualObject::FromTerms(2, Point{100, 100}, {0}));
  ps2.Bootstrap(seed);
  // Hammer one tiny corner so one worker absorbs everything.
  const TermId hot = ps2.vocabulary().Intern("hot");
  (void)hot;
  for (int i = 0; i < 50; ++i) {
    auto sub = ps2.Subscribe(nullptr, "hot", Rect(0, 0, 2, 2));
    ASSERT_TRUE(sub.ok());
    sub->Release();  // keep the subscription live for the whole run
  }
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(ps2.Post(Point{1, 1}, "hot stuff").ok());
  }
  EXPECT_FALSE(ps2.adjustments().empty());
}

}  // namespace
}  // namespace ps2
