// Multi-tenant soak harness: randomized subscribe / unsubscribe / publish
// schedules under quota pressure, overload sampling, and kill/recover
// cycles — the long-running companion to the targeted quota and chaos
// tests. Synchronous mode keeps every run deterministic for a given seed,
// so the invariants are exact: a well-behaved tenant's deliveries match
// the brute-force reference over the *admitted* operation stream, byte for
// byte, no matter how hard a greedy co-tenant hammers the quotas.
//
// CI runs this under ASan+UBSan and TSan. Reproduce a failure locally:
//
//   PS2_CHAOS_SEED=<printed seed> ./ps2_tests --gtest_filter='*Soak*'
//
// PS2_SOAK_ROUNDS (default 2) scales the number of rounds for scheduled
// long runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "index/reference_matcher.h"
#include "runtime/ps2stream.h"
#include "test_util.h"

namespace ps2 {
namespace {

uint64_t ChaosSeed(uint64_t fallback) {
  const char* env = std::getenv("PS2_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

int SoakRounds(int fallback) {
  const char* env = std::getenv("PS2_SOAK_ROUNDS");
  if (env != nullptr && *env != '\0') {
    return static_cast<int>(std::strtol(env, nullptr, 10));
  }
  return fallback;
}

std::vector<MatchResult> Drain(
    const std::shared_ptr<SubscriberSession>& session) {
  std::vector<MatchResult> out;
  Delivery d;
  while (session->Poll(&d)) {
    out.push_back(MatchResult{d.query_id, d.object_id});
  }
  return out;
}

// One greedy tenant (over-quota subscribes, publish bursts far past its
// token bucket) sharing a facade with one well-behaved tenant. The greedy
// tenant must be the only one to see kResourceExhausted, and the
// well-behaved tenant's deliveries must exactly equal the reference run
// over whatever the facade actually admitted.
TEST(QuotaSoakTest, GreedyTenantCannotStarveWellBehavedTenant) {
  const int rounds = SoakRounds(2);
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = ChaosSeed(3100 + static_cast<uint64_t>(round));
    std::cout << "[ SOAK   ] round " << round << " seed " << seed
              << " (override with PS2_CHAOS_SEED)" << std::endl;
    const testutil::TestWorkload w = testutil::MakeWorkload(seed, 500, 200);
    Rng rng(seed * 997 + 5);

    PS2StreamOptions options;
    options.quota.max_subscriptions_per_tenant = 8;
    options.quota.publish_rate_per_sec = 1.0;  // refill is negligible here
    options.quota.publish_burst = 100.0;
    options.overload.enabled = true;  // sampled, but never tripped: queues
    options.overload.check_interval = 16;  // are drained every iteration
    PS2Stream ps2(options);
    ps2.Bootstrap(w.sample);

    SessionOptions good_opts;
    good_opts.tenant = "good";
    good_opts.queue_capacity = 1 << 16;
    SessionOptions greedy_opts;
    greedy_opts.tenant = "greedy";
    greedy_opts.queue_capacity = 1 << 16;
    auto good = ps2.OpenSession(good_opts);
    auto greedy = ps2.OpenSession(greedy_opts);

    // The reference sees exactly what the facade admitted.
    ReferenceMatcher ref;
    std::unordered_map<QueryId, bool> owner_is_good;
    std::vector<QueryId> good_live;
    std::vector<MatchResult> expected_good, expected_greedy;
    std::vector<MatchResult> got_good, got_greedy;
    uint64_t greedy_sub_rejections = 0, greedy_rate_rejections = 0;
    size_t good_posts = 0;

    size_t qi = 0, oi = 0;
    while (qi < w.sample.inserts.size() || oi < w.extra_objects.size()) {
      const double dice = rng.NextDouble();
      if (dice < 0.30 && qi < w.sample.inserts.size()) {
        // Subscribe: greedy grabs aggressively (3 of 4 draws), so it runs
        // into its per-tenant ceiling; the well-behaved tenant stays under.
        const STSQuery& q = w.sample.inserts[qi++];
        // Well-behaved means staying deliberately under the ceiling (8).
        const bool is_good = rng.NextBelow(4) == 0 && good_live.size() < 7;
        auto sub = ps2.Subscribe(is_good ? good : greedy, q);
        if (sub.ok()) {
          sub->Release();
          ref.Insert(q);
          owner_is_good[q.id] = is_good;
          if (is_good) good_live.push_back(q.id);
        } else {
          EXPECT_EQ(sub.status().code(), StatusCode::kResourceExhausted);
          EXPECT_NE(sub.status().message().find(
                        "quota.max_subscriptions_per_tenant"),
                    std::string::npos)
              << sub.status().message();
          ASSERT_FALSE(is_good)
              << "well-behaved tenant was rejected: "
              << sub.status().message() << " (seed " << seed << ")";
          ++greedy_sub_rejections;
        }
      } else if (dice < 0.36 && !good_live.empty()) {
        // The well-behaved tenant occasionally rotates a subscription out.
        const size_t pick = rng.NextBelow(good_live.size());
        const QueryId id = good_live[pick];
        good_live.erase(good_live.begin() + pick);
        ASSERT_TRUE(ps2.Cancel(id).ok());
        ref.Delete(id);
        owner_is_good.erase(id);
      } else if (oi < w.extra_objects.size()) {
        // Publish: greedy posts 5 of 6 objects, bursting past its bucket;
        // the well-behaved tenant's pace stays well under its own burst.
        const SpatioTextualObject& o = w.extra_objects[oi++];
        const bool is_good = rng.NextBelow(6) == 0 && good_posts < 75;
        const Status st = ps2.Post(is_good ? "good" : "greedy", o);
        if (is_good) {
          ASSERT_TRUE(st.ok())
              << "well-behaved tenant was rejected: " << st.ToString()
              << " (seed " << seed << ")";
          ++good_posts;
        }
        if (st.ok()) {
          for (const MatchResult& m : ref.Match(o)) {
            const auto it = owner_is_good.find(m.query_id);
            if (it == owner_is_good.end()) continue;  // sessionless
            (it->second ? expected_good : expected_greedy).push_back(m);
          }
        } else {
          EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
          EXPECT_NE(st.message().find("quota.publish_rate_per_sec"),
                    std::string::npos)
              << st.message();
          ++greedy_rate_rejections;
        }
      }
      for (const MatchResult& m : Drain(good)) got_good.push_back(m);
      for (const MatchResult& m : Drain(greedy)) got_greedy.push_back(m);
    }

    // The soak must actually have exercised the pressure.
    EXPECT_GT(greedy_sub_rejections, 0u) << "seed " << seed;
    EXPECT_GT(greedy_rate_rejections, 0u) << "seed " << seed;
    ASSERT_FALSE(expected_good.empty()) << "seed " << seed;

    // Exactness: the well-behaved tenant saw precisely the reference match
    // set of the admitted stream — the greedy tenant's pressure cost it
    // nothing. The greedy tenant's *admitted* subscriptions also behave
    // normally; only its over-quota excess was refused.
    EXPECT_EQ(testutil::Sorted(std::move(got_good)),
              testutil::Sorted(std::move(expected_good)))
        << "seed " << seed;
    EXPECT_EQ(testutil::Sorted(std::move(got_greedy)),
              testutil::Sorted(std::move(expected_greedy)))
        << "seed " << seed;

    // The counters surface the pressure.
    const RunReport snap = ps2.MetricsSnapshot();
    EXPECT_EQ(snap.quota_rejections, greedy_sub_rejections);
    EXPECT_EQ(snap.rate_limited, greedy_rate_rejections);
    EXPECT_EQ(ps2.quota().total_live(),
              static_cast<uint64_t>(ps2.num_subscriptions()));
  }
}

// Kill/recover under quotas: a durable service is hard-killed at a random
// point, restored, and must (a) re-charge every recovered subscription so
// the quota gauge stays truthful, (b) keep enforcing admission after
// recovery, and (c) release restored charges on Cancel. Deliveries after
// the restore are exact against the reference over the recovered
// subscription set.
TEST(QuotaSoakTest, KillRestoreSoakKeepsQuotaAccountingExact) {
  const int rounds = SoakRounds(2);
  const testutil::TestWorkload w = testutil::MakeWorkload(4100, 600, 180);
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = ChaosSeed(4200 + static_cast<uint64_t>(round));
    std::cout << "[ SOAK   ] kill/restore round " << round << " seed "
              << seed << " (override with PS2_CHAOS_SEED)" << std::endl;
    const std::string dir =
        ::testing::TempDir() + "/ps2_soak_restore_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    Rng rng(seed);

    PS2StreamOptions opts;
    opts.durability.enabled = true;
    opts.durability.dir = dir;
    opts.quota.max_subscriptions_per_tenant = 64;

    std::unordered_map<QueryId, STSQuery> expected_live;
    size_t oi = 0;
    {
      PS2Stream ps2(opts);
      ps2.Bootstrap(w.sample);
      ASSERT_TRUE(ps2.durable());
      const size_t schedule =
          20 + rng.NextBelow(w.sample.inserts.size() - 20);
      for (size_t i = 0; i < schedule; ++i) {
        const double dice = rng.NextDouble();
        if (dice < 0.55) {
          const STSQuery& q = w.sample.inserts[i];
          auto sub = ps2.Subscribe(nullptr, q);
          ASSERT_TRUE(sub.ok()) << sub.status().ToString();
          sub->Release();
          expected_live[q.id] = q;
        } else if (dice < 0.65 && !expected_live.empty()) {
          const QueryId id = expected_live.begin()->first;
          ASSERT_TRUE(ps2.Cancel(id).ok());
          expected_live.erase(id);
        } else if (oi < w.extra_objects.size()) {
          ASSERT_TRUE(ps2.Post(w.extra_objects[oi++]).ok());
        }
      }
      ASSERT_GE(expected_live.size(), 2u) << "seed " << seed;
      EXPECT_EQ(ps2.quota().total_live(), expected_live.size());
      ps2.Kill();  // no Stop(), no final checkpoint
    }

    // Cap the restored service's total at exactly the recovered count:
    // recovery must re-charge every subscription (never reject one), and
    // the very next admission must find the quota exhausted.
    PS2StreamOptions ropts;
    ropts.quota.max_total_subscriptions = expected_live.size();
    PS2Stream recovered(ropts);
    ASSERT_TRUE(recovered.Restore(dir)) << "seed " << seed;
    ASSERT_EQ(recovered.num_subscriptions(), expected_live.size());
    EXPECT_EQ(recovered.quota().total_live(), expected_live.size());

    auto session = recovered.OpenSession({.queue_capacity = 1 << 16});
    for (const auto& [id, q] : recovered.subscriptions()) {
      recovered.delivery().Route(id, session);
    }

    // (b) enforcement continues: the restored charges fill the quota.
    auto over = recovered.Subscribe(session, "soak",
                                    Rect(0, 0, 1, 1));
    ASSERT_FALSE(over.ok());
    EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(
        over.status().message().find("quota.max_total_subscriptions"),
        std::string::npos)
        << over.status().message();

    // (c) restored charges are refundable: cancel one, and the slot opens.
    const QueryId victim = recovered.subscriptions().begin()->first;
    ASSERT_TRUE(recovered.Cancel(victim).ok());
    expected_live.erase(victim);
    EXPECT_EQ(recovered.quota().total_live(), expected_live.size());
    auto refill = recovered.Subscribe(nullptr, "soak",
                                      Rect(0, 0, 1, 1));
    ASSERT_TRUE(refill.ok()) << refill.status().ToString();
    ASSERT_TRUE(recovered.Cancel(refill->id()).ok());
    refill->Release();

    // (a)+exactness: post the rest of the stream; deliveries match the
    // reference over the recovered live set.
    ReferenceMatcher ref;
    for (const auto& [id, q] : expected_live) ref.Insert(q);
    std::vector<MatchResult> expected, got;
    for (; oi < w.extra_objects.size(); ++oi) {
      const SpatioTextualObject& o = w.extra_objects[oi];
      ASSERT_TRUE(recovered.Post(o).ok());
      for (const MatchResult& m : ref.Match(o)) expected.push_back(m);
      for (const MatchResult& m : Drain(session)) got.push_back(m);
    }
    EXPECT_EQ(testutil::Sorted(std::move(got)),
              testutil::Sorted(std::move(expected)))
        << "seed " << seed;

    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace ps2
