#include "adjust/migration.h"

#include <gtest/gtest.h>

#include <numeric>

namespace ps2 {
namespace {

std::vector<MigratableCell> RandomCells(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<MigratableCell> cells;
  cells.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    MigratableCell c;
    c.cell = static_cast<CellId>(i);
    c.load = rng.NextUniform(1.0, 100.0);
    c.size = rng.NextUniform(100.0, 10000.0);
    cells.push_back(c);
  }
  return cells;
}

double TotalLoadOf(const std::vector<MigratableCell>& cells) {
  double s = 0;
  for (const auto& c : cells) s += c.load;
  return s;
}

class SolverFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(SolverFeasibilityTest, MeetsLoadRequirement) {
  const auto [algo, seed] = GetParam();
  const auto cells = RandomCells(60, seed);
  const double total = TotalLoadOf(cells);
  Rng rng(seed + 1);
  for (const double frac : {0.1, 0.3, 0.6}) {
    const double tau = total * frac;
    const auto sel = SelectCells(algo, cells, tau, rng);
    EXPECT_GE(sel.total_load, tau) << algo;
    EXPECT_EQ(sel.algorithm, algo);
    // Selected cells are distinct members of the input.
    std::set<CellId> seen(sel.cells.begin(), sel.cells.end());
    EXPECT_EQ(seen.size(), sel.cells.size());
    EXPECT_GE(sel.selection_ms, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, SolverFeasibilityTest,
    ::testing::Combine(::testing::Values("DP", "GR", "SI", "RA"),
                       ::testing::Values<uint64_t>(1, 2, 3)));

TEST(SolverTest, InfeasibleTauTakesEverything) {
  const auto cells = RandomCells(10, 9);
  const double total = TotalLoadOf(cells);
  Rng rng(1);
  for (const char* algo : {"DP", "GR", "SI", "RA"}) {
    const auto sel = SelectCells(algo, cells, total * 2, rng);
    EXPECT_EQ(sel.cells.size(), cells.size()) << algo;
  }
}

TEST(SolverTest, ZeroTauSelectsCheaply) {
  const auto cells = RandomCells(10, 11);
  const auto gr = SelectCellsGR(cells, 0.0);
  // Any non-negative-load selection meeting tau=0 instantly: GR returns the
  // single cheapest completer.
  EXPECT_LE(gr.cells.size(), 1u);
}

// DP is (resolution-)optimal: never worse than GR, which is never much
// worse than SI/RA on random instances.
TEST(SolverTest, CostOrderingDpLeGr) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const auto cells = RandomCells(40, seed * 13);
    const double tau = TotalLoadOf(cells) * 0.35;
    const auto dp = SelectCellsDP(cells, tau, /*size_resolution=*/16.0);
    const auto gr = SelectCellsGR(cells, tau);
    EXPECT_LE(dp.total_size, gr.total_size * 1.01) << "seed " << seed;
  }
}

TEST(SolverTest, GrBeatsBaselinesOnAverage) {
  double gr_total = 0, si_total = 0, ra_total = 0;
  Rng rng(5);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const auto cells = RandomCells(50, seed * 7);
    const double tau = TotalLoadOf(cells) * 0.3;
    gr_total += SelectCellsGR(cells, tau).total_size;
    si_total += SelectCellsSI(cells, tau).total_size;
    ra_total += SelectCellsRA(cells, tau, rng).total_size;
  }
  EXPECT_LT(gr_total, si_total);
  EXPECT_LT(gr_total, ra_total);
}

TEST(SolverTest, DpKnapsackExactOnTinyInstance) {
  // Cells: (load, size) = (5, 10), (5, 10), (9, 25). tau = 10.
  // Optimal: the two small cells, size 20 (single big cell has load 9 < 10).
  std::vector<MigratableCell> cells = {
      {0, 5, 10}, {1, 5, 10}, {2, 9, 25}};
  const auto dp = SelectCellsDP(cells, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(dp.total_size, 20.0);
  EXPECT_EQ(dp.cells.size(), 2u);
}

TEST(SolverTest, GrRelativeCostCounterExample) {
  // GR is a heuristic: the greedy prefix may be beaten by a single cell.
  // cells: A(load 6, size 2) rel 0.33; B(load 5, size 5) rel 1.0.
  // tau = 10: GR accumulates A (6 < 10), B completes: {A, B} size 7.
  std::vector<MigratableCell> cells = {{0, 6, 2}, {1, 5, 5}};
  const auto gr = SelectCellsGR(cells, 10.0);
  EXPECT_GE(gr.total_load, 10.0);
  EXPECT_DOUBLE_EQ(gr.total_size, 7.0);
}

TEST(SolverTest, ZeroLoadCellsSortLast) {
  std::vector<MigratableCell> cells = {
      {0, 0.0, 1.0}, {1, 10.0, 5.0}, {2, 0.0, 1.0}};
  const auto gr = SelectCellsGR(cells, 5.0);
  ASSERT_EQ(gr.cells.size(), 1u);
  EXPECT_EQ(gr.cells[0], 1u);
}

TEST(SolverTest, EmptyInput) {
  std::vector<MigratableCell> none;
  Rng rng(1);
  for (const char* algo : {"DP", "GR", "SI", "RA"}) {
    const auto sel = SelectCells(algo, none, 5.0, rng);
    EXPECT_TRUE(sel.cells.empty()) << algo;
  }
}

TEST(SolverTest, RaIsSeedDeterministic) {
  const auto cells = RandomCells(30, 21);
  Rng rng1(9), rng2(9);
  const auto a = SelectCellsRA(cells, TotalLoadOf(cells) * 0.4, rng1);
  const auto b = SelectCellsRA(cells, TotalLoadOf(cells) * 0.4, rng2);
  EXPECT_EQ(a.cells, b.cells);
}

}  // namespace
}  // namespace ps2
