#include "text/bool_expr.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ps2 {
namespace {

class BoolExprTest : public ::testing::Test {
 protected:
  TermId T(const std::string& s) { return vocab_.Intern(s); }
  std::vector<TermId> Sorted(std::vector<TermId> v) {
    std::sort(v.begin(), v.end());
    return v;
  }
  Vocabulary vocab_;
};

TEST_F(BoolExprTest, AndSemantics) {
  const BoolExpr e = BoolExpr::And({T("a"), T("b")});
  EXPECT_TRUE(e.Matches(Sorted({T("a"), T("b"), T("c")})));
  EXPECT_FALSE(e.Matches(Sorted({T("a")})));
  EXPECT_FALSE(e.Matches(Sorted({T("c")})));
  EXPECT_FALSE(e.Matches({}));
}

TEST_F(BoolExprTest, OrSemantics) {
  const BoolExpr e = BoolExpr::Or({T("a"), T("b")});
  EXPECT_TRUE(e.Matches(Sorted({T("a")})));
  EXPECT_TRUE(e.Matches(Sorted({T("b"), T("z")})));
  EXPECT_FALSE(e.Matches(Sorted({T("z")})));
}

TEST_F(BoolExprTest, EmptyMatchesNothing) {
  BoolExpr e;
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.Matches(Sorted({T("a")})));
}

TEST_F(BoolExprTest, CnfDedupsAndDropsEmptyClauses) {
  const BoolExpr e = BoolExpr::Cnf({{T("a"), T("a")}, {}, {T("b")}});
  ASSERT_EQ(e.clauses().size(), 2u);
  EXPECT_EQ(e.clauses()[0].size(), 1u);
}

TEST_F(BoolExprTest, ParseAndOr) {
  const BoolExpr e = BoolExpr::Parse("kobe AND (retired OR lebron)", vocab_);
  ASSERT_FALSE(e.has_error());
  ASSERT_EQ(e.clauses().size(), 2u);
  EXPECT_TRUE(e.Matches(Sorted({T("kobe"), T("retired")})));
  EXPECT_TRUE(e.Matches(Sorted({T("kobe"), T("lebron")})));
  EXPECT_FALSE(e.Matches(Sorted({T("kobe")})));
  EXPECT_FALSE(e.Matches(Sorted({T("retired"), T("lebron")})));
}

TEST_F(BoolExprTest, ParseCaseInsensitiveOperators) {
  const BoolExpr e = BoolExpr::Parse("a and b or c", vocab_);
  ASSERT_FALSE(e.has_error());
  // "a AND (b OR c)" by precedence: OR binds tighter in our grammar
  // (clause = atom (OR atom)*), so this parses as a AND (b OR c).
  EXPECT_TRUE(e.Matches(Sorted({T("a"), T("c")})));
  EXPECT_FALSE(e.Matches(Sorted({T("a")})));
}

TEST_F(BoolExprTest, ParseDistributesOrOverAnd) {
  // (a AND b) OR c  ->  (a|c) & (b|c)
  const BoolExpr e = BoolExpr::Parse("(a AND b) OR c", vocab_);
  ASSERT_FALSE(e.has_error());
  EXPECT_TRUE(e.Matches(Sorted({T("a"), T("b")})));
  EXPECT_TRUE(e.Matches(Sorted({T("c")})));
  EXPECT_FALSE(e.Matches(Sorted({T("a")})));
}

TEST_F(BoolExprTest, ParseErrors) {
  EXPECT_TRUE(BoolExpr::Parse("a AND", vocab_).has_error());
  EXPECT_TRUE(BoolExpr::Parse("(a OR b", vocab_).has_error());
  EXPECT_TRUE(BoolExpr::Parse("", vocab_).has_error());
  EXPECT_TRUE(BoolExpr::Parse("AND a", vocab_).has_error());
}

TEST_F(BoolExprTest, DistinctTermsSortedUnique) {
  const BoolExpr e = BoolExpr::Cnf({{T("b"), T("a")}, {T("a"), T("c")}});
  const auto terms = e.DistinctTerms();
  EXPECT_EQ(terms, Sorted({T("a"), T("b"), T("c")}));
}

TEST_F(BoolExprTest, RoutingTermsAndOnlyIsLeastFrequentKeyword) {
  const TermId a = T("a"), b = T("b"), c = T("c");
  vocab_.AddCount(a, 100);
  vocab_.AddCount(b, 1);
  vocab_.AddCount(c, 50);
  const BoolExpr e = BoolExpr::And({a, b, c});
  const auto keys = e.RoutingTerms(vocab_);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], b);  // the paper's least frequent keyword
}

TEST_F(BoolExprTest, RoutingTermsPicksCheapestClause) {
  const TermId a = T("a"), b = T("b"), c = T("c"), d = T("d");
  vocab_.AddCount(a, 10);
  vocab_.AddCount(b, 10);
  vocab_.AddCount(c, 2);
  vocab_.AddCount(d, 3);
  // (a OR b) AND (c OR d): clause costs 20 vs 5 -> route by {c, d}.
  const BoolExpr e = BoolExpr::Cnf({{a, b}, {c, d}});
  EXPECT_EQ(e.RoutingTerms(vocab_), Sorted({c, d}));
}

// The completeness property that motivates routing by a whole clause: any
// matching object shares at least one routing term with the query. (Keying
// only each clause's least frequent keyword violates this; see the header.)
TEST_F(BoolExprTest, RoutingTermsCompleteness) {
  const TermId a = T("a"), b = T("b"), c = T("c"), d = T("d");
  vocab_.AddCount(a, 1);
  vocab_.AddCount(b, 9);
  vocab_.AddCount(c, 1);
  vocab_.AddCount(d, 9);
  const BoolExpr e = BoolExpr::Cnf({{a, b}, {c, d}});
  // Object {b, d} matches but contains neither least-frequent key (a, c).
  const auto obj = Sorted({b, d});
  ASSERT_TRUE(e.Matches(obj));
  const auto lfk = e.LeastFrequentPerClause(vocab_);
  bool lfk_hits = false;
  for (const TermId t : lfk) {
    lfk_hits |= std::binary_search(obj.begin(), obj.end(), t);
  }
  EXPECT_FALSE(lfk_hits) << "counter-example no longer demonstrates the bug";
  // Whole-clause routing does hit.
  const auto keys = e.RoutingTerms(vocab_);
  bool hits = false;
  for (const TermId t : keys) {
    hits |= std::binary_search(obj.begin(), obj.end(), t);
  }
  EXPECT_TRUE(hits);
}

// Exhaustive mini-property: over all subsets of a 6-term universe, a match
// implies a routing-term hit.
TEST_F(BoolExprTest, RoutingTermsCompletenessExhaustive) {
  std::vector<TermId> u;
  for (int i = 0; i < 6; ++i) {
    const TermId t = T("u" + std::to_string(i));
    vocab_.AddCount(t, 1 + (i * 7) % 5);
    u.push_back(t);
  }
  const BoolExpr e =
      BoolExpr::Cnf({{u[0], u[1]}, {u[2], u[3], u[4]}, {u[5]}});
  const auto keys = e.RoutingTerms(vocab_);
  for (int mask = 0; mask < 64; ++mask) {
    std::vector<TermId> obj;
    for (int i = 0; i < 6; ++i) {
      if (mask & (1 << i)) obj.push_back(u[i]);
    }
    std::sort(obj.begin(), obj.end());
    if (!e.Matches(obj)) continue;
    bool hit = false;
    for (const TermId t : keys) {
      hit |= std::binary_search(obj.begin(), obj.end(), t);
    }
    EXPECT_TRUE(hit) << "mask=" << mask;
  }
}

TEST_F(BoolExprTest, ParseReportsDescriptiveErrors) {
  std::string error;
  // Operator where a keyword is expected, with its position.
  BoolExpr e = BoolExpr::Parse("pizza AND AND", vocab_, &error);
  EXPECT_TRUE(e.has_error());
  EXPECT_EQ(error, "expected keyword or '(', got 'AND' at position 10");
  // Unbalanced parenthesis.
  e = BoolExpr::Parse("(a OR b", vocab_, &error);
  EXPECT_TRUE(e.has_error());
  EXPECT_EQ(error, "expected ')' at position 7");
  // Trailing input after a complete expression.
  e = BoolExpr::Parse("a OR b)", vocab_, &error);
  EXPECT_TRUE(e.has_error());
  EXPECT_EQ(error, "unexpected ')' at position 6");
  // Empty input.
  e = BoolExpr::Parse("", vocab_, &error);
  EXPECT_TRUE(e.has_error());
  EXPECT_EQ(error, "expected keyword or '(', got end of input at position 0");
  // Success clears the message.
  e = BoolExpr::Parse("a AND b", vocab_, &error);
  EXPECT_FALSE(e.has_error());
  EXPECT_TRUE(error.empty());
}

TEST_F(BoolExprTest, ToStringRoundTrips) {
  const BoolExpr e = BoolExpr::Parse("aa AND (bb OR cc)", vocab_);
  const std::string s = e.ToString(vocab_);
  Vocabulary v2 = vocab_;
  const BoolExpr e2 = BoolExpr::Parse(s, v2);
  EXPECT_EQ(e.clauses(), e2.clauses());
}

}  // namespace
}  // namespace ps2
