#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/metrics_exporter.h"
#include "runtime/ps2stream.h"
#include "test_util.h"

namespace ps2 {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

RunReport MakeReport() {
  RunReport r;
  r.tuples_processed = 12345;
  r.objects = 12000;
  r.matches_emitted = 900;
  r.matches_delivered = 800;
  r.duplicates_suppressed = 100;
  r.session_deliveries = 780;
  r.session_drops = 20;
  r.quota_rejections = 3;
  r.rate_limited = 7;
  r.overload_trips = 1;
  r.overload_sheds = 2;
  r.live_subscriptions = 42;
  r.wall_seconds = 1.5;
  r.throughput_tps = 8230.0;
  r.latency.Record(10.0);
  r.latency.Record(20.0);
  r.latency.Record(30.0);
  return r;
}

// ---------------------------------------------------------------------------
// Prometheus rendering
// ---------------------------------------------------------------------------

TEST(MetricsExporterTest, PrometheusEmitsHelpTypeAndValues) {
  const std::string out = RenderPrometheus(MakeReport(), nullptr);

  EXPECT_NE(out.find("# HELP ps2_tuples_processed "), std::string::npos);
  EXPECT_NE(out.find("# TYPE ps2_tuples_processed counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("\nps2_tuples_processed 12345\n"), std::string::npos);
  EXPECT_NE(out.find("\nps2_quota_rejections 3\n"), std::string::npos);
  EXPECT_NE(out.find("\nps2_rate_limited 7\n"), std::string::npos);
  EXPECT_NE(out.find("\nps2_overload_trips 1\n"), std::string::npos);
  EXPECT_NE(out.find("\nps2_overload_sheds 2\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE ps2_live_subscriptions gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("\nps2_live_subscriptions 42\n"), std::string::npos);
  EXPECT_NE(out.find("\nps2_shards 1\n"), std::string::npos);

  // Latency renders as a Prometheus summary: quantiles, _sum and _count.
  EXPECT_NE(out.find("# TYPE ps2_match_latency_us summary\n"),
            std::string::npos);
  EXPECT_NE(out.find("ps2_match_latency_us{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(out.find("ps2_match_latency_us{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(out.find("\nps2_match_latency_us_sum 60\n"), std::string::npos);
  EXPECT_NE(out.find("\nps2_match_latency_us_count 3\n"), std::string::npos);
  EXPECT_NE(out.find("\nps2_delivery_latency_us_count 0\n"),
            std::string::npos);
}

TEST(MetricsExporterTest, PrometheusHonorsPrefix) {
  const std::string out = RenderPrometheus(MakeReport(), nullptr, "svc");
  EXPECT_NE(out.find("\nsvc_tuples_processed 12345\n"), std::string::npos);
  EXPECT_EQ(out.find("ps2_"), std::string::npos);
}

TEST(MetricsExporterTest, PrometheusAddsPerShardLabels) {
  RunReport fleet = MakeReport();
  fleet.shards = 2;
  RunReport s0;
  s0.tuples_processed = 10;
  RunReport s1;
  s1.tuples_processed = 20;
  const std::vector<RunReport> shards = {s0, s1};

  const std::string out = RenderPrometheus(fleet, &shards);
  EXPECT_NE(out.find("\nps2_tuples_processed 12345\n"), std::string::npos);
  EXPECT_NE(out.find("\nps2_tuples_processed{shard=\"0\"} 10\n"),
            std::string::npos);
  EXPECT_NE(out.find("\nps2_tuples_processed{shard=\"1\"} 20\n"),
            std::string::npos);
  EXPECT_NE(out.find("\nps2_shards 2\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

TEST(MetricsExporterTest, JsonIsFlatBalancedAndComplete) {
  const std::string out = RenderJson(MakeReport());

  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.substr(out.size() - 2), "}\n");
  // No trailing comma before the closing brace (strict-JSON killers).
  EXPECT_EQ(out.find(",\n}"), std::string::npos);
  EXPECT_EQ(out.find(",}"), std::string::npos);

  EXPECT_NE(out.find("\"tuples_processed\": 12345"), std::string::npos);
  EXPECT_NE(out.find("\"quota_rejections\": 3"), std::string::npos);
  EXPECT_NE(out.find("\"rate_limited\": 7"), std::string::npos);
  EXPECT_NE(out.find("\"live_subscriptions\": 42"), std::string::npos);
  EXPECT_NE(out.find("\"match_latency_us\": {\"count\": 3"),
            std::string::npos);
  EXPECT_NE(out.find("\"p50\": "), std::string::npos);
  EXPECT_NE(out.find("\"p99\": "), std::string::npos);

  int depth = 0;
  for (const char c : out) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// ---------------------------------------------------------------------------
// File exporter
// ---------------------------------------------------------------------------

TEST(MetricsExporterTest, WriteOnceWritesBothFiles) {
  const std::string dir = ::testing::TempDir() + "/ps2_metrics_once_" +
                          std::to_string(::getpid());
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);

  MetricsExporter::Options options;
  options.prometheus_path = dir + "/metrics.prom";
  options.json_path = dir + "/metrics.json";
  MetricsExporter exporter(options, [] { return MakeReport(); });

  ASSERT_TRUE(exporter.WriteOnce());
  EXPECT_EQ(exporter.dumps(), 1u);
  EXPECT_EQ(ReadFileOrDie(options.prometheus_path),
            RenderPrometheus(MakeReport(), nullptr));
  EXPECT_EQ(ReadFileOrDie(options.json_path), RenderJson(MakeReport()));
}

TEST(MetricsExporterTest, PeriodicExporterDumpsAndStopsCleanly) {
  const std::string dir = ::testing::TempDir() + "/ps2_metrics_loop_" +
                          std::to_string(::getpid());
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);

  MetricsExporter::Options options;
  options.json_path = dir + "/metrics.json";
  options.interval_ms = 5;
  MetricsExporter exporter(options, [] { return MakeReport(); });

  exporter.Start();
  EXPECT_TRUE(exporter.running());
  for (int i = 0; i < 400 && exporter.dumps() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(exporter.dumps(), 2u);
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  // The shutdown path leaves a final, current dump behind.
  EXPECT_EQ(ReadFileOrDie(options.json_path), RenderJson(MakeReport()));
}

// ---------------------------------------------------------------------------
// Summary truncation safety (regression: fixed 448-byte buffer)
// ---------------------------------------------------------------------------

// A report with every optional section active and worst-case-wide counters
// used to overflow Summary()'s fixed buffer, silently truncating the tail
// (the fault and audit sections vanished first — exactly the ones a
// post-mortem needs). The rewrite sizes the output to fit.
RunReport MakeWorstCaseReport() {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  RunReport r;
  r.shards = 64;
  r.tuples_processed = big;
  r.matches_emitted = big;
  r.matches_delivered = big;
  r.duplicates_suppressed = big;
  r.throughput_tps = 1e18;
  r.session_deliveries = big;
  r.session_drops = big;
  r.matches_unrouted = big;
  r.wait_spins = big;
  r.wait_parks = big;
  r.worker_ring_highwater.assign(8, big);
  r.transport_errors = big;
  r.frame_retries = big;
  r.frame_redeliveries = big;
  r.frames_dropped = big;
  r.fabric_dup_suppressed = big;
  r.shard_restarts = big;
  r.shards_quarantined = big;
  r.quota_rejections = big;
  r.rate_limited = big;
  r.overload_trips = big;
  r.overload_sheds = big;
  r.audit_mismatches = big;
  for (int i = 0; i < 1000; ++i) r.latency.Record(1e9 + i);
  for (int i = 0; i < 1000; ++i) r.delivery_latency.Record(1e9 + i);
  return r;
}

TEST(RunReportSummaryTest, SummaryIsTruncationSafe) {
  const RunReport r = MakeWorstCaseReport();
  const std::string out = r.Summary();

  // Far beyond the old fixed buffer, and every section survived in full —
  // including the embedded latency digests and the very last byte.
  EXPECT_GT(out.size(), 448u);
  EXPECT_NE(out.find("shards=64 "), std::string::npos);
  EXPECT_NE(out.find(r.latency.Summary()), std::string::npos);
  EXPECT_NE(out.find(r.delivery_latency.Summary()), std::string::npos);
  EXPECT_NE(out.find(" sessions{delivered=18446744073709551615"),
            std::string::npos);
  EXPECT_NE(out.find(" rings{hw=18446744073709551615"), std::string::npos);
  EXPECT_NE(out.find(" faults{xport_err=18446744073709551615"),
            std::string::npos);
  EXPECT_NE(out.find(" admission{quota=18446744073709551615"),
            std::string::npos);
  const std::string tail = " AUDIT_MISMATCHES=18446744073709551615";
  ASSERT_GE(out.size(), tail.size());
  EXPECT_EQ(out.substr(out.size() - tail.size()), tail);
}

TEST(RunReportSummaryTest, FleetSummaryIsTruncationSafe) {
  const RunReport shard = MakeWorstCaseReport();
  const std::vector<RunReport> shards = {shard, shard, shard};
  RunReport fleet = MakeWorstCaseReport();
  const std::string out = FleetSummary(shards, fleet);

  EXPECT_NE(out.find("shard 0: "), std::string::npos);
  EXPECT_NE(out.find("shard 2: "), std::string::npos);
  EXPECT_NE(out.find("\nfleet:   "), std::string::npos);
  // The fleet line is last and intact.
  const std::string tail = " AUDIT_MISMATCHES=18446744073709551615";
  EXPECT_EQ(out.substr(out.size() - tail.size()), tail);
  // Each of the three shard sections plus the fleet line carries the full
  // admission segment.
  size_t count = 0;
  for (size_t pos = out.find(" admission{"); pos != std::string::npos;
       pos = out.find(" admission{", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(RunReportSummaryTest, MergeShardSumsAdmissionCounters) {
  RunReport fleet;
  RunReport a;
  a.quota_rejections = 2;
  a.rate_limited = 3;
  a.overload_trips = 1;
  a.overload_sheds = 4;
  a.live_subscriptions = 10;
  RunReport b;
  b.quota_rejections = 5;
  b.rate_limited = 7;
  b.overload_trips = 2;
  b.overload_sheds = 1;
  b.live_subscriptions = 20;

  fleet.MergeShard(a);
  fleet.MergeShard(b);
  EXPECT_EQ(fleet.quota_rejections, 7u);
  EXPECT_EQ(fleet.rate_limited, 10u);
  EXPECT_EQ(fleet.overload_trips, 3u);
  EXPECT_EQ(fleet.overload_sheds, 5u);
  EXPECT_EQ(fleet.live_subscriptions, 30u);
}

// ---------------------------------------------------------------------------
// Facade integration
// ---------------------------------------------------------------------------

TEST(PS2StreamMetricsTest, SnapshotAndRenderersWorkLive) {
  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  PS2Stream::SessionPtr session = ps2.OpenSession();
  auto sub = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "fire nearby").ok());

  // Live snapshot (no Stop() yet): session counters and the gauge overlay.
  const RunReport live = ps2.MetricsSnapshot();
  EXPECT_EQ(live.session_deliveries, 1u);
  EXPECT_EQ(live.live_subscriptions, 1u);

  const std::string prom = ps2.MetricsPrometheus();
  EXPECT_NE(prom.find("\nps2_session_deliveries 1\n"), std::string::npos);
  EXPECT_NE(prom.find("\nps2_live_subscriptions 1\n"), std::string::npos);
  const std::string json = ps2.MetricsJson();
  EXPECT_NE(json.find("\"session_deliveries\": 1"), std::string::npos);
}

TEST(PS2StreamMetricsTest, FabricPrometheusCarriesShardSections) {
  const testutil::TestWorkload workload =
      testutil::MakeWorkload(/*seed=*/23, /*num_objects=*/300,
                             /*num_queries=*/60, /*num_terms=*/30);
  PS2StreamOptions options;
  options.sharding.num_shards = 2;
  PS2Stream ps2(options);
  ps2.Bootstrap(workload.sample);
  ps2.Start();

  PS2Stream::SessionPtr session = ps2.OpenSession();
  auto sub = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(ps2.Post(Point{0.5, 0.5}, "fire nearby").ok());
  const RunReport report = ps2.Stop();
  EXPECT_EQ(report.shards, 2);

  const std::string prom = ps2.MetricsPrometheus();
  EXPECT_NE(prom.find("\nps2_shards 2\n"), std::string::npos);
  EXPECT_NE(prom.find("ps2_tuples_processed{shard=\"0\"} "),
            std::string::npos);
  EXPECT_NE(prom.find("ps2_tuples_processed{shard=\"1\"} "),
            std::string::npos);
}

TEST(PS2StreamMetricsTest, FacadeExporterWritesConfiguredFiles) {
  const std::string dir = ::testing::TempDir() + "/ps2_metrics_facade_" +
                          std::to_string(::getpid());
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);

  PS2Stream ps2;
  ps2.Bootstrap(WorkloadSample{});
  PS2Stream::SessionPtr session = ps2.OpenSession();
  auto sub = ps2.Subscribe(session, "fire", Rect(0, 0, 1, 1));
  ASSERT_TRUE(sub.ok());

  MetricsExporter::Options options;
  options.prometheus_path = dir + "/live.prom";
  options.json_path = dir + "/live.json";
  options.interval_ms = 3600 * 1000;  // rely on the final dump at Stop
  ASSERT_TRUE(ps2.StartMetricsExporter(options));
  EXPECT_FALSE(ps2.StartMetricsExporter(options));  // already running
  ps2.StopMetricsExporter();

  const std::string prom = ReadFileOrDie(dir + "/live.prom");
  EXPECT_NE(prom.find("\nps2_live_subscriptions 1\n"), std::string::npos);
  const std::string json = ReadFileOrDie(dir + "/live.json");
  EXPECT_NE(json.find("\"live_subscriptions\": 1"), std::string::npos);
}

}  // namespace
}  // namespace ps2
