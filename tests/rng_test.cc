#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ps2 {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(1);
  for (uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(n), n);
    }
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(2);
  bool seen[5] = {false};
  for (int i = 0; i < 500; ++i) seen[rng.NextBelow(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double mn = 1.0, mx = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    mn = std::min(mn, d);
    mx = std::max(mx, d);
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  const double mean = 10.0, stddev = 2.0;
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian(mean, stddev);
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / n;
  const double var = sum2 / n - m * m;
  EXPECT_NEAR(m, mean, 0.05);
  EXPECT_NEAR(std::sqrt(var), stddev, 0.05);
}

TEST(RngTest, SplitIndependence) {
  Rng a(5);
  Rng b = a.Split();
  // Streams should differ.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double sum = 0.0;
  for (size_t k = 0; k < 100; ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, HeadIsHeavy) {
  ZipfSampler z(10000, 1.05);
  // Rank 0 should dominate any deep-tail rank by orders of magnitude.
  EXPECT_GT(z.Pmf(0), 100 * z.Pmf(5000));
  // Monotone non-increasing.
  for (size_t k = 1; k < 100; ++k) {
    EXPECT_GE(z.Pmf(k - 1), z.Pmf(k));
  }
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfSampler z(50, 1.0);
  Rng rng(6);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (size_t k = 0; k < 10; ++k) {
    const double expected = z.Pmf(k) * n;
    EXPECT_NEAR(counts[k], expected, expected * 0.1 + 50);
  }
}

class ZipfRangeTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(ZipfRangeTest, SamplesInRange) {
  const auto [n, s] = GetParam();
  ZipfSampler z(n, s);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(z.Sample(rng), n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfRangeTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 17, 1000),
                       ::testing::Values(0.5, 1.0, 1.5)));

}  // namespace
}  // namespace ps2
