#include "spatial/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace ps2 {
namespace {

std::vector<RTree::Entry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextUniform(0, 100);
    const double y = rng.NextUniform(0, 100);
    entries.push_back(RTree::Entry{
        Rect(x, y, x + rng.NextUniform(0.1, 5), y + rng.NextUniform(0.1, 5)),
        i, 1.0});
  }
  return entries;
}

std::vector<uint64_t> BruteForce(const std::vector<RTree::Entry>& entries,
                                 const Rect& q) {
  std::vector<uint64_t> out;
  for (const auto& e : entries) {
    if (e.rect.Intersects(q)) out.push_back(e.id);
  }
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Query(Rect(0, 0, 1, 1)).empty());
  EXPECT_TRUE(tree.Leaves().empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Build({RTree::Entry{Rect(1, 1, 2, 2), 42, 1.0}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  const auto hits = tree.Query(Rect(0, 0, 3, 3));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(tree.Query(Rect(5, 5, 6, 6)).empty());
}

TEST(RTreeTest, QueryPointHitsContainingRects) {
  RTree tree;
  tree.Build({RTree::Entry{Rect(0, 0, 10, 10), 1, 1.0},
              RTree::Entry{Rect(5, 5, 15, 15), 2, 1.0},
              RTree::Entry{Rect(20, 20, 30, 30), 3, 1.0}});
  auto hits = tree.QueryPoint(Point{7, 7});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint64_t>{1, 2}));
}

class RTreeMatchesBruteForce
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(RTreeMatchesBruteForce, RandomWorkload) {
  const auto [n, fanout] = GetParam();
  const auto entries = RandomEntries(n, 1000 + n);
  RTree tree(fanout);
  tree.Build(entries);
  EXPECT_EQ(tree.size(), n);
  Rng rng(n * 7 + 3);
  for (int q = 0; q < 100; ++q) {
    const double x = rng.NextUniform(-5, 100);
    const double y = rng.NextUniform(-5, 100);
    const Rect query(x, y, x + rng.NextUniform(0.1, 20),
                     y + rng.NextUniform(0.1, 20));
    auto got = tree.Query(query);
    auto want = BruteForce(entries, query);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RTreeMatchesBruteForce,
    ::testing::Combine(::testing::Values<size_t>(1, 7, 64, 500, 3000),
                       ::testing::Values<size_t>(4, 16)));

TEST(RTreeTest, LeavesPartitionEntries) {
  const auto entries = RandomEntries(500, 5);
  RTree tree(16);
  tree.Build(entries);
  const auto leaves = tree.Leaves();
  size_t total = 0;
  std::vector<bool> seen(500, false);
  for (const auto& leaf : leaves) {
    EXPECT_LE(leaf.entry_ids.size(), 16u);
    EXPECT_FALSE(leaf.mbr.empty());
    total += leaf.entry_ids.size();
    for (const uint64_t id : leaf.entry_ids) {
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
      // Entry is inside the leaf MBR.
      EXPECT_TRUE(leaf.mbr.Contains(entries[id].rect));
    }
  }
  EXPECT_EQ(total, 500u);
}

TEST(RTreeTest, LeafWeightsSum) {
  std::vector<RTree::Entry> entries;
  for (size_t i = 0; i < 100; ++i) {
    entries.push_back(
        RTree::Entry{Rect(i, i, i + 1.0, i + 1.0), i, 2.5});
  }
  RTree tree(8);
  tree.Build(entries);
  double sum = 0.0;
  for (const auto& leaf : tree.Leaves()) sum += leaf.weight;
  EXPECT_NEAR(sum, 250.0, 1e-9);
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree tree(4);
  tree.Build(RandomEntries(1000, 11));
  EXPECT_GE(tree.height(), 4);  // 4^5 = 1024
  EXPECT_LE(tree.height(), 8);
}

TEST(RTreeTest, BoundsCoversAll) {
  const auto entries = RandomEntries(200, 13);
  RTree tree(16);
  tree.Build(entries);
  const Rect b = tree.Bounds();
  for (const auto& e : entries) {
    EXPECT_TRUE(b.Contains(e.rect));
  }
}

}  // namespace
}  // namespace ps2
