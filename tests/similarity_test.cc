#include "text/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ps2 {
namespace {

TEST(TermVectorTest, AddAndWeight) {
  TermVector v;
  v.Add(1, 2.0);
  v.Add(1, 3.0);
  v.Add(2);
  EXPECT_DOUBLE_EQ(v.Weight(1), 5.0);
  EXPECT_DOUBLE_EQ(v.Weight(2), 1.0);
  EXPECT_DOUBLE_EQ(v.Weight(3), 0.0);
  EXPECT_EQ(v.DistinctTerms(), 2u);
}

TEST(TermVectorTest, NormAndMerge) {
  TermVector v;
  v.Add(1, 3.0);
  v.Add(2, 4.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  TermVector w;
  w.Add(2, 4.0);
  v.Merge(w);
  EXPECT_DOUBLE_EQ(v.Weight(2), 8.0);
}

TEST(CosineTest, IdenticalVectorsAreOne) {
  TermVector a;
  a.Add(1, 2.0);
  a.Add(7, 1.5);
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
}

TEST(CosineTest, DisjointVectorsAreZero) {
  TermVector a, b;
  a.Add(1);
  b.Add(2);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(CosineTest, EmptyIsZero) {
  TermVector a, b;
  a.Add(1);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(b, b), 0.0);
}

TEST(CosineTest, SymmetricAndBounded) {
  TermVector a, b;
  a.Add(1, 1.0);
  a.Add(2, 2.0);
  a.Add(3, 0.5);
  b.Add(2, 1.0);
  b.Add(3, 3.0);
  b.Add(4, 1.0);
  const double s1 = CosineSimilarity(a, b);
  const double s2 = CosineSimilarity(b, a);
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_GT(s1, 0.0);
  EXPECT_LT(s1, 1.0);
}

TEST(CosineTest, KnownValue) {
  // a = (1, 0), b = (1, 1): cos = 1/sqrt(2).
  TermVector a, b;
  a.Add(1, 1.0);
  b.Add(1, 1.0);
  b.Add(2, 1.0);
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(CosineTest, ScaleInvariant) {
  TermVector a, b, b10;
  a.Add(1, 1.0);
  a.Add(2, 3.0);
  b.Add(1, 2.0);
  b.Add(2, 1.0);
  b10.Add(1, 20.0);
  b10.Add(2, 10.0);
  EXPECT_NEAR(CosineSimilarity(a, b), CosineSimilarity(a, b10), 1e-12);
}

}  // namespace
}  // namespace ps2
