#include "runtime/sim_engine.h"

#include <gtest/gtest.h>

#include "partition/plan.h"
#include "test_util.h"

namespace ps2 {
namespace {

std::vector<StreamTuple> MakeInput(const testutil::TestWorkload& w) {
  std::vector<StreamTuple> input;
  for (const auto& q : w.sample.inserts) {
    input.push_back(StreamTuple::OfInsert(q));
  }
  for (const auto& o : w.extra_objects) {
    input.push_back(StreamTuple::OfObject(o));
  }
  for (const auto& o : w.sample.objects) {
    input.push_back(StreamTuple::OfObject(o));
  }
  return input;
}

TEST(SimEngineTest, DeterministicAcrossRuns) {
  auto w = testutil::MakeWorkload(701, 800, 250);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner("hybrid")->Build(w.sample, w.vocab, cfg);
  const auto input = MakeInput(w);
  SimOptions opts;
  opts.adjust_check_interval = 500;
  SimReport r1, r2;
  {
    Cluster c1(plan, &w.vocab);
    r1 = RunSimulation(c1, input, opts);
  }
  {
    Cluster c2(plan, &w.vocab);
    r2 = RunSimulation(c2, input, opts);
  }
  EXPECT_EQ(r1.tuples, r2.tuples);
  EXPECT_EQ(r1.matches_delivered, r2.matches_delivered);
  EXPECT_EQ(r1.migrations.size(), r2.migrations.size());
  // Virtual time is deterministic except for migration stalls, whose
  // duration includes the *measured* selection wall time; allow 5%.
  EXPECT_NEAR(r1.latency.MeanMicros(), r2.latency.MeanMicros(),
              0.05 * r1.latency.MeanMicros() + 1e-9);
}

TEST(SimEngineTest, LatencyBucketsSumToOne) {
  auto w = testutil::MakeWorkload(703, 600, 200);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner("metric")->Build(w.sample, w.vocab, cfg);
  Cluster cluster(plan, &w.vocab);
  const auto report = RunSimulation(cluster, MakeInput(w), SimOptions{});
  EXPECT_NEAR(report.frac_below_100ms + report.frac_100_to_1000ms +
                  report.frac_above_1000ms,
              1.0, 1e-6);
  EXPECT_GT(report.throughput_estimate_tps, 0.0);
}

TEST(SimEngineTest, ImbalancedClusterTriggersMigrations) {
  auto w = testutil::MakeWorkload(705, 1500, 400);
  // All load on worker 0.
  PartitionPlan plan;
  plan.grid = GridSpec(w.sample.Bounds(), 4);
  plan.num_workers = 4;
  plan.cells.assign(plan.grid.NumCells(), CellRoute{0, nullptr});
  Cluster cluster(plan, &w.vocab);
  SimOptions opts;
  opts.adjust_check_interval = 400;
  opts.adjust.sigma = 1.5;
  const auto report = RunSimulation(cluster, MakeInput(w), opts);
  EXPECT_FALSE(report.migrations.empty());
  EXPECT_GT(report.num_migrations, 0);
  EXPECT_GT(report.avg_migration_bytes, 0.0);
  EXPECT_GT(report.avg_migration_seconds, 0.0);
}

TEST(SimEngineTest, AdjustDisabledMeansNoMigrations) {
  auto w = testutil::MakeWorkload(707, 800, 200);
  PartitionPlan plan;
  plan.grid = GridSpec(w.sample.Bounds(), 4);
  plan.num_workers = 4;
  plan.cells.assign(plan.grid.NumCells(), CellRoute{0, nullptr});
  Cluster cluster(plan, &w.vocab);
  SimOptions opts;
  opts.enable_adjust = false;
  const auto report = RunSimulation(cluster, MakeInput(w), opts);
  EXPECT_TRUE(report.migrations.empty());
}

TEST(SimEngineTest, MigrationStallInflatesLatencyTail) {
  auto w = testutil::MakeWorkload(709, 1500, 400);
  PartitionPlan plan;
  plan.grid = GridSpec(w.sample.Bounds(), 4);
  plan.num_workers = 4;
  plan.cells.assign(plan.grid.NumCells(), CellRoute{0, nullptr});
  const auto input = MakeInput(w);

  SimOptions with;
  with.adjust_check_interval = 400;
  // Artificially slow network so stalls are visible.
  with.adjust.bandwidth_bytes_per_sec = 1e5;
  SimOptions without = with;
  without.enable_adjust = false;

  SimReport r_with, r_without;
  {
    Cluster c(plan, &w.vocab);
    r_with = RunSimulation(c, input, with);
  }
  {
    Cluster c(plan, &w.vocab);
    r_without = RunSimulation(c, input, without);
  }
  ASSERT_GT(r_with.num_migrations, 0);
  // Migration stalls push some tuples into the slow buckets.
  EXPECT_GT(r_with.frac_above_1000ms + r_with.frac_100_to_1000ms,
            r_without.frac_above_1000ms + r_without.frac_100_to_1000ms);
}

}  // namespace
}  // namespace ps2
