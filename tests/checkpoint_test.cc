#include "persist/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "dispatch/gridt_index.h"
#include "partition/plan.h"
#include "persist/durability.h"
#include "test_util.h"

namespace ps2 {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs gtest cases in parallel.
    dir_ = ::testing::TempDir() + "/ps2_checkpoint_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Full state round trip: vocabulary (with counts), a hybrid plan (which
// contains shared TermRouters), a routing snapshot with live H2 entries,
// and the query set.
TEST_F(CheckpointTest, RoundTripFullState) {
  auto w = testutil::MakeWorkload(1101, 800, 200);
  PartitionConfig cfg;
  cfg.num_workers = 4;
  cfg.grid_k = 4;
  const PartitionPlan plan =
      MakePartitioner("hybrid")->Build(w.sample, w.vocab, cfg);
  GridtIndex master(plan, &w.vocab);
  for (const auto& q : w.sample.inserts) master.RouteInsert(q);
  SnapshotRouter router(&master);
  auto snapshot = router.Current();

  CheckpointView view;
  view.seq = 3;
  view.last_lsn = 42;
  view.next_query_id = 1234;
  view.next_object_id = 5678;
  view.vocab = &w.vocab;
  view.plan = &plan;
  view.snapshot = snapshot.get();
  for (const auto& q : w.sample.inserts) view.queries.push_back(&q);

  const std::string path = dir_ + "/ckpt.ps2c";
  ASSERT_TRUE(WriteCheckpointFile(path, view));

  CheckpointData data;
  ASSERT_TRUE(ReadCheckpointFile(path, &data));
  EXPECT_EQ(data.seq, 3u);
  EXPECT_EQ(data.last_lsn, 42u);
  EXPECT_EQ(data.next_query_id, 1234u);
  EXPECT_EQ(data.next_object_id, 5678u);

  ASSERT_EQ(data.vocab.size(), w.vocab.size());
  for (size_t i = 0; i < w.vocab.size(); ++i) {
    const TermId t = static_cast<TermId>(i);
    EXPECT_EQ(data.vocab.TermString(t), w.vocab.TermString(t));
    EXPECT_EQ(data.vocab.Count(t), w.vocab.Count(t));
  }

  ASSERT_EQ(data.plan.cells.size(), plan.cells.size());
  EXPECT_EQ(data.plan.num_workers, plan.num_workers);
  EXPECT_EQ(data.plan.grid.NumCells(), plan.grid.NumCells());
  for (size_t c = 0; c < plan.cells.size(); ++c) {
    EXPECT_EQ(data.plan.cells[c].worker, plan.cells[c].worker) << c;
    ASSERT_EQ(data.plan.cells[c].IsText(), plan.cells[c].IsText()) << c;
    if (plan.cells[c].IsText()) {
      EXPECT_EQ(data.plan.cells[c].text->term_map().size(),
                plan.cells[c].text->term_map().size());
      EXPECT_EQ(data.plan.cells[c].text->workers(),
                plan.cells[c].text->workers());
    }
  }
  // Structural sharing survives: cells of one kdt leaf still reference one
  // router object after the round trip.
  std::set<const TermRouter*> original_routers, decoded_routers;
  for (size_t c = 0; c < plan.cells.size(); ++c) {
    if (plan.cells[c].IsText()) {
      original_routers.insert(plan.cells[c].text.get());
      decoded_routers.insert(data.plan.cells[c].text.get());
    }
  }
  EXPECT_EQ(decoded_routers.size(), original_routers.size());

  ASSERT_TRUE(data.has_snapshot);
  EXPECT_EQ(data.snapshot.NumCells(), snapshot->NumCells());
  EXPECT_EQ(data.snapshot.version, snapshot->version);
  for (CellId c = 0; c < snapshot->NumCells(); ++c) {
    const auto& a = snapshot->cell(c);
    const auto& b = data.snapshot.cell(c);
    ASSERT_EQ(a.IsText(), b.IsText()) << c;
    if (a.IsText()) {
      EXPECT_EQ(a.text->h2.size(), b.text->h2.size()) << c;
    } else {
      EXPECT_EQ(a.worker, b.worker) << c;
    }
  }

  ASSERT_EQ(data.queries.size(), w.sample.inserts.size());
  for (size_t i = 0; i < data.queries.size(); ++i) {
    EXPECT_EQ(data.queries[i].id, w.sample.inserts[i].id);
    EXPECT_EQ(data.queries[i].region, w.sample.inserts[i].region);
    EXPECT_EQ(data.queries[i].expr.clauses(),
              w.sample.inserts[i].expr.clauses());
  }
}

TEST_F(CheckpointTest, CorruptPayloadFailsCrc) {
  Vocabulary vocab;
  vocab.Intern("x");
  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 1, 1), 2);
  plan.num_workers = 2;
  plan.cells.resize(plan.grid.NumCells());
  CheckpointView view;
  view.vocab = &vocab;
  view.plan = &plan;
  const std::string path = dir_ + "/ckpt.ps2c";
  ASSERT_TRUE(WriteCheckpointFile(path, view));

  // Flip a byte in the middle of the payload.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 64, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 64, SEEK_SET);
    std::fputc(c ^ 0x55, f);
    std::fclose(f);
  }
  CheckpointData data;
  EXPECT_FALSE(ReadCheckpointFile(path, &data));
}

TEST_F(CheckpointTest, MissingFileFails) {
  CheckpointData data;
  EXPECT_FALSE(ReadCheckpointFile(dir_ + "/nope.ps2c", &data));
}

// The manager's directory protocol: Initialize -> mutate -> checkpoint ->
// mutate -> recover picks the committed checkpoint and replays only the
// newest segment chain; predecessors are garbage collected.
TEST_F(CheckpointTest, ManagerCheckpointProtocolAndRecovery) {
  Vocabulary vocab;
  const TermId t = vocab.Intern("pizza");
  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 10, 10), 2);
  plan.num_workers = 2;
  plan.cells.resize(plan.grid.NumCells());

  DurabilityConfig config;
  config.enabled = true;
  config.dir = dir_;
  config.wal_sync = Wal::SyncMode::kFlush;

  auto make_query = [&](QueryId id) {
    STSQuery q;
    q.id = id;
    q.expr = BoolExpr::And({t});
    q.region = Rect(0, 0, 10, 10);
    return q;
  };

  std::vector<STSQuery> live;
  {
    DurabilityManager mgr(config);
    CheckpointView view;
    view.vocab = &vocab;
    view.plan = &plan;
    ASSERT_TRUE(mgr.Initialize(view));
    EXPECT_EQ(mgr.seq(), 1u);
    EXPECT_EQ(DurabilityManager::ReadCurrentSeq(dir_), 1u);

    // Segment 1: queries 1..3 subscribed, 2 unsubscribed.
    for (QueryId id = 1; id <= 3; ++id) {
      live.push_back(make_query(id));
      mgr.wal().AppendSubscribe(live.back(), vocab);
    }
    mgr.wal().AppendUnsubscribe(2);

    // Checkpoint 2 captures {1, 3}.
    const uint64_t seq = mgr.BeginCheckpoint();
    ASSERT_EQ(seq, 2u);
    CheckpointView view2;
    view2.vocab = &vocab;
    view2.plan = &plan;
    view2.next_query_id = 4;
    view2.queries.push_back(&live[0]);
    view2.queries.push_back(&live[2]);
    ASSERT_TRUE(mgr.CommitCheckpoint(seq, view2));
    EXPECT_EQ(DurabilityManager::ReadCurrentSeq(dir_), 2u);
    // Predecessor files are gone.
    EXPECT_FALSE(std::filesystem::exists(
        DurabilityManager::CheckpointPath(dir_, 1)));
    EXPECT_FALSE(std::filesystem::exists(DurabilityManager::WalPath(dir_, 1)));

    // Segment 2: query 4 subscribed after the checkpoint.
    live.push_back(make_query(4));
    mgr.wal().AppendSubscribe(live.back(), vocab);
  }

  RecoveredState state;
  ASSERT_TRUE(RecoverState(dir_, &state));
  EXPECT_EQ(state.checkpoint_seq, 2u);
  EXPECT_EQ(state.wal_segments, 1);
  EXPECT_EQ(state.wal.records, 1u);
  ASSERT_EQ(state.queries.size(), 3u);
  EXPECT_EQ(state.queries[0].id, 1u);
  EXPECT_EQ(state.queries[1].id, 3u);
  EXPECT_EQ(state.queries[2].id, 4u);
  EXPECT_EQ(state.next_query_id, 5u);
  EXPECT_EQ(state.plan.cells.size(), plan.cells.size());
}

// A crash between BeginCheckpoint (WAL rotated) and CommitCheckpoint
// (CURRENT updated) must lose nothing: recovery starts from the old
// committed checkpoint and walks the segment chain across the rotation.
TEST_F(CheckpointTest, CrashBetweenRotateAndCommitReplaysSegmentChain) {
  Vocabulary vocab;
  const TermId t = vocab.Intern("crash");
  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 1, 1), 1);
  plan.num_workers = 1;
  plan.cells.resize(plan.grid.NumCells());

  DurabilityConfig config;
  config.enabled = true;
  config.dir = dir_;

  {
    DurabilityManager mgr(config);
    CheckpointView view;
    view.vocab = &vocab;
    view.plan = &plan;
    ASSERT_TRUE(mgr.Initialize(view));
    STSQuery q1;
    q1.id = 1;
    q1.expr = BoolExpr::And({t});
    q1.region = Rect(0, 0, 1, 1);
    mgr.wal().AppendSubscribe(q1, vocab);
    // Rotate (as a checkpoint would)... and crash before commit.
    ASSERT_EQ(mgr.BeginCheckpoint(), 2u);
    STSQuery q2 = q1;
    q2.id = 2;
    mgr.wal().AppendSubscribe(q2, vocab);  // lands in segment 2
  }

  RecoveredState state;
  ASSERT_TRUE(RecoverState(dir_, &state));
  EXPECT_EQ(state.checkpoint_seq, 1u);  // CURRENT never moved
  EXPECT_EQ(state.wal_segments, 2);     // both segments replayed
  ASSERT_EQ(state.queries.size(), 2u);
  EXPECT_EQ(state.queries[0].id, 1u);
  EXPECT_EQ(state.queries[1].id, 2u);
}

// A checkpoint whose commit failed leaves an orphan segment that already
// holds acknowledged records; the retried checkpoint reuses the same seq
// and its rotation must *append* to that segment, never truncate it.
TEST_F(CheckpointTest, RetriedCheckpointRotationPreservesOrphanSegment) {
  Vocabulary vocab;
  const TermId t = vocab.Intern("retry");
  PartitionPlan plan;
  plan.grid = GridSpec(Rect(0, 0, 1, 1), 1);
  plan.num_workers = 1;
  plan.cells.resize(plan.grid.NumCells());

  DurabilityConfig config;
  config.enabled = true;
  config.dir = dir_;

  auto make_query = [&](QueryId id) {
    STSQuery q;
    q.id = id;
    q.expr = BoolExpr::And({t});
    q.region = Rect(0, 0, 1, 1);
    return q;
  };

  {
    DurabilityManager mgr(config);
    CheckpointView view;
    view.vocab = &vocab;
    view.plan = &plan;
    ASSERT_TRUE(mgr.Initialize(view));
    mgr.wal().AppendSubscribe(make_query(1), vocab);
    ASSERT_EQ(mgr.BeginCheckpoint(), 2u);  // rotate to wal-2
    mgr.wal().AppendSubscribe(make_query(2), vocab);  // lands in wal-2
    // The commit "failed"; a retry begins again and reuses seq 2.
    ASSERT_EQ(mgr.BeginCheckpoint(), 2u);
    mgr.wal().AppendSubscribe(make_query(3), vocab);
    // Crash without ever committing.
  }

  RecoveredState state;
  ASSERT_TRUE(RecoverState(dir_, &state));
  EXPECT_EQ(state.checkpoint_seq, 1u);
  ASSERT_EQ(state.queries.size(), 3u);  // query 2 survived the re-rotation
  EXPECT_EQ(state.queries[0].id, 1u);
  EXPECT_EQ(state.queries[1].id, 2u);
  EXPECT_EQ(state.queries[2].id, 3u);
}

}  // namespace
}  // namespace ps2
