#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/ps2_trace_test.bin";
};

TEST_F(TraceIoTest, RoundTripStream) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UkPreset(), &vocab);
  QueryGenConfig qcfg;
  QueryGenerator qgen(qcfg, &corpus);
  StreamConfig scfg;
  scfg.num_objects = 500;
  scfg.mu = 100;
  const GeneratedStream g = GenerateStream(corpus, qgen, scfg);

  ASSERT_TRUE(WriteTrace(path_, vocab, g.stream));

  Vocabulary vocab2;
  std::vector<StreamTuple> loaded;
  ASSERT_TRUE(ReadTrace(path_, vocab2, &loaded));
  ASSERT_EQ(loaded.size(), g.stream.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    const StreamTuple& a = g.stream[i];
    const StreamTuple& b = loaded[i];
    ASSERT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.event_time_us, b.event_time_us);
    if (a.kind == TupleKind::kObject) {
      EXPECT_EQ(a.object.id, b.object.id);
      EXPECT_EQ(a.object.loc, b.object.loc);
      // Term ids match because vocab2 interned in file order and the file
      // was written from a densely-built vocabulary.
      ASSERT_EQ(a.object.terms.size(), b.object.terms.size());
      for (size_t t = 0; t < a.object.terms.size(); ++t) {
        EXPECT_EQ(vocab.TermString(a.object.terms[t]),
                  vocab2.TermString(b.object.terms[t]));
      }
    } else {
      EXPECT_EQ(a.query.id, b.query.id);
      EXPECT_EQ(a.query.region, b.query.region);
      EXPECT_EQ(a.query.expr.clauses().size(), b.query.expr.clauses().size());
    }
  }
}

TEST_F(TraceIoTest, RoundTripIntoPrepopulatedVocabularyRemaps) {
  Vocabulary vocab;
  const TermId a = vocab.Intern("alpha");
  const TermId b = vocab.Intern("beta");
  std::vector<StreamTuple> tuples;
  tuples.push_back(StreamTuple::OfObject(
      SpatioTextualObject::FromTerms(1, Point{1, 2}, {a, b})));
  ASSERT_TRUE(WriteTrace(path_, vocab, tuples));

  // Target vocabulary already has other terms: ids must remap.
  Vocabulary vocab2;
  vocab2.Intern("zzz");
  vocab2.Intern("beta");  // pre-existing shared term
  std::vector<StreamTuple> loaded;
  ASSERT_TRUE(ReadTrace(path_, vocab2, &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  const auto& terms = loaded[0].object.terms;
  ASSERT_EQ(terms.size(), 2u);
  std::vector<std::string> names;
  for (const TermId t : terms) names.push_back(vocab2.TermString(t));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(TraceIoTest, SampleRoundTrip) {
  Vocabulary vocab;
  WorkloadSample s;
  const TermId t = vocab.Intern("x");
  s.objects.push_back(SpatioTextualObject::FromTerms(1, Point{3, 4}, {t}));
  STSQuery q;
  q.id = 9;
  q.expr = BoolExpr::Or({t});
  q.region = Rect(0, 0, 5, 5);
  s.inserts.push_back(q);
  s.deletes.push_back(q);
  ASSERT_TRUE(WriteSample(path_, vocab, s));

  Vocabulary vocab2;
  WorkloadSample loaded;
  ASSERT_TRUE(ReadSample(path_, vocab2, &loaded));
  EXPECT_EQ(loaded.objects.size(), 1u);
  EXPECT_EQ(loaded.inserts.size(), 1u);
  EXPECT_EQ(loaded.deletes.size(), 1u);
  EXPECT_EQ(loaded.inserts[0].region, q.region);
}

TEST_F(TraceIoTest, MissingFileFails) {
  Vocabulary vocab;
  std::vector<StreamTuple> out;
  EXPECT_FALSE(ReadTrace("/nonexistent/path/trace.bin", vocab, &out));
}

TEST_F(TraceIoTest, CorruptMagicFails) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("JUNKJUNKJUNK", 1, 12, f);
  std::fclose(f);
  Vocabulary vocab;
  std::vector<StreamTuple> out;
  EXPECT_FALSE(ReadTrace(path_, vocab, &out));
}

TEST_F(TraceIoTest, TruncatedFileFails) {
  Vocabulary vocab;
  std::vector<StreamTuple> tuples;
  tuples.push_back(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
      1, Point{0, 0}, {vocab.Intern("t")})));
  ASSERT_TRUE(WriteTrace(path_, vocab, tuples));
  // Truncate: keep only the first 16 bytes.
  {
    FILE* f = std::fopen(path_.c_str(), "rb");
    char buf[16];
    ASSERT_EQ(std::fread(buf, 1, 16, f), 16u);
    std::fclose(f);
    f = std::fopen(path_.c_str(), "wb");
    std::fwrite(buf, 1, 16, f);
    std::fclose(f);
  }
  Vocabulary vocab2;
  std::vector<StreamTuple> out;
  EXPECT_FALSE(ReadTrace(path_, vocab2, &out));
}

}  // namespace
}  // namespace ps2
