#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/ps2_trace_test.bin";
};

TEST_F(TraceIoTest, RoundTripStream) {
  Vocabulary vocab;
  SyntheticCorpus corpus(CorpusConfig::UkPreset(), &vocab);
  QueryGenConfig qcfg;
  QueryGenerator qgen(qcfg, &corpus);
  StreamConfig scfg;
  scfg.num_objects = 500;
  scfg.mu = 100;
  const GeneratedStream g = GenerateStream(corpus, qgen, scfg);

  ASSERT_TRUE(WriteTrace(path_, vocab, g.stream));

  Vocabulary vocab2;
  std::vector<StreamTuple> loaded;
  ASSERT_TRUE(ReadTrace(path_, vocab2, &loaded));
  ASSERT_EQ(loaded.size(), g.stream.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    const StreamTuple& a = g.stream[i];
    const StreamTuple& b = loaded[i];
    ASSERT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.event_time_us, b.event_time_us);
    if (a.kind == TupleKind::kObject) {
      EXPECT_EQ(a.object.id, b.object.id);
      EXPECT_EQ(a.object.loc, b.object.loc);
      // Term ids match because vocab2 interned in file order and the file
      // was written from a densely-built vocabulary.
      ASSERT_EQ(a.object.terms.size(), b.object.terms.size());
      for (size_t t = 0; t < a.object.terms.size(); ++t) {
        EXPECT_EQ(vocab.TermString(a.object.terms[t]),
                  vocab2.TermString(b.object.terms[t]));
      }
    } else {
      EXPECT_EQ(a.query.id, b.query.id);
      EXPECT_EQ(a.query.region, b.query.region);
      EXPECT_EQ(a.query.expr.clauses().size(), b.query.expr.clauses().size());
    }
  }
}

TEST_F(TraceIoTest, RoundTripIntoPrepopulatedVocabularyRemaps) {
  Vocabulary vocab;
  const TermId a = vocab.Intern("alpha");
  const TermId b = vocab.Intern("beta");
  std::vector<StreamTuple> tuples;
  tuples.push_back(StreamTuple::OfObject(
      SpatioTextualObject::FromTerms(1, Point{1, 2}, {a, b})));
  ASSERT_TRUE(WriteTrace(path_, vocab, tuples));

  // Target vocabulary already has other terms: ids must remap.
  Vocabulary vocab2;
  vocab2.Intern("zzz");
  vocab2.Intern("beta");  // pre-existing shared term
  std::vector<StreamTuple> loaded;
  ASSERT_TRUE(ReadTrace(path_, vocab2, &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  const auto& terms = loaded[0].object.terms;
  ASSERT_EQ(terms.size(), 2u);
  std::vector<std::string> names;
  for (const TermId t : terms) names.push_back(vocab2.TermString(t));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(TraceIoTest, SampleRoundTrip) {
  Vocabulary vocab;
  WorkloadSample s;
  const TermId t = vocab.Intern("x");
  s.objects.push_back(SpatioTextualObject::FromTerms(1, Point{3, 4}, {t}));
  STSQuery q;
  q.id = 9;
  q.expr = BoolExpr::Or({t});
  q.region = Rect(0, 0, 5, 5);
  s.inserts.push_back(q);
  s.deletes.push_back(q);
  ASSERT_TRUE(WriteSample(path_, vocab, s));

  Vocabulary vocab2;
  WorkloadSample loaded;
  ASSERT_TRUE(ReadSample(path_, vocab2, &loaded));
  EXPECT_EQ(loaded.objects.size(), 1u);
  EXPECT_EQ(loaded.inserts.size(), 1u);
  EXPECT_EQ(loaded.deletes.size(), 1u);
  EXPECT_EQ(loaded.inserts[0].region, q.region);
}

TEST_F(TraceIoTest, MissingFileFails) {
  Vocabulary vocab;
  std::vector<StreamTuple> out;
  EXPECT_FALSE(ReadTrace("/nonexistent/path/trace.bin", vocab, &out));
}

TEST_F(TraceIoTest, CorruptMagicFails) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("JUNKJUNKJUNK", 1, 12, f);
  std::fclose(f);
  Vocabulary vocab;
  std::vector<StreamTuple> out;
  EXPECT_FALSE(ReadTrace(path_, vocab, &out));
}

// Bit-flipped length/count fields must fail cleanly — the declared counts
// are sanity-capped against the file size before any resize/reserve, so a
// corrupt header cannot drive a multi-GB allocation attempt.
class TraceIoCorruptionTest : public TraceIoTest {
 protected:
  // Writes one object tuple (1 term) and one insert-query tuple.
  void WriteSmallTrace() {
    Vocabulary vocab;
    const TermId t = vocab.Intern("t");
    std::vector<StreamTuple> tuples;
    tuples.push_back(StreamTuple::OfObject(
        SpatioTextualObject::FromTerms(1, Point{0, 0}, {t})));
    STSQuery q;
    q.id = 2;
    q.expr = BoolExpr::And({t});
    q.region = Rect(0, 0, 1, 1);
    tuples.push_back(StreamTuple::OfInsert(q));
    ASSERT_TRUE(WriteTrace(path_, vocab, tuples));
  }

  void CorruptU32At(long offset, uint32_t value) {
    FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, offset, SEEK_SET);
    std::fwrite(&value, sizeof(value), 1, f);
    std::fclose(f);
  }

  bool Read() {
    Vocabulary vocab;
    std::vector<StreamTuple> out;
    return ReadTrace(path_, vocab, &out);
  }

  // File layout offsets of the small trace (see trace_io.h):
  //   0 magic, 4 version, 8 #terms (u64), 16 #tuples (u64)
  //   24 term "t": u32 len + 1 byte                       -> tuple 0 at 29
  //   29 object: u8 kind, i64 time, u64 id, f64 x, f64 y  -> #terms at 62
  //   66 term[0]                                          -> tuple 1 at 70
  //   70 query: u8 kind, i64 time, u64 id, 4x f64 region  -> #clauses at 119
  //   123 clause 0: u32 #terms (at 123), u32 term
  static constexpr long kNumTermsOffset = 8;
  static constexpr long kNumTuplesOffset = 16;
  static constexpr long kTermLenOffset = 24;
  static constexpr long kObjectTermCountOffset = 62;
  static constexpr long kClauseCountOffset = 119;
  static constexpr long kClauseTermCountOffset = 123;
};

TEST_F(TraceIoCorruptionTest, FlippedVocabularyCountFails) {
  WriteSmallTrace();
  CorruptU32At(kNumTermsOffset, 0xFFFFFFFFu);  // ~4G declared terms
  EXPECT_FALSE(Read());
}

TEST_F(TraceIoCorruptionTest, FlippedTupleCountFails) {
  WriteSmallTrace();
  CorruptU32At(kNumTuplesOffset, 0x7FFFFFFFu);
  EXPECT_FALSE(Read());
}

TEST_F(TraceIoCorruptionTest, FlippedTermLengthFails) {
  WriteSmallTrace();
  CorruptU32At(kTermLenOffset, 0x40000000u);
  EXPECT_FALSE(Read());
}

TEST_F(TraceIoCorruptionTest, FlippedObjectTermCountFails) {
  WriteSmallTrace();
  CorruptU32At(kObjectTermCountOffset, 0x00FFFFFFu);
  EXPECT_FALSE(Read());
}

TEST_F(TraceIoCorruptionTest, FlippedClauseCountFails) {
  WriteSmallTrace();
  CorruptU32At(kClauseCountOffset, 0xEFFFFFFFu);
  EXPECT_FALSE(Read());
}

TEST_F(TraceIoCorruptionTest, FlippedClauseTermCountFails) {
  WriteSmallTrace();
  CorruptU32At(kClauseTermCountOffset, 0xEFFFFFFFu);
  EXPECT_FALSE(Read());
}

TEST_F(TraceIoCorruptionTest, EveryFlippedBytePositionFailsOrRoundTrips) {
  // Sweep: flipping any single byte must either still parse (payload-only
  // damage) or fail cleanly — never crash or over-allocate.
  WriteSmallTrace();
  std::string original;
  {
    FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      original.append(buf, n);
    }
    std::fclose(f);
  }
  for (size_t i = 0; i < original.size(); ++i) {
    std::string corrupted = original;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0xFF);
    FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(corrupted.data(), 1, corrupted.size(), f);
    std::fclose(f);
    Read();  // must terminate without crashing; result may be either way
  }
}

TEST_F(TraceIoTest, TruncatedFileFails) {
  Vocabulary vocab;
  std::vector<StreamTuple> tuples;
  tuples.push_back(StreamTuple::OfObject(SpatioTextualObject::FromTerms(
      1, Point{0, 0}, {vocab.Intern("t")})));
  ASSERT_TRUE(WriteTrace(path_, vocab, tuples));
  // Truncate: keep only the first 16 bytes.
  {
    FILE* f = std::fopen(path_.c_str(), "rb");
    char buf[16];
    ASSERT_EQ(std::fread(buf, 1, 16, f), 16u);
    std::fclose(f);
    f = std::fopen(path_.c_str(), "wb");
    std::fwrite(buf, 1, 16, f);
    std::fclose(f);
  }
  Vocabulary vocab2;
  std::vector<StreamTuple> out;
  EXPECT_FALSE(ReadTrace(path_, vocab2, &out));
}

}  // namespace
}  // namespace ps2
