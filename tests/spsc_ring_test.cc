#include "runtime/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace ps2 {
namespace {

// Pops a single item (test convenience; the engine always pops batches).
template <typename T>
bool PopOne(SpscRing<T>& ring, T* out) {
  std::vector<T> batch;
  if (ring.PopBatch(1, &batch) == 0) return false;
  *out = std::move(batch.front());
  return true;
}

TEST(SpscRingTest, FifoOrder) {
  EventCount ready;
  SpscRing<int> ring(8, &ready);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(std::move(i)));
  for (int i = 0; i < 5; ++i) {
    int v = -1;
    ASSERT_TRUE(PopOne(ring, &v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EventCount ready;
  EXPECT_EQ(SpscRing<int>(1, &ready).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(64, &ready).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65, &ready).capacity(), 128u);
  EXPECT_EQ(SpscRing<int>(1000, &ready).capacity(), 1024u);
}

TEST(SpscRingTest, TryPushFailsWhenFull) {
  EventCount ready;
  SpscRing<int> ring(64, &ready);
  for (size_t i = 0; i < ring.capacity(); ++i) {
    EXPECT_TRUE(ring.TryPush(static_cast<int>(i)));
  }
  EXPECT_FALSE(ring.TryPush(999));
  // Freeing one slot re-admits exactly one push.
  int v = -1;
  ASSERT_TRUE(PopOne(ring, &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.TryPush(999));
  EXPECT_FALSE(ring.TryPush(1000));
}

TEST(SpscRingTest, WraparoundPreservesFifoAcrossManyLaps) {
  EventCount ready;
  SpscRing<uint64_t> ring(64, &ready);
  // Interleave pushes and pops so head/tail lap the buffer many times and
  // cross the 64-bit index arithmetic in every alignment.
  uint64_t next_push = 0, next_pop = 0;
  Rng rng(7);
  std::vector<uint64_t> batch;
  while (next_pop < 100000) {
    const size_t burst = 1 + rng.NextBelow(ring.capacity());
    for (size_t i = 0; i < burst; ++i) {
      if (!ring.TryPush(uint64_t{next_push})) break;
      ++next_push;
    }
    batch.clear();
    ring.PopBatch(1 + rng.NextBelow(ring.capacity()), &batch);
    for (const uint64_t v : batch) {
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(ring.pending(), next_push - next_pop);
}

TEST(SpscRingTest, PopBatchAppendsAndRespectsLimit) {
  EventCount ready;
  SpscRing<int> ring(64, &ready);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ring.TryPush(std::move(i)));
  std::vector<int> out = {-1};  // PopBatch appends; existing content stays
  EXPECT_EQ(ring.PopBatch(4, &out), 4u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], -1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[4], 3);
  EXPECT_EQ(ring.PopBatch(100, &out), 6u);
  EXPECT_EQ(out.size(), 11u);
  EXPECT_EQ(out.back(), 9);
  EXPECT_EQ(ring.PopBatch(100, &out), 0u);
}

TEST(SpscRingTest, PushAfterCloseFails) {
  EventCount ready;
  SpscRing<int> ring(64, &ready);
  ring.Close();
  EXPECT_FALSE(ring.TryPush(1));
  WaitContext ctx(WaitStrategy::kBlocking);
  int v = 2;
  EXPECT_FALSE(ring.Push(std::move(v), ctx));
}

TEST(SpscRingTest, DrainsBeforeEndOfStream) {
  EventCount ready;
  SpscRing<int> ring(64, &ready);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  ring.Close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.closed_and_drained());
  int v = -1;
  ASSERT_TRUE(PopOne(ring, &v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(PopOne(ring, &v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(PopOne(ring, &v));
  EXPECT_TRUE(ring.closed_and_drained());
}

TEST(SpscRingTest, CloseReleasesBlockedProducer) {
  EventCount ready;
  SpscRing<int> ring(64, &ready);
  for (size_t i = 0; i < ring.capacity(); ++i) {
    ASSERT_TRUE(ring.TryPush(static_cast<int>(i)));
  }
  std::atomic<bool> returned{false};
  std::atomic<bool> result{true};
  std::thread producer([&] {
    WaitContext ctx(WaitStrategy::kBlocking);
    int v = 999;
    result = ring.Push(std::move(v), ctx);  // parks: ring is full
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  ring.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(result.load());
}

TEST(SpscRingTest, HighwaterTracksDeepestDepth) {
  EventCount ready;
  SpscRing<int> ring(64, &ready);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.TryPush(std::move(i)));
  EXPECT_EQ(ring.highwater(), 10u);
  // The mark is a producer-side estimate against its cached head: popping
  // never lowers it, and later pushes may overshoot (stale cache) but never
  // shrink it below the true deepest depth.
  std::vector<int> out;
  ring.PopBatch(10, &out);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.TryPush(std::move(i)));
  EXPECT_GE(ring.highwater(), 10u);
}

// One producer parked on a full ring, one consumer parked on an empty one,
// strategies crossed over every combination: the EventCount handshake must
// never lose a wakeup. Run under TSan this is the park/unpark race test.
class SpscRingWaitTest : public ::testing::TestWithParam<WaitStrategy> {};

TEST_P(SpscRingWaitTest, ProducerConsumerStreamDeliversAllInOrder) {
  constexpr uint64_t kItems = 200000;
  EventCount consumer_ready;
  SpscRing<uint64_t> ring(64, &consumer_ready);  // small: constant pressure
  std::thread producer([&] {
    WaitContext ctx(GetParam());
    for (uint64_t i = 0; i < kItems; ++i) {
      uint64_t v = i;
      ASSERT_TRUE(ring.Push(std::move(v), ctx));
    }
    ring.Close();
  });
  uint64_t expected = 0;
  WaitContext ctx(GetParam());
  std::vector<uint64_t> batch;
  while (true) {
    batch.clear();
    if (ring.PopBatch(128, &batch) == 0) {
      if (ring.closed_and_drained()) break;
      if (GetParam() == WaitStrategy::kBusyPoll) {
        CpuRelax();
        continue;
      }
      ctx.Await(consumer_ready, [&] {
        return !ring.Empty() || ring.closed();
      });
      continue;
    }
    for (const uint64_t v : batch) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
  EXPECT_GE(ring.highwater(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SpscRingWaitTest,
                         ::testing::Values(WaitStrategy::kBlocking,
                                           WaitStrategy::kAdaptiveSpin,
                                           WaitStrategy::kBusyPoll),
                         [](const auto& info) {
                           std::string name = WaitStrategyName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// A consumer draining several rings through one shared EventCount — the
// engine's worker topology. Producers close their rings at random points;
// the consumer must see every item of every ring exactly once.
TEST(SpscRingTest, SharedEventCountAcrossRingsLosesNothing) {
  constexpr int kRings = 4;
  constexpr uint64_t kPerRing = 50000;
  EventCount consumer_ready;
  std::vector<std::unique_ptr<SpscRing<uint64_t>>> rings;
  for (int r = 0; r < kRings; ++r) {
    rings.push_back(std::make_unique<SpscRing<uint64_t>>(64, &consumer_ready));
  }
  std::vector<std::thread> producers;
  for (int r = 0; r < kRings; ++r) {
    producers.emplace_back([&, r] {
      WaitContext ctx(WaitStrategy::kBlocking);
      for (uint64_t i = 0; i < kPerRing; ++i) {
        uint64_t v = static_cast<uint64_t>(r) * kPerRing + i;
        ASSERT_TRUE(rings[r]->Push(std::move(v), ctx));
      }
      rings[r]->Close();
    });
  }
  std::vector<uint64_t> next(kRings, 0);
  uint64_t total = 0;
  WaitContext ctx(WaitStrategy::kAdaptiveSpin);
  std::vector<uint64_t> batch;
  while (true) {
    bool progressed = false;
    bool all_done = true;
    for (int r = 0; r < kRings; ++r) {
      batch.clear();
      if (rings[r]->PopBatch(64, &batch) > 0) {
        progressed = true;
        for (const uint64_t v : batch) {
          ASSERT_EQ(v, static_cast<uint64_t>(r) * kPerRing + next[r]);
          ++next[r];
          ++total;
        }
      }
      if (!rings[r]->closed_and_drained()) all_done = false;
    }
    if (all_done) break;
    if (!progressed) {
      ctx.Await(consumer_ready, [&] {
        for (const auto& ring : rings) {
          if (!ring->Empty() || ring->closed()) return true;
        }
        return false;
      });
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(total, static_cast<uint64_t>(kRings) * kPerRing);
}

// Reference model of BoundedQueue's observable stream semantics — bounded
// FIFO, push fails when full or closed, queued items drain after Close.
// (The real BoundedQueue blocks instead of failing, so the model exposes
// the same contract through non-blocking calls the fuzzer can drive.)
struct QueueModel {
  explicit QueueModel(size_t cap) : capacity(cap) {}
  size_t capacity;
  std::deque<int> items;
  bool closed = false;

  bool TryPush(int v) {
    if (closed || items.size() >= capacity) return false;
    items.push_back(v);
    return true;
  }
  std::vector<int> PopBatch(size_t max) {
    std::vector<int> out;
    while (!items.empty() && out.size() < max) {
      out.push_back(items.front());
      items.pop_front();
    }
    return out;
  }
};

// Randomized differential run against the BoundedQueue model: identical
// operation sequences applied to both must yield identical observable
// streams through full rings, wraparound, and mid-stream Close.
TEST(SpscRingTest, FuzzMatchesBoundedQueueSemantics) {
  Rng rng(20260808);
  for (int round = 0; round < 40; ++round) {
    EventCount ready;
    SpscRing<int> ring(64, &ready);
    QueueModel model(ring.capacity());
    int next = 0;
    bool closed = false;
    for (int op = 0; op < 400; ++op) {
      const uint32_t k = rng.NextBelow(10);
      if (k < 5) {  // push burst
        const size_t burst = 1 + rng.NextBelow(100);
        for (size_t i = 0; i < burst; ++i) {
          const bool ring_ok = ring.TryPush(int{next});
          const bool model_ok = model.TryPush(next);
          ASSERT_EQ(ring_ok, model_ok) << "push divergence at item " << next;
          if (ring_ok) ++next;
        }
      } else if (k < 9) {  // pop burst
        const size_t want = 1 + rng.NextBelow(100);
        std::vector<int> from_ring;
        ring.PopBatch(want, &from_ring);
        // The ring may pop fewer than available against its stale cached
        // tail, but an empty result guarantees the ring was truly empty —
        // and whatever it pops must be the model's FIFO prefix.
        if (from_ring.empty()) ASSERT_TRUE(model.items.empty());
        ASSERT_EQ(from_ring, model.PopBatch(from_ring.size()));
      } else if (!closed && round % 2 == 0) {  // close mid-stream, even rounds
        ring.Close();
        model.closed = true;
        closed = true;
      }
      ASSERT_EQ(ring.pending(), model.items.size());
      ASSERT_EQ(ring.Empty(), model.items.empty());
      ASSERT_EQ(ring.closed(), model.closed);
    }
    // Drain both to the end of stream.
    while (true) {
      std::vector<int> from_ring;
      if (ring.PopBatch(ring.capacity(), &from_ring) == 0) break;
      ASSERT_EQ(from_ring, model.PopBatch(from_ring.size()));
    }
    ASSERT_TRUE(ring.Empty());
    ASSERT_TRUE(model.items.empty());
  }
}

}  // namespace
}  // namespace ps2
