#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ps2 {
namespace {

TEST(CostModelTest, Definition1Formula) {
  CostModel cm;
  cm.c1 = 2.0;
  cm.c2 = 3.0;
  cm.c3 = 5.0;
  cm.c4 = 7.0;
  WorkerLoadTally t;
  t.objects = 10;
  t.inserts = 4;
  t.deletes = 3;
  // 2*10*4 + 3*10 + 5*4 + 7*3 = 80 + 30 + 20 + 21 = 151.
  EXPECT_DOUBLE_EQ(WorkerLoad(cm, t), 151.0);
}

TEST(CostModelTest, ZeroTallyZeroLoad) {
  EXPECT_DOUBLE_EQ(WorkerLoad(CostModel{}, WorkerLoadTally{}), 0.0);
}

TEST(CostModelTest, TallyClear) {
  WorkerLoadTally t;
  t.objects = 5;
  t.inserts = 5;
  t.deletes = 5;
  t.Clear();
  EXPECT_EQ(t.objects, 0u);
  EXPECT_EQ(t.inserts, 0u);
  EXPECT_EQ(t.deletes, 0u);
}

TEST(CostModelTest, CellLoadDefinition3) {
  EXPECT_DOUBLE_EQ(CellLoad(10, 2.5), 25.0);
  EXPECT_DOUBLE_EQ(CellLoad(0, 100), 0.0);
}

TEST(BalanceTest, UniformIsOne) {
  EXPECT_DOUBLE_EQ(BalanceFactor({3.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(BalanceFactor({}), 1.0);
  EXPECT_DOUBLE_EQ(BalanceFactor({0.0, 0.0}), 1.0);
}

TEST(BalanceTest, Ratio) {
  EXPECT_DOUBLE_EQ(BalanceFactor({2.0, 6.0}), 3.0);
  EXPECT_DOUBLE_EQ(BalanceFactor({1.0, 5.0, 2.0}), 5.0);
}

TEST(BalanceTest, ZeroMinIsInfinite) {
  EXPECT_TRUE(std::isinf(BalanceFactor({0.0, 4.0})));
}

TEST(BalanceTest, TotalLoad) {
  EXPECT_DOUBLE_EQ(TotalLoad({1.0, 2.5, 3.5}), 7.0);
  EXPECT_DOUBLE_EQ(TotalLoad({}), 0.0);
}

// The superadditivity that drives the whole partitioning story: splitting a
// workload across workers *reduces* the Definition-1 matching term.
TEST(CostModelTest, SplittingReducesMatchingCost) {
  CostModel cm;  // c1 = 1
  WorkerLoadTally whole;
  whole.objects = 100;
  whole.inserts = 100;
  WorkerLoadTally half;
  half.objects = 50;
  half.inserts = 50;
  EXPECT_GT(WorkerLoad(cm, whole), 2 * WorkerLoad(cm, half));
}

}  // namespace
}  // namespace ps2
