#include "core/workload_stats.h"

#include <gtest/gtest.h>

namespace ps2 {
namespace {

class WorkloadStatsTest : public ::testing::Test {
 protected:
  TermId T(const std::string& s) { return vocab_.Intern(s); }
  Vocabulary vocab_;
};

TEST_F(WorkloadStatsTest, BoundsCoverObjectsAndQueries) {
  WorkloadSample s;
  s.objects.push_back(SpatioTextualObject::FromTerms(1, Point{5, 5}, {T("a")}));
  STSQuery q;
  q.id = 1;
  q.expr = BoolExpr::And({T("a")});
  q.region = Rect(-10, 0, 0, 20);
  s.inserts.push_back(q);
  const Rect b = s.Bounds();
  EXPECT_TRUE(b.Contains(Point{5, 5}));
  EXPECT_TRUE(b.Contains(q.region));
}

TEST_F(WorkloadStatsTest, EmptySampleEmptyBounds) {
  WorkloadSample s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.Bounds().empty());
}

TEST_F(WorkloadStatsTest, TermStatsCountsObjectAndRoutingFrequencies) {
  const TermId a = T("a"), b = T("b"), c = T("c");
  vocab_.AddCount(a, 10);
  vocab_.AddCount(b, 1);
  WorkloadSample s;
  s.objects.push_back(SpatioTextualObject::FromTerms(1, Point{0, 0}, {a, b}));
  s.objects.push_back(SpatioTextualObject::FromTerms(2, Point{0, 0}, {a}));
  STSQuery q;
  q.id = 1;
  q.expr = BoolExpr::And({a, b});  // routing term = least frequent = b
  q.region = Rect(0, 0, 1, 1);
  s.inserts.push_back(q);
  const TermStats stats = TermStats::Compute(s, vocab_);
  EXPECT_EQ(stats.ObjectFreq(a), 2u);
  EXPECT_EQ(stats.ObjectFreq(b), 1u);
  EXPECT_EQ(stats.QueryRoutingFreq(b), 1u);
  EXPECT_EQ(stats.QueryRoutingFreq(a), 0u);
  EXPECT_EQ(stats.ObjectFreq(c), 0u);
}

TEST_F(WorkloadStatsTest, AccumulateVocabularyCounts) {
  const TermId a = T("a");
  WorkloadSample s;
  s.objects.push_back(SpatioTextualObject::FromTerms(1, Point{0, 0}, {a}));
  s.objects.push_back(SpatioTextualObject::FromTerms(2, Point{0, 0}, {a}));
  AccumulateVocabularyCounts(s, vocab_);
  EXPECT_EQ(vocab_.Count(a), 2u);
}

}  // namespace
}  // namespace ps2
