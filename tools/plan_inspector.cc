// plan_inspector: builds a partition plan with any algorithm over a
// synthetic workload and prints a human-readable summary — an ASCII map of
// the worker assignment, per-worker load estimates and the text/space mix.
// Useful for eyeballing what a partitioner actually did.
//
//   plan_inspector [partitioner] [dataset] [workers] [queries Q1|Q2|Q3]
//   e.g.  plan_inspector hybrid US 8 Q3
#include <cstdio>
#include <cstring>
#include <string>

#include "partition/plan.h"
#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

using namespace ps2;

int main(int argc, char** argv) {
  const std::string algo = argc > 1 ? argv[1] : "hybrid";
  const std::string dataset = argc > 2 ? argv[2] : "US";
  const int workers = argc > 3 ? std::atoi(argv[3]) : 8;
  const std::string qset = argc > 4 ? argv[4] : "Q3";

  auto partitioner = MakePartitioner(algo);
  if (partitioner == nullptr) {
    std::fprintf(stderr,
                 "unknown partitioner '%s' (try: frequency hypergraph "
                 "metric grid kdtree rtree hybrid)\n",
                 algo.c_str());
    return 1;
  }

  Vocabulary vocab;
  CorpusConfig ccfg = dataset == "UK" ? CorpusConfig::UkPreset()
                                      : CorpusConfig::UsPreset();
  SyntheticCorpus corpus(ccfg, &vocab);
  corpus.Generate(20000);
  QueryGenConfig qcfg;
  qcfg.kind = qset == "Q1"   ? QueryKind::kQ1
              : qset == "Q2" ? QueryKind::kQ2
                             : QueryKind::kQ3;
  QueryGenerator qgen(qcfg, &corpus);
  StreamConfig scfg;
  scfg.num_objects = 30000;
  scfg.mu = 30000;
  const GeneratedStream stream = GenerateStream(corpus, qgen, scfg);

  PartitionConfig cfg;
  cfg.num_workers = workers;
  const PartitionPlan plan =
      partitioner->Build(stream.sample, vocab, cfg);

  std::printf("partitioner=%s dataset=%s workers=%d queries=%s\n",
              algo.c_str(), dataset.c_str(), workers, qset.c_str());
  std::printf("grid: %ux%u cells over %s\n", plan.grid.side(),
              plan.grid.side(), plan.grid.bounds().ToString().c_str());
  std::printf("text-routed cells: %zu / %u\n\n", plan.NumTextCells(),
              plan.grid.NumCells());

  // ASCII map (downsample to at most 32x32): digit = worker id of a
  // space-routed cell, '#' = text-routed.
  const uint32_t side = plan.grid.side();
  const uint32_t step = side > 32 ? side / 32 : 1;
  for (uint32_t cy = 0; cy < side; cy += step) {
    for (uint32_t cx = 0; cx < side; cx += step) {
      const CellRoute& r = plan.cells[plan.grid.ToId(cx, cy)];
      if (r.IsText()) {
        std::putchar('#');
      } else {
        std::putchar(r.worker < 10 ? '0' + r.worker
                                   : 'a' + (r.worker - 10) % 26);
      }
    }
    std::putchar('\n');
  }

  const PlanLoadReport report =
      EstimatePlanLoad(plan, stream.sample, vocab, cfg.cost);
  std::printf("\nestimated Definition-1 loads (sample of %zu objects, "
              "%zu inserts):\n",
              stream.sample.objects.size(), stream.sample.inserts.size());
  for (int w = 0; w < workers; ++w) {
    std::printf("  worker %2d: load %12.0f  (objects %llu, inserts %llu)\n",
                w, report.loads[w],
                (unsigned long long)report.tallies[w].objects,
                (unsigned long long)report.tallies[w].inserts);
  }
  std::printf("total %.0f, balance Lmax/Lmin = %.2f\n", report.total_load,
              report.balance);
  std::printf("dispatcher plan footprint: %.2f MB\n",
              plan.MemoryBytes() / 1048576.0);
  return 0;
}
