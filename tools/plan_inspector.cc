// plan_inspector: builds a partition plan with any algorithm over a
// synthetic workload and prints a human-readable summary — an ASCII map of
// the worker assignment, per-worker load estimates and the text/space mix.
// Useful for eyeballing what a partitioner actually did.
//
//   plan_inspector [partitioner] [dataset] [workers] [queries Q1|Q2|Q3]
//   e.g.  plan_inspector hybrid US 8 Q3
//
// It can also open a durability directory and dump what a recovery would
// load: the checkpointed plan, query count, vocabulary size and the WAL
// tail.
//
//   plan_inspector --checkpoint <dir>
//
// A shard-fabric root directory (one SHARDMAP + shard-<i>/ subdirectories)
// is inspected with --shards: the cell -> shard ownership map, the map
// version, and a read-only recovery summary of every shard.
//
//   plan_inspector --shards <dir>
//
// --metrics stands the durable state back up (a real Restore, single
// engine or fabric) and prints the Prometheus rendering of its metrics
// snapshot — a quick way to check what a scraper would see before wiring
// the exporter into a deployment.
//
//   plan_inspector --metrics <dir>
#include <cstdio>
#include <cstring>
#include <string>

#include "partition/plan.h"
#include "persist/durability.h"
#include "runtime/ps2stream.h"
#include "shard/shard_map.h"
#include "subscribe/spec.h"
#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

using namespace ps2;

namespace {

// ASCII map (downsample to at most 32x32): digit = worker id of a
// space-routed cell, '#' = text-routed.
void PrintPlanMap(const PartitionPlan& plan) {
  const uint32_t side = plan.grid.side();
  const uint32_t step = side > 32 ? side / 32 : 1;
  for (uint32_t cy = 0; cy < side; cy += step) {
    for (uint32_t cx = 0; cx < side; cx += step) {
      const CellRoute& r = plan.cells[plan.grid.ToId(cx, cy)];
      if (r.IsText()) {
        std::putchar('#');
      } else {
        std::putchar(r.worker < 10 ? '0' + r.worker
                                   : 'a' + (r.worker - 10) % 26);
      }
    }
    std::putchar('\n');
  }
}

int InspectCheckpoint(const std::string& dir) {
  RecoveredState state;
  // Read-only: inspection must not truncate a torn WAL tail — that is the
  // actual recovery's job, and the corrupt bytes are forensic evidence.
  if (!RecoverState(dir, &state, /*truncate_torn=*/false)) {
    std::fprintf(stderr,
                 "no usable checkpoint at '%s' (missing CURRENT, or the "
                 "committed checkpoint failed validation)\n",
                 dir.c_str());
    return 1;
  }
  std::printf("durable state at %s\n", dir.c_str());
  std::printf("checkpoint: seq %llu, lsn high-water %llu\n",
              (unsigned long long)state.checkpoint_seq,
              (unsigned long long)state.last_lsn);
  std::printf("wal tail:   %llu records replayed across %d segment(s) "
              "(%llu subscribe, %llu unsubscribe, %llu update, "
              "%llu cell-route), %llu bytes\n",
              (unsigned long long)state.wal.records, state.wal_segments,
              (unsigned long long)state.wal.subscribes,
              (unsigned long long)state.wal.unsubscribes,
              (unsigned long long)state.wal.updates,
              (unsigned long long)state.wal.cell_routes,
              (unsigned long long)state.wal.bytes_replayed);
  if (state.wal.truncated) {
    std::printf("            torn tail: recovery would truncate %llu "
                "trailing bytes (left untouched by this inspection)\n",
                (unsigned long long)state.wal.truncated_bytes);
  }
  std::printf("vocabulary: %zu terms (%llu occurrences)\n",
              state.vocab.size(),
              (unsigned long long)state.vocab.TotalCount());
  std::printf("queries:    %zu live (next id %llu), next object id %llu\n",
              state.queries.size(),
              (unsigned long long)state.next_query_id,
              (unsigned long long)state.next_object_id);
  size_t per_class[3] = {0, 0, 0};
  for (const STSQuery& q : state.queries) {
    ++per_class[static_cast<size_t>(q.cls)];
  }
  std::printf("classes:    %zu boolean, %zu similarity, %zu top-k\n",
              per_class[0], per_class[1], per_class[2]);
  for (const STSQuery& q : state.queries) {
    size_t terms = 0;
    for (const auto& clause : q.expr.clauses()) terms += clause.size();
    std::printf("  q%-6llu %-10s", (unsigned long long)q.id,
                SubscriptionClassName(q.cls));
    if (q.cls == SubscriptionClass::kSimilarity) {
      std::printf(" tau=%.3f", q.tau);
    } else if (q.cls == SubscriptionClass::kTopK) {
      std::printf(" k=%u", q.k);
    }
    std::printf(" region=%s terms=%zu\n", q.region.ToString().c_str(),
                terms);
  }
  if (!state.topk.empty()) {
    size_t held = 0;
    for (const TopKEntry& e : state.topk.entries) held += e.held ? 1 : 0;
    std::printf("top-k:      %zu checkpointed entries (%zu held, %zu "
                "buffered), watermark %lld us\n",
                state.topk.entries.size(), held,
                state.topk.entries.size() - held,
                (long long)state.topk.watermark_us);
  }
  std::printf("plan: %ux%u grid over %s, %d workers, "
              "%zu / %u text-routed cells\n",
              state.plan.grid.side(), state.plan.grid.side(),
              state.plan.grid.bounds().ToString().c_str(),
              state.plan.num_workers, state.plan.NumTextCells(),
              state.plan.grid.NumCells());
  if (state.had_snapshot) {
    size_t h2_terms = 0;
    for (CellId c = 0; c < state.snapshot.NumCells(); ++c) {
      const RoutingSnapshot::Cell& cell = state.snapshot.cell(c);
      if (cell.IsText()) h2_terms += cell.text->h2.size();
    }
    std::printf("snapshot:   version %llu, %zu live H2 term entries\n",
                (unsigned long long)state.snapshot.version, h2_terms);
  }
  std::printf("\n");
  PrintPlanMap(state.plan);
  return 0;
}

// ASCII map of the cell -> shard assignment (downsampled like the plan
// map): digit/letter = owning shard.
void PrintShardMap(const ShardMap& map, uint32_t side) {
  const uint32_t step = side > 32 ? side / 32 : 1;
  for (uint32_t cy = 0; cy < side; cy += step) {
    for (uint32_t cx = 0; cx < side; cx += step) {
      const ShardId s = map.OwnerOf(cy * side + cx);
      std::putchar(s < 10 ? '0' + s : 'a' + (s - 10) % 26);
    }
    std::putchar('\n');
  }
}

int InspectShards(const std::string& dir) {
  ShardMap map;
  if (!ReadShardMapFile(ShardMapPath(dir), &map)) {
    std::fprintf(stderr,
                 "no usable SHARDMAP at '%s' (not a fabric root, or the "
                 "file failed CRC validation)\n",
                 dir.c_str());
    return 1;
  }
  std::printf("shard fabric at %s\n", dir.c_str());
  std::printf("shardmap: version %llu, %d shard(s), %zu cells\n",
              (unsigned long long)map.version, map.num_shards,
              map.cell_shard.size());

  // Per-shard ownership + read-only recovery summaries.
  std::vector<size_t> cells_owned(static_cast<size_t>(map.num_shards), 0);
  for (const ShardId s : map.cell_shard) {
    ++cells_owned[static_cast<size_t>(s)];
  }
  uint32_t side = 1;
  while (side * side < map.cell_shard.size()) side *= 2;
  for (int s = 0; s < map.num_shards; ++s) {
    const std::string shard_dir = ShardDirPath(dir, s);
    RecoveredState state;
    if (RecoverState(shard_dir, &state, /*truncate_torn=*/false)) {
      std::printf(
          "shard %d: %zu cells owned, %zu live queries, checkpoint seq "
          "%llu, %llu WAL records%s, vocab %zu terms\n",
          s, cells_owned[static_cast<size_t>(s)], state.queries.size(),
          (unsigned long long)state.checkpoint_seq,
          (unsigned long long)state.wal.records,
          state.wal.truncated ? " (torn tail)" : "", state.vocab.size());
    } else {
      std::printf("shard %d: %zu cells owned, NO usable durable state at %s\n",
                  s, cells_owned[static_cast<size_t>(s)],
                  shard_dir.c_str());
    }
  }
  std::printf("\ncell -> shard ownership:\n");
  PrintShardMap(map, side);
  return 0;
}

int InspectMetrics(const std::string& dir) {
  PS2Stream ps2;
  if (!ps2.Restore(dir)) {
    std::fprintf(stderr,
                 "no restorable state at '%s' (expects a durability "
                 "directory or a shard-fabric root)\n",
                 dir.c_str());
    return 1;
  }
  std::fputs(ps2.MetricsPrometheus().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--checkpoint") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: plan_inspector --checkpoint <dir>\n");
      return 1;
    }
    return InspectCheckpoint(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--shards") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: plan_inspector --shards <dir>\n");
      return 1;
    }
    return InspectShards(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--metrics") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: plan_inspector --metrics <dir>\n");
      return 1;
    }
    return InspectMetrics(argv[2]);
  }

  const std::string algo = argc > 1 ? argv[1] : "hybrid";
  const std::string dataset = argc > 2 ? argv[2] : "US";
  const int workers = argc > 3 ? std::atoi(argv[3]) : 8;
  const std::string qset = argc > 4 ? argv[4] : "Q3";

  auto partitioner = MakePartitioner(algo);
  if (partitioner == nullptr) {
    std::fprintf(stderr,
                 "unknown partitioner '%s' (try: frequency hypergraph "
                 "metric grid kdtree rtree hybrid)\n",
                 algo.c_str());
    return 1;
  }

  Vocabulary vocab;
  CorpusConfig ccfg = dataset == "UK" ? CorpusConfig::UkPreset()
                                      : CorpusConfig::UsPreset();
  SyntheticCorpus corpus(ccfg, &vocab);
  corpus.Generate(20000);
  QueryGenConfig qcfg;
  qcfg.kind = qset == "Q1"   ? QueryKind::kQ1
              : qset == "Q2" ? QueryKind::kQ2
                             : QueryKind::kQ3;
  QueryGenerator qgen(qcfg, &corpus);
  StreamConfig scfg;
  scfg.num_objects = 30000;
  scfg.mu = 30000;
  const GeneratedStream stream = GenerateStream(corpus, qgen, scfg);

  PartitionConfig cfg;
  cfg.num_workers = workers;
  const PartitionPlan plan =
      partitioner->Build(stream.sample, vocab, cfg);

  std::printf("partitioner=%s dataset=%s workers=%d queries=%s\n",
              algo.c_str(), dataset.c_str(), workers, qset.c_str());
  std::printf("grid: %ux%u cells over %s\n", plan.grid.side(),
              plan.grid.side(), plan.grid.bounds().ToString().c_str());
  std::printf("text-routed cells: %zu / %u\n\n", plan.NumTextCells(),
              plan.grid.NumCells());

  PrintPlanMap(plan);

  const PlanLoadReport report =
      EstimatePlanLoad(plan, stream.sample, vocab, cfg.cost);
  std::printf("\nestimated Definition-1 loads (sample of %zu objects, "
              "%zu inserts):\n",
              stream.sample.objects.size(), stream.sample.inserts.size());
  for (int w = 0; w < workers; ++w) {
    std::printf("  worker %2d: load %12.0f  (objects %llu, inserts %llu)\n",
                w, report.loads[w],
                (unsigned long long)report.tallies[w].objects,
                (unsigned long long)report.tallies[w].inserts);
  }
  std::printf("total %.0f, balance Lmax/Lmin = %.2f\n", report.total_load,
              report.balance);
  std::printf("dispatcher plan footprint: %.2f MB\n",
              plan.MemoryBytes() / 1048576.0);
  return 0;
}
