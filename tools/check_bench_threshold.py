#!/usr/bin/env python3
"""CI gate for the worker hot-path benchmark.

Usage: check_bench_threshold.py BENCH_hotpath.json bench/hotpath_baseline.json

Reads the measured BENCH_hotpath.json (written by bench_hotpath) and fails
(exit 1) when the best batched throughput drops more than `allowed_drop`
(default 20%) below the committed baseline's batched_objects_per_sec.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        measured = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    # Gate on the batched rows at the baseline's subscription level only,
    # and take the *minimum* across matching rows: a regression must not be
    # masked by a healthy number at a different (easier) configuration.
    subs = float(baseline["subscriptions"])
    worst = None
    for table in measured.get("tables", []):
        cols = table.get("columns", [])
        if not {"path", "subscriptions", "objs_per_sec"} <= set(cols):
            continue
        path_i = cols.index("path")
        subs_i = cols.index("subscriptions")
        tput_i = cols.index("objs_per_sec")
        for row in table.get("rows", []):
            if row[path_i] == "batched" and float(row[subs_i]) == subs:
                tput = float(row[tput_i])
                worst = tput if worst is None else min(worst, tput)
    if worst is None:
        print(
            f"FAIL: no batched row at {subs:.0f} subscriptions in measured "
            "bench JSON (was the bench run in the baseline's mode?)"
        )
        return 1

    committed = float(baseline["batched_objects_per_sec"])
    allowed_drop = float(baseline.get("allowed_drop", 0.20))
    floor = committed * (1.0 - allowed_drop)
    verdict = "OK" if worst >= floor else "FAIL"
    print(
        f"{verdict}: batched objects/sec at {subs:.0f} subs "
        f"measured={worst:.0f} baseline={committed:.0f} floor={floor:.0f} "
        f"(allowed drop {allowed_drop:.0%})"
    )
    return 0 if worst >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
