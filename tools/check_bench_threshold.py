#!/usr/bin/env python3
"""CI gate for benchmark metrics.

Usage: check_bench_threshold.py BENCH_<name>.json bench/<name>_baseline.json

Reads a measured BENCH_*.json (written by a bench via bench_util's JSON
mirror) and checks it against the committed baseline. Exit 1 on any gate
failure.

Two baseline formats:

Multi-gate (preferred) — a "gates" list, each entry:
  path            row filter: value of the "path" column
  subscriptions   row filter: the subscription level to gate at
  filters         optional {column: value} extra row filters
  metric          column holding the gated value
  direction       "floor" (throughput must not drop) or "ceiling"
                  (latency must not rise); default "floor"
  baseline_value  committed reference value
  allowed_drop    floor gates: tolerated relative drop (default 0.20)
  allowed_rise    ceiling gates: tolerated relative rise (default 0.0 —
                  baseline_value IS the ceiling)

Legacy single-gate — top-level subscriptions/path/metric/baseline_value/
allowed_drop keys, gating a throughput floor exactly as before.

Floor gates take the *minimum* across matching rows, ceiling gates the
*maximum*: a regression must not be masked by a healthy number at a
different (easier) configuration.
"""

import json
import sys


def matching_values(measured, gate):
    """Yields the gated metric from every row matching the gate's filters."""
    subs = float(gate["subscriptions"])
    path = gate.get("path", "batched")
    metric = gate.get("metric", "objs_per_sec")
    extra = gate.get("filters", {})
    for table in measured.get("tables", []):
        cols = table.get("columns", [])
        needed = {"path", "subscriptions", metric} | set(extra)
        if not needed <= set(cols):
            continue
        path_i = cols.index("path")
        subs_i = cols.index("subscriptions")
        value_i = cols.index(metric)
        extra_i = {c: cols.index(c) for c in extra}
        for row in table.get("rows", []):
            if row[path_i] != path or float(row[subs_i]) != subs:
                continue
            if any(
                float(row[i]) != float(v) for c, v in extra.items()
                for i in [extra_i[c]]
            ):
                continue
            yield float(row[value_i])


def check_gate(measured, gate) -> bool:
    subs = float(gate["subscriptions"])
    path = gate.get("path", "batched")
    metric = gate.get("metric", "objs_per_sec")
    direction = gate.get("direction", "floor")
    values = list(matching_values(measured, gate))
    if not values:
        print(
            f"FAIL: no '{path}' row at {subs:.0f} subscriptions with a "
            f"'{metric}' column in measured bench JSON (was the bench run "
            "in the baseline's mode?)"
        )
        return False

    # No silent default: a gate missing both keys must fail loudly
    # (KeyError -> nonzero exit), not degrade into an always-pass bound.
    if "baseline_value" in gate:
        committed = float(gate["baseline_value"])
    else:
        committed = float(gate["batched_objects_per_sec"])

    if direction == "ceiling":
        worst = max(values)
        allowed_rise = float(gate.get("allowed_rise", 0.0))
        limit = committed * (1.0 + allowed_rise)
        ok = worst <= limit
        print(
            f"{'OK' if ok else 'FAIL'}: {path} {metric} at {subs:.0f} subs "
            f"measured={worst:.2f} ceiling={limit:.2f} "
            f"(baseline {committed:.2f}, allowed rise {allowed_rise:.0%})"
        )
    else:
        worst = min(values)
        allowed_drop = float(gate.get("allowed_drop", 0.20))
        floor = committed * (1.0 - allowed_drop)
        ok = worst >= floor
        print(
            f"{'OK' if ok else 'FAIL'}: {path} {metric} at {subs:.0f} subs "
            f"measured={worst:.0f} baseline={committed:.0f} "
            f"floor={floor:.0f} (allowed drop {allowed_drop:.0%})"
        )
    return ok


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        measured = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    gates = baseline.get("gates", [baseline])
    ok = all([check_gate(measured, g) for g in gates])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
