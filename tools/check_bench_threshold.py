#!/usr/bin/env python3
"""CI gate for throughput benchmarks.

Usage: check_bench_threshold.py BENCH_<name>.json bench/<name>_baseline.json

Reads a measured BENCH_*.json (written by a bench via bench_util's JSON
mirror) and fails (exit 1) when the gated throughput drops more than
`allowed_drop` (default 20%) below the committed baseline.

The baseline JSON selects what is gated:
  subscriptions   row filter: the subscription level to gate at
  path            row filter: value of the "path" column (default "batched")
  metric          column holding the gated throughput
                  (default "objs_per_sec")
  baseline_value  committed floor reference (falls back to the legacy
                  "batched_objects_per_sec" key)
  allowed_drop    tolerated relative drop (default 0.20)

The *minimum* across matching rows is gated: a regression must not be
masked by a healthy number at a different (easier) configuration.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        measured = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    subs = float(baseline["subscriptions"])
    path = baseline.get("path", "batched")
    metric = baseline.get("metric", "objs_per_sec")
    worst = None
    for table in measured.get("tables", []):
        cols = table.get("columns", [])
        if not {"path", "subscriptions", metric} <= set(cols):
            continue
        path_i = cols.index("path")
        subs_i = cols.index("subscriptions")
        tput_i = cols.index(metric)
        for row in table.get("rows", []):
            if row[path_i] == path and float(row[subs_i]) == subs:
                tput = float(row[tput_i])
                worst = tput if worst is None else min(worst, tput)
    if worst is None:
        print(
            f"FAIL: no '{path}' row at {subs:.0f} subscriptions with a "
            f"'{metric}' column in measured bench JSON (was the bench run "
            "in the baseline's mode?)"
        )
        return 1

    # No silent default: a baseline missing both keys must fail the gate
    # loudly (KeyError -> nonzero exit), not degrade into an always-pass
    # floor of 0.
    if "baseline_value" in baseline:
        committed = float(baseline["baseline_value"])
    else:
        committed = float(baseline["batched_objects_per_sec"])
    allowed_drop = float(baseline.get("allowed_drop", 0.20))
    floor = committed * (1.0 - allowed_drop)
    verdict = "OK" if worst >= floor else "FAIL"
    print(
        f"{verdict}: {path} {metric} at {subs:.0f} subs "
        f"measured={worst:.0f} baseline={committed:.0f} floor={floor:.0f} "
        f"(allowed drop {allowed_drop:.0%})"
    )
    return 0 if worst >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
