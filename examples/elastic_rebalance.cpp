// Elastic rebalancing: demonstrates Section V's dynamic load adjustment.
// A flash-crowd event concentrates traffic on one region; the auto
// adjuster detects the balance violation and migrates gridt cells (GR
// selector) from the hot worker to the coolest one, restoring balance with
// a small migration cost. Deliveries are consumed through a
// SubscriberSession in both modes — including live from the worker threads
// while the threaded engine rebalances under load.
//
//   $ ./elastic_rebalance
#include <atomic>
#include <cstdio>
#include <vector>

#include "runtime/ps2stream.h"
#include "workload/synthetic_corpus.h"

namespace {

void PrintLoads(const char* label, const ps2::Cluster& cluster) {
  std::printf("%s worker loads:", label);
  const auto loads =
      const_cast<ps2::Cluster&>(cluster).WorkerLoads(ps2::CostModel{});
  double mx = 0, mn = 1e300;
  for (const double l : loads) {
    std::printf(" %8.0f", l);
    mx = std::max(mx, l);
    mn = std::min(mn, l);
  }
  std::printf("   (balance %.2f)\n", mn > 0 ? mx / mn : -1.0);
}

// Counts deliveries; safe to share between modes (invocations are
// serialized per session, but the counter is read from the main thread
// while workers deliver, so keep it atomic).
struct CountingSink : ps2::MatchSink {
  std::atomic<uint64_t> count{0};
  void OnMatch(const ps2::Delivery&) override {
    count.fetch_add(1, std::memory_order_relaxed);
  }
};

}  // namespace

int main() {
  using namespace ps2;

  PS2StreamOptions options;
  options.partitioner = "hybrid";
  options.partition.num_workers = 4;
  options.auto_adjust = true;
  options.adjust_check_interval = 5000;
  options.adjust.sigma = 1.6;
  options.adjust.selector = "GR";
  PS2Stream service(options);

  CorpusConfig ccfg = CorpusConfig::UsPreset();
  ccfg.vocab_size = 5000;
  SyntheticCorpus corpus(ccfg, &service.vocabulary());
  WorkloadSample sample;
  sample.objects = corpus.Generate(15000);
  service.Bootstrap(sample);

  CountingSink sink;
  PS2Stream::SessionPtr session = service.OpenSession();
  session->SetSink(&sink);

  // Normal traffic: subscriptions and messages everywhere. Handles go into
  // a vector so the subscriptions survive this scope.
  Rng rng(11);
  std::vector<Subscription> subs;
  for (int i = 0; i < 3000; ++i) {
    const Point c = corpus.SampleLocation(rng);
    STSQuery q;
    q.id = 1 + i;
    q.expr = BoolExpr::And({corpus.SampleTermAt(c, rng)});
    q.region = Rect::Centered(c, corpus.extent().width() * 0.02,
                              corpus.extent().height() * 0.02);
    StatusOr<Subscription> sub = service.Subscribe(session, q);
    if (sub.ok()) subs.push_back(std::move(*sub));
  }
  for (const auto& o : corpus.Generate(10000)) service.Post(o);
  PrintLoads("steady state ", service.cluster());

  // Flash crowd: traffic hammers one spot (and thus one worker). Several
  // distinct event keywords are in play, so Phase I of the adjuster can
  // text-split the hot cell instead of bouncing it between workers.
  const Point hotspot = corpus.SampleLocation(rng);
  std::vector<TermId> buzz;
  for (const char* word : {"breaking", "fire", "crash", "festival",
                           "protest", "outage"}) {
    buzz.push_back(service.vocabulary().Intern(word));
  }
  for (int i = 0; i < 300; ++i) {
    STSQuery q;
    q.id = 100000 + i;
    q.expr = BoolExpr::And({buzz[rng.NextBelow(buzz.size())]});
    q.region = Rect::Centered(hotspot, corpus.extent().width() * 0.05,
                              corpus.extent().height() * 0.05);
    StatusOr<Subscription> sub = service.Subscribe(session, q);
    if (sub.ok()) subs.push_back(std::move(*sub));
  }
  const uint64_t before_crowd = sink.count.load();
  for (int i = 0; i < 15000; ++i) {
    SpatioTextualObject o;
    o.id = 500000 + i;
    o.loc = Point{hotspot.x + rng.NextGaussian(0, 1.2),
                  hotspot.y + rng.NextGaussian(0, 1.2)};
    o.terms = {buzz[rng.NextBelow(buzz.size())]};
    std::sort(o.terms.begin(), o.terms.end());
    service.Post(o);
  }
  PrintLoads("flash crowd  ", service.cluster());

  std::printf("deliveries during flash crowd: %llu\n",
              (unsigned long long)(sink.count.load() - before_crowd));
  std::printf("automatic adjustments performed: %zu\n",
              service.adjustments().size());
  for (const auto& adj : service.adjustments()) {
    std::printf("  w%d -> w%d: %d splits, %zu queries, %.1f KB shipped, "
                "%.3f s, balance %.2f -> %.2f\n",
                adj.overloaded, adj.underloaded, adj.phase1_splits,
                adj.queries_moved, adj.bytes_migrated / 1024.0,
                adj.migration_seconds, adj.balance_before,
                adj.balance_after);
  }

  // The same service — and the same session and sink — can run *online*:
  // Start() spawns the threaded engine (dispatcher + worker + controller
  // threads); publications are submitted asynchronously, migrations
  // install live through routing-snapshot swaps while the stream keeps
  // flowing, and the worker threads deliver matches through the session.
  service.Start();
  for (int i = 0; i < 20000; ++i) {
    SpatioTextualObject o;
    o.id = 800000 + i;
    o.loc = Point{hotspot.x + rng.NextGaussian(0, 1.2),
                  hotspot.y + rng.NextGaussian(0, 1.2)};
    o.terms = {buzz[rng.NextBelow(buzz.size())]};
    std::sort(o.terms.begin(), o.terms.end());
    service.Post(o);  // async: matches reach the session from the workers
  }
  const RunReport report = service.Stop();
  std::printf(
      "online engine: %.0f tuples/s, %llu matches, %llu live adjustments, "
      "%llu queries migrated, %llu routing epochs\n",
      report.throughput_tps, (unsigned long long)report.matches_delivered,
      (unsigned long long)report.adjustments,
      (unsigned long long)report.queries_migrated,
      (unsigned long long)report.routing_epochs);
  std::printf(
      "online delivery: %llu session deliveries, %llu dropped, "
      "publish->deliver p50 %.0f us p99 %.0f us\n",
      (unsigned long long)report.session_deliveries,
      (unsigned long long)report.session_drops,
      report.delivery_latency.PercentileMicros(0.50),
      report.delivery_latency.PercentileMicros(0.99));
  // The report's session counters cover both phases (they aggregate the
  // session's lifetime); the sink saw every one of them.
  return sink.count.load() == report.session_deliveries ? 0 : 1;
}
