// Ride hailing: the subscription-class subsystem on a moving subscriber.
//
// A driver holds a continuous top-k subscription ("best 2 open ride
// requests near me") whose region FOLLOWS THE CAR: every position update
// becomes an UpdateSubscription call, which rides the same routed
// query-update path as a fresh subscribe — held top-k results survive the
// move. Ride requests carry a TTL; when a held request expires, the next
// best buffered one is promoted and delivered. A second subscriber uses a
// similarity-threshold subscription (binary cosine over the request's
// tags) instead of an exact boolean expression.
//
//   $ ./example_ride_hailing
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/ps2stream.h"
#include "subscribe/spec.h"

using namespace ps2;

namespace {

int g_failures = 0;

void Expect(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++g_failures;
}

// Drains a session and returns the object ids delivered, in order.
std::vector<ObjectId> Drain(const PS2Stream::SessionPtr& session) {
  std::vector<ObjectId> ids;
  Delivery d;
  while (session->Poll(&d)) ids.push_back(d.object_id);
  return ids;
}

bool Contains(const std::vector<ObjectId>& ids, ObjectId id) {
  for (const ObjectId i : ids) {
    if (i == id) return true;
  }
  return false;
}

}  // namespace

int main() {
  PS2StreamOptions options;
  options.partitioner = "hybrid";
  options.partition.num_workers = 4;
  PS2Stream service(options);

  // Bootstrap over the city extent (a 100x100 grid of blocks).
  WorkloadSample bootstrap;
  bootstrap.objects.push_back(
      SpatioTextualObject::FromTerms(1, Point{0, 0}, {}));
  bootstrap.objects.push_back(
      SpatioTextualObject::FromTerms(2, Point{100, 100}, {}));
  service.Bootstrap(bootstrap);

  Vocabulary& vocab = service.vocabulary();
  const TermId t_ride = vocab.Intern("ride");
  const TermId t_airport = vocab.Intern("airport");
  const TermId t_pool = vocab.Intern("pool");
  const TermId t_xl = vocab.Intern("xl");

  // A ride request: a geo-tagged message with tags, an event timestamp and
  // a TTL after which the request is considered taken or abandoned.
  ObjectId next_id = 100;
  int64_t now_us = 0;
  auto Request = [&](Point where, std::vector<TermId> tags,
                     int64_t ttl_us) {
    SpatioTextualObject o = SpatioTextualObject::FromTerms(
        next_id++, where, std::move(tags));
    now_us += 1'000'000;  // one second of event time between requests
    o.timestamp_us = now_us;
    o.ttl_us = ttl_us;
    return o;
  };

  // --- The driver: a moving top-k subscriber -----------------------------
  auto driver = service.OpenSession();
  StatusOr<Subscription> pickup = service.Subscribe(
      driver, SubscriptionSpec::TopK({"ride", "airport"}, /*k=*/2,
                                     Rect::Centered(Point{10, 10}, 20, 20)));
  if (!pickup.ok()) {
    std::printf("subscribe failed: %s\n",
                pickup.status().ToString().c_str());
    return 1;
  }
  std::printf("driver online at (10,10), watching for the best %u nearby "
              "requests\n", 2u);

  // Three requests near the driver; the third arrives after the heap is
  // full and scores no better, so it is buffered, not delivered.
  const ObjectId r1 = next_id;
  service.Post(Request(Point{12, 9}, {t_ride, t_airport}, 0));
  const ObjectId r2 = next_id;
  service.Post(Request(Point{8, 11}, {t_ride, t_airport}, 5'000'000));
  const ObjectId r3 = next_id;
  service.Post(Request(Point{11, 12}, {t_ride}, 0));
  std::vector<ObjectId> got = Drain(driver);
  Expect(Contains(got, r1) && Contains(got, r2),
         "two best requests delivered on admission");
  Expect(!Contains(got, r3), "weaker third request held back (buffered)");

  // r2 expires (its 5s TTL passes in event time): the buffered r3 is
  // promoted into the top-2 and delivered now.
  service.AdvanceEventTime(now_us += 10'000'000);
  got = Drain(driver);
  Expect(Contains(got, r3), "buffered request promoted when a held one expired");

  // --- The car moves: the subscription follows ---------------------------
  const Status moved = service.UpdateSubscription(
      pickup->id(), Rect::Centered(Point{70, 70}, 20, 20));
  if (!moved.ok()) {
    std::printf("update failed: %s\n", moved.ToString().c_str());
    return 1;
  }
  std::printf("driver drove to (70,70); subscription region updated\n");

  const ObjectId old_area = next_id;
  service.Post(Request(Point{10, 10}, {t_ride, t_airport}, 0));
  const ObjectId new_area = next_id;
  service.Post(Request(Point{68, 72}, {t_ride, t_airport}, 0));
  got = Drain(driver);
  Expect(!Contains(got, old_area),
         "request back at the old corner no longer matches");
  Expect(Contains(got, new_area), "request at the new corner delivered");

  // --- A similarity subscriber: tag overlap, not exact expressions -------
  // The dispatcher wants pooled/XL rides: cosine(tags, {ride,pool,xl})
  // >= 0.6 instead of a hand-written AND/OR expression.
  auto dispatcher = service.OpenSession();
  StatusOr<Subscription> pooled = service.Subscribe(
      dispatcher, SubscriptionSpec::Similarity({"ride", "pool", "xl"}, 0.6,
                                               Rect(0, 0, 100, 100)));
  if (!pooled.ok()) {
    std::printf("subscribe failed: %s\n",
                pooled.status().ToString().c_str());
    return 1;
  }
  const ObjectId pool_req = next_id;   // {ride,pool}: cosine 2/sqrt(6)=0.82
  service.Post(Request(Point{50, 50}, {t_ride, t_pool}, 0));
  const ObjectId solo_req = next_id;   // {ride}: cosine 1/sqrt(3)=0.58
  service.Post(Request(Point{50, 50}, {t_ride}, 0));
  const ObjectId xl_req = next_id;     // {ride,pool,xl}: cosine 1.0
  service.Post(Request(Point{50, 50}, {t_ride, t_pool, t_xl}, 0));
  got = Drain(dispatcher);
  Expect(Contains(got, pool_req) && Contains(got, xl_req),
         "tag-overlap requests cleared the 0.6 similarity bar");
  Expect(!Contains(got, solo_req),
         "a bare 'ride' request scored 0.58 and was filtered");

  // Malformed specs are rejected up front, with the field named.
  StatusOr<Subscription> bad = service.Subscribe(
      dispatcher, SubscriptionSpec::Similarity({"ride"}, 1.5,
                                               Rect(0, 0, 10, 10)));
  Expect(!bad.ok(), "tau=1.5 rejected (not clamped)");
  std::printf("  rejection message: %s\n",
              bad.status().ToString().c_str());

  if (g_failures > 0) {
    std::printf("%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("all checks passed\n");
  return 0;
}
