// Geofence alerts: the paper's individual-user scenario — users subscribe
// to keyword alerts inside city-scale geofences over a realistic synthetic
// tweet stream (clustered locations, power-law vocabulary). Alerts are
// consumed through a SubscriberSession in pull mode while the stream is
// published; the demo reports delivery statistics plus the per-worker load
// the hybrid partitioner produced.
//
//   $ ./geofence_alerts
#include <chrono>
#include <cstdio>
#include <vector>

#include "runtime/ps2stream.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

int main() {
  using namespace ps2;

  PS2StreamOptions options;
  options.partitioner = "hybrid";
  options.partition.num_workers = 8;
  PS2Stream service(options);

  // Synthetic "US tweets" corpus shares the service's vocabulary so alert
  // keywords and message terms line up.
  CorpusConfig ccfg = CorpusConfig::UsPreset();
  ccfg.vocab_size = 8000;
  SyntheticCorpus corpus(ccfg, &service.vocabulary());
  // Prime the frequency profile and bootstrap the partition plan from a
  // historic sample.
  WorkloadSample sample;
  sample.objects = corpus.Generate(20000);
  QueryGenConfig qcfg;
  qcfg.kind = QueryKind::kQ1;
  QueryGenerator qgen(qcfg, &corpus);
  sample.inserts = qgen.Generate(5000);
  service.Bootstrap(sample);

  // All alerts share one session: a large pull queue, oldest-dropped if the
  // consumer lags (alerting favors fresh events over a complete backlog).
  SessionOptions sopts;
  sopts.queue_capacity = 1 << 16;
  sopts.backpressure = BackpressurePolicy::kDropOldest;
  PS2Stream::SessionPtr session = service.OpenSession(sopts);

  // Register geofence alerts around busy locations: each user watches 1-2
  // locally popular keywords inside a ~city-sized box. The RAII handles are
  // kept so the alerts stay live for the whole run.
  Rng rng(2024);
  std::vector<Subscription> alerts;
  for (int i = 0; i < 4000; ++i) {
    const Point center = corpus.SampleLocation(rng);
    STSQuery q;
    q.id = 1000000 + i;
    std::vector<TermId> kws{corpus.SampleTermAt(center, rng)};
    if (rng.NextBernoulli(0.5)) kws.push_back(corpus.SampleTermAt(center, rng));
    q.expr = BoolExpr::And(kws);
    q.region = Rect::Centered(center, corpus.extent().width() * 0.01,
                              corpus.extent().height() * 0.01);
    StatusOr<Subscription> sub = service.Subscribe(session, q);
    if (!sub.ok()) {
      std::printf("subscribe failed: %s\n", sub.status().ToString().c_str());
      return 1;
    }
    alerts.push_back(std::move(*sub));
  }
  std::printf("registered %zu geofence alerts across %d cities\n",
              alerts.size(), corpus.num_cities());

  // Stream 50k live messages, draining the session as we go (synchronous
  // mode: deliveries land in the session before Post returns).
  uint64_t delivered = 0, messages = 0;
  std::vector<Delivery> batch;
  for (const auto& o : corpus.Generate(50000)) {
    service.Post(o);
    ++messages;
    batch.clear();
    delivered += session->TakeBatch(&batch, 1024,
                                    std::chrono::milliseconds(0));
  }
  batch.clear();
  delivered += session->TakeBatch(&batch, 1 << 16,
                                  std::chrono::milliseconds(0));
  const SessionStats sstats = service.delivery_stats();
  std::printf("published %llu messages: %llu alert deliveries consumed, "
              "%llu dropped, publish->deliver p99 %.0f us\n",
              (unsigned long long)messages, (unsigned long long)delivered,
              (unsigned long long)sstats.dropped,
              sstats.latency.PercentileMicros(0.99));

  // Show how the hybrid plan spread the load.
  const auto& cluster = service.cluster();
  std::printf("per-worker stored alerts / memory:\n");
  for (int w = 0; w < cluster.num_workers(); ++w) {
    std::printf("  worker %d: %6zu queries, %7.2f KB index\n", w,
                cluster.worker(w).NumActiveQueries(),
                cluster.WorkerMemoryBytes(w) / 1024.0);
  }
  const auto& stats = service.cluster().dispatcher().stats();
  std::printf("dispatcher: %.2f avg workers per routed object, "
              "%llu objects discarded early\n",
              stats.ObjectFanout(),
              (unsigned long long)stats.objects_discarded);
  return delivered == sstats.delivered ? 0 : 1;
}
