// Geofence alerts: the paper's individual-user scenario — users subscribe
// to keyword alerts inside city-scale geofences over a realistic synthetic
// tweet stream (clustered locations, power-law vocabulary), and the demo
// reports delivery statistics plus the per-worker load the hybrid
// partitioner produced.
//
//   $ ./geofence_alerts
#include <cstdio>

#include "runtime/ps2stream.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"
#include "workload/synthetic_corpus.h"

int main() {
  using namespace ps2;

  PS2StreamOptions options;
  options.partitioner = "hybrid";
  options.partition.num_workers = 8;
  PS2Stream service(options);

  // Synthetic "US tweets" corpus shares the service's vocabulary so alert
  // keywords and message terms line up.
  CorpusConfig ccfg = CorpusConfig::UsPreset();
  ccfg.vocab_size = 8000;
  SyntheticCorpus corpus(ccfg, &service.vocabulary());
  // Prime the frequency profile and bootstrap the partition plan from a
  // historic sample.
  WorkloadSample sample;
  sample.objects = corpus.Generate(20000);
  QueryGenConfig qcfg;
  qcfg.kind = QueryKind::kQ1;
  QueryGenerator qgen(qcfg, &corpus);
  sample.inserts = qgen.Generate(5000);
  service.Bootstrap(sample);

  // Register geofence alerts around busy locations: each user watches 1-2
  // locally popular keywords inside a ~city-sized box.
  Rng rng(2024);
  std::vector<QueryId> alerts;
  for (int i = 0; i < 4000; ++i) {
    const Point center = corpus.SampleLocation(rng);
    STSQuery q;
    q.id = 1000000 + i;
    std::vector<TermId> kws{corpus.SampleTermAt(center, rng)};
    if (rng.NextBernoulli(0.5)) kws.push_back(corpus.SampleTermAt(center, rng));
    q.expr = BoolExpr::And(kws);
    q.region = Rect::Centered(center, corpus.extent().width() * 0.01,
                              corpus.extent().height() * 0.01);
    service.Subscribe(q);
    alerts.push_back(q.id);
  }
  std::printf("registered %zu geofence alerts across %d cities\n",
              alerts.size(), corpus.num_cities());

  // Stream 50k live messages.
  uint64_t delivered = 0, messages = 0, with_alert = 0;
  for (const auto& o : corpus.Generate(50000)) {
    const auto matches = service.Publish(o);
    ++messages;
    delivered += matches.size();
    with_alert += matches.empty() ? 0 : 1;
  }
  std::printf("published %llu messages: %llu alert deliveries, "
              "%.1f%% of messages triggered at least one alert\n",
              (unsigned long long)messages, (unsigned long long)delivered,
              100.0 * with_alert / messages);

  // Show how the hybrid plan spread the load.
  const auto& cluster = service.cluster();
  std::printf("per-worker stored alerts / memory:\n");
  for (int w = 0; w < cluster.num_workers(); ++w) {
    std::printf("  worker %d: %6zu queries, %7.2f KB index\n", w,
                cluster.worker(w).NumActiveQueries(),
                cluster.WorkerMemoryBytes(w) / 1024.0);
  }
  const auto& stats = service.cluster().dispatcher().stats();
  std::printf("dispatcher: %.2f avg workers per routed object, "
              "%llu objects discarded early\n",
              stats.ObjectFanout(),
              (unsigned long long)stats.objects_discarded);
  return 0;
}
