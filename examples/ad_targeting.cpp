// Ad targeting: the paper's business scenario — advertisers register
// campaigns ("restaurant diners in a target zone") as STS queries with
// boolean keyword expressions; the stream of spatio-textual messages
// identifies potential customers in real time. Campaigns churn (short
// promotions get registered and dropped), exercising insert/delete routing
// and RAII subscription handles; impressions are counted by a MatchSink in
// push mode.
//
//   $ ./ad_targeting
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "runtime/ps2stream.h"
#include "workload/synthetic_corpus.h"

int main() {
  using namespace ps2;

  PS2StreamOptions options;
  options.partitioner = "hybrid";
  options.partition.num_workers = 8;
  PS2Stream service(options);

  CorpusConfig ccfg = CorpusConfig::UkPreset();
  ccfg.vocab_size = 6000;
  SyntheticCorpus corpus(ccfg, &service.vocabulary());
  WorkloadSample sample;
  sample.objects = corpus.Generate(15000);
  service.Bootstrap(sample);

  // Push consumption: every delivery bumps its campaign's impression count
  // on the delivering thread — no pull loop to keep up with.
  struct ImpressionCounter : MatchSink {
    std::map<QueryId, uint64_t> impressions;
    uint64_t total = 0;
    void OnMatch(const Delivery& d) override {
      auto it = impressions.find(d.query_id);
      if (it != impressions.end()) {
        ++it->second;
        ++total;
      }
    }
  } counter;
  PS2Stream::SessionPtr session = service.OpenSession();
  session->SetSink(&counter);

  // Campaigns: OR-expressions over a small product vocabulary targeting a
  // zone around a city. The RAII Subscription handle *is* the campaign's
  // lifetime: dropping it ends the campaign.
  Rng rng(7);
  std::vector<Subscription> campaigns;
  QueryId next_id = 1;
  auto launch_campaign = [&]() {
    const Point center = corpus.SampleLocation(rng);
    STSQuery q;
    q.id = next_id++;
    // 2-3 product keywords drawn from the local topic, OR-connected: any
    // mention flags a potential customer.
    std::vector<TermId> kws;
    const int k = 2 + rng.NextBelow(2);
    for (int i = 0; i < k; ++i) kws.push_back(corpus.SampleTermAt(center, rng));
    q.expr = BoolExpr::Or(kws);
    q.region = Rect::Centered(center, corpus.extent().width() * 0.03,
                              corpus.extent().height() * 0.03);
    StatusOr<Subscription> sub = service.Subscribe(session, q);
    if (!sub.ok()) {
      std::printf("launch failed: %s\n", sub.status().ToString().c_str());
      return;
    }
    counter.impressions[sub->id()] = 0;
    campaigns.push_back(std::move(*sub));
  };
  for (int i = 0; i < 2000; ++i) launch_campaign();
  std::printf("launched %zu campaigns\n", campaigns.size());

  // Stream with campaign churn: every 50 messages one campaign ends (its
  // Subscription handle is destroyed, which unsubscribes) and a new one
  // launches (the paper's dynamic subscription workload).
  for (int step = 0; step < 30000; ++step) {
    service.Post(corpus.NextObject());
    if (step % 50 == 49 && !campaigns.empty()) {
      const size_t victim = rng.NextBelow(campaigns.size());
      std::swap(campaigns[victim], campaigns.back());
      campaigns.pop_back();  // ~Subscription unsubscribes the victim
      launch_campaign();
    }
  }

  // Report the top campaigns by impressions.
  std::vector<std::pair<uint64_t, QueryId>> top;
  for (const auto& [id, count] : counter.impressions) top.push_back({count, id});
  std::sort(top.rbegin(), top.rend());
  std::printf("total impressions: %llu across %zu campaigns "
              "(%zu still live)\n",
              (unsigned long long)counter.total, counter.impressions.size(),
              service.num_subscriptions());
  std::printf("top campaigns:\n");
  for (size_t i = 0; i < 5 && i < top.size(); ++i) {
    std::printf("  campaign %llu: %llu impressions\n",
                (unsigned long long)top[i].second,
                (unsigned long long)top[i].first);
  }
  const SessionStats sstats = service.delivery_stats();
  return counter.total == sstats.delivered && sstats.dropped == 0 ? 0 : 1;
}
