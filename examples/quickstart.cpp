// Quickstart: the smallest end-to-end PS2Stream program.
//
// Subscribers register continuous queries with a keyword expression and a
// region of interest; publishers push geo-tagged messages; the system
// delivers each message to every matching subscription exactly once.
//
//   $ ./quickstart
#include <cstdio>

#include "runtime/ps2stream.h"

int main() {
  using namespace ps2;

  PS2StreamOptions options;
  options.partitioner = "hybrid";      // the paper's algorithm
  options.partition.num_workers = 4;   // simulated worker count
  PS2Stream service(options);

  // Bootstrapping normally uses a sample of historic traffic; an empty
  // sample falls back to a uniform plan over a unit extent — fine for a
  // demo on a small coordinate space.
  WorkloadSample bootstrap;
  bootstrap.objects.push_back(SpatioTextualObject::FromTerms(
      1, Point{0, 0}, {}));
  bootstrap.objects.push_back(SpatioTextualObject::FromTerms(
      2, Point{100, 100}, {}));
  service.Bootstrap(bootstrap);

  // Three subscriptions: a downtown foodie, a traffic watcher with an OR
  // expression, and one that should never fire.
  const Rect downtown(10, 10, 30, 30);
  const Rect highway(0, 0, 100, 20);
  const QueryId food = service.Subscribe("pizza AND deal", downtown);
  const QueryId traffic =
      service.Subscribe("accident OR congestion", highway);
  const QueryId nope = service.Subscribe("snow", Rect(90, 90, 99, 99));
  std::printf("subscriptions: food=%llu traffic=%llu nope=%llu\n",
              (unsigned long long)food, (unsigned long long)traffic,
              (unsigned long long)nope);

  struct Msg {
    Point loc;
    const char* text;
  };
  const Msg messages[] = {
      {{15, 15}, "great pizza deal at the corner shop"},
      {{15, 15}, "pizza without any discounts"},
      {{50, 10}, "major accident on the interstate"},
      {{15, 12}, "congestion near downtown pizza deal"},
      {{95, 95}, "sunny all week"},
  };
  for (const Msg& m : messages) {
    const auto matches = service.Publish(m.loc, m.text);
    std::printf("publish (%.0f,%.0f) \"%s\" -> %zu match(es):",
                m.loc.x, m.loc.y, m.text, matches.size());
    for (const auto& match : matches) {
      std::printf(" q%llu", (unsigned long long)match.query_id);
    }
    std::printf("\n");
  }

  service.Unsubscribe(traffic);
  const auto after = service.Publish(Point{50, 10}, "another accident");
  std::printf("after unsubscribe, accident matches: %zu\n", after.size());
  return 0;
}
