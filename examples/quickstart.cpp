// Quickstart: the smallest end-to-end PS2Stream program, on the client API.
//
// Subscribers open a SubscriberSession (a bounded delivery queue), register
// continuous queries with a keyword expression and a region of interest,
// and consume matches either by pulling (Poll/Take) or by installing a
// MatchSink. Publishers push geo-tagged messages with Post; the system
// delivers each message to every matching subscription exactly once, in
// both the synchronous and the Start()ed threaded mode.
//
//   $ ./quickstart
#include <cstdio>

#include "runtime/ps2stream.h"

int main() {
  using namespace ps2;

  PS2StreamOptions options;
  options.partitioner = "hybrid";      // the paper's algorithm
  options.partition.num_workers = 4;   // simulated worker count
  PS2Stream service(options);

  // Bootstrapping normally uses a sample of historic traffic; an empty
  // sample falls back to a uniform plan over a unit extent — fine for a
  // demo on a small coordinate space.
  WorkloadSample bootstrap;
  bootstrap.objects.push_back(SpatioTextualObject::FromTerms(
      1, Point{0, 0}, {}));
  bootstrap.objects.push_back(SpatioTextualObject::FromTerms(
      2, Point{100, 100}, {}));
  service.Bootstrap(bootstrap);

  // One session multiplexes any number of subscriptions into one bounded
  // queue; kDropOldest keeps the freshest matches if we fall behind.
  SessionOptions sopts;
  sopts.queue_capacity = 64;
  sopts.backpressure = BackpressurePolicy::kDropOldest;
  PS2Stream::SessionPtr session = service.OpenSession(sopts);

  // Three subscriptions: a downtown foodie, a traffic watcher with an OR
  // expression, and one that should never fire. Errors are real Status
  // values now — a syntax error names the problem instead of returning 0.
  const Rect downtown(10, 10, 30, 30);
  const Rect highway(0, 0, 100, 20);
  StatusOr<Subscription> food =
      service.Subscribe(session, "pizza AND deal", downtown);
  StatusOr<Subscription> traffic =
      service.Subscribe(session, "accident OR congestion", highway);
  StatusOr<Subscription> nope =
      service.Subscribe(session, "snow", Rect(90, 90, 99, 99));
  if (!food.ok() || !traffic.ok() || !nope.ok()) {
    std::printf("subscribe failed: %s\n", food.status().ToString().c_str());
    return 1;
  }
  std::printf("subscriptions: food=q%llu traffic=q%llu nope=q%llu\n",
              (unsigned long long)food->id(),
              (unsigned long long)traffic->id(),
              (unsigned long long)nope->id());

  StatusOr<Subscription> bad =
      service.Subscribe(session, "pizza AND AND", downtown);
  std::printf("malformed expression -> %s\n",
              bad.status().ToString().c_str());

  // --- pull consumption -----------------------------------------------------
  struct Msg {
    Point loc;
    const char* text;
  };
  const Msg messages[] = {
      {{15, 15}, "great pizza deal at the corner shop"},
      {{15, 15}, "pizza without any discounts"},
      {{50, 10}, "major accident on the interstate"},
      {{15, 12}, "congestion near downtown pizza deal"},
      {{95, 95}, "sunny all week"},
  };
  for (const Msg& m : messages) {
    service.Post(m.loc, m.text);
  }
  std::printf("pull: ");
  Delivery d;
  while (session->Poll(&d)) {
    std::printf("(q%llu<-o%llu) ", (unsigned long long)d.query_id,
                (unsigned long long)d.object_id);
  }
  std::printf("\n");

  // --- push consumption -----------------------------------------------------
  // A sink receives every delivery on the publishing thread (synchronous
  // mode) or a worker thread (started mode); queued backlog is flushed to
  // it first, so switching modes never loses a match.
  struct PrintSink : MatchSink {
    uint64_t count = 0;
    void OnMatch(const Delivery& delivery) override {
      ++count;
      std::printf("push: q%llu matched o%llu (%.0fus after publish)\n",
                  (unsigned long long)delivery.query_id,
                  (unsigned long long)delivery.object_id,
                  delivery.LatencyMicros());
    }
  } sink;
  session->SetSink(&sink);
  service.Post(Point{20, 20}, "one more pizza deal downtown");
  service.Post(Point{10, 5}, "congestion cleared, accident ahead");

  // RAII: cancelling (or destroying) the handle unsubscribes.
  traffic->Cancel();
  service.Post(Point{50, 10}, "another accident");
  std::printf("sink received %llu deliveries "
              "(none from the cancelled traffic watcher)\n",
              (unsigned long long)sink.count);

  const SessionStats stats = service.delivery_stats();
  std::printf("session stats: delivered=%llu dropped=%llu\n",
              (unsigned long long)stats.delivered,
              (unsigned long long)stats.dropped);
  // Expected: the pizza-deal post and the congestion/accident post each
  // reached the sink once; the post after Cancel() did not.
  return sink.count == 2 ? 0 : 1;
}
