#include "workload/query_gen.h"

#include <algorithm>

namespace ps2 {

QueryGenerator::QueryGenerator(const QueryGenConfig& config,
                               const SyntheticCorpus* corpus)
    : config_(config), corpus_(corpus), rng_(config.seed) {
  region_is_q1_.resize(NumRegions());
  // Q3 mosaic: deterministic half-and-half assignment.
  for (int r = 0; r < NumRegions(); ++r) {
    region_is_q1_[r] = rng_.NextBernoulli(0.5);
  }
}

int QueryGenerator::RegionOf(Point p) const {
  const Rect& e = corpus_->extent();
  const int g = config_.q3_regions_per_axis;
  const auto clampi = [g](int v) { return std::min(std::max(v, 0), g - 1); };
  const int rx = clampi(static_cast<int>((p.x - e.min_x) / e.width() * g));
  const int ry = clampi(static_cast<int>((p.y - e.min_y) / e.height() * g));
  return ry * g + rx;
}

void QueryGenerator::FlipRandomRegions(double fraction) {
  const int flips =
      std::max(1, static_cast<int>(fraction * NumRegions()));
  for (int i = 0; i < flips; ++i) {
    FlipRegionStyle(static_cast<int>(rng_.NextBelow(NumRegions())));
  }
}

STSQuery QueryGenerator::MakeQuery(Point center, bool q1_style) {
  const Rect& e = corpus_->extent();
  const double smin = q1_style ? config_.q1_side_min_frac
                               : config_.q2_side_min_frac;
  const double smax = q1_style ? config_.q1_side_max_frac
                               : config_.q2_side_max_frac;
  const double w = e.width() * rng_.NextUniform(smin, smax);
  const double h = e.height() * rng_.NextUniform(smin, smax);

  const int k = 1 + static_cast<int>(rng_.NextBelow(config_.max_keywords));
  std::vector<TermId> terms;
  terms.reserve(k);
  if (q1_style) {
    // Keywords follow the corpus distribution near the query's location.
    for (int i = 0; i < k; ++i) {
      terms.push_back(corpus_->SampleTermAt(center, rng_));
    }
  } else {
    // At least one keyword outside the top 1%; remaining keywords from the
    // local distribution.
    terms.push_back(
        corpus_->SampleRareTerm(config_.q2_excluded_top_fraction, rng_));
    for (int i = 1; i < k; ++i) {
      terms.push_back(corpus_->SampleTermAt(center, rng_));
    }
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  STSQuery q;
  q.id = next_id_++;
  q.region = Rect::Centered(center, w, h);
  if (terms.size() > 1 && rng_.NextBernoulli(config_.or_probability)) {
    q.expr = BoolExpr::Or(std::move(terms));
  } else {
    q.expr = BoolExpr::And(std::move(terms));
  }
  return q;
}

STSQuery QueryGenerator::Next() {
  const Point center = corpus_->SampleLocation(rng_);
  bool q1_style = true;
  switch (config_.kind) {
    case QueryKind::kQ1:
      q1_style = true;
      break;
    case QueryKind::kQ2:
      q1_style = false;
      break;
    case QueryKind::kQ3:
      q1_style = region_is_q1_[RegionOf(center)];
      break;
  }
  return MakeQuery(center, q1_style);
}

std::vector<STSQuery> QueryGenerator::Generate(size_t n) {
  std::vector<STSQuery> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace ps2
