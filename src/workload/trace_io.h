#ifndef PS2_WORKLOAD_TRACE_IO_H_
#define PS2_WORKLOAD_TRACE_IO_H_

#include <string>
#include <vector>

#include "core/query.h"
#include "core/workload_stats.h"
#include "text/vocabulary.h"

namespace ps2 {

// Binary trace files: a portable, versioned serialization of a tuple
// stream plus the vocabulary it references. Lets a generated workload be
// frozen and replayed across machines/runs (the synthetic stand-in for the
// paper's archived tweet datasets), and lets users feed their own streams
// into the benchmarks.
//
// Format (little-endian):
//   header:  magic "PS2T", u32 version, u64 #terms, u64 #tuples
//   terms:   per term: u32 length, bytes (id = position)
//   tuples:  per tuple: u8 kind, i64 event_time_us, payload
//     object: u64 id, f64 x, f64 y, u32 #terms, u32 terms[]
//     query:  u64 id, f64 min_x, min_y, max_x, max_y,
//             u32 #clauses, per clause: u32 #terms, u32 terms[]
//
// All TermIds in the file are *file-local* (dense, in vocabulary order);
// ReadTrace interns them into the target vocabulary and remaps.
bool WriteTrace(const std::string& path, const Vocabulary& vocab,
                const std::vector<StreamTuple>& tuples);

// Appends the decoded tuples to `out`, interning terms into `vocab`.
// Returns false on missing file, bad magic/version or truncation.
bool ReadTrace(const std::string& path, Vocabulary& vocab,
               std::vector<StreamTuple>* out);

// Convenience wrappers for WorkloadSample (stored as inserts + objects).
bool WriteSample(const std::string& path, const Vocabulary& vocab,
                 const WorkloadSample& sample);
bool ReadSample(const std::string& path, Vocabulary& vocab,
                WorkloadSample* out);

}  // namespace ps2

#endif  // PS2_WORKLOAD_TRACE_IO_H_
