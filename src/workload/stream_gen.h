#ifndef PS2_WORKLOAD_STREAM_GEN_H_
#define PS2_WORKLOAD_STREAM_GEN_H_

#include <vector>

#include "core/workload_stats.h"
#include "workload/query_gen.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {

// Stream composition following the paper's workload section: "the ratio of
// processing a spatio-textual tweet to inserting or deleting an STS query is
// approximately 5"; insert and delete rates are equal in steady state; the
// lifetime of a query — the number of newly arrived queries between its
// insertion and deletion — is N(mu, (0.2 mu)^2), so the number of live
// queries stabilizes around mu.
struct StreamConfig {
  size_t num_objects = 100000;   // objects in the measured stream
  double object_update_ratio = 5.0;
  size_t mu = 50000;             // steady-state number of live queries
  double sigma_frac = 0.2;       // lifetime stddev = sigma_frac * mu
  // Fraction of the measured objects replicated into the partitioning
  // sample (dispatcher-side reservoir in the real system).
  double sample_fraction = 0.2;
  uint64_t seed = 5;
};

// Output of the stream generator.
struct GeneratedStream {
  // Partitioning input: a sample of objects plus the initial query set.
  WorkloadSample sample;
  // Inserts of the initial mu queries (processed before measurement).
  std::vector<StreamTuple> setup;
  // The measured mixed stream (objects + query inserts/deletes, 5:1).
  std::vector<StreamTuple> stream;
};

// Generates setup + measured stream. The generator inserts mu queries up
// front, then mixes objects with query churn whose lifetimes follow the
// Gaussian model. Event times are spaced uniformly (index order).
GeneratedStream GenerateStream(SyntheticCorpus& corpus,
                               QueryGenerator& queries,
                               const StreamConfig& config);

// Extends an existing stream with another phase of churn (used by the
// Figure 16 drift experiment: flip Q3 region styles between phases, then
// append a phase). Live-query bookkeeping is carried in `state`.
struct StreamState {
  // Min-heap (by death insert-count) of live queries, so the next due
  // deletion is O(log n).
  struct LiveQuery {
    uint64_t death_at = 0;  // insert-count at which the query is dropped
    STSQuery query;
    bool operator>(const LiveQuery& o) const { return death_at > o.death_at; }
  };
  std::vector<LiveQuery> live_heap;
  uint64_t inserts_so_far = 0;
  Rng rng{0};
};

// Initializes state with mu live queries (also returned as setup inserts).
StreamState InitStreamState(QueryGenerator& queries,
                            const StreamConfig& config,
                            std::vector<StreamTuple>* setup,
                            WorkloadSample* sample);

// Appends `num_objects` objects (plus proportional query churn) to `out`.
void AppendStreamPhase(SyntheticCorpus& corpus, QueryGenerator& queries,
                       const StreamConfig& config, StreamState& state,
                       size_t num_objects, std::vector<StreamTuple>* out,
                       WorkloadSample* sample = nullptr);

}  // namespace ps2

#endif  // PS2_WORKLOAD_STREAM_GEN_H_
