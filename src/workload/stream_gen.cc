#include "workload/stream_gen.h"

#include <algorithm>
#include <cmath>

namespace ps2 {
namespace {

// Draws a query lifetime (number of subsequent inserts before deletion)
// from N(mu, (sigma_frac * mu)^2), truncated at >= 1.
uint64_t DrawLifetime(Rng& rng, const StreamConfig& config) {
  const double mu = static_cast<double>(config.mu);
  const double draw = rng.NextGaussian(mu, config.sigma_frac * mu);
  return static_cast<uint64_t>(std::max(1.0, std::round(draw)));
}

}  // namespace

namespace {
const auto kHeapGreater = [](const StreamState::LiveQuery& a,
                             const StreamState::LiveQuery& b) {
  return a.death_at > b.death_at;
};
}  // namespace

StreamState InitStreamState(QueryGenerator& queries,
                            const StreamConfig& config,
                            std::vector<StreamTuple>* setup,
                            WorkloadSample* sample) {
  StreamState state;
  state.rng = Rng(config.seed);
  state.live_heap.reserve(config.mu);
  for (size_t i = 0; i < config.mu; ++i) {
    STSQuery q = queries.Next();
    if (sample != nullptr) sample->inserts.push_back(q);
    if (setup != nullptr) {
      setup->push_back(StreamTuple::OfInsert(q, static_cast<int64_t>(i)));
    }
    // Stagger initial deaths uniformly over one lifetime so deletions begin
    // immediately instead of in a burst after mu inserts.
    const uint64_t lifetime = DrawLifetime(state.rng, config);
    state.live_heap.push_back(StreamState::LiveQuery{
        state.rng.NextBelow(lifetime) + 1, std::move(q)});
    ++state.inserts_so_far;
  }
  std::make_heap(state.live_heap.begin(), state.live_heap.end(),
                 kHeapGreater);
  return state;
}

void AppendStreamPhase(SyntheticCorpus& corpus, QueryGenerator& queries,
                       const StreamConfig& config, StreamState& state,
                       size_t num_objects, std::vector<StreamTuple>* out,
                       WorkloadSample* sample) {
  // One "slot" pattern: R objects, then 1 update, R = object_update_ratio.
  const double ratio = std::max(1.0, config.object_update_ratio);
  size_t objects_emitted = 0;
  double object_budget = 0.0;
  int64_t t = out->empty() ? 0 : out->back().event_time_us + 1;
  bool delete_turn = false;  // alternate insert/delete for equal rates
  while (objects_emitted < num_objects) {
    object_budget += ratio;
    while (object_budget >= 1.0 && objects_emitted < num_objects) {
      SpatioTextualObject o = corpus.NextObject();
      o.timestamp_us = t++;
      if (sample != nullptr &&
          state.rng.NextBernoulli(config.sample_fraction)) {
        sample->objects.push_back(o);
      }
      out->push_back(StreamTuple::OfObject(std::move(o)));
      ++objects_emitted;
      object_budget -= 1.0;
    }
    // One update slot: prefer a due deletion on delete turns; otherwise
    // insert a fresh query with a drawn lifetime.
    bool emitted_update = false;
    if (delete_turn && !state.live_heap.empty() &&
        state.live_heap.front().death_at <= state.inserts_so_far) {
      std::pop_heap(state.live_heap.begin(), state.live_heap.end(),
                    kHeapGreater);
      out->push_back(
          StreamTuple::OfDelete(std::move(state.live_heap.back().query), t++));
      state.live_heap.pop_back();
      emitted_update = true;
    }
    if (!emitted_update) {
      STSQuery q = queries.Next();
      if (sample != nullptr) sample->inserts.push_back(q);
      out->push_back(StreamTuple::OfInsert(q, t++));
      state.live_heap.push_back(StreamState::LiveQuery{
          state.inserts_so_far + DrawLifetime(state.rng, config),
          std::move(q)});
      std::push_heap(state.live_heap.begin(), state.live_heap.end(),
                     kHeapGreater);
      ++state.inserts_so_far;
    }
    delete_turn = !delete_turn;
  }
}

GeneratedStream GenerateStream(SyntheticCorpus& corpus,
                               QueryGenerator& queries,
                               const StreamConfig& config) {
  GeneratedStream g;
  StreamState state = InitStreamState(queries, config, &g.setup, &g.sample);
  AppendStreamPhase(corpus, queries, config, state, config.num_objects,
                    &g.stream, &g.sample);
  return g;
}

}  // namespace ps2
