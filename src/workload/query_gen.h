#ifndef PS2_WORKLOAD_QUERY_GEN_H_
#define PS2_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "core/query.h"
#include "workload/synthetic_corpus.h"

namespace ps2 {

// The paper's three STS query families (Sections VI-A / VI-C):
//   Q1 — sides 1..50km, keywords share the corpus term distribution
//        (frequent keywords dominate: text partitioning suffers).
//   Q2 — sides 1..100km, at least one keyword outside the top 1% most
//        frequent terms (rare keywords + wide regions: space partitioning
//        suffers).
//   Q3 — the space is divided into a g x g mosaic of regions, each region
//        fixed to Q1-style or Q2-style (mixed regimes: only hybrid
//        partitioning fits everywhere). Region styles can be flipped at
//        runtime to create the drifting workload of Figure 16.
enum class QueryKind { kQ1, kQ2, kQ3 };

struct QueryGenConfig {
  QueryKind kind = QueryKind::kQ1;
  // Rectangle side lengths as fractions of the extent's width/height.
  // Q1's 1..50km on a ~4500km-wide extent is roughly 0.0002..0.011; we use
  // slightly larger defaults so the scaled-down query counts still overlap
  // objects at benchmark scale.
  double q1_side_min_frac = 0.002;
  double q1_side_max_frac = 0.02;
  double q2_side_min_frac = 0.002;
  double q2_side_max_frac = 0.04;
  // Q2: keyword rank cutoff ("not in the top 1% most frequent terms").
  double q2_excluded_top_fraction = 0.01;
  // Keyword count is uniform in [1, max_keywords] (paper: 1..3).
  int max_keywords = 3;
  // Probability that a multi-keyword query uses OR instead of AND.
  double or_probability = 0.3;
  // Q3 mosaic granularity (paper: 100 regions = 10 x 10).
  int q3_regions_per_axis = 10;
  uint64_t seed = 99;
};

class QueryGenerator {
 public:
  // `corpus` supplies locations and term distributions; not owned.
  QueryGenerator(const QueryGenConfig& config, const SyntheticCorpus* corpus);

  STSQuery Next();
  std::vector<STSQuery> Generate(size_t n);

  // --- Q3 drift control (Figure 16) ----------------------------------------
  int NumRegions() const {
    return config_.q3_regions_per_axis * config_.q3_regions_per_axis;
  }
  // The style (true = Q1-like, false = Q2-like) of a mosaic region.
  bool RegionIsQ1(int region) const { return region_is_q1_[region]; }
  void FlipRegionStyle(int region) {
    region_is_q1_[region] = !region_is_q1_[region];
  }
  // Flips `fraction` of the regions (chosen deterministically by the rng).
  void FlipRandomRegions(double fraction);

  int RegionOf(Point p) const;

 private:
  STSQuery MakeQuery(Point center, bool q1_style);

  QueryGenConfig config_;
  const SyntheticCorpus* corpus_;
  Rng rng_;
  QueryId next_id_ = 1;
  std::vector<bool> region_is_q1_;  // Q3 mosaic styles
};

}  // namespace ps2

#endif  // PS2_WORKLOAD_QUERY_GEN_H_
