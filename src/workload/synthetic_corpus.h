#ifndef PS2_WORKLOAD_SYNTHETIC_CORPUS_H_
#define PS2_WORKLOAD_SYNTHETIC_CORPUS_H_

#include <string>
#include <vector>

#include "common/geo.h"
#include "common/rng.h"
#include "core/object.h"
#include "text/vocabulary.h"

namespace ps2 {

// Configuration of the synthetic geo-tagged-message corpus that stands in
// for the paper's TWEETS-US / TWEETS-UK datasets (see DESIGN.md §2). The
// generator reproduces the two statistical properties the paper's results
// rest on:
//   1. power-law term frequencies (Zipf over a synthetic vocabulary), and
//   2. spatially clustered messages ("cities" = Gaussian mixture) whose
//      *topics differ by region* (each city boosts its own topic slice of
//      the vocabulary), producing the regionally heterogeneous text
//      distributions that motivate hybrid partitioning (Figure 2).
struct CorpusConfig {
  std::string name = "US";
  Rect extent = Rect(-125.0, 24.0, -66.0, 49.0);
  int num_cities = 60;
  size_t vocab_size = 20000;
  double zipf_exponent = 1.05;
  double mean_terms_per_object = 8.0;
  // Probability that a term is drawn from the local city's topic rather
  // than the global distribution.
  double city_topic_skew = 0.55;
  size_t topic_terms_per_city = 400;
  // City spread (standard deviation) as a fraction of the extent diagonal.
  double city_sigma_frac = 0.015;
  uint64_t seed = 1234;

  // Presets mirroring the paper's two datasets: the US corpus is wide with
  // many clusters, the UK corpus compact with fewer, denser clusters.
  static CorpusConfig UsPreset();
  static CorpusConfig UkPreset();
};

class SyntheticCorpus {
 public:
  // Interns the synthetic vocabulary into `vocab` (not owned; must outlive
  // the corpus). Term frequencies accumulate into `vocab` as objects are
  // generated, so routing decisions see the live frequency profile.
  SyntheticCorpus(const CorpusConfig& config, Vocabulary* vocab);

  // Generates the next object (fresh id, clustered location, mixed
  // global/topic terms).
  SpatioTextualObject NextObject();
  std::vector<SpatioTextualObject> Generate(size_t n);

  // A location distributed like object locations (for query centers).
  Point SampleLocation(Rng& rng) const;

  // Samples one term id: global Zipf, or the topic of the city nearest to
  // `loc` with probability city_topic_skew.
  TermId SampleTermAt(Point loc, Rng& rng) const;

  // A term outside the top `excluded_fraction` most frequent ranks (the Q2
  // "rare keyword" constraint), sampled Zipf-shaped over the tail.
  TermId SampleRareTerm(double excluded_fraction, Rng& rng) const;

  const CorpusConfig& config() const { return config_; }
  const Vocabulary& vocab() const { return *vocab_; }
  const Rect& extent() const { return config_.extent; }

  // The city index whose center is nearest to `loc`.
  int NearestCity(Point loc) const;
  int num_cities() const { return static_cast<int>(cities_.size()); }

  // Multiplies a city's message-volume weight by `factor` (and renormalizes
  // the sampling distribution). Models the spatial drift of real streams —
  // attention shifting between regions over days — which the Figure 16
  // experiment needs to recreate the paper's changing workload.
  void ScaleCityWeight(int city, double factor);

 private:
  struct City {
    Point center;
    double weight = 1.0;   // relative message volume
    double sigma = 0.01;   // location spread
    size_t topic_offset = 0;  // start rank of the topic slice
  };

  CorpusConfig config_;
  Vocabulary* vocab_;
  mutable Rng rng_;
  std::vector<City> cities_;
  std::vector<double> city_cdf_;
  std::vector<TermId> rank_to_term_;  // vocab terms ordered by design rank
  ZipfSampler global_zipf_;
  ZipfSampler topic_zipf_;
  ObjectId next_id_ = 1;
};

}  // namespace ps2

#endif  // PS2_WORKLOAD_SYNTHETIC_CORPUS_H_
