#include "workload/synthetic_corpus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ps2 {

CorpusConfig CorpusConfig::UsPreset() {
  CorpusConfig c;
  c.name = "US";
  c.extent = Rect(-125.0, 24.0, -66.0, 49.0);
  c.num_cities = 60;
  c.vocab_size = 20000;
  c.city_topic_skew = 0.55;
  c.seed = 20170401;
  return c;
}

CorpusConfig CorpusConfig::UkPreset() {
  CorpusConfig c;
  c.name = "UK";
  c.extent = Rect(-8.0, 50.0, 2.0, 59.0);
  c.num_cities = 22;
  c.vocab_size = 12000;
  // The UK stream is denser and more topically concentrated: fewer cities,
  // stronger local topics — frequent keywords dominate more.
  c.city_topic_skew = 0.65;
  c.city_sigma_frac = 0.02;
  c.seed = 20170402;
  return c;
}

SyntheticCorpus::SyntheticCorpus(const CorpusConfig& config, Vocabulary* vocab)
    : config_(config),
      vocab_(vocab),
      rng_(config.seed),
      global_zipf_(config.vocab_size, config.zipf_exponent),
      topic_zipf_(config.topic_terms_per_city, config.zipf_exponent) {
  // Intern the vocabulary; rank r term is "<name>_t<r>".
  rank_to_term_.reserve(config_.vocab_size);
  char buf[64];
  for (size_t r = 0; r < config_.vocab_size; ++r) {
    std::snprintf(buf, sizeof(buf), "%s_t%zu", config_.name.c_str(), r);
    rank_to_term_.push_back(vocab_->Intern(buf));
  }
  // Cities: random centers inside the extent, Zipf-ish weights, topic
  // slices drawn from the mid-frequency band so topics are distinctive but
  // not vanishingly rare.
  const double diag = std::sqrt(config_.extent.width() * config_.extent.width() +
                                config_.extent.height() * config_.extent.height());
  cities_.reserve(config_.num_cities);
  const size_t band_lo = config_.vocab_size / 50;  // skip the global head
  const size_t band_hi =
      config_.vocab_size - config_.topic_terms_per_city - 1;
  double total_weight = 0.0;
  for (int i = 0; i < config_.num_cities; ++i) {
    City city;
    city.center = Point{
        rng_.NextUniform(config_.extent.min_x, config_.extent.max_x),
        rng_.NextUniform(config_.extent.min_y, config_.extent.max_y)};
    city.weight = 1.0 / (1.0 + i * 0.35);  // few big cities, many small
    city.sigma = diag * config_.city_sigma_frac *
                 rng_.NextUniform(0.5, 1.5);
    city.topic_offset =
        band_lo + rng_.NextBelow(std::max<size_t>(1, band_hi - band_lo));
    total_weight += city.weight;
    cities_.push_back(city);
  }
  city_cdf_.reserve(cities_.size());
  double cum = 0.0;
  for (const auto& c : cities_) {
    cum += c.weight / total_weight;
    city_cdf_.push_back(cum);
  }
}

void SyntheticCorpus::ScaleCityWeight(int city, double factor) {
  if (city < 0 || city >= static_cast<int>(cities_.size())) return;
  cities_[city].weight *= factor;
  double total = 0.0;
  for (const auto& c : cities_) total += c.weight;
  double cum = 0.0;
  for (size_t i = 0; i < cities_.size(); ++i) {
    cum += cities_[i].weight / total;
    city_cdf_[i] = cum;
  }
}

Point SyntheticCorpus::SampleLocation(Rng& rng) const {
  const double u = rng.NextDouble();
  const size_t city_idx =
      std::lower_bound(city_cdf_.begin(), city_cdf_.end(), u) -
      city_cdf_.begin();
  const City& city = cities_[std::min(city_idx, cities_.size() - 1)];
  const auto clamp = [](double v, double lo, double hi) {
    return std::min(std::max(v, lo), hi);
  };
  return Point{
      clamp(rng.NextGaussian(city.center.x, city.sigma), config_.extent.min_x,
            config_.extent.max_x),
      clamp(rng.NextGaussian(city.center.y, city.sigma), config_.extent.min_y,
            config_.extent.max_y)};
}

int SyntheticCorpus::NearestCity(Point loc) const {
  int best = 0;
  double best_d = Distance(loc, cities_[0].center);
  for (size_t i = 1; i < cities_.size(); ++i) {
    const double d = Distance(loc, cities_[i].center);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

TermId SyntheticCorpus::SampleTermAt(Point loc, Rng& rng) const {
  if (rng.NextDouble() < config_.city_topic_skew) {
    const City& city = cities_[NearestCity(loc)];
    const size_t rank = city.topic_offset + topic_zipf_.Sample(rng);
    return rank_to_term_[std::min(rank, rank_to_term_.size() - 1)];
  }
  return rank_to_term_[global_zipf_.Sample(rng)];
}

TermId SyntheticCorpus::SampleRareTerm(double excluded_fraction,
                                       Rng& rng) const {
  const size_t cutoff = static_cast<size_t>(
      excluded_fraction * static_cast<double>(rank_to_term_.size()));
  // Zipf-shaped over the tail: sample the global Zipf until past the
  // cutoff, with a uniform fallback to bound the loop.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const size_t rank = global_zipf_.Sample(rng);
    if (rank >= cutoff) return rank_to_term_[rank];
  }
  return rank_to_term_[cutoff +
                       rng.NextBelow(rank_to_term_.size() - cutoff)];
}

SpatioTextualObject SyntheticCorpus::NextObject() {
  const Point loc = SampleLocation(rng_);
  // Term count: 1 + Poisson-ish via rounded exponential around the mean.
  const double raw =
      rng_.NextGaussian(config_.mean_terms_per_object,
                        config_.mean_terms_per_object * 0.35);
  const size_t k = static_cast<size_t>(std::max(1.0, std::round(raw)));
  std::vector<TermId> terms;
  terms.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    terms.push_back(SampleTermAt(loc, rng_));
  }
  SpatioTextualObject o =
      SpatioTextualObject::FromTerms(next_id_++, loc, std::move(terms));
  for (const TermId t : o.terms) vocab_->AddCount(t);
  return o;
}

std::vector<SpatioTextualObject> SyntheticCorpus::Generate(size_t n) {
  std::vector<SpatioTextualObject> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(NextObject());
  return out;
}

}  // namespace ps2
