#include "workload/trace_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace ps2 {
namespace {

constexpr char kMagic[4] = {'P', 'S', '2', 'T'};
constexpr uint32_t kVersion = 1;

struct Writer {
  FILE* f;
  bool ok = true;

  void Bytes(const void* p, size_t n) {
    if (ok && std::fwrite(p, 1, n, f) != n) ok = false;
  }
  template <typename T>
  void Pod(T v) {
    Bytes(&v, sizeof(T));
  }
};

struct Reader {
  FILE* f;
  long file_size = 0;
  bool ok = true;

  void Bytes(void* p, size_t n) {
    if (ok && std::fread(p, 1, n, f) != n) ok = false;
  }
  template <typename T>
  T Pod() {
    T v{};
    Bytes(&v, sizeof(T));
    return v;
  }

  // Sanity-cap a declared element count before the caller reserves for it:
  // `count` elements of at least `min_bytes_each` cannot outsize what is
  // left of the file, so a flipped length field fails the read cleanly
  // instead of attempting a multi-GB allocation.
  bool FitsCount(uint64_t count, size_t min_bytes_each) {
    if (!ok) return false;
    const long pos = std::ftell(f);
    if (pos < 0 || pos > file_size) {
      ok = false;
      return false;
    }
    const uint64_t remaining = static_cast<uint64_t>(file_size - pos);
    if (count <= remaining / (min_bytes_each == 0 ? 1 : min_bytes_each)) {
      return true;
    }
    ok = false;
    return false;
  }
};

void WriteQuery(Writer& w, const STSQuery& q) {
  w.Pod<uint64_t>(q.id);
  w.Pod<double>(q.region.min_x);
  w.Pod<double>(q.region.min_y);
  w.Pod<double>(q.region.max_x);
  w.Pod<double>(q.region.max_y);
  const auto& clauses = q.expr.clauses();
  w.Pod<uint32_t>(static_cast<uint32_t>(clauses.size()));
  for (const auto& clause : clauses) {
    w.Pod<uint32_t>(static_cast<uint32_t>(clause.size()));
    for (const TermId t : clause) w.Pod<uint32_t>(t);
  }
}

STSQuery ReadQuery(Reader& r, const std::vector<TermId>& remap) {
  STSQuery q;
  q.id = r.Pod<uint64_t>();
  const double mnx = r.Pod<double>();
  const double mny = r.Pod<double>();
  const double mxx = r.Pod<double>();
  const double mxy = r.Pod<double>();
  q.region = Rect(mnx, mny, mxx, mxy);
  const uint32_t num_clauses = r.Pod<uint32_t>();
  if (!r.FitsCount(num_clauses, sizeof(uint32_t))) return q;
  std::vector<std::vector<TermId>> clauses;
  clauses.reserve(num_clauses);
  for (uint32_t c = 0; c < num_clauses && r.ok; ++c) {
    const uint32_t n = r.Pod<uint32_t>();
    if (!r.FitsCount(n, sizeof(uint32_t))) return q;
    std::vector<TermId> clause;
    clause.reserve(n);
    for (uint32_t i = 0; i < n && r.ok; ++i) {
      const uint32_t file_id = r.Pod<uint32_t>();
      if (file_id < remap.size()) clause.push_back(remap[file_id]);
    }
    clauses.push_back(std::move(clause));
  }
  q.expr = BoolExpr::Cnf(std::move(clauses));
  return q;
}

}  // namespace

bool WriteTrace(const std::string& path, const Vocabulary& vocab,
                const std::vector<StreamTuple>& tuples) {
  std::unique_ptr<FILE, int (*)(FILE*)> file(std::fopen(path.c_str(), "wb"),
                                             &std::fclose);
  if (file == nullptr) return false;
  Writer w{file.get()};
  w.Bytes(kMagic, 4);
  w.Pod<uint32_t>(kVersion);
  w.Pod<uint64_t>(vocab.size());
  w.Pod<uint64_t>(tuples.size());
  for (size_t i = 0; i < vocab.size(); ++i) {
    const std::string& term = vocab.TermString(static_cast<TermId>(i));
    w.Pod<uint32_t>(static_cast<uint32_t>(term.size()));
    w.Bytes(term.data(), term.size());
  }
  for (const auto& t : tuples) {
    w.Pod<uint8_t>(static_cast<uint8_t>(t.kind));
    w.Pod<int64_t>(t.event_time_us);
    if (t.kind == TupleKind::kObject) {
      w.Pod<uint64_t>(t.object.id);
      w.Pod<double>(t.object.loc.x);
      w.Pod<double>(t.object.loc.y);
      w.Pod<uint32_t>(static_cast<uint32_t>(t.object.terms.size()));
      for (const TermId term : t.object.terms) w.Pod<uint32_t>(term);
    } else {
      WriteQuery(w, t.query);
    }
  }
  return w.ok;
}

bool ReadTrace(const std::string& path, Vocabulary& vocab,
               std::vector<StreamTuple>* out) {
  std::unique_ptr<FILE, int (*)(FILE*)> file(std::fopen(path.c_str(), "rb"),
                                             &std::fclose);
  if (file == nullptr) return false;
  Reader r{file.get()};
  std::fseek(file.get(), 0, SEEK_END);
  r.file_size = std::ftell(file.get());
  std::fseek(file.get(), 0, SEEK_SET);
  if (r.file_size < 0) return false;
  char magic[4];
  r.Bytes(magic, 4);
  if (!r.ok || std::memcmp(magic, kMagic, 4) != 0) return false;
  if (r.Pod<uint32_t>() != kVersion) return false;
  const uint64_t num_terms = r.Pod<uint64_t>();
  const uint64_t num_tuples = r.Pod<uint64_t>();
  // Each term costs at least its u32 length; each tuple at least a kind
  // byte + timestamp.
  if (!r.FitsCount(num_terms, sizeof(uint32_t)) ||
      !r.FitsCount(num_tuples, sizeof(uint8_t) + sizeof(int64_t))) {
    return false;
  }

  std::vector<TermId> remap;
  remap.reserve(num_terms);
  std::string buf;
  for (uint64_t i = 0; i < num_terms && r.ok; ++i) {
    const uint32_t len = r.Pod<uint32_t>();
    if (!r.ok || len > (1u << 20) || !r.FitsCount(len, 1)) return false;
    buf.resize(len);
    r.Bytes(buf.data(), len);
    remap.push_back(vocab.Intern(buf));
  }
  for (uint64_t i = 0; i < num_tuples && r.ok; ++i) {
    const uint8_t kind = r.Pod<uint8_t>();
    const int64_t time_us = r.Pod<int64_t>();
    if (kind == static_cast<uint8_t>(TupleKind::kObject)) {
      const uint64_t id = r.Pod<uint64_t>();
      const double x = r.Pod<double>();
      const double y = r.Pod<double>();
      const uint32_t n = r.Pod<uint32_t>();
      if (!r.ok || !r.FitsCount(n, sizeof(uint32_t))) return false;
      std::vector<TermId> terms;
      terms.reserve(n);
      for (uint32_t j = 0; j < n && r.ok; ++j) {
        const uint32_t file_id = r.Pod<uint32_t>();
        if (file_id < remap.size()) terms.push_back(remap[file_id]);
      }
      auto o = SpatioTextualObject::FromTerms(id, Point{x, y},
                                              std::move(terms));
      o.timestamp_us = time_us;
      out->push_back(StreamTuple::OfObject(std::move(o)));
    } else if (kind == static_cast<uint8_t>(TupleKind::kQueryInsert) ||
               kind == static_cast<uint8_t>(TupleKind::kQueryDelete)) {
      STSQuery q = ReadQuery(r, remap);
      out->push_back(kind == static_cast<uint8_t>(TupleKind::kQueryInsert)
                         ? StreamTuple::OfInsert(std::move(q), time_us)
                         : StreamTuple::OfDelete(std::move(q), time_us));
    } else {
      return false;  // unknown tuple kind
    }
  }
  return r.ok;
}

bool WriteSample(const std::string& path, const Vocabulary& vocab,
                 const WorkloadSample& sample) {
  std::vector<StreamTuple> tuples;
  tuples.reserve(sample.objects.size() + sample.inserts.size() +
                 sample.deletes.size());
  for (const auto& o : sample.objects) {
    tuples.push_back(StreamTuple::OfObject(o));
  }
  for (const auto& q : sample.inserts) {
    tuples.push_back(StreamTuple::OfInsert(q));
  }
  for (const auto& q : sample.deletes) {
    tuples.push_back(StreamTuple::OfDelete(q));
  }
  return WriteTrace(path, vocab, tuples);
}

bool ReadSample(const std::string& path, Vocabulary& vocab,
                WorkloadSample* out) {
  std::vector<StreamTuple> tuples;
  if (!ReadTrace(path, vocab, &tuples)) return false;
  for (auto& t : tuples) {
    switch (t.kind) {
      case TupleKind::kObject:
        out->objects.push_back(std::move(t.object));
        break;
      case TupleKind::kQueryInsert:
        out->inserts.push_back(std::move(t.query));
        break;
      case TupleKind::kQueryDelete:
        out->deletes.push_back(std::move(t.query));
        break;
    }
  }
  return true;
}

}  // namespace ps2
