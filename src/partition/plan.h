#ifndef PS2_PARTITION_PLAN_H_
#define PS2_PARTITION_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cost_model.h"
#include "core/workload_stats.h"
#include "spatial/grid.h"
#include "text/vocabulary.h"

namespace ps2 {

using WorkerId = int32_t;

// Maps terms to workers inside one text-partitioned region (one Ti
// assignment of Definition 2 restricted to a subspace). Terms absent from
// the explicit map (unseen during partitioning) fall back to a hash over the
// participating workers, so routing is total and objects/queries carrying a
// brand-new term still rendezvous at the same worker.
class TermRouter {
 public:
  TermRouter(std::unordered_map<TermId, WorkerId> map,
             std::vector<WorkerId> workers);

  WorkerId Route(TermId t) const;

  // The workers this router can return (the region's worker set).
  const std::vector<WorkerId>& workers() const { return workers_; }

  // The explicit term assignments (H1 content of the region).
  const std::unordered_map<TermId, WorkerId>& term_map() const { return map_; }

  size_t map_size() const { return map_.size(); }
  size_t MemoryBytes() const;

 private:
  std::unordered_map<TermId, WorkerId> map_;
  std::vector<WorkerId> workers_;
};

// Routing rule for one grid cell: either the whole cell belongs to a single
// worker (space-routed, "sent without checking the textual content") or a
// TermRouter splits it by text. Text routers are shared across all cells of
// the kdt-tree leaf they came from.
struct CellRoute {
  WorkerId worker = 0;
  std::shared_ptr<const TermRouter> text;  // non-null => text-routed

  bool IsText() const { return text != nullptr; }
};

// The output of every partitioner (Definition 2's (Si, Ti) pairs), encoded
// per grid cell. This is the paper's "gridt index can be built from the
// kdt-tree" representation: the dispatcher evaluates routing in O(1) grid
// lookup + O(#terms) instead of traversing a tree.
struct PartitionPlan {
  GridSpec grid;
  int num_workers = 0;
  std::vector<CellRoute> cells;  // size == grid.NumCells()

  // Workers an object must be sent to: the cell containing o.loc decides;
  // text-routed cells fan out one worker per distinct term (deduplicated).
  void RouteObject(const SpatioTextualObject& o,
                   std::vector<WorkerId>* out) const;

  // Workers a query insert/delete must be sent to, along with the cells the
  // query should be indexed in *at that worker*. Text-routed cells route by
  // the query's routing terms (cheapest clause; the paper's "least frequent
  // keyword" generalized to CNF).
  struct QueryRoute {
    WorkerId worker = 0;
    std::vector<CellId> cells;
  };
  // `overlap_scratch`, when non-null, is used for the cell-overlap list and
  // holds q.region's overlapping cells on return — callers that need the
  // overlap anyway (H2 maintenance) reuse it instead of recomputing, and
  // repeated routing stops reallocating the list.
  void RouteQuery(const STSQuery& q, const Vocabulary& vocab,
                  std::vector<QueryRoute>* out,
                  std::vector<CellId>* overlap_scratch = nullptr) const;

  // Approximate dispatcher-side footprint of the routing structure.
  size_t MemoryBytes() const;

  // Number of text-routed cells (diagnostics / Fig 9 analysis).
  size_t NumTextCells() const;
};

// Per-worker load report for a plan evaluated on a workload sample using
// Definition 1. Partitioners use this to compare candidate plans; the
// benchmarks report it alongside measured throughput.
struct PlanLoadReport {
  std::vector<WorkerLoadTally> tallies;
  std::vector<double> loads;
  double total_load = 0.0;
  double balance = 1.0;  // Lmax / Lmin
};

PlanLoadReport EstimatePlanLoad(const PartitionPlan& plan,
                                const WorkloadSample& sample,
                                const Vocabulary& vocab, const CostModel& cm);

// Shared knobs for all partitioners.
struct PartitionConfig {
  int num_workers = 8;
  int grid_k = 6;       // 2^k x 2^k routing grid (paper: 2^6)
  CostModel cost;
  double sigma = 1.5;   // load balance constraint Lmax/Lmin <= sigma
  double delta = 0.4;   // hybrid: text-similarity threshold (Algorithm 1)
  double epsilon = 0.05;  // hybrid: |alpha - sim| ~ 0 tolerance
  size_t theta = 1024;  // hybrid: max number of kdt-tree nodes
  uint64_t seed = 42;   // for randomized tie-breaking
  // Hybrid ablation: disable the ComputeNumberPartitions dynamic program
  // and split every phase-1 node into an equal share of the workers.
  bool use_number_partitions_dp = true;
};

// Interface implemented by the six baselines and the hybrid algorithm.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::string Name() const = 0;
  virtual PartitionPlan Build(const WorkloadSample& sample,
                              const Vocabulary& vocab,
                              const PartitionConfig& config) const = 0;
};

// Registry of all partitioners by name ("frequency", "hypergraph", "metric",
// "grid", "kdtree", "rtree", "hybrid"); nullptr for unknown names.
std::unique_ptr<Partitioner> MakePartitioner(const std::string& name);

}  // namespace ps2

#endif  // PS2_PARTITION_PLAN_H_
