#ifndef PS2_PARTITION_HYBRID_H_
#define PS2_PARTITION_HYBRID_H_

#include "partition/plan.h"

namespace ps2 {

// PS2Stream's hybrid workload partitioning (Section IV-B, Algorithm 1) —
// the paper's primary contribution. Two phases:
//
// Phase 1 — similarity-driven kd decomposition. Starting from the whole
// space, each node's cosine similarity between the term distribution of its
// objects and of its queries decides its fate: similar (>= delta) nodes go
// to Ns (text partitioning would duplicate objects massively — space
// partitioning candidates); dissimilar nodes are kd-split in the direction
// that most *reduces* similarity; when splitting no longer changes the
// similarity (|alpha - sim| <= epsilon) the node is "consistent" and goes
// to Nt (text-partitioning-only).
//
// Phase 2 — allocation. If there are fewer nodes than workers, the dynamic
// program ComputeNumberPartitions picks how many parts each node is split
// into so the total Definition-1 load is minimal; PartitionNode performs
// the split (Nt nodes by text; Ns nodes by whichever of text/space yields
// less load). MergeNodesIntoPartitions then greedily packs the leaves onto
// the m workers; while the balance constraint Lmax/Lmin <= sigma is
// violated, the heaviest leaf is split further (up to theta nodes).
//
// The output kdt-tree is compiled directly into the per-cell PartitionPlan
// (the paper's gridt transformation): space leaves map their cells to one
// worker; text leaves of the same block share a TermRouter.
class HybridPartitioner : public Partitioner {
 public:
  std::string Name() const override { return "hybrid"; }
  PartitionPlan Build(const WorkloadSample& sample, const Vocabulary& vocab,
                      const PartitionConfig& config) const override;

  // Diagnostics of the last Build (not thread-safe; benchmarks only).
  struct BuildInfo {
    size_t phase1_ns_nodes = 0;  // nodes sent to Ns
    size_t phase1_nt_nodes = 0;  // nodes sent to Nt
    size_t final_leaves = 0;
    size_t text_leaves = 0;
    double estimated_total_load = 0.0;
    double estimated_balance = 0.0;
  };
  const BuildInfo& last_build_info() const { return info_; }

 private:
  mutable BuildInfo info_;
};

}  // namespace ps2

#endif  // PS2_PARTITION_HYBRID_H_
