#include "partition/plan_serde.h"

#include <unordered_map>

namespace ps2 {
namespace {

constexpr uint32_t kNoRouter = ~uint32_t{0};

}  // namespace

void WritePlan(ByteWriter& w, const PartitionPlan& plan) {
  const Rect& b = plan.grid.bounds();
  w.Pod<double>(b.min_x);
  w.Pod<double>(b.min_y);
  w.Pod<double>(b.max_x);
  w.Pod<double>(b.max_y);
  w.Pod<int32_t>(plan.grid.k());
  w.Pod<int32_t>(plan.num_workers);

  // Deduplicate shared TermRouters by identity.
  std::unordered_map<const TermRouter*, uint32_t> router_index;
  std::vector<const TermRouter*> routers;
  for (const CellRoute& c : plan.cells) {
    if (c.IsText() && router_index.emplace(c.text.get(),
                                           routers.size()).second) {
      routers.push_back(c.text.get());
    }
  }
  w.Pod<uint32_t>(static_cast<uint32_t>(routers.size()));
  for (const TermRouter* router : routers) {
    w.Pod<uint32_t>(static_cast<uint32_t>(router->workers().size()));
    for (const WorkerId worker : router->workers()) w.Pod<int32_t>(worker);
    w.Pod<uint32_t>(static_cast<uint32_t>(router->term_map().size()));
    for (const auto& [term, worker] : router->term_map()) {
      w.Pod<uint32_t>(term);
      w.Pod<int32_t>(worker);
    }
  }
  w.Pod<uint32_t>(static_cast<uint32_t>(plan.cells.size()));
  for (const CellRoute& c : plan.cells) {
    w.Pod<int32_t>(c.worker);
    w.Pod<uint32_t>(c.IsText() ? router_index[c.text.get()] : kNoRouter);
  }
}

bool ReadPlan(ByteReader& r, const std::vector<TermId>& remap,
              PartitionPlan* out) {
  const double mnx = r.Pod<double>();
  const double mny = r.Pod<double>();
  const double mxx = r.Pod<double>();
  const double mxy = r.Pod<double>();
  const int32_t k = r.Pod<int32_t>();
  const int32_t num_workers = r.Pod<int32_t>();
  if (!r.ok() || k < 0 || k > 15 || num_workers < 0) return false;
  out->grid = GridSpec(Rect(mnx, mny, mxx, mxy), k);
  out->num_workers = num_workers;

  const uint32_t num_routers = r.Pod<uint32_t>();
  if (!r.FitsCount(num_routers, 8)) return false;
  std::vector<std::shared_ptr<const TermRouter>> routers;
  routers.reserve(num_routers);
  for (uint32_t i = 0; i < num_routers && r.ok(); ++i) {
    const uint32_t num_router_workers = r.Pod<uint32_t>();
    if (!r.FitsCount(num_router_workers, sizeof(int32_t))) return false;
    std::vector<WorkerId> workers;
    workers.reserve(num_router_workers);
    for (uint32_t j = 0; j < num_router_workers && r.ok(); ++j) {
      workers.push_back(r.Pod<int32_t>());
    }
    const uint32_t num_terms = r.Pod<uint32_t>();
    if (!r.FitsCount(num_terms, sizeof(uint32_t) + sizeof(int32_t))) {
      return false;
    }
    std::unordered_map<TermId, WorkerId> term_map;
    term_map.reserve(num_terms);
    for (uint32_t j = 0; j < num_terms && r.ok(); ++j) {
      const uint32_t file_term = r.Pod<uint32_t>();
      const int32_t worker = r.Pod<int32_t>();
      // Ids beyond the remap table belong to the raw-id world (terms the
      // writing vocabulary never interned); they pass through verbatim.
      term_map[file_term < remap.size() ? remap[file_term] : file_term] =
          worker;
    }
    if (!r.ok()) return false;
    routers.push_back(std::make_shared<const TermRouter>(std::move(term_map),
                                                         std::move(workers)));
  }

  const uint32_t num_cells = r.Pod<uint32_t>();
  if (!r.FitsCount(num_cells, sizeof(int32_t) + sizeof(uint32_t))) {
    return false;
  }
  if (num_cells != out->grid.NumCells()) return false;
  out->cells.clear();
  out->cells.resize(num_cells);
  for (uint32_t c = 0; c < num_cells && r.ok(); ++c) {
    out->cells[c].worker = r.Pod<int32_t>();
    const uint32_t router = r.Pod<uint32_t>();
    if (router != kNoRouter) {
      if (router >= routers.size()) return false;
      out->cells[c].text = routers[router];
    }
  }
  return r.ok();
}

}  // namespace ps2
