#ifndef PS2_PARTITION_SPACE_KDTREE_H_
#define PS2_PARTITION_SPACE_KDTREE_H_

#include "partition/plan.h"

namespace ps2 {

// kd-tree space partitioning (baseline after AQWA [21] and Tornado [26]):
// the space is recursively split at weighted medians into one contiguous
// block per worker, then — as in Tornado — the kd-tree is flattened onto
// the routing grid for O(1) dispatch. Contiguity limits duplication of
// moderate query rectangles compared to the grid baseline, making this the
// paper's strongest space baseline.
class KdTreeSpacePartitioner : public Partitioner {
 public:
  std::string Name() const override { return "kdtree"; }
  PartitionPlan Build(const WorkloadSample& sample, const Vocabulary& vocab,
                      const PartitionConfig& config) const override;
};

}  // namespace ps2

#endif  // PS2_PARTITION_SPACE_KDTREE_H_
