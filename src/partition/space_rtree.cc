#include "partition/space_rtree.h"

#include <algorithm>

#include "partition/load_estimator.h"
#include "spatial/rtree.h"

namespace ps2 {

PartitionPlan RTreeSpacePartitioner::Build(const WorkloadSample& sample,
                                           const Vocabulary& /*vocab*/,
                                           const PartitionConfig& config) const {
  const GridSpec grid(sample.Bounds(), config.grid_k);
  const CellLoadProfile profile = CellLoadProfile::Compute(grid, sample);
  const int m = config.num_workers;

  PartitionPlan plan;
  plan.grid = grid;
  plan.num_workers = m;
  plan.cells.resize(grid.NumCells());

  // Bulk-load the R-tree over the sampled insert-query rectangles.
  std::vector<RTree::Entry> entries;
  entries.reserve(sample.inserts.size());
  for (uint64_t i = 0; i < sample.inserts.size(); ++i) {
    entries.push_back(RTree::Entry{sample.inserts[i].region, i, 1.0});
  }
  if (entries.empty()) {
    // No queries sampled: degrade to pure load-balanced cell assignment.
    std::vector<double> weights(grid.NumCells());
    for (CellId c = 0; c < grid.NumCells(); ++c) {
      weights[c] = profile.CellLoad(config.cost, c);
    }
    const std::vector<int> bins = GreedyLpt(weights, m);
    for (CellId c = 0; c < grid.NumCells(); ++c) {
      plan.cells[c].worker = bins[c];
    }
    return plan;
  }
  RTree tree(leaf_capacity_);
  tree.Build(std::move(entries));

  // Distribute leaves over workers by weight (LPT).
  const auto leaves = tree.Leaves();
  std::vector<double> leaf_weights;
  leaf_weights.reserve(leaves.size());
  for (const auto& leaf : leaves) leaf_weights.push_back(leaf.weight);
  const std::vector<int> leaf_worker = GreedyLpt(leaf_weights, m);

  // Rasterize: each cell votes for the worker whose leaves overlap it with
  // the largest total area.
  std::vector<std::vector<double>> votes(grid.NumCells(),
                                         std::vector<double>(m, 0.0));
  for (size_t l = 0; l < leaves.size(); ++l) {
    const int w = leaf_worker[l];
    for (const CellId c : grid.CellsOverlapping(leaves[l].mbr)) {
      votes[c][w] += grid.CellRect(c).Intersection(leaves[l].mbr).Area() +
                     1e-12;  // epsilon so degenerate overlaps still count
    }
  }
  // Cells covered by no leaf are packed onto workers by LPT on their load.
  std::vector<CellId> orphan_cells;
  std::vector<double> orphan_weights;
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    const auto& v = votes[c];
    const auto it = std::max_element(v.begin(), v.end());
    if (*it > 0.0) {
      plan.cells[c].worker = static_cast<WorkerId>(it - v.begin());
    } else {
      orphan_cells.push_back(c);
      orphan_weights.push_back(profile.CellLoad(config.cost, c));
    }
  }
  if (!orphan_cells.empty()) {
    const std::vector<int> bins = GreedyLpt(orphan_weights, m);
    for (size_t i = 0; i < orphan_cells.size(); ++i) {
      plan.cells[orphan_cells[i]].worker = bins[i];
    }
  }
  return plan;
}

}  // namespace ps2
