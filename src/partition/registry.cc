#include "partition/hybrid.h"
#include "partition/plan.h"
#include "partition/space_grid.h"
#include "partition/space_kdtree.h"
#include "partition/space_rtree.h"
#include "partition/text_frequency.h"
#include "partition/text_hypergraph.h"
#include "partition/text_metric.h"

namespace ps2 {

std::unique_ptr<Partitioner> MakePartitioner(const std::string& name) {
  if (name == "frequency") return std::make_unique<FrequencyTextPartitioner>();
  if (name == "hypergraph") {
    return std::make_unique<HypergraphTextPartitioner>();
  }
  if (name == "metric") return std::make_unique<MetricTextPartitioner>();
  if (name == "grid") return std::make_unique<GridSpacePartitioner>();
  if (name == "kdtree") return std::make_unique<KdTreeSpacePartitioner>();
  if (name == "rtree") return std::make_unique<RTreeSpacePartitioner>();
  if (name == "hybrid") return std::make_unique<HybridPartitioner>();
  return nullptr;
}

}  // namespace ps2
