#include "partition/hybrid.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <unordered_set>

#include "partition/load_estimator.h"
#include "spatial/kdtree.h"
#include "text/similarity.h"

namespace ps2 {
namespace {

// A kdt-tree node during construction: a block of grid cells, optionally
// restricted to a term subset (after a text split), plus the indices of the
// sampled objects / insert / delete requests it would receive.
struct Node {
  CellBlock block;
  bool text_restricted = false;
  std::vector<TermId> terms;  // sorted; meaningful when text_restricted
  bool text_only = false;     // member of Nt: may only be split by text

  std::vector<uint32_t> objs;
  std::vector<uint32_t> ins;
  std::vector<uint32_t> dels;
  double load = 0.0;

  bool HasTerm(TermId t) const {
    return std::binary_search(terms.begin(), terms.end(), t);
  }
  bool AcceptsAnyTerm(const std::vector<TermId>& ts) const {
    if (!text_restricted) return true;
    for (const TermId t : ts) {
      if (HasTerm(t)) return true;
    }
    return false;
  }
};

// All per-build state, so HybridPartitioner::Build stays re-entrant.
struct Builder {
  const WorkloadSample& sample;
  const Vocabulary& vocab;
  const PartitionConfig& cfg;
  GridSpec grid;
  // Precomputed per-insert/delete routing terms and overlapped cell ranges.
  std::vector<std::vector<TermId>> ins_routing, del_routing;
  std::vector<CellId> obj_cell;

  Builder(const WorkloadSample& s, const Vocabulary& v,
          const PartitionConfig& c)
      : sample(s), vocab(v), cfg(c), grid(s.Bounds(), c.grid_k) {
    obj_cell.reserve(sample.objects.size());
    for (const auto& o : sample.objects) obj_cell.push_back(grid.CellOf(o.loc));
    ins_routing.reserve(sample.inserts.size());
    for (const auto& q : sample.inserts) {
      ins_routing.push_back(q.expr.RoutingTerms(vocab));
    }
    del_routing.reserve(sample.deletes.size());
    for (const auto& q : sample.deletes) {
      del_routing.push_back(q.expr.RoutingTerms(vocab));
    }
  }

  bool CellInBlock(CellId c, const CellBlock& b) const {
    return b.ContainsCell(grid.CellX(c), grid.CellY(c));
  }

  bool RegionOverlapsBlock(const Rect& r, const CellBlock& b) const {
    uint32_t cx0, cy0, cx1, cy1;
    if (!grid.CellRange(r, &cx0, &cy0, &cx1, &cy1)) return false;
    return cx0 <= b.cx1 && cx1 >= b.cx0 && cy0 <= b.cy1 && cy1 >= b.cy0;
  }

  // Node load: c1 times the *cell-level* matching work (Definition 3's
  // no * nq summed over the node's cells — every object is only ever
  // matched against the queries stored in its own grid cell) plus the
  // linear handling terms of Definition 1. Worker-granularity |O|*|Q|
  // would systematically overcharge wide sparse nodes and push the
  // algorithm into needless text splits.
  double NodeLoad(const Node& n) const {
    std::unordered_map<CellId, uint32_t> no;
    for (const uint32_t i : n.objs) no[obj_cell[i]]++;
    std::unordered_map<CellId, uint32_t> nq;
    for (const uint32_t i : n.ins) {
      uint32_t cx0, cy0, cx1, cy1;
      if (!grid.CellRange(sample.inserts[i].region, &cx0, &cy0, &cx1,
                          &cy1)) {
        continue;
      }
      cx0 = std::max(cx0, n.block.cx0);
      cy0 = std::max(cy0, n.block.cy0);
      cx1 = std::min(cx1, n.block.cx1);
      cy1 = std::min(cy1, n.block.cy1);
      if (cx0 > cx1 || cy0 > cy1) continue;
      for (uint32_t cy = cy0; cy <= cy1; ++cy) {
        for (uint32_t cx = cx0; cx <= cx1; ++cx) {
          nq[grid.ToId(cx, cy)]++;
        }
      }
    }
    double matching = 0.0;
    for (const auto& [cell, o] : no) {
      auto it = nq.find(cell);
      if (it != nq.end()) matching += static_cast<double>(o) * it->second;
    }
    return cfg.cost.c1 * matching + cfg.cost.c2 * n.objs.size() +
           cfg.cost.c3 * n.ins.size() + cfg.cost.c4 * n.dels.size();
  }

  Node MakeRoot() const {
    Node root;
    root.block = CellBlock{0, 0, grid.side() - 1, grid.side() - 1};
    root.objs.resize(sample.objects.size());
    std::iota(root.objs.begin(), root.objs.end(), 0);
    root.ins.resize(sample.inserts.size());
    std::iota(root.ins.begin(), root.ins.end(), 0);
    root.dels.resize(sample.deletes.size());
    std::iota(root.dels.begin(), root.dels.end(), 0);
    return root;
  }

  // Restricts parent membership to a sub-block (space split child).
  Node MakeSpaceChild(const Node& parent, const CellBlock& block) const {
    Node child;
    child.block = block;
    child.text_restricted = parent.text_restricted;
    child.terms = parent.terms;
    child.text_only = parent.text_only;
    for (const uint32_t i : parent.objs) {
      if (CellInBlock(obj_cell[i], block)) child.objs.push_back(i);
    }
    for (const uint32_t i : parent.ins) {
      if (RegionOverlapsBlock(sample.inserts[i].region, block)) {
        child.ins.push_back(i);
      }
    }
    for (const uint32_t i : parent.dels) {
      if (RegionOverlapsBlock(sample.deletes[i].region, block)) {
        child.dels.push_back(i);
      }
    }
    child.load = NodeLoad(child);
    return child;
  }

  // Restricts parent membership to a term subset (text split child).
  Node MakeTextChild(const Node& parent, std::vector<TermId> terms) const {
    Node child;
    child.block = parent.block;
    child.text_restricted = true;
    child.text_only = true;  // further splits of a text leaf stay textual
    std::sort(terms.begin(), terms.end());
    child.terms = std::move(terms);
    for (const uint32_t i : parent.objs) {
      if (child.AcceptsAnyTerm(sample.objects[i].terms)) {
        child.objs.push_back(i);
      }
    }
    for (const uint32_t i : parent.ins) {
      if (child.AcceptsAnyTerm(ins_routing[i])) child.ins.push_back(i);
    }
    for (const uint32_t i : parent.dels) {
      if (child.AcceptsAnyTerm(del_routing[i])) child.dels.push_back(i);
    }
    child.load = NodeLoad(child);
    return child;
  }

  // Cosine similarity between the object and query term distributions of a
  // node: simt(On, Qn) in Algorithm 1.
  double TextSimilarity(const Node& n) const {
    TermVector ov, qv;
    for (const uint32_t i : n.objs) {
      for (const TermId t : sample.objects[i].terms) {
        if (!n.text_restricted || n.HasTerm(t)) ov.Add(t);
      }
    }
    for (const uint32_t i : n.ins) {
      for (const TermId t : sample.inserts[i].expr.DistinctTerms()) {
        if (!n.text_restricted || n.HasTerm(t)) qv.Add(t);
      }
    }
    return CosineSimilarity(ov, qv);
  }

  // Per-cell object+insert weight inside a node, for median splits.
  std::vector<double> NodeCellWeights(const Node& n) const {
    std::vector<double> w(grid.NumCells(), 0.0);
    for (const uint32_t i : n.objs) w[obj_cell[i]] += 1.0;
    for (const uint32_t i : n.ins) {
      uint32_t cx0, cy0, cx1, cy1;
      if (!grid.CellRange(sample.inserts[i].region, &cx0, &cy0, &cx1, &cy1)) {
        continue;
      }
      cx0 = std::max(cx0, n.block.cx0);
      cy0 = std::max(cy0, n.block.cy0);
      cx1 = std::min(cx1, n.block.cx1);
      cy1 = std::min(cy1, n.block.cy1);
      for (uint32_t cy = cy0; cy <= cy1; ++cy) {
        for (uint32_t cx = cx0; cx <= cx1; ++cx) {
          w[grid.ToId(cx, cy)] += 1.0;
        }
      }
    }
    return w;
  }

  // Splits a node into two along `axis` at the weighted median; returns
  // children through out-params; false when unsplittable.
  bool SpaceSplit2(const Node& n, int axis, Node* a, Node* b) const {
    const std::vector<double> w = NodeCellWeights(n);
    const auto weight_fn = [&](uint32_t cx, uint32_t cy) {
      return w[grid.ToId(cx, cy)];
    };
    CellBlock lb, rb;
    if (!SplitBlockAxis(n.block, axis, weight_fn, &lb, &rb)) return false;
    *a = MakeSpaceChild(n, lb);
    *b = MakeSpaceChild(n, rb);
    return true;
  }

  // Text-partitions `n` into p children with a node-local LPT over term
  // weights (Definition-1-shaped).
  std::vector<Node> TextSplit(const Node& n, int p) const {
    // Node-local term profile.
    std::unordered_map<TermId, uint32_t> of, qi, qd;
    for (const uint32_t i : n.objs) {
      for (const TermId t : sample.objects[i].terms) {
        if (!n.text_restricted || n.HasTerm(t)) of[t]++;
      }
    }
    for (const uint32_t i : n.ins) {
      for (const TermId t : ins_routing[i]) {
        if (!n.text_restricted || n.HasTerm(t)) qi[t]++;
      }
    }
    for (const uint32_t i : n.dels) {
      for (const TermId t : del_routing[i]) {
        if (!n.text_restricted || n.HasTerm(t)) qd[t]++;
      }
    }
    std::vector<TermId> terms;
    terms.reserve(of.size() + qi.size());
    for (const auto& [t, _] : of) terms.push_back(t);
    for (const auto& [t, _] : qi) {
      if (!of.count(t)) terms.push_back(t);
    }
    std::sort(terms.begin(), terms.end());
    if (terms.empty()) {
      // Nothing textual to split: replicate the node p times (only the
      // first copy carries the load).
      std::vector<Node> out(1, n);
      return out;
    }
    std::vector<double> weights;
    weights.reserve(terms.size());
    const auto get = [](const std::unordered_map<TermId, uint32_t>& m,
                        TermId t) -> double {
      auto it = m.find(t);
      return it == m.end() ? 0.0 : it->second;
    };
    for (const TermId t : terms) {
      weights.push_back(cfg.cost.c1 * get(of, t) * get(qi, t) +
                        cfg.cost.c2 * get(of, t) + cfg.cost.c3 * get(qi, t) +
                        cfg.cost.c4 * get(qd, t));
    }
    const std::vector<int> bins =
        GreedyLpt(weights, std::max(1, std::min<int>(p, terms.size())));
    const int used = 1 + *std::max_element(bins.begin(), bins.end());
    std::vector<std::vector<TermId>> groups(used);
    for (size_t i = 0; i < terms.size(); ++i) {
      groups[bins[i]].push_back(terms[i]);
    }
    std::vector<Node> out;
    out.reserve(groups.size());
    for (auto& g : groups) {
      if (!g.empty()) out.push_back(MakeTextChild(n, std::move(g)));
    }
    return out;
  }

  // kd-splits `n` into p sub-blocks (heaviest-first), one child per block.
  std::vector<Node> SpaceSplitP(const Node& n, int p) const {
    const std::vector<double> w = NodeCellWeights(n);
    const auto weight_fn = [&](uint32_t cx, uint32_t cy) {
      return w[grid.ToId(cx, cy)];
    };
    // Local kd decomposition of the node's block.
    std::vector<CellBlock> blocks{n.block};
    while (blocks.size() < static_cast<size_t>(p)) {
      // Split the heaviest splittable block.
      size_t heaviest = blocks.size();
      double heaviest_w = -1.0;
      for (size_t i = 0; i < blocks.size(); ++i) {
        if (!blocks[i].CanSplit()) continue;
        double bw = 0.0;
        for (uint32_t cy = blocks[i].cy0; cy <= blocks[i].cy1; ++cy) {
          for (uint32_t cx = blocks[i].cx0; cx <= blocks[i].cx1; ++cx) {
            bw += weight_fn(cx, cy);
          }
        }
        if (bw > heaviest_w) {
          heaviest_w = bw;
          heaviest = i;
        }
      }
      if (heaviest == blocks.size()) break;  // nothing splittable
      CellBlock l, r;
      if (!SplitBlockWeighted(blocks[heaviest], weight_fn, &l, &r)) break;
      blocks[heaviest] = l;
      blocks.push_back(r);
    }
    std::vector<Node> out;
    out.reserve(blocks.size());
    for (const auto& b : blocks) out.push_back(MakeSpaceChild(n, b));
    return out;
  }

  double TotalLoadOf(const std::vector<Node>& nodes) const {
    double sum = 0.0;
    for (const auto& n : nodes) sum += n.load;
    return sum;
  }

  // PartitionNode (Section IV-B): splits `n` into p nodes. Nt members are
  // split by text only; Ns members pick the cheaper of text/space.
  std::vector<Node> PartitionNode(const Node& n, int p) const {
    if (p <= 1) return {n};
    if (n.text_only || n.text_restricted || !n.block.CanSplit()) {
      return TextSplit(n, p);
    }
    std::vector<Node> by_text = TextSplit(n, p);
    std::vector<Node> by_space = SpaceSplitP(n, p);
    return TotalLoadOf(by_text) <= TotalLoadOf(by_space) ? by_text : by_space;
  }
};

// MergeNodesIntoPartitions (Section IV-B, "Node merging"): leaves in
// descending load order are packed onto m partitions. Each leaf goes to the
// partition with the minimum resulting load unless that would worsen the
// balance factor, in which case it goes to the currently lightest one
// (which is the same partition under additive loads — we keep the paper's
// two-step formulation since partition loads here are additive).
std::vector<int> MergeNodesIntoPartitions(const std::vector<Node>& leaves,
                                          int m) {
  std::vector<size_t> order(leaves.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (leaves[a].load != leaves[b].load) {
      return leaves[a].load > leaves[b].load;
    }
    return a < b;
  });
  std::vector<double> part_load(m, 0.0);
  std::vector<int> assignment(leaves.size(), 0);
  for (const size_t i : order) {
    const int lightest = static_cast<int>(
        std::min_element(part_load.begin(), part_load.end()) -
        part_load.begin());
    assignment[i] = lightest;
    part_load[lightest] += leaves[i].load;
  }
  return assignment;
}

double PartitionBalance(const std::vector<Node>& leaves,
                        const std::vector<int>& assignment, int m) {
  std::vector<double> loads(m, 0.0);
  for (size_t i = 0; i < leaves.size(); ++i) {
    loads[assignment[i]] += leaves[i].load;
  }
  return BalanceFactor(loads);
}

}  // namespace

PartitionPlan HybridPartitioner::Build(const WorkloadSample& sample,
                                       const Vocabulary& vocab,
                                       const PartitionConfig& cfg) const {
  info_ = BuildInfo{};
  Builder b(sample, vocab, cfg);
  const int m = cfg.num_workers;

  PartitionPlan plan;
  plan.grid = b.grid;
  plan.num_workers = m;
  plan.cells.resize(b.grid.NumCells());
  if (sample.empty() || m <= 1) {
    return plan;  // everything on worker 0
  }

  // ---- Phase 1: similarity-driven decomposition (Algorithm 1, lines 1-12).
  std::vector<Node> nu{b.MakeRoot()};
  std::vector<Node> nt, ns;
  constexpr size_t kMinSamplesToSplit = 16;
  while (!nu.empty()) {
    Node n = std::move(nu.back());
    nu.pop_back();
    const double sim = b.TextSimilarity(n);
    if (sim >= cfg.delta) {
      ns.push_back(std::move(n));
      continue;
    }
    if (!n.block.CanSplit() ||
        n.objs.size() + n.ins.size() < kMinSamplesToSplit ||
        nt.size() + ns.size() + nu.size() + 2 > cfg.theta) {
      n.text_only = true;
      nt.push_back(std::move(n));
      continue;
    }
    // Split in the direction minimizing alpha = min(sim(n1), sim(n2)).
    Node best_a, best_b;
    double alpha = 2.0;
    for (int axis = 0; axis < 2; ++axis) {
      Node a, c;
      if (!b.SpaceSplit2(n, axis, &a, &c)) continue;
      const double cand =
          std::min(b.TextSimilarity(a), b.TextSimilarity(c));
      if (cand < alpha) {
        alpha = cand;
        best_a = std::move(a);
        best_b = std::move(c);
      }
    }
    if (alpha > 1.0) {  // no split possible on either axis
      n.text_only = true;
      nt.push_back(std::move(n));
      continue;
    }
    if (std::abs(alpha - sim) <= cfg.epsilon) {
      // Splitting does not change the similarity: the node's text profile
      // is spatially consistent -> text-partition it as a whole.
      n.text_only = true;
      nt.push_back(std::move(n));
    } else {
      nu.push_back(std::move(best_a));
      nu.push_back(std::move(best_b));
    }
  }
  info_.phase1_nt_nodes = nt.size();
  info_.phase1_ns_nodes = ns.size();

  // ---- Phase 2 (lines 13-16): grow the node count up to m with the DP.
  std::vector<Node> nodes;
  nodes.reserve(nt.size() + ns.size());
  for (auto& n : nt) nodes.push_back(std::move(n));
  for (auto& n : ns) nodes.push_back(std::move(n));

  if (static_cast<int>(nodes.size()) < m && !cfg.use_number_partitions_dp) {
    // Ablation path: equal split instead of the DP — node i gets
    // ceil/floor(m / n) parts.
    const int n_nodes = static_cast<int>(nodes.size());
    std::vector<Node> expanded;
    for (int i = 0; i < n_nodes; ++i) {
      const int k = m / n_nodes + (i < m % n_nodes ? 1 : 0);
      for (auto& child : b.PartitionNode(nodes[i], std::max(1, k))) {
        expanded.push_back(std::move(child));
      }
    }
    nodes = std::move(expanded);
  } else if (static_cast<int>(nodes.size()) < m) {
    // ComputeNumberPartitions: L[i][j] = min total load partitioning the
    // first i nodes into j parts; C[i][k] = total load of splitting node i
    // into k parts (children cached for reuse).
    const int n_nodes = static_cast<int>(nodes.size());
    const int max_k = m - n_nodes + 1;
    std::vector<std::vector<std::vector<Node>>> children(
        n_nodes);  // children[i][k-1]
    std::vector<std::vector<double>> c(n_nodes,
                                       std::vector<double>(max_k + 1, 0.0));
    for (int i = 0; i < n_nodes; ++i) {
      children[i].resize(max_k);
      for (int k = 1; k <= max_k; ++k) {
        children[i][k - 1] = b.PartitionNode(nodes[i], k);
        c[i][k] = b.TotalLoadOf(children[i][k - 1]);
      }
    }
    constexpr double kInf = 1e300;
    std::vector<std::vector<double>> dp(
        n_nodes + 1, std::vector<double>(m + 1, kInf));
    std::vector<std::vector<int>> choice(n_nodes + 1,
                                         std::vector<int>(m + 1, 0));
    dp[0][0] = 0.0;
    for (int i = 1; i <= n_nodes; ++i) {
      for (int j = i; j <= m; ++j) {
        for (int k = 1; k <= std::min(max_k, j - i + 1); ++k) {
          if (dp[i - 1][j - k] >= kInf) continue;
          const double cand = dp[i - 1][j - k] + c[i - 1][k];
          if (cand < dp[i][j]) {
            dp[i][j] = cand;
            choice[i][j] = k;
          }
        }
      }
    }
    // Backtrack the per-node partition counts; fall back to 1 when the DP
    // had no feasible path (cannot happen with max_k >= 1, kept defensive).
    std::vector<int> parts(n_nodes, 1);
    int j = m;
    for (int i = n_nodes; i >= 1; --i) {
      const int k = choice[i][j] > 0 ? choice[i][j] : 1;
      parts[i - 1] = k;
      j -= k;
    }
    std::vector<Node> expanded;
    for (int i = 0; i < n_nodes; ++i) {
      auto& ch = children[i][parts[i] - 1];
      for (auto& node : ch) expanded.push_back(std::move(node));
    }
    nodes = std::move(expanded);
  }

  // ---- Balance loop (lines 17-27).
  std::vector<int> assignment;
  while (true) {
    assignment = MergeNodesIntoPartitions(nodes, m);
    const double balance = PartitionBalance(nodes, assignment, m);
    if (balance <= cfg.sigma) break;
    if (nodes.size() >= cfg.theta) break;
    // Split the node with the largest load into 2.
    size_t heaviest = 0;
    for (size_t i = 1; i < nodes.size(); ++i) {
      if (nodes[i].load > nodes[heaviest].load) heaviest = i;
    }
    std::vector<Node> split = b.PartitionNode(nodes[heaviest], 2);
    if (split.size() < 2) break;  // cannot split further; accept imbalance
    nodes[heaviest] = std::move(split[0]);
    for (size_t i = 1; i < split.size(); ++i) {
      nodes.push_back(std::move(split[i]));
    }
  }
  info_.final_leaves = nodes.size();

  // ---- Compile the kdt-tree leaves into the per-cell plan.
  // Group text leaves by their block; each block gets one shared router.
  struct BlockKey {
    uint32_t cx0, cy0, cx1, cy1;
    bool operator<(const BlockKey& o) const {
      return std::tie(cx0, cy0, cx1, cy1) <
             std::tie(o.cx0, o.cy0, o.cx1, o.cy1);
    }
  };
  std::map<BlockKey, std::vector<size_t>> text_blocks;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.text_restricted) {
      text_blocks[BlockKey{n.block.cx0, n.block.cy0, n.block.cx1,
                           n.block.cy1}]
          .push_back(i);
      ++info_.text_leaves;
    } else {
      for (const CellId c : n.block.Cells(b.grid)) {
        plan.cells[c].worker = assignment[i];
      }
    }
  }
  for (const auto& [key, leaf_ids] : text_blocks) {
    std::unordered_map<TermId, WorkerId> term_map;
    std::vector<WorkerId> workers;
    for (const size_t i : leaf_ids) {
      const WorkerId w = assignment[i];
      workers.push_back(w);
      for (const TermId t : nodes[i].terms) term_map[t] = w;
    }
    std::sort(workers.begin(), workers.end());
    workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
    auto router = std::make_shared<const TermRouter>(std::move(term_map),
                                                     std::move(workers));
    const CellBlock block{key.cx0, key.cy0, key.cx1, key.cy1};
    for (const CellId c : block.Cells(b.grid)) {
      plan.cells[c].worker = 0;
      plan.cells[c].text = router;
    }
  }

  const PlanLoadReport report =
      EstimatePlanLoad(plan, sample, vocab, cfg.cost);
  info_.estimated_total_load = report.total_load;
  info_.estimated_balance = report.balance;
  return plan;
}

}  // namespace ps2
