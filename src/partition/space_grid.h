#ifndef PS2_PARTITION_SPACE_GRID_H_
#define PS2_PARTITION_SPACE_GRID_H_

#include "partition/plan.h"

namespace ps2 {

// Grid space partitioning (baseline after SpatialHadoop [18]): the routing
// grid's cells are weighed by their Definition-1 load and distributed over
// workers with the LPT greedy. Cells are independent (no contiguity
// requirement), which balances load well but duplicates wide queries across
// many workers.
class GridSpacePartitioner : public Partitioner {
 public:
  std::string Name() const override { return "grid"; }
  PartitionPlan Build(const WorkloadSample& sample, const Vocabulary& vocab,
                      const PartitionConfig& config) const override;
};

}  // namespace ps2

#endif  // PS2_PARTITION_SPACE_GRID_H_
