#ifndef PS2_PARTITION_TEXT_HYPERGRAPH_H_
#define PS2_PARTITION_TEXT_HYPERGRAPH_H_

#include "partition/plan.h"

namespace ps2 {

// Hypergraph-based text partitioning (baseline (2), after Cambazoglu et
// al. [27]): terms are hypergraph vertices, each object's term set a
// hyperedge. Cutting a hyperedge = duplicating that object across workers,
// so the partitioner greedily co-locates frequently co-occurring terms.
//
// We implement a single-pass greedy refinement of the hypergraph objective
// (connectivity-1 metric) rather than shipping a full multi-level
// partitioner: terms are placed in descending weight order on the worker
// with the highest co-occurrence affinity that still satisfies a load cap.
// This preserves the baseline's character — strong cohesion, weaker balance
// than the metric method — which is what Figure 6 contrasts.
class HypergraphTextPartitioner : public Partitioner {
 public:
  // `max_terms_per_edge` caps the pairs materialized per object to bound
  // the co-occurrence table; `cap_slack` is the load-cap multiplier.
  explicit HypergraphTextPartitioner(size_t max_terms_per_edge = 12,
                                     double cap_slack = 1.25)
      : max_terms_per_edge_(max_terms_per_edge), cap_slack_(cap_slack) {}

  std::string Name() const override { return "hypergraph"; }
  PartitionPlan Build(const WorkloadSample& sample, const Vocabulary& vocab,
                      const PartitionConfig& config) const override;

 private:
  size_t max_terms_per_edge_;
  double cap_slack_;
};

}  // namespace ps2

#endif  // PS2_PARTITION_TEXT_HYPERGRAPH_H_
