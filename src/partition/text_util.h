#ifndef PS2_PARTITION_TEXT_UTIL_H_
#define PS2_PARTITION_TEXT_UTIL_H_

#include <memory>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "partition/plan.h"

namespace ps2 {

// Builds the PartitionPlan of a pure text partitioner: the whole space is a
// single region whose terms are split across all m workers; every grid cell
// shares one TermRouter (Si = S for all i, {Ti} a partition of T).
inline PartitionPlan MakeWholeSpaceTextPlan(
    const GridSpec& grid, int num_workers,
    std::unordered_map<TermId, WorkerId> term_map) {
  std::vector<WorkerId> workers(num_workers);
  std::iota(workers.begin(), workers.end(), 0);
  auto router = std::make_shared<const TermRouter>(std::move(term_map),
                                                   std::move(workers));
  PartitionPlan plan;
  plan.grid = grid;
  plan.num_workers = num_workers;
  plan.cells.assign(grid.NumCells(), CellRoute{0, router});
  return plan;
}

}  // namespace ps2

#endif  // PS2_PARTITION_TEXT_UTIL_H_
