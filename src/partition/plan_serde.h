#ifndef PS2_PARTITION_PLAN_SERDE_H_
#define PS2_PARTITION_PLAN_SERDE_H_

#include <vector>

#include "common/bytes.h"
#include "partition/plan.h"

namespace ps2 {

// Binary serialization of a PartitionPlan (the durable half of the gridt
// routing state — H1). Term ids are written as-is; they reference whatever
// vocabulary the plan was built against, so a surrounding format (the
// checkpoint) must serialize that vocabulary first and hand ReadPlan the
// file-id -> target-id remap table produced by re-interning it.
//
// TermRouters are shared across the cells of one kdt-tree leaf; the encoding
// preserves that sharing (distinct routers are written once, cells reference
// them by index), so a round trip neither balloons memory nor severs the
// structural identity the adjusters rely on.
//
// Layout (little-endian, via ByteWriter):
//   bounds f64 x4, k i32, num_workers i32
//   u32 #routers, per router: u32 #workers, i32 workers[],
//                             u32 #terms, (u32 term, i32 worker)[]
//   u32 #cells, per cell: i32 worker, u32 router_index (kNoRouter = space)
void WritePlan(ByteWriter& w, const PartitionPlan& plan);

// Decodes into `out`, mapping every term id through `remap` (file id ->
// target vocabulary id); ids beyond the table pass through verbatim (terms
// the writing vocabulary never interned — raw-id embeddings). Returns false
// on malformed input (reader poisoned, out-of-range router indexes).
bool ReadPlan(ByteReader& r, const std::vector<TermId>& remap,
              PartitionPlan* out);

}  // namespace ps2

#endif  // PS2_PARTITION_PLAN_SERDE_H_
