#ifndef PS2_PARTITION_LOAD_ESTIMATOR_H_
#define PS2_PARTITION_LOAD_ESTIMATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/cost_model.h"
#include "core/workload_stats.h"
#include "spatial/grid.h"
#include "text/vocabulary.h"

namespace ps2 {

// Per-grid-cell workload statistics computed once from a sample and shared
// by all space-aware partitioners: how many sampled objects fall in each
// cell and how many insert/delete requests overlap it.
struct CellLoadProfile {
  GridSpec grid;
  std::vector<uint32_t> objects;   // objects located in the cell
  std::vector<uint32_t> inserts;   // insert requests overlapping the cell
  std::vector<uint32_t> deletes;   // delete requests overlapping the cell

  static CellLoadProfile Compute(const GridSpec& grid,
                                 const WorkloadSample& sample);

  // Definition-1 load of the cell treated as its own worker.
  double CellLoad(const CostModel& cm, CellId cell) const;

  // Weight function view for kd decompositions.
  double WeightAt(const CostModel& cm, uint32_t cx, uint32_t cy) const {
    return CellLoad(cm, grid.ToId(cx, cy));
  }
};

// Per-term workload statistics shared by the text partitioners: for every
// term, how many objects contain it and how many insert/delete requests
// route by it (cheapest-clause routing).
struct TermLoadProfile {
  std::unordered_map<TermId, uint32_t> object_freq;
  std::unordered_map<TermId, uint32_t> insert_freq;
  std::unordered_map<TermId, uint32_t> delete_freq;
  std::vector<TermId> terms;  // all terms present in any map

  static TermLoadProfile Compute(const WorkloadSample& sample,
                                 const Vocabulary& vocab);

  uint32_t Of(TermId t) const;  // object frequency
  uint32_t Qi(TermId t) const;  // insert routing frequency
  uint32_t Qd(TermId t) const;  // delete routing frequency

  // Definition-1-shaped weight of assigning term t to some worker:
  //   c1 * Of * Qi + c2 * Of + c3 * Qi + c4 * Qd.
  double TermWeight(const CostModel& cm, TermId t) const;
};

// Longest-processing-time greedy: assigns each weighted item to the
// currently least-loaded of `m` bins after sorting by descending weight.
// Returns per-item bin ids. The classic 4/3-approximation for makespan,
// used wherever a partitioner needs balanced groups.
std::vector<int> GreedyLpt(const std::vector<double>& weights, int m);

// Sums weights per bin for a GreedyLpt-style assignment.
std::vector<double> BinLoads(const std::vector<double>& weights,
                             const std::vector<int>& assignment, int m);

}  // namespace ps2

#endif  // PS2_PARTITION_LOAD_ESTIMATOR_H_
