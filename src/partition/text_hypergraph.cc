#include "partition/text_hypergraph.h"

#include <algorithm>
#include <numeric>

#include "partition/load_estimator.h"
#include "partition/text_util.h"

namespace ps2 {

PartitionPlan HypergraphTextPartitioner::Build(
    const WorkloadSample& sample, const Vocabulary& vocab,
    const PartitionConfig& config) const {
  const GridSpec grid(sample.Bounds(), config.grid_k);
  const TermLoadProfile profile = TermLoadProfile::Compute(sample, vocab);
  const int m = config.num_workers;

  // Co-occurrence adjacency from object hyperedges.
  std::unordered_map<TermId, std::unordered_map<TermId, uint32_t>> cooc;
  for (const auto& o : sample.objects) {
    const size_t n = std::min(o.terms.size(), max_terms_per_edge_);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        cooc[o.terms[i]][o.terms[j]]++;
        cooc[o.terms[j]][o.terms[i]]++;
      }
    }
  }

  std::vector<double> weights;
  weights.reserve(profile.terms.size());
  for (const TermId t : profile.terms) {
    weights.push_back(profile.TermWeight(config.cost, t));
  }
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  const double cap = total / m * cap_slack_;

  // Process in descending weight: heavy terms anchor clusters, light terms
  // attach to whichever worker already owns their neighbourhood.
  std::vector<size_t> order(profile.terms.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return profile.terms[a] < profile.terms[b];
  });

  std::unordered_map<TermId, WorkerId> assignment;
  std::vector<double> load(m, 0.0);
  for (const size_t i : order) {
    const TermId t = profile.terms[i];
    // Affinity of t to each worker = co-occurrence mass already placed
    // there (the connectivity gain of not cutting those hyperedges).
    std::vector<double> affinity(m, 0.0);
    auto adj = cooc.find(t);
    if (adj != cooc.end()) {
      for (const auto& [other, count] : adj->second) {
        auto placed = assignment.find(other);
        if (placed != assignment.end()) {
          affinity[placed->second] += count;
        }
      }
    }
    int best = -1;
    for (int w = 0; w < m; ++w) {
      if (load[w] + weights[i] > cap) continue;
      if (best < 0 || affinity[w] > affinity[best] ||
          (affinity[w] == affinity[best] && load[w] < load[best])) {
        best = w;
      }
    }
    if (best < 0) {
      // Every worker over cap: fall back to least loaded.
      best = static_cast<int>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    assignment[t] = best;
    load[best] += weights[i];
  }
  return MakeWholeSpaceTextPlan(grid, m, std::move(assignment));
}

}  // namespace ps2
