#include "partition/text_frequency.h"

#include "partition/load_estimator.h"
#include "partition/text_util.h"

namespace ps2 {

PartitionPlan FrequencyTextPartitioner::Build(
    const WorkloadSample& sample, const Vocabulary& vocab,
    const PartitionConfig& config) const {
  const GridSpec grid(sample.Bounds(), config.grid_k);
  const TermLoadProfile profile = TermLoadProfile::Compute(sample, vocab);

  std::vector<double> weights;
  weights.reserve(profile.terms.size());
  for (const TermId t : profile.terms) {
    weights.push_back(profile.TermWeight(config.cost, t));
  }
  const std::vector<int> bins = GreedyLpt(weights, config.num_workers);

  std::unordered_map<TermId, WorkerId> map;
  map.reserve(profile.terms.size());
  for (size_t i = 0; i < profile.terms.size(); ++i) {
    map[profile.terms[i]] = bins[i];
  }
  return MakeWholeSpaceTextPlan(grid, config.num_workers, std::move(map));
}

}  // namespace ps2
