#ifndef PS2_PARTITION_TEXT_METRIC_H_
#define PS2_PARTITION_TEXT_METRIC_H_

#include "partition/plan.h"

namespace ps2 {

// Metric-based text partitioning (baseline (3), after S3-TM [28]): each
// term placement minimizes a metric function that *blends* the projected
// worker load with the object-duplication cost of separating the term from
// its co-occurring neighbours. Unlike the hypergraph baseline's hard load
// cap + affinity priority, the metric trades the two continuously, which is
// why it is the strongest text baseline in the paper's Figure 6.
//
// Metric for placing term t on worker w:
//   M(t, w) = alpha * (load_w + weight_t) / cap
//           + (1 - alpha) * (1 - affinity(t, w) / max_affinity(t))
class MetricTextPartitioner : public Partitioner {
 public:
  explicit MetricTextPartitioner(double alpha = 0.7,
                                 size_t max_terms_per_edge = 12)
      : alpha_(alpha), max_terms_per_edge_(max_terms_per_edge) {}

  std::string Name() const override { return "metric"; }
  PartitionPlan Build(const WorkloadSample& sample, const Vocabulary& vocab,
                      const PartitionConfig& config) const override;

 private:
  double alpha_;
  size_t max_terms_per_edge_;
};

}  // namespace ps2

#endif  // PS2_PARTITION_TEXT_METRIC_H_
