#include "partition/space_grid.h"

#include "partition/load_estimator.h"

namespace ps2 {

PartitionPlan GridSpacePartitioner::Build(const WorkloadSample& sample,
                                          const Vocabulary& /*vocab*/,
                                          const PartitionConfig& config) const {
  const GridSpec grid(sample.Bounds(), config.grid_k);
  const CellLoadProfile profile = CellLoadProfile::Compute(grid, sample);

  std::vector<double> weights(grid.NumCells());
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    weights[c] = profile.CellLoad(config.cost, c);
  }
  const std::vector<int> bins = GreedyLpt(weights, config.num_workers);

  PartitionPlan plan;
  plan.grid = grid;
  plan.num_workers = config.num_workers;
  plan.cells.resize(grid.NumCells());
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    plan.cells[c].worker = bins[c];
  }
  return plan;
}

}  // namespace ps2
