#include "partition/space_kdtree.h"

#include "partition/load_estimator.h"
#include "spatial/kdtree.h"

namespace ps2 {

PartitionPlan KdTreeSpacePartitioner::Build(const WorkloadSample& sample,
                                            const Vocabulary& /*vocab*/,
                                            const PartitionConfig& config) const {
  const GridSpec grid(sample.Bounds(), config.grid_k);
  const CellLoadProfile profile = CellLoadProfile::Compute(grid, sample);

  const auto weight = [&](uint32_t cx, uint32_t cy) {
    return profile.WeightAt(config.cost, cx, cy);
  };
  const std::vector<CellBlock> blocks =
      KdDecompose(grid, static_cast<size_t>(config.num_workers), weight);

  // One block per worker; if the grid could not be split far enough (tiny
  // grids), remaining workers receive no cells.
  PartitionPlan plan;
  plan.grid = grid;
  plan.num_workers = config.num_workers;
  plan.cells.resize(grid.NumCells());
  for (size_t b = 0; b < blocks.size(); ++b) {
    const WorkerId w = static_cast<WorkerId>(b % config.num_workers);
    for (const CellId c : blocks[b].Cells(grid)) {
      plan.cells[c].worker = w;
    }
  }
  return plan;
}

}  // namespace ps2
