#ifndef PS2_PARTITION_SPACE_RTREE_H_
#define PS2_PARTITION_SPACE_RTREE_H_

#include "partition/plan.h"

namespace ps2 {

// R-tree space partitioning (baseline after SpatialHadoop [18]): an STR
// R-tree is bulk-loaded over the sampled query rectangles; its leaf nodes
// (clusters of spatially close queries) are distributed over workers by LPT
// on leaf weight; finally the leaf->worker assignment is rasterized onto
// the routing grid (each cell goes to the worker whose leaves overlap it
// the most). Rasterization is required because R-tree leaves overlap and do
// not tile the space, while dispatch routing needs a total per-cell rule.
class RTreeSpacePartitioner : public Partitioner {
 public:
  explicit RTreeSpacePartitioner(size_t leaf_capacity = 64)
      : leaf_capacity_(leaf_capacity) {}

  std::string Name() const override { return "rtree"; }
  PartitionPlan Build(const WorkloadSample& sample, const Vocabulary& vocab,
                      const PartitionConfig& config) const override;

 private:
  size_t leaf_capacity_;
};

}  // namespace ps2

#endif  // PS2_PARTITION_SPACE_RTREE_H_
