#ifndef PS2_PARTITION_TEXT_FREQUENCY_H_
#define PS2_PARTITION_TEXT_FREQUENCY_H_

#include "partition/plan.h"

namespace ps2 {

// Frequency-based text partitioning (baseline (1) of Section VI-B): terms
// are weighed by their Definition-1 load contribution and distributed over
// workers with the LPT greedy. Balances load well but ignores term
// co-occurrence entirely, so objects containing popular term combinations
// are duplicated to many workers — the paper's weakest text baseline.
class FrequencyTextPartitioner : public Partitioner {
 public:
  std::string Name() const override { return "frequency"; }
  PartitionPlan Build(const WorkloadSample& sample, const Vocabulary& vocab,
                      const PartitionConfig& config) const override;
};

}  // namespace ps2

#endif  // PS2_PARTITION_TEXT_FREQUENCY_H_
