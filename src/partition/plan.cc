#include "partition/plan.h"

#include <algorithm>

namespace ps2 {

TermRouter::TermRouter(std::unordered_map<TermId, WorkerId> map,
                       std::vector<WorkerId> workers)
    : map_(std::move(map)), workers_(std::move(workers)) {
  if (workers_.empty()) {
    // Degenerate router: collect workers from the map so Route() is total.
    for (const auto& [t, w] : map_) workers_.push_back(w);
    std::sort(workers_.begin(), workers_.end());
    workers_.erase(std::unique(workers_.begin(), workers_.end()),
                   workers_.end());
    if (workers_.empty()) workers_.push_back(0);
  }
}

WorkerId TermRouter::Route(TermId t) const {
  auto it = map_.find(t);
  if (it != map_.end()) return it->second;
  // Deterministic hash fallback keeps unseen terms routable and consistent
  // between objects and queries.
  const uint64_t h = static_cast<uint64_t>(t) * 0x9E3779B97F4A7C15ULL;
  return workers_[h % workers_.size()];
}

size_t TermRouter::MemoryBytes() const {
  return map_.size() * (sizeof(TermId) + sizeof(WorkerId) + 16) +
         workers_.capacity() * sizeof(WorkerId) + sizeof(TermRouter);
}

void PartitionPlan::RouteObject(const SpatioTextualObject& o,
                                std::vector<WorkerId>* out) const {
  out->clear();
  const CellRoute& route = cells[grid.CellOf(o.loc)];
  if (!route.IsText()) {
    out->push_back(route.worker);
    return;
  }
  for (const TermId t : o.terms) {
    out->push_back(route.text->Route(t));
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void PartitionPlan::RouteQuery(const STSQuery& q, const Vocabulary& vocab,
                               std::vector<QueryRoute>* out,
                               std::vector<CellId>* overlap_scratch) const {
  out->clear();
  std::vector<CellId> local_overlap;
  std::vector<CellId>& overlap =
      overlap_scratch != nullptr ? *overlap_scratch : local_overlap;
  grid.CellsOverlapping(q.region, &overlap);
  std::unordered_map<WorkerId, std::vector<CellId>> per_worker;
  std::vector<TermId> routing_terms;  // computed lazily, once
  bool have_terms = false;
  for (const CellId cell : overlap) {
    const CellRoute& route = cells[cell];
    if (!route.IsText()) {
      per_worker[route.worker].push_back(cell);
      continue;
    }
    if (!have_terms) {
      routing_terms = q.expr.RoutingTerms(vocab);
      have_terms = true;
    }
    for (const TermId t : routing_terms) {
      per_worker[route.text->Route(t)].push_back(cell);
    }
  }
  out->reserve(per_worker.size());
  for (auto& [worker, worker_cells] : per_worker) {
    std::sort(worker_cells.begin(), worker_cells.end());
    worker_cells.erase(std::unique(worker_cells.begin(), worker_cells.end()),
                       worker_cells.end());
    out->push_back(QueryRoute{worker, std::move(worker_cells)});
  }
  std::sort(out->begin(), out->end(),
            [](const QueryRoute& a, const QueryRoute& b) {
              return a.worker < b.worker;
            });
}

size_t PartitionPlan::MemoryBytes() const {
  size_t bytes = sizeof(PartitionPlan) + cells.capacity() * sizeof(CellRoute);
  // Routers are shared between cells; count each once.
  std::vector<const TermRouter*> seen;
  for (const auto& c : cells) {
    if (c.IsText() &&
        std::find(seen.begin(), seen.end(), c.text.get()) == seen.end()) {
      seen.push_back(c.text.get());
      bytes += c.text->MemoryBytes();
    }
  }
  return bytes;
}

size_t PartitionPlan::NumTextCells() const {
  size_t n = 0;
  for (const auto& c : cells) n += c.IsText() ? 1 : 0;
  return n;
}

PlanLoadReport EstimatePlanLoad(const PartitionPlan& plan,
                                const WorkloadSample& sample,
                                const Vocabulary& vocab, const CostModel& cm) {
  PlanLoadReport report;
  report.tallies.assign(plan.num_workers, WorkerLoadTally{});
  std::vector<WorkerId> object_workers;
  for (const auto& o : sample.objects) {
    plan.RouteObject(o, &object_workers);
    for (const WorkerId w : object_workers) report.tallies[w].objects++;
  }
  std::vector<PartitionPlan::QueryRoute> routes;
  for (const auto& q : sample.inserts) {
    plan.RouteQuery(q, vocab, &routes);
    for (const auto& r : routes) report.tallies[r.worker].inserts++;
  }
  for (const auto& q : sample.deletes) {
    plan.RouteQuery(q, vocab, &routes);
    for (const auto& r : routes) report.tallies[r.worker].deletes++;
  }
  report.loads.reserve(plan.num_workers);
  for (const auto& t : report.tallies) {
    report.loads.push_back(WorkerLoad(cm, t));
  }
  report.total_load = TotalLoad(report.loads);
  report.balance = BalanceFactor(report.loads);
  return report;
}

}  // namespace ps2
