#include "partition/load_estimator.h"

#include <algorithm>
#include <numeric>

namespace ps2 {

CellLoadProfile CellLoadProfile::Compute(const GridSpec& grid,
                                         const WorkloadSample& sample) {
  CellLoadProfile p;
  p.grid = grid;
  p.objects.assign(grid.NumCells(), 0);
  p.inserts.assign(grid.NumCells(), 0);
  p.deletes.assign(grid.NumCells(), 0);
  for (const auto& o : sample.objects) {
    p.objects[grid.CellOf(o.loc)]++;
  }
  for (const auto& q : sample.inserts) {
    for (const CellId c : grid.CellsOverlapping(q.region)) p.inserts[c]++;
  }
  for (const auto& q : sample.deletes) {
    for (const CellId c : grid.CellsOverlapping(q.region)) p.deletes[c]++;
  }
  return p;
}

double CellLoadProfile::CellLoad(const CostModel& cm, CellId cell) const {
  WorkerLoadTally t;
  t.objects = objects[cell];
  t.inserts = inserts[cell];
  t.deletes = deletes[cell];
  return WorkerLoad(cm, t);
}

TermLoadProfile TermLoadProfile::Compute(const WorkloadSample& sample,
                                         const Vocabulary& vocab) {
  TermLoadProfile p;
  for (const auto& o : sample.objects) {
    for (const TermId t : o.terms) p.object_freq[t]++;
  }
  for (const auto& q : sample.inserts) {
    for (const TermId t : q.expr.RoutingTerms(vocab)) p.insert_freq[t]++;
  }
  for (const auto& q : sample.deletes) {
    for (const TermId t : q.expr.RoutingTerms(vocab)) p.delete_freq[t]++;
  }
  for (const auto& [t, _] : p.object_freq) p.terms.push_back(t);
  for (const auto& [t, _] : p.insert_freq) {
    if (!p.object_freq.count(t)) p.terms.push_back(t);
  }
  for (const auto& [t, _] : p.delete_freq) {
    if (!p.object_freq.count(t) && !p.insert_freq.count(t)) {
      p.terms.push_back(t);
    }
  }
  std::sort(p.terms.begin(), p.terms.end());
  return p;
}

uint32_t TermLoadProfile::Of(TermId t) const {
  auto it = object_freq.find(t);
  return it == object_freq.end() ? 0 : it->second;
}
uint32_t TermLoadProfile::Qi(TermId t) const {
  auto it = insert_freq.find(t);
  return it == insert_freq.end() ? 0 : it->second;
}
uint32_t TermLoadProfile::Qd(TermId t) const {
  auto it = delete_freq.find(t);
  return it == delete_freq.end() ? 0 : it->second;
}

double TermLoadProfile::TermWeight(const CostModel& cm, TermId t) const {
  const double of = Of(t);
  const double qi = Qi(t);
  const double qd = Qd(t);
  return cm.c1 * of * qi + cm.c2 * of + cm.c3 * qi + cm.c4 * qd;
}

std::vector<int> GreedyLpt(const std::vector<double>& weights, int m) {
  std::vector<size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  std::vector<double> bin_load(m, 0.0);
  std::vector<int> assignment(weights.size(), 0);
  for (const size_t i : order) {
    const int bin = static_cast<int>(
        std::min_element(bin_load.begin(), bin_load.end()) -
        bin_load.begin());
    assignment[i] = bin;
    bin_load[bin] += weights[i];
  }
  return assignment;
}

std::vector<double> BinLoads(const std::vector<double>& weights,
                             const std::vector<int>& assignment, int m) {
  std::vector<double> loads(m, 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    loads[assignment[i]] += weights[i];
  }
  return loads;
}

}  // namespace ps2
