#ifndef PS2_SPATIAL_KDTREE_H_
#define PS2_SPATIAL_KDTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "spatial/grid.h"

namespace ps2 {

// A kd-tree over *grid cell space*: nodes are axis-aligned blocks of grid
// cells [cx0, cx1] x [cy0, cy1] (inclusive), split at cell boundaries by the
// weighted median. Operating in cell space keeps every partitioner's output
// expressible exactly as a per-cell assignment (the gridt index), which is
// how the paper accelerates dispatching ("we transform the kd-tree to a grid
// index"). Used by the kd-tree space partitioner [21][26] and as the spatial
// skeleton of the hybrid algorithm's kdt-tree.
struct CellBlock {
  uint32_t cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;  // inclusive

  uint32_t Width() const { return cx1 - cx0 + 1; }
  uint32_t Height() const { return cy1 - cy0 + 1; }
  uint64_t NumCells() const {
    return static_cast<uint64_t>(Width()) * Height();
  }
  bool CanSplit() const { return Width() > 1 || Height() > 1; }

  // Enumerates the CellIds inside the block.
  std::vector<CellId> Cells(const GridSpec& grid) const;

  // The geometric rectangle this block covers.
  Rect Bounds(const GridSpec& grid) const;

  bool ContainsCell(uint32_t cx, uint32_t cy) const {
    return cx >= cx0 && cx <= cx1 && cy >= cy0 && cy <= cy1;
  }
};

// Splits `block` into two blocks at the weighted median along its longer
// weighted axis; `cell_weight(cx, cy)` supplies per-cell weights. Chooses
// the axis whose split is most balanced; the cut point is the prefix whose
// cumulative weight is closest to half. Returns false when the block is a
// single cell (unsplittable). When every cell has zero weight, splits at the
// geometric middle.
bool SplitBlockWeighted(
    const CellBlock& block,
    const std::function<double(uint32_t, uint32_t)>& cell_weight,
    CellBlock* left, CellBlock* right);

// Splits along a *given* axis (0 = x, 1 = y) at the weighted median. Returns
// false when the block has extent 1 on that axis.
bool SplitBlockAxis(
    const CellBlock& block, int axis,
    const std::function<double(uint32_t, uint32_t)>& cell_weight,
    CellBlock* left, CellBlock* right);

// Recursively kd-splits the full grid into exactly `n` leaf blocks by always
// splitting the heaviest current leaf (weight = sum of cell weights). This
// is the classic load-aware kd partitioning of AQWA [21] / Tornado [26].
// Returns fewer than `n` blocks only when the grid has fewer cells.
std::vector<CellBlock> KdDecompose(
    const GridSpec& grid, size_t n,
    const std::function<double(uint32_t, uint32_t)>& cell_weight);

}  // namespace ps2

#endif  // PS2_SPATIAL_KDTREE_H_
