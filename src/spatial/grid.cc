#include "spatial/grid.h"

#include <algorithm>
#include <cmath>

namespace ps2 {

GridSpec::GridSpec(const Rect& bounds, int k)
    : bounds_(bounds), k_(k), side_(1u << k) {
  // Guard against degenerate (zero-extent) bounds so division is safe.
  const double w = std::max(bounds_.width(), 1e-12);
  const double h = std::max(bounds_.height(), 1e-12);
  cell_w_ = w / side_;
  cell_h_ = h / side_;
}

CellId GridSpec::CellOf(Point p) const {
  const auto clamp = [](double v, double lo, double hi) {
    return std::min(std::max(v, lo), hi);
  };
  const double fx = (p.x - bounds_.min_x) / cell_w_;
  const double fy = (p.y - bounds_.min_y) / cell_h_;
  const uint32_t cx = static_cast<uint32_t>(
      clamp(std::floor(fx), 0.0, static_cast<double>(side_ - 1)));
  const uint32_t cy = static_cast<uint32_t>(
      clamp(std::floor(fy), 0.0, static_cast<double>(side_ - 1)));
  return ToId(cx, cy);
}

Rect GridSpec::CellRect(CellId id) const {
  const uint32_t cx = CellX(id);
  const uint32_t cy = CellY(id);
  return Rect(bounds_.min_x + cx * cell_w_, bounds_.min_y + cy * cell_h_,
              bounds_.min_x + (cx + 1) * cell_w_,
              bounds_.min_y + (cy + 1) * cell_h_);
}

bool GridSpec::CellRange(const Rect& r, uint32_t* cx0, uint32_t* cy0,
                         uint32_t* cx1, uint32_t* cy1) const {
  if (r.empty()) return false;
  const Rect clipped = r.Intersection(
      Rect(bounds_.min_x, bounds_.min_y, bounds_.max_x, bounds_.max_y));
  // Rectangles entirely outside clamp to the nearest border cells so that
  // routing stays total (mirrors CellOf's clamping).
  const Rect& use = clipped.empty() ? r : clipped;
  const auto clampi = [this](double v) {
    return static_cast<uint32_t>(std::min(
        std::max(v, 0.0), static_cast<double>(side_ - 1)));
  };
  *cx0 = clampi(std::floor((use.min_x - bounds_.min_x) / cell_w_));
  *cy0 = clampi(std::floor((use.min_y - bounds_.min_y) / cell_h_));
  // Upper edge exactly on a cell boundary belongs to the lower cell, except
  // when the rectangle is degenerate there; subtracting a hair avoids an
  // extra row/column of spurious cells.
  *cx1 = clampi(std::floor((use.max_x - bounds_.min_x) / cell_w_ - 1e-12));
  *cy1 = clampi(std::floor((use.max_y - bounds_.min_y) / cell_h_ - 1e-12));
  if (*cx1 < *cx0) *cx1 = *cx0;
  if (*cy1 < *cy0) *cy1 = *cy0;
  return true;
}

std::vector<CellId> GridSpec::CellsOverlapping(const Rect& r) const {
  std::vector<CellId> out;
  CellsOverlapping(r, &out);
  return out;
}

void GridSpec::CellsOverlapping(const Rect& r,
                                std::vector<CellId>* out) const {
  out->clear();
  uint32_t cx0, cy0, cx1, cy1;
  if (!CellRange(r, &cx0, &cy0, &cx1, &cy1)) return;
  out->reserve((cx1 - cx0 + 1) * (cy1 - cy0 + 1));
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      out->push_back(ToId(cx, cy));
    }
  }
}

}  // namespace ps2
