#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>

namespace ps2 {

void RTree::Build(std::vector<Entry> entries) {
  nodes_.clear();
  entries_ = std::move(entries);
  num_entries_ = entries_.size();
  height_ = 0;
  if (entries_.empty()) return;

  // --- STR leaf packing ---------------------------------------------------
  // Sort by center x, slice into ~sqrt(n/M) vertical strips, sort each strip
  // by center y, pack runs of M entries into leaves.
  std::vector<uint32_t> order(entries_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return entries_[a].rect.Center().x < entries_[b].rect.Center().x;
  });
  const size_t n = order.size();
  const size_t num_leaves = (n + max_entries_ - 1) / max_entries_;
  const size_t num_strips =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t strip_size =
      (n + num_strips - 1) / num_strips;  // entries per strip

  std::vector<uint32_t> level;  // node ids of the current level
  for (size_t s = 0; s < num_strips; ++s) {
    const size_t lo = s * strip_size;
    if (lo >= n) break;
    const size_t hi = std::min(lo + strip_size, n);
    std::sort(order.begin() + lo, order.begin() + hi,
              [this](uint32_t a, uint32_t b) {
                return entries_[a].rect.Center().y <
                       entries_[b].rect.Center().y;
              });
    for (size_t i = lo; i < hi; i += max_entries_) {
      Node leaf;
      leaf.leaf = true;
      for (size_t j = i; j < std::min(i + max_entries_, hi); ++j) {
        leaf.children.push_back(order[j]);
        leaf.mbr.Expand(entries_[order[j]].rect);
      }
      nodes_.push_back(std::move(leaf));
      level.push_back(static_cast<uint32_t>(nodes_.size() - 1));
    }
  }
  height_ = 1;

  // --- Pack upper levels (same STR pass over node MBR centers) -----------
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(), [this](uint32_t a, uint32_t b) {
      return nodes_[a].mbr.Center().x < nodes_[b].mbr.Center().x;
    });
    const size_t ln = level.size();
    const size_t parents = (ln + max_entries_ - 1) / max_entries_;
    const size_t strips =
        static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(parents))));
    const size_t per_strip = (ln + strips - 1) / strips;
    std::vector<uint32_t> next;
    for (size_t s = 0; s < strips; ++s) {
      const size_t lo = s * per_strip;
      if (lo >= ln) break;
      const size_t hi = std::min(lo + per_strip, ln);
      std::sort(level.begin() + lo, level.begin() + hi,
                [this](uint32_t a, uint32_t b) {
                  return nodes_[a].mbr.Center().y < nodes_[b].mbr.Center().y;
                });
      for (size_t i = lo; i < hi; i += max_entries_) {
        Node parent;
        parent.leaf = false;
        for (size_t j = i; j < std::min(i + max_entries_, hi); ++j) {
          parent.children.push_back(level[j]);
          parent.mbr.Expand(nodes_[level[j]].mbr);
        }
        nodes_.push_back(std::move(parent));
        next.push_back(static_cast<uint32_t>(nodes_.size() - 1));
      }
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front();
}

void RTree::QueryNode(uint32_t node_id, const Rect& r,
                      std::vector<uint64_t>* out) const {
  const Node& node = nodes_[node_id];
  if (!node.mbr.Intersects(r)) return;
  if (node.leaf) {
    for (const uint32_t e : node.children) {
      if (entries_[e].rect.Intersects(r)) out->push_back(entries_[e].id);
    }
    return;
  }
  for (const uint32_t c : node.children) QueryNode(c, r, out);
}

std::vector<uint64_t> RTree::Query(const Rect& r) const {
  std::vector<uint64_t> out;
  if (!nodes_.empty()) QueryNode(root_, r, &out);
  return out;
}

std::vector<uint64_t> RTree::QueryPoint(Point p) const {
  return Query(Rect(p.x, p.y, p.x, p.y));
}

std::vector<RTree::LeafGroup> RTree::Leaves() const {
  std::vector<LeafGroup> out;
  for (const Node& node : nodes_) {
    if (!node.leaf) continue;
    LeafGroup g;
    g.mbr = node.mbr;
    for (const uint32_t e : node.children) {
      g.entry_ids.push_back(entries_[e].id);
      g.weight += entries_[e].weight;
    }
    out.push_back(std::move(g));
  }
  return out;
}

Rect RTree::Bounds() const {
  return nodes_.empty() ? Rect() : nodes_[root_].mbr;
}

}  // namespace ps2
