#ifndef PS2_SPATIAL_GRID_H_
#define PS2_SPATIAL_GRID_H_

#include <cstdint>
#include <vector>

#include "common/geo.h"

namespace ps2 {

using CellId = uint32_t;

// A uniform 2^k x 2^k grid over a bounding rectangle. This is the common
// spatial discretization of the whole system: the dispatcher's gridt index,
// the workers' GI2 index, the grid/kd-tree/R-tree space partitioners and the
// hybrid partitioner all operate on grid cells. The paper uses 2^6 x 2^6
// ("we set its granularity as 2^6 x 2^6, as it performs best").
class GridSpec {
 public:
  GridSpec() = default;

  // `k` gives a 2^k x 2^k grid over `bounds`. `bounds` must be non-empty.
  GridSpec(const Rect& bounds, int k);

  int k() const { return k_; }
  uint32_t side() const { return side_; }
  uint32_t NumCells() const { return side_ * side_; }
  const Rect& bounds() const { return bounds_; }

  // Cell coordinates of the cell containing `p`. Points outside the bounds
  // are clamped to the border cells (streams drift outside the sampled
  // extent; clamping keeps routing total).
  CellId CellOf(Point p) const;

  // (cx, cy) <-> CellId. cy-major: id = cy * side + cx.
  CellId ToId(uint32_t cx, uint32_t cy) const { return cy * side_ + cx; }
  uint32_t CellX(CellId id) const { return id % side_; }
  uint32_t CellY(CellId id) const { return id / side_; }

  // Geometry of one cell.
  Rect CellRect(CellId id) const;

  // Ids of all cells intersecting `r` (clamped to the grid). Empty input
  // rectangle yields no cells.
  std::vector<CellId> CellsOverlapping(const Rect& r) const;

  // Allocation-reusing variant: clears `out` and fills it with the same
  // ids. Routing and index paths that run per query pass a scratch vector
  // so steady-state inserts stop reallocating the overlap list.
  void CellsOverlapping(const Rect& r, std::vector<CellId>* out) const;

  // Inclusive cell-coordinate ranges covered by `r` (clamped). Returns false
  // for an empty rectangle or one entirely outside the bounds... boundary
  // rectangles clamp inward, so callers always get at least one cell for a
  // non-empty rect.
  bool CellRange(const Rect& r, uint32_t* cx0, uint32_t* cy0, uint32_t* cx1,
                 uint32_t* cy1) const;

 private:
  Rect bounds_;
  int k_ = 0;
  uint32_t side_ = 1;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
};

}  // namespace ps2

#endif  // PS2_SPATIAL_GRID_H_
