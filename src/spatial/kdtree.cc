#include "spatial/kdtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace ps2 {

std::vector<CellId> CellBlock::Cells(const GridSpec& grid) const {
  std::vector<CellId> out;
  out.reserve(NumCells());
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      out.push_back(grid.ToId(cx, cy));
    }
  }
  return out;
}

Rect CellBlock::Bounds(const GridSpec& grid) const {
  Rect r = grid.CellRect(grid.ToId(cx0, cy0));
  r.Expand(grid.CellRect(grid.ToId(cx1, cy1)));
  return r;
}

namespace {

// Cumulative weights of rows (axis == 1) or columns (axis == 0) of `block`.
std::vector<double> AxisPrefix(
    const CellBlock& b, int axis,
    const std::function<double(uint32_t, uint32_t)>& w) {
  const uint32_t extent = axis == 0 ? b.Width() : b.Height();
  std::vector<double> prefix(extent, 0.0);
  for (uint32_t cy = b.cy0; cy <= b.cy1; ++cy) {
    for (uint32_t cx = b.cx0; cx <= b.cx1; ++cx) {
      const uint32_t i = axis == 0 ? cx - b.cx0 : cy - b.cy0;
      prefix[i] += w(cx, cy);
    }
  }
  for (uint32_t i = 1; i < extent; ++i) prefix[i] += prefix[i - 1];
  return prefix;
}

// Finds the cut index (number of leading rows/columns in the left part,
// 1..extent-1) minimizing |left_weight - total/2|; returns the cut and the
// imbalance through the out-parameter.
uint32_t BestCut(const std::vector<double>& prefix, double* imbalance) {
  const double total = prefix.back();
  uint32_t best = 1;
  double best_gap = std::abs(prefix[0] - total / 2);
  for (uint32_t cut = 2; cut < prefix.size(); ++cut) {
    const double gap = std::abs(prefix[cut - 1] - total / 2);
    if (gap < best_gap) {
      best_gap = gap;
      best = cut;
    }
  }
  if (prefix.size() == 1) best = 0;  // unsplittable on this axis
  *imbalance = total > 0 ? best_gap / total : 0.0;
  return best;
}

}  // namespace

bool SplitBlockAxis(
    const CellBlock& block, int axis,
    const std::function<double(uint32_t, uint32_t)>& cell_weight,
    CellBlock* left, CellBlock* right) {
  const uint32_t extent = axis == 0 ? block.Width() : block.Height();
  if (extent < 2) return false;
  const auto prefix = AxisPrefix(block, axis, cell_weight);
  double imbalance = 0.0;
  uint32_t cut = BestCut(prefix, &imbalance);
  if (cut == 0 || cut >= extent) cut = extent / 2;
  *left = block;
  *right = block;
  if (axis == 0) {
    left->cx1 = block.cx0 + cut - 1;
    right->cx0 = block.cx0 + cut;
  } else {
    left->cy1 = block.cy0 + cut - 1;
    right->cy0 = block.cy0 + cut;
  }
  return true;
}

bool SplitBlockWeighted(
    const CellBlock& block,
    const std::function<double(uint32_t, uint32_t)>& cell_weight,
    CellBlock* left, CellBlock* right) {
  if (!block.CanSplit()) return false;
  // Evaluate both axes; pick the one with the smaller post-split imbalance,
  // falling back to the longer axis when only one is splittable.
  double imb_x = 1e18, imb_y = 1e18;
  uint32_t cut_x = 0, cut_y = 0;
  if (block.Width() > 1) {
    const auto px = AxisPrefix(block, 0, cell_weight);
    cut_x = BestCut(px, &imb_x);
  }
  if (block.Height() > 1) {
    const auto py = AxisPrefix(block, 1, cell_weight);
    cut_y = BestCut(py, &imb_y);
  }
  int axis;
  if (cut_x == 0) {
    axis = 1;
  } else if (cut_y == 0) {
    axis = 0;
  } else if (imb_x != imb_y) {
    axis = imb_x < imb_y ? 0 : 1;
  } else {
    axis = block.Width() >= block.Height() ? 0 : 1;
  }
  return SplitBlockAxis(block, axis, cell_weight, left, right);
}

std::vector<CellBlock> KdDecompose(
    const GridSpec& grid, size_t n,
    const std::function<double(uint32_t, uint32_t)>& cell_weight) {
  CellBlock root{0, 0, grid.side() - 1, grid.side() - 1};
  // Max-heap of (weight, leaf); split the heaviest splittable leaf until we
  // have n leaves.
  const auto weight_of = [&](const CellBlock& b) {
    double w = 0.0;
    for (uint32_t cy = b.cy0; cy <= b.cy1; ++cy) {
      for (uint32_t cx = b.cx0; cx <= b.cx1; ++cx) {
        w += cell_weight(cx, cy);
      }
    }
    return w;
  };
  using Entry = std::pair<double, CellBlock>;
  const auto cmp = [](const Entry& a, const Entry& b) {
    return a.first < b.first;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  heap.push({weight_of(root), root});
  std::vector<CellBlock> done;  // unsplittable leaves
  while (heap.size() + done.size() < n && !heap.empty()) {
    const auto [w, b] = heap.top();
    heap.pop();
    CellBlock l, r;
    if (!SplitBlockWeighted(b, cell_weight, &l, &r)) {
      done.push_back(b);
      continue;
    }
    heap.push({weight_of(l), l});
    heap.push({weight_of(r), r});
  }
  while (!heap.empty()) {
    done.push_back(heap.top().second);
    heap.pop();
  }
  return done;
}

}  // namespace ps2
