#ifndef PS2_SPATIAL_RTREE_H_
#define PS2_SPATIAL_RTREE_H_

#include <cstdint>
#include <vector>

#include "common/geo.h"

namespace ps2 {

// A bulk-loaded R-tree using Sort-Tile-Recursive (STR) packing. The R-tree
// space partitioner [18] builds one over the sampled query rectangles and
// assigns its leaf nodes to workers; it is also a general-purpose rectangle
// index (used by tests as a reference spatial filter).
//
// The tree is immutable after Build(): partitioners always reconstruct from
// a fresh workload sample, so dynamic updates are unnecessary here (workers'
// dynamic index is GI2, not this R-tree).
class RTree {
 public:
  struct Entry {
    Rect rect;
    uint64_t id = 0;
    double weight = 1.0;  // load weight used by the partitioner
  };

  explicit RTree(size_t max_node_entries = 16)
      : max_entries_(max_node_entries < 2 ? 2 : max_node_entries) {}

  // Builds the tree over `entries` (replacing any previous content).
  void Build(std::vector<Entry> entries);

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return num_entries_; }
  int height() const { return height_; }

  // Ids of all entries whose rectangle intersects `r`.
  std::vector<uint64_t> Query(const Rect& r) const;

  // Ids of all entries whose rectangle contains `p`.
  std::vector<uint64_t> QueryPoint(Point p) const;

  // One group of entry indices per leaf node, in leaf order, plus the leaf
  // MBR and total weight. The space partitioner consumes these.
  struct LeafGroup {
    Rect mbr;
    double weight = 0.0;
    std::vector<uint64_t> entry_ids;
  };
  std::vector<LeafGroup> Leaves() const;

  // Bounding box of everything in the tree.
  Rect Bounds() const;

 private:
  struct Node {
    Rect mbr;
    bool leaf = false;
    // For leaves: indices into entries_. For internal nodes: child node ids.
    std::vector<uint32_t> children;
  };

  void QueryNode(uint32_t node, const Rect& r,
                 std::vector<uint64_t>* out) const;

  size_t max_entries_;
  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  int height_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace ps2

#endif  // PS2_SPATIAL_RTREE_H_
