#include "index/gi2.h"

#include <algorithm>

namespace ps2 {

Gi2Index::Gi2Index(const GridSpec& grid, const Vocabulary* vocab,
                   const Options& options)
    : grid_(grid), vocab_(vocab), options_(options) {
  cell_dir_.assign(grid_.NumCells(), kNone);
}

Gi2Index::Cell* Gi2Index::FindCell(CellId cell) {
  if (cell >= cell_dir_.size() || cell_dir_[cell] == kNone) return nullptr;
  return &cell_pool_[cell_dir_[cell]];
}

const Gi2Index::Cell* Gi2Index::FindCell(CellId cell) const {
  if (cell >= cell_dir_.size() || cell_dir_[cell] == kNone) return nullptr;
  return &cell_pool_[cell_dir_[cell]];
}

Gi2Index::Cell& Gi2Index::CellFor(CellId cell) {
  uint32_t& rec = cell_dir_[cell];
  if (rec == kNone) {
    if (!free_cell_recs_.empty()) {
      rec = free_cell_recs_.back();
      free_cell_recs_.pop_back();
    } else {
      cell_pool_.emplace_back();
      rec = static_cast<uint32_t>(cell_pool_.size() - 1);
    }
  }
  return cell_pool_[rec];
}

uint32_t Gi2Index::AllocSlot() {
  if (free_slot_head_ != kNone) {
    const uint32_t slot = free_slot_head_;
    free_slot_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNone;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Gi2Index::FreeSlot(uint32_t slot) {
  QuerySlot& qs = slots_[slot];
  qs.query = STSQuery{};
  qs.cells.clear();
  qs.postings = 0;
  qs.mark_epoch = 0;
  qs.state = SlotState::kFree;
  qs.next_free = free_slot_head_;
  free_slot_head_ = slot;
}

void Gi2Index::ReleaseTombstone(uint32_t slot) {
  --num_tombstones_;
  FreeSlot(slot);
}

void Gi2Index::IndexInCell(const STSQuery& q, uint32_t slot,
                          const std::vector<TermId>& routing_terms,
                          CellId cell_id) {
  QuerySlot& qs = slots_[slot];
  const auto it =
      std::lower_bound(qs.cells.begin(), qs.cells.end(), cell_id);
  if (it != qs.cells.end() && *it == cell_id) return;  // already indexed here
  Cell& cell = CellFor(cell_id);
  for (const TermId t : routing_terms) {
    arena_.Push(cell.postings[t], slot);
  }
  qs.postings += static_cast<uint32_t>(routing_terms.size());
  qs.cells.insert(it, cell_id);
  ++cell.num_queries;
  cell.query_bytes += q.MemoryBytes();
}

void Gi2Index::Insert(const STSQuery& q) {
  grid_.CellsOverlapping(q.region, &insert_cells_scratch_);
  InsertIntoCells(q, insert_cells_scratch_);
}

void Gi2Index::InsertIntoCells(const STSQuery& q,
                               const std::vector<CellId>& cells) {
  if (q.expr.empty()) return;  // matches nothing; never index
  // Re-inserting an id whose previous incarnation is still a draining
  // tombstone needs no scrub: stale postings reference the old *slot* (which
  // keeps purging lazily) while the fresh insert binds the id to a new one.
  uint32_t slot;
  const uint32_t* existing = id_to_slot_.Find(q.id);
  const bool fresh = existing == nullptr;
  if (fresh) {
    slot = AllocSlot();
    QuerySlot& qs = slots_[slot];
    qs.query = q;
    qs.state = SlotState::kLive;
  } else {
    slot = *existing;
  }
  const std::vector<TermId> routing_terms = q.expr.RoutingTerms(*vocab_);
  // The dispatcher is the routing authority; cells are indexed as given.
  // In particular, geometry outside the grid extent clamps to border cells
  // on both the query and the object path, so the pair still rendezvous.
  for (const CellId cell : cells) {
    if (cell >= cell_dir_.size()) continue;  // outside this index's grid
    IndexInCell(q, slot, routing_terms, cell);
  }
  if (slots_[slot].cells.empty()) {
    if (fresh) FreeSlot(slot);  // indexed nowhere
    return;
  }
  if (fresh) {
    id_to_slot_[q.id] = slot;
    ++num_live_;
  }
}

void Gi2Index::Delete(QueryId id) {
  const uint32_t* slot_ptr = id_to_slot_.Find(id);
  if (slot_ptr == nullptr) return;
  const uint32_t slot = *slot_ptr;
  QuerySlot& qs = slots_[slot];
  const size_t q_bytes = qs.query.MemoryBytes();
  for (const CellId cell_id : qs.cells) {
    Cell* cell = FindCell(cell_id);
    if (cell == nullptr) continue;
    if (cell->num_queries > 0) --cell->num_queries;
    cell->query_bytes -= std::min(cell->query_bytes, q_bytes);
  }
  id_to_slot_.Erase(id);
  --num_live_;
  if (options_.lazy_deletion) {
    if (qs.postings == 0) {
      FreeSlot(slot);
      return;
    }
    // The stored query itself is dropped now; only the posting counter
    // lingers until matching traversals purge the slot's stale postings.
    qs.query = STSQuery{};
    qs.cells.clear();
    qs.state = SlotState::kTombstone;
    ++num_tombstones_;
    return;
  }
  // Eager deletion: scrub this query's postings from its own cells. Routing
  // terms are not re-derived (vocabulary frequencies may have drifted since
  // insertion), so every list of the cell is swept for the slot.
  for (const CellId cell_id : qs.cells) {
    Cell* cell = FindCell(cell_id);
    if (cell == nullptr) continue;
    std::vector<TermId> dead_terms;
    cell->postings.ForEach([&](TermId t, PostingArena::List& list) {
      arena_.RemoveMatching(list, [slot](uint32_t s) { return s == slot; });
      if (list.head == PostingArena::kNull) dead_terms.push_back(t);
    });
    for (const TermId t : dead_terms) cell->postings.Erase(t);
  }
  FreeSlot(slot);
}

void Gi2Index::BumpEpoch() {
  if (++match_epoch_ == 0) {
    // Wraparound (once per 2^32 objects): every stamp could collide with
    // the restarted counter, so clear them all and skip epoch 0.
    for (QuerySlot& s : slots_) s.mark_epoch = 0;
    match_epoch_ = 1;
  }
}

void Gi2Index::MatchInCell(Cell& cell, const SpatioTextualObject& o,
                           std::vector<MatchResult>* out) {
  ++cell.objects_seen;
  // A query is indexed under every term of its routing clause; an object may
  // contain several of them, so dedup by stamping the slot with this
  // object's epoch.
  BumpEpoch();
  const uint32_t epoch = match_epoch_;
  // Event-time expiry stamp carried on every scored candidate (0 = never):
  // computed once per object, not per posting.
  const int64_t expire_us = o.ttl_us > 0 ? o.timestamp_us + o.ttl_us : 0;
  for (const TermId t : o.terms) {
    PostingArena::List* list = cell.postings.Find(t);
    if (list == nullptr) continue;
    uint32_t ci = list->head;
    while (ci != PostingArena::kNull) {
      // Captured up front: a purge can free the head chunk (overwriting its
      // next field with a freelist link), but never relinks any other
      // chunk, so the successor seen on entry stays correct.
      const uint32_t next = arena_.chunk(ci).next;
      uint32_t i = 0;
      while (i < arena_.chunk(ci).count) {
        const uint32_t slot = arena_.chunk(ci).slots[i];
        QuerySlot& qs = slots_[slot];
        if (qs.state == SlotState::kTombstone) {
          // Lazy purge: swap-remove the stale posting (backfilled from the
          // head chunk; the entry now at `i` is re-examined).
          arena_.SwapRemove(*list, ci, i);
          if (--qs.postings == 0) ReleaseTombstone(slot);
          continue;
        }
        if (qs.mark_epoch != epoch) {
          // Scored evaluation: boolean queries keep the strict predicate
          // (score stays 0); similarity/top-k queries emit the cosine score
          // the downstream admission/threshold already applied or will
          // apply. Still allocation-free — the score rides the existing
          // MatchResult.
          double score = 0.0;
          if (qs.query.Evaluate(o, &score)) {
            qs.mark_epoch = epoch;
            out->push_back(MatchResult{qs.query.id, o.id, score, expire_us});
          }
        }
        ++i;
      }
      ci = next;
    }
    if (list->head == PostingArena::kNull) cell.postings.Erase(t);
  }
}

void Gi2Index::Match(const SpatioTextualObject& o,
                     std::vector<MatchResult>* out) {
  Cell* cell = FindCell(grid_.CellOf(o.loc));
  if (cell == nullptr) return;
  MatchInCell(*cell, o, out);
}

void Gi2Index::MatchBatch(const SpatioTextualObject* const* objects,
                          size_t count, std::vector<MatchResult>* out) {
  if (count == 0) return;
  // Group by cell with one sort over packed (cell, position) keys: cell
  // lookups amortize across the group and a cell's postings stay hot in
  // cache, while the low half keeps stream order within each cell.
  batch_keys_.clear();
  for (size_t i = 0; i < count; ++i) {
    const CellId cell = grid_.CellOf(objects[i]->loc);
    batch_keys_.push_back((static_cast<uint64_t>(cell) << 32) | i);
  }
  std::sort(batch_keys_.begin(), batch_keys_.end());
  size_t i = 0;
  while (i < count) {
    const CellId cell_id = static_cast<CellId>(batch_keys_[i] >> 32);
    size_t j = i;
    while (j < count && static_cast<CellId>(batch_keys_[j] >> 32) == cell_id) {
      ++j;
    }
    Cell* cell = FindCell(cell_id);
    if (cell != nullptr) {
      for (size_t k = i; k < j; ++k) {
        const size_t pos = static_cast<size_t>(batch_keys_[k] & 0xffffffffu);
        MatchInCell(*cell, *objects[pos], out);
      }
    }
    i = j;
  }
}

size_t Gi2Index::MemoryBytes() const {
  size_t bytes = sizeof(Gi2Index);
  bytes += cell_dir_.capacity() * sizeof(uint32_t);
  bytes += free_cell_recs_.capacity() * sizeof(uint32_t);
  bytes += arena_.MemoryBytes();
  for (const Cell& cell : cell_pool_) {
    bytes += sizeof(Cell) + cell.postings.MemoryBytes();
  }
  bytes += slots_.capacity() * sizeof(QuerySlot);
  for (const QuerySlot& qs : slots_) {
    bytes += qs.cells.capacity() * sizeof(CellId);
    if (qs.state == SlotState::kLive) bytes += qs.query.MemoryBytes();
  }
  bytes += id_to_slot_.MemoryBytes();
  bytes += batch_keys_.capacity() * sizeof(uint64_t);
  return bytes;
}

std::vector<Gi2Index::CellStats> Gi2Index::AllCellStats() const {
  std::vector<CellStats> out;
  out.reserve(cell_pool_.size() - free_cell_recs_.size());
  for (CellId c = 0; c < cell_dir_.size(); ++c) {
    if (cell_dir_[c] == kNone) continue;
    const Cell& cell = cell_pool_[cell_dir_[c]];
    out.push_back(
        CellStats{c, cell.num_queries, cell.objects_seen, cell.query_bytes});
  }
  return out;
}

Gi2Index::CellStats Gi2Index::StatsFor(CellId cell_id) const {
  const Cell* cell = FindCell(cell_id);
  if (cell == nullptr) return CellStats{cell_id, 0, 0, 0};
  return CellStats{cell_id, cell->num_queries, cell->objects_seen,
                   cell->query_bytes};
}

void Gi2Index::ResetObjectCounters() {
  for (Cell& cell : cell_pool_) cell.objects_seen = 0;
}

std::vector<uint32_t> Gi2Index::LiveSlotsInCell(const Cell& cell) const {
  std::vector<uint32_t> slots;
  cell.postings.ForEach([&](TermId, const PostingArena::List& list) {
    arena_.ForEachEntry(list, [&](uint32_t s) {
      if (slots_[s].state == SlotState::kLive) slots.push_back(s);
    });
  });
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  return slots;
}

std::vector<STSQuery> Gi2Index::ExtractCell(CellId cell_id) {
  std::vector<STSQuery> out;
  Cell* cell = FindCell(cell_id);
  if (cell == nullptr) return out;
  // Count the postings this cell holds per slot so tombstone budgets and
  // posting totals stay consistent after removal.
  std::vector<uint32_t> posting_slots;
  cell->postings.ForEach([&](TermId, const PostingArena::List& list) {
    arena_.ForEachEntry(list,
                        [&](uint32_t s) { posting_slots.push_back(s); });
  });
  std::sort(posting_slots.begin(), posting_slots.end());
  for (size_t i = 0; i < posting_slots.size();) {
    const uint32_t slot = posting_slots[i];
    size_t j = i;
    while (j < posting_slots.size() && posting_slots[j] == slot) ++j;
    const uint32_t count = static_cast<uint32_t>(j - i);
    i = j;
    QuerySlot& qs = slots_[slot];
    qs.postings -= std::min(qs.postings, count);
    if (qs.state == SlotState::kTombstone) {
      if (qs.postings == 0) ReleaseTombstone(slot);
      continue;
    }
    out.push_back(qs.query);
    const auto it =
        std::lower_bound(qs.cells.begin(), qs.cells.end(), cell_id);
    if (it != qs.cells.end() && *it == cell_id) qs.cells.erase(it);
    if (qs.cells.empty()) {
      id_to_slot_.Erase(qs.query.id);
      --num_live_;
      FreeSlot(slot);
    }
  }
  cell->postings.ForEach(
      [&](TermId, PostingArena::List& list) { arena_.FreeList(list); });
  cell->postings.Clear();
  cell->num_queries = 0;
  cell->objects_seen = 0;
  cell->query_bytes = 0;
  free_cell_recs_.push_back(cell_dir_[cell_id]);
  cell_dir_[cell_id] = kNone;
  return out;
}

std::vector<STSQuery> Gi2Index::CellQueries(CellId cell_id) const {
  std::vector<STSQuery> out;
  const Cell* cell = FindCell(cell_id);
  if (cell == nullptr) return out;
  const std::vector<uint32_t> live = LiveSlotsInCell(*cell);
  out.reserve(live.size());
  for (const uint32_t slot : live) out.push_back(slots_[slot].query);
  return out;
}

size_t Gi2Index::CellMigrationBytes(CellId cell_id) const {
  const Cell* cell = FindCell(cell_id);
  return cell == nullptr ? 0 : cell->query_bytes;
}

}  // namespace ps2
