#include "index/gi2.h"

#include <algorithm>

namespace ps2 {

Gi2Index::Gi2Index(const GridSpec& grid, const Vocabulary* vocab,
                   const Options& options)
    : grid_(grid), vocab_(vocab), options_(options) {}

void Gi2Index::IndexInCell(const STSQuery& q, StoredQuery& stored,
                           CellId cell) {
  Cell& c = cells_[cell];
  if (!c.members.insert(q.id).second) return;  // already indexed here
  for (const TermId t : q.expr.RoutingTerms(*vocab_)) {
    c.postings[t].push_back(q.id);
    ++stored.posting_slots;
  }
  stored.cells.push_back(cell);
  c.query_bytes += q.MemoryBytes();
}

void Gi2Index::Insert(const STSQuery& q) {
  InsertIntoCells(q, grid_.CellsOverlapping(q.region));
}

void Gi2Index::InsertIntoCells(const STSQuery& q,
                               const std::vector<CellId>& cells) {
  if (q.expr.empty()) return;  // matches nothing; never index
  // Re-inserting an id that is currently tombstoned would confuse lazy
  // purging; finish the logical delete eagerly first.
  if (tombstones_.count(q.id)) {
    for (auto& [cell_id, cell] : cells_) {
      if (!cell.members.erase(q.id)) continue;
      for (auto& [term, list] : cell.postings) {
        list.erase(std::remove(list.begin(), list.end(), q.id), list.end());
      }
    }
    tombstones_.erase(q.id);
  }
  auto [it, inserted] = queries_.try_emplace(q.id);
  if (inserted) it->second.query = q;
  // The dispatcher is the routing authority; cells are indexed as given.
  // In particular, geometry outside the grid extent clamps to border cells
  // on both the query and the object path, so the pair still rendezvous.
  for (const CellId cell : cells) {
    IndexInCell(q, it->second, cell);
  }
  if (it->second.cells.empty()) queries_.erase(it);  // indexed nowhere
}

void Gi2Index::Delete(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) return;
  const size_t q_bytes = it->second.query.MemoryBytes();
  if (options_.lazy_deletion) {
    tombstones_[id] = it->second.posting_slots;
    // The stored query itself is dropped now; only posting slots linger in
    // the inverted lists until matching traversals purge them.
    for (const CellId cell_id : it->second.cells) {
      auto cit = cells_.find(cell_id);
      if (cit == cells_.end()) continue;
      if (cit->second.members.erase(id)) {
        cit->second.query_bytes -= std::min(cit->second.query_bytes, q_bytes);
      }
    }
    queries_.erase(it);
    return;
  }
  // Eager deletion: scrub postings in the query's cells immediately.
  for (const CellId cell_id : it->second.cells) {
    auto cit = cells_.find(cell_id);
    if (cit == cells_.end()) continue;
    Cell& cell = cit->second;
    if (!cell.members.erase(id)) continue;
    cell.query_bytes -= std::min(cell.query_bytes, q_bytes);
    for (auto& [term, list] : cell.postings) {
      list.erase(std::remove(list.begin(), list.end(), id), list.end());
    }
  }
  queries_.erase(it);
}

void Gi2Index::Match(const SpatioTextualObject& o,
                     std::vector<MatchResult>* out) {
  const CellId cell_id = grid_.CellOf(o.loc);
  auto cit = cells_.find(cell_id);
  if (cit == cells_.end()) return;
  Cell& cell = cit->second;
  ++cell.objects_seen;

  // A query is indexed under every term of its routing clause; an object may
  // contain several of them, so dedup within this call.
  std::unordered_set<QueryId> emitted;
  for (const TermId t : o.terms) {
    auto pit = cell.postings.find(t);
    if (pit == cell.postings.end()) continue;
    std::vector<QueryId>& list = pit->second;
    for (size_t i = 0; i < list.size();) {
      const QueryId qid = list[i];
      auto tomb = tombstones_.find(qid);
      if (tomb != tombstones_.end()) {
        // Lazy purge: swap-remove the stale posting.
        PurgePosting(list, i);
        if (--tomb->second == 0) tombstones_.erase(tomb);
        continue;
      }
      auto qit = queries_.find(qid);
      if (qit != queries_.end() && !emitted.count(qid) &&
          qit->second.query.Matches(o)) {
        emitted.insert(qid);
        out->push_back(MatchResult{qid, o.id});
      }
      ++i;
    }
    if (list.empty()) cell.postings.erase(pit);
  }
}

void Gi2Index::PurgePosting(std::vector<QueryId>& list, size_t index) {
  list[index] = list.back();
  list.pop_back();
}

size_t Gi2Index::MemoryBytes() const {
  size_t bytes = sizeof(Gi2Index);
  for (const auto& [id, cell] : cells_) {
    bytes += sizeof(Cell) + 32;
    for (const auto& [term, list] : cell.postings) {
      bytes += sizeof(TermId) + 32 + list.capacity() * sizeof(QueryId);
    }
    bytes += cell.members.size() * (sizeof(QueryId) + 16);
  }
  for (const auto& [id, stored] : queries_) {
    bytes += stored.query.MemoryBytes() + 32;
  }
  bytes += tombstones_.size() * (sizeof(QueryId) + sizeof(uint32_t) + 16);
  return bytes;
}

std::vector<Gi2Index::CellStats> Gi2Index::AllCellStats() const {
  std::vector<CellStats> out;
  out.reserve(cells_.size());
  for (const auto& [id, cell] : cells_) {
    out.push_back(CellStats{id, static_cast<uint32_t>(cell.members.size()),
                            cell.objects_seen, cell.query_bytes});
  }
  return out;
}

Gi2Index::CellStats Gi2Index::StatsFor(CellId cell) const {
  auto it = cells_.find(cell);
  if (it == cells_.end()) return CellStats{cell, 0, 0, 0};
  return CellStats{cell, static_cast<uint32_t>(it->second.members.size()),
                   it->second.objects_seen, it->second.query_bytes};
}

void Gi2Index::ResetObjectCounters() {
  for (auto& [id, cell] : cells_) cell.objects_seen = 0;
}

std::vector<STSQuery> Gi2Index::ExtractCell(CellId cell_id) {
  std::vector<STSQuery> out;
  auto cit = cells_.find(cell_id);
  if (cit == cells_.end()) return out;
  Cell& cell = cit->second;
  // Count the postings this cell holds per query so tombstone budgets and
  // posting totals stay consistent after removal.
  std::unordered_map<QueryId, uint32_t> cell_postings;
  for (const auto& [term, list] : cell.postings) {
    for (const QueryId qid : list) cell_postings[qid]++;
  }
  for (const auto& [qid, count] : cell_postings) {
    auto tomb = tombstones_.find(qid);
    if (tomb != tombstones_.end()) {
      if (tomb->second <= count) {
        tombstones_.erase(tomb);
      } else {
        tomb->second -= count;
      }
      continue;
    }
    auto qit = queries_.find(qid);
    if (qit == queries_.end()) continue;
    out.push_back(qit->second.query);
    qit->second.posting_slots -= count;
    auto& qcells = qit->second.cells;
    qcells.erase(std::remove(qcells.begin(), qcells.end(), cell_id),
                 qcells.end());
    if (qcells.empty()) queries_.erase(qit);
  }
  cells_.erase(cit);
  return out;
}

std::vector<STSQuery> Gi2Index::CellQueries(CellId cell_id) const {
  std::vector<STSQuery> out;
  auto cit = cells_.find(cell_id);
  if (cit == cells_.end()) return out;
  out.reserve(cit->second.members.size());
  for (const QueryId qid : cit->second.members) {
    auto qit = queries_.find(qid);
    if (qit != queries_.end()) out.push_back(qit->second.query);
  }
  return out;
}

size_t Gi2Index::CellMigrationBytes(CellId cell) const {
  auto it = cells_.find(cell);
  return it == cells_.end() ? 0 : it->second.query_bytes;
}

}  // namespace ps2
