#include "index/reference_matcher.h"

namespace ps2 {
// Header-only; translation unit anchors the target.
}  // namespace ps2
