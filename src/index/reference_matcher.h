#ifndef PS2_INDEX_REFERENCE_MATCHER_H_
#define PS2_INDEX_REFERENCE_MATCHER_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "subscribe/topk_state.h"

namespace ps2 {

// Brute-force single-node matcher: the ground truth every distributed
// configuration is tested against. O(#queries) per object — only suitable
// for tests and small validation runs, which is exactly its job.
//
// Subscription classes: Match() is the stateless candidate test (boolean
// predicate / similarity threshold / positive-score top-k candidate). For
// stateful top-k semantics use the Post()/AdvanceTime() pair, which mirror
// the production TopKCoordinator contract with the dumbest possible
// implementation — every candidate ever seen is kept, and the held set is
// recomputed from scratch as "the k best live candidates" on demand. The
// production side maintains the same set incrementally with a bounded heap,
// an eviction buffer and an expiry wheel; agreement between the two is what
// the equivalence suites check.
class ReferenceMatcher {
 public:
  void Insert(const STSQuery& q) { queries_[q.id] = q; }
  void Delete(QueryId id) {
    queries_.erase(id);
    topk_.erase(id);
  }
  // Moving subscriber: replace the subscription in place (same id). Held
  // top-k results are NOT re-validated against the new region — matching
  // the production rule that a region move affects future candidates only.
  void Update(const STSQuery& q) { queries_[q.id] = q; }

  std::vector<MatchResult> Match(const SpatioTextualObject& o) const {
    std::vector<MatchResult> out;
    const int64_t expire = o.ttl_us > 0 ? o.timestamp_us + o.ttl_us : 0;
    for (const auto& [id, q] : queries_) {
      double score = 0.0;
      if (q.Evaluate(o, &score)) {
        out.push_back(MatchResult{id, o.id, score, expire});
      }
    }
    return out;
  }

  // Stateful publish: boolean/similarity matches are delivered outright;
  // top-k candidates are recorded and delivered only when (first) entering
  // the query's held set. Advances event time to the object's timestamp
  // first, exactly like the facade's Post path.
  std::vector<MatchResult> Post(const SpatioTextualObject& o) {
    std::vector<MatchResult> delivered = AdvanceTime(o.timestamp_us);
    for (MatchResult& m : Match(o)) {
      auto qit = queries_.find(m.query_id);
      if (qit->second.cls != SubscriptionClass::kTopK) {
        delivered.push_back(m);
        continue;
      }
      Candidate c;
      c.object_id = m.object_id;
      c.score = m.score;
      c.expire_us = m.expire_us;
      topk_[m.query_id].push_back(c);
      for (const MatchResult& adm : Admissions(m.query_id)) {
        if (adm.object_id == m.object_id) delivered.push_back(m);
      }
    }
    return delivered;
  }

  // Advances the event-time watermark, returning promotions: candidates
  // newly entering a held set because something above them expired.
  std::vector<MatchResult> AdvanceTime(int64_t watermark_us) {
    std::vector<MatchResult> promoted;
    if (watermark_us <= watermark_us_) return promoted;
    watermark_us_ = watermark_us;
    for (auto& [id, cands] : topk_) {
      for (const MatchResult& adm : Admissions(id)) promoted.push_back(adm);
    }
    return promoted;
  }

  // The query's current held set, best-first (score desc, object id desc):
  // the k best live candidates, recomputed from everything ever seen.
  std::vector<TopKEntry> TopKSnapshot(QueryId id) const {
    std::vector<TopKEntry> out;
    const auto qit = queries_.find(id);
    const auto cit = topk_.find(id);
    if (qit == queries_.end() || cit == topk_.end()) return out;
    std::vector<Candidate> live = LiveSorted(cit->second);
    const size_t k = qit->second.k;
    if (live.size() > k) live.resize(k);
    for (const Candidate& c : live) {
      TopKEntry t;
      t.query_id = id;
      t.object_id = c.object_id;
      t.score = c.score;
      t.expire_us = c.expire_us;
      t.held = true;
      t.delivered = c.delivered;
      out.push_back(t);
    }
    return out;
  }

  int64_t watermark() const { return watermark_us_; }
  size_t size() const { return queries_.size(); }

 private:
  struct Candidate {
    ObjectId object_id = 0;
    double score = 0.0;
    int64_t expire_us = 0;
    bool delivered = false;
  };

  static bool Better(const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.object_id > b.object_id;
  }

  std::vector<Candidate> LiveSorted(const std::vector<Candidate>& all) const {
    std::vector<Candidate> live;
    for (const Candidate& c : all) {
      if (c.expire_us == 0 || c.expire_us > watermark_us_) live.push_back(c);
    }
    std::stable_sort(live.begin(), live.end(), Better);
    return live;
  }

  // Recomputes the held set and returns (marking them delivered) the
  // entries the subscriber has not been notified about yet.
  std::vector<MatchResult> Admissions(QueryId id) {
    std::vector<MatchResult> fresh;
    const auto qit = queries_.find(id);
    auto cit = topk_.find(id);
    if (qit == queries_.end() || cit == topk_.end()) return fresh;
    std::vector<Candidate> held = LiveSorted(cit->second);
    const size_t k = qit->second.k;
    if (held.size() > k) held.resize(k);
    for (const Candidate& h : held) {
      for (Candidate& c : cit->second) {
        if (c.object_id == h.object_id && !c.delivered) {
          c.delivered = true;
          fresh.push_back(MatchResult{id, c.object_id, c.score, c.expire_us});
        }
      }
    }
    return fresh;
  }

  std::unordered_map<QueryId, STSQuery> queries_;
  std::unordered_map<QueryId, std::vector<Candidate>> topk_;
  int64_t watermark_us_ = 0;
};

}  // namespace ps2

#endif  // PS2_INDEX_REFERENCE_MATCHER_H_
