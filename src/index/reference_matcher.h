#ifndef PS2_INDEX_REFERENCE_MATCHER_H_
#define PS2_INDEX_REFERENCE_MATCHER_H_

#include <unordered_map>
#include <vector>

#include "core/query.h"

namespace ps2 {

// Brute-force single-node matcher: the ground truth every distributed
// configuration is tested against. O(#queries) per object — only suitable
// for tests and small validation runs, which is exactly its job.
class ReferenceMatcher {
 public:
  void Insert(const STSQuery& q) { queries_[q.id] = q; }
  void Delete(QueryId id) { queries_.erase(id); }

  std::vector<MatchResult> Match(const SpatioTextualObject& o) const {
    std::vector<MatchResult> out;
    for (const auto& [id, q] : queries_) {
      if (q.Matches(o)) out.push_back(MatchResult{id, o.id});
    }
    return out;
  }

  size_t size() const { return queries_.size(); }

 private:
  std::unordered_map<QueryId, STSQuery> queries_;
};

}  // namespace ps2

#endif  // PS2_INDEX_REFERENCE_MATCHER_H_
