#ifndef PS2_INDEX_POSTING_ARENA_H_
#define PS2_INDEX_POSTING_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ps2 {

// Chunked posting-list storage for GI2. Every posting list in an index is a
// singly linked chain of fixed-size chunks drawn from one per-index pool, so
// appending a posting never allocates (beyond pool growth), traversal walks
// 64-byte blocks of 14 slot ids instead of per-list heap vectors, and a
// purged chunk is recycled through a freelist threaded through the `next`
// field — the arena never shrinks, it re-lends.
//
// Lists store 32-bit *query slots* (indices into Gi2Index's dense query
// vector), not 64-bit QueryIds: half the bytes per posting, and the slot is
// exactly what matching needs to reach the query and its dedup mark.
class PostingArena {
 public:
  static constexpr uint32_t kNull = UINT32_MAX;
  // 14 * 4 bytes of slots + next + count = one 64-byte cache line per chunk.
  static constexpr uint32_t kSlotsPerChunk = 14;

  struct Chunk {
    uint32_t next = kNull;   // next chunk in the list, or freelist link
    uint32_t count = 0;      // used slots in this chunk
    uint32_t slots[kSlotsPerChunk];
  };
  static_assert(sizeof(Chunk) == 64, "posting chunk must be one cache line");

  // A posting list: head chunk + total entry count. The head chunk is the
  // only partially filled one; all later chunks are full (appends go to the
  // head, removals backfill from it).
  struct List {
    uint32_t head = kNull;
    uint32_t total = 0;
  };

  Chunk& chunk(uint32_t index) { return chunks_[index]; }
  const Chunk& chunk(uint32_t index) const { return chunks_[index]; }

  // Appends `slot` to `list`, allocating a chunk from the freelist (or the
  // pool) when the head is missing or full.
  void Push(List& list, uint32_t slot) {
    if (list.head == kNull || chunks_[list.head].count == kSlotsPerChunk) {
      const uint32_t fresh = Alloc();
      chunks_[fresh].next = list.head;
      list.head = fresh;
    }
    Chunk& head = chunks_[list.head];
    head.slots[head.count++] = slot;
    ++list.total;
  }

  // Swap-removes the entry at (`chunk_index`, `at`) by backfilling with the
  // last entry of the head chunk; frees the head when it empties. The caller
  // must re-examine index `at` (a different entry now lives there) unless
  // the removed entry was itself the head's last.
  void SwapRemove(List& list, uint32_t chunk_index, uint32_t at) {
    Chunk& head = chunks_[list.head];
    const uint32_t last = --head.count;
    // When the target *is* the head's last entry the swap is a no-op.
    if (chunk_index != list.head || at != last) {
      chunks_[chunk_index].slots[at] = head.slots[last];
    }
    --list.total;
    if (head.count == 0) {
      const uint32_t freed = list.head;
      list.head = head.next;
      Free(freed);
    }
  }

  // Read-only visit of every entry of `list`: f(slot).
  template <typename F>
  void ForEachEntry(const List& list, F&& f) const {
    for (uint32_t ci = list.head; ci != kNull; ci = chunks_[ci].next) {
      const Chunk& chunk = chunks_[ci];
      for (uint32_t i = 0; i < chunk.count; ++i) f(chunk.slots[i]);
    }
  }

  // Swap-removes every entry for which pred(slot) is true. Encapsulates the
  // traversal invariants SwapRemove imposes: each chunk's successor is
  // captured before any removal (a purge can free the head, overwriting its
  // next field), and a backfilled index is re-examined. pred may see an
  // already-visited entry again when the backfill pulls from a traversed
  // chunk — it must be a pure predicate.
  template <typename P>
  void RemoveMatching(List& list, P&& pred) {
    uint32_t ci = list.head;
    while (ci != kNull) {
      const uint32_t next = chunks_[ci].next;
      uint32_t i = 0;
      while (i < chunks_[ci].count) {
        if (pred(chunks_[ci].slots[i])) {
          SwapRemove(list, ci, i);
          continue;
        }
        ++i;
      }
      ci = next;
    }
  }

  // Returns every chunk of `list` to the freelist.
  void FreeList(List& list) {
    while (list.head != kNull) {
      const uint32_t freed = list.head;
      list.head = chunks_[freed].next;
      Free(freed);
    }
    list.total = 0;
  }

  size_t NumChunks() const { return chunks_.size(); }
  size_t MemoryBytes() const { return chunks_.capacity() * sizeof(Chunk); }

 private:
  uint32_t Alloc() {
    if (free_head_ != kNull) {
      const uint32_t index = free_head_;
      free_head_ = chunks_[index].next;
      chunks_[index].next = kNull;
      chunks_[index].count = 0;
      return index;
    }
    chunks_.emplace_back();
    return static_cast<uint32_t>(chunks_.size() - 1);
  }

  void Free(uint32_t index) {
    chunks_[index].next = free_head_;
    chunks_[index].count = 0;
    free_head_ = index;
  }

  std::vector<Chunk> chunks_;
  uint32_t free_head_ = kNull;
};

}  // namespace ps2

#endif  // PS2_INDEX_POSTING_ARENA_H_
