#ifndef PS2_INDEX_GI2_H_
#define PS2_INDEX_GI2_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/query.h"
#include "spatial/grid.h"
#include "text/vocabulary.h"

namespace ps2 {

// Grid-Inverted-Index (GI2) [29], the in-memory STS-query index maintained
// by each worker (Section IV-D). Queries are divided by the grid cells their
// region overlaps; each cell keeps an inverted index from routing terms to
// query postings. For AND-only queries the routing term is the least
// frequent keyword; for CNF queries with OR clauses we index under every
// term of the cheapest clause (see BoolExpr::RoutingTerms for why this is
// the completeness-preserving reading of the paper).
//
// Deletion is lazy (Section IV-D): a deletion request tombstones the query
// id; stale postings are purged as inverted lists are traversed during
// matching. Eager deletion is available for the ablation benchmark.
//
// The grid granularity matches the dispatcher's gridt index, so dynamic load
// adjustment can migrate whole cells between workers via ExtractCell /
// InsertIntoCells without re-deriving query-to-cell mappings.
class Gi2Index {
 public:
  struct Options {
    bool lazy_deletion = true;
  };

  // `vocab` supplies term frequencies for routing-term selection and must
  // outlive the index.
  Gi2Index(const GridSpec& grid, const Vocabulary* vocab)
      : Gi2Index(grid, vocab, Options{}) {}
  Gi2Index(const GridSpec& grid, const Vocabulary* vocab,
           const Options& options);

  // Indexes `q` in every grid cell overlapping q.region.
  void Insert(const STSQuery& q);

  // Indexes `q` only in the given cells (the dispatcher restricts a query
  // to the cells this worker owns). Cells outside q.region's overlap are
  // ignored. Duplicate insertion into a cell the query already occupies is
  // a no-op.
  void InsertIntoCells(const STSQuery& q, const std::vector<CellId>& cells);

  // Removes the query everywhere (lazily by default). Unknown ids are
  // ignored (a deletion may race ahead of its insertion across workers; the
  // paper's dispatcher has the same tolerance).
  void Delete(QueryId id);

  // Matches `o` against the queries of the cell containing o.loc, appending
  // each satisfied query exactly once to `out`. Purges tombstoned postings
  // encountered along the way when lazy deletion is enabled.
  void Match(const SpatioTextualObject& o, std::vector<MatchResult>* out);

  // --- introspection -------------------------------------------------------
  size_t NumActiveQueries() const { return queries_.size(); }
  size_t NumTombstones() const { return tombstones_.size(); }
  const GridSpec& grid() const { return grid_; }

  // Approximate heap footprint: postings + stored queries + tables.
  size_t MemoryBytes() const;

  struct CellStats {
    CellId cell = 0;
    uint32_t num_queries = 0;     // live queries indexed in the cell
    uint64_t objects_seen = 0;    // objects matched in the cell this period
    size_t query_bytes = 0;       // Sg: total size of the queries in the cell
  };
  std::vector<CellStats> AllCellStats() const;
  CellStats StatsFor(CellId cell) const;

  // Resets per-period object counters (call at the start of each load
  // accounting window).
  void ResetObjectCounters();

  // --- migration -----------------------------------------------------------
  // Removes the given cell and returns the live queries that were indexed in
  // it. Queries also indexed in other cells stay live there; a returned copy
  // carries the full query so the receiving worker can index it.
  std::vector<STSQuery> ExtractCell(CellId cell);

  // Copies of the live queries indexed in `cell`, without removing anything.
  // The live-migration protocol first installs copies at the destination
  // worker, republishes routing, and only then extracts the source cell —
  // in-flight objects keep matching at the source in between.
  std::vector<STSQuery> CellQueries(CellId cell) const;

  // Serialized size in bytes of a cell's content (what a migration of this
  // cell would ship over the network).
  size_t CellMigrationBytes(CellId cell) const;

 private:
  struct StoredQuery {
    STSQuery query;
    std::vector<CellId> cells;   // cells holding postings for this query
    uint32_t posting_slots = 0;  // total postings across cells (for purge)
  };
  struct Cell {
    // term -> posting list of query ids.
    std::unordered_map<TermId, std::vector<QueryId>> postings;
    std::unordered_set<QueryId> members;  // live queries in this cell
    uint64_t objects_seen = 0;
    size_t query_bytes = 0;
  };

  void IndexInCell(const STSQuery& q, StoredQuery& stored, CellId cell);
  void PurgePosting(std::vector<QueryId>& list, size_t index);

  GridSpec grid_;
  const Vocabulary* vocab_;
  Options options_;
  std::unordered_map<CellId, Cell> cells_;
  std::unordered_map<QueryId, StoredQuery> queries_;
  // Tombstoned query id -> remaining posting slots to purge.
  std::unordered_map<QueryId, uint32_t> tombstones_;
};

}  // namespace ps2

#endif  // PS2_INDEX_GI2_H_
