#ifndef PS2_INDEX_GI2_H_
#define PS2_INDEX_GI2_H_

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "core/query.h"
#include "index/posting_arena.h"
#include "spatial/grid.h"
#include "text/vocabulary.h"

namespace ps2 {

// Grid-Inverted-Index (GI2) [29], the in-memory STS-query index maintained
// by each worker (Section IV-D). Queries are divided by the grid cells their
// region overlaps; each cell keeps an inverted index from routing terms to
// query postings. For AND-only queries the routing term is the least
// frequent keyword; for CNF queries with OR clauses we index under every
// term of the cheapest clause (see BoolExpr::RoutingTerms for why this is
// the completeness-preserving reading of the paper).
//
// Layout (the worker hot path is allocation-free in steady state):
//   * Queries live in a slot-indexed dense vector; a flat QueryId -> slot
//     map resolves ids. Posting lists store 32-bit slots, not ids.
//   * Per cell, a flat open-addressing table maps TermId -> posting list;
//     lists are chains of 64-byte chunks from a per-index PostingArena
//     (swap-remove purge, freelist recycling — see posting_arena.h).
//   * Per-object dedup ("a query indexed under several of the object's
//     terms must match once") is an epoch stamp per query slot: each object
//     bumps the index's match epoch and a slot is emitted only when its
//     stamp trails the epoch. No per-Match heap set; wraparound clears all
//     stamps once per 2^32 objects.
//
// Deletion is lazy (Section IV-D): a deletion request tombstones the query
// *slot*; stale postings are purged as inverted lists are traversed during
// matching. Because postings reference slots and a tombstoned slot is never
// reused until its last posting is purged, re-inserting a recently deleted
// QueryId simply binds the id to a fresh slot — the index-wide scrub the
// old id-keyed layout needed on re-insert is gone entirely. Eager deletion
// is available for the ablation benchmark.
//
// The grid granularity matches the dispatcher's gridt index, so dynamic load
// adjustment can migrate whole cells between workers via ExtractCell /
// InsertIntoCells without re-deriving query-to-cell mappings.
class Gi2Index {
 public:
  struct Options {
    bool lazy_deletion = true;
  };

  // `vocab` supplies term frequencies for routing-term selection and must
  // outlive the index.
  Gi2Index(const GridSpec& grid, const Vocabulary* vocab)
      : Gi2Index(grid, vocab, Options{}) {}
  Gi2Index(const GridSpec& grid, const Vocabulary* vocab,
           const Options& options);

  // Indexes `q` in every grid cell overlapping q.region.
  void Insert(const STSQuery& q);

  // Indexes `q` only in the given cells (the dispatcher restricts a query
  // to the cells this worker owns). Cells outside q.region's overlap are
  // ignored. Duplicate insertion into a cell the query already occupies is
  // a no-op.
  void InsertIntoCells(const STSQuery& q, const std::vector<CellId>& cells);

  // Removes the query everywhere (lazily by default). Unknown ids are
  // ignored (a deletion may race ahead of its insertion across workers; the
  // paper's dispatcher has the same tolerance).
  void Delete(QueryId id);

  // Matches `o` against the queries of the cell containing o.loc, appending
  // each satisfied query exactly once to `out`. Purges tombstoned postings
  // encountered along the way when lazy deletion is enabled.
  void Match(const SpatioTextualObject& o, std::vector<MatchResult>* out);

  // Batched matching: the objects are grouped by grid cell (stream order
  // preserved within a cell) so each cell's posting table is resolved once
  // and its postings stay hot across the group, then matched exactly like
  // repeated Match() calls. Results are appended to `out` grouped by
  // object; the cell grouping reorders objects, so callers needing global
  // stream order must not batch across ordering boundaries. Steady-state
  // cost is allocation-free: grouping scratch and `out` capacity are
  // reused across calls.
  void MatchBatch(const SpatioTextualObject* const* objects, size_t count,
                  std::vector<MatchResult>* out);

  // --- introspection -------------------------------------------------------
  size_t NumActiveQueries() const { return num_live_; }
  size_t NumTombstones() const { return num_tombstones_; }
  const GridSpec& grid() const { return grid_; }

  // Approximate heap footprint: arena chunks + flat tables + stored queries
  // + the cell directory (see README "Worker hot path").
  size_t MemoryBytes() const;

  struct CellStats {
    CellId cell = 0;
    uint32_t num_queries = 0;     // live queries indexed in the cell
    uint64_t objects_seen = 0;    // objects matched in the cell this period
    size_t query_bytes = 0;       // Sg: total size of the queries in the cell
  };
  std::vector<CellStats> AllCellStats() const;
  CellStats StatsFor(CellId cell) const;

  // Resets per-period object counters (call at the start of each load
  // accounting window).
  void ResetObjectCounters();

  // --- migration -----------------------------------------------------------
  // Removes the given cell and returns the live queries that were indexed in
  // it. Queries also indexed in other cells stay live there; a returned copy
  // carries the full query so the receiving worker can index it.
  std::vector<STSQuery> ExtractCell(CellId cell);

  // Copies of the live queries indexed in `cell`, without removing anything.
  // The live-migration protocol first installs copies at the destination
  // worker, republishes routing, and only then extracts the source cell —
  // in-flight objects keep matching at the source in between.
  std::vector<STSQuery> CellQueries(CellId cell) const;

  // Serialized size in bytes of a cell's content (what a migration of this
  // cell would ship over the network).
  size_t CellMigrationBytes(CellId cell) const;

  // --- test hooks ----------------------------------------------------------
  // Forces the dedup epoch counter so tests can drive it across the 2^32
  // wraparound without 4 billion matches.
  void SetMatchEpochForTest(uint32_t epoch) { match_epoch_ = epoch; }
  uint32_t MatchEpochForTest() const { return match_epoch_; }

 private:
  static constexpr uint32_t kNone = UINT32_MAX;

  enum class SlotState : uint8_t { kFree = 0, kLive = 1, kTombstone = 2 };

  struct QuerySlot {
    STSQuery query;
    std::vector<CellId> cells;  // cells holding postings, sorted ascending
    uint32_t postings = 0;      // live posting entries across cells
    uint32_t mark_epoch = 0;    // dedup stamp: emitted during this epoch
    uint32_t next_free = kNone;
    SlotState state = SlotState::kFree;
  };

  struct Cell {
    FlatMap<TermId, PostingArena::List> postings;
    uint32_t num_queries = 0;  // live queries indexed in this cell
    uint64_t objects_seen = 0;
    size_t query_bytes = 0;
  };

  Cell* FindCell(CellId cell);
  const Cell* FindCell(CellId cell) const;
  Cell& CellFor(CellId cell);
  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  // Called when the last posting of a tombstoned slot is purged.
  void ReleaseTombstone(uint32_t slot);
  void IndexInCell(const STSQuery& q, uint32_t slot,
                   const std::vector<TermId>& routing_terms, CellId cell);
  // The shared hot loop: matches one object against one cell's postings.
  void MatchInCell(Cell& cell, const SpatioTextualObject& o,
                   std::vector<MatchResult>* out);
  // Advances the dedup epoch, clearing all stamps on 2^32 wraparound.
  void BumpEpoch();
  // Distinct live slots holding postings in `cell`, sorted ascending.
  std::vector<uint32_t> LiveSlotsInCell(const Cell& cell) const;

  GridSpec grid_;
  const Vocabulary* vocab_;
  Options options_;

  PostingArena arena_;
  std::vector<Cell> cell_pool_;
  std::vector<uint32_t> free_cell_recs_;
  // CellId -> index into cell_pool_, kNone when the cell holds nothing. The
  // grid is fixed at construction, so this is a perfect (direct) cell table.
  std::vector<uint32_t> cell_dir_;

  std::vector<QuerySlot> slots_;
  uint32_t free_slot_head_ = kNone;
  FlatMap<QueryId, uint32_t> id_to_slot_;  // live queries only
  size_t num_live_ = 0;
  size_t num_tombstones_ = 0;

  uint32_t match_epoch_ = 0;

  // Reused scratch (never shrunk): batch grouping keys and Insert's cell
  // overlap list.
  std::vector<uint64_t> batch_keys_;
  std::vector<CellId> insert_cells_scratch_;
};

}  // namespace ps2

#endif  // PS2_INDEX_GI2_H_
