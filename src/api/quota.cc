#include "api/quota.h"

namespace ps2 {

namespace {

std::string TenantLabel(const std::string& tenant) {
  return tenant.empty() ? std::string("\"\" (default)")
                        : "\"" + tenant + "\"";
}

}  // namespace

QuotaManager::QuotaManager(QuotaConfig config) : config_(config) {
  if (config_.rate_limited() && config_.publish_burst <= 0.0) {
    config_.publish_burst = config_.publish_rate_per_sec;
  }
}

Status QuotaManager::ChargeSubscribe(QueryId id, const std::string& tenant,
                                     uint64_t session_uid) {
  if (!config_.any_subscription_limit()) return Status::Ok();
  if (config_.max_total_subscriptions > 0 &&
      total_ >= config_.max_total_subscriptions) {
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "quota.max_total_subscriptions: " +
        std::to_string(config_.max_total_subscriptions) +
        " live subscriptions already registered");
  }
  if (config_.max_subscriptions_per_tenant > 0) {
    const auto it = per_tenant_.find(tenant);
    if (it != per_tenant_.end() &&
        it->second >= config_.max_subscriptions_per_tenant) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "quota.max_subscriptions_per_tenant: tenant " +
          TenantLabel(tenant) + " already holds " +
          std::to_string(it->second) + " of " +
          std::to_string(config_.max_subscriptions_per_tenant) +
          " subscriptions");
    }
  }
  if (config_.max_subscriptions_per_session > 0 && session_uid != 0) {
    const auto it = per_session_.find(session_uid);
    if (it != per_session_.end() &&
        it->second >= config_.max_subscriptions_per_session) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "quota.max_subscriptions_per_session: session already holds " +
          std::to_string(it->second) + " of " +
          std::to_string(config_.max_subscriptions_per_session) +
          " subscriptions");
    }
  }
  ++total_;
  ++per_tenant_[tenant];
  if (session_uid != 0) ++per_session_[session_uid];
  charges_[id] = Charge{tenant, session_uid};
  return Status::Ok();
}

void QuotaManager::ChargeRestored(QueryId id, const std::string& tenant) {
  if (!config_.any_subscription_limit()) return;
  ++total_;
  ++per_tenant_[tenant];
  charges_[id] = Charge{tenant, 0};
}

void QuotaManager::Refund(QueryId id) {
  const auto it = charges_.find(id);
  if (it == charges_.end()) return;
  const Charge& charge = it->second;
  if (total_ > 0) --total_;
  const auto tenant_it = per_tenant_.find(charge.tenant);
  if (tenant_it != per_tenant_.end() && --tenant_it->second == 0) {
    per_tenant_.erase(tenant_it);
  }
  if (charge.session_uid != 0) {
    const auto session_it = per_session_.find(charge.session_uid);
    if (session_it != per_session_.end() && --session_it->second == 0) {
      per_session_.erase(session_it);
    }
  }
  charges_.erase(it);
}

Status QuotaManager::AdmitPublish(const std::string& tenant, int64_t now_us) {
  if (!config_.rate_limited()) return Status::Ok();
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(tenant, TokenBucket(config_.publish_rate_per_sec,
                                          config_.publish_burst))
             .first;
  }
  if (!it->second.TryAcquire(now_us)) {
    rate_limited_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "quota.publish_rate_per_sec: tenant " + TenantLabel(tenant) +
        " exceeded " + std::to_string(config_.publish_rate_per_sec) +
        "/s (burst " + std::to_string(config_.publish_burst) + ")");
  }
  return Status::Ok();
}

}  // namespace ps2
