#ifndef PS2_API_DELIVERY_ROUTER_H_
#define PS2_API_DELIVERY_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "api/delivery.h"
#include "api/delivery_sink.h"
#include "api/subscriber_session.h"
#include "common/dedup_window.h"
#include "subscribe/topk.h"

namespace ps2 {

// Routes dedup-fresh matches to subscriber sessions, and owns the sharded
// (query, object) duplicate window both execution modes filter through: the
// threaded engine's worker threads call AcceptFresh + DeliverBatch straight
// from the match path (no merger hop), and the synchronous facade feeds
// Deliver from Publish/Post — one dedup window, one delivery semantics, so
// a facade restarted between modes never re-delivers a pair it already
// delivered.
//
// Concurrency follows the RoutingSnapshot pattern: the QueryId -> session
// map is sharded, and each shard is an *immutable* map republished with one
// atomic shared_ptr swap per mutation. Delivering threads resolve a query
// with a single atomic load and never block on subscribe / unsubscribe /
// session churn; writers serialize per shard and pay a copy proportional to
// the shard (1/kShards of the table), not the table.
class DeliveryRouter final : public DeliverySink {
 public:
  DeliveryRouter() = default;

  DeliveryRouter(const DeliveryRouter&) = delete;
  DeliveryRouter& operator=(const DeliveryRouter&) = delete;

  // --- control plane (facade) ----------------------------------------------
  // Points `id` at `session` (replacing any previous route). The router
  // shares ownership, so a session stays deliverable while any of its
  // subscriptions is live even if the application dropped its handle.
  void Route(QueryId id, std::shared_ptr<SubscriberSession> session);
  void Unroute(QueryId id);

  // Tracks a session for draining and stats aggregation (weak: the registry
  // never keeps a session alive).
  void RegisterSession(const std::shared_ptr<SubscriberSession>& session);

  // Engine-drain mode, forwarded to every live session: while draining, a
  // full kBlock queue drops instead of blocking (see BackpressurePolicy).
  void SetDraining(bool draining);

  // Overload-shedding mode, forwarded to every live session (and inherited
  // by sessions registered while set): full kBlock queues degrade to
  // drop-oldest. Set by the facade's overload controller.
  void SetShedding(bool shedding);
  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }

  // Installs the continuous top-k admission stage (facade-owned; may be
  // null). Deduplicated matches for a registered top-k query detour through
  // the coordinator — only admissions reach the session; buffered
  // candidates wait for an expiry to promote them. Set before traffic.
  void SetTopK(TopKCoordinator* topk) { topk_ = topk; }
  TopKCoordinator* topk() const { return topk_; }

  // Delivers a coordinator-admitted entry (a promotion) straight to the
  // routed session, bypassing the dedup window — the pair was filtered once
  // on its way INTO the coordinator and was never delivered since.
  void DeliverAdmitted(const Delivery& admitted);

  // --- data plane (workers / synchronous publish) --------------------------
  // Duplicate filter: true when (query, object) was not delivered within
  // the window. Worker threads gate every match on this before staging a
  // delivery. Thread-safe (lock-striped).
  bool AcceptFresh(QueryId query_id, ObjectId object_id) override {
    return dedup_.AcceptFresh(query_id, object_id);
  }

  // Delivers one already-deduplicated match. `publish_us` is the publish
  // timestamp carried from the facade/engine. Thread-safe, lock-free
  // lookup.
  void Deliver(const MatchResult& m, int64_t publish_us) override;

  // Batch variant for the worker loop: `pending` carries query/object ids
  // and publish_us; deliver_us is stamped by each session. Contiguous runs
  // for the same session enqueue under one session lock.
  void DeliverBatch(const Delivery* pending, size_t n) override;

  // --- introspection --------------------------------------------------------
  std::shared_ptr<SubscriberSession> Lookup(QueryId id) const;
  // Matches that arrived for a query with no routed session (subscriptions
  // made without a session, or in-flight matches after an unsubscribe).
  uint64_t unrouted() const {
    return unrouted_.load(std::memory_order_relaxed);
  }
  // Dedup-window counters (see common/dedup_window.h).
  uint64_t dedup_fresh() const { return dedup_.fresh(); }
  uint64_t dedup_kills() const { return dedup_.duplicates(); }
  // Candidates parked in the top-k admission stage instead of delivered.
  uint64_t topk_buffered() const {
    return topk_buffered_.load(std::memory_order_relaxed);
  }
  // Sum of every session's counters (latency histograms merged) — live
  // sessions plus the folded counters of registered sessions that were
  // destroyed before this call, so RunReport::session_drops is exact even
  // when sessions die mid-run.
  SessionStats AggregateStats() const;

  // Aggregate consumer-queue occupancy across live sessions: total queued
  // deliveries and total capacity. The overload controller's session-side
  // pressure signal.
  void QueueDepth(uint64_t* pending, uint64_t* capacity) const;

 private:
  using Map =
      std::unordered_map<QueryId, std::shared_ptr<SubscriberSession>>;

  static constexpr size_t kShards = 64;
  static size_t ShardOf(QueryId id) {
    // Mix before masking: sequential ids otherwise stripe shards unevenly
    // under small id ranges.
    uint64_t h = id * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(h >> 58);  // top 6 bits -> 64 shards
  }

  struct Shard {
    std::mutex writer_mu;
    // Read with std::atomic_load, republished with std::atomic_store; a
    // null pointer means "empty" (saves allocating 64 empty maps up front).
    std::shared_ptr<const Map> map;
  };

  // Copy-on-write update of one shard under its writer lock.
  template <typename Fn>
  void MutateShard(size_t shard, Fn&& fn);

  // Enqueues one delivery to its routed session (or counts it unrouted).
  void Enqueue(const Delivery& d);

  mutable Shard shards_[kShards];
  ShardedDedupWindow dedup_;
  std::atomic<uint64_t> unrouted_{0};
  TopKCoordinator* topk_ = nullptr;
  std::atomic<uint64_t> topk_buffered_{0};

  mutable std::mutex sessions_mu_;
  std::vector<std::weak_ptr<SubscriberSession>> sessions_;
  std::shared_ptr<RetiredSessionStats> retired_ =
      std::make_shared<RetiredSessionStats>();
  std::atomic<bool> shedding_{false};
};

}  // namespace ps2

#endif  // PS2_API_DELIVERY_ROUTER_H_
