#include "api/delivery_router.h"

#include <algorithm>

namespace ps2 {

template <typename Fn>
void DeliveryRouter::MutateShard(size_t shard, Fn&& fn) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.writer_mu);
  auto next = s.map != nullptr ? std::make_shared<Map>(*s.map)
                               : std::make_shared<Map>();
  fn(*next);
  std::atomic_store(&s.map, std::shared_ptr<const Map>(std::move(next)));
}

void DeliveryRouter::Route(QueryId id,
                           std::shared_ptr<SubscriberSession> session) {
  if (session == nullptr) {
    Unroute(id);
    return;
  }
  MutateShard(ShardOf(id), [&](Map& m) { m[id] = std::move(session); });
}

void DeliveryRouter::Unroute(QueryId id) {
  const size_t shard = ShardOf(id);
  {
    // Cheap pre-check against the published map: unsubscribing a query that
    // never had a session (the common case for the legacy API) must not pay
    // a shard copy.
    const auto current = std::atomic_load(&shards_[shard].map);
    if (current == nullptr || current->find(id) == current->end()) return;
  }
  MutateShard(shard, [&](Map& m) { m.erase(id); });
}

void DeliveryRouter::RegisterSession(
    const std::shared_ptr<SubscriberSession>& session) {
  // A session destroyed before Stop() must not lose its delivered/dropped
  // counters: wire it to the shared retired-stats accumulator its
  // destructor folds into.
  session->AttachRetiredStats(retired_);
  if (shedding_.load(std::memory_order_relaxed)) session->SetShedding(true);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  // Compact expired registrations opportunistically so a long-lived service
  // opening many short-lived sessions stays bounded.
  sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                 [](const std::weak_ptr<SubscriberSession>& w) {
                                   return w.expired();
                                 }),
                  sessions_.end());
  sessions_.push_back(session);
}

void DeliveryRouter::SetDraining(bool draining) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& w : sessions_) {
    if (auto s = w.lock()) s->SetDraining(draining);
  }
}

void DeliveryRouter::SetShedding(bool shedding) {
  shedding_.store(shedding, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& w : sessions_) {
    if (auto s = w.lock()) s->SetShedding(shedding);
  }
}

std::shared_ptr<SubscriberSession> DeliveryRouter::Lookup(QueryId id) const {
  const auto map = std::atomic_load(&shards_[ShardOf(id)].map);
  if (map == nullptr) return nullptr;
  const auto it = map->find(id);
  return it != map->end() ? it->second : nullptr;
}

void DeliveryRouter::Enqueue(const Delivery& d) {
  const auto session = Lookup(d.query_id);
  if (session == nullptr) {
    unrouted_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  session->Enqueue(d);
}

void DeliveryRouter::DeliverAdmitted(const Delivery& admitted) {
  Enqueue(admitted);
}

void DeliveryRouter::Deliver(const MatchResult& m, int64_t publish_us) {
  Delivery d;
  d.query_id = m.query_id;
  d.object_id = m.object_id;
  d.publish_us = publish_us;
  d.score = m.score;
  d.expire_us = m.expire_us;
  if (topk_ != nullptr && topk_->active() && topk_->Owns(d.query_id)) {
    if (!topk_->Offer(d)) {
      topk_buffered_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  Enqueue(d);
}

void DeliveryRouter::DeliverBatch(const Delivery* pending, size_t n) {
  if (topk_ != nullptr && topk_->active()) {
    // Top-k admission is per delivery; the run-grouping below would reorder
    // admissions around buffered candidates, so take the simple path while
    // any top-k subscription is live.
    for (size_t i = 0; i < n; ++i) {
      if (topk_->Owns(pending[i].query_id)) {
        if (topk_->Offer(pending[i])) {
          Enqueue(pending[i]);
        } else {
          topk_buffered_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        Enqueue(pending[i]);
      }
    }
    return;
  }
  // Group contiguous runs bound for the same session: matches arrive
  // cell-clustered, so neighbours usually share a session, and a run
  // enqueues under a single session lock.
  size_t i = 0;
  while (i < n) {
    const auto session = Lookup(pending[i].query_id);
    size_t j = i + 1;
    while (j < n && Lookup(pending[j].query_id) == session) ++j;
    if (session == nullptr) {
      unrouted_.fetch_add(j - i, std::memory_order_relaxed);
    } else {
      session->EnqueueBatch(pending + i, j - i);
    }
    i = j;
  }
}

SessionStats DeliveryRouter::AggregateStats() const {
  SessionStats total = retired_->Snapshot();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& w : sessions_) {
    if (const auto s = w.lock()) total.Merge(s->stats());
  }
  return total;
}

void DeliveryRouter::QueueDepth(uint64_t* pending, uint64_t* capacity) const {
  uint64_t p = 0, c = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& w : sessions_) {
      if (const auto s = w.lock()) {
        p += s->pending();
        c += s->options().queue_capacity;
      }
    }
  }
  *pending = p;
  *capacity = c;
}

}  // namespace ps2
