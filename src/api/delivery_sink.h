#ifndef PS2_API_DELIVERY_SINK_H_
#define PS2_API_DELIVERY_SINK_H_

#include <cstddef>
#include <cstdint>

#include "api/delivery.h"
#include "core/query.h"

namespace ps2 {

// Where an engine's dedup-fresh matches go. The two implementations are the
// in-process DeliveryRouter (matches land directly in subscriber sessions)
// and the shard fabric's per-shard egress (matches are serialized onto the
// transport and delivered by the front-end router) — the engine hot path is
// identical either way, so a single-process deployment and an N-shard one
// run the same worker code.
//
// Contract (what ThreadedEngine's workers rely on):
//   - AcceptFresh is the (query, object) duplicate filter; a match is
//     delivered at most once per window. Thread-safe.
//   - Deliver/DeliverBatch receive only matches AcceptFresh approved;
//     `publish_us` carries the publish timestamp end to end so
//     publish->deliver latency stays honest across any number of hops.
//     Called concurrently from worker threads; may block (session
//     backpressure) but must only stall the calling worker.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;

  virtual bool AcceptFresh(QueryId query_id, ObjectId object_id) = 0;
  virtual void Deliver(const MatchResult& m, int64_t publish_us) = 0;
  virtual void DeliverBatch(const Delivery* pending, size_t n) = 0;
};

}  // namespace ps2

#endif  // PS2_API_DELIVERY_SINK_H_
