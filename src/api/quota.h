#ifndef PS2_API_QUOTA_H_
#define PS2_API_QUOTA_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "api/status.h"
#include "core/query.h"

namespace ps2 {

// Multi-tenant admission limits enforced at the facade boundary
// (PS2Stream::Subscribe/Post). Everything defaults to 0 = unlimited, so a
// default-constructed facade behaves exactly as before. Exceeding a limit
// is a typed kResourceExhausted error naming the field that rejected —
// never a silent clamp — matching the spec-validation precedent.
struct QuotaConfig {
  // Live-subscription count ceilings. Per-session counts key on the
  // session's uid (subscriptions made without a session are exempt from the
  // per-session limit but still count per tenant and in total).
  uint64_t max_subscriptions_per_session = 0;
  uint64_t max_subscriptions_per_tenant = 0;
  uint64_t max_total_subscriptions = 0;
  // Per-tenant publish token bucket: sustained rate and burst size. A burst
  // of 0 with a nonzero rate means "burst == rate" (one second of credit).
  double publish_rate_per_sec = 0.0;
  double publish_burst = 0.0;

  bool any_subscription_limit() const {
    return max_subscriptions_per_session > 0 ||
           max_subscriptions_per_tenant > 0 || max_total_subscriptions > 0;
  }
  bool rate_limited() const { return publish_rate_per_sec > 0.0; }
  bool enabled() const { return any_subscription_limit() || rate_limited(); }
};

// Classic token bucket with an explicit clock: `now_us` is passed in so
// tests drive it deterministically and the facade charges it the publish
// timestamp it already takes. Not thread-safe (control-plane only).
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  // Consumes one token if available, refilling first from elapsed time.
  // A timestamp behind the last one refills nothing and does NOT rewind
  // the clock — otherwise a stale `now_us` followed by a fresh one would
  // count the same interval twice and mint tokens out of thin air.
  bool TryAcquire(int64_t now_us) {
    if (last_us_ == 0) {
      last_us_ = now_us;
    } else if (now_us > last_us_) {
      tokens_ += rate_ * static_cast<double>(now_us - last_us_) * 1e-6;
      if (tokens_ > burst_) tokens_ = burst_;
      last_us_ = now_us;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  int64_t last_us_ = 0;
};

// Tracks per-session / per-tenant / total subscription charges and the
// per-tenant publish buckets, and renders the rejection messages. Like the
// rest of the facade control plane it is single-threaded; only the
// rejection counters are atomics so a metrics scrape from another thread
// can read them.
class QuotaManager {
 public:
  explicit QuotaManager(QuotaConfig config);

  // Admission check + charge for one subscription. `session_uid` 0 means
  // "no session". Ok ⇒ the charge was recorded under `id` (Refund(id)
  // releases it); a rejection names the exhausted field positionally.
  Status ChargeSubscribe(QueryId id, const std::string& tenant,
                         uint64_t session_uid);

  // Records a charge bypassing the admission checks: recovery re-charges
  // durable subscriptions (tenant attribution is not persisted, so they
  // land on the default tenant with no session) and must never reject a
  // subscription that already survived a crash.
  void ChargeRestored(QueryId id, const std::string& tenant);

  // Releases the charge recorded for `id`; unknown ids no-op (subscriptions
  // admitted before quotas were configured, double-cancel).
  void Refund(QueryId id);

  // Token-bucket admission for one publish by `tenant` at `now_us`.
  Status AdmitPublish(const std::string& tenant, int64_t now_us);

  const QuotaConfig& config() const { return config_; }
  uint64_t total_live() const { return total_; }
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }
  uint64_t rate_limited() const {
    return rate_limited_.load(std::memory_order_relaxed);
  }

 private:
  struct Charge {
    std::string tenant;
    uint64_t session_uid = 0;
  };

  QuotaConfig config_;
  uint64_t total_ = 0;
  std::unordered_map<QueryId, Charge> charges_;
  std::unordered_map<uint64_t, uint64_t> per_session_;
  std::unordered_map<std::string, uint64_t> per_tenant_;
  std::unordered_map<std::string, TokenBucket> buckets_;
  std::atomic<uint64_t> rejections_{0};
  std::atomic<uint64_t> rate_limited_{0};
};

}  // namespace ps2

#endif  // PS2_API_QUOTA_H_
