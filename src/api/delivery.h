#ifndef PS2_API_DELIVERY_H_
#define PS2_API_DELIVERY_H_

#include <cstdint>
#include <string>

#include "common/latency.h"
#include "common/wait_strategy.h"
#include "core/query.h"

namespace ps2 {

// One match handed to a subscriber: which subscription fired, which object
// triggered it, and the two timestamps the delivery-latency metric is
// computed from. `publish_us` is stamped when the publisher's call entered
// the service (Post/Publish in synchronous mode, engine Submit in started
// mode); `deliver_us` when the match reached the subscriber's session (queue
// enqueue or sink invocation).
struct Delivery {
  QueryId query_id = 0;
  ObjectId object_id = 0;
  int64_t publish_us = 0;
  int64_t deliver_us = 0;
  // Scored subscription classes: the cosine score that fired the match and
  // the object's event-time expiry (0 = never). Boolean matches carry 0/0.
  double score = 0.0;
  int64_t expire_us = 0;

  double LatencyMicros() const {
    return static_cast<double>(deliver_us - publish_us);
  }
};

// Push-mode consumption: a session with a sink installed invokes it for
// every delivery instead of queueing. Invocations are serialized per
// session but run on the *delivering* thread (a worker thread in started
// mode, the publisher's thread in synchronous mode), so implementations
// must be fast and must not call back into the session or the facade.
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void OnMatch(const Delivery& delivery) = 0;
};

// What a session does when a delivery arrives and its queue is full.
enum class BackpressurePolicy : uint8_t {
  // Block the delivering thread until the consumer frees a slot (the same
  // flow control the engine's BoundedQueue applies between stages). During
  // engine drain (Stop()) blocking degrades to kDropNewest so a stalled
  // consumer can never wedge shutdown.
  kBlock = 0,
  // Evict the oldest queued delivery to make room (keep the freshest).
  kDropOldest,
  // Drop the incoming delivery (keep the backlog).
  kDropNewest,
};

const char* BackpressurePolicyName(BackpressurePolicy policy);

struct SessionOptions {
  size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  // Latency class of this session's consumer: kBlocking parks on the
  // condition variable immediately; kAdaptiveSpin / kBusyPoll sessions spin
  // on the queue counter before (or instead of) parking, shaving the futex
  // wakeup off the delivery tail at the price of consumer CPU.
  WaitStrategy wait_strategy = WaitStrategy::kBlocking;
  // Tenant this session (and every subscription opened through it) is
  // accounted to for quota and rate-limit purposes. Empty = the default
  // tenant; quotas still apply per session.
  std::string tenant;
};

// Per-session delivery accounting; aggregated across sessions into
// RunReport by PS2Stream::Stop() and available live via stats().
struct SessionStats {
  uint64_t delivered = 0;  // queued or pushed to the sink
  uint64_t dropped = 0;    // lost to backpressure or a closed session
  LatencyHistogram latency;  // publish -> deliver

  void Merge(const SessionStats& other) {
    delivered += other.delivered;
    dropped += other.dropped;
    latency.Merge(other.latency);
  }
};

}  // namespace ps2

#endif  // PS2_API_DELIVERY_H_
