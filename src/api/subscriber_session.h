#ifndef PS2_API_SUBSCRIBER_SESSION_H_
#define PS2_API_SUBSCRIBER_SESSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "api/delivery.h"
#include "api/status.h"

namespace ps2 {

// Delivery counters of sessions that have already been destroyed. The
// router's registry holds sessions weakly, so without this a session that
// dies before Stop() would vanish from RunReport::session_deliveries/
// session_drops; instead each registered session folds its final counters
// here from its destructor. Shared (shared_ptr) between the router and its
// sessions so teardown order doesn't matter.
struct RetiredSessionStats {
  SessionStats Snapshot() const {
    std::lock_guard<std::mutex> lock(mu);
    return stats;
  }
  void Fold(const SessionStats& s) {
    std::lock_guard<std::mutex> lock(mu);
    stats.Merge(s);
  }

 private:
  mutable std::mutex mu;
  SessionStats stats;
};

// One subscriber's delivery endpoint: a bounded queue that multiplexes the
// matches of every subscription routed to it, with a selectable policy for
// what happens when the consumer falls behind (BackpressurePolicy) and two
// consumption styles:
//
//   pull:  Poll() (non-blocking) / Take(timeout) / TakeBatch(timeout)
//   push:  SetSink(sink) — deliveries invoke the sink on the delivering
//          thread; anything already queued is flushed to the sink first.
//
// Thread safety: producers are the runtime's worker threads (started mode)
// or the publisher's thread (synchronous mode); any number of consumer
// threads may pull concurrently. All public methods are thread-safe.
//
// Lifecycle: sessions are created by PS2Stream::OpenSession and shared with
// the delivery router. Close() (also run by the destructor) wakes every
// blocked producer and consumer; deliveries arriving after Close() are
// counted as dropped.
class SubscriberSession {
 public:
  explicit SubscriberSession(SessionOptions options = SessionOptions());
  ~SubscriberSession();

  SubscriberSession(const SubscriberSession&) = delete;
  SubscriberSession& operator=(const SubscriberSession&) = delete;

  // --- consumption ----------------------------------------------------------
  // Non-blocking: pops the oldest queued delivery. False when empty (or
  // closed-and-drained, or in push mode).
  bool Poll(Delivery* out);

  // Blocks up to `timeout` for a delivery. Ok on success; kDeadlineExceeded
  // when the wait expired; kUnavailable once the session is closed and
  // drained; kFailedPrecondition in push mode.
  Status Take(Delivery* out, std::chrono::milliseconds timeout);

  // Drains up to `max` deliveries, waiting up to `timeout` for the first.
  // Returns the number appended to `out` (0 on timeout or closed-and-
  // drained). `out` is not cleared, so a consumer can accumulate.
  size_t TakeBatch(std::vector<Delivery>* out, size_t max,
                   std::chrono::milliseconds timeout);

  // --- push mode ------------------------------------------------------------
  // Installs (or, with nullptr, removes) the sink. Queued deliveries are
  // flushed to the new sink before it starts receiving live traffic, so no
  // delivery is lost or reordered by the switch. The sink must outlive the
  // session or a SetSink(nullptr) call.
  Status SetSink(MatchSink* sink);

  // --- lifecycle ------------------------------------------------------------
  // Idempotent: stops accepting deliveries (further ones count as dropped),
  // wakes blocked producers and consumers. Pending queued deliveries remain
  // consumable until drained.
  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // Engine drain mode (set by the facade around Stop()): while draining, a
  // full kBlock queue drops instead of blocking, so a stalled consumer
  // cannot wedge engine shutdown. The flag flips under the session lock:
  // a producer evaluating the kBlock wait predicate either sees the new
  // value or is already parked when the notify fires — no lost wakeup.
  void SetDraining(bool draining) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      draining_.store(draining, std::memory_order_release);
    }
    if (draining) not_full_.notify_all();
  }

  // Overload-shedding mode (set by the facade's admission controller, via
  // DeliveryRouter::SetShedding): while set, a full kBlock queue evicts the
  // oldest queued delivery instead of blocking the delivering thread, so a
  // slow consumer degrades to bounded loss instead of backpressuring the
  // whole data plane. Same lock/notify discipline as SetDraining.
  void SetShedding(bool shedding) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shedding_.store(shedding, std::memory_order_release);
    }
    if (shedding) not_full_.notify_all();
  }

  // Attaches the router's retired-stats accumulator; the destructor folds
  // this session's final counters into it (after Close()) so the counters
  // survive the session. Called once, by RegisterSession, before traffic.
  void AttachRetiredStats(std::shared_ptr<RetiredSessionStats> retired) {
    retired_ = std::move(retired);
  }

  // --- introspection --------------------------------------------------------
  size_t pending() const;
  const SessionOptions& options() const { return options_; }
  // Process-unique session id; quota accounting keys per-session charges on
  // this instead of the pointer (which malloc can reuse across sessions).
  uint64_t uid() const { return uid_; }
  // Snapshot of the per-session counters (thread-safe, taken under the
  // session lock).
  SessionStats stats() const;

  // --- producer side (DeliveryRouter / facade) ------------------------------
  // Hands one match to the session: stamps deliver_us, records latency and
  // either queues it, evicts per the backpressure policy, or pushes it to
  // the sink. Returns false when the delivery was dropped.
  bool Enqueue(Delivery delivery);

  // Batch variant for the worker threads' delivery path: one lock
  // acquisition and one consumer notify for the whole run.
  void EnqueueBatch(const Delivery* deliveries, size_t n);

 private:
  // Requires mu_ (via `lock`) held. Applies the backpressure policy;
  // returns true when `d` was queued or pushed to the sink.
  bool EnqueueLocked(std::unique_lock<std::mutex>& lock, Delivery d);

  // Consumer-side pre-lock spin (kAdaptiveSpin / kBusyPoll sessions):
  // bounded wait on the queued_ counter before falling back to the
  // condition-variable path, trading consumer CPU for wakeup latency.
  void SpinForDelivery() const;

  const SessionOptions options_;
  const uint64_t uid_;
  std::shared_ptr<RetiredSessionStats> retired_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Delivery> queue_;
  // Mirror of queue_.size(), maintained under mu_ but readable without it:
  // the spin phase polls this instead of bouncing the session lock.
  std::atomic<size_t> queued_{0};
  MatchSink* sink_ = nullptr;
  SessionStats stats_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shedding_{false};
};

}  // namespace ps2

#endif  // PS2_API_SUBSCRIBER_SESSION_H_
