#ifndef PS2_API_SUBSCRIPTION_H_
#define PS2_API_SUBSCRIPTION_H_

#include <memory>
#include <utility>

#include "core/query.h"

namespace ps2 {

// Seam the RAII handle cancels through; implemented privately by PS2Stream.
// Kept abstract so api/ never includes the facade (no header cycle).
class SubscriptionBackend {
 public:
  virtual ~SubscriptionBackend() = default;
  virtual void CancelSubscription(QueryId id) = 0;
};

// Move-only RAII handle for one live subscription: destruction (or an
// explicit Cancel()) unsubscribes. Obtained from the Status-based
// PS2Stream::Subscribe overloads.
//
// The handle holds a weak token to the facade, so a Subscription that
// outlives its PS2Stream destructs into a harmless no-op instead of calling
// into a dead service. Like the rest of the control plane
// (Subscribe/Cancel/Post ordering), handles belong to the facade's control
// thread: destroying one *concurrently* with the facade's destructor is
// not synchronized. Release() detaches the handle, leaving the
// subscription live under the returned id (the legacy shim uses this).
class Subscription {
 public:
  Subscription() = default;
  Subscription(QueryId id, SubscriptionBackend* backend,
               std::weak_ptr<void> backend_alive)
      : id_(id), backend_(backend),
        backend_alive_(std::move(backend_alive)) {}

  ~Subscription() { Cancel(); }

  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  Subscription(Subscription&& other) noexcept { *this = std::move(other); }
  Subscription& operator=(Subscription&& other) noexcept {
    if (this != &other) {
      Cancel();
      id_ = other.id_;
      backend_ = other.backend_;
      backend_alive_ = std::move(other.backend_alive_);
      other.id_ = 0;
      other.backend_ = nullptr;
      other.backend_alive_.reset();
    }
    return *this;
  }

  QueryId id() const { return id_; }
  // True while this handle still owns a live subscription.
  bool active() const { return id_ != 0 && !backend_alive_.expired(); }

  // Unsubscribes now (idempotent). Safe after the facade is gone.
  void Cancel() {
    if (id_ == 0 || backend_ == nullptr) return;
    if (const auto alive = backend_alive_.lock()) {
      backend_->CancelSubscription(id_);
    }
    id_ = 0;
    backend_ = nullptr;
    backend_alive_.reset();
  }

  // Detaches without unsubscribing; the caller owns the id from here on.
  QueryId Release() {
    const QueryId id = id_;
    id_ = 0;
    backend_ = nullptr;
    backend_alive_.reset();
    return id;
  }

 private:
  QueryId id_ = 0;
  SubscriptionBackend* backend_ = nullptr;
  std::weak_ptr<void> backend_alive_;
};

}  // namespace ps2

#endif  // PS2_API_SUBSCRIPTION_H_
