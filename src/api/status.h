#ifndef PS2_API_STATUS_H_
#define PS2_API_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace ps2 {

// Canonical error space of the client API. Every fallible facade operation
// reports one of these instead of a sentinel value (the legacy "QueryId 0
// means parse failure" contract is kept only as a deprecated shim).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,      // malformed input (e.g. expression syntax error)
  kFailedPrecondition,   // call sequencing (e.g. Subscribe before Bootstrap)
  kNotFound,             // unknown id
  kAlreadyExists,        // duplicate id
  kResourceExhausted,    // bounded buffer full and policy forbids waiting
  kUnavailable,          // service stopped / killed
  kDeadlineExceeded,     // timed wait expired
  kDataLoss,             // durability broken (sticky WAL I/O error)
  kInternal,             // invariant violation (bug)
};

const char* StatusCodeName(StatusCode code);

// Value-type success-or-error result: a code plus a human-readable message.
// Ok statuses carry no message and are cheap to copy.
class Status {
 public:
  Status() = default;  // Ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A Status or a value of type T. `ok()` implies `value()` is live; accessing
// the value of a failed StatusOr is undefined (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit from error Status
      : status_(std::move(status)) {
    // An Ok status without a value is a caller bug; surface it as an error
    // instead of leaving ok() and status().ok() disagreeing.
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from Ok status");
    }
  }
  StatusOr(T value)  // NOLINT: implicit from value
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ps2

#endif  // PS2_API_STATUS_H_
