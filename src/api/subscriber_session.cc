#include "api/subscriber_session.h"

#include "common/stopwatch.h"

namespace ps2 {

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
    case BackpressurePolicy::kDropNewest: return "drop-newest";
  }
  return "unknown";
}

namespace {
std::atomic<uint64_t> g_session_uid{1};
}  // namespace

SubscriberSession::SubscriberSession(SessionOptions options)
    : options_(std::move(options)),
      uid_(g_session_uid.fetch_add(1, std::memory_order_relaxed)) {}

SubscriberSession::~SubscriberSession() {
  Close();
  // Last reference gone: no producer can race this read. Folding here (not
  // in Close(), which producers may still deliver-after) keeps the retired
  // accumulator exact — every drop counted after Close() is included.
  if (retired_ != nullptr) retired_->Fold(stats_);
}

void SubscriberSession::SpinForDelivery() const {
  if (options_.wait_strategy == WaitStrategy::kBlocking) return;
  // Bounded lock-free spin on the mirror counter: a delivery in flight is
  // caught here without paying the condvar wakeup. The bound keeps a
  // kBusyPoll consumer from starving producers on an oversubscribed box.
  for (int i = 0; i < 4096; ++i) {
    if (queued_.load(std::memory_order_acquire) > 0 ||
        closed_.load(std::memory_order_acquire)) {
      return;
    }
    if ((i & 63) == 63) {
      std::this_thread::yield();
    } else {
      CpuRelax();
    }
  }
}

bool SubscriberSession::Poll(Delivery* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *out = queue_.front();
  queue_.pop_front();
  queued_.store(queue_.size(), std::memory_order_release);
  not_full_.notify_one();
  return true;
}

Status SubscriberSession::Take(Delivery* out,
                               std::chrono::milliseconds timeout) {
  SpinForDelivery();
  std::unique_lock<std::mutex> lock(mu_);
  if (sink_ != nullptr) {
    return Status::FailedPrecondition(
        "session is in push mode (sink installed)");
  }
  not_empty_.wait_for(lock, timeout, [this] {
    return !queue_.empty() || closed_.load(std::memory_order_relaxed);
  });
  if (!queue_.empty()) {
    *out = queue_.front();
    queue_.pop_front();
    queued_.store(queue_.size(), std::memory_order_release);
    not_full_.notify_one();
    return Status::Ok();
  }
  if (closed_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("session closed");
  }
  return Status::DeadlineExceeded("no delivery within timeout");
}

size_t SubscriberSession::TakeBatch(std::vector<Delivery>* out, size_t max,
                                    std::chrono::milliseconds timeout) {
  if (max == 0) return 0;
  SpinForDelivery();
  std::unique_lock<std::mutex> lock(mu_);
  if (sink_ != nullptr) return 0;
  not_empty_.wait_for(lock, timeout, [this] {
    return !queue_.empty() || closed_.load(std::memory_order_relaxed);
  });
  size_t n = 0;
  while (!queue_.empty() && n < max) {
    out->push_back(queue_.front());
    queue_.pop_front();
    ++n;
  }
  if (n > 0) {
    queued_.store(queue_.size(), std::memory_order_release);
    not_full_.notify_all();
  }
  return n;
}

Status SubscriberSession::SetSink(MatchSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink != nullptr) {
    // Flush the backlog in order before live traffic reaches the sink.
    while (!queue_.empty()) {
      sink->OnMatch(queue_.front());
      queue_.pop_front();
    }
    queued_.store(0, std::memory_order_release);
    not_full_.notify_all();
  }
  sink_ = sink;
  return Status::Ok();
}

void SubscriberSession::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_.store(true, std::memory_order_release);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t SubscriberSession::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

SessionStats SubscriberSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool SubscriberSession::EnqueueLocked(std::unique_lock<std::mutex>& lock,
                                      Delivery d) {
  if (closed_.load(std::memory_order_relaxed)) {
    ++stats_.dropped;
    return false;
  }
  if (sink_ == nullptr && queue_.size() >= options_.queue_capacity) {
    // Overload shedding (facade admission controller): a kBlock session
    // degrades to drop-oldest so a slow consumer sheds its own backlog
    // instead of backpressuring the shared data plane.
    BackpressurePolicy policy = options_.backpressure;
    if (policy == BackpressurePolicy::kBlock &&
        shedding_.load(std::memory_order_relaxed)) {
      policy = BackpressurePolicy::kDropOldest;
    }
    switch (policy) {
      case BackpressurePolicy::kBlock:
        // Block the delivering thread until the consumer frees a slot —
        // unless the session closes, enters engine-drain or shedding mode,
        // or flips to push mode while we wait.
        not_full_.wait(lock, [this] {
          return queue_.size() < options_.queue_capacity ||
                 closed_.load(std::memory_order_relaxed) ||
                 draining_.load(std::memory_order_relaxed) ||
                 shedding_.load(std::memory_order_relaxed) ||
                 sink_ != nullptr;
        });
        if (closed_.load(std::memory_order_relaxed)) {
          ++stats_.dropped;
          return false;
        }
        if (sink_ == nullptr && queue_.size() >= options_.queue_capacity) {
          if (shedding_.load(std::memory_order_relaxed)) {
            // Woken by SetShedding: evict the oldest and queue this one.
            queue_.pop_front();
            ++stats_.dropped;
            break;
          }
          ++stats_.dropped;  // draining: degrade to drop-newest
          return false;
        }
        break;
      case BackpressurePolicy::kDropOldest:
        // The evicted delivery was counted delivered when it was queued;
        // it now also counts dropped (handed to the session, never seen by
        // the consumer).
        queue_.pop_front();
        ++stats_.dropped;
        break;
      case BackpressurePolicy::kDropNewest:
        ++stats_.dropped;
        return false;
    }
  }
  // Virtual-time producers (SimEngine) pre-stamp deliver_us; wall-clock
  // producers leave it 0 and the session stamps the enqueue instant.
  if (d.deliver_us == 0) d.deliver_us = NowMicros();
  ++stats_.delivered;
  stats_.latency.Record(d.LatencyMicros());
  if (sink_ != nullptr) {
    // Invoked under the session lock: per-session sink calls stay
    // serialized and ordered after any SetSink backlog flush. Sinks must be
    // fast and must not call back into the session.
    sink_->OnMatch(d);
    return true;
  }
  queue_.push_back(d);
  return true;
}

bool SubscriberSession::Enqueue(Delivery delivery) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool ok = EnqueueLocked(lock, delivery);
  if (ok && sink_ == nullptr) {
    queued_.store(queue_.size(), std::memory_order_release);
    not_empty_.notify_one();
  }
  return ok;
}

void SubscriberSession::EnqueueBatch(const Delivery* deliveries, size_t n) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  size_t queued = 0;
  for (size_t i = 0; i < n; ++i) {
    if (EnqueueLocked(lock, deliveries[i]) && sink_ == nullptr) ++queued;
  }
  if (queued > 0) {
    queued_.store(queue_.size(), std::memory_order_release);
    // One wakeup for the whole run: a batch consumer (TakeBatch) drains
    // everything it finds, and single-Take consumers re-check the queue
    // under the lock anyway.
    not_empty_.notify_all();
  }
}

}  // namespace ps2
