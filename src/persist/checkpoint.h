#ifndef PS2_PERSIST_CHECKPOINT_H_
#define PS2_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.h"
#include "dispatch/routing_snapshot.h"
#include "partition/plan.h"
#include "subscribe/topk_state.h"
#include "text/vocabulary.h"

namespace ps2 {

// A checkpoint is one self-contained file capturing everything needed to
// stand the service back up: the vocabulary (terms + frequency counts), the
// PartitionPlan (H1 — including every migration installed so far), the
// current RoutingSnapshot (H2 — informational/diagnostic), all live
// subscriptions, and the id high-waters. Together with the WAL segment
// started at the same moment it forms one recovery point.
//
// File layout (little-endian):
//   magic "PS2C", u32 version, u64 payload_len, u32 crc32(payload), payload
// The payload is rejected wholesale on CRC mismatch — a checkpoint is only
// ever referenced by CURRENT after it was fully written and flushed, so a
// bad CRC means disk corruption, not a torn write.
//
// Payload sections:
//   u64 seq, u64 last_lsn (WAL high-water covered by this checkpoint)
//   u64 next_query_id, u64 next_object_id
//   vocab:    u64 #terms, per term: str, u64 count   (id = position)
//   plan:     plan_serde (term ids are vocab positions)
//   snapshot: u8 present, snapshot_serde             (optional)
//   queries:  u64 #queries, per query: u64 id, region f64 x4,
//             u32 #clauses, per clause: u32 #terms, u32 terms[],
//             (v2) u8 class, f64 tau, u32 k
//   topk:     (v2) u8 present; when present: i64 watermark_us,
//             u64 #entries, per entry: u64 qid, u64 oid, f64 score,
//             i64 expire_us, i64 publish_us, u8 held, u8 delivered
// Version 1 files decode with boolean-class queries and an empty top-k
// section; version-2 readers accept both.

// Borrowed view of the state to capture (nothing is copied until
// serialization).
struct CheckpointView {
  uint64_t seq = 0;
  uint64_t last_lsn = 0;
  QueryId next_query_id = 1;
  ObjectId next_object_id = 1;
  const Vocabulary* vocab = nullptr;
  const PartitionPlan* plan = nullptr;
  const RoutingSnapshot* snapshot = nullptr;  // optional
  std::vector<const STSQuery*> queries;
  // Continuous top-k heap state (held + buffered candidates and the event-
  // time watermark). Optional: nullptr or empty writes an absent section.
  const TopKCheckpoint* topk = nullptr;
};

// Decoded checkpoint. The vocabulary is rebuilt by interning in file order,
// so term ids inside `plan`, `snapshot` and `queries` are valid against it.
struct CheckpointData {
  uint64_t seq = 0;
  uint64_t last_lsn = 0;
  QueryId next_query_id = 1;
  ObjectId next_object_id = 1;
  Vocabulary vocab;
  PartitionPlan plan;
  bool has_snapshot = false;
  RoutingSnapshot snapshot;
  std::vector<STSQuery> queries;
  TopKCheckpoint topk;  // empty when the file predates v2 or held no state
};

// Writes (and flushes) the checkpoint file at `path`. Returns false on I/O
// failure; a partial file is left behind but is harmless — it is never
// referenced until the caller commits it via CURRENT.
bool WriteCheckpointFile(const std::string& path, const CheckpointView& view);

// Loads and validates (magic, version, CRC) the checkpoint at `path`.
bool ReadCheckpointFile(const std::string& path, CheckpointData* out);

}  // namespace ps2

#endif  // PS2_PERSIST_CHECKPOINT_H_
