#ifndef PS2_PERSIST_WAL_H_
#define PS2_PERSIST_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/query.h"
#include "partition/plan.h"
#include "text/vocabulary.h"

namespace ps2 {

// Append-only write-ahead log of the durable mutations of a PS2Stream
// service: subscription inserts/deletes and the cell-route rewrites the load
// controller installs. Object publications are deliberately *not* logged —
// they are ephemeral stream data; durability covers the subscriber base and
// where it lives.
//
// File layout (little-endian):
//   header:  magic "PS2W", u32 version, u64 segment seq
//   records: u32 payload_len, u32 crc32(payload), payload
//   payload: u8 type, u64 lsn, body
//
// Record bodies are *self-contained*: a term the vocabulary knows by
// string is stored as its string (u8 tag 1), so a record written long
// after the last checkpoint replays correctly into a recovered vocabulary
// that never saw the terms interned in between; a term the service only
// ever handled as a raw TermId (externally tokenized embeddings — the
// facade vocabulary then has no strings) is stored as the id (u8 tag 0)
// and preserved verbatim.
//   kSubscribe:   u64 qid, region f64 x4, u32 #clauses,
//                 per clause: u32 #terms, term[],
//                 (v2) u8 class, f64 tau, u32 k
//   kUnsubscribe: u64 qid
//   kUpdate:      same body as kSubscribe — the *complete replacement*
//                 subscription (moving subscribers), replayed as an upsert
//                 so a WAL-ordered update chain converges on the last write
//   kCellRoute:   u32 cell, u8 is_text,
//                 space: i32 worker
//                 text:  u32 #workers, i32 workers[],
//                        u32 #terms, (term, i32 worker)[]
//   term:         u8 tag, tag=1: str, tag=0: u32 id
//
// kCellRoute records the *absolute resulting route* of a cell after a
// migration (reassign, text split or merge), so replay is idempotent and
// insensitive to whether the pre-migration state was checkpointed.
//
// Concurrency: appends are thread-safe (facade thread + controller thread)
// and cheap — they serialize the record into an in-memory batch and hand it
// to a dedicated flusher thread, which group-commits everything accumulated
// since its last write with one fwrite + fflush (+ fdatasync in kSync).
// Under SyncMode::kFlush/kSync an append blocks until its record is
// durable; one flush acknowledges every record in the batch.
class Wal {
 public:
  enum class SyncMode : uint8_t {
    kAsync = 0,  // append returns immediately; flusher writes behind
    kFlush = 1,  // append blocks until written + fflushed (libc -> kernel)
    kSync = 2,   // additionally fdatasync — survives OS crash, not just
                 // process crash
  };
  struct Options {
    SyncMode sync = SyncMode::kFlush;
  };

  enum class RecordType : uint8_t {
    kSubscribe = 1,
    kUnsubscribe = 2,
    kCellRoute = 3,
    kUpdate = 4,
  };

  Wal();  // default Options
  explicit Wal(Options options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating or appending to) the segment at `path`. `next_lsn` seeds
  // the sequence counter — LSNs are monotonic across segments for the
  // lifetime of the log directory.
  bool Open(const std::string& path, uint64_t seq, uint64_t next_lsn);

  // Atomically redirects subsequent appends to a fresh segment at `path`
  // (the checkpoint protocol rotates before capturing state). Everything
  // pending is flushed to the old segment first.
  bool Rotate(const std::string& path, uint64_t seq);

  // --- appends (return the record's LSN; 0 when the log is closed) ---------
  uint64_t AppendSubscribe(const STSQuery& q, const Vocabulary& vocab);
  uint64_t AppendUnsubscribe(QueryId id);
  // Journals a subscription replacement (same id, e.g. a region move).
  uint64_t AppendUpdate(const STSQuery& q, const Vocabulary& vocab);
  // Never waits for durability regardless of sync mode: cell routes are
  // journaled while the routing writer lock (and every worker's index lock)
  // is held, and they are idempotent performance state — losing an
  // unflushed one in a crash recovers a pre-migration plan, not data. The
  // record is in the in-memory batch before this returns, which is all the
  // checkpoint rotation invariant needs (Rotate drains the batch into the
  // old segment).
  uint64_t AppendCellRoute(CellId cell, const CellRoute& route,
                           const Vocabulary& vocab);
  // Journals the *current* route of each cell in `cells` from `plan` — the
  // one call both runtimes make after an adjustment installed migrations.
  void AppendCellRoutes(const std::vector<CellId>& cells,
                        const PartitionPlan& plan, const Vocabulary& vocab);

  // Blocks until every appended record is durable per the sync mode.
  void Flush();
  void Close();
  // Crash simulation: joins the flusher, *discards* any batch it had not
  // written yet, and closes the file without the final drain Close()
  // performs — on-disk state is exactly what the sync mode had already
  // guaranteed at this instant. Appenders must be quiescent.
  void Abandon();

  // Failure drill (tests): trips the sticky I/O-error flag exactly as a
  // failed write would — blocked appenders are released (their appends
  // report non-durable) and healthy() goes false until the log is reopened.
  void ForceIoError();

  bool open() const;
  // Sticky: a write/flush/sync failure occurred. Blocked appends are
  // released when it trips (and return 0), and healthy() goes false —
  // records appended afterwards are NOT durable.
  bool io_error() const;
  bool healthy() const { return open() && !io_error(); }
  uint64_t next_lsn() const;
  const std::string path() const;

 private:
  uint64_t Append(RecordType type, const std::string& body,
                  bool wait_durable = true);
  void FlusherLoop();
  bool WriteLocked(const std::string& bytes);  // io_mu_ held
  // Opens (appending — see Rotate) the segment at `path`, writing the file
  // header when it is empty. Both locks held. nullptr on I/O failure.
  std::FILE* OpenSegment(const std::string& path, uint64_t seq);

  const Options options_;

  // Lock order: io_mu_ before mu_; never acquire io_mu_ while holding mu_.
  mutable std::mutex io_mu_;  // guards file_
  std::FILE* file_ = nullptr;

  mutable std::mutex mu_;  // guards everything below
  std::condition_variable pending_cv_;  // appenders -> flusher
  std::condition_variable durable_cv_;  // flusher -> blocked appenders
  std::string path_;
  std::string pending_;        // framed records awaiting the flusher
  uint64_t pending_hi_ = 0;    // highest LSN inside pending_
  uint64_t durable_lsn_ = 0;   // highest LSN written (+synced) to the file
  uint64_t next_lsn_ = 1;
  bool stop_ = false;
  bool io_error_ = false;
  std::thread flusher_;
};

// One decoded WAL record, yielded to the replay callback. Only the fields of
// the record's type are meaningful.
struct WalRecordView {
  Wal::RecordType type = Wal::RecordType::kSubscribe;
  uint64_t lsn = 0;
  STSQuery query;      // kSubscribe / kUpdate (terms interned into the
                       // replay vocab)
  QueryId query_id;    // kUnsubscribe
  CellId cell = 0;     // kCellRoute
  CellRoute route;     // kCellRoute
};

struct WalReplayStats {
  uint64_t records = 0;
  uint64_t subscribes = 0;
  uint64_t unsubscribes = 0;
  uint64_t cell_routes = 0;
  uint64_t updates = 0;
  uint64_t last_lsn = 0;
  uint64_t bytes_replayed = 0;
  // Torn/corrupt tail handling: bytes dropped from the end of the segment
  // (the file is physically truncated when `truncate_torn` is set).
  uint64_t truncated_bytes = 0;
  bool truncated = false;
};

// Replays the segment at `path`, interning record terms into `vocab` and
// invoking `fn` for records with lsn > `after_lsn` in file order. A torn or
// corrupt trailing record ends the replay; when `truncate_torn` is set the
// file is truncated back to the last valid record so the segment can be
// reopened for appending. Returns false only when the file cannot be read
// or its header is invalid — a torn tail is a *successful* recovery.
bool ReplayWal(const std::string& path, uint64_t after_lsn, Vocabulary& vocab,
               const std::function<void(WalRecordView&)>& fn,
               WalReplayStats* stats, bool truncate_torn = true);

}  // namespace ps2

#endif  // PS2_PERSIST_WAL_H_
