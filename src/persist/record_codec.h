#ifndef PS2_PERSIST_RECORD_CODEC_H_
#define PS2_PERSIST_RECORD_CODEC_H_

#include <utility>
#include <vector>

#include "common/bytes.h"
#include "core/query.h"

namespace ps2 {

// Shared CNF-query wire framing for the persist formats — WAL subscribe
// records and the checkpoint query section use the same shape and differ
// only in how a term is encoded (the WAL's hybrid string/raw-id encoding
// vs the checkpoint's positional u32 ids), which the caller supplies as a
// codec:
//   write_term(ByteWriter&, TermId)
//   read_term(ByteReader&) -> TermId
//
// Layout: u64 id, region f64 x4, u32 #clauses,
//         per clause: u32 #terms, term[]
// With `with_spec` (format version >= 2) the record appends the
// subscription-class fields: u8 class, f64 tau, u32 k. Version-1 readers
// never see them; version-2 readers decode version-1 records as boolean
// queries by passing with_spec = false.
template <typename WriteTermFn>
void WriteQueryRecord(ByteWriter& w, const STSQuery& q,
                      WriteTermFn&& write_term, bool with_spec = true) {
  w.Pod<uint64_t>(q.id);
  w.Pod<double>(q.region.min_x);
  w.Pod<double>(q.region.min_y);
  w.Pod<double>(q.region.max_x);
  w.Pod<double>(q.region.max_y);
  const auto& clauses = q.expr.clauses();
  w.Pod<uint32_t>(static_cast<uint32_t>(clauses.size()));
  for (const auto& clause : clauses) {
    w.Pod<uint32_t>(static_cast<uint32_t>(clause.size()));
    for (const TermId t : clause) write_term(w, t);
  }
  if (with_spec) {
    w.Pod<uint8_t>(static_cast<uint8_t>(q.cls));
    w.Pod<double>(q.tau);
    w.Pod<uint32_t>(q.k);
  }
}

// Returns false on malformed input (declared counts are sanity-capped
// against the remaining bytes before any reserve).
template <typename ReadTermFn>
bool ReadQueryRecord(ByteReader& r, STSQuery* q, ReadTermFn&& read_term,
                     bool with_spec = true) {
  q->id = r.Pod<uint64_t>();
  const double mnx = r.Pod<double>();
  const double mny = r.Pod<double>();
  const double mxx = r.Pod<double>();
  const double mxy = r.Pod<double>();
  q->region = Rect(mnx, mny, mxx, mxy);
  const uint32_t num_clauses = r.Pod<uint32_t>();
  if (!r.FitsCount(num_clauses, sizeof(uint32_t))) return false;
  std::vector<std::vector<TermId>> clauses;
  clauses.reserve(num_clauses);
  for (uint32_t c = 0; c < num_clauses && r.ok(); ++c) {
    const uint32_t n = r.Pod<uint32_t>();
    if (!r.FitsCount(n, sizeof(uint32_t))) return false;
    std::vector<TermId> clause;
    clause.reserve(n);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      clause.push_back(read_term(r));
    }
    clauses.push_back(std::move(clause));
  }
  if (!r.ok()) return false;
  q->expr = BoolExpr::Cnf(std::move(clauses));
  if (with_spec) {
    const uint8_t cls = r.Pod<uint8_t>();
    q->tau = r.Pod<double>();
    q->k = r.Pod<uint32_t>();
    if (!r.ok() || cls > static_cast<uint8_t>(SubscriptionClass::kTopK)) {
      return false;
    }
    q->cls = static_cast<SubscriptionClass>(cls);
  } else {
    q->cls = SubscriptionClass::kBoolean;
    q->tau = 0.0;
    q->k = 0;
  }
  return true;
}

}  // namespace ps2

#endif  // PS2_PERSIST_RECORD_CODEC_H_
