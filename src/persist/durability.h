#ifndef PS2_PERSIST_DURABILITY_H_
#define PS2_PERSIST_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "persist/checkpoint.h"
#include "persist/wal.h"

namespace ps2 {

// Knobs of the durability subsystem, embedded in PS2StreamOptions.
struct DurabilityConfig {
  bool enabled = false;
  std::string dir;
  Wal::SyncMode wal_sync = Wal::SyncMode::kFlush;
  // WAL records between automatic checkpoints; 0 = explicit Checkpoint()
  // calls only.
  uint64_t checkpoint_every = 0;
  // Embed the live RoutingSnapshot (H2) in checkpoints. Recovery rebuilds
  // H2 from the queries either way — the *assignment* (plan + installed
  // migrations) is always captured — so the embedded copy only feeds
  // inspection tooling and diagnostics. Off by default: at millions of
  // subscriptions it roughly doubles checkpoint size and, on the
  // synchronous path, adds a full routing-table snapshot build per
  // checkpoint.
  bool include_snapshot = false;
};

// Owns the on-disk layout of one durable service directory:
//
//   dir/
//     CURRENT                  "<seq>\n" — the committed checkpoint, updated
//                              by atomic rename; always names a fully
//                              written, CRC-valid checkpoint
//     checkpoint-<seq>.ps2c    state at the start of WAL segment <seq>
//     wal-<seq>.log            mutations after checkpoint <seq>
//
// Checkpoint protocol (caller = the facade thread; appends may continue
// concurrently from the controller thread):
//   1. BeginCheckpoint()   — flush + rotate the WAL to segment seq+1; every
//                            later mutation lands in the new segment
//   2. caller captures state (subscriptions map, plan copy, snapshot)
//   3. CommitCheckpoint()  — write checkpoint-<seq+1>, fsync-via-flush,
//                            commit CURRENT by rename, GC older files
// A crash between 1 and 3 is benign: CURRENT still names the old
// checkpoint, and recovery replays the *chain* of WAL segments from that
// seq forward, so records that already landed in the new segment are not
// lost.
class DurabilityManager {
 public:
  explicit DurabilityManager(DurabilityConfig config);
  ~DurabilityManager();

  // Fresh directory: writes checkpoint 1 from `view` (seq/last_lsn fields
  // are overridden) and opens wal-1.log. Creates `dir` if absent. Refuses
  // (returns false) when the directory already holds committed durable
  // state — that state belongs to a previous incarnation and must be
  // Restore()d or explicitly wiped, never silently overwritten.
  bool Initialize(const CheckpointView& view);

  // Recovered directory: reopens wal-<seq>.log for appending after
  // recovery truncated any torn tail. `next_lsn` continues the LSN
  // sequence past everything replayed.
  bool Resume(uint64_t seq, uint64_t next_lsn);

  Wal& wal() { return wal_; }
  bool open() const { return wal_.open(); }
  // Open and no sticky WAL I/O error — appends are actually being made
  // durable.
  bool healthy() const { return wal_.healthy(); }
  // Crash simulation: discards the WAL's unwritten batch and closes
  // without the graceful final drain (see Wal::Abandon).
  void Abandon() { wal_.Abandon(); }
  // Failure drill: trips the WAL's sticky I/O error (see Wal::ForceIoError);
  // the facade surfaces it as kDataLoss on the next mutation.
  void ForceIoError() { wal_.ForceIoError(); }
  uint64_t seq() const { return seq_; }

  // True when `checkpoint_every` WAL records accumulated since the last
  // checkpoint.
  bool ShouldCheckpoint() const;

  // Phase 1: rotates the WAL; returns the new checkpoint seq (0 on error).
  uint64_t BeginCheckpoint();
  // Phase 3: writes + commits the checkpoint file and GCs predecessors.
  // `view`'s seq/last_lsn are filled in by the manager.
  bool CommitCheckpoint(uint64_t seq, CheckpointView view);

  const DurabilityConfig& config() const { return config_; }

  // --- directory layout helpers --------------------------------------------
  static std::string CheckpointPath(const std::string& dir, uint64_t seq);
  static std::string WalPath(const std::string& dir, uint64_t seq);
  static std::string CurrentPath(const std::string& dir);
  // Reads CURRENT; 0 when missing/invalid.
  static uint64_t ReadCurrentSeq(const std::string& dir);

 private:
  bool CommitCurrent(uint64_t seq);
  void GarbageCollect(uint64_t keep_seq);

  DurabilityConfig config_;
  Wal wal_;
  uint64_t seq_ = 0;
  uint64_t last_checkpoint_lsn_ = 0;  // WAL high-water at the last checkpoint
  uint64_t pending_last_lsn_ = 0;     // set by BeginCheckpoint
  uint64_t gc_floor_ = 1;             // seqs below this are already GC'd
};

// Everything recovery reconstructed from a durable directory: the latest
// committed checkpoint plus the replayed WAL chain, torn tail truncated.
struct RecoveredState {
  Vocabulary vocab;
  PartitionPlan plan;
  std::vector<STSQuery> queries;  // live subscriptions, insertion order
  QueryId next_query_id = 1;
  ObjectId next_object_id = 1;
  uint64_t checkpoint_seq = 0;
  uint64_t last_lsn = 0;  // LSN high-water across checkpoint + WAL replay
  bool had_snapshot = false;
  RoutingSnapshot snapshot;  // checkpoint-time H2 (diagnostic)
  // Continuous top-k heap state at checkpoint time. Candidates arriving
  // after the checkpoint are not journaled (objects are ephemeral stream
  // data), so this is the heap as of the recovery point.
  TopKCheckpoint topk;
  WalReplayStats wal;  // aggregated over the replayed segment chain
  int wal_segments = 0;
};

// Loads the latest valid checkpoint at `dir`, replays the WAL segment chain
// (applying subscriptions, unsubscriptions and cell-route rewrites), and —
// when `truncate_torn` is set — physically truncates a torn trailing
// record so logging can resume on the segment. Pass false for read-only
// inspection (plan_inspector does): the directory is then never mutated
// and the corrupt tail bytes stay available as evidence. Returns false
// when the directory holds no committed checkpoint or the committed
// checkpoint fails validation.
bool RecoverState(const std::string& dir, RecoveredState* out,
                  bool truncate_torn = true);

}  // namespace ps2

#endif  // PS2_PERSIST_DURABILITY_H_
