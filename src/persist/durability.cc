#include "persist/durability.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <unordered_map>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ps2 {

namespace fs = std::filesystem;

namespace {

// Makes renames/creations/unlinks inside `dir` durable: without an fsync of
// the directory itself, an OS crash can persist a file's data but not its
// directory entry (or a rename), leaving CURRENT pointing at nothing.
void SyncDirectory(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)dir;
#endif
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityConfig config)
    : config_(std::move(config)), wal_(Wal::Options{config_.wal_sync}) {}

DurabilityManager::~DurabilityManager() { wal_.Close(); }

std::string DurabilityManager::CheckpointPath(const std::string& dir,
                                              uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/checkpoint-%06llu.ps2c",
                static_cast<unsigned long long>(seq));
  return dir + buf;
}

std::string DurabilityManager::WalPath(const std::string& dir, uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return dir + buf;
}

std::string DurabilityManager::CurrentPath(const std::string& dir) {
  return dir + "/CURRENT";
}

uint64_t DurabilityManager::ReadCurrentSeq(const std::string& dir) {
  std::FILE* f = std::fopen(CurrentPath(dir).c_str(), "rb");
  if (f == nullptr) return 0;
  char buf[32] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return 0;
  return std::strtoull(buf, nullptr, 10);
}

bool DurabilityManager::Initialize(const CheckpointView& view) {
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) return false;
  // Never initialize over existing durable state: rewriting CURRENT and
  // appending to an old WAL segment with restarted LSNs would interleave
  // two incarnations' records. The caller either Restore()s this
  // directory or wipes it explicitly.
  if (ReadCurrentSeq(config_.dir) != 0) return false;
  CheckpointView v = view;
  v.seq = 1;
  v.last_lsn = 0;
  if (!WriteCheckpointFile(CheckpointPath(config_.dir, 1), v)) return false;
  if (!CommitCurrent(1)) return false;
  if (!wal_.Open(WalPath(config_.dir, 1), 1, 1)) return false;
  seq_ = 1;
  last_checkpoint_lsn_ = 0;
  return true;
}

bool DurabilityManager::Resume(uint64_t seq, uint64_t next_lsn) {
  // Recovery's timeline ends at segment `seq` (a torn record cuts the
  // chain there). Any segment beyond it holds records of the previous
  // incarnation that recovery did NOT apply — if one survived, a later
  // rotation would append this incarnation's records after the stale ones
  // and the next recovery would resurrect them. Remove them first.
  std::error_code ec;
  for (uint64_t s = seq + 1;; ++s) {
    const std::string stale = WalPath(config_.dir, s);
    if (!fs::exists(stale, ec) || ec) break;
    fs::remove(stale, ec);
    if (ec) return false;
  }
  if (!wal_.Open(WalPath(config_.dir, seq), seq, next_lsn)) return false;
  seq_ = seq;
  // Resume counts records toward the next automatic checkpoint from here;
  // the backlog already replayed is the caller's cue to checkpoint early.
  last_checkpoint_lsn_ = next_lsn - 1;
  return true;
}

bool DurabilityManager::ShouldCheckpoint() const {
  return config_.checkpoint_every > 0 &&
         wal_.next_lsn() - 1 >= last_checkpoint_lsn_ + config_.checkpoint_every;
}

uint64_t DurabilityManager::BeginCheckpoint() {
  if (!wal_.open()) return 0;
  const uint64_t next_seq = seq_ + 1;
  pending_last_lsn_ = wal_.next_lsn() - 1;
  if (!wal_.Rotate(WalPath(config_.dir, next_seq), next_seq)) return 0;
  return next_seq;
}

bool DurabilityManager::CommitCheckpoint(uint64_t seq, CheckpointView view) {
  view.seq = seq;
  view.last_lsn = pending_last_lsn_;
  if (!WriteCheckpointFile(CheckpointPath(config_.dir, seq), view)) {
    return false;
  }
  if (!CommitCurrent(seq)) return false;
  seq_ = seq;
  last_checkpoint_lsn_ = pending_last_lsn_;
  GarbageCollect(seq);
  return true;
}

bool DurabilityManager::CommitCurrent(uint64_t seq) {
  const std::string tmp = CurrentPath(config_.dir) + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return false;
    char buf[32];
    const int n = std::snprintf(buf, sizeof(buf), "%llu\n",
                                static_cast<unsigned long long>(seq));
    bool ok = std::fwrite(buf, 1, n, f) == static_cast<size_t>(n) &&
              std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
    ok = ok && ::fdatasync(::fileno(f)) == 0;
#endif
    std::fclose(f);
    if (!ok) return false;
  }
  // The new checkpoint file's directory entry must be durable before
  // CURRENT references it.
  SyncDirectory(config_.dir);
  std::error_code ec;
  fs::rename(tmp, CurrentPath(config_.dir), ec);  // atomic commit point
  if (ec) return false;
  SyncDirectory(config_.dir);
  return true;
}

void DurabilityManager::GarbageCollect(uint64_t keep_seq) {
  // Everything below gc_floor_ was already removed by earlier passes (the
  // first pass of a process sweeps from 1, also catching leftovers of a
  // predecessor that crashed before its GC) — without the floor, a
  // long-lived service would pay O(total checkpoints ever) no-op unlinks
  // per checkpoint, inline on the subscribe path.
  std::error_code ec;
  for (uint64_t s = gc_floor_; s < keep_seq; ++s) {
    fs::remove(CheckpointPath(config_.dir, s), ec);
    fs::remove(WalPath(config_.dir, s), ec);
  }
  gc_floor_ = std::max(gc_floor_, keep_seq);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

bool RecoverState(const std::string& dir, RecoveredState* out,
                  bool truncate_torn) {
  const uint64_t seq = DurabilityManager::ReadCurrentSeq(dir);
  if (seq == 0) return false;
  CheckpointData ckpt;
  if (!ReadCheckpointFile(DurabilityManager::CheckpointPath(dir, seq),
                          &ckpt)) {
    return false;
  }
  out->vocab = std::move(ckpt.vocab);
  out->plan = std::move(ckpt.plan);
  out->checkpoint_seq = seq;
  out->last_lsn = ckpt.last_lsn;
  out->next_query_id = ckpt.next_query_id;
  out->next_object_id = ckpt.next_object_id;
  out->had_snapshot = ckpt.has_snapshot;
  if (ckpt.has_snapshot) out->snapshot = std::move(ckpt.snapshot);
  out->topk = std::move(ckpt.topk);

  // Live set: checkpointed queries + WAL subscribe/unsubscribe deltas.
  // Insertion order is preserved so recovery re-inserts queries in the
  // order they originally arrived.
  std::vector<STSQuery> live = std::move(ckpt.queries);
  // Unsubscribed entries are marked dead in place (not by mangling the id:
  // id 0 is a legal query id) and compacted at the end.
  std::vector<char> dead(live.size(), 0);
  std::unordered_map<QueryId, size_t> index;
  index.reserve(live.size());
  for (size_t i = 0; i < live.size(); ++i) index[live[i].id] = i;

  // Replay the WAL segment chain from the committed checkpoint forward. A
  // crash between BeginCheckpoint and CommitCheckpoint leaves records of
  // the *next* (uncommitted) segment live — walking the chain picks them
  // up; LSN filtering makes overlaps harmless.
  uint64_t after_lsn = ckpt.last_lsn;
  for (uint64_t s = seq;; ++s) {
    const std::string wal_path = DurabilityManager::WalPath(dir, s);
    std::error_code ec;
    if (!std::filesystem::exists(wal_path, ec) || ec) break;
    WalReplayStats stats;
    const bool ok = ReplayWal(
        wal_path, after_lsn, out->vocab,
        [&](WalRecordView& rec) {
          switch (rec.type) {
            case Wal::RecordType::kSubscribe:
            case Wal::RecordType::kUpdate: {
              // kUpdate is the complete replacement subscription and replays
              // as an upsert — identical handling to kSubscribe, so an
              // update chain converges on the last write in LSN order.
              // Every replayed id advances the high-water, even if a later
              // unsubscribe kills the query — reissuing a dead id would
              // cross-wire a client still holding it.
              out->next_query_id =
                  std::max(out->next_query_id, rec.query.id + 1);
              auto it = index.find(rec.query.id);
              if (it != index.end()) {
                live[it->second] = std::move(rec.query);
                dead[it->second] = 0;
              } else {
                index[rec.query.id] = live.size();
                live.push_back(std::move(rec.query));
                dead.push_back(0);
              }
              break;
            }
            case Wal::RecordType::kUnsubscribe: {
              auto it = index.find(rec.query_id);
              if (it != index.end()) {
                dead[it->second] = 1;
                index.erase(it);
              }
              break;
            }
            case Wal::RecordType::kCellRoute:
              if (rec.cell < out->plan.cells.size()) {
                out->plan.cells[rec.cell] = rec.route;
              }
              break;
          }
        },
        &stats, truncate_torn);
    if (!ok) break;  // unreadable segment ends the chain, keep what we have
    ++out->wal_segments;
    out->wal.records += stats.records;
    out->wal.subscribes += stats.subscribes;
    out->wal.unsubscribes += stats.unsubscribes;
    out->wal.cell_routes += stats.cell_routes;
    out->wal.updates += stats.updates;
    out->wal.bytes_replayed += stats.bytes_replayed;
    out->wal.truncated |= stats.truncated;
    out->wal.truncated_bytes += stats.truncated_bytes;
    if (stats.last_lsn > 0) {
      out->wal.last_lsn = stats.last_lsn;
      out->last_lsn = std::max(out->last_lsn, stats.last_lsn);
      after_lsn = std::max(after_lsn, stats.last_lsn);
    }
    if (stats.truncated) break;  // nothing after a torn tail is trustworthy
  }

  out->queries.clear();
  out->queries.reserve(index.size());
  for (size_t i = 0; i < live.size(); ++i) {
    if (!dead[i]) {
      out->next_query_id = std::max(out->next_query_id, live[i].id + 1);
      out->queries.push_back(std::move(live[i]));
    }
  }
  return true;
}

}  // namespace ps2
