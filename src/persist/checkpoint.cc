#include "persist/checkpoint.h"

#include <cstdio>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/bytes.h"
#include "dispatch/snapshot_serde.h"
#include "partition/plan_serde.h"
#include "persist/record_codec.h"

namespace ps2 {
namespace {

constexpr char kCheckpointMagic[4] = {'P', 'S', '2', 'C'};
// v2 appended the subscription-class fields to query records and the
// optional top-k section. v1 files still load (boolean queries, no top-k).
constexpr uint32_t kCheckpointVersion = 2;

}  // namespace

bool WriteCheckpointFile(const std::string& path, const CheckpointView& view) {
  ByteWriter p;
  p.Pod<uint64_t>(view.seq);
  p.Pod<uint64_t>(view.last_lsn);
  p.Pod<uint64_t>(view.next_query_id);
  p.Pod<uint64_t>(view.next_object_id);

  const Vocabulary& vocab = *view.vocab;
  p.Pod<uint64_t>(vocab.size());
  for (size_t i = 0; i < vocab.size(); ++i) {
    const TermId t = static_cast<TermId>(i);
    p.Str(vocab.TermString(t));
    p.Pod<uint64_t>(vocab.Count(t));
  }

  WritePlan(p, *view.plan);

  p.Pod<uint8_t>(view.snapshot != nullptr ? 1 : 0);
  if (view.snapshot != nullptr) WriteSnapshot(p, *view.snapshot);

  p.Pod<uint64_t>(view.queries.size());
  for (const STSQuery* q : view.queries) {
    WriteQueryRecord(
        p, *q, [](ByteWriter& out, TermId t) { out.Pod<uint32_t>(t); });
  }

  const bool has_topk = view.topk != nullptr && !view.topk->empty();
  p.Pod<uint8_t>(has_topk ? 1 : 0);
  if (has_topk) {
    p.Pod<int64_t>(view.topk->watermark_us);
    p.Pod<uint64_t>(view.topk->entries.size());
    for (const TopKEntry& e : view.topk->entries) {
      p.Pod<uint64_t>(e.query_id);
      p.Pod<uint64_t>(e.object_id);
      p.Pod<double>(e.score);
      p.Pod<int64_t>(e.expire_us);
      p.Pod<int64_t>(e.publish_us);
      p.Pod<uint8_t>(e.held ? 1 : 0);
      p.Pod<uint8_t>(e.delivered ? 1 : 0);
    }
  }

  ByteWriter header;
  header.Bytes(kCheckpointMagic, 4);
  header.Pod<uint32_t>(kCheckpointVersion);
  header.Pod<uint64_t>(p.size());
  header.Pod<uint32_t>(Crc32(p.buffer()));

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) return false;
  if (std::fwrite(header.buffer().data(), 1, header.size(), file.get()) !=
          header.size() ||
      std::fwrite(p.buffer().data(), 1, p.size(), file.get()) != p.size()) {
    return false;
  }
  if (std::fflush(file.get()) != 0) return false;
#if defined(__unix__) || defined(__APPLE__)
  // The previous checkpoint generation is garbage-collected right after the
  // commit, so this file must actually be on disk — not just in the page
  // cache — before CURRENT can point at it.
  if (::fdatasync(::fileno(file.get())) != 0) return false;
#endif
  return true;
}

bool ReadCheckpointFile(const std::string& path, CheckpointData* out) {
  std::string data;
  {
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    if (file == nullptr) return false;
    std::fseek(file.get(), 0, SEEK_END);
    const long size = std::ftell(file.get());
    std::fseek(file.get(), 0, SEEK_SET);
    if (size < 0) return false;
    data.resize(static_cast<size_t>(size));
    if (std::fread(data.data(), 1, data.size(), file.get()) != data.size()) {
      return false;
    }
  }

  ByteReader h(data);
  char magic[4];
  h.Bytes(magic, 4);
  if (!h.ok() || std::memcmp(magic, kCheckpointMagic, 4) != 0) return false;
  const uint32_t version = h.Pod<uint32_t>();
  if (version < 1 || version > kCheckpointVersion) return false;
  const bool with_spec = version >= 2;
  const uint64_t payload_len = h.Pod<uint64_t>();
  const uint32_t crc = h.Pod<uint32_t>();
  if (!h.ok() || payload_len != h.remaining()) return false;
  const char* payload = data.data() + h.pos();
  if (Crc32(payload, payload_len) != crc) return false;

  ByteReader r(payload, payload_len);
  out->seq = r.Pod<uint64_t>();
  out->last_lsn = r.Pod<uint64_t>();
  out->next_query_id = r.Pod<uint64_t>();
  out->next_object_id = r.Pod<uint64_t>();

  const uint64_t num_terms = r.Pod<uint64_t>();
  if (!r.FitsCount(num_terms, sizeof(uint32_t) + sizeof(uint64_t))) {
    return false;
  }
  std::vector<TermId> remap;
  remap.reserve(num_terms);
  for (uint64_t i = 0; i < num_terms && r.ok(); ++i) {
    const std::string term = r.Str();
    const uint64_t count = r.Pod<uint64_t>();
    if (!r.ok()) return false;
    const TermId id = out->vocab.Intern(term);
    if (count > 0) out->vocab.AddCount(id, count);
    remap.push_back(id);
  }

  if (!ReadPlan(r, remap, &out->plan)) return false;

  const uint8_t has_snapshot = r.Pod<uint8_t>();
  out->has_snapshot = has_snapshot != 0;
  if (out->has_snapshot && !ReadSnapshot(r, remap, &out->snapshot)) {
    return false;
  }

  const uint64_t num_queries = r.Pod<uint64_t>();
  if (!r.FitsCount(num_queries, sizeof(uint64_t) + 4 * sizeof(double))) {
    return false;
  }
  out->queries.clear();
  out->queries.reserve(num_queries);
  for (uint64_t i = 0; i < num_queries && r.ok(); ++i) {
    STSQuery q;
    const bool ok = ReadQueryRecord(
        r, &q,
        [&](ByteReader& in) {
          const uint32_t file_term = in.Pod<uint32_t>();
          // Raw-id-world terms (no string ever interned) pass through.
          return file_term < remap.size() ? remap[file_term] : file_term;
        },
        with_spec);
    if (!ok) return false;
    out->queries.push_back(std::move(q));
  }

  out->topk = TopKCheckpoint{};
  if (with_spec) {
    const uint8_t has_topk = r.Pod<uint8_t>();
    if (!r.ok()) return false;
    if (has_topk != 0) {
      out->topk.watermark_us = r.Pod<int64_t>();
      const uint64_t num_entries = r.Pod<uint64_t>();
      constexpr size_t kEntryBytes =
          2 * sizeof(uint64_t) + sizeof(double) + 2 * sizeof(int64_t) + 2;
      if (!r.FitsCount(num_entries, kEntryBytes)) return false;
      out->topk.entries.reserve(num_entries);
      for (uint64_t i = 0; i < num_entries && r.ok(); ++i) {
        TopKEntry e;
        e.query_id = r.Pod<uint64_t>();
        e.object_id = r.Pod<uint64_t>();
        e.score = r.Pod<double>();
        e.expire_us = r.Pod<int64_t>();
        e.publish_us = r.Pod<int64_t>();
        e.held = r.Pod<uint8_t>() != 0;
        e.delivered = r.Pod<uint8_t>() != 0;
        out->topk.entries.push_back(e);
      }
    }
  }
  return r.ok();
}

}  // namespace ps2
