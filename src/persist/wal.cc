#include "persist/wal.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/bytes.h"
#include "persist/record_codec.h"

namespace ps2 {
namespace {

constexpr char kWalMagic[4] = {'P', 'S', '2', 'W'};
// v2 appended the subscription-class fields (u8 class, f64 tau, u32 k) to
// query-bearing records and introduced kUpdate. v1 segments replay as
// boolean subscriptions.
constexpr uint32_t kWalVersion = 2;
// Frame header: u32 payload length + u32 payload crc.
constexpr size_t kFrameHeader = 2 * sizeof(uint32_t);
// A single mutation record is small; anything bigger is corruption.
constexpr uint32_t kMaxRecordBytes = 1u << 24;

// Hybrid term encoding: a term the vocabulary knows by string travels as
// its string (stable across vocabulary drift between checkpoint and
// replay); a term the service only ever saw as a raw id (embeddings that
// tokenize externally and Subscribe/Publish with pre-assigned TermIds — the
// facade's vocabulary then holds no strings at all) travels as the id
// itself, which recovery preserves verbatim.
void WriteTerm(ByteWriter& w, TermId t, const Vocabulary& vocab) {
  if (t < vocab.size()) {
    w.Pod<uint8_t>(1);
    w.Str(vocab.TermString(t));
  } else {
    w.Pod<uint8_t>(0);
    w.Pod<uint32_t>(t);
  }
}

TermId ReadTerm(ByteReader& r, Vocabulary& vocab) {
  if (r.Pod<uint8_t>() != 0) return vocab.Intern(r.Str());
  return r.Pod<uint32_t>();
}

void WriteQueryBody(ByteWriter& w, const STSQuery& q,
                    const Vocabulary& vocab) {
  WriteQueryRecord(
      w, q, [&](ByteWriter& out, TermId t) { WriteTerm(out, t, vocab); });
}

bool ReadQueryBody(ByteReader& r, Vocabulary& vocab, STSQuery* q,
                   bool with_spec) {
  return ReadQueryRecord(
      r, q, [&](ByteReader& in) { return ReadTerm(in, vocab); }, with_spec);
}

}  // namespace

Wal::Wal() : Wal(Options{}) {}

Wal::Wal(Options options) : options_(options) {}

Wal::~Wal() { Close(); }

constexpr size_t kSegmentHeaderBytes = 4 + sizeof(uint32_t) + sizeof(uint64_t);

std::FILE* Wal::OpenSegment(const std::string& path, uint64_t seq) {
  // Append, never truncate a valid segment: the target may be an existing
  // one — an orphan from a checkpoint whose commit failed (a retried
  // checkpoint reuses the same seq) or a recovered segment being resumed —
  // and its records were acknowledged durable.
  std::FILE* f = std::fopen(path.c_str(), "ab+");
  if (f == nullptr) return nullptr;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size > 0 && static_cast<size_t>(size) < kSegmentHeaderBytes) {
    // A crash tore the header write itself: nothing after it could ever
    // replay, so restart the segment from scratch.
    std::fclose(f);
    std::error_code ec;
    std::filesystem::resize_file(path, 0, ec);
    if (ec) return nullptr;
    f = std::fopen(path.c_str(), "ab+");
    if (f == nullptr) return nullptr;
    size = 0;
  }
  if (size == 0) {
    ByteWriter header;
    header.Bytes(kWalMagic, 4);
    header.Pod<uint32_t>(kWalVersion);
    header.Pod<uint64_t>(seq);
    if (std::fwrite(header.buffer().data(), 1, header.size(), f) !=
            header.size() ||
        std::fflush(f) != 0) {
      std::fclose(f);
      return nullptr;
    }
  } else {
    // Appending after a corrupt header would make every new record
    // unreplayable while still acknowledging it — refuse instead.
    char magic[4];
    std::fseek(f, 0, SEEK_SET);
    const bool header_ok =
        std::fread(magic, 1, 4, f) == 4 &&
        std::memcmp(magic, kWalMagic, 4) == 0;
    std::fseek(f, 0, SEEK_END);
    if (!header_ok) {
      std::fclose(f);
      return nullptr;
    }
  }
  return f;
}

bool Wal::Open(const std::string& path, uint64_t seq, uint64_t next_lsn) {
  std::lock_guard<std::mutex> io(io_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return false;
  std::FILE* f = OpenSegment(path, seq);
  if (f == nullptr) return false;
  file_ = f;
  path_ = path;
  next_lsn_ = next_lsn;
  durable_lsn_ = next_lsn - 1;
  pending_hi_ = durable_lsn_;
  stop_ = false;
  io_error_ = false;
  if (!flusher_.joinable()) {
    flusher_ = std::thread(&Wal::FlusherLoop, this);
  }
  return true;
}

bool Wal::Rotate(const std::string& path, uint64_t seq) {
  Flush();
  std::lock_guard<std::mutex> io(io_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return false;
  // Drain any record that raced in between Flush() and the locks — the old
  // segment must be complete before the checkpoint captures state.
  if (!pending_.empty()) {
    if (!WriteLocked(pending_)) io_error_ = true;
    durable_lsn_ = std::max(durable_lsn_, pending_hi_);
    pending_.clear();
    durable_cv_.notify_all();
  }
  std::fclose(file_);
  file_ = nullptr;
  std::FILE* f = OpenSegment(path, seq);
  if (f == nullptr) return false;
  file_ = f;
  path_ = path;
  return true;
}

uint64_t Wal::AppendSubscribe(const STSQuery& q, const Vocabulary& vocab) {
  ByteWriter body;
  WriteQueryBody(body, q, vocab);
  return Append(RecordType::kSubscribe, body.buffer());
}

uint64_t Wal::AppendUpdate(const STSQuery& q, const Vocabulary& vocab) {
  ByteWriter body;
  WriteQueryBody(body, q, vocab);
  return Append(RecordType::kUpdate, body.buffer());
}

uint64_t Wal::AppendUnsubscribe(QueryId id) {
  ByteWriter body;
  body.Pod<uint64_t>(id);
  return Append(RecordType::kUnsubscribe, body.buffer());
}

uint64_t Wal::AppendCellRoute(CellId cell, const CellRoute& route,
                              const Vocabulary& vocab) {
  ByteWriter body;
  body.Pod<uint32_t>(cell);
  body.Pod<uint8_t>(route.IsText() ? 1 : 0);
  if (!route.IsText()) {
    body.Pod<int32_t>(route.worker);
  } else {
    body.Pod<uint32_t>(static_cast<uint32_t>(route.text->workers().size()));
    for (const WorkerId w : route.text->workers()) body.Pod<int32_t>(w);
    body.Pod<uint32_t>(static_cast<uint32_t>(route.text->term_map().size()));
    for (const auto& [term, worker] : route.text->term_map()) {
      WriteTerm(body, term, vocab);
      body.Pod<int32_t>(worker);
    }
  }
  return Append(RecordType::kCellRoute, body.buffer(),
                /*wait_durable=*/false);
}

void Wal::AppendCellRoutes(const std::vector<CellId>& cells,
                           const PartitionPlan& plan,
                           const Vocabulary& vocab) {
  for (const CellId cell : cells) {
    if (cell < plan.cells.size()) {
      AppendCellRoute(cell, plan.cells[cell], vocab);
    }
  }
}

uint64_t Wal::Append(RecordType type, const std::string& body,
                     bool wait_durable) {
  std::unique_lock<std::mutex> lock(mu_);
  if ((file_ == nullptr && path_.empty()) || io_error_) return 0;
  const uint64_t lsn = next_lsn_++;
  ByteWriter payload;
  payload.Pod<uint8_t>(static_cast<uint8_t>(type));
  payload.Pod<uint64_t>(lsn);
  payload.Bytes(body.data(), body.size());
  ByteWriter frame;
  frame.Pod<uint32_t>(static_cast<uint32_t>(payload.size()));
  frame.Pod<uint32_t>(Crc32(payload.buffer()));
  pending_ += frame.buffer();
  pending_ += payload.buffer();
  pending_hi_ = lsn;
  pending_cv_.notify_one();
  if (wait_durable && options_.sync != SyncMode::kAsync) {
    durable_cv_.wait(lock, [&] {
      return durable_lsn_ >= lsn || stop_ || io_error_;
    });
    if (io_error_) return 0;  // released by a failed flush: not durable
  }
  return lsn;
}

void Wal::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = pending_hi_;
  pending_cv_.notify_one();
  durable_cv_.wait(lock, [&] {
    return durable_lsn_ >= target || stop_ || io_error_;
  });
}

void Wal::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && file_ == nullptr) return;
    stop_ = true;
    pending_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> io(io_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  if (!pending_.empty()) {
    WriteLocked(pending_);
    durable_lsn_ = std::max(durable_lsn_, pending_hi_);
    pending_.clear();
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  durable_cv_.notify_all();
}

void Wal::Abandon() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    pending_.clear();  // crash: unacknowledged batch dies
    durable_lsn_ = std::max(durable_lsn_, pending_hi_);
    pending_cv_.notify_all();
    durable_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> io(io_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool Wal::open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

bool Wal::io_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_error_;
}

void Wal::ForceIoError() {
  std::lock_guard<std::mutex> lock(mu_);
  io_error_ = true;
  durable_cv_.notify_all();
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

const std::string Wal::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

void Wal::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    pending_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    std::string batch;
    batch.swap(pending_);
    const uint64_t hi = pending_hi_;
    lock.unlock();
    bool ok;
    {
      std::lock_guard<std::mutex> io(io_mu_);
      ok = WriteLocked(batch);
    }
    lock.lock();
    if (!ok) io_error_ = true;
    // Advance even on error so blocked appenders are released; the error is
    // sticky and observable.
    durable_lsn_ = std::max(durable_lsn_, hi);
    durable_cv_.notify_all();
    if (stop_ && pending_.empty()) return;
  }
}

bool Wal::WriteLocked(const std::string& bytes) {
  if (file_ == nullptr) return false;
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return false;
  }
  if (std::fflush(file_) != 0) return false;
#if defined(__unix__) || defined(__APPLE__)
  if (options_.sync == SyncMode::kSync) {
    if (::fdatasync(::fileno(file_)) != 0) return false;
  }
#endif
  return true;
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

bool ReplayWal(const std::string& path, uint64_t after_lsn, Vocabulary& vocab,
               const std::function<void(WalRecordView&)>& fn,
               WalReplayStats* stats, bool truncate_torn) {
  std::string data;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
      std::fclose(f);
      return false;
    }
    data.resize(static_cast<size_t>(size));
    const size_t read = std::fread(data.data(), 1, data.size(), f);
    std::fclose(f);
    if (read != data.size()) return false;
  }

  ByteReader r(data);
  char magic[4];
  r.Bytes(magic, 4);
  if (!r.ok() || std::memcmp(magic, kWalMagic, 4) != 0) return false;
  const uint32_t version = r.Pod<uint32_t>();
  if (version < 1 || version > kWalVersion) return false;
  const bool with_spec = version >= 2;
  r.Pod<uint64_t>();  // segment seq (informational)
  if (!r.ok()) return false;

  size_t good = r.pos();
  while (r.remaining() > 0) {
    if (r.remaining() < kFrameHeader) break;  // torn frame header
    const uint32_t len = r.Pod<uint32_t>();
    const uint32_t crc = r.Pod<uint32_t>();
    if (!r.ok() || len > kMaxRecordBytes || len > r.remaining()) break;
    const char* payload = data.data() + r.pos();
    if (Crc32(payload, len) != crc) break;  // torn or bit-flipped record
    r.Skip(len);

    ByteReader pr(payload, len);
    WalRecordView view;
    view.type = static_cast<Wal::RecordType>(pr.Pod<uint8_t>());
    view.lsn = pr.Pod<uint64_t>();
    bool decoded = pr.ok();
    if (decoded) {
      switch (view.type) {
        case Wal::RecordType::kSubscribe:
          decoded = ReadQueryBody(pr, vocab, &view.query, with_spec);
          stats->subscribes += decoded ? 1 : 0;
          break;
        case Wal::RecordType::kUpdate:
          decoded = ReadQueryBody(pr, vocab, &view.query, with_spec);
          stats->updates += decoded ? 1 : 0;
          break;
        case Wal::RecordType::kUnsubscribe:
          view.query_id = pr.Pod<uint64_t>();
          decoded = pr.ok();
          stats->unsubscribes += decoded ? 1 : 0;
          break;
        case Wal::RecordType::kCellRoute: {
          view.cell = pr.Pod<uint32_t>();
          const uint8_t is_text = pr.Pod<uint8_t>();
          if (is_text == 0) {
            view.route.worker = pr.Pod<int32_t>();
          } else {
            const uint32_t num_workers = pr.Pod<uint32_t>();
            if (!pr.FitsCount(num_workers, sizeof(int32_t))) {
              decoded = false;
              break;
            }
            std::vector<WorkerId> workers;
            workers.reserve(num_workers);
            for (uint32_t i = 0; i < num_workers && pr.ok(); ++i) {
              workers.push_back(pr.Pod<int32_t>());
            }
            const uint32_t num_terms = pr.Pod<uint32_t>();
            if (!pr.FitsCount(num_terms,
                              sizeof(uint32_t) + sizeof(int32_t))) {
              decoded = false;
              break;
            }
            std::unordered_map<TermId, WorkerId> term_map;
            term_map.reserve(num_terms);
            for (uint32_t i = 0; i < num_terms && pr.ok(); ++i) {
              const TermId term = ReadTerm(pr, vocab);
              const int32_t worker = pr.Pod<int32_t>();
              term_map[term] = worker;
            }
            if (!pr.ok()) {
              decoded = false;
              break;
            }
            view.route.text = std::make_shared<const TermRouter>(
                std::move(term_map), std::move(workers));
            if (!view.route.text->workers().empty()) {
              view.route.worker = view.route.text->workers().front();
            }
          }
          decoded = decoded && pr.ok();
          stats->cell_routes += decoded ? 1 : 0;
          break;
        }
        default:
          decoded = false;
      }
    }
    if (!decoded) break;  // corrupt payload that still passed CRC length
    ++stats->records;
    stats->last_lsn = view.lsn;
    good = r.pos();
    if (view.lsn > after_lsn) fn(view);
  }

  stats->bytes_replayed = good;
  if (good < data.size()) {
    stats->truncated = true;
    stats->truncated_bytes = data.size() - good;
    if (truncate_torn) {
      std::error_code ec;
      std::filesystem::resize_file(path, good, ec);
      if (ec) return false;
    }
  }
  return true;
}

}  // namespace ps2
