#ifndef PS2_SHARD_SHARDED_ENGINE_H_
#define PS2_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adjust/shard_balancer.h"
#include "api/delivery_sink.h"
#include "api/status.h"
#include "common/dedup_window.h"
#include "core/workload_stats.h"
#include "persist/durability.h"
#include "runtime/metrics.h"
#include "runtime/threaded_engine.h"
#include "shard/reliable.h"
#include "shard/shard_map.h"
#include "shard/supervisor.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace ps2 {

// Fabric-level knobs, embedded in PS2StreamOptions. num_shards > 1 turns
// the facade's single engine into a ShardedEngine fleet; everything else
// (partitioner, cluster, engine, durability config) is reused from the
// facade's existing options, applied per shard.
struct ShardFabricOptions {
  // Engine shards behind the facade. 1 (the default) = no fabric, the
  // facade runs its classic single engine. Capped at 64 (the front tracks
  // query placement as a 64-bit shard mask).
  int num_shards = 1;
  // Cross-shard auto-rebalancing: every `rebalance_check_interval` posts,
  // plan hot-cell migrations whenever the per-shard object-load balance
  // factor exceeds `rebalance_sigma`, and execute them inline on the
  // posting thread (the fabric's control plane).
  bool auto_rebalance = false;
  size_t rebalance_check_interval = 100000;
  double rebalance_sigma = 1.5;
  size_t rebalance_max_moves = 4;
  // --- fault tolerance ------------------------------------------------------
  // Retransmission schedule of every reliable link (control frames front ->
  // shard, match/drain-ack frames shard -> front). Exhausting it is the
  // fabric's failure detector.
  RetryPolicy retry;
  // Supervisor policy: consecutive failed restart cycles before a shard is
  // quarantined (degraded mode).
  int max_restarts = 3;
  // Posts between automatic CheckHealth() probe sweeps; 0 = probes only via
  // explicit CheckHealth() calls (every acked control frame already doubles
  // as a liveness signal, so probes matter for idle shards).
  size_t health_probe_interval = 0;
  // Seed of the links' backoff-jitter RNG (deterministic tests).
  uint64_t link_seed = 0x51ED5EEDULL;
  // Transport override threaded through PS2StreamOptions — the hook tests
  // use to wrap the loopback in a FaultInjectingTransport. Not owned;
  // nullptr = the fabric owns a plain loopback.
  Transport* transport = nullptr;
};

// Everything the fabric needs from the facade's option set.
struct ShardedEngineConfig {
  ShardFabricOptions fabric;
  std::string partitioner = "hybrid";
  PartitionConfig partition;
  ClusterOptions cluster;
  EngineOptions engine;          // per-shard threaded engine
  DurabilityConfig durability;   // dir = fabric root; shard-<i>/ underneath
  size_t dedup_window_capacity = 1 << 16;  // per-shard egress dedup
};

// Cross-shard migration outcome (the fabric analogue of MigrationStats).
struct ShardMigrationStats {
  size_t queries_copied = 0;   // insert frames shipped to the new owner
  size_t queries_removed = 0;  // source copies retired after the drain
  size_t bytes = 0;            // wire bytes of the copy phase
};

// Fault-tolerance tallies of the fabric (mirrored into the fleet RunReport
// by Stop(); readable live through fault_stats()).
struct FabricFaultStats {
  uint64_t transport_errors = 0;   // Transport::Send() returned false
  uint64_t frame_retries = 0;      // reliable-link retransmissions
  uint64_t frame_redeliveries = 0; // duplicate frames receivers suppressed
  uint64_t frames_dropped = 0;     // frames abandoned (quarantined target)
  uint64_t dup_suppressed = 0;     // match dups killed at the front window
  uint64_t shard_restarts = 0;     // supervisor restart attempts
  uint64_t shards_quarantined = 0; // quarantine events
};

// N engine shards behind the unchanged PS2Stream facade. Each shard is a
// full Cluster over the *complete* partition plan (and, in started mode, a
// ThreadedEngine running it); ownership is defined solely by the ShardMap:
//
//   front (facade thread)                         shard i
//   ─────────────────────                         ───────
//   Post ── ShardMap.OwnerOf(cell) ──► object frame ──► Submit/Process
//   Subscribe ─ overlap owners ──────► insert frame ──► WAL + index
//                                                  ▼
//   DeliveryRouter ◄──────────────── match batch frames (worker threads)
//
// The invariant that makes this correct at any shard count: a query sent to
// a shard is indexed there in *all* plan cells overlapping its region, and
// an object is routed to exactly one shard (the owner of its location's
// cell). So a shard produces exactly the matches for the cells it owns or
// acquires, no shard double-delivers, and migrating a cell needs only
// "make sure the new owner has the cell's queries" — not a re-index.
//
// All inter-shard traffic is wire frames (shard/wire.h) through the
// Transport seam; with the in-process loopback, control-plane frames run
// synchronously on the facade thread (preserving the engines'
// single-producer contract) and match frames flow from worker threads into
// the thread-safe DeliveryRouter.
//
// Cross-shard live migration reuses the engine's proven shape, WAL'd at
// every step: copy (insert frames to the new owner, journaled
// before-apply) -> publish (ShardMap swap + SHARDMAP rewrite) -> drain
// (marker through the old owner's engine, Quiesce barrier) -> remove
// (delete frames retire source copies no longer reachable). A crash at any
// point recovers to a superset of the needed placement; the delivery
// router's dedup window kills the transient cross-shard duplicates.
//
// Durability composes per shard: <root>/SHARDMAP plus one DurabilityManager
// directory <root>/shard-<i> each with its own WAL and checkpoints.
// Restore() reassembles the fleet: reads the SHARDMAP, recovers every
// shard, adopts shard 0's vocabulary and remaps the others' term ids onto
// it (WAL replay interns strings in arrival order, so shards can disagree
// on ids minted after the last checkpoint), and rebuilds the front's
// placement registries from the recovered per-shard query sets.
//
// Fault tolerance (the robustness layer over the seam above): every frame
// travels a *reliable link* — a kControl envelope stamped with a link epoch
// and sequence number, retried with timeout + exponential backoff + jitter
// until the peer's cumulative ack covers it (shard/reliable.h). The
// front->shard control link releases frames strictly in sequence order, so
// a delayed/reordered transport cannot reorder the facade's operations; the
// shard->front match link is unordered and leans on the DeliveryRouter's
// dedup window. Sequence dedup plus a per-shard applied-query set makes
// redelivery idempotent. When a frame exhausts its retry budget (or a
// health probe does), the ShardSupervisor restarts the shard — from its own
// WAL+checkpoint directory when durable, from a registry resync otherwise —
// replays the unacked frames under a bumped link epoch, and after
// `max_restarts` consecutive failures quarantines it: Post/Subscribe
// touching its cells return kUnavailable while healthy shards keep serving
// (degraded mode).
//
// Threading contract: every control-plane method (Subscribe, Post,
// MigrateCell, Checkpoint, Start/Stop, ...) is facade-thread-only, exactly
// like PS2Stream itself. Only the match-frame receive path is concurrent;
// a control frame the transport releases on a foreign thread is parked and
// applied by the facade thread at its next control-plane call.
class ShardedEngine {
 public:
  // What Restore() hands back to the facade so it can rebuild its
  // subscription registry and id counters.
  struct Recovery {
    std::vector<STSQuery> queries;  // union across shards, fabric vocab ids
    QueryId next_query_id = 1;
    ObjectId next_object_id = 1;
    uint64_t shardmap_version = 0;
    // Continuous top-k heap state (the facade's coordinator is checkpointed
    // into every shard directory; restore adopts the freshest copy).
    TopKCheckpoint topk;
  };

  // `vocab` and `front_sink` are the facade's vocabulary and delivery
  // router; the fabric shares both. `transport` overrides the in-process
  // loopback (nullptr = own one) — the seam a networked deployment swaps.
  ShardedEngine(ShardedEngineConfig config, Vocabulary* vocab,
                DeliverySink* front_sink, Transport* transport = nullptr);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Builds one partition plan from the sample (same construction as the
  // single-engine facade) and stands up every shard over it. With
  // durability enabled, writes <root>/SHARDMAP and initializes each
  // shard's durable directory.
  void Bootstrap(const WorkloadSample& sample);

  // Rebuilds the fleet from a fabric root directory. Returns false (fabric
  // untouched) when the directory holds no usable SHARDMAP or any shard
  // fails recovery.
  bool Restore(const std::string& dir, Recovery* out);

  bool bootstrapped() const { return !shards_.empty(); }

  // --- control plane (facade thread) ---------------------------------------
  // Sends the query to every shard owning a cell its region overlaps and
  // records the placement (acked; a dead owner is restarted in-line).
  // kUnavailable when an owner is quarantined — the placement is rolled
  // back, including best-effort deletes at shards already reached.
  Status Subscribe(const STSQuery& query);
  // Retires the placement and sends deletes to the healthy owners; copies
  // at quarantined shards die with the shard. kUnavailable only when every
  // owner is quarantined.
  Status Unsubscribe(QueryId id);
  // Replaces `old_query` (same id) with `new_query` — the moving-subscriber
  // path. Owners of both regions get one kQueryUpdate frame (delete+insert
  // applied atomically per shard), new-only owners an insert, old-only
  // owners a delete. kUnavailable (registries untouched) when any owner of
  // either region is quarantined.
  Status Update(const STSQuery& old_query, const STSQuery& new_query);
  // Routes the object to its cell's owner. `publish_us` is the facade's
  // publish stamp, carried through the wire so delivery latency covers the
  // full cross-shard path. kUnavailable when the owner is quarantined.
  Status Post(const SpatioTextualObject& object, int64_t publish_us);

  // --- engines --------------------------------------------------------------
  void Start();
  bool started() const { return started_; }
  // Stops every shard engine and returns the fleet report (per-shard
  // reports merged via RunReport::MergeShard; shard_reports() keeps the
  // individual ones).
  RunReport Stop();

  // --- durability -----------------------------------------------------------
  bool durable() const;
  // Checkpoints every shard (the facade's id counters — and the top-k heap
  // state when given — are embedded in each shard's checkpoint so any
  // single shard can restore them).
  bool Checkpoint(QueryId next_query_id, ObjectId next_object_id,
                  const TopKCheckpoint* topk = nullptr);
  bool ShouldCheckpoint() const;
  // Crash simulation: aborts engines, abandons WALs. Fleet unusable after.
  void Kill();

  // --- fault tolerance ------------------------------------------------------
  // Probes every live shard (an acked kPing per shard) and reports the
  // first degradation; a probe that exhausts its retries walks the same
  // restart/quarantine path as any control frame. Ok when the whole fleet
  // answered.
  Status CheckHealth();
  // Failure drill: makes shard `s` unresponsive — every frame to it is
  // swallowed unacked, as if its process died. The supervisor detects the
  // missed acks on the next control frame (or probe) and restarts it; with
  // `allow_restart` false the restart fails too, so `max_restarts`
  // detections drive the shard into quarantine.
  void KillShard(ShardId s, bool allow_restart = true);
  // Operator override: clears quarantine/kill state, restarts the shard
  // from its durable directory (or a registry resync) and replays pending
  // frames. kInternal when the restart fails again.
  Status ReviveShard(ShardId s);
  bool shard_quarantined(ShardId s) const {
    return supervisor_.quarantined(s);
  }
  // Degraded mode: at least one shard is quarantined (traffic touching its
  // cells bounces with kUnavailable; the rest of the fleet serves).
  bool degraded() const { return supervisor_.any_quarantined(); }
  // Non-Ok when a live shard's WAL hit its sticky I/O error (kDataLoss) —
  // the facade refuses further mutations rather than silently losing them.
  Status durability_status() const;
  FabricFaultStats fault_stats() const;
  uint64_t shard_restart_count(ShardId s) const {
    return supervisor_.restarts(s);
  }

  // --- migration ------------------------------------------------------------
  // Moves cell ownership `from` -> `to` with the copy/publish/drain/remove
  // protocol. No-op stats when the cell is not currently owned by `from`,
  // or when either end is quarantined. A shard failure mid-protocol aborts
  // at a safe point (placement supersets are harmless; the dedup window
  // kills transient duplicates).
  ShardMigrationStats MigrateCell(CellId cell, ShardId from, ShardId to);
  // Runs the balancer over the window's per-cell object counts and executes
  // the planned moves (quarantined shards excluded). Returns the number of
  // cells migrated.
  size_t MaybeRebalance();

  // --- introspection --------------------------------------------------------
  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::shared_ptr<const ShardMap> shard_map() const {
    return map_->Current();
  }
  Cluster& shard_cluster(ShardId s) { return *shards_[s]->cluster; }
  ThreadedEngine* shard_engine(ShardId s) {
    return shards_[s]->engine.get();
  }
  const std::vector<RunReport>& shard_reports() const {
    return shard_reports_;
  }
  // Live aggregate SPSC-ring occupancy across every running shard engine
  // (see ThreadedEngine::DataPlaneFill); the facade's overload-controller
  // pressure signal in fabric mode.
  void DataPlaneFill(uint64_t* pending, uint64_t* capacity) const;
  uint64_t query_shard_mask(QueryId id) const;
  uint64_t cells_migrated() const { return cells_migrated_; }
  uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }
  Transport& transport() { return *transport_; }
  // Per-shard durability manager (nullptr: durability off or shard
  // quarantined) — failure drills trip its WAL from here.
  DurabilityManager* shard_durability(ShardId s) {
    return shards_[static_cast<size_t>(s)]->durability.get();
  }

 private:
  // Per-shard delivery sink: worker threads (or the sync Process path)
  // dedup through a shard-local window, then hand match-batch frames to the
  // shard's reliable egress link. Lives next to its shard, not inside the
  // engine — the seam the engines already expose (EngineOptions::delivery)
  // is all the fabric needs. Recreated on restart so the fresh incarnation
  // can re-emit matches the dead one produced but never shipped.
  class ShardEgress final : public DeliverySink {
   public:
    ShardEgress(ShardedEngine* owner, ShardId shard, size_t window_capacity)
        : owner_(owner), shard_(shard), dedup_(window_capacity) {}

    bool AcceptFresh(QueryId query_id, ObjectId object_id) override {
      return dedup_.AcceptFresh(query_id, object_id);
    }
    void Deliver(const MatchResult& m, int64_t publish_us) override;
    void DeliverBatch(const Delivery* pending, size_t n) override;

   private:
    ShardedEngine* owner_;
    ShardId shard_;
    ShardedDedupWindow dedup_;
  };

  struct Shard {
    ShardId id = 0;
    std::unique_ptr<Cluster> cluster;
    std::unique_ptr<ThreadedEngine> engine;
    std::unique_ptr<DurabilityManager> durability;
    std::unique_ptr<ShardEgress> egress;

    // --- fault-tolerance state ---------------------------------------------
    // Kill switch (failure drills): the shard's receive path swallows every
    // frame without acking, as if the process died.
    std::atomic<bool> dead{false};
    bool permanently_failed = false;  // restart attempts refuse (drills)
    uint64_t link_epoch = 1;          // bumped on every restart
    // front->shard control link. Sender state is touched by the facade
    // thread and by acks the transport may deliver on a worker thread.
    std::mutex ctl_mu;
    ReliableSender ctl_out;
    ReliableReceiver ctl_in{ReliableReceiver::Order::kOrdered};
    // shard->front match link. Sender fed by worker threads; receiver
    // state shared by every worker delivering to the front.
    std::mutex egress_mu;
    ReliableSender match_out;
    std::mutex ingress_mu;
    ReliableReceiver match_in{ReliableReceiver::Order::kUnordered};
    // Control frames the transport released on a non-facade thread (a
    // delayed hold-back), parked for the facade thread's next pump.
    std::mutex deferred_mu;
    std::deque<std::string> deferred;
    // Queries this shard has applied (facade thread only): the idempotency
    // filter for redelivered inserts/deletes and the restart reconcile
    // source.
    std::unordered_set<QueryId> applied;
  };

  void StandUpShards(PartitionPlan plan, int num_shards);
  void InitShardDurability(Shard& shard);
  // Transport receive handlers.
  void ShardReceive(Shard& shard, ShardId from, const std::string& frame);
  void FrontReceive(ShardId from, const std::string& frame);
  // Releases an enveloped control frame through the shard's ordered
  // receiver, applies what it releases and acks (facade thread only).
  void AcceptControl(Shard& shard, Frame&& f);
  // Applies one released control frame: drain barrier, ping, or ShardApply.
  void ApplyControl(Shard& shard, Frame& f);
  // Applies a decoded control frame on a shard (WAL-before-apply; Submit in
  // started mode, inline Process otherwise).
  void ShardApply(Shard& shard, const Frame& f);
  // Applies one frame released by a shard's match link at the front.
  void ApplyFromShard(Frame& f);

  // --- reliable-link plumbing ----------------------------------------------
  // Queues one control frame on the shard's link and pumps until acked
  // (restarting/quarantining on failure). The fabric's only way to talk to
  // a shard.
  Status SendControl(ShardId s, std::string inner);
  // Pumps shard `s`'s control link until every queued frame is acked.
  Status FlushControl(ShardId s);
  // Pumps shard `s`'s match link until every produced match/drain-ack
  // reached the front (sync-mode Post's delivery barrier).
  Status FlushEgress(ShardId s);
  // Hands `inner` to the shard's match link and ships whatever is due.
  void EnqueueEgress(Shard& shard, std::string inner);
  // ShardEgress entry: ships one match-batch frame from shard `s`.
  void ShipMatches(ShardId s, std::string frame);
  // Applies frames deferred from foreign threads (facade thread only).
  void PumpDeferred();
  // Applies a dead shard's unacked egress directly to the front sink (the
  // dedup window makes replays safe) so accepted matches survive restarts.
  void LocalDrainEgress(Shard& shard);

  // --- supervision ----------------------------------------------------------
  // A shard missed its ack deadline: restart it (Ok — caller retries) or
  // quarantine it (kUnavailable).
  Status HandleShardFailure(ShardId s);
  // Rebuilds the shard: recover from its durable dir (or a fresh index),
  // reconcile with the placement registry, bump the link epoch and re-queue
  // unacked frames. False when the shard cannot be brought back.
  bool RestartShard(Shard& shard);
  void QuarantineShard(ShardId s);

  void SendToShard(ShardId shard, const std::string& frame);
  // Registry maintenance.
  void RegisterPlacement(const STSQuery& query, uint64_t mask);
  void ForgetPlacement(QueryId id);
  // Drain barrier: flushes everything in flight at `shard`.
  Status DrainShard(ShardId shard);

  ShardedEngineConfig config_;
  Vocabulary* vocab_;
  DeliverySink* front_sink_;
  std::unique_ptr<Transport> owned_transport_;
  Transport* transport_;

  std::unique_ptr<ShardMapPublisher> map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
  bool durable_root_ = false;  // SHARDMAP file is being maintained
  // The bootstrap plan, kept so a non-durable shard can be restarted onto
  // the same geometry (queries are re-sent from the registry).
  std::unique_ptr<PartitionPlan> base_plan_;
  // The thread driving the control plane (re-pinned at every control op);
  // receive handlers use it to tell inline delivery from a foreign thread.
  std::atomic<std::thread::id> control_thread_;

  // Front placement registries (facade thread only).
  std::unordered_map<QueryId, uint64_t> query_shards_;  // shard bitmask
  std::vector<std::vector<QueryId>> cell_queries_;
  std::unordered_map<QueryId, STSQuery> queries_;

  // Balancer signal: objects routed per cell since the last window reset.
  std::vector<uint64_t> cell_objects_;
  size_t posts_since_rebalance_ = 0;
  size_t posts_since_probe_ = 0;
  ShardBalancer balancer_;
  ShardSupervisor supervisor_;

  // Drain handshake (loopback answers synchronously; the atomic keeps the
  // handshake correct for an async transport delivering acks from another
  // thread).
  uint64_t next_drain_token_ = 1;
  std::atomic<uint64_t> last_drain_ack_{0};

  std::atomic<uint64_t> decode_errors_{0};
  uint64_t cells_migrated_ = 0;
  std::vector<RunReport> shard_reports_;

  // Fault counters (FabricFaultStats mirror; bumped from any thread).
  std::atomic<uint64_t> transport_errors_{0};
  std::atomic<uint64_t> frame_retries_{0};
  std::atomic<uint64_t> frame_redeliveries_{0};
  std::atomic<uint64_t> frames_dropped_{0};
  std::atomic<uint64_t> dup_suppressed_{0};
  std::atomic<uint64_t> shard_restarts_{0};
  std::atomic<uint64_t> quarantine_events_{0};

  std::vector<CellId> overlap_scratch_;
};

}  // namespace ps2

#endif  // PS2_SHARD_SHARDED_ENGINE_H_
