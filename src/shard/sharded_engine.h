#ifndef PS2_SHARD_SHARDED_ENGINE_H_
#define PS2_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "adjust/shard_balancer.h"
#include "api/delivery_sink.h"
#include "common/dedup_window.h"
#include "core/workload_stats.h"
#include "persist/durability.h"
#include "runtime/metrics.h"
#include "runtime/threaded_engine.h"
#include "shard/shard_map.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace ps2 {

// Fabric-level knobs, embedded in PS2StreamOptions. num_shards > 1 turns
// the facade's single engine into a ShardedEngine fleet; everything else
// (partitioner, cluster, engine, durability config) is reused from the
// facade's existing options, applied per shard.
struct ShardFabricOptions {
  // Engine shards behind the facade. 1 (the default) = no fabric, the
  // facade runs its classic single engine. Capped at 64 (the front tracks
  // query placement as a 64-bit shard mask).
  int num_shards = 1;
  // Cross-shard auto-rebalancing: every `rebalance_check_interval` posts,
  // plan hot-cell migrations whenever the per-shard object-load balance
  // factor exceeds `rebalance_sigma`, and execute them inline on the
  // posting thread (the fabric's control plane).
  bool auto_rebalance = false;
  size_t rebalance_check_interval = 100000;
  double rebalance_sigma = 1.5;
  size_t rebalance_max_moves = 4;
};

// Everything the fabric needs from the facade's option set.
struct ShardedEngineConfig {
  ShardFabricOptions fabric;
  std::string partitioner = "hybrid";
  PartitionConfig partition;
  ClusterOptions cluster;
  EngineOptions engine;          // per-shard threaded engine
  DurabilityConfig durability;   // dir = fabric root; shard-<i>/ underneath
  size_t dedup_window_capacity = 1 << 16;  // per-shard egress dedup
};

// Cross-shard migration outcome (the fabric analogue of MigrationStats).
struct ShardMigrationStats {
  size_t queries_copied = 0;   // insert frames shipped to the new owner
  size_t queries_removed = 0;  // source copies retired after the drain
  size_t bytes = 0;            // wire bytes of the copy phase
};

// N engine shards behind the unchanged PS2Stream facade. Each shard is a
// full Cluster over the *complete* partition plan (and, in started mode, a
// ThreadedEngine running it); ownership is defined solely by the ShardMap:
//
//   front (facade thread)                         shard i
//   ─────────────────────                         ───────
//   Post ── ShardMap.OwnerOf(cell) ──► object frame ──► Submit/Process
//   Subscribe ─ overlap owners ──────► insert frame ──► WAL + index
//                                                  ▼
//   DeliveryRouter ◄──────────────── match batch frames (worker threads)
//
// The invariant that makes this correct at any shard count: a query sent to
// a shard is indexed there in *all* plan cells overlapping its region, and
// an object is routed to exactly one shard (the owner of its location's
// cell). So a shard produces exactly the matches for the cells it owns or
// acquires, no shard double-delivers, and migrating a cell needs only
// "make sure the new owner has the cell's queries" — not a re-index.
//
// All inter-shard traffic is wire frames (shard/wire.h) through the
// Transport seam; with the in-process loopback, control-plane frames run
// synchronously on the facade thread (preserving the engines'
// single-producer contract) and match frames flow from worker threads into
// the thread-safe DeliveryRouter.
//
// Cross-shard live migration reuses the engine's proven shape, WAL'd at
// every step: copy (insert frames to the new owner, journaled
// before-apply) -> publish (ShardMap swap + SHARDMAP rewrite) -> drain
// (marker through the old owner's engine, Quiesce barrier) -> remove
// (delete frames retire source copies no longer reachable). A crash at any
// point recovers to a superset of the needed placement; the delivery
// router's dedup window kills the transient cross-shard duplicates.
//
// Durability composes per shard: <root>/SHARDMAP plus one DurabilityManager
// directory <root>/shard-<i> each with its own WAL and checkpoints.
// Restore() reassembles the fleet: reads the SHARDMAP, recovers every
// shard, adopts shard 0's vocabulary and remaps the others' term ids onto
// it (WAL replay interns strings in arrival order, so shards can disagree
// on ids minted after the last checkpoint), and rebuilds the front's
// placement registries from the recovered per-shard query sets.
//
// Threading contract: every control-plane method (Subscribe, Post,
// MigrateCell, Checkpoint, Start/Stop, ...) is facade-thread-only, exactly
// like PS2Stream itself. Only the match-frame receive path is concurrent.
class ShardedEngine {
 public:
  // What Restore() hands back to the facade so it can rebuild its
  // subscription registry and id counters.
  struct Recovery {
    std::vector<STSQuery> queries;  // union across shards, fabric vocab ids
    QueryId next_query_id = 1;
    ObjectId next_object_id = 1;
    uint64_t shardmap_version = 0;
  };

  // `vocab` and `front_sink` are the facade's vocabulary and delivery
  // router; the fabric shares both. `transport` overrides the in-process
  // loopback (nullptr = own one) — the seam a networked deployment swaps.
  ShardedEngine(ShardedEngineConfig config, Vocabulary* vocab,
                DeliverySink* front_sink, Transport* transport = nullptr);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Builds one partition plan from the sample (same construction as the
  // single-engine facade) and stands up every shard over it. With
  // durability enabled, writes <root>/SHARDMAP and initializes each
  // shard's durable directory.
  void Bootstrap(const WorkloadSample& sample);

  // Rebuilds the fleet from a fabric root directory. Returns false (fabric
  // untouched) when the directory holds no usable SHARDMAP or any shard
  // fails recovery.
  bool Restore(const std::string& dir, Recovery* out);

  bool bootstrapped() const { return !shards_.empty(); }

  // --- control plane (facade thread) ---------------------------------------
  // Sends the query to every shard owning a cell its region overlaps and
  // records the placement. The facade routes the delivery session first.
  void Subscribe(const STSQuery& query);
  void Unsubscribe(QueryId id);
  // Routes the object to its cell's owner. `publish_us` is the facade's
  // publish stamp, carried through the wire so delivery latency covers the
  // full cross-shard path.
  void Post(const SpatioTextualObject& object, int64_t publish_us);

  // --- engines --------------------------------------------------------------
  void Start();
  bool started() const { return started_; }
  // Stops every shard engine and returns the fleet report (per-shard
  // reports merged via RunReport::MergeShard; shard_reports() keeps the
  // individual ones).
  RunReport Stop();

  // --- durability -----------------------------------------------------------
  bool durable() const;
  // Checkpoints every shard (the facade's id counters are embedded in each
  // shard's checkpoint so any single shard can restore them).
  bool Checkpoint(QueryId next_query_id, ObjectId next_object_id);
  bool ShouldCheckpoint() const;
  // Crash simulation: aborts engines, abandons WALs. Fleet unusable after.
  void Kill();

  // --- migration ------------------------------------------------------------
  // Moves cell ownership `from` -> `to` with the copy/publish/drain/remove
  // protocol. No-op stats when the cell is not currently owned by `from`.
  ShardMigrationStats MigrateCell(CellId cell, ShardId from, ShardId to);
  // Runs the balancer over the window's per-cell object counts and executes
  // the planned moves. Returns the number of cells migrated.
  size_t MaybeRebalance();

  // --- introspection --------------------------------------------------------
  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::shared_ptr<const ShardMap> shard_map() const {
    return map_->Current();
  }
  Cluster& shard_cluster(ShardId s) { return *shards_[s]->cluster; }
  ThreadedEngine* shard_engine(ShardId s) {
    return shards_[s]->engine.get();
  }
  const std::vector<RunReport>& shard_reports() const {
    return shard_reports_;
  }
  uint64_t query_shard_mask(QueryId id) const;
  uint64_t cells_migrated() const { return cells_migrated_; }
  uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }
  Transport& transport() { return *transport_; }

 private:
  // Per-shard delivery sink: worker threads (or the sync Process path)
  // dedup through a shard-local window, then ship match-batch frames to
  // the front. Lives next to its shard, not inside the engine — the seam
  // the engines already expose (EngineOptions::delivery) is all the fabric
  // needs.
  class ShardEgress final : public DeliverySink {
   public:
    ShardEgress(ShardId shard, Transport* transport, size_t window_capacity)
        : shard_(shard), transport_(transport), dedup_(window_capacity) {}

    bool AcceptFresh(QueryId query_id, ObjectId object_id) override {
      return dedup_.AcceptFresh(query_id, object_id);
    }
    void Deliver(const MatchResult& m, int64_t publish_us) override;
    void DeliverBatch(const Delivery* pending, size_t n) override;

   private:
    ShardId shard_;
    Transport* transport_;
    ShardedDedupWindow dedup_;
  };

  struct Shard {
    ShardId id = 0;
    std::unique_ptr<Cluster> cluster;
    std::unique_ptr<ThreadedEngine> engine;
    std::unique_ptr<DurabilityManager> durability;
    std::unique_ptr<ShardEgress> egress;
  };

  void StandUpShards(PartitionPlan plan, int num_shards);
  void InitShardDurability(Shard& shard);
  // Transport receive handlers.
  void ShardReceive(Shard& shard, ShardId from, const std::string& frame);
  void FrontReceive(ShardId from, const std::string& frame);
  // Applies a decoded control frame on a shard (WAL-before-apply; Submit in
  // started mode, inline Process otherwise).
  void ShardApply(Shard& shard, const Frame& f);
  void SendToShard(ShardId shard, const std::string& frame);
  // Registry maintenance.
  void RegisterPlacement(const STSQuery& query, uint64_t mask);
  void ForgetPlacement(QueryId id);
  // Drain barrier: flushes everything in flight at `shard`.
  void DrainShard(ShardId shard);

  ShardedEngineConfig config_;
  Vocabulary* vocab_;
  DeliverySink* front_sink_;
  std::unique_ptr<Transport> owned_transport_;
  Transport* transport_;

  std::unique_ptr<ShardMapPublisher> map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
  bool durable_root_ = false;  // SHARDMAP file is being maintained

  // Front placement registries (facade thread only).
  std::unordered_map<QueryId, uint64_t> query_shards_;  // shard bitmask
  std::vector<std::vector<QueryId>> cell_queries_;
  std::unordered_map<QueryId, STSQuery> queries_;

  // Balancer signal: objects routed per cell since the last window reset.
  std::vector<uint64_t> cell_objects_;
  size_t posts_since_rebalance_ = 0;
  ShardBalancer balancer_;

  // Drain handshake (loopback answers synchronously; the atomic keeps the
  // handshake correct for an async transport delivering acks from another
  // thread).
  uint64_t next_drain_token_ = 1;
  std::atomic<uint64_t> last_drain_ack_{0};

  std::atomic<uint64_t> decode_errors_{0};
  uint64_t cells_migrated_ = 0;
  std::vector<RunReport> shard_reports_;

  std::vector<CellId> overlap_scratch_;
};

}  // namespace ps2

#endif  // PS2_SHARD_SHARDED_ENGINE_H_
