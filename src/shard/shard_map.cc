#include "shard/shard_map.h"

#include <cstdio>
#include <cstring>

#include "common/bytes.h"

namespace ps2 {

namespace {
constexpr char kMagic[4] = {'P', 'S', '2', 'M'};
constexpr uint32_t kFormatVersion = 1;
}  // namespace

ShardMap ShardMap::Uniform(uint32_t num_cells, int num_shards) {
  ShardMap map;
  map.num_shards = num_shards < 1 ? 1 : num_shards;
  map.cell_shard.resize(num_cells);
  for (uint32_t c = 0; c < num_cells; ++c) {
    map.cell_shard[c] = static_cast<ShardId>(c % map.num_shards);
  }
  return map;
}

ShardMapPublisher::ShardMapPublisher(ShardMap initial)
    : map_(std::make_shared<const ShardMap>(std::move(initial))) {}

std::shared_ptr<const ShardMap> ShardMapPublisher::Current() const {
  return std::atomic_load(&map_);
}

void ShardMapPublisher::Publish(ShardMap next) {
  next.version = Current()->version + 1;
  std::atomic_store(&map_,
                    std::shared_ptr<const ShardMap>(
                        std::make_shared<const ShardMap>(std::move(next))));
}

std::string EncodeShardMap(const ShardMap& map) {
  ByteWriter w;
  w.Bytes(kMagic, sizeof(kMagic));
  w.Pod<uint32_t>(kFormatVersion);
  w.Pod<uint64_t>(map.version);
  w.Pod<uint32_t>(static_cast<uint32_t>(map.num_shards));
  w.Pod<uint32_t>(static_cast<uint32_t>(map.cell_shard.size()));
  for (const ShardId s : map.cell_shard) w.Pod<int32_t>(s);
  std::string out = w.TakeBuffer();
  const uint32_t crc = Crc32(out.data(), out.size());
  ByteWriter tail;
  tail.Pod<uint32_t>(crc);
  out += tail.buffer();
  return out;
}

bool DecodeShardMap(const std::string& bytes, ShardMap* out) {
  if (bytes.size() < sizeof(kMagic) + 4 * sizeof(uint32_t) +
                         sizeof(uint64_t)) {
    return false;
  }
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  ByteReader r(bytes.data(), bytes.size());
  char magic[4];
  r.Bytes(magic, sizeof(magic));
  if (!r.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  if (r.Pod<uint32_t>() != kFormatVersion) return false;
  ShardMap map;
  map.version = r.Pod<uint64_t>();
  map.num_shards = static_cast<int>(r.Pod<uint32_t>());
  const uint32_t num_cells = r.Pod<uint32_t>();
  if (!r.FitsCount(num_cells, sizeof(int32_t))) return false;
  map.cell_shard.reserve(num_cells);
  for (uint32_t c = 0; c < num_cells && r.ok(); ++c) {
    map.cell_shard.push_back(r.Pod<int32_t>());
  }
  if (!r.ok() || r.remaining() != sizeof(uint32_t)) return false;
  if (r.Pod<uint32_t>() != crc) return false;
  if (map.num_shards < 1) return false;
  for (const ShardId s : map.cell_shard) {
    if (s < 0 || s >= map.num_shards) return false;
  }
  *out = std::move(map);
  return true;
}

bool WriteShardMapFile(const std::string& path, const ShardMap& map) {
  const std::string bytes = EncodeShardMap(map);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool written =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!written) {
    std::remove(tmp.c_str());
    return false;
  }
  // Atomic commit: a crash leaves either the old complete file or the new
  // one, never a torn assignment.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadShardMapFile(const std::string& path, ShardMap* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return DecodeShardMap(bytes, out);
}

std::string ShardMapPath(const std::string& root_dir) {
  return root_dir + "/SHARDMAP";
}

std::string ShardDirPath(const std::string& root_dir, ShardId shard) {
  return root_dir + "/shard-" + std::to_string(shard);
}

}  // namespace ps2
