#ifndef PS2_SHARD_SHARD_MAP_H_
#define PS2_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spatial/grid.h"

namespace ps2 {

// Which engine shard owns each grid cell. The fabric's analogue of the
// partition plan one level up: the plan maps cells to *workers inside a
// shard*, the ShardMap maps cells to *shards*. An object is routed to
// exactly one shard (the owner of the cell containing its location); a
// query lives on every shard owning at least one cell its region overlaps.
using ShardId = int32_t;

struct ShardMap {
  // Monotone publish version (the fabric's ShardMapPublisher stamps it).
  uint64_t version = 1;
  int num_shards = 1;
  std::vector<ShardId> cell_shard;  // size == grid.NumCells()

  ShardId OwnerOf(CellId c) const {
    return c < cell_shard.size() ? cell_shard[c] : 0;
  }

  // Initial assignment: cells striped uniformly across shards. Load
  // imbalance is the balancer's job (hot cells migrate between shards),
  // exactly as the in-shard plan starts uniform before local adjustment.
  static ShardMap Uniform(uint32_t num_cells, int num_shards);
};

// Snapshot-published ShardMap, following the RoutingSnapshot pattern: the
// current map is an immutable shared_ptr swapped atomically on publish, so
// the routing path pays one atomic load and never blocks a migration.
// Publishes are serialized by the fabric's control plane (the facade
// thread); readers may be anywhere.
class ShardMapPublisher {
 public:
  explicit ShardMapPublisher(ShardMap initial);

  std::shared_ptr<const ShardMap> Current() const;

  // Installs `next` as the current map with version = current + 1.
  void Publish(ShardMap next);

 private:
  std::shared_ptr<const ShardMap> map_;  // std::atomic_load/store
};

// --- on-disk format ----------------------------------------------------------
// The fabric's root durable directory holds one SHARDMAP file next to the
// per-shard subdirectories:
//
//   <root>/SHARDMAP        cell -> shard assignment (this format)
//   <root>/shard-<i>/      one DurabilityManager directory per shard
//
// Layout (little-endian): magic "PS2M", u32 format version, u64 map
// version, u32 num_shards, u32 num_cells, i32 cell_shard[], u32 crc32 over
// everything before it. Rewritten via temp-file + atomic rename after every
// cross-shard migration, so a crash always leaves a complete, CRC-valid
// assignment (the pre- or post-migration one — both are safe, because a
// migration's copy phase runs before the publish).
std::string EncodeShardMap(const ShardMap& map);
bool DecodeShardMap(const std::string& bytes, ShardMap* out);

bool WriteShardMapFile(const std::string& path, const ShardMap& map);
bool ReadShardMapFile(const std::string& path, ShardMap* out);

// Path helpers for the fabric's durable layout.
std::string ShardMapPath(const std::string& root_dir);
std::string ShardDirPath(const std::string& root_dir, ShardId shard);

}  // namespace ps2

#endif  // PS2_SHARD_SHARD_MAP_H_
