#ifndef PS2_SHARD_TRANSPORT_H_
#define PS2_SHARD_TRANSPORT_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "shard/shard_map.h"

namespace ps2 {

// The fabric's only inter-shard channel. Every byte between the front and
// an engine shard — objects, query updates, match batches, drain markers —
// is an encoded wire frame (shard/wire.h) pushed through Send(), so
// swapping the in-process loopback for sockets is a transport change, not
// an engine change.
//
// Endpoints are ShardIds plus the distinguished front endpoint below.
// Handlers receive (from, frame) and must be safe for the transport's
// delivery discipline; LoopbackTransport documents its own.
inline constexpr ShardId kFrontEndpoint = -1;

class Transport {
 public:
  using Handler = std::function<void(ShardId from, const std::string& frame)>;

  virtual ~Transport() = default;

  // Installs the receive handler for `endpoint`, replacing any previous
  // one. Must complete before anyone Sends to that endpoint.
  virtual void RegisterEndpoint(ShardId endpoint, Handler handler) = 0;

  // Delivers one frame to `to`. Returns false if the endpoint is unknown.
  virtual bool Send(ShardId from, ShardId to, const std::string& frame) = 0;
};

// In-process transport: Send() invokes the destination handler synchronously
// on the caller's thread. That makes delivery ordering per (caller thread,
// destination) FIFO for free and keeps the fabric's single-producer engine
// contract intact — the front's facade thread is the only thread sending
// control-plane frames to a shard, so the shard-side handler runs
// single-producer too. Match frames flow shard -> front from many worker
// threads concurrently; the front's handler must therefore be thread-safe
// (the DeliveryRouter it feeds already is).
//
// The handler registry is mutated only during fabric setup/teardown; Send
// takes a shared snapshot of the handler under the mutex but invokes it
// outside, so handlers may themselves Send (e.g. a drain marker's ack)
// without deadlocking.
class LoopbackTransport final : public Transport {
 public:
  void RegisterEndpoint(ShardId endpoint, Handler handler) override {
    std::lock_guard<std::mutex> lock(mu_);
    handlers_[endpoint] = std::move(handler);
  }

  bool Send(ShardId from, ShardId to, const std::string& frame) override {
    Handler h;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = handlers_.find(to);
      if (it == handlers_.end()) return false;
      h = it->second;
    }
    h(from, frame);
    return true;
  }

 private:
  std::mutex mu_;
  std::map<ShardId, Handler> handlers_;
};

}  // namespace ps2

#endif  // PS2_SHARD_TRANSPORT_H_
