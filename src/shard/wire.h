#ifndef PS2_SHARD_WIRE_H_
#define PS2_SHARD_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/object.h"
#include "core/query.h"

namespace ps2 {

// Wire serde for everything that crosses the shard fabric's Transport seam:
// published objects (front -> owner shard), query inserts/deletes (front ->
// every overlapping shard, and shard-to-shard during migration copies),
// match batches (shard -> front), and drain markers (the migration
// protocol's flush barrier). One frame = one message:
//
//   u8 kind, u32 payload_len, u32 crc32(kind || payload), payload
//
// Payloads are little-endian via common/bytes; query payloads reuse the
// persist layer's WriteQueryRecord/ReadQueryRecord shape with raw u32 term
// ids (shards share one in-process vocabulary today; a socket transport
// would swap in the WAL's self-contained string codec without touching the
// frame layout). Decoding validates length and CRC before touching the
// payload, so a corrupt or truncated frame fails cleanly instead of
// poisoning a shard.
enum class FrameKind : uint8_t {
  kObject = 1,
  kQueryInsert = 2,
  kQueryDelete = 3,
  kMatchBatch = 4,
  kDrain = 5,
  kDrainAck = 6,
  // Reliable-link framing (shard/reliable.h): every frame a reliable link
  // carries travels inside a kControl envelope stamped with the link epoch
  // and a per-link sequence number; the receiver answers with cumulative
  // kAck frames. kPing is an empty payload whose ack doubles as a health
  // probe pong. Envelopes never nest.
  kControl = 7,
  kAck = 8,
  kPing = 9,
  // Subscription replacement (moving subscribers): the payload is the
  // complete *new* query record followed by the *old* region, so the
  // receiving shard can tear down the old placement and apply the new one
  // as one delete+insert without a registry lookup.
  kQueryUpdate = 10,
};

// One delivered match on the wire: the ids plus the publish timestamp the
// front stamped, so publish->deliver latency spans the whole cross-shard
// path.
struct WireMatch {
  QueryId query_id = 0;
  ObjectId object_id = 0;
  int64_t publish_us = 0;
  // Scored-class metadata: the match score (0 for boolean queries) and the
  // object's event-time expiry stamp (0 = never expires). Top-k admission
  // happens at the front, so these must survive the shard -> front hop.
  double score = 0.0;
  int64_t expire_us = 0;
};

// A decoded frame; only the fields of `kind` are meaningful. Decoding a
// kControl envelope yields the *inner* frame's kind and fields with
// `enveloped` set and the envelope's epoch/seq attached — callers never see
// kControl as a kind of its own.
struct Frame {
  FrameKind kind = FrameKind::kObject;
  SpatioTextualObject object;  // kObject
  int64_t publish_us = 0;      // kObject
  STSQuery query;              // kQueryInsert / kQueryDelete / kQueryUpdate
                               // (kQueryUpdate: the replacement query)
  Rect old_region;             // kQueryUpdate: pre-update placement
  std::vector<WireMatch> matches;  // kMatchBatch
  uint64_t drain_token = 0;    // kDrain / kDrainAck
  // Reliable-link metadata (enveloped frames and kAck).
  bool enveloped = false;
  uint64_t epoch = 0;   // link incarnation (bumped on shard restart)
  uint64_t seq = 0;     // per-link sequence number (enveloped frames)
  uint64_t ack_upto = 0;  // kAck: cumulative — every seq <= this arrived
};

std::string EncodeObjectFrame(const SpatioTextualObject& o,
                              int64_t publish_us);
std::string EncodeQueryFrame(FrameKind kind, const STSQuery& q);
// kQueryUpdate: `q` is the complete replacement, `old_region` its previous
// placement (the shard drops the old cell registrations from it).
std::string EncodeQueryUpdateFrame(const STSQuery& q, const Rect& old_region);
std::string EncodeMatchBatchFrame(const WireMatch* matches, size_t n);
std::string EncodeDrainFrame(FrameKind kind, uint64_t token);
// Wraps an already-sealed frame in a reliable-link envelope. `inner` must
// not itself be a kControl or kAck frame (DecodeFrame rejects nesting).
std::string EncodeControlFrame(uint64_t epoch, uint64_t seq,
                               const std::string& inner);
std::string EncodeAckFrame(uint64_t epoch, uint64_t ack_upto);
std::string EncodePingFrame();

// Returns false on any malformed input: short header, truncated payload,
// trailing garbage, CRC mismatch, unknown kind, or counts that outsize the
// payload.
bool DecodeFrame(const std::string& frame, Frame* out);

}  // namespace ps2

#endif  // PS2_SHARD_WIRE_H_
