#ifndef PS2_SHARD_FAULT_TRANSPORT_H_
#define PS2_SHARD_FAULT_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "shard/transport.h"

namespace ps2 {

// A network partition window, expressed over the transport's global send
// counter so schedules replay exactly from a seed: while `from_send` <=
// send-index < `to_send`, traffic between endpoints `a` and `b` (both
// directions when `bidirectional`) either refuses (Send returns false, the
// caller can tell) or silently drops (returns true — the loss only shows up
// as a missed ack).
struct FaultPartitionSpec {
  ShardId a = kFrontEndpoint;
  ShardId b = 0;
  uint64_t from_send = 0;
  uint64_t to_send = UINT64_MAX;
  bool bidirectional = true;
  bool refuse = true;
};

// Seeded fault schedule of a FaultInjectingTransport. Rates are per-Send
// probabilities drawn from one deterministic RNG stream, so a
// single-threaded run replays byte-identically from the seed (concurrent
// senders still get a reproducible *distribution*, not a fixed trace).
struct FaultScheduleConfig {
  uint64_t seed = 1;
  double drop_rate = 0.0;       // frame vanishes, Send still returns true
  double delay_rate = 0.0;      // frame held back, released out of order
  int max_delay_sends = 3;      // held for 1..max subsequent Send calls
  double duplicate_rate = 0.0;  // frame delivered twice
  double refuse_rate = 0.0;     // Send returns false, nothing delivered
  std::vector<FaultPartitionSpec> partitions;
};

// Monotonic tallies of everything the schedule did (for test assertions and
// the chaos soak's post-mortem line).
struct FaultCounters {
  uint64_t sends = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t delayed = 0;
  uint64_t duplicated = 0;
  uint64_t refused = 0;
};

// Transport decorator that injects faults between the fabric and its
// shards: drops, duplicates, refusals, partitions, and delays. Delay is
// measured in *subsequent Send calls*, not wall time — a held frame is
// released just before a later Send delivers its own frame, which both
// keeps schedules deterministic and produces genuine reordering (the held
// frame arrives after frames sent later... and its release interleaves
// *before* the releasing Send's frame, after frames in between).
//
// The fault decision applies exactly once per Send; releases and immediate
// deliveries go straight to the inner transport. Handlers are invoked
// outside the schedule lock, so they may Send (acks do) without
// deadlocking.
class FaultInjectingTransport final : public Transport {
 public:
  // Decorates `inner`; owns a LoopbackTransport when `inner` is null.
  explicit FaultInjectingTransport(FaultScheduleConfig config,
                                   Transport* inner = nullptr);

  void RegisterEndpoint(ShardId endpoint, Handler handler) override;
  bool Send(ShardId from, ShardId to, const std::string& frame) override;

  // Releases every held frame immediately (test teardown / end-of-schedule
  // settling so no delayed frame outlives the run).
  void FlushDelayed();

  FaultCounters counters() const;

 private:
  struct Held {
    ShardId from = 0;
    ShardId to = 0;
    std::string frame;
    uint64_t release_at = 0;  // send index at/after which it goes out
  };
  struct Outbound {
    ShardId from = 0;
    ShardId to = 0;
    std::string frame;
    bool own = false;  // this call's frame (not a matured hold): its inner
                       // failure must surface through Send's return value
  };

  bool Partitioned(ShardId from, ShardId to, uint64_t send_index,
                   bool* refuse) const;
  // Returns false when any `own` delivery failed at the inner transport.
  bool Deliver(std::vector<Outbound>& out);

  const FaultScheduleConfig config_;
  std::unique_ptr<Transport> owned_inner_;
  Transport* inner_;

  mutable std::mutex mu_;  // guards rng_, sends_, held_
  Rng rng_;
  uint64_t sends_ = 0;
  std::vector<Held> held_;

  std::atomic<uint64_t> n_sends_{0};
  std::atomic<uint64_t> n_delivered_{0};
  std::atomic<uint64_t> n_dropped_{0};
  std::atomic<uint64_t> n_delayed_{0};
  std::atomic<uint64_t> n_duplicated_{0};
  std::atomic<uint64_t> n_refused_{0};
};

}  // namespace ps2

#endif  // PS2_SHARD_FAULT_TRANSPORT_H_
