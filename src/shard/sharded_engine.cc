#include "shard/sharded_engine.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "partition/plan.h"

namespace ps2 {

namespace {

// Remaps a term id minted against `from` onto the fabric vocabulary `to`.
// Every term that ever reached a WAL or checkpoint carries its string, so
// the string is the cross-shard identity; ids whose string is unknown
// (never materialized in `from`) are kept verbatim — they can only come
// from positional codecs whose ids agree by construction.
TermId RemapTerm(TermId t, const Vocabulary& from, Vocabulary& to) {
  if (t >= from.size()) return t;
  const std::string& s = from.TermString(t);
  if (s.empty()) return t;
  return to.Intern(s);
}

STSQuery RemapQuery(const STSQuery& q, const Vocabulary& from,
                    Vocabulary& to) {
  STSQuery out;
  out.id = q.id;
  out.region = q.region;
  std::vector<std::vector<TermId>> clauses;
  clauses.reserve(q.expr.clauses().size());
  for (const auto& clause : q.expr.clauses()) {
    std::vector<TermId> mapped;
    mapped.reserve(clause.size());
    for (const TermId t : clause) mapped.push_back(RemapTerm(t, from, to));
    clauses.push_back(std::move(mapped));
  }
  out.expr = BoolExpr::Cnf(std::move(clauses));
  return out;
}

// Rebuilds a recovered plan's text routers with term ids remapped onto the
// fabric vocabulary. Routers are shared across the cells of one kdt leaf;
// preserve that sharing so the remapped plan keeps the original footprint.
PartitionPlan RemapPlan(PartitionPlan plan, const Vocabulary& from,
                        Vocabulary& to) {
  std::unordered_map<const TermRouter*, std::shared_ptr<const TermRouter>>
      remapped;
  for (CellRoute& route : plan.cells) {
    if (route.text == nullptr) continue;
    auto it = remapped.find(route.text.get());
    if (it == remapped.end()) {
      std::unordered_map<TermId, WorkerId> map;
      map.reserve(route.text->term_map().size());
      for (const auto& [t, w] : route.text->term_map()) {
        map[RemapTerm(t, from, to)] = w;
      }
      it = remapped
               .emplace(route.text.get(),
                        std::make_shared<const TermRouter>(
                            std::move(map), route.text->workers()))
               .first;
    }
    route.text = it->second;
  }
  return plan;
}

uint64_t ShardBit(ShardId s) { return uint64_t{1} << s; }

}  // namespace

// --- ShardEgress -------------------------------------------------------------

void ShardedEngine::ShardEgress::Deliver(const MatchResult& m,
                                         int64_t publish_us) {
  WireMatch wm;
  wm.query_id = m.query_id;
  wm.object_id = m.object_id;
  wm.publish_us = publish_us;
  transport_->Send(shard_, kFrontEndpoint, EncodeMatchBatchFrame(&wm, 1));
}

void ShardedEngine::ShardEgress::DeliverBatch(const Delivery* pending,
                                              size_t n) {
  if (n == 0) return;
  std::vector<WireMatch> wire(n);
  for (size_t i = 0; i < n; ++i) {
    wire[i].query_id = pending[i].query_id;
    wire[i].object_id = pending[i].object_id;
    wire[i].publish_us = pending[i].publish_us;
  }
  transport_->Send(shard_, kFrontEndpoint,
                   EncodeMatchBatchFrame(wire.data(), wire.size()));
}

// --- construction / bootstrap ------------------------------------------------

ShardedEngine::ShardedEngine(ShardedEngineConfig config, Vocabulary* vocab,
                             DeliverySink* front_sink, Transport* transport)
    : config_(std::move(config)),
      vocab_(vocab),
      front_sink_(front_sink),
      balancer_(config_.fabric.rebalance_sigma) {
  if (config_.fabric.num_shards < 1) config_.fabric.num_shards = 1;
  if (config_.fabric.num_shards > 64) config_.fabric.num_shards = 64;
  if (transport != nullptr) {
    transport_ = transport;
  } else {
    owned_transport_ = std::make_unique<LoopbackTransport>();
    transport_ = owned_transport_.get();
  }
  transport_->RegisterEndpoint(
      kFrontEndpoint, [this](ShardId from, const std::string& frame) {
        FrontReceive(from, frame);
      });
}

ShardedEngine::~ShardedEngine() {
  if (started_) Stop();
}

void ShardedEngine::Bootstrap(const WorkloadSample& sample) {
  if (bootstrapped()) return;
  // Same plan construction as the single-engine facade: every shard indexes
  // against the identical plan, so cell ownership is the only thing that
  // distinguishes them.
  auto partitioner = MakePartitioner(config_.partitioner);
  PartitionPlan plan;
  if (partitioner != nullptr && !sample.empty()) {
    plan = partitioner->Build(sample, *vocab_, config_.partition);
  } else {
    plan.grid = GridSpec(sample.empty() ? Rect(0, 0, 1, 1) : sample.Bounds(),
                         config_.partition.grid_k);
    plan.num_workers = config_.partition.num_workers;
    plan.cells.resize(plan.grid.NumCells());
    for (CellId c = 0; c < plan.grid.NumCells(); ++c) {
      plan.cells[c].worker =
          static_cast<WorkerId>(c % config_.partition.num_workers);
    }
  }

  map_ = std::make_unique<ShardMapPublisher>(
      ShardMap::Uniform(plan.grid.NumCells(), config_.fabric.num_shards));
  StandUpShards(std::move(plan), config_.fabric.num_shards);

  if (config_.durability.enabled && !config_.durability.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.durability.dir, ec);
    durable_root_ =
        !ec && WriteShardMapFile(ShardMapPath(config_.durability.dir),
                                 *map_->Current());
    if (durable_root_) {
      for (auto& shard : shards_) InitShardDurability(*shard);
    }
  }
}

void ShardedEngine::StandUpShards(PartitionPlan plan, int num_shards) {
  cell_queries_.assign(plan.grid.NumCells(), {});
  cell_objects_.assign(plan.grid.NumCells(), 0);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->id = static_cast<ShardId>(i);
    // Every shard gets a copy of the plan (CellRoute text routers are
    // shared_ptr, so the copies share the heavy term maps).
    shard->cluster =
        std::make_unique<Cluster>(plan, vocab_, config_.cluster);
    shard->egress = std::make_unique<ShardEgress>(
        shard->id, transport_, config_.dedup_window_capacity);
    Shard* raw = shard.get();
    transport_->RegisterEndpoint(
        shard->id, [this, raw](ShardId from, const std::string& frame) {
          ShardReceive(*raw, from, frame);
        });
    shards_.push_back(std::move(shard));
  }
}

void ShardedEngine::InitShardDurability(Shard& shard) {
  DurabilityConfig config = config_.durability;
  config.dir = ShardDirPath(config_.durability.dir, shard.id);
  shard.durability = std::make_unique<DurabilityManager>(config);
  CheckpointView view;
  view.next_query_id = 1;
  view.next_object_id = 1;
  view.vocab = vocab_;
  const PartitionPlan& current = shard.cluster->router().plan();
  view.plan = &current;
  if (!shard.durability->Initialize(view)) shard.durability.reset();
}

// --- restore -----------------------------------------------------------------

bool ShardedEngine::Restore(const std::string& dir, Recovery* out) {
  if (bootstrapped() || dir.empty()) return false;
  ShardMap disk_map;
  if (!ReadShardMapFile(ShardMapPath(dir), &disk_map)) return false;

  std::vector<std::unique_ptr<RecoveredState>> states;
  states.reserve(static_cast<size_t>(disk_map.num_shards));
  for (int i = 0; i < disk_map.num_shards; ++i) {
    auto state = std::make_unique<RecoveredState>();
    if (!RecoverState(ShardDirPath(dir, static_cast<ShardId>(i)),
                      state.get())) {
      return false;
    }
    states.push_back(std::move(state));
  }

  // Shard 0's recovered vocabulary becomes the fabric's; the other shards'
  // queries and plans are remapped onto it by term string (ids minted by
  // WAL replay after the last checkpoint can differ per shard).
  *vocab_ = std::move(states[0]->vocab);

  config_.durability.enabled = true;
  config_.durability.dir = dir;
  map_ = std::make_unique<ShardMapPublisher>(disk_map);
  durable_root_ = true;

  Recovery recovery;
  StandUpShards(states[0]->plan, disk_map.num_shards);
  for (int i = 0; i < disk_map.num_shards; ++i) {
    Shard& shard = *shards_[static_cast<size_t>(i)];
    RecoveredState& state = *states[static_cast<size_t>(i)];
    if (i > 0) {
      // Re-seat shard i on its own recovered plan, remapped to the fabric
      // vocabulary (installed in-shard migrations may differ per shard).
      shard.cluster = std::make_unique<Cluster>(
          RemapPlan(std::move(state.plan), state.vocab, *vocab_), vocab_,
          config_.cluster);
    }
    for (const STSQuery& recovered : state.queries) {
      const STSQuery q = i == 0
                             ? recovered
                             : RemapQuery(recovered, state.vocab, *vocab_);
      shard.cluster->Process(StreamTuple::OfInsert(q));
      auto it = queries_.find(q.id);
      if (it == queries_.end()) {
        RegisterPlacement(q, ShardBit(shard.id));
      } else {
        query_shards_[q.id] |= ShardBit(shard.id);
      }
    }
    shard.cluster->ResetLoadWindow();

    DurabilityConfig config = config_.durability;
    config.dir = ShardDirPath(dir, shard.id);
    shard.durability = std::make_unique<DurabilityManager>(config);
    const uint64_t resume_seq =
        state.checkpoint_seq +
        (state.wal_segments > 0
             ? static_cast<uint64_t>(state.wal_segments) - 1
             : 0);
    if (!shard.durability->Resume(resume_seq, state.last_lsn + 1)) {
      // A shard that recovered but cannot log again would silently lose
      // every post-restore mutation; fail the whole fleet restore.
      shards_.clear();
      queries_.clear();
      query_shards_.clear();
      map_.reset();
      durable_root_ = false;
      return false;
    }
    recovery.next_query_id =
        std::max(recovery.next_query_id, state.next_query_id);
    recovery.next_object_id =
        std::max(recovery.next_object_id, state.next_object_id);
  }

  recovery.queries.reserve(queries_.size());
  for (const auto& [id, q] : queries_) recovery.queries.push_back(q);
  recovery.shardmap_version = disk_map.version;
  if (out != nullptr) *out = std::move(recovery);
  return true;
}

// --- control plane -----------------------------------------------------------

void ShardedEngine::RegisterPlacement(const STSQuery& query, uint64_t mask) {
  queries_[query.id] = query;
  query_shards_[query.id] = mask;
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  grid.CellsOverlapping(query.region, &overlap_scratch_);
  for (const CellId c : overlap_scratch_) {
    cell_queries_[c].push_back(query.id);
  }
}

void ShardedEngine::ForgetPlacement(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) return;
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  grid.CellsOverlapping(it->second.region, &overlap_scratch_);
  for (const CellId c : overlap_scratch_) {
    auto& list = cell_queries_[c];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
  queries_.erase(it);
  query_shards_.erase(id);
}

uint64_t ShardedEngine::query_shard_mask(QueryId id) const {
  auto it = query_shards_.find(id);
  return it == query_shards_.end() ? 0 : it->second;
}

void ShardedEngine::Subscribe(const STSQuery& query) {
  const auto map = map_->Current();
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  grid.CellsOverlapping(query.region, &overlap_scratch_);
  uint64_t mask = 0;
  for (const CellId c : overlap_scratch_) mask |= ShardBit(map->OwnerOf(c));
  if (mask == 0 && !shards_.empty()) mask = ShardBit(0);
  RegisterPlacement(query, mask);
  const std::string frame = EncodeQueryFrame(FrameKind::kQueryInsert, query);
  for (auto& shard : shards_) {
    if (mask & ShardBit(shard->id)) SendToShard(shard->id, frame);
  }
}

void ShardedEngine::Unsubscribe(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) return;
  const uint64_t mask = query_shards_[id];
  const std::string frame =
      EncodeQueryFrame(FrameKind::kQueryDelete, it->second);
  ForgetPlacement(id);
  for (auto& shard : shards_) {
    if (mask & ShardBit(shard->id)) SendToShard(shard->id, frame);
  }
}

void ShardedEngine::Post(const SpatioTextualObject& object,
                         int64_t publish_us) {
  const auto map = map_->Current();
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  const CellId cell = grid.CellOf(object.loc);
  const ShardId owner = map->OwnerOf(cell);
  if (cell < cell_objects_.size()) ++cell_objects_[cell];
  SendToShard(owner, EncodeObjectFrame(object, publish_us));
  if (config_.fabric.auto_rebalance &&
      ++posts_since_rebalance_ >= config_.fabric.rebalance_check_interval) {
    posts_since_rebalance_ = 0;
    MaybeRebalance();
  }
}

void ShardedEngine::SendToShard(ShardId shard, const std::string& frame) {
  transport_->Send(kFrontEndpoint, shard, frame);
}

// --- transport receive paths -------------------------------------------------

void ShardedEngine::ShardReceive(Shard& shard, ShardId from,
                                 const std::string& frame) {
  (void)from;
  Frame f;
  if (!DecodeFrame(frame, &f)) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (f.kind == FrameKind::kDrain) {
    // Flush barrier for migrations: everything submitted to this shard
    // before the marker must be fully processed (including match handoff)
    // before the ack. With the loopback transport this handler runs on the
    // facade thread — the shard engine's single submitting thread — which
    // is exactly what Quiesce() requires.
    if (shard.engine != nullptr) shard.engine->Quiesce();
    transport_->Send(shard.id, kFrontEndpoint,
                     EncodeDrainFrame(FrameKind::kDrainAck, f.drain_token));
    return;
  }
  ShardApply(shard, f);
}

void ShardedEngine::ShardApply(Shard& shard, const Frame& f) {
  switch (f.kind) {
    case FrameKind::kObject: {
      const StreamTuple tuple = StreamTuple::OfObject(f.object);
      if (shard.engine != nullptr) {
        shard.engine->Submit(tuple, f.publish_us);
        return;
      }
      std::vector<MatchResult> fresh;
      shard.cluster->Process(tuple, &fresh);
      std::vector<Delivery> accepted;
      accepted.reserve(fresh.size());
      for (const MatchResult& m : fresh) {
        if (shard.egress->AcceptFresh(m.query_id, m.object_id)) {
          Delivery d;
          d.query_id = m.query_id;
          d.object_id = m.object_id;
          d.publish_us = f.publish_us;
          accepted.push_back(d);
        }
      }
      if (!accepted.empty()) {
        shard.egress->DeliverBatch(accepted.data(), accepted.size());
      }
      return;
    }
    case FrameKind::kQueryInsert: {
      // WAL-before-apply, against this shard's own log: the copy phase of a
      // cross-shard migration is durable the same way a fresh subscribe is.
      if (shard.durability != nullptr) {
        shard.durability->wal().AppendSubscribe(f.query, *vocab_);
      }
      const StreamTuple tuple = StreamTuple::OfInsert(f.query);
      if (shard.engine != nullptr) {
        shard.engine->Submit(tuple);
      } else {
        shard.cluster->Process(tuple);
      }
      return;
    }
    case FrameKind::kQueryDelete: {
      if (shard.durability != nullptr) {
        shard.durability->wal().AppendUnsubscribe(f.query.id);
      }
      const StreamTuple tuple = StreamTuple::OfDelete(f.query);
      if (shard.engine != nullptr) {
        shard.engine->Submit(tuple);
      } else {
        shard.cluster->Process(tuple);
      }
      return;
    }
    default:
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
  }
}

void ShardedEngine::FrontReceive(ShardId from, const std::string& frame) {
  (void)from;
  Frame f;
  if (!DecodeFrame(frame, &f)) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  switch (f.kind) {
    case FrameKind::kMatchBatch:
      // Concurrent path: worker threads of every shard land here. The
      // front sink (DeliveryRouter) is thread-safe, and its dedup window is
      // the fleet-wide belt-and-braces filter — a match double-produced
      // around a migration (old and new owner both matched it) dies here.
      for (const WireMatch& wm : f.matches) {
        MatchResult m;
        m.query_id = wm.query_id;
        m.object_id = wm.object_id;
        if (front_sink_->AcceptFresh(m.query_id, m.object_id)) {
          front_sink_->Deliver(m, wm.publish_us);
        }
      }
      return;
    case FrameKind::kDrainAck:
      last_drain_ack_.store(f.drain_token, std::memory_order_release);
      return;
    default:
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
  }
}

// --- engines -----------------------------------------------------------------

void ShardedEngine::Start() {
  if (!bootstrapped() || started_) return;
  for (auto& shard : shards_) {
    EngineOptions opts = config_.engine;
    if (shard->durability != nullptr) {
      opts.wal = &shard->durability->wal();
    }
    opts.delivery = shard->egress.get();
    shard->engine =
        std::make_unique<ThreadedEngine>(*shard->cluster, opts);
    shard->engine->Start();
  }
  started_ = true;
}

RunReport ShardedEngine::Stop() {
  RunReport fleet;
  if (!started_) return fleet;
  shard_reports_.clear();
  for (auto& shard : shards_) {
    shard_reports_.push_back(shard->engine->Stop());
    shard->engine.reset();
  }
  started_ = false;
  fleet = shard_reports_[0];
  for (size_t i = 1; i < shard_reports_.size(); ++i) {
    fleet.MergeShard(shard_reports_[i]);
  }
  return fleet;
}

// --- durability --------------------------------------------------------------

bool ShardedEngine::durable() const {
  if (!durable_root_) return false;
  for (const auto& shard : shards_) {
    if (shard->durability == nullptr || !shard->durability->healthy()) {
      return false;
    }
  }
  return !shards_.empty();
}

bool ShardedEngine::Checkpoint(QueryId next_query_id,
                               ObjectId next_object_id) {
  if (!durable_root_ || !bootstrapped()) return false;
  bool ok = true;
  for (auto& shard : shards_) {
    if (shard->durability == nullptr) {
      ok = false;
      continue;
    }
    const uint64_t seq = shard->durability->BeginCheckpoint();
    if (seq == 0) {
      ok = false;
      continue;
    }
    CheckpointView view;
    view.next_query_id = next_query_id;
    view.next_object_id = next_object_id;
    view.vocab = vocab_;
    PartitionPlan plan = shard->engine != nullptr
                             ? shard->engine->PlanCopy()
                             : shard->cluster->router().plan();
    view.plan = &plan;
    const uint64_t bit = ShardBit(shard->id);
    for (const auto& [id, q] : queries_) {
      if (query_shards_[id] & bit) view.queries.push_back(&q);
    }
    ok = shard->durability->CommitCheckpoint(seq, std::move(view)) && ok;
  }
  ok = WriteShardMapFile(ShardMapPath(config_.durability.dir),
                         *map_->Current()) &&
       ok;
  return ok;
}

bool ShardedEngine::ShouldCheckpoint() const {
  for (const auto& shard : shards_) {
    if (shard->durability != nullptr &&
        shard->durability->ShouldCheckpoint()) {
      return true;
    }
  }
  return false;
}

void ShardedEngine::Kill() {
  for (auto& shard : shards_) {
    if (shard->engine != nullptr && shard->engine->running()) {
      shard->engine->Abort();
    }
    shard->engine.reset();
    if (shard->durability != nullptr) shard->durability->Abandon();
    shard->durability.reset();
  }
  started_ = false;
}

// --- migration ---------------------------------------------------------------

void ShardedEngine::DrainShard(ShardId shard) {
  const uint64_t token = next_drain_token_++;
  SendToShard(shard, EncodeDrainFrame(FrameKind::kDrain, token));
  // Loopback answers before Send returns; an async transport delivers the
  // ack from another thread, so spin on the token (control plane only —
  // never on the data path).
  while (last_drain_ack_.load(std::memory_order_acquire) < token) {
  }
}

ShardMigrationStats ShardedEngine::MigrateCell(CellId cell, ShardId from,
                                               ShardId to) {
  ShardMigrationStats stats;
  if (!bootstrapped() || from == to) return stats;
  if (from < 0 || to < 0 || from >= num_shards() || to >= num_shards()) {
    return stats;
  }
  const auto map = map_->Current();
  if (map->OwnerOf(cell) != from) return stats;

  // Phase 1 — copy: the new owner gets every query indexed in the cell it
  // doesn't already hold. The shard WALs each insert before applying, so a
  // crash mid-copy recovers a harmless superset (the map still names
  // `from`; the extra copies at `to` produce no deliveries because no
  // object routes there yet).
  const uint64_t to_bit = ShardBit(to);
  for (const QueryId id : cell_queries_[cell]) {
    uint64_t& mask = query_shards_[id];
    if (mask & to_bit) continue;
    const std::string frame =
        EncodeQueryFrame(FrameKind::kQueryInsert, queries_[id]);
    SendToShard(to, frame);
    mask |= to_bit;
    ++stats.queries_copied;
    stats.bytes += frame.size();
  }

  // Phase 2 — publish: objects for the cell now route to `to`. Persist the
  // new assignment before the source sheds anything.
  ShardMap next = *map;
  next.cell_shard[cell] = to;
  map_->Publish(std::move(next));
  if (durable_root_) {
    WriteShardMapFile(ShardMapPath(config_.durability.dir),
                      *map_->Current());
  }

  // Phase 3 — drain: flush everything in flight at the old owner. Objects
  // routed under the old map finish matching (and their matches reach the
  // front) before any source copy disappears.
  DrainShard(from);

  // Phase 4 — remove: retire source copies whose query no longer overlaps
  // any `from`-owned cell under the new map. In-flight duplicates this
  // window can still produce die in the front router's dedup window.
  const auto published = map_->Current();
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  const uint64_t from_bit = ShardBit(from);
  std::vector<QueryId> shed = cell_queries_[cell];
  for (const QueryId id : shed) {
    auto it = queries_.find(id);
    if (it == queries_.end()) continue;
    uint64_t& mask = query_shards_[id];
    if (!(mask & from_bit)) continue;
    grid.CellsOverlapping(it->second.region, &overlap_scratch_);
    bool still_needed = false;
    for (const CellId c : overlap_scratch_) {
      if (published->OwnerOf(c) == from) {
        still_needed = true;
        break;
      }
    }
    if (still_needed) continue;
    SendToShard(from,
                EncodeQueryFrame(FrameKind::kQueryDelete, it->second));
    mask &= ~from_bit;
    ++stats.queries_removed;
  }
  ++cells_migrated_;
  return stats;
}

size_t ShardedEngine::MaybeRebalance() {
  if (!bootstrapped() || num_shards() < 2) return 0;
  const std::vector<ShardMove> moves =
      balancer_.Plan(*map_->Current(), cell_objects_,
                     config_.fabric.rebalance_max_moves);
  size_t migrated = 0;
  for (const ShardMove& move : moves) {
    const ShardMigrationStats stats =
        MigrateCell(move.cell, move.from, move.to);
    if (stats.queries_copied > 0 || stats.queries_removed > 0 ||
        map_->Current()->OwnerOf(move.cell) == move.to) {
      ++migrated;
    }
  }
  // New observation window after acting (same policy as ResetLoadWindow).
  if (!moves.empty()) {
    std::fill(cell_objects_.begin(), cell_objects_.end(), 0);
  }
  return migrated;
}

}  // namespace ps2
