#include "shard/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "partition/plan.h"

namespace ps2 {

namespace {

// Remaps a term id minted against `from` onto the fabric vocabulary `to`.
// Every term that ever reached a WAL or checkpoint carries its string, so
// the string is the cross-shard identity; ids whose string is unknown
// (never materialized in `from`) are kept verbatim — they can only come
// from positional codecs whose ids agree by construction.
TermId RemapTerm(TermId t, const Vocabulary& from, Vocabulary& to) {
  if (t >= from.size()) return t;
  const std::string& s = from.TermString(t);
  if (s.empty()) return t;
  return to.Intern(s);
}

STSQuery RemapQuery(const STSQuery& q, const Vocabulary& from,
                    Vocabulary& to) {
  STSQuery out;
  out.id = q.id;
  out.region = q.region;
  out.cls = q.cls;
  out.tau = q.tau;
  out.k = q.k;
  std::vector<std::vector<TermId>> clauses;
  clauses.reserve(q.expr.clauses().size());
  for (const auto& clause : q.expr.clauses()) {
    std::vector<TermId> mapped;
    mapped.reserve(clause.size());
    for (const TermId t : clause) mapped.push_back(RemapTerm(t, from, to));
    clauses.push_back(std::move(mapped));
  }
  out.expr = BoolExpr::Cnf(std::move(clauses));
  return out;
}

// Rebuilds a recovered plan's text routers with term ids remapped onto the
// fabric vocabulary. Routers are shared across the cells of one kdt leaf;
// preserve that sharing so the remapped plan keeps the original footprint.
PartitionPlan RemapPlan(PartitionPlan plan, const Vocabulary& from,
                        Vocabulary& to) {
  std::unordered_map<const TermRouter*, std::shared_ptr<const TermRouter>>
      remapped;
  for (CellRoute& route : plan.cells) {
    if (route.text == nullptr) continue;
    auto it = remapped.find(route.text.get());
    if (it == remapped.end()) {
      std::unordered_map<TermId, WorkerId> map;
      map.reserve(route.text->term_map().size());
      for (const auto& [t, w] : route.text->term_map()) {
        map[RemapTerm(t, from, to)] = w;
      }
      it = remapped
               .emplace(route.text.get(),
                        std::make_shared<const TermRouter>(
                            std::move(map), route.text->workers()))
               .first;
    }
    route.text = it->second;
  }
  return plan;
}

uint64_t ShardBit(ShardId s) { return uint64_t{1} << s; }

// Monotonic microseconds — the reliable links' retransmission clock.
int64_t MonoUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Backoff wait between pump rounds: until the earliest retransmission is
// due, capped so restarts/kills are noticed promptly.
void SleepUntilDue(int64_t next_due_us) {
  const int64_t now = MonoUs();
  int64_t wait = next_due_us == INT64_MAX ? 50 : next_due_us - now;
  if (wait < 1) wait = 1;
  if (wait > 2000) wait = 2000;
  std::this_thread::sleep_for(std::chrono::microseconds(wait));
}

}  // namespace

// --- ShardEgress -------------------------------------------------------------

void ShardedEngine::ShardEgress::Deliver(const MatchResult& m,
                                         int64_t publish_us) {
  WireMatch wm;
  wm.query_id = m.query_id;
  wm.object_id = m.object_id;
  wm.publish_us = publish_us;
  wm.score = m.score;
  wm.expire_us = m.expire_us;
  owner_->ShipMatches(shard_, EncodeMatchBatchFrame(&wm, 1));
}

void ShardedEngine::ShardEgress::DeliverBatch(const Delivery* pending,
                                              size_t n) {
  if (n == 0) return;
  std::vector<WireMatch> wire(n);
  for (size_t i = 0; i < n; ++i) {
    wire[i].query_id = pending[i].query_id;
    wire[i].object_id = pending[i].object_id;
    wire[i].publish_us = pending[i].publish_us;
    wire[i].score = pending[i].score;
    wire[i].expire_us = pending[i].expire_us;
  }
  owner_->ShipMatches(shard_,
                      EncodeMatchBatchFrame(wire.data(), wire.size()));
}

// --- construction / bootstrap ------------------------------------------------

ShardedEngine::ShardedEngine(ShardedEngineConfig config, Vocabulary* vocab,
                             DeliverySink* front_sink, Transport* transport)
    : config_(std::move(config)),
      vocab_(vocab),
      front_sink_(front_sink),
      balancer_(config_.fabric.rebalance_sigma) {
  if (config_.fabric.num_shards < 1) config_.fabric.num_shards = 1;
  if (config_.fabric.num_shards > 64) config_.fabric.num_shards = 64;
  if (transport == nullptr) transport = config_.fabric.transport;
  if (transport != nullptr) {
    transport_ = transport;
  } else {
    owned_transport_ = std::make_unique<LoopbackTransport>();
    transport_ = owned_transport_.get();
  }
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  transport_->RegisterEndpoint(
      kFrontEndpoint, [this](ShardId from, const std::string& frame) {
        FrontReceive(from, frame);
      });
}

ShardedEngine::~ShardedEngine() {
  if (started_) Stop();
}

void ShardedEngine::Bootstrap(const WorkloadSample& sample) {
  if (bootstrapped()) return;
  // Same plan construction as the single-engine facade: every shard indexes
  // against the identical plan, so cell ownership is the only thing that
  // distinguishes them.
  auto partitioner = MakePartitioner(config_.partitioner);
  PartitionPlan plan;
  if (partitioner != nullptr && !sample.empty()) {
    plan = partitioner->Build(sample, *vocab_, config_.partition);
  } else {
    plan.grid = GridSpec(sample.empty() ? Rect(0, 0, 1, 1) : sample.Bounds(),
                         config_.partition.grid_k);
    plan.num_workers = config_.partition.num_workers;
    plan.cells.resize(plan.grid.NumCells());
    for (CellId c = 0; c < plan.grid.NumCells(); ++c) {
      plan.cells[c].worker =
          static_cast<WorkerId>(c % config_.partition.num_workers);
    }
  }

  map_ = std::make_unique<ShardMapPublisher>(
      ShardMap::Uniform(plan.grid.NumCells(), config_.fabric.num_shards));
  StandUpShards(std::move(plan), config_.fabric.num_shards);

  if (config_.durability.enabled && !config_.durability.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.durability.dir, ec);
    durable_root_ =
        !ec && WriteShardMapFile(ShardMapPath(config_.durability.dir),
                                 *map_->Current());
    if (durable_root_) {
      for (auto& shard : shards_) InitShardDurability(*shard);
    }
  }
}

void ShardedEngine::StandUpShards(PartitionPlan plan, int num_shards) {
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  cell_queries_.assign(plan.grid.NumCells(), {});
  cell_objects_.assign(plan.grid.NumCells(), 0);
  supervisor_.SetPolicy(SupervisorPolicy{config_.fabric.max_restarts});
  supervisor_.Resize(static_cast<size_t>(num_shards));
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->id = static_cast<ShardId>(i);
    // Every shard gets a copy of the plan (CellRoute text routers are
    // shared_ptr, so the copies share the heavy term maps).
    shard->cluster =
        std::make_unique<Cluster>(plan, vocab_, config_.cluster);
    shard->egress = std::make_unique<ShardEgress>(
        this, shard->id, config_.dedup_window_capacity);
    // Distinct jitter streams per shard and direction so a fleet under the
    // same fault schedule never retries in lockstep.
    const uint64_t seed = config_.fabric.link_seed +
                          0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(i) + 1);
    shard->ctl_out.Configure(config_.fabric.retry, seed);
    shard->match_out.Configure(config_.fabric.retry, seed ^ 0xA5A5A5A5ULL);
    Shard* raw = shard.get();
    transport_->RegisterEndpoint(
        shard->id, [this, raw](ShardId from, const std::string& frame) {
          ShardReceive(*raw, from, frame);
        });
    shards_.push_back(std::move(shard));
  }
  // Keep the bootstrap geometry: a non-durable shard restarts onto it (the
  // query set is re-sent from the front registries).
  base_plan_ = std::make_unique<PartitionPlan>(
      shards_[0]->cluster->router().plan());
}

void ShardedEngine::InitShardDurability(Shard& shard) {
  DurabilityConfig config = config_.durability;
  config.dir = ShardDirPath(config_.durability.dir, shard.id);
  shard.durability = std::make_unique<DurabilityManager>(config);
  CheckpointView view;
  view.next_query_id = 1;
  view.next_object_id = 1;
  view.vocab = vocab_;
  const PartitionPlan& current = shard.cluster->router().plan();
  view.plan = &current;
  if (!shard.durability->Initialize(view)) shard.durability.reset();
}

// --- restore -----------------------------------------------------------------

bool ShardedEngine::Restore(const std::string& dir, Recovery* out) {
  if (bootstrapped() || dir.empty()) return false;
  ShardMap disk_map;
  if (!ReadShardMapFile(ShardMapPath(dir), &disk_map)) return false;

  std::vector<std::unique_ptr<RecoveredState>> states;
  states.reserve(static_cast<size_t>(disk_map.num_shards));
  for (int i = 0; i < disk_map.num_shards; ++i) {
    auto state = std::make_unique<RecoveredState>();
    if (!RecoverState(ShardDirPath(dir, static_cast<ShardId>(i)),
                      state.get())) {
      return false;
    }
    states.push_back(std::move(state));
  }

  // Shard 0's recovered vocabulary becomes the fabric's; the other shards'
  // queries and plans are remapped onto it by term string (ids minted by
  // WAL replay after the last checkpoint can differ per shard).
  *vocab_ = std::move(states[0]->vocab);

  config_.durability.enabled = true;
  config_.durability.dir = dir;
  map_ = std::make_unique<ShardMapPublisher>(disk_map);
  durable_root_ = true;

  Recovery recovery;
  StandUpShards(states[0]->plan, disk_map.num_shards);
  for (int i = 0; i < disk_map.num_shards; ++i) {
    Shard& shard = *shards_[static_cast<size_t>(i)];
    RecoveredState& state = *states[static_cast<size_t>(i)];
    if (i > 0) {
      // Re-seat shard i on its own recovered plan, remapped to the fabric
      // vocabulary (installed in-shard migrations may differ per shard).
      shard.cluster = std::make_unique<Cluster>(
          RemapPlan(std::move(state.plan), state.vocab, *vocab_), vocab_,
          config_.cluster);
    }
    for (const STSQuery& recovered : state.queries) {
      const STSQuery q = i == 0
                             ? recovered
                             : RemapQuery(recovered, state.vocab, *vocab_);
      shard.cluster->Process(StreamTuple::OfInsert(q));
      shard.applied.insert(q.id);
      auto it = queries_.find(q.id);
      if (it == queries_.end()) {
        RegisterPlacement(q, ShardBit(shard.id));
      } else {
        query_shards_[q.id] |= ShardBit(shard.id);
      }
    }
    shard.cluster->ResetLoadWindow();

    DurabilityConfig config = config_.durability;
    config.dir = ShardDirPath(dir, shard.id);
    shard.durability = std::make_unique<DurabilityManager>(config);
    const uint64_t resume_seq =
        state.checkpoint_seq +
        (state.wal_segments > 0
             ? static_cast<uint64_t>(state.wal_segments) - 1
             : 0);
    if (!shard.durability->Resume(resume_seq, state.last_lsn + 1)) {
      // A shard that recovered but cannot log again would silently lose
      // every post-restore mutation; fail the whole fleet restore.
      shards_.clear();
      queries_.clear();
      query_shards_.clear();
      map_.reset();
      durable_root_ = false;
      return false;
    }
    recovery.next_query_id =
        std::max(recovery.next_query_id, state.next_query_id);
    recovery.next_object_id =
        std::max(recovery.next_object_id, state.next_object_id);
    // Every shard carries the same front-level top-k snapshot; adopt the
    // freshest copy (a quarantined shard may have missed the last
    // checkpoint round).
    if (!state.topk.empty() &&
        (recovery.topk.empty() ||
         state.topk.watermark_us > recovery.topk.watermark_us)) {
      recovery.topk = std::move(state.topk);
    }
  }

  recovery.queries.reserve(queries_.size());
  for (const auto& [id, q] : queries_) recovery.queries.push_back(q);
  recovery.shardmap_version = disk_map.version;
  if (out != nullptr) *out = std::move(recovery);
  return true;
}

// --- control plane -----------------------------------------------------------

void ShardedEngine::RegisterPlacement(const STSQuery& query, uint64_t mask) {
  queries_[query.id] = query;
  query_shards_[query.id] = mask;
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  grid.CellsOverlapping(query.region, &overlap_scratch_);
  for (const CellId c : overlap_scratch_) {
    cell_queries_[c].push_back(query.id);
  }
}

void ShardedEngine::ForgetPlacement(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) return;
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  grid.CellsOverlapping(it->second.region, &overlap_scratch_);
  for (const CellId c : overlap_scratch_) {
    auto& list = cell_queries_[c];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
  queries_.erase(it);
  query_shards_.erase(id);
}

uint64_t ShardedEngine::query_shard_mask(QueryId id) const {
  auto it = query_shards_.find(id);
  return it == query_shards_.end() ? 0 : it->second;
}

Status ShardedEngine::Subscribe(const STSQuery& query) {
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  PumpDeferred();
  const auto map = map_->Current();
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  grid.CellsOverlapping(query.region, &overlap_scratch_);
  uint64_t mask = 0;
  for (const CellId c : overlap_scratch_) mask |= ShardBit(map->OwnerOf(c));
  if (mask == 0 && !shards_.empty()) mask = ShardBit(0);
  // Refuse up-front when any owner is quarantined: a partially indexed
  // query would silently miss matches in the quarantined cells.
  for (const auto& shard : shards_) {
    if ((mask & ShardBit(shard->id)) && supervisor_.quarantined(shard->id)) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("query region overlaps quarantined shard " +
                                 std::to_string(shard->id));
    }
  }
  RegisterPlacement(query, mask);
  const std::string frame = EncodeQueryFrame(FrameKind::kQueryInsert, query);
  for (const auto& shard : shards_) {
    if (!(mask & ShardBit(shard->id))) continue;
    const Status st = SendControl(shard->id, frame);
    if (st.ok()) continue;
    // An owner died past its restart budget mid-placement: roll back with
    // best-effort deletes at the owners already reached, then report.
    const std::string del =
        EncodeQueryFrame(FrameKind::kQueryDelete, query);
    for (const auto& prev : shards_) {
      if (prev->id >= shard->id) break;
      if ((mask & ShardBit(prev->id)) &&
          !supervisor_.quarantined(prev->id)) {
        SendControl(prev->id, del);
      }
    }
    ForgetPlacement(query.id);
    return st;
  }
  return Status::Ok();
}

Status ShardedEngine::Unsubscribe(QueryId id) {
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  PumpDeferred();
  auto it = queries_.find(id);
  if (it == queries_.end()) return Status::Ok();
  const uint64_t mask = query_shards_[id];
  const std::string frame =
      EncodeQueryFrame(FrameKind::kQueryDelete, it->second);
  ForgetPlacement(id);
  size_t live = 0, quarantined = 0;
  Status worst = Status::Ok();
  for (const auto& shard : shards_) {
    if (!(mask & ShardBit(shard->id))) continue;
    if (supervisor_.quarantined(shard->id)) {
      // The copy dies with the shard (its index is gone); nothing to send.
      ++quarantined;
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ++live;
    const Status st = SendControl(shard->id, frame);
    if (!st.ok() && worst.ok()) worst = st;
  }
  if (live == 0 && quarantined > 0) {
    return Status::Unavailable("every owner of query " + std::to_string(id) +
                               " is quarantined");
  }
  return worst;
}

Status ShardedEngine::Update(const STSQuery& old_query,
                             const STSQuery& new_query) {
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  PumpDeferred();
  const auto map = map_->Current();
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  grid.CellsOverlapping(old_query.region, &overlap_scratch_);
  uint64_t old_mask = 0;
  for (const CellId c : overlap_scratch_) {
    old_mask |= ShardBit(map->OwnerOf(c));
  }
  if (old_mask == 0 && !shards_.empty()) old_mask = ShardBit(0);
  grid.CellsOverlapping(new_query.region, &overlap_scratch_);
  uint64_t new_mask = 0;
  for (const CellId c : overlap_scratch_) {
    new_mask |= ShardBit(map->OwnerOf(c));
  }
  if (new_mask == 0 && !shards_.empty()) new_mask = ShardBit(0);

  // Refuse up-front when any owner of either placement is quarantined: a
  // half-applied move would either leak the old placement or miss matches
  // in the new region.
  for (const auto& shard : shards_) {
    if (((old_mask | new_mask) & ShardBit(shard->id)) &&
        supervisor_.quarantined(shard->id)) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "subscription update touches quarantined shard " +
          std::to_string(shard->id));
    }
  }

  ForgetPlacement(old_query.id);
  RegisterPlacement(new_query, new_mask);
  Status worst = Status::Ok();
  for (const auto& shard : shards_) {
    const uint64_t bit = ShardBit(shard->id);
    const bool had_old = (old_mask & bit) != 0;
    const bool has_new = (new_mask & bit) != 0;
    Status st = Status::Ok();
    if (had_old && has_new) {
      st = SendControl(shard->id,
                       EncodeQueryUpdateFrame(new_query, old_query.region));
    } else if (has_new) {
      st = SendControl(shard->id,
                       EncodeQueryFrame(FrameKind::kQueryInsert, new_query));
    } else if (had_old) {
      st = SendControl(shard->id,
                       EncodeQueryFrame(FrameKind::kQueryDelete, old_query));
    }
    if (!st.ok() && worst.ok()) worst = st;
  }
  return worst;
}

Status ShardedEngine::Post(const SpatioTextualObject& object,
                           int64_t publish_us) {
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  PumpDeferred();
  const auto map = map_->Current();
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  const CellId cell = grid.CellOf(object.loc);
  const ShardId owner = map->OwnerOf(cell);
  if (supervisor_.quarantined(owner)) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("cell owner shard " + std::to_string(owner) +
                               " is quarantined");
  }
  if (cell < cell_objects_.size()) ++cell_objects_[cell];
  Status st = SendControl(owner, EncodeObjectFrame(object, publish_us));
  if (!st.ok()) return st;
  if (!started_) {
    // Sync contract: the object's matches are at the front before Post
    // returns, even when the transport dropped the first copies.
    st = FlushEgress(owner);
    if (!st.ok()) return st;
  }
  if (config_.fabric.health_probe_interval > 0 &&
      ++posts_since_probe_ >= config_.fabric.health_probe_interval) {
    posts_since_probe_ = 0;
    CheckHealth();  // degradations handled inside (restart/quarantine)
  }
  if (config_.fabric.auto_rebalance &&
      ++posts_since_rebalance_ >= config_.fabric.rebalance_check_interval) {
    posts_since_rebalance_ = 0;
    MaybeRebalance();
  }
  return Status::Ok();
}

void ShardedEngine::SendToShard(ShardId shard, const std::string& frame) {
  if (!transport_->Send(kFrontEndpoint, shard, frame)) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- reliable-link plumbing --------------------------------------------------

Status ShardedEngine::SendControl(ShardId s, std::string inner) {
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  if (supervisor_.quarantined(s)) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("shard " + std::to_string(s) +
                               " is quarantined");
  }
  Shard& shard = *shards_[static_cast<size_t>(s)];
  {
    std::lock_guard<std::mutex> lock(shard.ctl_mu);
    shard.ctl_out.Enqueue(std::move(inner));
  }
  return FlushControl(s);
}

Status ShardedEngine::FlushControl(ShardId s) {
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  Shard& shard = *shards_[static_cast<size_t>(s)];
  while (true) {
    if (supervisor_.quarantined(s)) {
      return Status::Unavailable("shard " + std::to_string(s) +
                                 " is quarantined");
    }
    PumpDeferred();
    std::vector<ReliableSender::Outgoing> due;
    bool exhausted = false;
    int64_t next_due = INT64_MAX;
    {
      std::lock_guard<std::mutex> lock(shard.ctl_mu);
      if (shard.ctl_out.unacked() == 0) {
        // Acked traffic: the shard is alive; clear its failure streak.
        supervisor_.OnProgress(s);
        return Status::Ok();
      }
      shard.ctl_out.CollectDue(MonoUs(), &due);
      exhausted = shard.ctl_out.exhausted();
      next_due = shard.ctl_out.next_due_us();
    }
    if (exhausted) {
      // Missed the ack deadline through the whole retry budget: the
      // fabric's failure detector. Restart (then retry: Reset re-queued
      // everything under the new epoch) or bubble the quarantine.
      const Status st = HandleShardFailure(s);
      if (!st.ok()) return st;
      continue;
    }
    for (ReliableSender::Outgoing& o : due) {
      if (o.is_retry) frame_retries_.fetch_add(1, std::memory_order_relaxed);
      if (!transport_->Send(kFrontEndpoint, s, o.envelope)) {
        transport_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (due.empty()) SleepUntilDue(next_due);
  }
}

Status ShardedEngine::FlushEgress(ShardId s) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  while (true) {
    PumpDeferred();
    if (shard.dead.load(std::memory_order_acquire) ||
        supervisor_.quarantined(s)) {
      // The producer is gone; salvage what it accepted (dedup-safe).
      LocalDrainEgress(shard);
      return Status::Ok();
    }
    std::vector<ReliableSender::Outgoing> due;
    bool exhausted = false;
    int64_t next_due = INT64_MAX;
    {
      std::lock_guard<std::mutex> lock(shard.egress_mu);
      if (shard.match_out.unacked() == 0) return Status::Ok();
      shard.match_out.CollectDue(MonoUs(), &due);
      exhausted = shard.match_out.exhausted();
      next_due = shard.match_out.next_due_us();
    }
    if (exhausted) {
      // The in-process front stopped acking — the transport ate every
      // attempt. Deliver locally rather than lose accepted matches.
      LocalDrainEgress(shard);
      return Status::Ok();
    }
    for (ReliableSender::Outgoing& o : due) {
      if (o.is_retry) frame_retries_.fetch_add(1, std::memory_order_relaxed);
      if (!transport_->Send(shard.id, kFrontEndpoint, o.envelope)) {
        transport_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (due.empty()) SleepUntilDue(next_due);
  }
}

void ShardedEngine::EnqueueEgress(Shard& shard, std::string inner) {
  std::vector<ReliableSender::Outgoing> due;
  {
    std::lock_guard<std::mutex> lock(shard.egress_mu);
    shard.match_out.Enqueue(std::move(inner));
    // A dead shard can't transmit; the frame pends for salvage/replay.
    if (!shard.dead.load(std::memory_order_acquire)) {
      shard.match_out.CollectDue(MonoUs(), &due);
    }
  }
  for (ReliableSender::Outgoing& o : due) {
    if (o.is_retry) frame_retries_.fetch_add(1, std::memory_order_relaxed);
    if (!transport_->Send(shard.id, kFrontEndpoint, o.envelope)) {
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ShardedEngine::ShipMatches(ShardId s, std::string frame) {
  EnqueueEgress(*shards_[static_cast<size_t>(s)], std::move(frame));
}

void ShardedEngine::PumpDeferred() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    while (true) {
      std::string frame;
      {
        std::lock_guard<std::mutex> lock(shard.deferred_mu);
        if (shard.deferred.empty()) break;
        frame = std::move(shard.deferred.front());
        shard.deferred.pop_front();
      }
      if (shard.dead.load(std::memory_order_acquire)) continue;
      Frame f;
      if (!DecodeFrame(frame, &f)) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (f.enveloped) AcceptControl(shard, std::move(f));
    }
  }
}

void ShardedEngine::LocalDrainEgress(Shard& shard) {
  std::vector<std::string> inners;
  {
    std::lock_guard<std::mutex> lock(shard.egress_mu);
    inners = shard.match_out.TakeInners();
  }
  for (const std::string& inner : inners) {
    Frame f;
    if (!DecodeFrame(inner, &f)) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Copies that did reach the front die in its dedup window / the
    // drain-token max.
    ApplyFromShard(f);
  }
}

// --- supervision -------------------------------------------------------------

Status ShardedEngine::HandleShardFailure(ShardId s) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  while (true) {
    if (!supervisor_.OnFailure(s)) {
      QuarantineShard(s);
      return Status::Unavailable(
          "shard " + std::to_string(s) +
          " quarantined after repeated restart failures");
    }
    shard_restarts_.fetch_add(1, std::memory_order_relaxed);
    if (RestartShard(shard)) {
      supervisor_.OnRestart(s);
      return Status::Ok();
    }
  }
}

bool ShardedEngine::RestartShard(Shard& shard) {
  if (shard.permanently_failed) return false;
  // 1. Tear down the dead incarnation (Abort: no graceful drain to wait on).
  if (shard.engine != nullptr) {
    if (shard.engine->running()) shard.engine->Abort();
    shard.engine.reset();
  }
  // 2. Salvage matches it accepted but never got acked for — the recovery
  //    guarantee that makes kill+restart invisible to exact equivalence.
  LocalDrainEgress(shard);
  // 3. Stale parked frames describe the dead incarnation's links.
  {
    std::lock_guard<std::mutex> lock(shard.deferred_mu);
    shard.deferred.clear();
  }
  shard.egress = std::make_unique<ShardEgress>(
      this, shard.id, config_.dedup_window_capacity);
  shard.durability.reset();

  // 4. Rebuild the index: from the shard's own durable directory when the
  //    fabric is durable, from the bootstrap geometry otherwise (queries
  //    are restored by the registry resync below either way).
  const uint64_t bit = ShardBit(shard.id);
  shard.applied.clear();
  bool recovered = false;
  if (durable_root_) {
    const std::string dir = ShardDirPath(config_.durability.dir, shard.id);
    RecoveredState state;
    if (RecoverState(dir, &state)) {
      shard.cluster = std::make_unique<Cluster>(
          RemapPlan(std::move(state.plan), state.vocab, *vocab_), vocab_,
          config_.cluster);
      for (const STSQuery& rq : state.queries) {
        // Skip queries the front unsubscribed (or migrated away) while the
        // shard was down — their delete frames may be gone for good.
        auto it = query_shards_.find(rq.id);
        if (it == query_shards_.end() || !(it->second & bit)) continue;
        const STSQuery q = RemapQuery(rq, state.vocab, *vocab_);
        shard.cluster->Process(StreamTuple::OfInsert(q));
        shard.applied.insert(q.id);
      }
      shard.cluster->ResetLoadWindow();
      DurabilityConfig config = config_.durability;
      config.dir = dir;
      auto durability = std::make_unique<DurabilityManager>(config);
      const uint64_t resume_seq =
          state.checkpoint_seq +
          (state.wal_segments > 0
               ? static_cast<uint64_t>(state.wal_segments) - 1
               : 0);
      if (durability->Resume(resume_seq, state.last_lsn + 1)) {
        shard.durability = std::move(durability);
      }
      recovered = true;
    }
  }
  if (!recovered) {
    if (base_plan_ == nullptr) return false;
    shard.cluster =
        std::make_unique<Cluster>(*base_plan_, vocab_, config_.cluster);
  }

  // 5. Reconcile: queries the registry places here that the rebuilt index
  //    lacks are the link's state-sync prologue, applied before any
  //    replayed in-flight frame.
  std::vector<std::string> sync;
  for (const auto& [id, mask] : query_shards_) {
    if (!(mask & bit) || shard.applied.count(id) != 0) continue;
    sync.push_back(EncodeQueryFrame(FrameKind::kQueryInsert, queries_[id]));
  }

  // 6. Fence both links under a fresh epoch; unacked control frames replay
  //    after the prologue, the match link restarts clean (step 2 salvaged
  //    its backlog).
  ++shard.link_epoch;
  {
    std::lock_guard<std::mutex> lock(shard.ctl_mu);
    shard.ctl_out.Reset(shard.link_epoch, std::move(sync));
    shard.ctl_in.Reset(shard.link_epoch);
  }
  {
    std::lock_guard<std::mutex> lock(shard.egress_mu);
    shard.match_out.Reset(shard.link_epoch, {});
  }
  {
    std::lock_guard<std::mutex> lock(shard.ingress_mu);
    shard.match_in.Reset(shard.link_epoch);
  }

  // 7. Back to life.
  shard.dead.store(false, std::memory_order_release);
  if (started_) {
    EngineOptions opts = config_.engine;
    if (shard.durability != nullptr) {
      opts.wal = &shard.durability->wal();
    }
    opts.delivery = shard.egress.get();
    shard.engine = std::make_unique<ThreadedEngine>(*shard.cluster, opts);
    shard.engine->Start();
  }
  return true;
}

void ShardedEngine::QuarantineShard(ShardId s) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  supervisor_.Quarantine(s);
  quarantine_events_.fetch_add(1, std::memory_order_relaxed);
  shard.dead.store(true, std::memory_order_release);
  if (shard.engine != nullptr) {
    if (shard.engine->running()) shard.engine->Abort();
    shard.engine.reset();
  }
  // Accepted matches still get out; queued control frames die with the
  // shard (the caller's status reports the loss).
  LocalDrainEgress(shard);
  {
    std::lock_guard<std::mutex> lock(shard.ctl_mu);
    frames_dropped_.fetch_add(shard.ctl_out.unacked(),
                              std::memory_order_relaxed);
    shard.ctl_out.TakeInners();
  }
  {
    std::lock_guard<std::mutex> lock(shard.deferred_mu);
    shard.deferred.clear();
  }
  shard.durability.reset();
}

Status ShardedEngine::CheckHealth() {
  Status dur = durability_status();
  if (!dur.ok()) return dur;
  Status worst = Status::Ok();
  for (const auto& shard : shards_) {
    if (supervisor_.quarantined(shard->id)) {
      if (worst.ok()) {
        worst = Status::Unavailable("shard " + std::to_string(shard->id) +
                                    " is quarantined");
      }
      continue;
    }
    const Status st = SendControl(shard->id, EncodePingFrame());
    if (!st.ok() && worst.ok()) worst = st;
  }
  return worst;
}

void ShardedEngine::KillShard(ShardId s, bool allow_restart) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  shard.dead.store(true, std::memory_order_release);
  shard.permanently_failed = !allow_restart;
  if (shard.engine != nullptr) {
    if (shard.engine->running()) shard.engine->Abort();
    shard.engine.reset();
  }
  if (shard.durability != nullptr) {
    // Crash semantics: unwritten WAL batch is lost; on-disk state is what
    // the sync mode had already guaranteed.
    shard.durability->Abandon();
    shard.durability.reset();
  }
}

Status ShardedEngine::ReviveShard(ShardId s) {
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  Shard& shard = *shards_[static_cast<size_t>(s)];
  shard.permanently_failed = false;
  supervisor_.Clear(s);
  shard_restarts_.fetch_add(1, std::memory_order_relaxed);
  if (!RestartShard(shard)) {
    supervisor_.Quarantine(s);
    return Status::Internal("shard " + std::to_string(s) +
                            " could not be revived");
  }
  supervisor_.OnRestart(s);
  // Push the state-sync prologue now so the shard is consistent before the
  // next organic control frame.
  return FlushControl(s);
}

Status ShardedEngine::durability_status() const {
  for (const auto& shard : shards_) {
    if (shard->durability != nullptr && !shard->durability->healthy()) {
      return Status::DataLoss("shard " + std::to_string(shard->id) +
                              " WAL hit a sticky I/O error");
    }
  }
  return Status::Ok();
}

FabricFaultStats ShardedEngine::fault_stats() const {
  FabricFaultStats s;
  s.transport_errors = transport_errors_.load(std::memory_order_relaxed);
  s.frame_retries = frame_retries_.load(std::memory_order_relaxed);
  s.frame_redeliveries =
      frame_redeliveries_.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  s.dup_suppressed = dup_suppressed_.load(std::memory_order_relaxed);
  s.shard_restarts = shard_restarts_.load(std::memory_order_relaxed);
  s.shards_quarantined =
      quarantine_events_.load(std::memory_order_relaxed);
  return s;
}

// --- transport receive paths -------------------------------------------------

void ShardedEngine::ShardReceive(Shard& shard, ShardId from,
                                 const std::string& frame) {
  (void)from;
  // A dead shard is a dead process: everything addressed to it vanishes
  // unacked. The front's retry budget is the detector.
  if (shard.dead.load(std::memory_order_acquire)) return;
  Frame f;
  if (!DecodeFrame(frame, &f)) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (f.kind == FrameKind::kAck) {
    // The front acking this shard's match link.
    std::lock_guard<std::mutex> lock(shard.egress_mu);
    shard.match_out.Ack(f.epoch, f.ack_upto);
    return;
  }
  if (!f.enveloped) {
    // Raw control frames no longer travel the fabric.
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Ordered release must happen on the facade thread (the engines'
  // single-producer contract); a frame the transport released elsewhere —
  // a matured delayed hold-back inside a worker's Send — is parked for the
  // facade thread's next pump.
  if (std::this_thread::get_id() !=
      control_thread_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(shard.deferred_mu);
    shard.deferred.push_back(frame);
    return;
  }
  AcceptControl(shard, std::move(f));
}

void ShardedEngine::AcceptControl(Shard& shard, Frame&& f) {
  ReliableReceiver::Result r = shard.ctl_in.Accept(std::move(f));
  if (r.stale) return;
  if (r.duplicate) {
    frame_redeliveries_.fetch_add(1, std::memory_order_relaxed);
  }
  for (Frame& released : r.apply) ApplyControl(shard, released);
  // Apply-before-ack, cumulative; duplicates are re-acked so the front
  // stops retrying a frame whose first ack got lost.
  if (!transport_->Send(shard.id, kFrontEndpoint,
                        EncodeAckFrame(r.epoch, r.ack_upto))) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedEngine::ApplyControl(Shard& shard, Frame& f) {
  switch (f.kind) {
    case FrameKind::kDrain:
      // Flush barrier: everything submitted before the marker is fully
      // processed (including match handoff) before the ack token travels
      // back on the match link — behind every match it must trail.
      if (shard.engine != nullptr) shard.engine->Quiesce();
      EnqueueEgress(shard,
                    EncodeDrainFrame(FrameKind::kDrainAck, f.drain_token));
      return;
    case FrameKind::kPing:
      return;  // the ack is the answer
    default:
      ShardApply(shard, f);
      return;
  }
}

void ShardedEngine::ShardApply(Shard& shard, const Frame& f) {
  switch (f.kind) {
    case FrameKind::kObject: {
      const StreamTuple tuple = StreamTuple::OfObject(f.object);
      if (shard.engine != nullptr) {
        shard.engine->Submit(tuple, f.publish_us);
        return;
      }
      std::vector<MatchResult> fresh;
      shard.cluster->Process(tuple, &fresh);
      std::vector<Delivery> accepted;
      accepted.reserve(fresh.size());
      for (const MatchResult& m : fresh) {
        if (shard.egress->AcceptFresh(m.query_id, m.object_id)) {
          Delivery d;
          d.query_id = m.query_id;
          d.object_id = m.object_id;
          d.publish_us = f.publish_us;
          d.score = m.score;
          d.expire_us = m.expire_us;
          accepted.push_back(d);
        }
      }
      if (!accepted.empty()) {
        shard.egress->DeliverBatch(accepted.data(), accepted.size());
      }
      return;
    }
    case FrameKind::kQueryInsert: {
      // The applied set makes redelivery idempotent: a restart replays
      // every unacked frame, and an insert that already landed (its ack was
      // the casualty) must not double-index.
      if (shard.applied.count(f.query.id) != 0) return;
      shard.applied.insert(f.query.id);
      // WAL-before-apply, against this shard's own log: the copy phase of a
      // cross-shard migration is durable the same way a fresh subscribe is.
      if (shard.durability != nullptr) {
        shard.durability->wal().AppendSubscribe(f.query, *vocab_);
      }
      const StreamTuple tuple = StreamTuple::OfInsert(f.query);
      if (shard.engine != nullptr) {
        shard.engine->Submit(tuple);
      } else {
        shard.cluster->Process(tuple);
      }
      return;
    }
    case FrameKind::kQueryUpdate: {
      // Delete-then-insert under one frame: the delete (old region) must
      // come first because a same-id insert binds the existing index slot.
      // Redelivery converges — the delete of an already-moved placement is
      // a partial no-op and the re-insert lands on the same slot.
      const bool had = shard.applied.count(f.query.id) != 0;
      shard.applied.insert(f.query.id);
      if (shard.durability != nullptr) {
        shard.durability->wal().AppendUpdate(f.query, *vocab_);
      }
      if (had) {
        STSQuery old_query = f.query;
        old_query.region = f.old_region;
        const StreamTuple del = StreamTuple::OfDelete(old_query);
        if (shard.engine != nullptr) {
          shard.engine->Submit(del);
        } else {
          shard.cluster->Process(del);
        }
      }
      const StreamTuple ins = StreamTuple::OfInsert(f.query);
      if (shard.engine != nullptr) {
        shard.engine->Submit(ins);
      } else {
        shard.cluster->Process(ins);
      }
      return;
    }
    case FrameKind::kQueryDelete: {
      // Same idempotency in reverse: deleting a query this incarnation
      // never indexed is a no-op (it was reconciled away at restart).
      if (shard.applied.erase(f.query.id) == 0) return;
      if (shard.durability != nullptr) {
        shard.durability->wal().AppendUnsubscribe(f.query.id);
      }
      const StreamTuple tuple = StreamTuple::OfDelete(f.query);
      if (shard.engine != nullptr) {
        shard.engine->Submit(tuple);
      } else {
        shard.cluster->Process(tuple);
      }
      return;
    }
    default:
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
  }
}

void ShardedEngine::FrontReceive(ShardId from, const std::string& frame) {
  if (from < 0 || from >= num_shards()) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Frame f;
  if (!DecodeFrame(frame, &f)) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = *shards_[static_cast<size_t>(from)];
  if (f.kind == FrameKind::kAck) {
    // The shard acking the front's control link.
    std::lock_guard<std::mutex> lock(shard.ctl_mu);
    shard.ctl_out.Ack(f.epoch, f.ack_upto);
    return;
  }
  if (!f.enveloped) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Concurrent path: worker threads of every shard land here. Sequence
  // dedup kills retransmitted copies; the DeliveryRouter's window kills
  // semantic duplicates (migration overlap, salvage replays).
  uint64_t ack_epoch = 0, ack_upto = 0;
  std::vector<Frame> apply;
  {
    std::lock_guard<std::mutex> lock(shard.ingress_mu);
    ReliableReceiver::Result r = shard.match_in.Accept(std::move(f));
    if (r.stale) return;
    if (r.duplicate) {
      frame_redeliveries_.fetch_add(1, std::memory_order_relaxed);
    }
    ack_epoch = r.epoch;
    ack_upto = r.ack_upto;
    apply = std::move(r.apply);
  }
  for (Frame& released : apply) ApplyFromShard(released);
  SendToShard(from, EncodeAckFrame(ack_epoch, ack_upto));
}

void ShardedEngine::ApplyFromShard(Frame& f) {
  switch (f.kind) {
    case FrameKind::kMatchBatch:
      for (const WireMatch& wm : f.matches) {
        MatchResult m;
        m.query_id = wm.query_id;
        m.object_id = wm.object_id;
        m.score = wm.score;
        m.expire_us = wm.expire_us;
        if (front_sink_->AcceptFresh(m.query_id, m.object_id)) {
          front_sink_->Deliver(m, wm.publish_us);
        } else {
          dup_suppressed_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;
    case FrameKind::kDrainAck: {
      // Monotonic max: drain acks can arrive out of order on the unordered
      // match link (and replay through the salvage path).
      uint64_t cur = last_drain_ack_.load(std::memory_order_relaxed);
      while (f.drain_token > cur &&
             !last_drain_ack_.compare_exchange_weak(
                 cur, f.drain_token, std::memory_order_release,
                 std::memory_order_relaxed)) {
      }
      return;
    }
    default:
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
  }
}

// --- engines -----------------------------------------------------------------

void ShardedEngine::DataPlaneFill(uint64_t* pending,
                                  uint64_t* capacity) const {
  uint64_t p = 0, c = 0;
  for (const auto& shard : shards_) {
    if (shard->engine == nullptr) continue;
    uint64_t sp = 0, sc = 0;
    shard->engine->DataPlaneFill(&sp, &sc);
    p += sp;
    c += sc;
  }
  *pending = p;
  *capacity = c;
}

void ShardedEngine::Start() {
  if (!bootstrapped() || started_) return;
  for (auto& shard : shards_) {
    if (supervisor_.quarantined(shard->id)) continue;
    EngineOptions opts = config_.engine;
    if (shard->durability != nullptr) {
      opts.wal = &shard->durability->wal();
    }
    opts.delivery = shard->egress.get();
    shard->engine =
        std::make_unique<ThreadedEngine>(*shard->cluster, opts);
    shard->engine->Start();
  }
  started_ = true;
}

RunReport ShardedEngine::Stop() {
  RunReport fleet;
  if (!started_) return fleet;
  control_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  PumpDeferred();
  shard_reports_.clear();
  for (auto& shard : shards_) {
    if (shard->engine != nullptr) {
      shard_reports_.push_back(shard->engine->Stop());
      shard->engine.reset();
    } else {
      shard_reports_.push_back(RunReport());
    }
  }
  started_ = false;
  // Everything the engines produced on their way out still has to cross
  // the match links (retransmitting what the transport dropped).
  for (auto& shard : shards_) {
    if (shard->dead.load(std::memory_order_acquire) ||
        supervisor_.quarantined(shard->id)) {
      LocalDrainEgress(*shard);
    } else {
      FlushEgress(shard->id);
    }
  }
  PumpDeferred();
  fleet = shard_reports_[0];
  for (size_t i = 1; i < shard_reports_.size(); ++i) {
    fleet.MergeShard(shard_reports_[i]);
  }
  // The fabric's own fault tallies ride the fleet report.
  const FabricFaultStats fs = fault_stats();
  fleet.transport_errors = fs.transport_errors;
  fleet.frame_retries = fs.frame_retries;
  fleet.frame_redeliveries = fs.frame_redeliveries;
  fleet.frames_dropped = fs.frames_dropped;
  fleet.fabric_dup_suppressed = fs.dup_suppressed;
  fleet.shard_restarts = fs.shard_restarts;
  fleet.shards_quarantined = fs.shards_quarantined;
  return fleet;
}

// --- durability --------------------------------------------------------------

bool ShardedEngine::durable() const {
  if (!durable_root_) return false;
  for (const auto& shard : shards_) {
    if (supervisor_.quarantined(shard->id)) continue;
    if (shard->durability == nullptr || !shard->durability->healthy()) {
      return false;
    }
  }
  return !shards_.empty();
}

bool ShardedEngine::Checkpoint(QueryId next_query_id,
                               ObjectId next_object_id,
                               const TopKCheckpoint* topk) {
  if (!durable_root_ || !bootstrapped()) return false;
  bool ok = true;
  for (auto& shard : shards_) {
    if (supervisor_.quarantined(shard->id)) continue;
    if (shard->durability == nullptr) {
      ok = false;
      continue;
    }
    const uint64_t seq = shard->durability->BeginCheckpoint();
    if (seq == 0) {
      ok = false;
      continue;
    }
    CheckpointView view;
    view.next_query_id = next_query_id;
    view.next_object_id = next_object_id;
    view.vocab = vocab_;
    PartitionPlan plan = shard->engine != nullptr
                             ? shard->engine->PlanCopy()
                             : shard->cluster->router().plan();
    view.plan = &plan;
    const uint64_t bit = ShardBit(shard->id);
    for (const auto& [id, q] : queries_) {
      if (query_shards_[id] & bit) view.queries.push_back(&q);
    }
    // The front's top-k heap state rides every shard's checkpoint so
    // restore survives the loss of any one shard directory.
    view.topk = topk;
    ok = shard->durability->CommitCheckpoint(seq, std::move(view)) && ok;
  }
  ok = WriteShardMapFile(ShardMapPath(config_.durability.dir),
                         *map_->Current()) &&
       ok;
  return ok;
}

bool ShardedEngine::ShouldCheckpoint() const {
  for (const auto& shard : shards_) {
    if (shard->durability != nullptr &&
        shard->durability->ShouldCheckpoint()) {
      return true;
    }
  }
  return false;
}

void ShardedEngine::Kill() {
  for (auto& shard : shards_) {
    shard->dead.store(true, std::memory_order_release);
    if (shard->engine != nullptr && shard->engine->running()) {
      shard->engine->Abort();
    }
    shard->engine.reset();
    if (shard->durability != nullptr) shard->durability->Abandon();
    shard->durability.reset();
  }
  started_ = false;
}

// --- migration ---------------------------------------------------------------

Status ShardedEngine::DrainShard(ShardId shard) {
  const uint64_t token = next_drain_token_++;
  const Status st =
      SendControl(shard, EncodeDrainFrame(FrameKind::kDrain, token));
  if (!st.ok()) return st;
  // The marker was applied (apply-before-ack), so its ack token is already
  // queued on the match link *behind* every match produced before the
  // barrier; flushing the link until the token shows proves they all
  // reached the front.
  while (last_drain_ack_.load(std::memory_order_acquire) < token) {
    const Status flush = FlushEgress(shard);
    if (!flush.ok()) return flush;
    PumpDeferred();
  }
  return Status::Ok();
}

ShardMigrationStats ShardedEngine::MigrateCell(CellId cell, ShardId from,
                                               ShardId to) {
  ShardMigrationStats stats;
  if (!bootstrapped() || from == to) return stats;
  if (from < 0 || to < 0 || from >= num_shards() || to >= num_shards()) {
    return stats;
  }
  if (supervisor_.quarantined(from) || supervisor_.quarantined(to)) {
    return stats;
  }
  const auto map = map_->Current();
  if (map->OwnerOf(cell) != from) return stats;

  // Phase 1 — copy: the new owner gets every query indexed in the cell it
  // doesn't already hold. The shard WALs each insert before applying, so a
  // crash mid-copy recovers a harmless superset (the map still names
  // `from`; the extra copies at `to` produce no deliveries because no
  // object routes there yet). A copy that fails aborts the migration at
  // the same harmless point.
  const uint64_t to_bit = ShardBit(to);
  for (const QueryId id : cell_queries_[cell]) {
    uint64_t& mask = query_shards_[id];
    if (mask & to_bit) continue;
    const std::string frame =
        EncodeQueryFrame(FrameKind::kQueryInsert, queries_[id]);
    if (!SendControl(to, frame).ok()) return stats;
    mask |= to_bit;
    ++stats.queries_copied;
    stats.bytes += frame.size();
  }

  // Phase 2 — publish: objects for the cell now route to `to`. Persist the
  // new assignment before the source sheds anything.
  ShardMap next = *map;
  next.cell_shard[cell] = to;
  map_->Publish(std::move(next));
  if (durable_root_) {
    WriteShardMapFile(ShardMapPath(config_.durability.dir),
                      *map_->Current());
  }
  ++cells_migrated_;

  // Phase 3 — drain: flush everything in flight at the old owner. Objects
  // routed under the old map finish matching (and their matches reach the
  // front) before any source copy disappears. On failure keep the source
  // superset — correct, just unshed.
  if (!DrainShard(from).ok()) return stats;

  // Phase 4 — remove: retire source copies whose query no longer overlaps
  // any `from`-owned cell under the new map. In-flight duplicates this
  // window can still produce die in the front router's dedup window.
  const auto published = map_->Current();
  const GridSpec& grid = shards_[0]->cluster->router().plan().grid;
  const uint64_t from_bit = ShardBit(from);
  std::vector<QueryId> shed = cell_queries_[cell];
  for (const QueryId id : shed) {
    auto it = queries_.find(id);
    if (it == queries_.end()) continue;
    uint64_t& mask = query_shards_[id];
    if (!(mask & from_bit)) continue;
    grid.CellsOverlapping(it->second.region, &overlap_scratch_);
    bool still_needed = false;
    for (const CellId c : overlap_scratch_) {
      if (published->OwnerOf(c) == from) {
        still_needed = true;
        break;
      }
    }
    if (still_needed) continue;
    if (!SendControl(from, EncodeQueryFrame(FrameKind::kQueryDelete,
                                            it->second))
             .ok()) {
      return stats;
    }
    mask &= ~from_bit;
    ++stats.queries_removed;
  }
  return stats;
}

size_t ShardedEngine::MaybeRebalance() {
  if (!bootstrapped() || num_shards() < 2) return 0;
  const std::vector<ShardMove> moves =
      balancer_.Plan(*map_->Current(), cell_objects_,
                     config_.fabric.rebalance_max_moves);
  size_t migrated = 0;
  for (const ShardMove& move : moves) {
    if (supervisor_.quarantined(move.from) ||
        supervisor_.quarantined(move.to)) {
      continue;
    }
    const ShardMigrationStats stats =
        MigrateCell(move.cell, move.from, move.to);
    if (stats.queries_copied > 0 || stats.queries_removed > 0 ||
        map_->Current()->OwnerOf(move.cell) == move.to) {
      ++migrated;
    }
  }
  // New observation window after acting (same policy as ResetLoadWindow).
  if (!moves.empty()) {
    std::fill(cell_objects_.begin(), cell_objects_.end(), 0);
  }
  return migrated;
}

}  // namespace ps2
