#include "shard/wire.h"

#include <utility>

#include "common/bytes.h"
#include "persist/record_codec.h"

namespace ps2 {

namespace {

constexpr size_t kHeaderBytes = 1 + 2 * sizeof(uint32_t);

// The CRC seeds with the kind byte so every header-or-payload single-byte
// corruption is caught (the length field is cross-checked against the
// actual frame size instead).
uint32_t FrameCrc(uint8_t kind, const char* payload, size_t n) {
  const uint32_t seed = Crc32(&kind, 1);
  return Crc32(payload, n, seed);
}

std::string Seal(FrameKind kind, std::string payload) {
  ByteWriter w;
  w.Pod<uint8_t>(static_cast<uint8_t>(kind));
  w.Pod<uint32_t>(static_cast<uint32_t>(payload.size()));
  w.Pod<uint32_t>(
      FrameCrc(static_cast<uint8_t>(kind), payload.data(), payload.size()));
  std::string out = w.TakeBuffer();
  out += payload;
  return out;
}

bool DecodeObjectPayload(ByteReader& r, Frame* out) {
  out->object.id = r.Pod<uint64_t>();
  const double x = r.Pod<double>();
  const double y = r.Pod<double>();
  out->object.loc = Point{x, y};
  out->object.timestamp_us = r.Pod<int64_t>();
  out->object.ttl_us = r.Pod<int64_t>();
  out->publish_us = r.Pod<int64_t>();
  const uint32_t nterms = r.Pod<uint32_t>();
  if (!r.FitsCount(nterms, sizeof(uint32_t))) return false;
  std::vector<TermId> terms;
  terms.reserve(nterms);
  for (uint32_t i = 0; i < nterms && r.ok(); ++i) {
    terms.push_back(r.Pod<uint32_t>());
  }
  if (!r.ok()) return false;
  // FromTerms re-sorts/dedups, so a hand-crafted frame cannot smuggle an
  // unnormalized term list past the matcher's binary-search assumption.
  const ObjectId id = out->object.id;
  const Point loc = out->object.loc;
  const int64_t ts = out->object.timestamp_us;
  const int64_t ttl = out->object.ttl_us;
  out->object = SpatioTextualObject::FromTerms(id, loc, std::move(terms));
  out->object.timestamp_us = ts;
  out->object.ttl_us = ttl;
  return true;
}

bool DecodeMatchBatchPayload(ByteReader& r, Frame* out) {
  const uint32_t n = r.Pod<uint32_t>();
  if (!r.FitsCount(n, 2 * sizeof(uint64_t) + 2 * sizeof(int64_t) +
                          sizeof(double))) {
    return false;
  }
  out->matches.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    WireMatch m;
    m.query_id = r.Pod<uint64_t>();
    m.object_id = r.Pod<uint64_t>();
    m.publish_us = r.Pod<int64_t>();
    m.score = r.Pod<double>();
    m.expire_us = r.Pod<int64_t>();
    out->matches.push_back(m);
  }
  return r.ok();
}

}  // namespace

std::string EncodeObjectFrame(const SpatioTextualObject& o,
                              int64_t publish_us) {
  ByteWriter w;
  w.Pod<uint64_t>(o.id);
  w.Pod<double>(o.loc.x);
  w.Pod<double>(o.loc.y);
  w.Pod<int64_t>(o.timestamp_us);
  w.Pod<int64_t>(o.ttl_us);
  w.Pod<int64_t>(publish_us);
  w.Pod<uint32_t>(static_cast<uint32_t>(o.terms.size()));
  for (const TermId t : o.terms) w.Pod<uint32_t>(t);
  return Seal(FrameKind::kObject, w.TakeBuffer());
}

std::string EncodeQueryFrame(FrameKind kind, const STSQuery& q) {
  ByteWriter w;
  WriteQueryRecord(w, q,
                   [](ByteWriter& bw, TermId t) { bw.Pod<uint32_t>(t); });
  return Seal(kind, w.TakeBuffer());
}

std::string EncodeMatchBatchFrame(const WireMatch* matches, size_t n) {
  ByteWriter w;
  w.Pod<uint32_t>(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    w.Pod<uint64_t>(matches[i].query_id);
    w.Pod<uint64_t>(matches[i].object_id);
    w.Pod<int64_t>(matches[i].publish_us);
    w.Pod<double>(matches[i].score);
    w.Pod<int64_t>(matches[i].expire_us);
  }
  return Seal(FrameKind::kMatchBatch, w.TakeBuffer());
}

std::string EncodeQueryUpdateFrame(const STSQuery& q, const Rect& old_region) {
  ByteWriter w;
  WriteQueryRecord(w, q,
                   [](ByteWriter& bw, TermId t) { bw.Pod<uint32_t>(t); });
  w.Pod<double>(old_region.min_x);
  w.Pod<double>(old_region.min_y);
  w.Pod<double>(old_region.max_x);
  w.Pod<double>(old_region.max_y);
  return Seal(FrameKind::kQueryUpdate, w.TakeBuffer());
}

std::string EncodeDrainFrame(FrameKind kind, uint64_t token) {
  ByteWriter w;
  w.Pod<uint64_t>(token);
  return Seal(kind, w.TakeBuffer());
}

std::string EncodeControlFrame(uint64_t epoch, uint64_t seq,
                               const std::string& inner) {
  ByteWriter w;
  w.Pod<uint64_t>(epoch);
  w.Pod<uint64_t>(seq);
  w.Pod<uint32_t>(static_cast<uint32_t>(inner.size()));
  std::string payload = w.TakeBuffer();
  payload += inner;
  return Seal(FrameKind::kControl, std::move(payload));
}

std::string EncodeAckFrame(uint64_t epoch, uint64_t ack_upto) {
  ByteWriter w;
  w.Pod<uint64_t>(epoch);
  w.Pod<uint64_t>(ack_upto);
  return Seal(FrameKind::kAck, w.TakeBuffer());
}

std::string EncodePingFrame() {
  return Seal(FrameKind::kPing, std::string());
}

bool DecodeFrame(const std::string& frame, Frame* out) {
  if (frame.size() < kHeaderBytes) return false;
  ByteReader h(frame.data(), kHeaderBytes);
  const uint8_t kind = h.Pod<uint8_t>();
  const uint32_t payload_len = h.Pod<uint32_t>();
  const uint32_t crc = h.Pod<uint32_t>();
  if (frame.size() != kHeaderBytes + payload_len) return false;
  const char* payload = frame.data() + kHeaderBytes;
  if (FrameCrc(kind, payload, payload_len) != crc) return false;

  *out = Frame();
  ByteReader r(payload, payload_len);
  switch (static_cast<FrameKind>(kind)) {
    case FrameKind::kObject:
      out->kind = FrameKind::kObject;
      return DecodeObjectPayload(r, out) && r.remaining() == 0;
    case FrameKind::kQueryInsert:
    case FrameKind::kQueryDelete:
      out->kind = static_cast<FrameKind>(kind);
      return ReadQueryRecord(r, &out->query,
                             [](ByteReader& br) {
                               return static_cast<TermId>(br.Pod<uint32_t>());
                             }) &&
             r.remaining() == 0;
    case FrameKind::kQueryUpdate: {
      out->kind = FrameKind::kQueryUpdate;
      if (!ReadQueryRecord(r, &out->query, [](ByteReader& br) {
            return static_cast<TermId>(br.Pod<uint32_t>());
          })) {
        return false;
      }
      const double mnx = r.Pod<double>();
      const double mny = r.Pod<double>();
      const double mxx = r.Pod<double>();
      const double mxy = r.Pod<double>();
      out->old_region = Rect(mnx, mny, mxx, mxy);
      return r.ok() && r.remaining() == 0;
    }
    case FrameKind::kMatchBatch:
      out->kind = FrameKind::kMatchBatch;
      return DecodeMatchBatchPayload(r, out) && r.remaining() == 0;
    case FrameKind::kDrain:
    case FrameKind::kDrainAck:
      out->kind = static_cast<FrameKind>(kind);
      out->drain_token = r.Pod<uint64_t>();
      return r.ok() && r.remaining() == 0;
    case FrameKind::kControl: {
      const uint64_t epoch = r.Pod<uint64_t>();
      const uint64_t seq = r.Pod<uint64_t>();
      const uint32_t inner_len = r.Pod<uint32_t>();
      if (!r.ok() || epoch == 0 || seq == 0) return false;
      if (r.remaining() != inner_len) return false;
      const std::string inner(payload + (payload_len - r.remaining()),
                              inner_len);
      if (!DecodeFrame(inner, out)) return false;
      // Envelopes never nest, and an ack is a link-level reply, not a
      // payload — rejecting both keeps the recursion depth at one.
      if (out->kind == FrameKind::kControl || out->kind == FrameKind::kAck ||
          out->enveloped) {
        return false;
      }
      out->enveloped = true;
      out->epoch = epoch;
      out->seq = seq;
      return true;
    }
    case FrameKind::kAck:
      out->kind = FrameKind::kAck;
      out->epoch = r.Pod<uint64_t>();
      out->ack_upto = r.Pod<uint64_t>();
      return r.ok() && r.remaining() == 0 && out->epoch != 0;
    case FrameKind::kPing:
      out->kind = FrameKind::kPing;
      return r.remaining() == 0;
  }
  return false;
}

}  // namespace ps2
