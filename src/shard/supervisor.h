#ifndef PS2_SHARD_SUPERVISOR_H_
#define PS2_SHARD_SUPERVISOR_H_

#include <cstdint>
#include <vector>

#include "shard/shard_map.h"

namespace ps2 {

// Restart/quarantine policy knobs of the ShardSupervisor.
struct SupervisorPolicy {
  // Consecutive failure->restart cycles (with no acked progress in between)
  // tolerated before the shard is quarantined. Counts detection events, so
  // a restart that "succeeds" structurally but still never acks burns an
  // attempt too.
  int max_restarts = 3;
};

// Per-shard health bookkeeping of the fabric's supervision loop. The
// ShardedEngine detects failure (a control frame exhausted its retry
// budget, or a health probe did) and asks the supervisor what to do; the
// supervisor only tracks the state machine:
//
//   live --missed acks--> failing --restart ok + acked traffic--> live
//     \                      |
//      \                     +--max_restarts failures--> quarantined
//       +--ReviveShard (operator) <------------------------/
//
// Quarantined shards are dead to the fabric: frames to them are dropped and
// the facade reports kUnavailable for traffic touching their cells
// (degraded mode) while every healthy shard keeps serving.
class ShardSupervisor {
 public:
  explicit ShardSupervisor(SupervisorPolicy policy = SupervisorPolicy())
      : policy_(policy) {}

  void Resize(size_t num_shards) { states_.assign(num_shards, State()); }
  // Fabric stand-up hook (the engine's supervisor member is built before
  // options are known).
  void SetPolicy(SupervisorPolicy policy) { policy_ = policy; }

  // Acked traffic from the shard: it is alive, clear the failure streak.
  void OnProgress(ShardId s) { states_[static_cast<size_t>(s)].failures = 0; }

  // A missed ack deadline or failed probe. Returns true when the shard has
  // restart budget left (caller restarts it), false when the streak
  // exceeded the policy (caller quarantines it).
  bool OnFailure(ShardId s) {
    State& st = states_[static_cast<size_t>(s)];
    if (st.quarantined) return false;
    return ++st.failures <= policy_.max_restarts;
  }

  void OnRestart(ShardId s) { ++states_[static_cast<size_t>(s)].restarts; }

  void Quarantine(ShardId s) {
    states_[static_cast<size_t>(s)].quarantined = true;
  }

  // Operator override (ReviveShard): back to live with a clean slate.
  void Clear(ShardId s) {
    State& st = states_[static_cast<size_t>(s)];
    st.quarantined = false;
    st.failures = 0;
  }

  bool quarantined(ShardId s) const {
    return states_[static_cast<size_t>(s)].quarantined;
  }
  bool any_quarantined() const {
    for (const State& st : states_) {
      if (st.quarantined) return true;
    }
    return false;
  }
  uint64_t quarantined_count() const {
    uint64_t n = 0;
    for (const State& st : states_) n += st.quarantined ? 1 : 0;
    return n;
  }
  uint64_t restarts(ShardId s) const {
    return states_[static_cast<size_t>(s)].restarts;
  }
  uint64_t total_restarts() const {
    uint64_t n = 0;
    for (const State& st : states_) n += st.restarts;
    return n;
  }
  int failure_streak(ShardId s) const {
    return states_[static_cast<size_t>(s)].failures;
  }

 private:
  struct State {
    int failures = 0;        // consecutive, reset by acked progress
    uint64_t restarts = 0;   // lifetime restart attempts
    bool quarantined = false;
  };

  SupervisorPolicy policy_;
  std::vector<State> states_;
};

}  // namespace ps2

#endif  // PS2_SHARD_SUPERVISOR_H_
