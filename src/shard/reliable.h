#ifndef PS2_SHARD_RELIABLE_H_
#define PS2_SHARD_RELIABLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "shard/wire.h"

namespace ps2 {

// Retransmission schedule of one reliable link. The first send is free; a
// frame unacked after base_backoff_us is resent, doubling the wait each
// attempt (capped at max_backoff_us) with +/-jitter applied so a fleet of
// links never retries in lockstep. A frame still unacked after max_attempts
// sends marks the link exhausted — the fabric's signal that the peer is
// down, handed to the ShardSupervisor.
struct RetryPolicy {
  int max_attempts = 10;
  int64_t base_backoff_us = 200;
  int64_t max_backoff_us = 20000;
  double jitter = 0.2;  // fraction of the backoff, uniform in [-j, +j]
};

// Sender half of a reliable link: sequence-numbers frames, envelopes them
// (wire kControl), retransmits per the RetryPolicy until a cumulative ack
// covers them, and reports exhaustion when a frame runs out of attempts.
// Epochs fence incarnations: a shard restart bumps the link epoch, and acks
// or frames stamped with an older epoch are ignored by both halves.
//
// Not thread-safe; the owner wraps it in whatever lock the link's call
// pattern needs (the fabric's control links take acks from worker threads).
class ReliableSender {
 public:
  struct Outgoing {
    std::string envelope;
    bool is_retry = false;
  };

  explicit ReliableSender(RetryPolicy policy = RetryPolicy(),
                          uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : policy_(policy), rng_(seed) {}

  // Stand-up hook: re-keys policy and jitter seed after construction (the
  // fabric's links are members of a default-constructed Shard). Only safe
  // while nothing is pending.
  void Configure(RetryPolicy policy, uint64_t seed) {
    policy_ = policy;
    rng_ = Rng(seed);
  }

  // Queues one sealed frame; due for its first send immediately.
  void Enqueue(std::string inner) {
    Pending p;
    p.seq = next_seq_++;
    p.inner = std::move(inner);
    pending_.push_back(std::move(p));
  }

  // Envelopes every pending frame whose (re)send is due at `now` into `out`
  // and schedules its next retransmission. A frame that already burned
  // max_attempts sends is not resent; it trips exhausted() instead.
  void CollectDue(int64_t now, std::vector<Outgoing>* out) {
    for (Pending& p : pending_) {
      if (p.next_due_us > now) continue;
      if (p.attempts >= policy_.max_attempts) {
        exhausted_ = true;
        continue;
      }
      ++p.attempts;
      if (p.attempts > 1) ++retries_;
      p.next_due_us = now + Backoff(p.attempts);
      Outgoing o;
      o.envelope = EncodeControlFrame(epoch_, p.seq, p.inner);
      o.is_retry = p.attempts > 1;
      out->push_back(std::move(o));
    }
  }

  // Cumulative ack: drops every pending frame with seq <= upto. Progress
  // proves the link is alive, so the surviving frames get a fresh attempt
  // budget. Acks from another epoch are stale and ignored.
  bool Ack(uint64_t epoch, uint64_t upto) {
    if (epoch != epoch_) return false;
    bool progress = false;
    while (!pending_.empty() && pending_.front().seq <= upto) {
      pending_.pop_front();
      progress = true;
    }
    if (progress) {
      exhausted_ = false;
      for (Pending& p : pending_) p.attempts = 0;
    }
    return progress;
  }

  // Restart fence: re-keys the link to `epoch` and re-stamps `prepend`
  // followed by every surviving pending frame from sequence 1, all due
  // immediately with a fresh attempt budget. `prepend` is the restarted
  // peer's state-sync prologue — it must apply before the replayed frames.
  void Reset(uint64_t epoch, std::vector<std::string> prepend) {
    std::deque<Pending> replay = std::move(pending_);
    pending_.clear();
    epoch_ = epoch;
    next_seq_ = 1;
    exhausted_ = false;
    for (std::string& inner : prepend) Enqueue(std::move(inner));
    for (Pending& p : replay) Enqueue(std::move(p.inner));
  }

  // Drains the pending frames (in order) for local application — used when
  // the peer is gone for good (quarantine) or the frames can be applied
  // without the wire (salvaging a dead shard's unacked matches).
  std::vector<std::string> TakeInners() {
    std::vector<std::string> out;
    out.reserve(pending_.size());
    for (Pending& p : pending_) out.push_back(std::move(p.inner));
    pending_.clear();
    exhausted_ = false;
    return out;
  }

  size_t unacked() const { return pending_.size(); }
  bool exhausted() const { return exhausted_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t retries() const { return retries_; }
  // Earliest next (re)send time across pending frames; INT64_MAX when idle.
  int64_t next_due_us() const {
    int64_t next = INT64_MAX;
    for (const Pending& p : pending_) {
      if (p.attempts < policy_.max_attempts && p.next_due_us < next) {
        next = p.next_due_us;
      }
    }
    return next;
  }

 private:
  struct Pending {
    uint64_t seq = 0;
    std::string inner;
    int attempts = 0;
    int64_t next_due_us = 0;  // 0 = due now
  };

  int64_t Backoff(int attempts) {
    int64_t us = policy_.base_backoff_us;
    for (int i = 1; i < attempts && us < policy_.max_backoff_us; ++i) {
      us *= 2;
    }
    if (us > policy_.max_backoff_us) us = policy_.max_backoff_us;
    const double factor =
        1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    us = static_cast<int64_t>(static_cast<double>(us) * factor);
    return us < 1 ? 1 : us;
  }

  RetryPolicy policy_;
  Rng rng_;
  uint64_t epoch_ = 1;
  uint64_t next_seq_ = 1;
  bool exhausted_ = false;
  uint64_t retries_ = 0;
  std::deque<Pending> pending_;  // ascending seq
};

// Receiver half: deduplicates by sequence number and produces the
// cumulative ack. kOrdered releases frames strictly in sequence order
// (buffering ahead-of-sequence arrivals) — the fabric's control links,
// where the front's per-shard operation order is the correctness contract.
// kUnordered applies fresh frames immediately — the match links, where the
// delivery router's dedup window owns ordering-independent exactness.
class ReliableReceiver {
 public:
  enum class Order { kOrdered, kUnordered };

  struct Result {
    bool stale = false;      // older epoch: drop silently, no ack
    bool duplicate = false;  // seen before: re-ack only
    uint64_t epoch = 0;
    uint64_t ack_upto = 0;  // cumulative: every seq <= this was received
    std::vector<Frame> apply;  // frames to apply now, in release order
  };

  explicit ReliableReceiver(Order order = Order::kOrdered) : order_(order) {}

  Result Accept(Frame&& f) {
    Result r;
    if (f.epoch < epoch_) {
      r.stale = true;
      return r;
    }
    // A newer epoch means the sender restarted; adopt it (the old state
    // described a dead incarnation).
    if (f.epoch > epoch_) Reset(f.epoch);
    r.epoch = epoch_;
    const uint64_t seq = f.seq;
    if (order_ == Order::kOrdered) {
      if (seq <= upto_ || ahead_.count(seq) != 0) {
        r.duplicate = true;
      } else if (seq == upto_ + 1) {
        r.apply.push_back(std::move(f));
        ++upto_;
        auto it = ahead_.begin();
        while (it != ahead_.end() && it->first == upto_ + 1) {
          r.apply.push_back(std::move(it->second));
          ++upto_;
          it = ahead_.erase(it);
        }
      } else {
        ahead_.emplace(seq, std::move(f));
      }
    } else {
      if (seq <= upto_ || seen_.count(seq) != 0) {
        r.duplicate = true;
      } else {
        seen_.insert(seq);
        r.apply.push_back(std::move(f));
        while (!seen_.empty() && *seen_.begin() == upto_ + 1) {
          seen_.erase(seen_.begin());
          ++upto_;
        }
      }
    }
    r.ack_upto = upto_;
    return r;
  }

  void Reset(uint64_t epoch) {
    epoch_ = epoch;
    upto_ = 0;
    ahead_.clear();
    seen_.clear();
  }

  uint64_t epoch() const { return epoch_; }
  uint64_t contiguous_upto() const { return upto_; }

 private:
  Order order_;
  uint64_t epoch_ = 1;
  uint64_t upto_ = 0;               // contiguous prefix fully received
  std::map<uint64_t, Frame> ahead_;  // kOrdered: buffered out-of-order
  std::set<uint64_t> seen_;          // kUnordered: applied beyond the prefix
};

}  // namespace ps2

#endif  // PS2_SHARD_RELIABLE_H_
