#include "shard/fault_transport.h"

#include <algorithm>
#include <utility>

namespace ps2 {

FaultInjectingTransport::FaultInjectingTransport(FaultScheduleConfig config,
                                                 Transport* inner)
    : config_(std::move(config)), rng_(config_.seed) {
  if (inner != nullptr) {
    inner_ = inner;
  } else {
    owned_inner_ = std::make_unique<LoopbackTransport>();
    inner_ = owned_inner_.get();
  }
}

void FaultInjectingTransport::RegisterEndpoint(ShardId endpoint,
                                               Handler handler) {
  inner_->RegisterEndpoint(endpoint, std::move(handler));
}

bool FaultInjectingTransport::Partitioned(ShardId from, ShardId to,
                                          uint64_t send_index,
                                          bool* refuse) const {
  for (const FaultPartitionSpec& p : config_.partitions) {
    if (send_index < p.from_send || send_index >= p.to_send) continue;
    const bool forward = from == p.a && to == p.b;
    const bool backward = from == p.b && to == p.a;
    if (forward || (p.bidirectional && backward)) {
      *refuse = p.refuse;
      return true;
    }
  }
  return false;
}

bool FaultInjectingTransport::Send(ShardId from, ShardId to,
                                   const std::string& frame) {
  std::vector<Outbound> out;
  bool result = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t idx = sends_++;
    n_sends_.fetch_add(1, std::memory_order_relaxed);

    // Matured holds go out first: a frame delayed at send k and released at
    // send k+n arrives after everything sent in between — reordering — and
    // still before this call's own frame.
    for (size_t i = 0; i < held_.size();) {
      if (held_[i].release_at <= idx) {
        Outbound o;
        o.from = held_[i].from;
        o.to = held_[i].to;
        o.frame = std::move(held_[i].frame);
        out.push_back(std::move(o));
        held_[i] = std::move(held_.back());
        held_.pop_back();
      } else {
        ++i;
      }
    }

    bool refuse = true;
    if (Partitioned(from, to, idx, &refuse)) {
      if (refuse) {
        n_refused_.fetch_add(1, std::memory_order_relaxed);
        result = false;
      } else {
        n_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (rng_.NextBernoulli(config_.refuse_rate)) {
      n_refused_.fetch_add(1, std::memory_order_relaxed);
      result = false;
    } else if (rng_.NextBernoulli(config_.drop_rate)) {
      n_dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      const bool dup = rng_.NextBernoulli(config_.duplicate_rate);
      if (dup) n_duplicated_.fetch_add(1, std::memory_order_relaxed);
      if (rng_.NextBernoulli(config_.delay_rate)) {
        n_delayed_.fetch_add(1, std::memory_order_relaxed);
        const int span = std::max(1, config_.max_delay_sends);
        Held h;
        h.from = from;
        h.to = to;
        h.frame = frame;
        h.release_at = idx + 1 + rng_.NextBelow(static_cast<uint64_t>(span));
        held_.push_back(std::move(h));
        // A duplicated+delayed frame: one copy now, one later.
        if (dup) out.push_back(Outbound{from, to, frame, true});
      } else {
        out.push_back(Outbound{from, to, frame, true});
        if (dup) out.push_back(Outbound{from, to, frame, true});
      }
    }
  }
  // An unknown destination is the inner transport's failure, not an
  // injected one — it must surface even through a clean schedule.
  return Deliver(out) && result;
}

void FaultInjectingTransport::FlushDelayed() {
  std::vector<Outbound> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Held& h : held_) {
      Outbound o;
      o.from = h.from;
      o.to = h.to;
      o.frame = std::move(h.frame);
      out.push_back(std::move(o));
    }
    held_.clear();
  }
  Deliver(out);
}

bool FaultInjectingTransport::Deliver(std::vector<Outbound>& out) {
  bool ok = true;
  for (Outbound& o : out) {
    if (inner_->Send(o.from, o.to, o.frame)) {
      n_delivered_.fetch_add(1, std::memory_order_relaxed);
    } else if (o.own) {
      ok = false;
    }
  }
  return ok;
}

FaultCounters FaultInjectingTransport::counters() const {
  FaultCounters c;
  c.sends = n_sends_.load(std::memory_order_relaxed);
  c.delivered = n_delivered_.load(std::memory_order_relaxed);
  c.dropped = n_dropped_.load(std::memory_order_relaxed);
  c.delayed = n_delayed_.load(std::memory_order_relaxed);
  c.duplicated = n_duplicated_.load(std::memory_order_relaxed);
  c.refused = n_refused_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace ps2
