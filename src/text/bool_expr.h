#ifndef PS2_TEXT_BOOL_EXPR_H_
#define PS2_TEXT_BOOL_EXPR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "text/vocabulary.h"

namespace ps2 {

// Boolean keyword expression of an STS query, stored in conjunctive normal
// form (CNF): an AND of clauses, each clause an OR of terms.
//
//   "a AND b"        -> clauses {a}, {b}
//   "a OR b"         -> clause  {a, b}
//   "(a OR b) AND c" -> clauses {a, b}, {c}
//
// The paper's queries have 1-3 keywords connected by AND or OR; CNF covers
// both and is exactly the shape GI2 and the gridt index key on ("the least
// frequent keywords in each conjunctive norm form").
class BoolExpr {
 public:
  BoolExpr() = default;

  // Builds an AND-of-keywords expression (each keyword its own clause).
  static BoolExpr And(std::vector<TermId> terms);

  // Builds a single OR clause.
  static BoolExpr Or(std::vector<TermId> terms);

  // Builds a CNF from explicit clauses. Empty clauses are dropped; duplicate
  // terms within a clause are deduplicated.
  static BoolExpr Cnf(std::vector<std::vector<TermId>> clauses);

  // Parses expressions like "kobe AND (retired OR lebron)" against `vocab`,
  // interning unknown terms. Grammar (case-insensitive operators):
  //   expr   := clause (AND clause)*
  //   clause := atom (OR atom)*
  //   atom   := TERM | '(' expr ')'
  // Parenthesized sub-expressions are distributed into CNF. Returns an empty
  // expression on syntax error (check has_error()); when `error` is non-null
  // it receives a human-readable description of the first syntax error
  // ("expected keyword or '(' at position 4, got 'AND'"), or is cleared on
  // success. The message is an out-parameter rather than a member so
  // BoolExpr itself stays lean — millions of parsed subscriptions should
  // not each carry an empty std::string.
  static BoolExpr Parse(const std::string& text, Vocabulary& vocab,
                        std::string* error = nullptr);

  bool has_error() const { return has_error_; }
  bool empty() const { return clauses_.empty(); }
  const std::vector<std::vector<TermId>>& clauses() const { return clauses_; }

  // True when every clause contains at least one term of `object_terms`
  // (which must be sorted ascending). An empty expression matches nothing.
  //
  // The common case — AND-only with few keywords (the paper's queries have
  // 1-3) — is evaluated entirely from an inline sorted term array by a
  // two-pointer merge against the object's sorted terms, without touching
  // the heap-allocated clause vectors. Defined here so the worker hot loop
  // can inline it.
  bool Matches(const std::vector<TermId>& sorted_object_terms) const {
    if (num_and_terms_ > 0) {
      size_t i = 0;
      const size_t n = sorted_object_terms.size();
      for (uint8_t k = 0; k < num_and_terms_; ++k) {
        const TermId t = and_terms_[k];
        while (i < n && sorted_object_terms[i] < t) ++i;
        if (i == n || sorted_object_terms[i] != t) return false;
        ++i;
      }
      return true;
    }
    return MatchesCnf(sorted_object_terms);
  }

  // All distinct terms across clauses, sorted ascending. This is q.K as a
  // set, used for routing (q.K ∩ Ti ≠ ∅ tests).
  std::vector<TermId> DistinctTerms() const;

  // For each clause, the least frequent term per `vocab`.
  std::vector<TermId> LeastFrequentPerClause(const Vocabulary& vocab) const;

  // The terms GI2 and the gridt index key this query on: all terms of the
  // *cheapest* clause (minimum total frequency). Any matching object must
  // satisfy every clause, hence contains at least one term of the chosen
  // clause, so indexing/routing a query under exactly these terms is
  // complete. For AND-only queries (singleton clauses) this degenerates to
  // the paper's "least frequent keyword". (Keying each clause's least
  // frequent keyword alone — a literal reading of the paper — is incomplete
  // for multi-clause OR queries; see bool_expr_test.)
  std::vector<TermId> RoutingTerms(const Vocabulary& vocab) const;

  // Number of stored term slots (for memory accounting).
  size_t TermSlots() const;

  std::string ToString(const Vocabulary& vocab) const;

 private:
  // Largest AND-only expression kept inline (covers the paper's 1-3
  // keywords with headroom).
  static constexpr uint8_t kInlineAndTerms = 4;

  // General CNF evaluation; the clause-vector slow path of Matches().
  bool MatchesCnf(const std::vector<TermId>& sorted_object_terms) const;

  std::vector<std::vector<TermId>> clauses_;
  // Inline fast-path mirror, set by Cnf() when every clause is a singleton
  // and there are at most kInlineAndTerms of them: the distinct terms,
  // sorted ascending. num_and_terms_ == 0 means "use clauses_".
  // clauses_ stays authoritative for routing, serialization and accounting.
  std::array<TermId, kInlineAndTerms> and_terms_{};
  uint8_t num_and_terms_ = 0;
  bool has_error_ = false;
};

}  // namespace ps2

#endif  // PS2_TEXT_BOOL_EXPR_H_
