#include "text/vocabulary.h"

#include <algorithm>

namespace ps2 {

TermId Vocabulary::Intern(const std::string& term) {
  auto [it, inserted] = index_.try_emplace(term, 0);
  if (inserted) {
    it->second = static_cast<TermId>(terms_.size());
    terms_.push_back(term);
    counts_.push_back(0);
  }
  return it->second;
}

TermId Vocabulary::Lookup(const std::string& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTerm : it->second;
}

void Vocabulary::AddCount(TermId id, uint64_t n) {
  if (id >= counts_.size()) return;
  counts_[id] += n;
  total_count_ += n;
}

TermId Vocabulary::LeastFrequent(const std::vector<TermId>& ids) const {
  TermId best = ids.front();
  uint64_t best_count = Count(best);
  for (const TermId id : ids) {
    const uint64_t c = Count(id);
    if (c < best_count || (c == best_count && id < best)) {
      best = id;
      best_count = c;
    }
  }
  return best;
}

std::vector<TermId> Vocabulary::TermsByFrequency() const {
  std::vector<TermId> ids(terms_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<TermId>(i);
  std::sort(ids.begin(), ids.end(), [this](TermId a, TermId b) {
    if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
    return a < b;
  });
  return ids;
}

bool Vocabulary::IsTopFraction(TermId id, double fraction) const {
  if (id >= counts_.size() || terms_.empty()) return false;
  const uint64_t c = counts_[id];
  // Count how many terms are strictly more frequent; that is the rank.
  size_t rank = 0;
  for (const uint64_t other : counts_) {
    if (other > c) ++rank;
  }
  return rank < static_cast<size_t>(fraction * terms_.size());
}

size_t Vocabulary::MemoryBytes() const {
  size_t bytes = counts_.size() * sizeof(uint64_t);
  for (const auto& t : terms_) {
    bytes += sizeof(std::string) + t.capacity();
    // Hash-map entry: key string + id + bucket overhead (approximation).
    bytes += sizeof(std::string) + t.capacity() + sizeof(TermId) + 16;
  }
  return bytes;
}

}  // namespace ps2
