#ifndef PS2_TEXT_SIMILARITY_H_
#define PS2_TEXT_SIMILARITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/vocabulary.h"

namespace ps2 {

// Sparse term-frequency vector. Hybrid partitioning (Algorithm 1) compares
// the text distribution of the objects in a subspace against that of the
// queries in the same subspace using cosine similarity; TermVector is the
// accumulator for those distributions.
class TermVector {
 public:
  TermVector() = default;

  void Add(TermId term, double weight = 1.0);

  // Merges another vector into this one (used when kd-nodes are merged).
  void Merge(const TermVector& other);

  double Weight(TermId term) const;
  size_t DistinctTerms() const { return weights_.size(); }
  bool empty() const { return weights_.empty(); }
  double Norm() const;

  const std::unordered_map<TermId, double>& weights() const {
    return weights_;
  }

 private:
  std::unordered_map<TermId, double> weights_;
  mutable double cached_norm_ = -1.0;
};

// Cosine similarity in [0, 1]; 0 when either vector is empty. This is
// simt(On, Qn) in Algorithm 1.
double CosineSimilarity(const TermVector& a, const TermVector& b);

// Binary-weight cosine over sorted, deduplicated term-id vectors:
// |A ∩ B| / sqrt(|A| * |B|), 0 when either side is empty. This is the
// matching-path kernel for the similarity/top-k subscription classes —
// a two-pointer intersection, allocation-free and deterministic, so every
// execution mode computes bit-identical scores.
double BinaryCosineSimilarity(const std::vector<TermId>& a,
                              const std::vector<TermId>& b);

}  // namespace ps2

#endif  // PS2_TEXT_SIMILARITY_H_
