#include "text/tokenizer.h"

#include <cctype>

namespace ps2 {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> terms;
  std::string current;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      if (current.size() >= min_term_length_) terms.push_back(current);
      current.clear();
    }
  }
  if (current.size() >= min_term_length_) terms.push_back(current);
  return terms;
}

}  // namespace ps2
