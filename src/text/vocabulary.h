#ifndef PS2_TEXT_VOCABULARY_H_
#define PS2_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ps2 {

// Dense identifier for a term in the vocabulary. TermId 0 is valid; the
// sentinel kInvalidTerm marks "not in vocabulary".
using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = ~TermId{0};

// The term dictionary shared by dispatchers and workers. It interns term
// strings to dense TermIds and tracks per-term occurrence counts so that:
//  * dispatchers can pick the least frequent keyword of a CNF clause
//    (Section IV-C: "looks up H1 using the least frequent keyword"),
//  * text partitioners can weigh terms by frequency,
//  * hybrid partitioning can build term-frequency vectors for the cosine
//    similarity test.
//
// Frequencies here are corpus statistics (counted over a sample of objects),
// not live counters; the paper's dispatchers likewise rely on a frequency
// profile of the stream.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Interns `term`, returning its id. Does not change counts.
  TermId Intern(const std::string& term);

  // Returns the id of `term`, or kInvalidTerm if never interned.
  TermId Lookup(const std::string& term) const;

  const std::string& TermString(TermId id) const { return terms_[id]; }

  // Adds `n` observed occurrences of `id`.
  void AddCount(TermId id, uint64_t n = 1);

  uint64_t Count(TermId id) const {
    return id < counts_.size() ? counts_[id] : 0;
  }

  uint64_t TotalCount() const { return total_count_; }

  size_t size() const { return terms_.size(); }

  // Returns the TermId with the smallest occurrence count among `ids`
  // (ties broken by smaller id). `ids` must be non-empty.
  TermId LeastFrequent(const std::vector<TermId>& ids) const;

  // Term ids sorted by descending count (rank 0 = most frequent). Recomputed
  // on demand; used by generators and the frequency-based partitioner.
  std::vector<TermId> TermsByFrequency() const;

  // True if `id` ranks within the top `fraction` (e.g. 0.01 = top 1%) most
  // frequent terms. Used by the Q2 generator ("at least one keyword not in
  // the top 1% most frequent terms").
  bool IsTopFraction(TermId id, double fraction) const;

  // Approximate heap footprint in bytes (strings + tables).
  size_t MemoryBytes() const;

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
};

}  // namespace ps2

#endif  // PS2_TEXT_VOCABULARY_H_
