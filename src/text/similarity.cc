#include "text/similarity.h"

#include <cmath>

namespace ps2 {

void TermVector::Add(TermId term, double weight) {
  weights_[term] += weight;
  cached_norm_ = -1.0;
}

void TermVector::Merge(const TermVector& other) {
  for (const auto& [term, w] : other.weights_) weights_[term] += w;
  cached_norm_ = -1.0;
}

double TermVector::Weight(TermId term) const {
  auto it = weights_.find(term);
  return it == weights_.end() ? 0.0 : it->second;
}

double TermVector::Norm() const {
  if (cached_norm_ >= 0.0) return cached_norm_;
  double sum = 0.0;
  for (const auto& [term, w] : weights_) sum += w * w;
  cached_norm_ = std::sqrt(sum);
  return cached_norm_;
}

double CosineSimilarity(const TermVector& a, const TermVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  // Iterate over the smaller map.
  const TermVector& small = a.DistinctTerms() <= b.DistinctTerms() ? a : b;
  const TermVector& large = a.DistinctTerms() <= b.DistinctTerms() ? b : a;
  double dot = 0.0;
  for (const auto& [term, w] : small.weights()) {
    dot += w * large.Weight(term);
  }
  const double denom = a.Norm() * b.Norm();
  return denom == 0.0 ? 0.0 : dot / denom;
}

double BinaryCosineSimilarity(const std::vector<TermId>& a,
                              const std::vector<TermId>& b) {
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  if (common == 0) return 0.0;
  return static_cast<double>(common) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

}  // namespace ps2
