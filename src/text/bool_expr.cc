#include "text/bool_expr.h"

#include <algorithm>
#include <cctype>

#include "text/tokenizer.h"

namespace ps2 {
namespace {

void Normalize(std::vector<TermId>& clause) {
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
}

// Recursive-descent parser producing CNF. Tokens are produced on the fly.
struct Parser {
  const std::string& text;
  Vocabulary& vocab;
  size_t pos = 0;
  bool error = false;
  std::string error_msg;

  // Records the first error only: later failures are cascades of it.
  void Fail(const std::string& msg) {
    if (error) return;
    error = true;
    error_msg = msg + " at position " + std::to_string(pos);
  }

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  // Returns next token: "(", ")", "AND", "OR" or a term (lowercased); empty
  // string at end of input. Does not consume; use Consume() after Peek().
  std::string Peek() {
    SkipSpace();
    if (pos >= text.size()) return "";
    const char c = text[pos];
    if (c == '(' || c == ')') return std::string(1, c);
    size_t end = pos;
    while (end < text.size() && text[end] != '(' && text[end] != ')' &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    std::string tok = text.substr(pos, end - pos);
    std::string upper = tok;
    for (auto& ch : upper) ch = std::toupper(static_cast<unsigned char>(ch));
    if (upper == "AND" || upper == "OR") return upper;
    for (auto& ch : tok) ch = std::tolower(static_cast<unsigned char>(ch));
    return tok;
  }

  void Consume(const std::string& tok) {
    SkipSpace();
    if (tok == "(" || tok == ")") {
      ++pos;
      return;
    }
    // Advance over the raw token (same length as peeked, operators and terms
    // are case-changed copies of the raw text).
    pos += tok.size();
  }

  // expr := clause (AND clause)*  -- returns CNF clause list.
  std::vector<std::vector<TermId>> ParseExpr() {
    std::vector<std::vector<TermId>> cnf = ParseClause();
    while (!error) {
      const std::string tok = Peek();
      if (tok != "AND") break;
      Consume(tok);
      auto rhs = ParseClause();
      for (auto& c : rhs) cnf.push_back(std::move(c));
    }
    return cnf;
  }

  // clause := atom (OR atom)* -- OR distributes over the CNFs of the atoms:
  // (A1&A2) OR (B1&B2) = (A1|B1)&(A1|B2)&(A2|B1)&(A2|B2).
  std::vector<std::vector<TermId>> ParseClause() {
    std::vector<std::vector<TermId>> cnf = ParseAtom();
    while (!error) {
      const std::string tok = Peek();
      if (tok != "OR") break;
      Consume(tok);
      auto rhs = ParseAtom();
      std::vector<std::vector<TermId>> out;
      out.reserve(cnf.size() * rhs.size());
      for (const auto& a : cnf) {
        for (const auto& b : rhs) {
          std::vector<TermId> merged = a;
          merged.insert(merged.end(), b.begin(), b.end());
          Normalize(merged);
          out.push_back(std::move(merged));
        }
      }
      cnf = std::move(out);
    }
    return cnf;
  }

  std::vector<std::vector<TermId>> ParseAtom() {
    SkipSpace();
    const std::string tok = Peek();
    if (tok.empty() || tok == ")" || tok == "AND" || tok == "OR") {
      Fail(tok.empty() ? "expected keyword or '(', got end of input"
                       : "expected keyword or '(', got '" + tok + "'");
      return {};
    }
    if (tok == "(") {
      Consume(tok);
      auto inner = ParseExpr();
      SkipSpace();
      if (Peek() != ")") {
        Fail("expected ')'");
        return {};
      }
      Consume(")");
      return inner;
    }
    Consume(tok);
    return {{vocab.Intern(tok)}};
  }
};

}  // namespace

BoolExpr BoolExpr::And(std::vector<TermId> terms) {
  std::vector<std::vector<TermId>> clauses;
  clauses.reserve(terms.size());
  for (const TermId t : terms) clauses.push_back({t});
  return Cnf(std::move(clauses));
}

BoolExpr BoolExpr::Or(std::vector<TermId> terms) {
  return Cnf({std::move(terms)});
}

BoolExpr BoolExpr::Cnf(std::vector<std::vector<TermId>> clauses) {
  BoolExpr e;
  for (auto& clause : clauses) {
    if (clause.empty()) continue;
    Normalize(clause);
    e.clauses_.push_back(std::move(clause));
  }
  // Arm the inline AND fast path when every clause is a singleton and the
  // distinct terms fit the inline array (duplicate singleton clauses
  // collapse: "a AND a" requires the same single term).
  if (!e.clauses_.empty() && e.clauses_.size() <= 2 * kInlineAndTerms) {
    std::vector<TermId> terms;
    terms.reserve(e.clauses_.size());
    for (const auto& clause : e.clauses_) {
      if (clause.size() != 1) return e;
      terms.push_back(clause[0]);
    }
    Normalize(terms);
    if (terms.size() <= kInlineAndTerms) {
      for (size_t i = 0; i < terms.size(); ++i) e.and_terms_[i] = terms[i];
      e.num_and_terms_ = static_cast<uint8_t>(terms.size());
    }
  }
  return e;
}

BoolExpr BoolExpr::Parse(const std::string& text, Vocabulary& vocab,
                         std::string* error) {
  if (error != nullptr) error->clear();
  Parser p{text, vocab, /*pos=*/0, /*error=*/false, /*error_msg=*/{}};
  auto cnf = p.ParseExpr();
  p.SkipSpace();
  if (!p.error && p.pos != text.size()) {
    p.Fail("unexpected '" + std::string(1, text[p.pos]) + "'");
  }
  if (p.error) {
    if (error != nullptr) *error = p.error_msg;
    BoolExpr e;
    e.has_error_ = true;
    return e;
  }
  return Cnf(std::move(cnf));
}

bool BoolExpr::MatchesCnf(
    const std::vector<TermId>& sorted_object_terms) const {
  if (clauses_.empty()) return false;
  for (const auto& clause : clauses_) {
    bool clause_sat = false;
    for (const TermId t : clause) {
      if (std::binary_search(sorted_object_terms.begin(),
                             sorted_object_terms.end(), t)) {
        clause_sat = true;
        break;
      }
    }
    if (!clause_sat) return false;
  }
  return true;
}

std::vector<TermId> BoolExpr::DistinctTerms() const {
  std::vector<TermId> all;
  for (const auto& c : clauses_) all.insert(all.end(), c.begin(), c.end());
  Normalize(all);
  return all;
}

std::vector<TermId> BoolExpr::LeastFrequentPerClause(
    const Vocabulary& vocab) const {
  std::vector<TermId> keys;
  keys.reserve(clauses_.size());
  for (const auto& clause : clauses_) {
    keys.push_back(vocab.LeastFrequent(clause));
  }
  Normalize(keys);
  return keys;
}

std::vector<TermId> BoolExpr::RoutingTerms(const Vocabulary& vocab) const {
  if (clauses_.empty()) return {};
  size_t best = 0;
  uint64_t best_cost = ~0ULL;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    uint64_t cost = 0;
    for (const TermId t : clauses_[i]) cost += vocab.Count(t);
    // Prefer cheaper clauses; among equals prefer fewer terms (less
    // duplication), then earlier clauses for determinism.
    if (cost < best_cost ||
        (cost == best_cost && clauses_[i].size() < clauses_[best].size())) {
      best = i;
      best_cost = cost;
    }
  }
  return clauses_[best];
}

size_t BoolExpr::TermSlots() const {
  size_t n = 0;
  for (const auto& c : clauses_) n += c.size();
  return n;
}

std::string BoolExpr::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i) out += " AND ";
    if (clauses_[i].size() > 1) out += "(";
    for (size_t j = 0; j < clauses_[i].size(); ++j) {
      if (j) out += " OR ";
      out += vocab.TermString(clauses_[i][j]);
    }
    if (clauses_[i].size() > 1) out += ")";
  }
  return out;
}

}  // namespace ps2
